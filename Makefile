# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race vet fmt

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the stock analyzers, then builds the repo's own analysis
# suite (cmd/vetactive) and runs it over every package through the
# go vet vettool protocol. Both must be clean.
vet:
	$(GO) vet ./...
	$(GO) build -o bin/vetactive ./cmd/vetactive
	$(GO) vet -vettool=$(CURDIR)/bin/vetactive ./...

fmt:
	gofmt -l -w .
