module github.com/gloss/active

go 1.24
