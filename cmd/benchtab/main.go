// Command benchtab regenerates every experiment table from
// EXPERIMENTS.md and prints them in paper-style form:
//
//	benchtab            # full-size experiments
//	benchtab -quick     # smaller worlds, faster
//	benchtab -only E-T3,E-T9
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/gloss/active/internal/exp"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "shrink world sizes for a fast run")
		only  = flag.String("only", "", "comma-separated experiment IDs (e.g. E-T1,E-F2)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	runners := []struct {
		id  string
		run func(bool) *exp.Table
	}{
		{"E-F1", exp.F1GlobalMatching},
		{"E-F2", exp.F2Pipelines},
		{"E-F3", exp.F3Deployment},
		{"E-T1", exp.T1PlaxtonRouting},
		{"E-T2", exp.T2ReplicaResilience},
		{"E-T3", exp.T3PromiscuousCaching},
		{"E-T4", exp.T4PubSubScaling},
		{"E-T5", exp.T5MatchThroughput},
		{"E-T6", exp.T6EvolutionRepair},
		{"E-T7", exp.T7PlacementPolicies},
		{"E-T8", exp.T8TypeProjection},
		{"E-T9", exp.T9MobilityHandoff},
		{"E-T10", exp.T10Discovery},
		{"E-T11", exp.T11WireFormat},
		{"E-T12", exp.T12FanoutHotPath},
		{"E-T13", exp.T13Backpressure},
		{"E-T14", exp.T14ShardedMatch},
		{"E-T15", exp.T15ParallelFanout},
		{"E-T16", exp.T16StoragePlane},
		{"E-T17", exp.T17Knowledge},
	}
	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		table := r.run(*quick)
		fmt.Println(table.Format())
		fmt.Printf("(%s took %.1fs)\n\n", r.id, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "benchtab: no experiments matched -only")
		os.Exit(1)
	}
}
