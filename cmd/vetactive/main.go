// Command vetactive is the repo's custom static-analysis suite. It
// machine-checks the concurrency and determinism invariants the
// middleware relies on but the compiler cannot see: simulation
// determinism (detsim), actor-loop confinement (actoronly), frozen
// event immutability (frozenmut), racy stats snapshots (atomicstats),
// and wire-registry completeness (wirecomplete).
//
// It speaks the go vet vettool protocol, so CI runs it as
//
//	go vet -vettool=$(pwd)/bin/vetactive ./...
//
// and it also runs standalone over package patterns:
//
//	./bin/vetactive ./...
//
// Suppress a deliberate exception with
//
//	//vetactive:ignore <analyzer> <reason>
//
// on (or directly above) the offending line; the reason is mandatory.
package main

import (
	"github.com/gloss/active/internal/analysis"
	"github.com/gloss/active/internal/analysis/actoronly"
	"github.com/gloss/active/internal/analysis/atomicstats"
	"github.com/gloss/active/internal/analysis/detsim"
	"github.com/gloss/active/internal/analysis/driver"
	"github.com/gloss/active/internal/analysis/frozenmut"
	"github.com/gloss/active/internal/analysis/wirecomplete"
)

func main() {
	driver.Main([]*analysis.Analyzer{
		detsim.Analyzer,
		actoronly.Analyzer,
		frozenmut.Analyzer,
		atomicstats.Analyzer,
		wirecomplete.Analyzer,
	})
}
