// Command simworld runs the full simulated deployment: a multi-region
// world with sensors, the ice-cream service, self-healing storage and the
// evolution engine, printing a live narrative of what the architecture is
// doing. All time is virtual; the run is deterministic per seed.
//
//	simworld -nodes 12 -users 6 -minutes 30 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/gateway"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/sensors"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simworld:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes   = flag.Int("nodes", 12, "number of nodes")
		users   = flag.Int("users", 6, "number of mobile users")
		minutes = flag.Int("minutes", 30, "virtual minutes to simulate after boot")
		seed    = flag.Int64("seed", 42, "world seed")
	)
	flag.Parse()

	fmt.Printf("booting %d-node world (seed %d)…\n", *nodes, *seed)
	w, err := core.NewWorld(core.WorldConfig{Seed: *seed, Nodes: *nodes})
	if err != nil {
		return err
	}
	w.RunFor(core.ScenarioStart - w.Sim.Now())
	fmt.Printf("virtual clock at %s; deploying ice-cream service…\n", clock(w))

	svc, err := w.DeployService(core.IceCreamService(2, "eu"), 0)
	if err != nil {
		return err
	}
	w.RunFor(20 * time.Second)
	fmt.Printf("%s matchlets deployed: %d ok, %d failed\n",
		clock(w), svc.Engine.Stats().DeploysOK, svc.Engine.Stats().DeploysFailed)

	// Social graph and profiles for the synthetic population.
	for u := 0; u < *users; u++ {
		name := fmt.Sprintf("user-%02d", u)
		for _, n := range w.Nodes {
			n.KB.AddSPO(name, "likes", "ice cream")
			n.KB.AddSPO(name, "hot-threshold", "18")
			n.KB.AddSPO(name, "knows", fmt.Sprintf("user-%02d", (u+1)%*users))
			n.KB.AddSPO(name, "has-spare-time", "true")
		}
	}

	// Sensors: thermometer per region and a GPS per user wandering near
	// Market Street; sensor outputs publish straight onto the bus.
	euIdx := w.NodesInRegion("eu")
	hostNode := w.Node(euIdx[0])
	th := sensors.NewThermometer(sensors.ThermometerConfig{
		Region: "eu", BaseC: 18, AmpC: 6, Interval: 2 * time.Minute, Seed: *seed,
	}, hostNode.Endpoint().Clock())
	th.ConnectTo(busSink{hostNode})
	th.Start()

	anchors := []netapi.Coord{{X: 10.30, Y: 4.00}, {X: 10.20, Y: 4.05}, {X: 10.10, Y: 4.10}}
	for u := 0; u < *users; u++ {
		name := fmt.Sprintf("user-%02d", u)
		host := w.Node(euIdx[(u+1)%len(euIdx)])
		gps := sensors.NewGPS(sensors.GPSConfig{
			User:     name,
			Start:    anchors[u%len(anchors)],
			Anchors:  anchors,
			Interval: time.Minute,
			Seed:     *seed + int64(u),
		}, host.Endpoint().Clock())
		gps.ConnectTo(busSink{host})
		gps.Start()
	}

	// Narrate suggestions as they arrive.
	suggestions := 0
	w.Node(0).Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("suggestion.meet")),
		func(ev *event.Event) {
			suggestions++
			fmt.Printf("%s 🍦 suggest %s + %s meet at %s\n", clock(w),
				ev.GetString("user"), ev.GetString("friend"), ev.GetString("place"))
		})
	w.RunFor(2 * time.Second)

	fmt.Printf("running %d virtual minutes…\n", *minutes)
	for m := 0; m < *minutes; m++ {
		w.RunFor(time.Minute)
		if (m+1)%10 == 0 {
			fmt.Printf("%s — %d suggestions so far; bus traffic: %d msgs\n",
				clock(w), suggestions, w.Sim.Metrics().Delivered)
		}
	}

	fmt.Println("\nfinal state of node 0:")
	fmt.Print(gateway.Status(w.Node(0)))
	fmt.Printf("\ntotal network messages: %d (dropped %d)\n",
		w.Sim.Metrics().Sent, w.Sim.Metrics().Dropped)
	return nil
}

// busSink publishes sensor events onto a node's event bus.
type busSink struct{ n *core.ActiveNode }

func (s busSink) Name() string        { return "bus" }
func (s busSink) Put(ev *event.Event) { s.n.Client.Publish(ev) }

// clock renders virtual time of day.
func clock(w *core.World) string {
	t := w.Sim.Now() % (24 * time.Hour)
	return fmt.Sprintf("[%02d:%02d:%02d]", int(t.Hours()), int(t.Minutes())%60, int(t.Seconds())%60)
}
