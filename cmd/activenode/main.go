// Command activenode runs one node of the active architecture over real
// TCP. The first node creates the overlay; later nodes join via a
// bootstrap peer:
//
//	activenode -listen 127.0.0.1:7701 -name seed -region eu
//	activenode -listen 127.0.0.1:7702 -name n2 -region us \
//	    -bootstrap <seed-id>@127.0.0.1:7701
//
// Each node prints its identifier at startup; drive it with glossctl.
package main

import (
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flag"

	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/gateway"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/nodecfg"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/transport"
	"github.com/gloss/active/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "activenode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		name      = flag.String("name", "", "node name (derives the node ID; default random)")
		region    = flag.String("region", "eu", "region label")
		x         = flag.Float64("x", 0, "x coordinate (km)")
		y         = flag.Float64("y", 0, "y coordinate (km)")
		bootstrap = flag.String("bootstrap", "", "bootstrap peer as <id-hex>@<host:port>; empty creates a new overlay")
		secret    = flag.String("secret", "gloss-active-secret", "capability secret shared by the deployment")
		codec     = flag.String("codec", wire.CodecXML, "preferred wire codec: xml (open interop format) or binary (compact fast path, used only between nodes that both opt in)")
		outboxHi  = flag.Int("outbox-high", 0, "per-peer send-queue byte budget; sends above it are dropped (0 = 1 MiB default)")
		outboxLo  = flag.Int("outbox-low", 0, "backpressure-relief watermark in bytes (0 = half of -outbox-high)")
		shards    = flag.Int("shards", 0, "broker match-index shards (0 = one per core capped at 8, 1 = serial reference)")
		fanout    = flag.Int("fanout-workers", 0, "broker publish fan-out workers (0 = -shards then one per core capped at 8, 1 = serial reference)")
		legacyOB  = flag.Bool("legacy-outbox", false, "restore the fixed 256-frame outbox instead of the byte-budgeted queue (reference path)")
		chunkB    = flag.Int("chunk-bytes", 0, "storage transfer chunk size; bodies above it stream as offset-addressed chunk frames (0 = 64 KiB default, negative disables chunking)")
		legacyRep = flag.Bool("legacy-replication", false, "restore whole-object replica pushes instead of the chunked, digest-driven repair plane (reference path)")
		writerID  = flag.String("writer-id", "", "knowledge-plane writer identity for version vectors (empty = this node's ID; must be unique per writer)")
		kbGossip  = flag.Duration("kb-gossip", 0, "knowledge anti-entropy gossip period (0 disables; objects still converge via fetch read-repair)")
		legacyKB  = flag.Bool("legacy-kb-sync", false, "restore last-writer-wins knowledge sync: bare XML bodies, blind overwrite/replace (reference path)")
		verbose   = flag.Bool("v", false, "verbose logging")
	)
	flag.Parse()

	// One nodecfg.Common carries the flags shared across the stack; the
	// transport and the node config both embed it.
	common := nodecfg.Common{
		Codec:            *codec,
		OutboxHighWater:  *outboxHi,
		OutboxLowWater:   *outboxLo,
		Shards:           *shards,
		FanoutWorkers:    *fanout,
		LegacyOutbox:     *legacyOB,
		KBWriter:         *writerID,
		KBGossipInterval: *kbGossip,
	}
	if *legacyOB && *fanout == 0 {
		// Unset fan-out would resolve to a parallel default, which
		// Validate rejects over the legacy outbox; pin the legacy path
		// to the serial reference instead of erroring.
		common.FanoutWorkers = 1
	}
	// Validate covers the cross-field conflicts too (legacy outbox vs
	// parallel fan-out, inverted watermarks).
	if err := common.Validate(); err != nil {
		return err
	}
	if *legacyKB && (*writerID != "" || *kbGossip > 0) {
		return fmt.Errorf("-legacy-kb-sync is last-writer-wins: it has no version vectors or gossip; drop -writer-id/-kb-gossip")
	}

	logger := slog.New(slog.DiscardHandler)
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	var id ids.ID
	if *name != "" {
		id = ids.FromString(*name)
	} else {
		id = ids.FromString(fmt.Sprintf("node-%d", time.Now().UnixNano()))
	}

	reg := wire.NewRegistry()
	core.RegisterMessages(reg)
	transport.RegisterMessages(reg)
	gateway.RegisterMessages(reg)

	ep, err := transport.Listen(id, reg, transport.Options{
		Common: common,
		Listen: *listen,
		Region: *region,
		Coord:  netapi.Coord{X: *x, Y: *y},
		Seed:   time.Now().UnixNano(),
		Logger: logger,
	})
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }()

	node := core.NewActiveNode(ep, reg, core.NodeConfig{
		Common:         common,
		Secret:         []byte(*secret),
		AdvertInterval: -1, // advertising needs a broker mesh; single-node CLI keeps quiet
		Store: store.Options{
			ChunkBytes:        *chunkB,
			LegacyReplication: *legacyRep,
		},
		Knowledge: knowledge.Options{LegacySync: *legacyKB},
	})
	gateway.Serve(node)

	fmt.Printf("node id:   %s\n", node.ID())
	fmt.Printf("listening: %s\n", ep.Addr())
	fmt.Printf("region:    %s\n", *region)
	fmt.Printf("codec:     %s\n", *codec)

	// Protocol state belongs to the node's actor loop; marshal the
	// bootstrap calls onto it.
	if *bootstrap == "" {
		ep.Do(node.Overlay.CreateNetwork)
		fmt.Println("overlay:   created new network")
	} else {
		peerID, addr, err := parsePeer(*bootstrap)
		if err != nil {
			return err
		}
		ep.AddPeer(peerID, addr)
		done := make(chan error, 1)
		ep.Do(func() {
			node.Overlay.Join(peerID, func(err error) { done <- err })
		})
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("join: %w", err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("join: no response from bootstrap")
		}
		fmt.Printf("overlay:   joined via %s\n", peerID.Short())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return nil
}

// parsePeer splits "<id-hex>@<addr>".
func parsePeer(s string) (ids.ID, string, error) {
	at := strings.LastIndex(s, "@")
	if at <= 0 || at == len(s)-1 {
		return ids.Zero, "", fmt.Errorf("bad peer %q, want <id-hex>@<host:port>", s)
	}
	id, err := ids.Parse(s[:at])
	if err != nil {
		return ids.Zero, "", err
	}
	return id, s[at+1:], nil
}
