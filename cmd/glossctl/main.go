// Command glossctl drives a running activenode over TCP:
//
//	glossctl -node <id>@<addr> status
//	glossctl -node <id>@<addr> put "some content"
//	glossctl -node <id>@<addr> get <guid-hex>
//	glossctl -node <id>@<addr> pub weather.report region=eu tempC=21.5
//	glossctl -node <id>@<addr> sub gps.location
//	glossctl -node <id>@<addr> deploy bundle.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/gateway"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/transport"
	"github.com/gloss/active/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glossctl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodeSpec = flag.String("node", "", "target node as <id-hex>@<host:port>")
		timeout  = flag.Duration("timeout", 10*time.Second, "request timeout")
	)
	flag.Parse()
	if *nodeSpec == "" || flag.NArg() == 0 {
		return fmt.Errorf("usage: glossctl -node <id>@<addr> <status|put|get|pub|sub|deploy> [args]")
	}
	at := strings.LastIndex(*nodeSpec, "@")
	if at <= 0 {
		return fmt.Errorf("bad -node %q", *nodeSpec)
	}
	target, err := ids.Parse((*nodeSpec)[:at])
	if err != nil {
		return err
	}
	addr := (*nodeSpec)[at+1:]

	reg := wire.NewRegistry()
	core.RegisterMessages(reg)
	transport.RegisterMessages(reg)
	gateway.RegisterMessages(reg)
	ep, err := transport.Listen(ids.FromString(fmt.Sprintf("glossctl-%d", time.Now().UnixNano())),
		reg, transport.Options{Seed: time.Now().UnixNano()})
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }()
	ep.AddPeer(target, addr)
	gw := &gateway.Client{EP: ep, Target: target}

	done := make(chan error, 1)
	switch cmd := flag.Arg(0); cmd {
	case "status":
		ep.Request(target, &gateway.StatusReq{}, *timeout, func(reply wire.Message, err error) {
			if err == nil {
				fmt.Print(reply.(*gateway.StatusReply).Text)
			}
			done <- err
		})
	case "put":
		if flag.NArg() < 2 {
			return fmt.Errorf("put needs content")
		}
		gw.Put([]byte(flag.Arg(1)), *timeout, func(guid string, err error) {
			if err == nil {
				fmt.Println(guid)
			}
			done <- err
		})
	case "get":
		if flag.NArg() < 2 {
			return fmt.Errorf("get needs a guid")
		}
		gw.Get(flag.Arg(1), *timeout, func(data []byte, err error) {
			if err == nil {
				fmt.Println(string(data))
			}
			done <- err
		})
	case "pub":
		if flag.NArg() < 2 {
			return fmt.Errorf("pub needs an event type")
		}
		ev := event.New(flag.Arg(1), "glossctl", time.Duration(time.Now().UnixNano()))
		for _, kv := range flag.Args()[2:] {
			eq := strings.Index(kv, "=")
			if eq <= 0 {
				return fmt.Errorf("bad attribute %q, want k=v", kv)
			}
			k, v := kv[:eq], kv[eq+1:]
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				ev.Set(k, event.F(f))
			} else {
				ev.Set(k, event.S(v))
			}
		}
		ev.Stamp(uint64(time.Now().UnixNano()))
		ep.Send(target, &gateway.PubReq{Event: ev})
		time.Sleep(300 * time.Millisecond) // let the frame flush
		fmt.Println("published", ev.Type)
		done <- nil
	case "sub":
		if flag.NArg() < 2 {
			return fmt.Errorf("sub needs an event type")
		}
		ep.Handle("gateway.event", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
			ev := msg.(*gateway.EventMsg).Event
			fmt.Printf("%s %s %v\n", ev.Type, ev.Source, renderAttrs(ev))
		})
		ep.Send(target, &gateway.SubReq{Filter: pubsub.NewFilter(pubsub.TypeIs(flag.Arg(1)))})
		fmt.Println("subscribed to", flag.Arg(1), "— ctrl-c to stop")
		select {} // stream until interrupted
	case "deploy":
		if flag.NArg() < 2 {
			return fmt.Errorf("deploy needs a bundle XML file")
		}
		data, err := os.ReadFile(flag.Arg(1))
		if err != nil {
			return err
		}
		b, err := bundle.Unmarshal(data)
		if err != nil {
			return err
		}
		bundle.Deploy(ep, target, b, *timeout, func(err error) {
			if err == nil {
				fmt.Println("deployed", b.Name)
			}
			done <- err
		})
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	select {
	case err := <-done:
		return err
	case <-time.After(*timeout + 2*time.Second):
		return fmt.Errorf("timed out")
	}
}

func renderAttrs(ev *event.Event) string {
	parts := make([]string, 0, len(ev.Attrs))
	for _, name := range ev.Attrs.Names() {
		parts = append(parts, name+"="+ev.Attrs[name].String())
	}
	return strings.Join(parts, " ")
}
