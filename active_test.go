package active

import (
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the public API exactly as README's
// quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	world, err := NewWorld(WorldConfig{Seed: 7, Nodes: 6})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	world.RunFor(ScenarioStart - world.Sim.Now())
	svc, err := world.DeployService(IceCreamService(1, ""), 0)
	if err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	world.RunFor(15 * time.Second)
	if svc.Engine.Stats().DeploysOK != 1 {
		t.Fatalf("matchlet not deployed: %+v", svc.Engine.Stats())
	}

	// Publish the scenario events through the facade types.
	got := 0
	world.Node(1).Client.Subscribe(NewFilter(TypeIs("suggestion.meet")), func(*Event) { got++ })
	world.RunFor(2 * time.Second)
	now := world.Sim.Now()
	world.Node(2).Client.Publish(NewEvent("weather.report", "thermo", now).
		Set("region", S("eu")).Set("tempC", F(21)).Stamp(1))
	world.Node(3).Client.Publish(NewEvent("gps.location", "gps-anna", now).
		Set("user", S("anna")).Set("x", F(10.25)).Set("y", F(3.95)).Stamp(2))
	world.RunFor(2 * time.Second)
	world.Node(4).Client.Publish(NewEvent("gps.location", "gps-bob", world.Sim.Now()).
		Set("user", S("bob")).Set("x", F(10.20)).Set("y", F(4.05)).Stamp(3))
	world.RunFor(10 * time.Second)
	if got == 0 {
		t.Fatal("no suggestion delivered through the facade")
	}
}

func TestFacadeConstraintHelpers(t *testing.T) {
	cs := Constraints(MinInstances("matchlet/x", "eu", 3))
	if cs.Len() != 1 {
		t.Fatalf("constraint set: %d", cs.Len())
	}
	desc := cs.Describe()[0]
	if desc != `minInstances(matchlet/x, "eu", 3)` {
		t.Fatalf("describe: %s", desc)
	}
}

func TestFacadeValues(t *testing.T) {
	ev := NewEvent("t", "s", time.Second).
		Set("a", S("x")).Set("b", I(1)).Set("c", F(2.5)).Set("d", B(true)).
		Stamp(1)
	if ev.GetString("a") != "x" || ev.GetNum("b") != 1 || ev.GetNum("c") != 2.5 {
		t.Fatalf("facade values: %+v", ev.Attrs)
	}
	f := NewFilter(TypeIs("t"), Gt("b", I(0)), Lt("c", F(3)), Eq("d", B(true)))
	if !f.Matches(ev) {
		t.Fatal("facade filter should match")
	}
}
