// Package active is the public API of the active architecture for
// pervasive contextual services — a Go reproduction of Kirby, Dearle,
// Morrison, Dunlop, Connor & Nixon, "Active Architecture for Pervasive
// Contextual Services" (MPAC 2003).
//
// The architecture is several P2P systems overlaid on each other:
//
//   - a Siena-like content-based publish/subscribe event service,
//   - a Plaxton/Pastry structured overlay carrying a PAST-like replicated
//     object store with promiscuous caching and erasure coding,
//   - Cingal-style thin servers that verify and execute signed code
//     bundles (matchlets, storelets, probes, pipelines) inside
//     capability-protected security domains,
//   - a distributed contextual matching engine built from declarative,
//     XML-serialisable rules correlated against a knowledge base and GIS,
//   - and an evolution engine that places and repairs all of the above
//     under declarative placement constraints.
//
// Quick start:
//
//	world, err := active.NewWorld(active.WorldConfig{Seed: 1, Nodes: 9})
//	if err != nil { ... }
//	svc, err := world.DeployService(active.IceCreamService(2, "eu"), 0)
//	world.RunFor(30 * time.Second)
//
// Everything runs on a deterministic simulated WAN by default; the same
// protocol stack runs over real TCP via cmd/activenode.
package active

import (
	"time"

	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/wire"
)

// Wire codec names for WorldConfig.Codec and NodeConfig.Codec: XML is
// the paper's open interop format and the default; binary is the
// compact fast path for hot interior links (see README "Wire formats").
const (
	CodecXML    = wire.CodecXML
	CodecBinary = wire.CodecBinary
)

// Core world types.
type (
	// World is a booted simulated deployment of the architecture.
	World = core.World
	// WorldConfig parameterises NewWorld.
	WorldConfig = core.WorldConfig
	// NodeConfig tunes each node's protocol stack.
	NodeConfig = core.NodeConfig
	// ActiveNode is one participant node.
	ActiveNode = core.ActiveNode
	// RegionSpec places node groups geographically.
	RegionSpec = core.RegionSpec
	// ServiceDescriptor declares a pervasive contextual service.
	ServiceDescriptor = core.ServiceDescriptor
	// Service is a deployed service handle.
	Service = core.Service
)

// Event model.
type (
	// Event is one item of contextual information.
	Event = event.Event
	// Value is a typed attribute value.
	Value = event.Value
	// ID is a 128-bit identifier (node ID, GUID, event ID).
	ID = ids.ID
	// Coord is a planar position in kilometres.
	Coord = netapi.Coord
)

// Matching rules.
type (
	// Rule is a declarative matchlet specification.
	Rule = match.Rule
	// Pattern selects and binds one event stream within a rule.
	Pattern = match.Pattern
	// Binding unifies an event attribute with a rule variable.
	Binding = match.Binding
	// Condition is one rule predicate.
	Condition = match.Condition
	// Emit describes a rule's synthesised output event.
	Emit = match.Emit
	// EmitAttr maps one output attribute to a term.
	EmitAttr = match.EmitAttr
)

// Pub/sub filters.
type (
	// Filter is a conjunction of attribute constraints.
	Filter = pubsub.Filter
	// Constraint restricts one attribute.
	Constraint = pubsub.Constraint
)

// Knowledge.
type (
	// Fact is a subject–predicate–object triple with optional validity.
	Fact = knowledge.Fact
	// Place is a GIS feature with coordinates, hours and stock.
	Place = knowledge.Place
	// Span is a daily opening interval.
	Span = knowledge.Span
)

// NewWorld builds and boots a simulated deployment.
func NewWorld(cfg WorldConfig) (*World, error) { return core.NewWorld(cfg) }

// DefaultRegions models three continents ~8000 km apart.
var DefaultRegions = core.DefaultRegions

// NewFilter builds a content-based subscription filter.
func NewFilter(cs ...Constraint) Filter { return pubsub.NewFilter(cs...) }

// TypeIs constrains the implicit event type attribute.
func TypeIs(t string) Constraint { return pubsub.TypeIs(t) }

// Eq builds an equality constraint.
func Eq(attr string, v Value) Constraint { return pubsub.Eq(attr, v) }

// Gt builds a greater-than constraint.
func Gt(attr string, v Value) Constraint { return pubsub.Gt(attr, v) }

// Lt builds a less-than constraint.
func Lt(attr string, v Value) Constraint { return pubsub.Lt(attr, v) }

// S constructs a string attribute value.
func S(s string) Value { return event.S(s) }

// I constructs an integer attribute value.
func I(i int64) Value { return event.I(i) }

// F constructs a float attribute value.
func F(f float64) Value { return event.F(f) }

// B constructs a boolean attribute value.
func B(b bool) Value { return event.B(b) }

// NewEvent constructs an event; Stamp it with a sequence number before
// publishing.
func NewEvent(typ, source string, at time.Duration) *Event {
	return event.New(typ, source, at)
}

// MinInstances requires at least N instances of a logical program in a
// region ("" = anywhere) — the paper's example placement constraint.
func MinInstances(program, region string, n int) *constraint.MinInstances {
	return &constraint.MinInstances{Program: program, Region: region, N: n}
}

// Constraints groups placement constraints for a service descriptor.
func Constraints(cs ...constraint.Constraint) *constraint.Set {
	return constraint.NewSet(cs...)
}

// The paper's worked example (§1.1), packaged for reuse.
var (
	// IceCreamService builds the Bob/Anna scenario service descriptor.
	IceCreamService = core.IceCreamService
	// IceCreamRule is the scenario's correlation rule.
	IceCreamRule = core.IceCreamRule
	// IceCreamFacts is the scenario's knowledge fixture.
	IceCreamFacts = core.IceCreamFacts
	// IceCreamPlaces is the scenario's GIS fixture.
	IceCreamPlaces = core.IceCreamPlaces
)

// ScenarioStart is the virtual time at which the worked example is set.
const ScenarioStart = core.ScenarioStart
