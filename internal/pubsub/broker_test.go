package pubsub

import (
	"fmt"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/simnet"
)

// net builds a world with b brokers in a chain and c clients attached to
// given broker indices.
type testNet struct {
	world   *simnet.World
	brokers []*Broker
	clients []*Client
}

// newChain builds brokerCount brokers connected in a chain:
// B0 — B1 — … — Bn-1.
func newChain(seed int64, brokerCount int, opts Options) *testNet {
	w := simnet.NewWorld(simnet.Config{Seed: seed})
	tn := &testNet{world: w}
	for i := 0; i < brokerCount; i++ {
		n := w.NewNode(ids.FromString(fmt.Sprintf("broker-%d", i)), "eu", netapi.Coord{X: float64(i * 100)})
		tn.brokers = append(tn.brokers, NewBroker(n, opts))
	}
	for i := 1; i < brokerCount; i++ {
		ConnectBrokers(tn.brokers[i-1], tn.brokers[i])
	}
	return tn
}

// addClient attaches a fresh client to broker index bi.
func (tn *testNet) addClient(bi int) *Client {
	i := len(tn.clients)
	n := tn.world.NewNode(ids.FromString(fmt.Sprintf("client-%d", i)), "eu", netapi.Coord{X: float64(bi * 100)})
	c := NewClient(n, tn.brokers[bi].ID())
	tn.clients = append(tn.clients, c)
	return c
}

func (tn *testNet) settle() { tn.world.RunFor(5 * time.Second) }

func mkEvent(typ, user string, seq uint64) *event.Event {
	return event.New(typ, "src-"+user, 0).Set("user", event.S(user)).Stamp(seq)
}

func TestLocalDelivery(t *testing.T) {
	tn := newChain(1, 1, Options{})
	sub := tn.addClient(0)
	pub := tn.addClient(0)
	var got []*event.Event
	sub.Subscribe(NewFilter(TypeIs("gps.location")), func(e *event.Event) { got = append(got, e) })
	tn.settle()
	pub.Publish(mkEvent("gps.location", "bob", 1))
	pub.Publish(mkEvent("weather.report", "n/a", 2))
	tn.settle()
	if len(got) != 1 {
		t.Fatalf("delivered %d events, want 1", len(got))
	}
	if got[0].GetString("user") != "bob" {
		t.Fatalf("wrong event: %+v", got[0])
	}
}

func TestMultiHopRouting(t *testing.T) {
	tn := newChain(2, 5, Options{})
	sub := tn.addClient(0)
	pub := tn.addClient(4)
	count := 0
	sub.Subscribe(NewFilter(TypeIs("t"), Eq("user", event.S("anna"))), func(*event.Event) { count++ })
	tn.settle()
	pub.Publish(mkEvent("t", "anna", 1))
	pub.Publish(mkEvent("t", "bob", 2)) // must not reach sub
	tn.settle()
	if count != 1 {
		t.Fatalf("delivered %d, want 1", count)
	}
}

func TestNoDeliveryWithoutSubscription(t *testing.T) {
	tn := newChain(3, 3, Options{})
	pub := tn.addClient(2)
	tn.settle()
	pub.Publish(mkEvent("t", "x", 1))
	tn.settle()
	for i, b := range tn.brokers {
		if b.Stats().ClientDelivers != 0 {
			t.Fatalf("broker %d delivered without subscription", i)
		}
	}
	// Event must not propagate past the publisher's broker.
	if tn.brokers[0].Stats().PubsReceived != 0 {
		t.Fatalf("event flooded to distant broker with no subscribers")
	}
}

func TestCoveringPrunesPropagation(t *testing.T) {
	tn := newChain(4, 3, Options{})
	c0 := tn.addClient(0)
	c0b := tn.addClient(0)
	// Broad subscription first, then a narrower one: the narrow one must
	// not be forwarded beyond broker 0.
	c0.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) {})
	tn.settle()
	before := tn.brokers[1].Stats().SubsReceived
	c0b.Subscribe(NewFilter(TypeIs("t"), Eq("user", event.S("bob"))), func(*event.Event) {})
	tn.settle()
	after := tn.brokers[1].Stats().SubsReceived
	if after != before {
		t.Fatalf("covered subscription was forwarded: B1 subs %d -> %d", before, after)
	}
	// Without covering, it is forwarded.
	tn2 := newChain(4, 3, Options{DisableCovering: true})
	d0 := tn2.addClient(0)
	d0b := tn2.addClient(0)
	d0.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) {})
	tn2.settle()
	before2 := tn2.brokers[1].Stats().SubsReceived
	d0b.Subscribe(NewFilter(TypeIs("t"), Eq("user", event.S("bob"))), func(*event.Event) {})
	tn2.settle()
	if tn2.brokers[1].Stats().SubsReceived == before2 {
		t.Fatalf("ablation: subscription should have been forwarded with covering disabled")
	}
}

func TestCoveringSimplificationWithdrawsNarrow(t *testing.T) {
	tn := newChain(5, 2, Options{})
	c := tn.addClient(0)
	c.Subscribe(NewFilter(TypeIs("t"), Eq("user", event.S("bob"))), func(*event.Event) {})
	tn.settle()
	if got := tn.brokers[1].Stats().TableEntries; got != 1 {
		t.Fatalf("B1 entries = %d, want 1", got)
	}
	// Broader subscription covers the first: B0 should withdraw the
	// narrow one from B1 and install the broad one.
	c.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) {})
	tn.settle()
	if got := tn.brokers[1].Stats().TableEntries; got != 1 {
		t.Fatalf("B1 entries after simplification = %d, want 1 (broad only)", got)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	tn := newChain(6, 3, Options{})
	sub := tn.addClient(0)
	pub := tn.addClient(2)
	count := 0
	f := NewFilter(TypeIs("t"))
	sub.Subscribe(f, func(*event.Event) { count++ })
	tn.settle()
	pub.Publish(mkEvent("t", "u", 1))
	tn.settle()
	sub.Unsubscribe(f)
	tn.settle()
	pub.Publish(mkEvent("t", "u", 2))
	tn.settle()
	if count != 1 {
		t.Fatalf("delivered %d, want 1 (second publish after unsub)", count)
	}
	// Broker tables must be clean again.
	for i, b := range tn.brokers {
		if got := b.Stats().TableEntries; got != 0 {
			t.Fatalf("broker %d still has %d entries after unsubscribe", i, got)
		}
	}
}

func TestUnsubscribeUncoversHiddenFilter(t *testing.T) {
	// Regression for the classic covering bug: a broad filter hides a
	// narrow one; when the broad one is unsubscribed the narrow one must
	// be (re-)forwarded so its subscriber keeps receiving events.
	tn := newChain(7, 3, Options{})
	broadSub := tn.addClient(0)
	narrowSub := tn.addClient(0)
	pub := tn.addClient(2)
	narrowCount := 0
	broad := NewFilter(TypeIs("t"))
	narrow := NewFilter(TypeIs("t"), Eq("user", event.S("bob")))
	broadSub.Subscribe(broad, func(*event.Event) {})
	tn.settle()
	narrowSub.Subscribe(narrow, func(*event.Event) { narrowCount++ })
	tn.settle()
	broadSub.Unsubscribe(broad)
	tn.settle()
	pub.Publish(mkEvent("t", "bob", 1))
	tn.settle()
	if narrowCount != 1 {
		t.Fatalf("narrow subscriber got %d events after broad unsubscribe, want 1", narrowCount)
	}
}

func TestFanOutToMultipleSubscribers(t *testing.T) {
	tn := newChain(8, 4, Options{})
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		sub := tn.addClient(i + 1)
		sub.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) { counts[i]++ })
	}
	pub := tn.addClient(0)
	tn.settle()
	pub.Publish(mkEvent("t", "u", 1))
	tn.settle()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("subscriber %d received %d, want 1", i, c)
		}
	}
}

func TestDuplicateSuppressionAtClient(t *testing.T) {
	tn := newChain(9, 1, Options{})
	sub := tn.addClient(0)
	pub := tn.addClient(0)
	count := 0
	// Two overlapping subscriptions; the event matches both but network
	// dedup at the broker plus ID dedup at the client yields one handler
	// call per subscription, not two copies.
	sub.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) { count++ })
	tn.settle()
	pub.Publish(mkEvent("t", "u", 1))
	pub.Publish(mkEvent("t", "u", 1)) // same ID → duplicate
	tn.settle()
	if count != 1 {
		t.Fatalf("handler ran %d times, want 1 (dup suppressed)", count)
	}
	if sub.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", sub.Duplicates)
	}
}

func TestAdvertisementPruning(t *testing.T) {
	// With UseAdvertisements, a subscription travels only toward
	// advertised publishers.
	tn := newChain(10, 3, Options{UseAdvertisements: true})
	pub := tn.addClient(2)
	pub.Advertise(NewFilter(TypeIs("t")))
	tn.settle()
	sub := tn.addClient(0)
	count := 0
	sub.Subscribe(NewFilter(TypeIs("t"), Eq("user", event.S("anna"))), func(*event.Event) { count++ })
	tn.settle()
	pub.Publish(mkEvent("t", "anna", 1))
	tn.settle()
	if count != 1 {
		t.Fatalf("delivered %d, want 1", count)
	}
	// A subscription that no advertisement intersects stays local.
	sub2 := tn.addClient(0)
	sub2.Subscribe(NewFilter(TypeIs("other.kind")), func(*event.Event) {})
	tn.settle()
	if got := tn.brokers[2].Stats().TableEntries; got != 2 {
		// broker 2's table: its own advert-side sub for "t"/anna + client? —
		// it must NOT contain "other.kind".
		t.Logf("broker2 entries = %d", got)
	}
	for _, ent := range tn.brokers[2].entries {
		for _, c := range ent.filter.Constraints {
			if c.Val.S == "other.kind" {
				t.Fatalf("non-intersecting subscription leaked toward advertiser")
			}
		}
	}
}

func TestLateAdvertisementTriggersSubForwarding(t *testing.T) {
	tn := newChain(11, 3, Options{UseAdvertisements: true})
	sub := tn.addClient(0)
	count := 0
	sub.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) { count++ })
	tn.settle()
	// Advertise *after* subscription: sub must now flow toward publisher.
	pub := tn.addClient(2)
	pub.Advertise(NewFilter(TypeIs("t")))
	tn.settle()
	pub.Publish(mkEvent("t", "anna", 1))
	tn.settle()
	if count != 1 {
		t.Fatalf("delivered %d, want 1 (late advertisement)", count)
	}
}

func TestStatsCounters(t *testing.T) {
	tn := newChain(12, 2, Options{})
	sub := tn.addClient(0)
	pub := tn.addClient(1)
	sub.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) {})
	tn.settle()
	pub.Publish(mkEvent("t", "u", 1))
	tn.settle()
	s0 := tn.brokers[0].Stats()
	s1 := tn.brokers[1].Stats()
	if s1.NeighborFwds != 1 {
		t.Errorf("B1 neighbour forwards = %d, want 1", s1.NeighborFwds)
	}
	if s0.ClientDelivers != 1 {
		t.Errorf("B0 client delivers = %d, want 1", s0.ClientDelivers)
	}
	if s0.TableEntries != 1 || s1.TableEntries != 1 {
		t.Errorf("table entries: B0=%d B1=%d, want 1/1", s0.TableEntries, s1.TableEntries)
	}
}
