package pubsub

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestShardedIndexDifferential drives the serial Index and a ShardedIndex
// through the same mutating add/remove/match stream and requires
// identical visit sets every round — the shard partitioning must be
// invisible to matching semantics.
func TestShardedIndexDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(43))
			ref := NewIndex()
			six := NewShardedIndex(shards)
			live := map[string]Filter{}
			var keys []string

			for round := 0; round < 1200; round++ {
				switch {
				case round%3 == 0 || len(keys) == 0:
					f := ixRandFilter(rng)
					key := f.Key()
					if _, dup := live[key]; !dup {
						live[key] = f
						keys = append(keys, key)
					}
					ref.Add(key, f)
					six.Add(key, f)
				case round%7 == 0:
					i := rng.Intn(len(keys))
					key := keys[i]
					ref.Remove(key)
					six.Remove(key)
					delete(live, key)
					keys = append(keys[:i], keys[i+1:]...)
				}

				ev := ixRandEvent(rng, uint64(round))
				want := map[string]bool{}
				ref.Match(ev, func(key string) { want[key] = true })
				got := map[string]bool{}
				six.Match(ev, func(key string) {
					if got[key] {
						t.Fatalf("round %d: filter %q visited twice", round, key)
					}
					got[key] = true
				})
				if len(got) != len(want) {
					t.Fatalf("round %d: sharded matched %d filters, serial %d", round, len(got), len(want))
				}
				for key := range want {
					if !got[key] {
						t.Fatalf("round %d: sharded missed filter %q", round, key)
					}
				}
			}
			if ref.Len() != six.Len() {
				t.Fatalf("Len diverges: serial %d, sharded %d", ref.Len(), six.Len())
			}
			if ref.Postings() != six.Postings() {
				t.Fatalf("Postings diverges: serial %d, sharded %d", ref.Postings(), six.Postings())
			}
			if ref.AttrCount() != six.AttrCount() {
				t.Fatalf("AttrCount diverges: serial %d, sharded %d", ref.AttrCount(), six.AttrCount())
			}
			if fmt.Sprint(ref.Attrs()) != fmt.Sprint(six.Attrs()) {
				t.Fatalf("Attrs diverge:\nserial:  %v\nsharded: %v", ref.Attrs(), six.Attrs())
			}
		})
	}
}

// TestBrokerDifferentialShardedVsSerial runs the full broker-chain
// differential with the sharded index against the single-shard serial
// reference: delivery sets, Stats, table contents and forwarding state
// must all be identical.
func TestBrokerDifferentialShardedVsSerial(t *testing.T) {
	for _, useAdverts := range []bool{false, true} {
		t.Run(fmt.Sprintf("adverts=%v", useAdverts), func(t *testing.T) {
			runBrokerDifferentialPair(t,
				Options{MatchShards: 8, UseAdvertisements: useAdverts},
				Options{MatchShards: 1, UseAdvertisements: useAdverts})
		})
	}
}

// TestShardedIndexConcurrentStress publishes concurrently across shards
// while subscriptions churn — run under -race in CI. A core of stable
// filters never changes during the run, so every concurrent match must
// report each of them exactly per Filter.Matches (concurrently churning
// filters are allowed to be raced over, stable ones are not). After the
// churners quiesce the index must be equivalent to a serial reference
// rebuilt from the stable set alone.
func TestShardedIndexConcurrentStress(t *testing.T) {
	const (
		nStable    = 48
		publishers = 4
		churners   = 2
		nMatches   = 400
		nChurns    = 300
	)
	six := NewShardedIndex(4)
	ref := NewIndex()
	stable := map[string]Filter{}
	rng := rand.New(rand.NewSource(99))
	for len(stable) < nStable {
		f := ixRandFilter(rng)
		if len(f.Constraints) == 0 {
			continue // zero-constraint filters match everything; keep selectivity
		}
		key := f.Key()
		if _, dup := stable[key]; dup {
			continue
		}
		stable[key] = f
		six.Add(key, f)
		ref.Add(key, f)
	}

	var wg sync.WaitGroup
	errs := make(chan error, publishers)
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < nMatches; i++ {
				ev := ixRandEvent(rng, uint64(i))
				got := map[string]bool{}
				six.Match(ev, func(key string) { got[key] = true })
				for key, f := range stable {
					if want := f.Matches(ev); want != got[key] {
						errs <- fmt.Errorf("stable filter %q: match=%v want %v for event %v",
							key, got[key], want, ev.Attrs)
						return
					}
				}
			}
		}(int64(1000 + p))
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []string
			for i := 0; i < nChurns; i++ {
				if len(mine) > 0 && rng.Intn(2) == 0 {
					j := rng.Intn(len(mine))
					six.Remove(mine[j])
					mine = append(mine[:j], mine[j+1:]...)
					continue
				}
				f := ixRandFilter(rng)
				key := fmt.Sprintf("churn-%d-%s", seed, f.Key())
				six.Add(key, f)
				mine = append(mine, key)
			}
			for _, key := range mine {
				six.Remove(key)
			}
		}(int64(2000 + c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: all churned filters withdrawn, so the index must be
	// exactly the stable set again.
	if six.Len() != len(stable) {
		t.Fatalf("after churn: %d filters live, want %d", six.Len(), len(stable))
	}
	if six.Postings() != ref.Postings() {
		t.Fatalf("after churn: %d postings, reference %d", six.Postings(), ref.Postings())
	}
	for i := 0; i < 200; i++ {
		ev := ixRandEvent(rng, uint64(50_000+i))
		want := map[string]bool{}
		ref.Match(ev, func(key string) { want[key] = true })
		got := map[string]bool{}
		six.Match(ev, func(key string) { got[key] = true })
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("post-quiescence divergence on event %v:\nsharded: %v\nserial:  %v",
				ev.Attrs, got, want)
		}
	}
}

// BenchmarkShardedPublish measures concurrent match throughput at 10k
// subscriptions as the shard count grows (E-T14's engine). The serial
// reference index is not safe for concurrent matching, so its parallel
// baseline serialises behind a mutex — exactly the alternative a
// multi-core broker would otherwise face.
func BenchmarkShardedPublish(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		br, evs := benchBrokerOpts(10000, Options{MatchShards: shards})
		var mu sync.Mutex
		serial := shards == 1
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					ev := evs[i%len(evs)]
					i++
					if serial {
						mu.Lock()
					}
					br.index.Match(ev, func(string) {})
					if serial {
						mu.Unlock()
					}
				}
			})
		})
	}
}
