package pubsub

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
)

// TestMobilityHandoffNoLoss reproduces the Mobikit behaviour (§3): a
// mobile client detaches, events published meanwhile are buffered by the
// proxy at its old broker, and all are replayed after re-attachment at a
// new broker — zero loss, zero duplicates.
func TestMobilityHandoffNoLoss(t *testing.T) {
	tn := newChain(20, 4, Options{})
	mobile := tn.addClient(0)
	pub := tn.addClient(3)
	var got []uint64
	mobile.Subscribe(NewFilter(TypeIs("t")), func(e *event.Event) {
		got = append(got, uint64(e.GetNum("seq")))
	})
	tn.settle()

	publish := func(seq uint64) {
		e := event.New("t", "pub", tn.world.Now()).Set("seq", event.I(int64(seq))).Stamp(seq)
		pub.Publish(e)
	}
	publish(1)
	tn.settle()

	// Disconnect; events 2..4 arrive while detached.
	mobile.Detach()
	tn.settle()
	publish(2)
	publish(3)
	publish(4)
	tn.settle()
	if len(got) != 1 {
		t.Fatalf("events leaked to detached client: %v", got)
	}

	// Re-attach at the far broker; buffered events must be replayed.
	var handoffErr error
	dropped := -1
	mobile.AttachTo(tn.brokers[3].ID(), 5*time.Second, func(d int, err error) {
		dropped = d
		handoffErr = err
	})
	tn.settle()
	if handoffErr != nil {
		t.Fatalf("handoff error: %v", handoffErr)
	}
	if dropped != 0 {
		t.Fatalf("proxy dropped %d events", dropped)
	}
	publish(5)
	tn.settle()

	// Network jitter may reorder the in-flight batch; require the full
	// set with 1 first (pre-detach) and 5 last (post-reattach).
	if len(got) != 5 {
		t.Fatalf("received %v, want 5 events", got)
	}
	if got[0] != 1 || got[4] != 5 {
		t.Fatalf("received %v, want 1 first and 5 last", got)
	}
	seen := map[uint64]bool{}
	for _, s := range got {
		seen[s] = true
	}
	for s := uint64(1); s <= 5; s++ {
		if !seen[s] {
			t.Fatalf("event %d lost: %v", s, got)
		}
	}
	if mobile.Duplicates != 0 {
		t.Fatalf("duplicates = %d, want 0", mobile.Duplicates)
	}
	// The old broker must no longer hold subscriptions for the client.
	if tn.brokers[0].Stats().TableEntries != 0 {
		// Note: broker 0 may retain the forwarded entry for broker 3's
		// direction — but client-dir entries must be gone.
		for _, ent := range tn.brokers[0].entries {
			for d := range ent.dirs {
				if !tn.brokers[0].neighbors[d] {
					t.Fatalf("old broker retains client subscription after handoff")
				}
			}
		}
	}
}

// TestMobilityWithoutProxyLosesEvents is the baseline for E-T9: a client
// that simply unsubscribes/resubscribes (no proxy) misses events published
// during the move.
func TestMobilityWithoutProxyLosesEvents(t *testing.T) {
	tn := newChain(21, 4, Options{})
	mobile := tn.addClient(0)
	pub := tn.addClient(3)
	count := 0
	f := NewFilter(TypeIs("t"))
	mobile.Subscribe(f, func(*event.Event) { count++ })
	tn.settle()

	// Naive move: unsubscribe, travel, resubscribe later.
	mobile.Unsubscribe(f)
	tn.settle()
	for seq := uint64(1); seq <= 3; seq++ {
		pub.Publish(event.New("t", "pub", tn.world.Now()).Stamp(seq))
	}
	tn.settle()
	mobile.broker = tn.brokers[3].ID()
	mobile.Subscribe(f, func(*event.Event) { count++ })
	tn.settle()
	if count != 0 {
		t.Fatalf("naive move should lose the 3 in-flight events, got %d", count)
	}
}

func TestProxyBufferOverflowDrops(t *testing.T) {
	tn := newChain(22, 2, Options{ProxyBufferLimit: 2})
	mobile := tn.addClient(0)
	pub := tn.addClient(1)
	mobile.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) {})
	tn.settle()
	mobile.Detach()
	tn.settle()
	for seq := uint64(1); seq <= 5; seq++ {
		pub.Publish(event.New("t", "pub", tn.world.Now()).Stamp(seq))
	}
	tn.settle()
	dropped := -1
	mobile.AttachTo(tn.brokers[1].ID(), 5*time.Second, func(d int, err error) { dropped = d })
	tn.settle()
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3 (buffer limit 2 of 5 events)", dropped)
	}
}

// TestProxyBufferFillDropAndOrderedReclaim pins down the proxy contract:
// the buffer holds exactly ProxyBufferLimit events, every further match
// is counted as dropped (not silently lost), and the reclaim replays the
// retained prefix in publish order.
func TestProxyBufferFillDropAndOrderedReclaim(t *testing.T) {
	const limit = 4
	const published = 7
	tn := newChain(24, 2, Options{ProxyBufferLimit: limit})
	mobile := tn.addClient(0)
	pub := tn.addClient(1)
	var got []int64
	mobile.Subscribe(NewFilter(TypeIs("t")), func(e *event.Event) {
		got = append(got, int64(e.GetNum("seq")))
	})
	tn.settle()
	mobile.Detach()
	tn.settle()
	for seq := uint64(1); seq <= published; seq++ {
		pub.Publish(event.New("t", "pub", tn.world.Now()).
			Set("seq", event.I(int64(seq))).Stamp(seq))
		tn.settle() // serialise arrivals so the buffer order is the publish order
	}
	// The proxy must be holding exactly the first `limit` events.
	p := tn.brokers[0].proxies[mobile.ep.ID()]
	if p == nil {
		t.Fatal("no proxy installed at the old broker after Detach")
	}
	if len(p.buf) != limit {
		t.Fatalf("proxy buffered %d events, want %d", len(p.buf), limit)
	}
	if p.dropped != published-limit {
		t.Fatalf("proxy counted %d drops, want %d", p.dropped, published-limit)
	}

	dropped := -1
	var rerr error
	mobile.AttachTo(tn.brokers[1].ID(), 5*time.Second, func(d int, err error) {
		dropped = d
		rerr = err
	})
	tn.settle()
	if rerr != nil {
		t.Fatalf("reclaim error: %v", rerr)
	}
	if dropped != published-limit {
		t.Fatalf("reclaim reported %d drops, want %d", dropped, published-limit)
	}
	// The retained prefix must be flushed in publish order.
	if len(got) != limit {
		t.Fatalf("replayed %d events, want %d: %v", len(got), limit, got)
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("reclaim out of order: got %v, want 1..%d in order", got, limit)
		}
	}
	// The proxy must be gone after the reclaim.
	if _, still := tn.brokers[0].proxies[mobile.ep.ID()]; still {
		t.Fatal("proxy not removed after reclaim")
	}
}

// TestDetachIsIdempotent ensures a duplicate Detach (e.g. a retransmitted
// detach message) does not clear an already-buffering proxy.
func TestDetachIsIdempotent(t *testing.T) {
	tn := newChain(25, 2, Options{})
	mobile := tn.addClient(0)
	pub := tn.addClient(1)
	mobile.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) {})
	tn.settle()
	mobile.Detach()
	tn.settle()
	pub.Publish(event.New("t", "pub", tn.world.Now()).Stamp(1))
	tn.settle()
	mobile.Detach() // duplicate
	tn.settle()
	p := tn.brokers[0].proxies[mobile.ep.ID()]
	if p == nil || len(p.buf) != 1 {
		t.Fatalf("duplicate detach clobbered the proxy buffer: %+v", p)
	}
}

// TestReclaimWithoutProxy covers a client attaching without ever having
// detached: the reclaim of a nonexistent proxy must answer cleanly with
// zero events and zero drops rather than stalling the handoff.
func TestReclaimWithoutProxy(t *testing.T) {
	tn := newChain(26, 2, Options{})
	mobile := tn.addClient(0)
	mobile.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) {})
	tn.settle()
	dropped := -1
	var rerr error
	mobile.AttachTo(tn.brokers[1].ID(), 5*time.Second, func(d int, err error) {
		dropped = d
		rerr = err
	})
	tn.settle()
	if rerr != nil {
		t.Fatalf("handoff error without proxy: %v", rerr)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
}

func TestReattachToSameBroker(t *testing.T) {
	tn := newChain(23, 2, Options{})
	mobile := tn.addClient(0)
	pub := tn.addClient(1)
	count := 0
	mobile.Subscribe(NewFilter(TypeIs("t")), func(*event.Event) { count++ })
	tn.settle()
	mobile.Detach()
	tn.settle()
	pub.Publish(event.New("t", "pub", 0).Stamp(1))
	tn.settle()
	done := false
	mobile.AttachTo(tn.brokers[0].ID(), 5*time.Second, func(int, error) { done = true })
	tn.settle()
	if !done {
		t.Fatalf("handoff completion callback did not fire")
	}
	// Same-broker reattach: the proxy is still holding the event; it is
	// reclaimed lazily on the next cross-broker move, or delivery resumes
	// for new events. New events must flow.
	pub.Publish(event.New("t", "pub", 0).Stamp(2))
	tn.settle()
	if count == 0 {
		t.Fatalf("no events after same-broker reattach")
	}
}
