package pubsub

import (
	"math"
	"sort"

	"github.com/gloss/active/internal/event"
)

// This file implements the Siena/Gryphon-style counting algorithm for
// content-based matching. Each distinct filter in the broker's table is
// decomposed into per-attribute constraint postings; publishing an event
// touches only the postings its attributes can satisfy, and a counting
// table declares a filter matched once every one of its constraints has
// been satisfied. Publish cost therefore tracks the number of *matching*
// constraints rather than the size of the subscription table, which the
// linear scan it replaces (Broker.matchLinear, preserved as the
// differential reference) could not do.
//
// Postings are organised by attribute name, then by operator and value
// domain. Equality and range constraints over numeric and string values
// are kept sorted by value so the satisfied set resolves with a binary
// search; every other operator (ne, substring ops, exists on the value
// side, and degenerate bool/invalid-valued comparisons) is scanned
// linearly within its attribute, which keeps the index's semantics
// byte-for-byte identical to Filter.Matches.

// posting is one constraint of one indexed filter.
type posting struct {
	con Constraint
	fx  *ixFilter
}

// ixFilter is the index's record of one distinct filter.
type ixFilter struct {
	key    string
	filter Filter
	slot   int // dense position in the counting table
	total  int // constraints to satisfy before the filter matches
}

// Posting bucket kinds: how a bucket is ordered, and therefore how the
// satisfied span is located at match time.
const (
	bucketMisc   = iota // unordered; evaluate Constraint.Matches per posting
	bucketExists        // satisfied by attribute presence alone
	bucketNum           // sorted by Val.Num()
	bucketStr           // sorted by Val.S
)

// attrPostings holds every posting that constrains one attribute.
type attrPostings struct {
	exists []posting
	eqNum  []posting
	ltNum  []posting
	leNum  []posting
	gtNum  []posting
	geNum  []posting
	eqStr  []posting
	ltStr  []posting
	leStr  []posting
	gtStr  []posting
	geStr  []posting
	misc   []posting
}

// bucket routes a constraint to the posting list it lives in, together
// with the list's ordering kind. NaN-valued comparisons are routed to the
// linear bucket: NaN breaks the total order binary search relies on, and
// Filter.Matches gives them exact (if degenerate) semantics.
func (ap *attrPostings) bucket(c Constraint) (*[]posting, int) {
	switch c.Op {
	case OpExists:
		return &ap.exists, bucketExists
	case OpEq, OpLt, OpLe, OpGt, OpGe:
		if n, ok := c.Val.Num(); ok && !math.IsNaN(n) {
			switch c.Op {
			case OpEq:
				return &ap.eqNum, bucketNum
			case OpLt:
				return &ap.ltNum, bucketNum
			case OpLe:
				return &ap.leNum, bucketNum
			case OpGt:
				return &ap.gtNum, bucketNum
			default:
				return &ap.geNum, bucketNum
			}
		}
		if c.Val.K == event.KindString {
			switch c.Op {
			case OpEq:
				return &ap.eqStr, bucketStr
			case OpLt:
				return &ap.ltStr, bucketStr
			case OpLe:
				return &ap.leStr, bucketStr
			case OpGt:
				return &ap.gtStr, bucketStr
			default:
				return &ap.geStr, bucketStr
			}
		}
		return &ap.misc, bucketMisc
	default:
		return &ap.misc, bucketMisc
	}
}

// lists enumerates every posting bucket once, so size and emptiness
// checks cannot drift from the field set.
func (ap *attrPostings) lists() [][]posting {
	return [][]posting{
		ap.exists,
		ap.eqNum, ap.ltNum, ap.leNum, ap.gtNum, ap.geNum,
		ap.eqStr, ap.ltStr, ap.leStr, ap.gtStr, ap.geStr,
		ap.misc,
	}
}

func (ap *attrPostings) empty() bool { return ap.size() == 0 }

func (ap *attrPostings) size() int {
	n := 0
	for _, ps := range ap.lists() {
		n += len(ps)
	}
	return n
}

// insertPosting adds p to ps, keeping value-ordered buckets sorted.
func insertPosting(ps *[]posting, kind int, p posting) {
	i := len(*ps)
	switch kind {
	case bucketNum:
		n, _ := p.con.Val.Num()
		i = sort.Search(len(*ps), func(j int) bool {
			m, _ := (*ps)[j].con.Val.Num()
			return m >= n
		})
	case bucketStr:
		s := p.con.Val.S
		i = sort.Search(len(*ps), func(j int) bool { return (*ps)[j].con.Val.S >= s })
	}
	*ps = append(*ps, posting{})
	copy((*ps)[i+1:], (*ps)[i:])
	(*ps)[i] = p
}

// removePosting deletes the posting for exactly (p.con, p.fx); one
// instance only, so filters carrying duplicate constraints stay balanced.
func removePosting(ps *[]posting, kind int, p posting) bool {
	start := 0
	switch kind {
	case bucketNum:
		n, _ := p.con.Val.Num()
		start = sort.Search(len(*ps), func(j int) bool {
			m, _ := (*ps)[j].con.Val.Num()
			return m >= n
		})
	case bucketStr:
		s := p.con.Val.S
		start = sort.Search(len(*ps), func(j int) bool { return (*ps)[j].con.Val.S >= s })
	}
	for i := start; i < len(*ps); i++ {
		q := (*ps)[i]
		switch kind {
		case bucketNum:
			n, _ := p.con.Val.Num()
			if m, _ := q.con.Val.Num(); m > n {
				return false
			}
		case bucketStr:
			if q.con.Val.S > p.con.Val.S {
				return false
			}
		}
		if q.fx == p.fx && q.con == p.con {
			*ps = append((*ps)[:i], (*ps)[i+1:]...)
			return true
		}
	}
	return false
}

// countTable is the per-match counting state of the algorithm: one
// counter per filter slot, validated by a stamp so no clear is paid
// between matches. The serial Index owns one for its lifetime; the
// ShardedIndex pools them per Match call so concurrent matches never
// share counters. The owner column records which filter a slot's count
// belongs to this match — under concurrent add/remove a slot can be
// recycled mid-match, and the owner check stops a new tenant from
// inheriting a previous tenant's partial count.
type countTable struct {
	counts []int
	owner  []*ixFilter
	stamps []uint64
	stamp  uint64
}

// begin opens a new match: all existing counts become stale at once.
func (t *countTable) begin() { t.stamp++ }

// bump records one satisfied constraint for fx and emits the filter once
// its count reaches the constraint total. Growth is lazy so the table
// tracks slot-space expansion without coordination.
func (t *countTable) bump(fx *ixFilter, visit func(string)) {
	s := fx.slot
	if s >= len(t.counts) {
		grown := make([]int, s+s/2+8)
		copy(grown, t.counts)
		t.counts = grown
		owner := make([]*ixFilter, len(grown))
		copy(owner, t.owner)
		t.owner = owner
		stamps := make([]uint64, len(grown))
		copy(stamps, t.stamps)
		t.stamps = stamps
	}
	if t.stamps[s] != t.stamp || t.owner[s] != fx {
		t.stamps[s] = t.stamp
		t.owner[s] = fx
		t.counts[s] = 0
	}
	t.counts[s]++
	if t.counts[s] == fx.total {
		visit(fx.key)
	}
}

// Index is the counting-algorithm predicate index over a broker's
// distinct subscription filters. Not safe for concurrent use; brokers run
// under the endpoint's serial callback discipline. ShardedIndex is the
// concurrency-safe attribute-sharded variant; Index remains the serial
// reference it is differentially tested against.
type Index struct {
	filters map[string]*ixFilter
	attrs   map[string]*attrPostings
	// attrOrder keeps the indexed attribute names sorted, for
	// deterministic introspection (Attrs) and debugging.
	attrOrder []string
	// empties are zero-constraint filters: they match every event.
	empties []*ixFilter

	slots []*ixFilter
	free  []int
	ct    countTable
}

// NewIndex returns an empty predicate index.
func NewIndex() *Index {
	return &Index{
		filters: make(map[string]*ixFilter),
		attrs:   make(map[string]*attrPostings),
	}
}

// Len returns the number of indexed filters.
func (ix *Index) Len() int { return len(ix.filters) }

// Postings returns the total number of constraint postings.
func (ix *Index) Postings() int {
	n := 0
	for _, ap := range ix.attrs {
		n += ap.size()
	}
	return n
}

// AttrCount returns the number of attributes with live postings.
func (ix *Index) AttrCount() int { return len(ix.attrs) }

// Attrs returns the indexed attribute names in sorted order.
func (ix *Index) Attrs() []string {
	out := make([]string, len(ix.attrOrder))
	copy(out, ix.attrOrder)
	return out
}

// Add indexes f under key (its Filter.Key). Adding an existing key is a
// no-op, mirroring the broker's distinct-filter table.
func (ix *Index) Add(key string, f Filter) {
	if _, dup := ix.filters[key]; dup {
		return
	}
	fx := &ixFilter{key: key, filter: f, total: len(f.Constraints)}
	if n := len(ix.free); n > 0 {
		fx.slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.slots[fx.slot] = fx
	} else {
		fx.slot = len(ix.slots)
		ix.slots = append(ix.slots, fx)
	}
	ix.filters[key] = fx
	if fx.total == 0 {
		ix.empties = append(ix.empties, fx)
		return
	}
	for _, c := range f.Constraints {
		ap := ix.attrs[c.Attr]
		if ap == nil {
			ap = &attrPostings{}
			ix.attrs[c.Attr] = ap
			i := sort.SearchStrings(ix.attrOrder, c.Attr)
			ix.attrOrder = append(ix.attrOrder, "")
			copy(ix.attrOrder[i+1:], ix.attrOrder[i:])
			ix.attrOrder[i] = c.Attr
		}
		ps, kind := ap.bucket(c)
		insertPosting(ps, kind, posting{con: c, fx: fx})
	}
}

// Remove drops the filter indexed under key. Unknown keys are a no-op.
func (ix *Index) Remove(key string) {
	fx := ix.filters[key]
	if fx == nil {
		return
	}
	delete(ix.filters, key)
	if fx.total == 0 {
		for i, e := range ix.empties {
			if e == fx {
				ix.empties = append(ix.empties[:i], ix.empties[i+1:]...)
				break
			}
		}
	} else {
		for _, c := range fx.filter.Constraints {
			ap := ix.attrs[c.Attr]
			if ap == nil {
				continue
			}
			ps, kind := ap.bucket(c)
			removePosting(ps, kind, posting{con: c, fx: fx})
			if ap.empty() {
				delete(ix.attrs, c.Attr)
				i := sort.SearchStrings(ix.attrOrder, c.Attr)
				if i < len(ix.attrOrder) && ix.attrOrder[i] == c.Attr {
					ix.attrOrder = append(ix.attrOrder[:i], ix.attrOrder[i+1:]...)
				}
			}
		}
	}
	ix.slots[fx.slot] = nil
	ix.free = append(ix.free, fx.slot)
}

// Match invokes visit exactly once for the key of every indexed filter
// the event satisfies. The visit order is unspecified.
func (ix *Index) Match(ev *event.Event, visit func(key string)) {
	ix.ct.begin()
	for _, fx := range ix.empties {
		visit(fx.key)
	}
	// Implicit envelope attributes first; they shadow Attrs entries of
	// the same name, exactly as Event.Get does.
	ix.matchAttr("type", event.S(ev.Type), visit)
	ix.matchAttr("source", event.S(ev.Source), visit)
	ix.matchAttr("time", event.I(int64(ev.Time)), visit)
	for name, v := range ev.Attrs {
		switch name {
		case "type", "source", "time":
			continue
		}
		ix.matchAttr(name, v, visit)
	}
}

func (ix *Index) matchAttr(name string, v event.Value, visit func(string)) {
	if ap := ix.attrs[name]; ap != nil {
		probeAttr(ap, v, &ix.ct, visit)
	}
}

// probeAttr runs one attribute's value against its postings, bumping the
// counting table for every satisfied constraint. It is the shared match
// engine of the serial Index and the ShardedIndex: both the reference
// and the sharded path must resolve a posting bucket identically, so
// there is exactly one copy of this logic.
func probeAttr(ap *attrPostings, v event.Value, ct *countTable, visit func(string)) {
	for i := range ap.exists {
		ct.bump(ap.exists[i].fx, visit)
	}
	if n, ok := v.Num(); ok {
		if math.IsNaN(n) {
			// NaN compares as equal to everything under Value.Compare;
			// only direct evaluation reproduces that faithfully.
			scanBucket(ap.eqNum, v, ct, visit)
			scanBucket(ap.ltNum, v, ct, visit)
			scanBucket(ap.leNum, v, ct, visit)
			scanBucket(ap.gtNum, v, ct, visit)
			scanBucket(ap.geNum, v, ct, visit)
		} else {
			num := func(ps []posting, j int) float64 { m, _ := ps[j].con.Val.Num(); return m }
			// eq: postings whose value equals n. The float64 span is a
			// superset of the truly equal postings — Value.Equal compares
			// same-kind ints exactly, and distinct int64s beyond 2^53
			// collide in float64 — so each candidate is confirmed with
			// the constraint's own predicate.
			ps := ap.eqNum
			for i := sort.Search(len(ps), func(j int) bool { return num(ps, j) >= n }); i < len(ps) && num(ps, i) == n; i++ {
				if ps[i].con.Matches(v) {
					ct.bump(ps[i].fx, visit)
				}
			}
			// v < c.Val ⇔ c.Val > n: the suffix strictly above n.
			ps = ap.ltNum
			for i := sort.Search(len(ps), func(j int) bool { return num(ps, j) > n }); i < len(ps); i++ {
				ct.bump(ps[i].fx, visit)
			}
			// v ≤ c.Val: the suffix from n up.
			ps = ap.leNum
			for i := sort.Search(len(ps), func(j int) bool { return num(ps, j) >= n }); i < len(ps); i++ {
				ct.bump(ps[i].fx, visit)
			}
			// v > c.Val: the prefix strictly below n.
			ps = ap.gtNum
			for i, hi := 0, sort.Search(len(ps), func(j int) bool { return num(ps, j) >= n }); i < hi; i++ {
				ct.bump(ps[i].fx, visit)
			}
			// v ≥ c.Val: the prefix up to n.
			ps = ap.geNum
			for i, hi := 0, sort.Search(len(ps), func(j int) bool { return num(ps, j) > n }); i < hi; i++ {
				ct.bump(ps[i].fx, visit)
			}
		}
	} else if v.K == event.KindString {
		s := v.S
		ps := ap.eqStr
		for i := sort.Search(len(ps), func(j int) bool { return ps[j].con.Val.S >= s }); i < len(ps) && ps[i].con.Val.S == s; i++ {
			if ps[i].con.Matches(v) {
				ct.bump(ps[i].fx, visit)
			}
		}
		ps = ap.ltStr
		for i := sort.Search(len(ps), func(j int) bool { return ps[j].con.Val.S > s }); i < len(ps); i++ {
			ct.bump(ps[i].fx, visit)
		}
		ps = ap.leStr
		for i := sort.Search(len(ps), func(j int) bool { return ps[j].con.Val.S >= s }); i < len(ps); i++ {
			ct.bump(ps[i].fx, visit)
		}
		ps = ap.gtStr
		for i, hi := 0, sort.Search(len(ps), func(j int) bool { return ps[j].con.Val.S >= s }); i < hi; i++ {
			ct.bump(ps[i].fx, visit)
		}
		ps = ap.geStr
		for i, hi := 0, sort.Search(len(ps), func(j int) bool { return ps[j].con.Val.S > s }); i < hi; i++ {
			ct.bump(ps[i].fx, visit)
		}
	}
	for i := range ap.misc {
		if ap.misc[i].con.Matches(v) {
			ct.bump(ap.misc[i].fx, visit)
		}
	}
}

// scanBucket is the binary-search bypass for degenerate values.
func scanBucket(ps []posting, v event.Value, ct *countTable, visit func(string)) {
	for i := range ps {
		if ps[i].con.Matches(v) {
			ct.bump(ps[i].fx, visit)
		}
	}
}
