package pubsub

import (
	"math/rand"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// bpEndpoint is a scriptable netapi.Endpoint + Backpressured: tests
// mark destinations saturated and observe exactly what the broker sends.
type bpEndpoint struct {
	id        ids.ID
	rng       *rand.Rand
	sent      []sentRec
	saturated map[ids.ID]bool
	drainFns  []func(ids.ID)
}

type sentRec struct {
	to  ids.ID
	msg wire.Message
}

func newBPEndpoint(name string) *bpEndpoint {
	return &bpEndpoint{
		id:        ids.FromString(name),
		rng:       rand.New(rand.NewSource(5)),
		saturated: make(map[ids.ID]bool),
	}
}

func (e *bpEndpoint) ID() ids.ID            { return e.id }
func (e *bpEndpoint) Info() netapi.NodeInfo { return netapi.NodeInfo{ID: e.id} }
func (e *bpEndpoint) Clock() vclock.Clock   { return nil }
func (e *bpEndpoint) Rand() *rand.Rand      { return e.rng }
func (e *bpEndpoint) Send(to ids.ID, msg wire.Message) {
	e.sent = append(e.sent, sentRec{to: to, msg: msg})
}
func (e *bpEndpoint) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	cb(nil, netapi.ErrUnreachable)
}
func (e *bpEndpoint) Handle(string, netapi.Handler) {}

func (e *bpEndpoint) QueuedBytes(to ids.ID) int {
	if e.saturated[to] {
		return 1 << 20
	}
	return 0
}
func (e *bpEndpoint) Saturated(to ids.ID) bool   { return e.saturated[to] }
func (e *bpEndpoint) OnDrain(fn func(to ids.ID)) { e.drainFns = append(e.drainFns, fn) }
func (e *bpEndpoint) fireDrain(to ids.ID) {
	for _, fn := range e.drainFns {
		fn(to)
	}
}

// sentTo filters the send log by destination.
func (e *bpEndpoint) sentTo(to ids.ID) []wire.Message {
	var out []wire.Message
	for _, r := range e.sent {
		if r.to == to {
			out = append(out, r.msg)
		}
	}
	return out
}

// TestControlMessageMarking pins which pub/sub messages are exempt from
// budget drops: routing state is control, event traffic is not.
func TestControlMessageMarking(t *testing.T) {
	control := []wire.Message{
		&SubMsg{}, &UnsubMsg{}, &AdvMsg{}, &UnadvMsg{},
		&PeerMsg{}, &DetachMsg{}, &ReclaimMsg{},
	}
	for _, m := range control {
		if !wire.Control(m) {
			t.Errorf("%s must be control-plane traffic", m.Kind())
		}
	}
	data := []wire.Message{&PubMsg{}, &DeliverMsg{}, &ReclaimReply{}}
	for _, m := range data {
		if wire.Control(m) {
			t.Errorf("%s must NOT be control-plane traffic", m.Kind())
		}
	}
}

// TestBrokerShedsDeliveriesFirst pins the shed order under
// backpressure: per-subscriber deliveries toward a saturated
// destination are dropped at the broker, while neighbour forwards (one
// PubMsg serving a whole subtree) and control traffic keep flowing.
func TestBrokerShedsDeliveriesFirst(t *testing.T) {
	ep := newBPEndpoint("shed-broker")
	b := NewBroker(ep, Options{})
	nbor := ids.FromString("shed-nbor")
	b.AddNeighbor(nbor)

	sub1 := ids.FromString("shed-sub-1")
	sub2 := ids.FromString("shed-sub-2")
	f := NewFilter(TypeIs("shed.evt"))
	b.subscribe(sub1, f)
	b.subscribe(sub2, f)
	b.subscribe(nbor, f) // neighbour forwards events too

	pub := ids.FromString("shed-pub")
	mkEvent := func(stamp uint64) *event.Event {
		return event.New("shed.evt", "shed", 0).Set("x", event.I(1)).Stamp(stamp)
	}

	// Saturate sub1's link and the neighbour's: only the subscriber
	// delivery is shed; the forward must survive.
	ep.saturated[sub1] = true
	ep.saturated[nbor] = true
	ep.sent = nil
	b.handlePub(nil, pub, &PubMsg{Event: mkEvent(1)})

	if got := len(ep.sentTo(sub1)); got != 0 {
		t.Fatalf("saturated subscriber got %d messages, want 0 (shed)", got)
	}
	if got := len(ep.sentTo(sub2)); got != 1 {
		t.Fatalf("healthy subscriber got %d messages, want 1", got)
	}
	fwds := ep.sentTo(nbor)
	if len(fwds) != 1 {
		t.Fatalf("saturated neighbour got %d messages, want 1 (forwards are never shed)", len(fwds))
	}
	if _, ok := fwds[0].(*PubMsg); !ok {
		t.Fatalf("neighbour received %T, want *PubMsg", fwds[0])
	}
	st := b.Stats()
	if st.ShedDeliveries != 1 {
		t.Fatalf("ShedDeliveries = %d, want 1", st.ShedDeliveries)
	}
	if st.ClientDelivers != 1 {
		t.Fatalf("ClientDelivers = %d, want 1 (shed deliveries are not counted as delivered)", st.ClientDelivers)
	}

	// Control traffic keeps flowing to the saturated destination — the
	// broker sheds only fan-out, never subscription state.
	ep.sent = nil
	b.subscribe(sub2, NewFilter(TypeIs("shed.other")))
	sawControl := false
	for _, m := range ep.sentTo(nbor) {
		if wire.Control(m) {
			sawControl = true
		}
	}
	if !sawControl {
		t.Fatal("subscription propagation stopped toward the saturated neighbour")
	}

	// Drain ends the episode: DrainEvents counts it and deliveries
	// resume toward the recovered destination.
	ep.saturated[sub1] = false
	ep.fireDrain(sub1)
	if st := b.Stats(); st.DrainEvents != 1 {
		t.Fatalf("DrainEvents = %d, want 1", st.DrainEvents)
	}
	ep.sent = nil
	b.handlePub(nil, pub, &PubMsg{Event: mkEvent(2)})
	if got := len(ep.sentTo(sub1)); got != 1 {
		t.Fatalf("recovered subscriber got %d messages, want 1", got)
	}
}

// TestBrokerShedDisabled: the ablation switch restores blind fan-out.
func TestBrokerShedDisabled(t *testing.T) {
	ep := newBPEndpoint("noshed-broker")
	b := NewBroker(ep, Options{DisableShedding: true})
	sub := ids.FromString("noshed-sub")
	b.subscribe(sub, NewFilter(TypeIs("shed.evt")))
	ep.saturated[sub] = true
	b.handlePub(nil, ids.FromString("noshed-pub"), &PubMsg{
		Event: event.New("shed.evt", "shed", 0).Stamp(1)})
	if got := len(ep.sentTo(sub)); got != 1 {
		t.Fatalf("DisableShedding broker sent %d messages, want 1", got)
	}
	if st := b.Stats(); st.ShedDeliveries != 0 {
		t.Fatalf("ShedDeliveries = %d with shedding disabled, want 0", st.ShedDeliveries)
	}
}
