package pubsub

import (
	"fmt"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/wire"
)

// Compact binary wire forms for the pub/sub protocol — the hottest
// message family in the system (every publish fans out through broker
// chains as PubMsg/DeliverMsg; subscription churn moves filters). The
// XML forms in messages.go remain the interop reference; the
// differential test in internal/wire proves both decode identically.

// AppendWire appends the filter: a constraint count, then per constraint
// the attribute, an operator byte, and (except for exists) the value.
func (f Filter) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(f.Constraints)))
	for _, c := range f.Constraints {
		b = wire.AppendString(b, c.Attr)
		b = wire.AppendUvarint(b, uint64(c.Op))
		if c.Op != OpExists {
			b = c.Val.AppendWire(b)
		}
	}
	return b
}

// ParseWire reads the form produced by AppendWire.
func (f *Filter) ParseWire(r *wire.BinReader) error {
	n := r.Count()
	f.Constraints = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		c := Constraint{Attr: r.String(), Op: Op(r.Uvarint())}
		if c.Op <= OpInvalid || c.Op > OpExists {
			r.Poison(fmt.Errorf("pubsub: unknown wire operator %d", int(c.Op)))
			return r.Err()
		}
		if c.Op != OpExists {
			c.Val = event.ReadValue(r)
		}
		f.Constraints = append(f.Constraints, c)
	}
	return r.Err()
}

// Binary forms for every pub/sub message. Filter-carrying and
// event-carrying messages delegate to the shared encoders above; the
// signalling messages are empty bodies.

var (
	_ wire.BinaryMessage = (*SubMsg)(nil)
	_ wire.BinaryMessage = (*UnsubMsg)(nil)
	_ wire.BinaryMessage = (*PubMsg)(nil)
	_ wire.BinaryMessage = (*DeliverMsg)(nil)
	_ wire.BinaryMessage = (*AdvMsg)(nil)
	_ wire.BinaryMessage = (*UnadvMsg)(nil)
	_ wire.BinaryMessage = (*PeerMsg)(nil)
	_ wire.BinaryMessage = (*DetachMsg)(nil)
	_ wire.BinaryMessage = (*ReclaimMsg)(nil)
	_ wire.BinaryMessage = (*ReclaimReply)(nil)
)

// AppendWire implements wire.BinaryMessage.
func (m *SubMsg) AppendWire(b []byte) []byte { return m.Filter.AppendWire(b) }

// ParseWire implements wire.BinaryMessage.
func (m *SubMsg) ParseWire(r *wire.BinReader) error { return m.Filter.ParseWire(r) }

// AppendWire implements wire.BinaryMessage.
func (m *UnsubMsg) AppendWire(b []byte) []byte { return m.Filter.AppendWire(b) }

// ParseWire implements wire.BinaryMessage.
func (m *UnsubMsg) ParseWire(r *wire.BinReader) error { return m.Filter.ParseWire(r) }

// AppendWire implements wire.BinaryMessage.
func (m *AdvMsg) AppendWire(b []byte) []byte { return m.Filter.AppendWire(b) }

// ParseWire implements wire.BinaryMessage.
func (m *AdvMsg) ParseWire(r *wire.BinReader) error { return m.Filter.ParseWire(r) }

// AppendWire implements wire.BinaryMessage.
func (m *UnadvMsg) AppendWire(b []byte) []byte { return m.Filter.AppendWire(b) }

// ParseWire implements wire.BinaryMessage.
func (m *UnadvMsg) ParseWire(r *wire.BinReader) error { return m.Filter.ParseWire(r) }

// AppendWire implements wire.BinaryMessage.
func (m *PubMsg) AppendWire(b []byte) []byte { return event.AppendWirePtr(b, m.Event) }

// ParseWire implements wire.BinaryMessage.
func (m *PubMsg) ParseWire(r *wire.BinReader) error {
	m.Event = event.ReadPtr(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *DeliverMsg) AppendWire(b []byte) []byte { return event.AppendWirePtr(b, m.Event) }

// ParseWire implements wire.BinaryMessage.
func (m *DeliverMsg) ParseWire(r *wire.BinReader) error {
	m.Event = event.ReadPtr(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *PeerMsg) AppendWire(b []byte) []byte { return b }

// ParseWire implements wire.BinaryMessage.
func (m *PeerMsg) ParseWire(r *wire.BinReader) error { return r.Err() }

// AppendWire implements wire.BinaryMessage.
func (m *DetachMsg) AppendWire(b []byte) []byte { return b }

// ParseWire implements wire.BinaryMessage.
func (m *DetachMsg) ParseWire(r *wire.BinReader) error { return r.Err() }

// AppendWire implements wire.BinaryMessage.
func (m *ReclaimMsg) AppendWire(b []byte) []byte { return b }

// ParseWire implements wire.BinaryMessage.
func (m *ReclaimMsg) ParseWire(r *wire.BinReader) error { return r.Err() }

// AppendWire implements wire.BinaryMessage.
func (m *ReclaimReply) AppendWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(m.Dropped))
	b = wire.AppendUvarint(b, uint64(len(m.Events)))
	for _, ev := range m.Events {
		b = event.AppendWirePtr(b, ev)
	}
	return b
}

// ParseWire implements wire.BinaryMessage.
func (m *ReclaimReply) ParseWire(r *wire.BinReader) error {
	m.Dropped = int(r.Varint())
	n := r.Count()
	m.Events = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Events = append(m.Events, event.ReadPtr(r))
	}
	return r.Err()
}
