package pubsub

import (
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

// seenLimit bounds the client's duplicate-suppression window.
const seenLimit = 4096

// Subscription is a client-side subscription handle. Several handlers may
// share one filter (e.g. a monitor and an evolution engine both watching
// node adverts through the same client).
type Subscription struct {
	Filter   Filter
	Handlers []func(*event.Event)
}

// Client attaches to a broker, publishes events and receives matched
// notifications. It supports Mobikit-style mobility: Detach leaves a
// buffering proxy at the old broker; AttachTo re-subscribes at the new
// broker and replays the buffered events exactly once.
type Client struct {
	ep       netapi.Endpoint
	broker   ids.ID
	subs     map[string]*Subscription
	subOrder []string
	seen     map[ids.ID]bool
	seenFIFO []ids.ID
	detached bool

	// Delivered counts events handed to subscription handlers.
	Delivered uint64
	// Duplicates counts suppressed duplicate deliveries.
	Duplicates uint64
}

// NewClient binds a client to ep and attaches it to the given broker.
func NewClient(ep netapi.Endpoint, broker ids.ID) *Client {
	c := &Client{
		ep:     ep,
		broker: broker,
		subs:   make(map[string]*Subscription),
		seen:   make(map[ids.ID]bool),
	}
	ep.Handle("pubsub.deliver", c.handleDeliver)
	return c
}

// Broker returns the current attachment point.
func (c *Client) Broker() ids.ID { return c.broker }

// Subscribe registers a filter with a handler and propagates it. A second
// subscription with an identical filter adds the handler rather than
// replacing the first.
func (c *Client) Subscribe(f Filter, h func(*event.Event)) {
	key := f.Key()
	sub, dup := c.subs[key]
	if !dup {
		sub = &Subscription{Filter: f}
		c.subs[key] = sub
		c.subOrder = append(c.subOrder, key)
	}
	sub.Handlers = append(sub.Handlers, h)
	c.ep.Send(c.broker, &SubMsg{Filter: f})
}

// Unsubscribe withdraws a filter.
func (c *Client) Unsubscribe(f Filter) {
	key := f.Key()
	if _, ok := c.subs[key]; !ok {
		return
	}
	delete(c.subs, key)
	for i, k := range c.subOrder {
		if k == key {
			c.subOrder = append(c.subOrder[:i], c.subOrder[i+1:]...)
			break
		}
	}
	c.ep.Send(c.broker, &UnsubMsg{Filter: f})
}

// Publish sends an event into the network via the current broker, and
// dispatches it to this client's own matching subscriptions (the broker
// never echoes an event back to the direction it came from, so local
// subscribers need the loopback; ID dedup keeps this safe).
//
// Publishing freezes the event: from here on one immutable value is
// shared by every subscriber in the network, so the caller must not
// mutate it afterwards (mutator methods will panic). Build a fresh event
// per publish, or CloneDetached before republishing with changes.
func (c *Client) Publish(ev *event.Event) {
	ev.Freeze()
	c.ep.Send(c.broker, &PubMsg{Event: ev})
	c.dispatch(ev)
}

// Advertise announces that this client publishes events matching f.
func (c *Client) Advertise(f Filter) {
	c.ep.Send(c.broker, &AdvMsg{Filter: f})
}

// Detach disconnects the client, leaving a buffering proxy behind.
func (c *Client) Detach() {
	c.detached = true
	c.ep.Send(c.broker, &DetachMsg{})
}

// AttachTo moves the client to a new broker: it re-subscribes there, then
// reclaims buffered events from the previous broker. onComplete (optional)
// fires when the handoff has finished; dropped is the number of events the
// proxy had to discard for lack of buffer space.
//
// When re-attaching to the same broker, the reclaim must complete before
// re-subscribing (the reclaim tears down the client's entries there);
// cross-broker, subscribing at the new broker first minimises the loss
// window, and ID dedup suppresses any overlap.
func (c *Client) AttachTo(newBroker ids.ID, timeout time.Duration, onComplete func(dropped int, err error)) {
	oldBroker := c.broker
	c.broker = newBroker
	c.detached = false
	if oldBroker != newBroker {
		c.resubscribe()
	}
	c.ep.Request(oldBroker, &ReclaimMsg{}, timeout, func(reply wire.Message, err error) {
		if oldBroker == newBroker {
			c.resubscribe()
		}
		if err != nil {
			if onComplete != nil {
				onComplete(0, err)
			}
			return
		}
		rr := reply.(*ReclaimReply)
		for _, ev := range rr.Events {
			c.dispatch(ev)
		}
		if onComplete != nil {
			onComplete(rr.Dropped, nil)
		}
	})
}

func (c *Client) resubscribe() {
	for _, key := range c.subOrder {
		c.ep.Send(c.broker, &SubMsg{Filter: c.subs[key].Filter})
	}
}

func (c *Client) handleDeliver(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
	c.dispatch(msg.(*DeliverMsg).Event)
}

// dispatch hands an event to every matching subscription, once per event ID.
// The event is frozen first: handlers share one immutable value (zero-copy
// delivery) and take Mutable()/CloneDetached() when they need to rewrite.
func (c *Client) dispatch(ev *event.Event) {
	ev.Freeze()
	if c.seen[ev.ID] {
		c.Duplicates++
		return
	}
	c.seen[ev.ID] = true
	c.seenFIFO = append(c.seenFIFO, ev.ID)
	if len(c.seenFIFO) > seenLimit {
		delete(c.seen, c.seenFIFO[0])
		c.seenFIFO = c.seenFIFO[1:]
	}
	for _, key := range c.subOrder {
		s := c.subs[key]
		if s.Filter.Matches(ev) {
			c.Delivered++
			for _, h := range s.Handlers {
				h(ev)
			}
		}
	}
}
