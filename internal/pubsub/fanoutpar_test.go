package pubsub

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/leakcheck"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// concEndpoint is a scriptable netapi.Endpoint that advertises
// ConcurrentSend, so the broker's fan-out pool engages against it. Sends
// may arrive from any worker goroutine; the endpoint records them in a
// per-destination arrival-order log, which is exactly the observable the
// FIFO and differential tests compare. It also implements Backpressured
// with scriptable saturation for the shed/drain seam tests.
type concEndpoint struct {
	id  ids.ID
	rng *rand.Rand

	mu        sync.Mutex
	log       map[ids.ID][]wire.Message // per-destination arrival order
	saturated map[ids.ID]bool
	drainFns  []func(ids.ID)
}

func newConcEndpoint(name string) *concEndpoint {
	return &concEndpoint{
		id:        ids.FromString(name),
		rng:       rand.New(rand.NewSource(5)),
		log:       make(map[ids.ID][]wire.Message),
		saturated: make(map[ids.ID]bool),
	}
}

func (e *concEndpoint) ID() ids.ID            { return e.id }
func (e *concEndpoint) Info() netapi.NodeInfo { return netapi.NodeInfo{ID: e.id} }
func (e *concEndpoint) Clock() vclock.Clock   { return nil }
func (e *concEndpoint) Rand() *rand.Rand      { return e.rng }
func (e *concEndpoint) Send(to ids.ID, msg wire.Message) {
	e.mu.Lock()
	e.log[to] = append(e.log[to], msg)
	e.mu.Unlock()
}
func (e *concEndpoint) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	cb(nil, netapi.ErrUnreachable)
}
func (e *concEndpoint) Handle(string, netapi.Handler) {}

func (e *concEndpoint) ConcurrentSends() bool { return true }

func (e *concEndpoint) QueuedBytes(to ids.ID) int {
	if e.Saturated(to) {
		return 1 << 20
	}
	return 0
}
func (e *concEndpoint) Saturated(to ids.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.saturated[to]
}
func (e *concEndpoint) OnDrain(fn func(to ids.ID)) { e.drainFns = append(e.drainFns, fn) }

func (e *concEndpoint) setSaturated(to ids.ID, v bool) {
	e.mu.Lock()
	e.saturated[to] = v
	e.mu.Unlock()
}

// fireDrain invokes the drain callbacks the way a real endpoint does: on
// the callback goroutine (here, the test goroutine driving the actor).
func (e *concEndpoint) fireDrain(to ids.ID) {
	for _, fn := range e.drainFns {
		fn(to)
	}
}

// sentTo snapshots the arrival-order log for one destination.
func (e *concEndpoint) sentTo(to ids.ID) []wire.Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]wire.Message(nil), e.log[to]...)
}

// destLine renders one destination's log as "kind:eventID" in arrival
// order — the comparison key for the parallel-vs-serial differential.
func (e *concEndpoint) destLine(to ids.ID) []string {
	var out []string
	for _, m := range e.sentTo(to) {
		switch msg := m.(type) {
		case *PubMsg:
			out = append(out, "fwd:"+msg.Event.ID.String())
		case *DeliverMsg:
			out = append(out, "del:"+msg.Event.ID.String())
		default:
			out = append(out, "ctl:"+msg.Kind())
		}
	}
	return out
}

// TestFanoutPoolCapabilityGate pins when the pool engages: never without
// ConcurrentSend (bpEndpoint), never with FanoutWorkers = 1, otherwise on.
func TestFanoutPoolCapabilityGate(t *testing.T) {
	if b := NewBroker(newBPEndpoint("gate-serial-ep"), Options{FanoutWorkers: 8}); b.pool != nil {
		t.Fatal("pool engaged over an endpoint without ConcurrentSend")
	}
	if b := NewBroker(newConcEndpoint("gate-w1"), Options{FanoutWorkers: 1}); b.pool != nil {
		t.Fatal("pool engaged with FanoutWorkers = 1 (serial reference)")
	}
	b := NewBroker(newConcEndpoint("gate-w4"), Options{FanoutWorkers: 4})
	if b.pool == nil {
		t.Fatal("pool did not engage with FanoutWorkers = 4 over a concurrent endpoint")
	}
	if got := len(b.pool.workers); got != 4 {
		t.Fatalf("pool has %d workers, want 4", got)
	}
	b.Close()
	if b.pool != nil {
		t.Fatal("Close did not clear the pool")
	}
}

// fanoutParWorld is one side of the parallel-vs-serial differential: a
// standalone broker over a concEndpoint with a fixed cast of subscribers,
// neighbours and publishers.
type fanoutParWorld struct {
	ep     *concEndpoint
	b      *Broker
	subs   []ids.ID
	nbors  []ids.ID
	pubsrc []ids.ID
}

func newFanoutParWorld(name string, workers int) *fanoutParWorld {
	w := &fanoutParWorld{ep: newConcEndpoint(name)}
	w.b = NewBroker(w.ep, Options{FanoutWorkers: workers})
	for i := 0; i < 12; i++ {
		w.subs = append(w.subs, ids.FromString(fmt.Sprintf("fp-sub-%d", i)))
	}
	for i := 0; i < 3; i++ {
		n := ids.FromString(fmt.Sprintf("fp-nbor-%d", i))
		w.nbors = append(w.nbors, n)
		w.b.AddNeighbor(n)
	}
	w.pubsrc = []ids.ID{ids.FromString("fp-pub-a"), ids.FromString("fp-pub-b")}
	return w
}

// TestBrokerDifferentialFanoutWorkersVsSerial is the tentpole property
// test: under a randomized workload with subscription churn, saturation
// episodes and drains, a broker fanning out through N workers must be
// observably identical to the serial reference — same per-destination
// message sequences (FIFO included), same Stats, same forwarding state.
func TestBrokerDifferentialFanoutWorkersVsSerial(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par := newFanoutParWorld(fmt.Sprintf("fp-par-%d", workers), workers)
			ser := newFanoutParWorld(fmt.Sprintf("fp-ser-%d", workers), 1)
			if par.b.pool == nil {
				t.Fatal("parallel side has no pool; differential is vacuous")
			}
			if ser.b.pool != nil {
				t.Fatal("serial side has a pool")
			}
			worlds := []*fanoutParWorld{par, ser}

			rng := rand.New(rand.NewSource(int64(1000 + workers)))
			// Subscriptions: every subscriber and every neighbour takes a
			// few random filters; identical on both sides.
			for _, w := range worlds {
				sub := rand.New(rand.NewSource(7))
				for _, d := range append(append([]ids.ID(nil), w.subs...), w.nbors...) {
					for k := 0; k < 3; k++ {
						w.b.subscribe(d, ixRandFilter(sub))
					}
				}
			}

			delivered := 0
			for i := 0; i < 400; i++ {
				// Occasionally toggle saturation on a random subscriber, or
				// drain it — scripted identically against both endpoints so
				// shed decisions (taken on the actor loop at publish time)
				// must agree.
				switch rng.Intn(10) {
				case 0:
					d := par.subs[rng.Intn(len(par.subs))]
					for _, w := range worlds {
						w.ep.setSaturated(d, true)
					}
				case 1:
					d := par.subs[rng.Intn(len(par.subs))]
					for _, w := range worlds {
						w.ep.setSaturated(d, false)
						w.ep.fireDrain(d)
					}
				}
				ev := ixRandEvent(rng, uint64(i))
				src := rng.Intn(len(par.pubsrc))
				for _, w := range worlds {
					w.b.handlePub(nil, w.pubsrc[src], &PubMsg{Event: ev.Clone()})
				}
				delivered++
			}
			for _, w := range worlds {
				w.b.DrainFanout()
			}
			if delivered == 0 {
				t.Fatal("no publishes ran")
			}

			// Per-destination send sequences must match exactly — this is
			// both the delivery-set check and the per-destination FIFO
			// check (order matters, no sorting).
			for _, d := range append(append([]ids.ID(nil), par.subs...), par.nbors...) {
				gp, gs := par.ep.destLine(d), ser.ep.destLine(d)
				if len(gp) != len(gs) {
					t.Fatalf("dest %s: parallel sent %d, serial %d", d.Short(), len(gp), len(gs))
				}
				for i := range gp {
					if gp[i] != gs[i] {
						t.Fatalf("dest %s: send %d diverges: parallel %s, serial %s",
							d.Short(), i, gp[i], gs[i])
					}
				}
			}
			if sp, ss := par.b.Stats(), ser.b.Stats(); sp != ss {
				t.Fatalf("stats diverge:\nparallel: %+v\nserial:   %+v", sp, ss)
			}
			if sp := par.b.Stats(); sp.ShedDeliveries == 0 {
				t.Fatal("workload never shed; saturation seam untested (vacuous)")
			}
			par.b.Close()
		})
	}
}

// TestFanoutPerSourceFIFOTwoPublishers pins the ordering guarantee the
// pool must preserve: two publishers interleave publishes through one
// broker toward one (plus several decoy) subscribers, and every
// subscriber must observe each source's events in publish order, even
// though sends run on concurrent workers.
func TestFanoutPerSourceFIFOTwoPublishers(t *testing.T) {
	ep := newConcEndpoint("fifo-broker")
	b := NewBroker(ep, Options{FanoutWorkers: 8})
	if b.pool == nil {
		t.Fatal("pool did not engage")
	}
	defer b.Close()

	f := NewFilter(TypeIs("fifo.evt"))
	var subs []ids.ID
	for i := 0; i < 9; i++ { // 9 subscribers spread across the 8 workers
		d := ids.FromString(fmt.Sprintf("fifo-sub-%d", i))
		subs = append(subs, d)
		b.subscribe(d, f)
	}
	srcs := []ids.ID{ids.FromString("fifo-pub-a"), ids.FromString("fifo-pub-b")}

	const perSource = 300
	rng := rand.New(rand.NewSource(21))
	next := []int{0, 0}
	for next[0] < perSource || next[1] < perSource {
		s := rng.Intn(2)
		if next[s] >= perSource {
			s = 1 - s
		}
		// Source and per-source sequence ride in the event itself.
		ev := event.New("fifo.evt", fmt.Sprintf("src-%d", s), 0).
			Set("seq", event.I(int64(next[s]))).
			Stamp(uint64(s*1_000_000 + next[s]))
		b.handlePub(nil, srcs[s], &PubMsg{Event: ev})
		next[s]++
	}
	b.DrainFanout()

	for _, d := range subs {
		msgs := ep.sentTo(d)
		if len(msgs) != 2*perSource {
			t.Fatalf("sub %s received %d events, want %d", d.Short(), len(msgs), 2*perSource)
		}
		last := map[string]int64{}
		for i, m := range msgs {
			ev := m.(*DeliverMsg).Event
			seq := int64(ev.GetNum("seq"))
			prev, ok := last[ev.Source]
			if !ok {
				prev = -1
			}
			if seq != prev+1 {
				t.Fatalf("sub %s: source %s FIFO violated at arrival %d: seq %d after %d",
					d.Short(), ev.Source, i, seq, prev)
			}
			last[ev.Source] = seq
		}
	}
}

// TestShedDrainSeamUnderFanout is the race-seam test for satellite (b):
// drain callbacks land on the actor loop while fan-out jobs are in
// flight on the workers, and neither ShedDeliveries nor DrainEvents may
// be lost or double-counted. The counts asserted are exact, and the test
// is in CI's -race step: any classification or bookkeeping that leaked
// off the actor loop would trip the detector.
func TestShedDrainSeamUnderFanout(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ep := newConcEndpoint("seam-broker")
	b := NewBroker(ep, Options{FanoutWorkers: 4})
	if b.pool == nil {
		t.Fatal("pool did not engage")
	}
	defer b.Close()

	f := NewFilter(TypeIs("seam.evt"))
	hot := ids.FromString("seam-hot")
	b.subscribe(hot, f)
	var cold []ids.ID
	for i := 0; i < 6; i++ {
		d := ids.FromString(fmt.Sprintf("seam-cold-%d", i))
		cold = append(cold, d)
		b.subscribe(d, f)
	}
	pub := ids.FromString("seam-pub")

	const (
		episodes     = 50
		shedPerEp    = 4 // publishes while hot is saturated
		deliverPerEp = 3 // publishes after the drain
	)
	seq := uint64(0)
	publish := func() {
		seq++
		b.handlePub(nil, pub, &PubMsg{
			Event: event.New("seam.evt", "seam", 0).Set("x", event.I(1)).Stamp(seq)})
	}
	for e := 0; e < episodes; e++ {
		ep.setSaturated(hot, true)
		for i := 0; i < shedPerEp; i++ {
			publish() // sheds toward hot; cold fan-out keeps the pool busy
		}
		// The drain fires while this episode's jobs may still be in
		// flight on the workers — the seam under test.
		ep.setSaturated(hot, false)
		ep.fireDrain(hot)
		for i := 0; i < deliverPerEp; i++ {
			publish()
		}
	}
	b.DrainFanout()

	st := b.Stats()
	if want := uint64(episodes * shedPerEp); st.ShedDeliveries != want {
		t.Fatalf("ShedDeliveries = %d, want %d (lost or double-counted sheds)", st.ShedDeliveries, want)
	}
	if st.DrainEvents != episodes {
		t.Fatalf("DrainEvents = %d, want %d", st.DrainEvents, episodes)
	}
	total := uint64(episodes * (shedPerEp + deliverPerEp))
	// hot receives only the post-drain publishes; cold receive everything.
	if got := len(ep.sentTo(hot)); got != episodes*deliverPerEp {
		t.Fatalf("hot received %d events, want %d", got, episodes*deliverPerEp)
	}
	for _, d := range cold {
		if got := len(ep.sentTo(d)); got != int(total) {
			t.Fatalf("cold %s received %d events, want %d", d.Short(), got, total)
		}
	}
	if want := uint64(episodes*deliverPerEp) + total*uint64(len(cold)); st.ClientDelivers != want {
		t.Fatalf("ClientDelivers = %d, want %d", st.ClientDelivers, want)
	}
}

// devnullConcEndpoint is the benchmark flavour of concEndpoint: it
// advertises ConcurrentSend but only counts sends atomically, so the
// measured cost is the broker pipeline, not a log mutex.
type devnullConcEndpoint struct {
	id   ids.ID
	rng  *rand.Rand
	sent atomic.Uint64
}

func (e *devnullConcEndpoint) ID() ids.ID            { return e.id }
func (e *devnullConcEndpoint) Info() netapi.NodeInfo { return netapi.NodeInfo{ID: e.id} }
func (e *devnullConcEndpoint) Clock() vclock.Clock   { return nil }
func (e *devnullConcEndpoint) Rand() *rand.Rand      { return e.rng }
func (e *devnullConcEndpoint) Send(ids.ID, wire.Message) {
	e.sent.Add(1)
}
func (e *devnullConcEndpoint) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	cb(nil, netapi.ErrUnreachable)
}
func (e *devnullConcEndpoint) Handle(string, netapi.Handler) {}
func (e *devnullConcEndpoint) ConcurrentSends() bool         { return true }

// BenchmarkFanoutWorkers measures the full publish pipeline (match +
// classification + fan-out) per publish as the worker count grows.
// workers=1 is the serial reference path. On a single-core runner the
// pooled rows show pure handoff overhead; with real cores they show the
// pipeline speedup E-T15 tables.
func BenchmarkFanoutWorkers(b *testing.B) {
	from := ids.FromString("bench-fw-src")
	for _, fanout := range []int{16, 64} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("fanout=%d/workers=%d", fanout, workers), func(b *testing.B) {
				ep := &devnullConcEndpoint{id: ids.FromString("bench-fw"), rng: rand.New(rand.NewSource(4))}
				br := NewBroker(ep, Options{FanoutWorkers: workers})
				defer br.Close()
				if workers > 1 && br.pool == nil {
					b.Fatal("pool did not engage")
				}
				f := NewFilter(TypeIs("hot"))
				for i := 0; i < fanout; i++ {
					br.subscribe(ids.FromString(fmt.Sprintf("fw-sub-%d", i)), f)
				}
				msg := &PubMsg{Event: event.New("hot", "bench", 0).
					Set("user", event.S("user-1")).
					Set("x", event.F(4.5)).
					Stamp(1)}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					br.handlePub(nil, from, msg)
				}
				br.DrainFanout()
				b.StopTimer()
				if got := ep.sent.Load(); got != uint64(b.N*fanout) {
					b.Fatalf("endpoint saw %d sends, want %d", got, uint64(b.N*fanout))
				}
			})
		}
	}
}
