package pubsub

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/wire"
)

// borrowFrame encodes one PubMsg with nAttrs string attributes through
// the binary codec — the frozen hot-path frame shape the borrow decode
// mode exists for.
func borrowFrame(t testing.TB, c *wire.BinaryCodec, nAttrs int) []byte {
	t.Helper()
	ev := event.New("gps.location", "sensor/alloc-test", 42)
	for i := 0; i < nAttrs; i++ {
		ev.Set(fmt.Sprintf("attr-name-%02d", i), event.S(fmt.Sprintf("string-value-%02d", i)))
	}
	ev.Stamp(7)
	env := &wire.Envelope{
		From: ids.FromString("borrow-from"),
		To:   ids.FromString("borrow-to"),
		Msg:  &PubMsg{Event: ev},
	}
	frame, err := c.Encode(env)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return frame
}

func borrowCodec(t testing.TB) *wire.BinaryCodec {
	t.Helper()
	reg := wire.NewRegistry()
	RegisterMessages(reg)
	return wire.NewBinaryCodec(reg)
}

// TestDecodeBorrowEqualsDecode proves borrow-mode decode is purely an
// allocation strategy: the decoded envelope is value-identical to the
// copying decode's.
func TestDecodeBorrowEqualsDecode(t *testing.T) {
	c := borrowCodec(t)
	frame := borrowFrame(t, c, 16)
	copied, err := c.Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	borrowed, err := c.DecodeBorrow(frame)
	if err != nil {
		t.Fatalf("DecodeBorrow: %v", err)
	}
	if !reflect.DeepEqual(copied, borrowed) {
		t.Fatalf("borrowed decode diverges:\ncopy:   %+v\nborrow: %+v", copied, borrowed)
	}
}

// TestDecodeBorrowAllocRegression pins the bugfix: BinReader.String used
// to copy every string on decode, so a hot-path PubMsg paid one
// allocation per attribute name and value. Borrow mode must save at
// least one allocation per attribute — if this fails, someone
// reintroduced per-string copies on the borrowed path.
func TestDecodeBorrowAllocRegression(t *testing.T) {
	const nAttrs = 24
	c := borrowCodec(t)
	frame := borrowFrame(t, c, nAttrs)

	copyAllocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	borrowAllocs := testing.AllocsPerRun(200, func() {
		if _, err := c.DecodeBorrow(frame); err != nil {
			t.Fatal(err)
		}
	})
	if borrowAllocs >= copyAllocs {
		t.Fatalf("borrow decode allocates %.0f/op, copying decode %.0f/op — no win", borrowAllocs, copyAllocs)
	}
	// Each attribute carries a name string and a string value; the type,
	// source and body strings ride along. Demand at least the per-attr
	// saving so the bound survives incidental alloc drift elsewhere.
	if saved := copyAllocs - borrowAllocs; saved < nAttrs {
		t.Fatalf("borrow decode saves only %.0f allocs/op for %d attrs; want >= %d (one per attribute)",
			saved, nAttrs, nAttrs)
	}
}
