package pubsub

import (
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/wire"
)

// SubMsg subscribes the sending direction to a filter.
type SubMsg struct {
	Filter Filter `xml:"filter"`
}

// Kind implements wire.Message.
func (SubMsg) Kind() string { return "pubsub.sub" }

// UnsubMsg removes the sending direction's subscription to a filter.
type UnsubMsg struct {
	Filter Filter `xml:"filter"`
}

// Kind implements wire.Message.
func (UnsubMsg) Kind() string { return "pubsub.unsub" }

// PubMsg carries a published event between brokers and from publishers.
type PubMsg struct {
	Event *event.Event `xml:"event"`
}

// Kind implements wire.Message.
func (PubMsg) Kind() string { return "pubsub.pub" }

// DeliverMsg carries a matched event from a broker to a client node.
type DeliverMsg struct {
	Event *event.Event `xml:"event"`
}

// Kind implements wire.Message.
func (DeliverMsg) Kind() string { return "pubsub.deliver" }

// AdvMsg advertises that events matching the filter may be published from
// the sending direction.
type AdvMsg struct {
	Filter Filter `xml:"filter"`
}

// Kind implements wire.Message.
func (AdvMsg) Kind() string { return "pubsub.adv" }

// UnadvMsg withdraws an advertisement.
type UnadvMsg struct {
	Filter Filter `xml:"filter"`
}

// Kind implements wire.Message.
func (UnadvMsg) Kind() string { return "pubsub.unadv" }

// PeerMsg asks a broker to register the sender as a peer broker (used by
// topology self-healing when an orphaned subtree reattaches upstream).
// The receiver resynchronises its subscription state over the new link.
type PeerMsg struct{}

// Kind implements wire.Message.
func (PeerMsg) Kind() string { return "pubsub.peer" }

// DetachMsg tells the broker a mobile client is disconnecting; the broker
// keeps its subscriptions alive via a buffering proxy (Mobikit-style).
type DetachMsg struct{}

// Kind implements wire.Message.
func (DetachMsg) Kind() string { return "pubsub.detach" }

// ReclaimMsg asks the client's previous broker for buffered events and
// tears the proxy down. Sent as a request; answered with ReclaimReply.
type ReclaimMsg struct{}

// Kind implements wire.Message.
func (ReclaimMsg) Kind() string { return "pubsub.reclaim" }

// ReclaimReply returns the events buffered while the client was detached.
type ReclaimReply struct {
	Events  []*event.Event `xml:"event"`
	Dropped int            `xml:"dropped,attr"` // buffer overflow count
}

// Kind implements wire.Message.
func (ReclaimReply) Kind() string { return "pubsub.reclaimReply" }

// The subscription-state and topology messages are control-plane
// traffic (wire.ControlMessage): budgeted send queues shed event
// fan-out (PubMsg/DeliverMsg) before the routing state that steers it,
// since a lost sub/unsub/adv silently mis-routes every later event
// while a lost event loses only itself. ReclaimReply is excluded — it
// carries the buffered events themselves.

// Control implements wire.ControlMessage.
func (SubMsg) Control() bool { return true }

// Control implements wire.ControlMessage.
func (UnsubMsg) Control() bool { return true }

// Control implements wire.ControlMessage.
func (AdvMsg) Control() bool { return true }

// Control implements wire.ControlMessage.
func (UnadvMsg) Control() bool { return true }

// Control implements wire.ControlMessage.
func (PeerMsg) Control() bool { return true }

// Control implements wire.ControlMessage.
func (DetachMsg) Control() bool { return true }

// Control implements wire.ControlMessage.
func (ReclaimMsg) Control() bool { return true }

// RegisterMessages records all pub/sub message types in a wire registry.
func RegisterMessages(r *wire.Registry) {
	r.Register(&SubMsg{})
	r.Register(&UnsubMsg{})
	r.Register(&PubMsg{})
	r.Register(&DeliverMsg{})
	r.Register(&AdvMsg{})
	r.Register(&UnadvMsg{})
	r.Register(&PeerMsg{})
	r.Register(&DetachMsg{})
	r.Register(&ReclaimMsg{})
	r.Register(&ReclaimReply{})
}
