package pubsub

import (
	"encoding/xml"
	"math/rand"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
)

func ev(attrs map[string]event.Value) *event.Event {
	e := event.New("test.type", "test-src", time.Second)
	for k, v := range attrs {
		e.Set(k, v)
	}
	return e
}

func TestConstraintMatches(t *testing.T) {
	tests := []struct {
		name string
		c    Constraint
		v    event.Value
		want bool
	}{
		{"eq string yes", Eq("a", event.S("x")), event.S("x"), true},
		{"eq string no", Eq("a", event.S("x")), event.S("y"), false},
		{"eq cross numeric", Eq("a", event.I(3)), event.F(3.0), true},
		{"ne", Constraint{Attr: "a", Op: OpNe, Val: event.S("x")}, event.S("y"), true},
		{"lt yes", Lt("a", event.I(10)), event.I(5), true},
		{"lt no", Lt("a", event.I(10)), event.I(10), false},
		{"le eq", Le("a", event.I(10)), event.I(10), true},
		{"gt float", Gt("a", event.F(19.5)), event.F(20.0), true},
		{"ge", Ge("a", event.I(10)), event.I(10), true},
		{"lt incomparable", Lt("a", event.I(10)), event.S("5"), false},
		{"prefix yes", Prefix("a", "gps."), event.S("gps.location"), true},
		{"prefix no", Prefix("a", "gps."), event.S("weather"), false},
		{"suffix", Constraint{Attr: "a", Op: OpSuffix, Val: event.S("ion")}, event.S("location"), true},
		{"contains", Constraint{Attr: "a", Op: OpContains, Val: event.S("cat")}, event.S("location"), true},
		{"exists", Exists("a"), event.B(false), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Matches(tt.v); got != tt.want {
				t.Errorf("Matches(%v, %v) = %v, want %v", tt.c, tt.v, got, tt.want)
			}
		})
	}
}

func TestFilterMatchesConjunction(t *testing.T) {
	f := NewFilter(TypeIs("test.type"), Gt("temp", event.F(19)), Eq("region", event.S("fife")))
	match := ev(map[string]event.Value{"temp": event.F(20), "region": event.S("fife")})
	if !f.Matches(match) {
		t.Fatalf("should match")
	}
	cold := ev(map[string]event.Value{"temp": event.F(10), "region": event.S("fife")})
	if f.Matches(cold) {
		t.Fatalf("cold event should not match")
	}
	missing := ev(map[string]event.Value{"temp": event.F(20)})
	if f.Matches(missing) {
		t.Fatalf("event missing an attribute should not match")
	}
}

func TestEmptyFilterMatchesEverything(t *testing.T) {
	var f Filter
	if !f.Matches(ev(nil)) {
		t.Fatalf("zero filter must match all events")
	}
}

func TestFilterKeyOrderIndependent(t *testing.T) {
	f1 := NewFilter(Eq("a", event.I(1)), Gt("b", event.F(2)))
	f2 := NewFilter(Gt("b", event.F(2)), Eq("a", event.I(1)))
	if f1.Key() != f2.Key() {
		t.Fatalf("keys differ: %q vs %q", f1.Key(), f2.Key())
	}
}

func TestCoversBasics(t *testing.T) {
	broad := NewFilter(TypeIs("gps.location"))
	narrow := NewFilter(TypeIs("gps.location"), Eq("user", event.S("bob")))
	if !Covers(broad, narrow) {
		t.Fatalf("broad should cover narrow")
	}
	if Covers(narrow, broad) {
		t.Fatalf("narrow should not cover broad")
	}
	// Numeric range covering.
	lt10 := NewFilter(Lt("x", event.I(10)))
	lt5 := NewFilter(Lt("x", event.I(5)))
	if !Covers(lt10, lt5) || Covers(lt5, lt10) {
		t.Fatalf("lt10 covers lt5 only")
	}
	// Prefix covering.
	pa := NewFilter(Prefix("t", "gps."))
	pab := NewFilter(Prefix("t", "gps.loc"))
	if !Covers(pa, pab) || Covers(pab, pa) {
		t.Fatalf("prefix covering wrong")
	}
	// Everything covers itself.
	for _, f := range []Filter{broad, narrow, lt10, pa} {
		if !Covers(f, f) {
			t.Fatalf("filter must cover itself: %v", f)
		}
	}
	// The empty filter covers everything.
	var empty Filter
	if !Covers(empty, narrow) {
		t.Fatalf("empty filter covers all")
	}
	if Covers(narrow, empty) {
		t.Fatalf("narrow must not cover the empty filter")
	}
}

// randomValue draws from a small domain so constraints overlap often.
func randomValue(rng *rand.Rand) event.Value {
	switch rng.Intn(3) {
	case 0:
		return event.I(int64(rng.Intn(8)))
	case 1:
		return event.F(float64(rng.Intn(8)) / 2)
	default:
		strs := []string{"", "a", "ab", "abc", "b", "ba"}
		return event.S(strs[rng.Intn(len(strs))])
	}
}

func randomConstraint(rng *rand.Rand) Constraint {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpPrefix, OpSuffix, OpContains, OpExists}
	op := ops[rng.Intn(len(ops))]
	c := Constraint{Attr: "x", Op: op}
	if op == OpPrefix || op == OpSuffix || op == OpContains {
		strs := []string{"", "a", "ab", "abc", "b"}
		c.Val = event.S(strs[rng.Intn(len(strs))])
	} else if op != OpExists {
		c.Val = randomValue(rng)
	}
	return c
}

// TestImpliesSound verifies by exhaustive sampling: whenever Implies(a, b),
// every sampled value satisfying a also satisfies b.
func TestImpliesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	samples := make([]event.Value, 0, 64)
	for i := int64(-2); i <= 9; i++ {
		samples = append(samples, event.I(i))
	}
	for f := -2.0; f <= 9.0; f += 0.5 {
		samples = append(samples, event.F(f))
	}
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "b", "ba", "xab"} {
		samples = append(samples, event.S(s))
	}
	samples = append(samples, event.B(true), event.B(false))

	checked := 0
	for i := 0; i < 20000; i++ {
		a := randomConstraint(rng)
		b := randomConstraint(rng)
		if !Implies(a, b) {
			continue
		}
		checked++
		for _, v := range samples {
			if a.Matches(v) && !b.Matches(v) {
				t.Fatalf("unsound: Implies(%v, %v) but value %v satisfies a not b", a, b, v)
			}
		}
	}
	if checked < 500 {
		t.Fatalf("too few implication pairs exercised: %d", checked)
	}
}

// TestCoversSound verifies by sampling: if Covers(f, g) then every sampled
// event matching g matches f.
func TestCoversSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	makeFilter := func() Filter {
		n := 1 + rng.Intn(3)
		cs := make([]Constraint, n)
		for i := range cs {
			cs[i] = randomConstraint(rng)
		}
		return NewFilter(cs...)
	}
	checked := 0
	for i := 0; i < 5000; i++ {
		f, g := makeFilter(), makeFilter()
		if !Covers(f, g) {
			continue
		}
		checked++
		for j := 0; j < 50; j++ {
			e := ev(map[string]event.Value{"x": randomValue(rng)})
			if g.Matches(e) && !f.Matches(e) {
				t.Fatalf("unsound: Covers(%v, %v) but event %v matches g not f", f, g, e.Attrs)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("too few covering pairs exercised: %d", checked)
	}
}

// TestIntersectsComplete verifies: whenever a sampled value satisfies both
// constraints, Intersects must be true (no false negatives).
func TestIntersectsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		a := randomConstraint(rng)
		b := randomConstraint(rng)
		fa, fb := NewFilter(a), NewFilter(b)
		if Intersects(fa, fb) {
			continue
		}
		// Claimed disjoint: no sampled value may satisfy both.
		for j := 0; j < 200; j++ {
			v := randomValue(rng)
			if a.Matches(v) && b.Matches(v) {
				t.Fatalf("incomplete: Intersects(%v, %v) = false but %v satisfies both", a, b, v)
			}
		}
	}
}

func TestFilterXMLRoundTrip(t *testing.T) {
	f := NewFilter(
		TypeIs("weather.report"),
		Gt("tempC", event.F(19.5)),
		Constraint{Attr: "n", Op: OpNe, Val: event.I(-4)},
		Exists("region"),
		Prefix("source", "thermo-"),
		Constraint{Attr: "ok", Op: OpEq, Val: event.B(true)},
	)
	data, err := xml.Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Filter
	if err := xml.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Key() != f.Key() {
		t.Fatalf("round trip changed filter:\n%s\nvs\n%s", got.Key(), f.Key())
	}
}
