package pubsub

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/simnet"
)

// renderEvent serialises everything observable about a delivered event so
// the clone-vs-borrow differential can compare delivery contents exactly.
func renderEvent(e *event.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%d|", e.ID, e.Type, e.Source, e.Time)
	for _, name := range e.Attrs.Names() {
		v := e.Attrs[name]
		fmt.Fprintf(&b, "%s=%s:%s;", name, v.K, v.String())
	}
	b.WriteString("|" + e.Body)
	return b.String()
}

var fanoutTypes = []string{"gps.location", "weather.report", "meta.gauges", "suggestion.meet"}

func randomFanoutFilter(rng *rand.Rand) Filter {
	cs := []Constraint{TypeIs(fanoutTypes[rng.Intn(len(fanoutTypes))])}
	if rng.Intn(2) == 0 {
		cs = append(cs, Eq("user", event.S(fmt.Sprintf("user-%d", rng.Intn(3)))))
	}
	if rng.Intn(3) == 0 {
		cs = append(cs, Gt("x", event.F(float64(rng.Intn(50)))))
	}
	return NewFilter(cs...)
}

func randomFanoutEvent(rng *rand.Rand, seq uint64) *event.Event {
	ev := event.New(fanoutTypes[rng.Intn(len(fanoutTypes))], fmt.Sprintf("src-%d", rng.Intn(4)), time.Duration(seq)).
		Set("user", event.S(fmt.Sprintf("user-%d", rng.Intn(3)))).
		Set("x", event.F(float64(rng.Intn(100))))
	if rng.Intn(4) == 0 {
		ev.SetBody(fmt.Sprintf("<payload n=\"%d\"/>", rng.Intn(1000)))
	}
	return ev.Stamp(seq)
}

// runFanoutWorkload drives a randomized publish workload over a small
// broker tree and returns every delivery as "client|content", sorted.
func runFanoutWorkload(seed int64, cloneFanout bool) []string {
	rng := rand.New(rand.NewSource(seed))
	tn := newChain(seed, 3, Options{CloneFanout: cloneFanout})
	var deliveries []string
	const nClients = 10
	for i := 0; i < nClients; i++ {
		c := tn.addClient(rng.Intn(len(tn.brokers)))
		idx := i
		c.Subscribe(randomFanoutFilter(rng), func(e *event.Event) {
			deliveries = append(deliveries, fmt.Sprintf("c%d|%s", idx, renderEvent(e)))
		})
	}
	tn.settle()
	for i := 0; i < 80; i++ {
		pub := tn.clients[rng.Intn(len(tn.clients))]
		pub.Publish(randomFanoutEvent(rng, uint64(i)))
	}
	tn.settle()
	sort.Strings(deliveries)
	return deliveries
}

// TestFanoutBorrowVsCloneDifferential is the aliasing-safety property
// test: under randomized workloads, borrow fan-out (one frozen event
// shared by every delivery) must produce exactly the delivery set of the
// clone-always reference path — same clients, same contents, byte for
// byte.
func TestFanoutBorrowVsCloneDifferential(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		borrow := runFanoutWorkload(seed, false)
		clone := runFanoutWorkload(seed, true)
		if len(borrow) == 0 {
			t.Fatalf("seed %d: workload produced no deliveries (vacuous)", seed)
		}
		if len(borrow) != len(clone) {
			t.Fatalf("seed %d: borrow delivered %d, clone delivered %d", seed, len(borrow), len(clone))
		}
		for i := range borrow {
			if borrow[i] != clone[i] {
				t.Fatalf("seed %d: delivery %d diverges\nborrow: %s\nclone:  %s", seed, i, borrow[i], clone[i])
			}
		}
	}
}

// TestFrozenEventImmuneToMisbehavingSubscriber proves a delivered event
// cannot be corrupted: in-place mutation panics, and every other
// subscriber still observes the original contents. The sanctioned routes
// — Mutable and CloneDetached — hand back writable copies that leave the
// shared event untouched.
func TestFrozenEventImmuneToMisbehavingSubscriber(t *testing.T) {
	tn := newChain(3, 1, Options{})
	evil := tn.addClient(0)
	victim := tn.addClient(0)
	pub := tn.addClient(0)

	var evilPanic any
	evil.Subscribe(NewFilter(TypeIs("t")), func(e *event.Event) {
		if !e.Frozen() {
			t.Errorf("delivered event not frozen")
		}
		// The sanctioned escape hatches must work and stay detached.
		m := e.Mutable()
		if m == e {
			t.Errorf("Mutable returned the shared frozen event itself")
		}
		m.Set("user", event.S("mallory"))
		e.CloneDetached().Set("user", event.S("also-mallory"))
		// In-place mutation of the shared event must panic.
		defer func() { evilPanic = recover() }()
		//vetactive:ignore frozenmut deliberately mutates a frozen event to assert the panic
		e.Set("user", event.S("mallory"))
	})
	var got []string
	victim.Subscribe(NewFilter(TypeIs("t")), func(e *event.Event) {
		got = append(got, e.GetString("user"))
	})
	tn.settle()
	pub.Publish(event.New("t", "src", 0).Set("user", event.S("alice")).Stamp(1))
	tn.settle()

	if evilPanic == nil {
		t.Fatal("mutating a frozen delivered event did not panic")
	}
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("victim saw %v, want [alice]", got)
	}
}

// TestFanoutSharesOneEvent pins the zero-copy mechanics: on the borrow
// path every local subscriber receives the same *Event value and the
// broker makes zero clones; on the reference path each delivery gets its
// own detached copy, one clone per delivery.
func TestFanoutSharesOneEvent(t *testing.T) {
	for _, clone := range []bool{false, true} {
		tn := newChain(4, 1, Options{CloneFanout: clone})
		const subs = 6
		var seen []*event.Event
		for i := 0; i < subs; i++ {
			c := tn.addClient(0)
			c.Subscribe(NewFilter(TypeIs("hot")), func(e *event.Event) { seen = append(seen, e) })
		}
		pub := tn.addClient(0)
		tn.settle()
		pub.Publish(event.New("hot", "src", 0).Set("x", event.F(1)).Stamp(1))
		tn.settle()
		if len(seen) != subs {
			t.Fatalf("cloneFanout=%v: delivered %d, want %d", clone, len(seen), subs)
		}
		distinct := make(map[*event.Event]bool)
		for _, e := range seen {
			distinct[e] = true
		}
		st := tn.brokers[0].Stats()
		if clone {
			if len(distinct) != subs {
				t.Fatalf("clone path shared events: %d distinct of %d", len(distinct), subs)
			}
			if st.EventClones != uint64(subs) {
				t.Fatalf("clone path made %d clones, want %d", st.EventClones, subs)
			}
		} else {
			if len(distinct) != 1 {
				t.Fatalf("borrow path copied events: %d distinct values", len(distinct))
			}
			if st.EventClones != 0 {
				t.Fatalf("borrow path made %d clones, want 0", st.EventClones)
			}
		}
	}
}

// TestProxyBufferSafeUnderBorrow: events buffered for a detached client
// are frozen shared values; replay after reattach must deliver original
// contents even if a connected subscriber received (and could have tried
// to corrupt) the same event values meanwhile.
func TestProxyBufferSafeUnderBorrow(t *testing.T) {
	tn := newChain(5, 1, Options{})
	mobile := tn.addClient(0)
	fixed := tn.addClient(0)
	pub := tn.addClient(0)
	var replayed []string
	mobile.Subscribe(NewFilter(TypeIs("t")), func(e *event.Event) {
		replayed = append(replayed, e.GetString("user"))
	})
	fixed.Subscribe(NewFilter(TypeIs("t")), func(e *event.Event) {
		defer func() { _ = recover() }()
		//vetactive:ignore frozenmut deliberately mutates a frozen event to assert the panic
		e.Set("user", event.S("corrupted"))
	})
	tn.settle()
	mobile.Detach()
	tn.settle()
	pub.Publish(event.New("t", "src", 0).Set("user", event.S("bob")).Stamp(7))
	tn.settle()
	done := false
	mobile.AttachTo(tn.brokers[0].ID(), 5*time.Second, func(dropped int, err error) {
		if err != nil || dropped != 0 {
			t.Errorf("reclaim: dropped=%d err=%v", dropped, err)
		}
		done = true
	})
	tn.settle()
	if !done {
		t.Fatal("handoff never completed")
	}
	if len(replayed) != 1 || replayed[0] != "bob" {
		t.Fatalf("replayed %v, want [bob]", replayed)
	}
}

// BenchmarkFanout measures the per-publish delivery path at growing
// fan-out, borrow vs clone. The headline metric is clones/delivery:
// exactly 0 on the borrow path (zero-copy local delivery for read-only
// subscribers), exactly 1 on the reference path.
func BenchmarkFanout(b *testing.B) {
	from := ids.FromString("bench-fanout-src")
	for _, fanout := range []int{8, 64, 512} {
		for _, mode := range []struct {
			name  string
			clone bool
		}{{"borrow", false}, {"clone", true}} {
			b.Run(fmt.Sprintf("fanout=%d/%s", fanout, mode.name), func(b *testing.B) {
				ep := &nullEndpoint{id: ids.FromString("bench-fanout"), rng: rand.New(rand.NewSource(3))}
				br := NewBroker(ep, Options{CloneFanout: mode.clone})
				for i := 0; i < fanout; i++ {
					br.subscribe(ids.FromString(fmt.Sprintf("sub-%d", i)), NewFilter(TypeIs("hot")))
				}
				ev := event.New("hot", "bench", 0).
					Set("user", event.S("user-1")).
					Set("x", event.F(4.5)).
					Stamp(1)
				msg := &PubMsg{Event: ev}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					br.handlePub(nil, from, msg)
				}
				b.StopTimer()
				st := br.Stats()
				if st.ClientDelivers > 0 {
					b.ReportMetric(float64(st.EventClones)/float64(st.ClientDelivers), "clones/delivery")
				}
			})
		}
	}
}

// BenchmarkFanoutWorld exercises the whole stack — publish, broker
// matching, simulated delivery with batching — under DisableJitter and
// DisableMetrics, the configuration for million-message runs.
func BenchmarkFanoutWorld(b *testing.B) {
	for _, fanout := range []int{8, 64} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			w := simnet.NewWorld(simnet.Config{Seed: 11, DisableJitter: true, DisableMetrics: true})
			bn := w.NewNode(ids.FromString("bench-broker"), "eu", netapi.Coord{})
			br := NewBroker(bn, Options{})
			clients := make([]*Client, fanout)
			for i := range clients {
				cn := w.NewNode(ids.FromString(fmt.Sprintf("bench-cl-%d", i)), "eu", netapi.Coord{X: 1})
				clients[i] = NewClient(cn, br.ID())
				clients[i].Subscribe(NewFilter(TypeIs("hot")), func(*event.Event) {})
			}
			pn := w.NewNode(ids.FromString("bench-pub"), "eu", netapi.Coord{X: 2})
			pub := NewClient(pn, br.ID())
			w.RunFor(time.Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pub.Publish(event.New("hot", "bench", w.Now()).Set("x", event.F(1)).Stamp(uint64(i)))
				w.RunFor(10 * time.Millisecond)
			}
		})
	}
}
