package pubsub

import (
	"hash/maphash"
	"runtime"
	"sort"
	"sync"

	"github.com/gloss/active/internal/event"
)

// This file shards the counting predicate index by attribute so
// independent publishes can match on separate cores. The posting lists
// for one attribute live in exactly one shard (shard = hash(attribute
// name) mod N), each shard guarded by its own RWMutex with a
// single-writer discipline: a subscription add or drop write-locks only
// the shards owning its constraints' attributes. A match is a pure
// reader — it walks the event's attributes, probes each one's owning
// shard under a read lock, and accumulates constraint counts in a
// per-call pooled counting table, so any number of matches proceed in
// parallel with each other and with unrelated-shard writers.
//
// The serial Index remains the reference implementation
// (Options.MatchShards = 1); both paths run the identical probeAttr
// engine over identical posting structures, and the differential tests
// hold their delivery sets, Stats and forwarding state equal.

// indexShard owns the postings of the attributes hashed to it.
type indexShard struct {
	mu    sync.RWMutex
	attrs map[string]*attrPostings
}

// ShardedIndex is the concurrency-safe, attribute-sharded counting
// index. Semantics under serial use are identical to Index. Under
// concurrent use, Match is linearizable per filter: a filter whose
// registration does not change during a match is reported exactly
// according to Filter.Matches; filters added or removed concurrently
// may or may not be reported for that event (exactly the race inherent
// in concurrent subscribe/publish).
//
// The visit callback runs with internal locks held and must not call
// back into the index.
type ShardedIndex struct {
	shards []*indexShard

	// mu guards the filter table, slot space and empties list. Shard
	// mutexes nest inside it (writers), never the reverse.
	mu      sync.RWMutex
	filters map[string]*ixFilter
	slots   []*ixFilter
	free    []int
	empties []*ixFilter

	// scratch pools counting tables so concurrent Match calls never
	// share counters; a table costs O(slot space) and is reused.
	scratch sync.Pool

	seed maphash.Seed
}

// DefaultMatchShards is the shard count selected by MatchShards = 0:
// one per core, capped — past ~8 shards, per-attribute lock striping
// stops paying because events rarely carry more distinct attributes.
func DefaultMatchShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return n
}

// NewShardedIndex returns an empty index over n attribute shards.
// n <= 0 selects DefaultMatchShards.
func NewShardedIndex(n int) *ShardedIndex {
	if n <= 0 {
		n = DefaultMatchShards()
	}
	ix := &ShardedIndex{
		shards:  make([]*indexShard, n),
		filters: make(map[string]*ixFilter),
		seed:    maphash.MakeSeed(),
	}
	for i := range ix.shards {
		ix.shards[i] = &indexShard{attrs: make(map[string]*attrPostings)}
	}
	ix.scratch.New = func() any { return &countTable{} }
	return ix
}

// Shards returns the shard count.
func (ix *ShardedIndex) Shards() int { return len(ix.shards) }

func (ix *ShardedIndex) shardOf(attr string) *indexShard {
	return ix.shards[maphash.String(ix.seed, attr)%uint64(len(ix.shards))]
}

// Len returns the number of indexed filters.
func (ix *ShardedIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.filters)
}

// Postings returns the total number of constraint postings.
func (ix *ShardedIndex) Postings() int {
	n := 0
	for _, sh := range ix.shards {
		sh.mu.RLock()
		for _, ap := range sh.attrs {
			n += ap.size()
		}
		sh.mu.RUnlock()
	}
	return n
}

// AttrCount returns the number of attributes with live postings.
func (ix *ShardedIndex) AttrCount() int {
	n := 0
	for _, sh := range ix.shards {
		sh.mu.RLock()
		n += len(sh.attrs)
		sh.mu.RUnlock()
	}
	return n
}

// Attrs returns the indexed attribute names in sorted order.
func (ix *ShardedIndex) Attrs() []string {
	var out []string
	for _, sh := range ix.shards {
		sh.mu.RLock()
		for a := range sh.attrs {
			out = append(out, a)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Add indexes f under key (its Filter.Key). Adding an existing key is a
// no-op, mirroring the broker's distinct-filter table.
func (ix *ShardedIndex) Add(key string, f Filter) {
	fx := &ixFilter{key: key, filter: f, total: len(f.Constraints)}
	ix.mu.Lock()
	if _, dup := ix.filters[key]; dup {
		ix.mu.Unlock()
		return
	}
	if n := len(ix.free); n > 0 {
		fx.slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.slots[fx.slot] = fx
	} else {
		fx.slot = len(ix.slots)
		ix.slots = append(ix.slots, fx)
	}
	ix.filters[key] = fx
	if fx.total == 0 {
		ix.empties = append(ix.empties, fx)
		ix.mu.Unlock()
		return
	}
	ix.mu.Unlock()
	for _, c := range f.Constraints {
		sh := ix.shardOf(c.Attr)
		sh.mu.Lock()
		ap := sh.attrs[c.Attr]
		if ap == nil {
			ap = &attrPostings{}
			sh.attrs[c.Attr] = ap
		}
		ps, kind := ap.bucket(c)
		insertPosting(ps, kind, posting{con: c, fx: fx})
		sh.mu.Unlock()
	}
}

// Remove drops the filter indexed under key. Unknown keys are a no-op.
// The slot is recycled only after every posting is gone, so a reused
// slot can never alias a removed filter's still-indexed constraints.
func (ix *ShardedIndex) Remove(key string) {
	ix.mu.Lock()
	fx := ix.filters[key]
	if fx == nil {
		ix.mu.Unlock()
		return
	}
	delete(ix.filters, key)
	if fx.total == 0 {
		for i, e := range ix.empties {
			if e == fx {
				ix.empties = append(ix.empties[:i], ix.empties[i+1:]...)
				break
			}
		}
		ix.slots[fx.slot] = nil
		ix.free = append(ix.free, fx.slot)
		ix.mu.Unlock()
		return
	}
	ix.mu.Unlock()
	for _, c := range fx.filter.Constraints {
		sh := ix.shardOf(c.Attr)
		sh.mu.Lock()
		if ap := sh.attrs[c.Attr]; ap != nil {
			ps, kind := ap.bucket(c)
			removePosting(ps, kind, posting{con: c, fx: fx})
			if ap.empty() {
				delete(sh.attrs, c.Attr)
			}
		}
		sh.mu.Unlock()
	}
	ix.mu.Lock()
	ix.slots[fx.slot] = nil
	ix.free = append(ix.free, fx.slot)
	ix.mu.Unlock()
}

// Match invokes visit for the key of every indexed filter the event
// satisfies. Under serial use each matching key is visited exactly once,
// like Index.Match; see the type comment for the guarantee under
// concurrent mutation. Safe for any number of concurrent callers.
func (ix *ShardedIndex) Match(ev *event.Event, visit func(key string)) {
	ct := ix.scratch.Get().(*countTable)
	ct.begin()
	ix.mu.RLock()
	for _, fx := range ix.empties {
		visit(fx.key)
	}
	ix.mu.RUnlock()
	ix.probe("type", event.S(ev.Type), ct, visit)
	ix.probe("source", event.S(ev.Source), ct, visit)
	ix.probe("time", event.I(int64(ev.Time)), ct, visit)
	for name, v := range ev.Attrs {
		switch name {
		case "type", "source", "time":
			continue
		}
		ix.probe(name, v, ct, visit)
	}
	ix.scratch.Put(ct)
}

// probe routes one attribute to its owning shard and runs the shared
// match engine under the shard's read lock.
func (ix *ShardedIndex) probe(name string, v event.Value, ct *countTable, visit func(string)) {
	sh := ix.shardOf(name)
	sh.mu.RLock()
	if ap := sh.attrs[name]; ap != nil {
		probeAttr(ap, v, ct, visit)
	}
	sh.mu.RUnlock()
}
