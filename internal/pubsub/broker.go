package pubsub

import (
	"sort"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

// Options configure a broker.
type Options struct {
	// DisableCovering turns off covering-based pruning of subscription
	// propagation (for the E-T4 ablation). All subscriptions are then
	// forwarded verbatim.
	DisableCovering bool
	// UseAdvertisements prunes subscription propagation to directions
	// from which an intersecting advertisement has been received.
	UseAdvertisements bool
	// ProxyBufferLimit bounds the number of events buffered for a
	// detached mobile client. Default 1024.
	ProxyBufferLimit int
	// DisableIndex routes event matching through the preserved
	// linear scan of the subscription table instead of the counting
	// predicate index. The scan is the reference implementation for the
	// differential tests and the BenchmarkBrokerPublish baseline; the
	// index is maintained either way, so flipping this never changes
	// observable behaviour, only the per-publish cost.
	DisableIndex bool
	// CloneFanout restores the reference delivery path: every local
	// delivery, neighbour forward and proxy buffer gets its own detached
	// deep copy of the event. The default (borrow fan-out) freezes the
	// event once and shares it everywhere — zero event copies per
	// delivery; the clone path exists for the clone-vs-borrow
	// differential tests and the E-T12 ablation.
	CloneFanout bool
	// MatchShards selects the predicate-index implementation. 0 (the
	// default) uses the attribute-sharded index with DefaultMatchShards
	// shards; >= 2 uses that many shards; 1 selects the serial single-shard
	// Index, preserved as the reference implementation for the
	// sharded-vs-serial differential tests. Both implementations run the
	// same probeAttr match engine, so delivery sets, Stats and forwarding
	// are identical across settings. nodecfg.Common.Shards threads here.
	MatchShards int
	// FanoutWorkers selects the post-match publish pipeline. 0 (the
	// default) uses a pool of DefaultFanoutWorkers destination-sticky
	// workers for SendMany group assembly, shared-body encode and
	// endpoint sends; >= 2 uses that many workers; 1 preserves the
	// serial reference path, where the whole pipeline runs inline on
	// the actor loop. The pool engages only when the endpoint
	// advertises netapi.Caps.ConcurrentSend (the TCP transport does;
	// simnet does not, keeping simulation deterministic) — otherwise
	// any setting behaves as 1. Matching, target classification, shed
	// decisions and all state mutation stay on the actor loop either
	// way; see fanout.go for the per-destination FIFO argument.
	// nodecfg.Common.FanoutWorkers threads here.
	FanoutWorkers int
	// DisableShedding turns off backpressure-aware fan-out shedding.
	// By default, when the endpoint reports send-queue saturation
	// (netapi.Backpressured), the broker drops per-subscriber
	// deliveries toward saturated destinations — the lowest-value work
	// first: a shed DeliverMsg loses one event for one subscriber,
	// while neighbour forwards serve whole subtrees and control
	// messages steer all future routing, so neither is shed here (and
	// control frames are additionally exempt from budget drops at the
	// transport). Stats.ShedDeliveries counts sheds.
	DisableShedding bool
}

func (o *Options) applyDefaults() {
	if o.ProxyBufferLimit == 0 {
		o.ProxyBufferLimit = 1024
	}
}

// matcher is the seam between the broker and the counting predicate
// index: the serial Index (MatchShards = 1) and the attribute-sharded
// ShardedIndex both satisfy it, and the broker drives whichever the
// options selected through this interface only.
type matcher interface {
	Add(key string, f Filter)
	Remove(key string)
	Match(ev *event.Event, visit func(key string))
	Len() int
	AttrCount() int
	Postings() int
}

// newMatcher maps Options.MatchShards onto an index implementation.
func newMatcher(shards int) matcher {
	if shards == 1 {
		return NewIndex()
	}
	return NewShardedIndex(shards)
}

// entry records one distinct filter and the directions subscribed to it.
type entry struct {
	filter Filter
	dirs   map[ids.ID]bool
}

// advEntry records an advertisement and the directions it arrived from.
type advEntry struct {
	filter Filter
	dirs   map[ids.ID]bool
}

// proxy buffers notifications for a detached mobile client.
type proxy struct {
	buf     []*event.Event
	dropped int
}

// Stats counts broker activity for the scaling experiments.
type Stats struct {
	TableEntries   int // distinct filters in the subscription table
	ForwardedSubs  int // filters currently forwarded to neighbours (total)
	IndexAttrs     int // attributes with postings in the predicate index
	IndexPostings  int // constraint postings in the predicate index
	SubsReceived   uint64
	PubsReceived   uint64
	Matches        uint64 // events matched at this broker
	ClientDelivers uint64
	NeighborFwds   uint64
	// EventClones counts deep copies made during fan-out: always zero on
	// the borrow path, one per delivery with Options.CloneFanout. The
	// fan-out benchmarks report this per delivery to prove zero-copy.
	EventClones uint64
	// ShedDeliveries counts per-subscriber deliveries dropped because
	// the endpoint reported the destination's send queue saturated
	// (netapi.Backpressured) — fan-out shed at the broker instead of
	// overflowing the transport outbox.
	ShedDeliveries uint64
	// DrainEvents counts overload episodes that ended: a destination
	// the broker had shed toward drained back below its low watermark.
	DrainEvents uint64
}

// Broker is one node of the content-based event service.
type Broker struct {
	ep        netapi.Endpoint
	bp        netapi.Backpressured // non-nil when shedding is active
	opts      Options
	neighbors map[ids.ID]bool
	nborOrder []ids.ID // sorted, for deterministic iteration
	entries   map[string]*entry
	entryKeys []string // sorted
	index     matcher  // counting-algorithm view of entries
	forwarded map[ids.ID]map[string]Filter
	adverts   map[string]*advEntry
	proxies   map[ids.ID]*proxy
	shedTo    map[ids.ID]struct{} // destinations with an open shed episode
	stats     Stats
	// pool is the fan-out worker pool, or nil on the serial reference
	// path (FanoutWorkers = 1, or an endpoint without ConcurrentSend).
	pool *fanoutPool
}

// NewBroker constructs a broker bound to ep and registers its handlers.
func NewBroker(ep netapi.Endpoint, opts Options) *Broker {
	opts.applyDefaults()
	b := &Broker{
		ep:        ep,
		opts:      opts,
		neighbors: make(map[ids.ID]bool),
		entries:   make(map[string]*entry),
		index:     newMatcher(opts.MatchShards),
		forwarded: make(map[ids.ID]map[string]Filter),
		adverts:   make(map[string]*advEntry),
		proxies:   make(map[ids.ID]*proxy),
		shedTo:    make(map[ids.ID]struct{}),
	}
	caps := netapi.Capabilities(ep)
	if !opts.DisableShedding {
		if caps.Backpressure != nil {
			b.bp = caps.Backpressure
			b.bp.OnDrain(b.onDrain)
		}
	}
	workers := opts.FanoutWorkers
	if workers == 0 {
		workers = DefaultFanoutWorkers()
	}
	if workers > 1 && caps.ConcurrentSend {
		b.pool = newFanoutPool(ep, workers)
	}
	ep.Handle("pubsub.sub", b.handleSub)
	ep.Handle("pubsub.unsub", b.handleUnsub)
	ep.Handle("pubsub.pub", b.handlePub)
	ep.Handle("pubsub.adv", b.handleAdv)
	ep.Handle("pubsub.unadv", b.handleUnadv)
	ep.Handle("pubsub.peer", b.handlePeer)
	ep.Handle("pubsub.detach", b.handleDetach)
	ep.Handle("pubsub.reclaim", b.handleReclaim)
	return b
}

// ID returns the broker's node ID.
func (b *Broker) ID() ids.ID { return b.ep.ID() }

// AddNeighbor marks id as a peer broker. The overlay must remain acyclic;
// topology construction is the caller's responsibility (see ConnectBrokers).
//
//vetactive:actoronly
func (b *Broker) AddNeighbor(id ids.ID) {
	if b.neighbors[id] {
		return
	}
	b.neighbors[id] = true
	b.nborOrder = append(b.nborOrder, id)
	sort.Slice(b.nborOrder, func(i, j int) bool { return ids.Less(b.nborOrder[i], b.nborOrder[j]) })
	if b.forwarded[id] == nil {
		b.forwarded[id] = make(map[string]Filter)
	}
}

// RemoveNeighbor severs a peer link (e.g. after the peer broker died):
// subscriptions that arrived from that direction are dropped, forwarding
// state toward it is discarded, and the remaining neighbours are
// reconciled. Safe to call for unknown ids.
//
//vetactive:actoronly
func (b *Broker) RemoveNeighbor(id ids.ID) {
	if !b.neighbors[id] {
		return
	}
	delete(b.neighbors, id)
	for i, n := range b.nborOrder {
		if n == id {
			b.nborOrder = append(b.nborOrder[:i], b.nborOrder[i+1:]...)
			break
		}
	}
	delete(b.forwarded, id)
	for _, key := range append([]string(nil), b.entryKeys...) {
		ent := b.entries[key]
		if ent.dirs[id] {
			delete(ent.dirs, id)
			if len(ent.dirs) == 0 {
				b.dropEntry(key)
			}
		}
	}
	for _, a := range b.adverts {
		delete(a.dirs, id)
	}
	b.reconcileAll()
}

// Neighbors lists the current peer brokers in deterministic order.
func (b *Broker) Neighbors() []ids.ID {
	out := make([]ids.ID, len(b.nborOrder))
	copy(out, b.nborOrder)
	return out
}

// Resync pushes the full desired subscription set to every neighbour —
// called after AddNeighbor when the topology has been repaired, so the
// new link learns what must flow over it.
//
//vetactive:actoronly
func (b *Broker) Resync() { b.reconcileAll() }

// ConnectBrokers wires two brokers as neighbours (both directions).
//
//vetactive:actorloop
func ConnectBrokers(a, b *Broker) {
	a.AddNeighbor(b.ID())
	b.AddNeighbor(a.ID())
}

// Stats returns a snapshot of activity counters and table sizes. It
// must run on the broker's owning goroutine: counters and tables are
// actor-confined, and only the fan-out pool (which keeps its own
// atomic counters) runs elsewhere.
//
//vetactive:ignore atomicstats actor-confined; fan-out pool counters are separately atomic
func (b *Broker) Stats() Stats {
	s := b.stats
	s.TableEntries = len(b.entries)
	s.IndexAttrs = b.index.AttrCount()
	s.IndexPostings = b.index.Postings()
	for _, m := range b.forwarded {
		s.ForwardedSubs += len(m)
	}
	return s
}

// addEntry installs a new distinct filter in the subscription table and
// the predicate index together; the two must never diverge.
//
//vetactive:actoronly
func (b *Broker) addEntry(key string, f Filter) *entry {
	ent := &entry{filter: f, dirs: make(map[ids.ID]bool)}
	b.entries[key] = ent
	b.addEntryKey(key)
	b.index.Add(key, f)
	return ent
}

// dropEntry removes a distinct filter from the table and the index.
//
//vetactive:actoronly
func (b *Broker) dropEntry(key string) {
	delete(b.entries, key)
	b.dropEntryKey(key)
	b.index.Remove(key)
}

//vetactive:actoronly
func (b *Broker) addEntryKey(key string) {
	i := sort.SearchStrings(b.entryKeys, key)
	if i < len(b.entryKeys) && b.entryKeys[i] == key {
		return
	}
	b.entryKeys = append(b.entryKeys, "")
	copy(b.entryKeys[i+1:], b.entryKeys[i:])
	b.entryKeys[i] = key
}

//vetactive:actoronly
func (b *Broker) dropEntryKey(key string) {
	i := sort.SearchStrings(b.entryKeys, key)
	if i < len(b.entryKeys) && b.entryKeys[i] == key {
		b.entryKeys = append(b.entryKeys[:i], b.entryKeys[i+1:]...)
	}
}

func sortedFilterKeys(m map[string]Filter) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- subscription handling ---------------------------------------------------

//vetactive:actorloop
func (b *Broker) handleSub(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	sub := msg.(*SubMsg)
	b.stats.SubsReceived++
	b.subscribe(from, sub.Filter)
}

// subscribe records a subscription arriving from dir and propagates it to
// every other direction (pruned by covering and advertisements).
//
//vetactive:actoronly
func (b *Broker) subscribe(from ids.ID, f Filter) {
	key := f.Key()
	ent, ok := b.entries[key]
	if !ok {
		ent = b.addEntry(key, f)
	}
	ent.dirs[from] = true
	for _, n := range b.nborOrder {
		if n == from {
			continue
		}
		b.forwardSub(n, key, f)
	}
}

// forwardSub sends f to neighbour n unless pruning applies, and retires
// forwarded filters that f covers.
//
//vetactive:actoronly
func (b *Broker) forwardSub(n ids.ID, key string, f Filter) {
	if _, sent := b.forwarded[n][key]; sent {
		return
	}
	if !b.opts.DisableCovering && b.coveredAt(n, f) {
		return
	}
	if b.opts.UseAdvertisements && !b.advertIntersectsVia(n, f) {
		return
	}
	// Covering simplification: withdraw narrower filters sent earlier.
	if !b.opts.DisableCovering {
		for _, k2 := range sortedFilterKeys(b.forwarded[n]) {
			f2 := b.forwarded[n][k2]
			if k2 != key && Covers(f, f2) {
				delete(b.forwarded[n], k2)
				b.ep.Send(n, &UnsubMsg{Filter: f2})
			}
		}
	}
	b.forwarded[n][key] = f
	b.ep.Send(n, &SubMsg{Filter: f})
}

// coveredAt reports whether a filter already forwarded to n covers f.
func (b *Broker) coveredAt(n ids.ID, f Filter) bool {
	for _, f2 := range b.forwarded[n] {
		if Covers(f2, f) {
			return true
		}
	}
	return false
}

// advertIntersectsVia reports whether any advertisement that arrived from
// direction n intersects f (i.e. a publisher in that direction may emit
// matching events).
func (b *Broker) advertIntersectsVia(n ids.ID, f Filter) bool {
	for _, a := range b.adverts {
		if a.dirs[n] && Intersects(a.filter, f) {
			return true
		}
	}
	return false
}

//vetactive:actorloop
func (b *Broker) handleUnsub(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	unsub := msg.(*UnsubMsg)
	b.unsubscribe(from, unsub.Filter)
}

//vetactive:actoronly
func (b *Broker) unsubscribe(from ids.ID, f Filter) {
	key := f.Key()
	ent, ok := b.entries[key]
	if !ok {
		return
	}
	delete(ent.dirs, from)
	if len(ent.dirs) == 0 {
		b.dropEntry(key)
	}
	b.reconcileAll()
}

// reconcileAll recomputes, for every neighbour, the minimal set of filters
// that must be forwarded, and sends the sub/unsub diff. Used on
// unsubscription, where covering relationships may need rebuilding.
//
//vetactive:actoronly
func (b *Broker) reconcileAll() {
	for _, n := range b.nborOrder {
		desired := make(map[string]Filter)
		for _, key := range b.entryKeys {
			ent := b.entries[key]
			if len(ent.dirs) == 1 && ent.dirs[n] {
				continue // only subscriber is n itself
			}
			if b.opts.UseAdvertisements && !b.advertIntersectsVia(n, ent.filter) {
				continue
			}
			desired[key] = ent.filter
		}
		if !b.opts.DisableCovering {
			desired = minimalCover(desired)
		}
		cur := b.forwarded[n]
		for _, key := range sortedFilterKeys(cur) {
			if _, keep := desired[key]; !keep {
				f := cur[key]
				delete(cur, key)
				b.ep.Send(n, &UnsubMsg{Filter: f})
			}
		}
		for _, key := range sortedFilterKeys(desired) {
			if _, have := cur[key]; !have {
				cur[key] = desired[key]
				b.ep.Send(n, &SubMsg{Filter: desired[key]})
			}
		}
	}
}

// minimalCover drops filters covered by another filter in the set.
// Deterministic: among mutually covering filters the lexically smallest
// key survives.
func minimalCover(in map[string]Filter) map[string]Filter {
	out := make(map[string]Filter, len(in))
	for key, f := range in {
		covered := false
		for key2, f2 := range in {
			if key == key2 {
				continue
			}
			if Covers(f2, f) {
				if Covers(f, f2) && key < key2 {
					continue // mutual covering: keep the smaller key
				}
				covered = true
				break
			}
		}
		if !covered {
			out[key] = f
		}
	}
	return out
}

// --- advertisement handling ----------------------------------------------------

//vetactive:actorloop
func (b *Broker) handleAdv(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	adv := msg.(*AdvMsg)
	key := adv.Filter.Key()
	a, ok := b.adverts[key]
	if !ok {
		a = &advEntry{filter: adv.Filter, dirs: make(map[ids.ID]bool)}
		b.adverts[key] = a
	}
	if a.dirs[from] {
		return // duplicate; already flooded
	}
	a.dirs[from] = true
	// Advertisements flood the acyclic broker graph.
	for _, n := range b.nborOrder {
		if n != from {
			b.ep.Send(n, &AdvMsg{Filter: adv.Filter})
		}
	}
	// Subscriptions pruned for lack of an intersecting advertisement may
	// now need forwarding toward the advertiser.
	if b.opts.UseAdvertisements && b.neighbors[from] {
		for _, key := range b.entryKeys {
			ent := b.entries[key]
			if len(ent.dirs) == 1 && ent.dirs[from] {
				continue
			}
			if Intersects(adv.Filter, ent.filter) {
				b.forwardSub(from, key, ent.filter)
			}
		}
	}
}

//vetactive:actorloop
func (b *Broker) handleUnadv(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	unadv := msg.(*UnadvMsg)
	key := unadv.Filter.Key()
	a, ok := b.adverts[key]
	if !ok || !a.dirs[from] {
		return
	}
	delete(a.dirs, from)
	if len(a.dirs) == 0 {
		delete(b.adverts, key)
	}
	for _, n := range b.nborOrder {
		if n != from {
			b.ep.Send(n, &UnadvMsg{Filter: unadv.Filter})
		}
	}
}

// --- notification handling -------------------------------------------------------

//vetactive:actorloop
func (b *Broker) handlePub(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	pub := msg.(*PubMsg)
	b.stats.PubsReceived++
	ev := pub.Event
	if !b.opts.CloneFanout {
		// Borrow fan-out: one frozen event backs every local delivery,
		// proxy buffer slot and outgoing message. Freezing here (rather
		// than at decode) keeps wire round-trips byte-identical while
		// guaranteeing no subscriber can rewrite what its neighbours see.
		ev.Freeze()
	}
	targets := make(map[ids.ID]bool)
	matched := false
	collect := func(ent *entry) {
		matched = true
		for d := range ent.dirs {
			if d != from {
				targets[d] = true
			}
		}
	}
	if b.opts.DisableIndex {
		b.matchLinear(ev, collect)
	} else {
		b.index.Match(ev, func(key string) { collect(b.entries[key]) })
	}
	if matched {
		b.stats.Matches++
	}
	if len(targets) == 0 {
		return
	}
	order := make([]ids.ID, 0, len(targets))
	for d := range targets {
		order = append(order, d)
	}
	sort.Slice(order, func(i, j int) bool { return ids.Less(order[i], order[j]) })
	// Partition the fan-out by message kind so each group rides one
	// multicast: the message — and under a serialising transport its
	// encoded body — is built once for all destinations in the group
	// (encode once, send many).
	var fwds, delivers []ids.ID
	for _, d := range order {
		if b.neighbors[d] {
			b.stats.NeighborFwds++
			fwds = append(fwds, d)
			continue
		}
		if p, detached := b.proxies[d]; detached {
			if len(p.buf) >= b.opts.ProxyBufferLimit {
				p.dropped++
				continue
			}
			p.buf = append(p.buf, b.fanoutEvent(ev))
			continue
		}
		// Shed the lowest-value fan-out work first: a delivery toward a
		// saturated subscriber link is dropped here, before the encode,
		// rather than overflowing the transport outbox. Forwards to
		// neighbour brokers (above) are never shed — they serve whole
		// subtrees, and shedding would starve every subscriber behind
		// them for one congested hop.
		if b.bp != nil && b.bp.Saturated(d) {
			b.stats.ShedDeliveries++
			b.shedTo[d] = struct{}{}
			continue
		}
		b.stats.ClientDelivers++
		delivers = append(delivers, d)
	}
	if b.opts.CloneFanout {
		// Reference path: a detached copy per delivery, one Send each.
		// Always serial — the clones are built on the actor loop.
		for _, d := range fwds {
			b.ep.Send(d, &PubMsg{Event: b.fanoutEvent(ev)})
		}
		for _, d := range delivers {
			b.ep.Send(d, &DeliverMsg{Event: b.fanoutEvent(ev)})
		}
		return
	}
	if b.pool != nil {
		// Pipelined path: everything mutable was decided above on the
		// actor loop (targets, shed set, stats); the pool gets immutable
		// snapshots — the frozen event and the two target slices — and
		// runs group assembly, encode and sends on destination-sticky
		// workers. The slices are freshly built per publish, never
		// reused, so handing them off is safe.
		b.pool.submit(ev, fwds, delivers)
		return
	}
	if len(fwds) > 0 {
		netapi.SendMany(b.ep, fwds, &PubMsg{Event: ev})
	}
	if len(delivers) > 0 {
		netapi.SendMany(b.ep, delivers, &DeliverMsg{Event: ev})
	}
}

// DrainFanout blocks until every publish handed to the fan-out pool has
// been sent to the endpoint; a no-op on the serial path. Call from
// outside the actor loop (tests, benchmarks, shutdown) once the last
// publish has been handled — it makes "all publishes processed" imply
// "all sends issued", which the serial path gave for free.
func (b *Broker) DrainFanout() {
	if b.pool != nil {
		b.pool.quiesce()
	}
}

// Close stops the fan-out workers after draining them. The broker must
// not handle further publishes. Serial-path brokers need no Close (it
// is a no-op), so existing call sites are unaffected.
func (b *Broker) Close() {
	if b.pool != nil {
		b.pool.close()
		b.pool = nil
	}
}

// onDrain is the endpoint's below-the-low-watermark-again signal: the
// destination can absorb fan-out again. A shed episode toward it is
// finalised into DrainEvents so overload episodes are countable.
//
//vetactive:actoronly
func (b *Broker) onDrain(to ids.ID) {
	if _, shed := b.shedTo[to]; shed {
		delete(b.shedTo, to)
		b.stats.DrainEvents++
	}
}

// fanoutEvent yields the event to hand one delivery target: the shared
// frozen event on the borrow path, a counted detached clone on the
// reference path.
func (b *Broker) fanoutEvent(ev *event.Event) *event.Event {
	if !b.opts.CloneFanout {
		return ev
	}
	b.stats.EventClones++
	return ev.CloneDetached()
}

// Subscribe installs a subscription as if a SubMsg had arrived from the
// direction from — the local-injection seam the experiment harness and
// benchmarks use to build large subscription tables without a network.
// Like every handler it must run on the actor goroutine.
//
//vetactive:actoronly
func (b *Broker) Subscribe(from ids.ID, f Filter) {
	b.stats.SubsReceived++
	b.subscribe(from, f)
}

// Publish runs the full publish pipeline — match, classification, shed
// decisions, fan-out — for msg as if it had arrived from the direction
// from; the experiment harness's injection seam, actor goroutine only.
//
//vetactive:actoronly
func (b *Broker) Publish(from ids.ID, msg *PubMsg) {
	b.handlePub(nil, from, msg)
}

// matchLinear is the original O(table) matching scan, preserved as the
// reference implementation the counting index is differentially tested
// and benchmarked against (Options.DisableIndex selects it).
func (b *Broker) matchLinear(ev *event.Event, visit func(*entry)) {
	for _, key := range b.entryKeys {
		if ent := b.entries[key]; ent.filter.Matches(ev) {
			visit(ent)
		}
	}
}

// --- topology repair ------------------------------------------------------------------

// handlePeer registers the sender as a peer broker and resynchronises the
// subscription state flowing over the new link.
//
//vetactive:actorloop
func (b *Broker) handlePeer(_ netapi.Ctx, from ids.ID, _ wire.Message) {
	if b.neighbors[from] {
		return
	}
	b.AddNeighbor(from)
	b.Resync()
}

// --- mobility -----------------------------------------------------------------------

//vetactive:actorloop
func (b *Broker) handleDetach(_ netapi.Ctx, from ids.ID, _ wire.Message) {
	if _, ok := b.proxies[from]; !ok {
		b.proxies[from] = &proxy{}
	}
}

//vetactive:actorloop
func (b *Broker) handleReclaim(ctx netapi.Ctx, from ids.ID, _ wire.Message) {
	p := b.proxies[from]
	reply := &ReclaimReply{}
	if p != nil {
		reply.Events = p.buf
		reply.Dropped = p.dropped
	}
	delete(b.proxies, from)
	// The client has moved on: drop all its subscriptions here.
	changed := false
	for _, key := range append([]string(nil), b.entryKeys...) {
		ent := b.entries[key]
		if ent.dirs[from] {
			delete(ent.dirs, from)
			changed = true
			if len(ent.dirs) == 0 {
				b.dropEntry(key)
			}
		}
	}
	if changed {
		b.reconcileAll()
	}
	ctx.Reply(reply)
}
