package pubsub

import (
	"bytes"
	"testing"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/wire"
)

// FuzzFilterParseWire drives the binary filter decoder — the payload of
// every subscription-churn message — with arbitrary frames: it must
// never panic, and accepted filters must round-trip byte-stably.
func FuzzFilterParseWire(f *testing.F) {
	seed := NewFilter(TypeIs("alert"), Eq("user", event.S("alice")))
	f.Add([]byte(seed.AppendWire(nil)))
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x01, 0x61})
	f.Fuzz(func(t *testing.T, data []byte) {
		var flt Filter
		if err := flt.ParseWire(wire.NewBinReader(data)); err != nil {
			return
		}
		first := flt.AppendWire(nil)
		var re Filter
		if err := re.ParseWire(wire.NewBinReader(first)); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if second := re.AppendWire(nil); !bytes.Equal(first, second) {
			t.Fatalf("encode not a fixed point:\n first=%x\nsecond=%x", first, second)
		}
	})
}
