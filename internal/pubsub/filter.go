// Package pubsub implements the paper's "generic global event service"
// (§4.1): a Siena-like content-based publish/subscribe network. Events are
// sets of typed attributes; subscriptions are conjunctions of attribute
// constraints; brokers form an acyclic overlay and prune subscription
// propagation using covering relations. Mobility support follows the
// Mobikit design cited in §3: a static proxy buffers notifications for a
// disconnected mobile client and replays them at the new attachment point.
package pubsub

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/gloss/active/internal/event"
)

// Op is a constraint operator.
type Op int

// Constraint operators, mirroring Siena's filter language.
const (
	OpInvalid Op = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix
	OpSuffix
	OpContains
	OpExists
)

var opNames = map[Op]string{
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpPrefix: "prefix", OpSuffix: "suffix", OpContains: "contains", OpExists: "exists",
}

var opFromName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// String returns the operator's wire name.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return "invalid"
}

// Constraint restricts one attribute.
type Constraint struct {
	Attr string
	Op   Op
	Val  event.Value // unused for OpExists
}

// Matches reports whether the attribute value v satisfies the constraint.
func (c Constraint) Matches(v event.Value) bool {
	switch c.Op {
	case OpExists:
		return true
	case OpEq:
		return v.Equal(c.Val)
	case OpNe:
		return !v.Equal(c.Val)
	case OpLt, OpLe, OpGt, OpGe:
		cmp, ok := v.Compare(c.Val)
		if !ok {
			return false
		}
		switch c.Op {
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		default:
			return cmp >= 0
		}
	case OpPrefix:
		return v.K == event.KindString && c.Val.K == event.KindString && strings.HasPrefix(v.S, c.Val.S)
	case OpSuffix:
		return v.K == event.KindString && c.Val.K == event.KindString && strings.HasSuffix(v.S, c.Val.S)
	case OpContains:
		return v.K == event.KindString && c.Val.K == event.KindString && strings.Contains(v.S, c.Val.S)
	default:
		return false
	}
}

// String renders the constraint for logs.
func (c Constraint) String() string {
	if c.Op == OpExists {
		return fmt.Sprintf("%s exists", c.Attr)
	}
	return fmt.Sprintf("%s %s %v", c.Attr, c.Op, c.Val.String())
}

// Filter is a conjunction of constraints. The zero filter matches every event.
type Filter struct {
	Constraints []Constraint
}

// NewFilter builds a filter from constraints.
func NewFilter(cs ...Constraint) Filter { return Filter{Constraints: cs} }

// TypeIs is a convenience constraint on the implicit "type" attribute.
func TypeIs(t string) Constraint {
	return Constraint{Attr: "type", Op: OpEq, Val: event.S(t)}
}

// Eq builds an equality constraint.
func Eq(attr string, v event.Value) Constraint { return Constraint{Attr: attr, Op: OpEq, Val: v} }

// Lt builds a less-than constraint.
func Lt(attr string, v event.Value) Constraint { return Constraint{Attr: attr, Op: OpLt, Val: v} }

// Le builds a ≤ constraint.
func Le(attr string, v event.Value) Constraint { return Constraint{Attr: attr, Op: OpLe, Val: v} }

// Gt builds a greater-than constraint.
func Gt(attr string, v event.Value) Constraint { return Constraint{Attr: attr, Op: OpGt, Val: v} }

// Ge builds a ≥ constraint.
func Ge(attr string, v event.Value) Constraint { return Constraint{Attr: attr, Op: OpGe, Val: v} }

// Exists builds an existence constraint.
func Exists(attr string) Constraint { return Constraint{Attr: attr, Op: OpExists} }

// Prefix builds a string-prefix constraint.
func Prefix(attr, p string) Constraint {
	return Constraint{Attr: attr, Op: OpPrefix, Val: event.S(p)}
}

// Matches reports whether ev satisfies every constraint.
func (f Filter) Matches(ev *event.Event) bool {
	for _, c := range f.Constraints {
		v, ok := ev.Get(c.Attr)
		if !ok {
			return false
		}
		if !c.Matches(v) {
			return false
		}
	}
	return true
}

// Key returns a canonical string form usable as a map key; two filters
// with the same constraints in any order share a key. Called on every
// subscribe/unsubscribe and table reconciliation, so it avoids fmt.
func (f Filter) Key() string {
	if len(f.Constraints) == 0 {
		return ""
	}
	parts := make([]string, len(f.Constraints))
	var sb strings.Builder
	for i, c := range f.Constraints {
		sb.Reset()
		val := c.Val.String()
		sb.Grow(len(c.Attr) + len(val) + 16)
		sb.WriteString(c.Attr)
		sb.WriteByte('|')
		sb.WriteString(c.Op.String())
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(int(c.Val.K)))
		sb.WriteByte('|')
		sb.WriteString(val)
		parts[i] = sb.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// Implies reports whether constraint a implies constraint b: every value
// satisfying a also satisfies b. Both must constrain the same attribute;
// the check is conservative (false negatives allowed, no false positives).
func Implies(a, b Constraint) bool {
	if a.Attr != b.Attr {
		return false
	}
	switch b.Op {
	case OpExists:
		return true
	case OpEq:
		return a.Op == OpEq && a.Val.Equal(b.Val)
	case OpNe:
		switch a.Op {
		case OpNe:
			return a.Val.Equal(b.Val)
		case OpEq:
			return !a.Val.Equal(b.Val) && sameComparisonDomain(a.Val, b.Val)
		case OpLt:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp <= 0
			}
		case OpLe:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp < 0
			}
		case OpGt:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp >= 0
			}
		case OpGe:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp > 0
			}
		case OpPrefix:
			return b.Val.K == event.KindString && !strings.HasPrefix(b.Val.S, a.Val.S)
		case OpSuffix:
			return b.Val.K == event.KindString && !strings.HasSuffix(b.Val.S, a.Val.S)
		}
		return false
	case OpLt:
		switch a.Op {
		case OpLt, OpEq:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp <= 0 && (a.Op == OpLt || cmp < 0)
			}
		case OpLe:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp < 0
			}
		}
		return false
	case OpLe:
		switch a.Op {
		case OpLt, OpLe, OpEq:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp <= 0
			}
		}
		return false
	case OpGt:
		switch a.Op {
		case OpGt, OpEq:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp >= 0 && (a.Op == OpGt || cmp > 0)
			}
		case OpGe:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp > 0
			}
		}
		return false
	case OpGe:
		switch a.Op {
		case OpGt, OpGe, OpEq:
			if cmp, ok := a.Val.Compare(b.Val); ok {
				return cmp >= 0
			}
		}
		return false
	case OpPrefix:
		switch a.Op {
		case OpEq:
			return a.Val.K == event.KindString && strings.HasPrefix(a.Val.S, b.Val.S)
		case OpPrefix:
			return strings.HasPrefix(a.Val.S, b.Val.S)
		}
		return false
	case OpSuffix:
		switch a.Op {
		case OpEq:
			return a.Val.K == event.KindString && strings.HasSuffix(a.Val.S, b.Val.S)
		case OpSuffix:
			return strings.HasSuffix(a.Val.S, b.Val.S)
		}
		return false
	case OpContains:
		switch a.Op {
		case OpEq:
			return a.Val.K == event.KindString && strings.Contains(a.Val.S, b.Val.S)
		case OpContains, OpPrefix, OpSuffix:
			return strings.Contains(a.Val.S, b.Val.S)
		}
		return false
	default:
		return false
	}
}

// sameComparisonDomain reports whether two values inhabit a domain where
// Eq x (x≠v) soundly implies Ne v. This holds for numerics and strings;
// mixed kinds are rejected.
func sameComparisonDomain(a, b event.Value) bool {
	_, an := a.Num()
	_, bn := b.Num()
	if an && bn {
		return true
	}
	return a.K == b.K
}

// Covers reports whether filter f covers filter g: every event matching g
// also matches f. Per Siena, f covers g iff every constraint of f is
// implied by some constraint of g. Conservative.
func Covers(f, g Filter) bool {
	for _, cf := range f.Constraints {
		implied := false
		for _, cg := range g.Constraints {
			if Implies(cg, cf) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// Intersects reports whether some event could match both filters. It is
// conservative: it may report true for disjoint filters, never false for
// overlapping ones. Used for advertisement-based pruning.
func Intersects(f, g Filter) bool {
	for _, cf := range f.Constraints {
		for _, cg := range g.Constraints {
			if cf.Attr != cg.Attr {
				continue
			}
			if disjoint(cf, cg) {
				return false
			}
		}
	}
	return true
}

// disjoint reports provable unsatisfiability of the conjunction a ∧ b.
func disjoint(a, b Constraint) bool {
	if a.Op == OpEq && b.Op == OpEq {
		return !a.Val.Equal(b.Val)
	}
	if a.Op == OpEq {
		return !b.Matches(a.Val)
	}
	if b.Op == OpEq {
		return !a.Matches(b.Val)
	}
	// Range disjointness: upper bound below lower bound.
	lo := func(c Constraint) (event.Value, bool, bool) { // value, strict, isLower
		switch c.Op {
		case OpGt:
			return c.Val, true, true
		case OpGe:
			return c.Val, false, true
		}
		return event.Value{}, false, false
	}
	hi := func(c Constraint) (event.Value, bool, bool) {
		switch c.Op {
		case OpLt:
			return c.Val, true, true
		case OpLe:
			return c.Val, false, true
		}
		return event.Value{}, false, false
	}
	if hv, hstrict, okh := hi(a); okh {
		if lv, lstrict, okl := lo(b); okl {
			if cmp, ok := hv.Compare(lv); ok && (cmp < 0 || (cmp == 0 && (hstrict || lstrict))) {
				return true
			}
		}
	}
	if hv, hstrict, okh := hi(b); okh {
		if lv, lstrict, okl := lo(a); okl {
			if cmp, ok := hv.Compare(lv); ok && (cmp < 0 || (cmp == 0 && (hstrict || lstrict))) {
				return true
			}
		}
	}
	if a.Op == OpPrefix && b.Op == OpPrefix {
		return !strings.HasPrefix(a.Val.S, b.Val.S) && !strings.HasPrefix(b.Val.S, a.Val.S)
	}
	return false
}

// xmlConstraint is the XML form of a constraint.
type xmlConstraint struct {
	Attr string `xml:"attr,attr"`
	Op   string `xml:"op,attr"`
	Kind string `xml:"kind,attr,omitempty"`
	Val  string `xml:",chardata"`
}

// xmlFilter is the XML form of a filter.
type xmlFilter struct {
	Constraints []xmlConstraint `xml:"c"`
}

// MarshalXML implements xml.Marshaler.
func (f Filter) MarshalXML(enc *xml.Encoder, start xml.StartElement) error {
	xf := xmlFilter{}
	for _, c := range f.Constraints {
		xc := xmlConstraint{Attr: c.Attr, Op: c.Op.String()}
		if c.Op != OpExists {
			xc.Kind = c.Val.K.String()
			xc.Val = c.Val.String()
		}
		xf.Constraints = append(xf.Constraints, xc)
	}
	return enc.EncodeElement(xf, start)
}

// UnmarshalXML implements xml.Unmarshaler.
func (f *Filter) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	var xf xmlFilter
	if err := dec.DecodeElement(&xf, &start); err != nil {
		return err
	}
	f.Constraints = nil
	for _, xc := range xf.Constraints {
		op, ok := opFromName[xc.Op]
		if !ok {
			return fmt.Errorf("pubsub: unknown operator %q", xc.Op)
		}
		c := Constraint{Attr: xc.Attr, Op: op}
		if op != OpExists {
			v, err := parseTypedValue(xc.Kind, xc.Val)
			if err != nil {
				return err
			}
			c.Val = v
		}
		f.Constraints = append(f.Constraints, c)
	}
	return nil
}

func parseTypedValue(kind, text string) (event.Value, error) {
	switch kind {
	case "string":
		return event.S(text), nil
	case "int":
		var i int64
		if _, err := fmt.Sscanf(text, "%d", &i); err != nil {
			return event.Value{}, fmt.Errorf("pubsub: bad int %q: %w", text, err)
		}
		return event.I(i), nil
	case "float":
		var fl float64
		if _, err := fmt.Sscanf(text, "%g", &fl); err != nil {
			return event.Value{}, fmt.Errorf("pubsub: bad float %q: %w", text, err)
		}
		return event.F(fl), nil
	case "bool":
		switch text {
		case "true":
			return event.B(true), nil
		case "false":
			return event.B(false), nil
		}
		return event.Value{}, fmt.Errorf("pubsub: bad bool %q", text)
	default:
		return event.Value{}, fmt.Errorf("pubsub: unknown value kind %q", kind)
	}
}
