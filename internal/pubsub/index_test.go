package pubsub

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// --- randomized workload generators ------------------------------------------

var (
	genAttrs   = []string{"type", "source", "time", "user", "x", "y", "tag", "zone"}
	genTypes   = []string{"gps.location", "weather.report", "stream.tick", "alert.heat", "suggestion.meet"}
	genStrings = []string{"eu", "us", "eu-west", "north", "n", ""}
)

func ixRandValue(rng *rand.Rand, attr string) event.Value {
	switch attr {
	case "type":
		return event.S(genTypes[rng.Intn(len(genTypes))])
	case "source":
		return event.S(fmt.Sprintf("src-%d", rng.Intn(4)))
	case "time":
		return event.I(int64(rng.Intn(8)))
	case "user":
		return event.S(fmt.Sprintf("user-%d", rng.Intn(6)))
	case "x", "y":
		// Mix int and float values so cross-kind numeric comparisons are
		// exercised, including exact int/float equality collisions.
		if rng.Intn(2) == 0 {
			return event.I(int64(rng.Intn(10)))
		}
		return event.F(float64(rng.Intn(20)) / 2)
	case "tag":
		return event.S(genStrings[rng.Intn(len(genStrings))])
	default:
		switch rng.Intn(3) {
		case 0:
			return event.B(rng.Intn(2) == 0)
		case 1:
			return event.I(int64(rng.Intn(5)))
		default:
			return event.S(genStrings[rng.Intn(len(genStrings))])
		}
	}
}

func ixRandConstraint(rng *rand.Rand) Constraint {
	attr := genAttrs[rng.Intn(len(genAttrs))]
	ops := []Op{OpEq, OpEq, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpPrefix, OpSuffix, OpContains, OpExists}
	op := ops[rng.Intn(len(ops))]
	if op == OpExists {
		return Exists(attr)
	}
	return Constraint{Attr: attr, Op: op, Val: ixRandValue(rng, attr)}
}

func ixRandFilter(rng *rand.Rand) Filter {
	n := rng.Intn(4) // 0..3 constraints; 0 matches everything
	cs := make([]Constraint, 0, n)
	for i := 0; i < n; i++ {
		cs = append(cs, ixRandConstraint(rng))
	}
	return NewFilter(cs...)
}

func ixRandEvent(rng *rand.Rand, seq uint64) *event.Event {
	ev := event.New(genTypes[rng.Intn(len(genTypes))], fmt.Sprintf("src-%d", rng.Intn(4)),
		time.Duration(rng.Intn(8)))
	for _, attr := range []string{"user", "x", "y", "tag", "zone"} {
		if rng.Intn(3) > 0 { // each attribute is sometimes absent
			ev.Set(attr, ixRandValue(rng, attr))
		}
	}
	return ev.Stamp(seq)
}

// --- index unit tests ---------------------------------------------------------

// TestIndexDifferential is the core property test of the counting
// algorithm: a mutating stream of adds and removes, with every event
// checked against every live filter's Filter.Matches. Well over 1000
// randomized filter/event pairs per run.
func TestIndexDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ix := NewIndex()
	live := map[string]Filter{}
	var keys []string

	for round := 0; round < 1500; round++ {
		switch {
		case round%3 == 0 || len(keys) == 0:
			f := ixRandFilter(rng)
			key := f.Key()
			if _, dup := live[key]; !dup {
				live[key] = f
				keys = append(keys, key)
			}
			ix.Add(key, f)
		case round%7 == 0:
			i := rng.Intn(len(keys))
			key := keys[i]
			ix.Remove(key)
			delete(live, key)
			keys = append(keys[:i], keys[i+1:]...)
		}

		ev := ixRandEvent(rng, uint64(round))
		got := map[string]bool{}
		ix.Match(ev, func(key string) {
			if got[key] {
				t.Fatalf("round %d: filter %q visited twice", round, key)
			}
			got[key] = true
		})
		for key := range got {
			if _, ok := live[key]; !ok {
				t.Fatalf("round %d: index matched removed filter %q", round, key)
			}
		}
		for key, f := range live {
			if want := f.Matches(ev); want != got[key] {
				t.Fatalf("round %d: filter %q (%v) on event %v: index=%v linear=%v",
					round, key, f.Constraints, ev.Attrs, got[key], want)
			}
		}
	}
	if ix.Len() != len(live) {
		t.Fatalf("index holds %d filters, want %d", ix.Len(), len(live))
	}
}

func TestIndexZeroConstraintFilter(t *testing.T) {
	ix := NewIndex()
	f := NewFilter()
	ix.Add(f.Key(), f)
	n := 0
	ix.Match(event.New("anything", "s", 0).Stamp(1), func(string) { n++ })
	if n != 1 {
		t.Fatalf("zero-constraint filter matched %d times, want 1", n)
	}
	ix.Remove(f.Key())
	n = 0
	ix.Match(event.New("anything", "s", 0).Stamp(2), func(string) { n++ })
	if n != 0 {
		t.Fatalf("removed zero-constraint filter still matches")
	}
}

func TestIndexExistsOperator(t *testing.T) {
	ix := NewIndex()
	f := NewFilter(Exists("user"), TypeIs("t"))
	ix.Add(f.Key(), f)
	matched := func(ev *event.Event) bool {
		hit := false
		ix.Match(ev, func(string) { hit = true })
		return hit
	}
	if !matched(event.New("t", "s", 0).Set("user", event.S("bob")).Stamp(1)) {
		t.Fatal("exists+eq filter should match event with attribute present")
	}
	if matched(event.New("t", "s", 0).Stamp(2)) {
		t.Fatal("exists filter matched event lacking the attribute")
	}
	if matched(event.New("other", "s", 0).Set("user", event.S("bob")).Stamp(3)) {
		t.Fatal("type constraint ignored")
	}
	// Exists on an implicit envelope attribute always holds.
	ix2 := NewIndex()
	g := NewFilter(Exists("time"))
	ix2.Add(g.Key(), g)
	hit := false
	ix2.Match(event.New("t", "s", 5).Stamp(4), func(string) { hit = true })
	if !hit {
		t.Fatal("exists(time) must match every event")
	}
}

func TestIndexDuplicateConstraints(t *testing.T) {
	// A filter may carry the same constraint twice; the counting table
	// must require both postings, and removal must drop both.
	ix := NewIndex()
	c := Eq("user", event.S("bob"))
	f := NewFilter(c, c)
	ix.Add(f.Key(), f)
	hit := 0
	ix.Match(event.New("t", "s", 0).Set("user", event.S("bob")).Stamp(1), func(string) { hit++ })
	if hit != 1 {
		t.Fatalf("duplicate-constraint filter matched %d times, want 1", hit)
	}
	ix.Remove(f.Key())
	if got := ix.Postings(); got != 0 {
		t.Fatalf("postings after removal = %d, want 0", got)
	}
	if got := len(ix.Attrs()); got != 0 {
		t.Fatalf("attrs after removal = %v, want none", ix.Attrs())
	}
}

// TestIndexLargeIntEquality pins the 2^53 float-collision case: distinct
// int64 values that collapse to the same float64 must not cross-match,
// because Value.Equal compares same-kind ints exactly. Reachable in
// practice through the implicit nanosecond "time" envelope attribute.
func TestIndexLargeIntEquality(t *testing.T) {
	const big = int64(1) << 53
	ix := NewIndex()
	f := NewFilter(Eq("n", event.I(big+1)))
	ix.Add(f.Key(), f)
	check := func(ev *event.Event, want bool) {
		t.Helper()
		hit := false
		ix.Match(ev, func(string) { hit = true })
		if lin := f.Matches(ev); lin != want {
			t.Fatalf("reference semantics changed: Matches=%v want %v", lin, want)
		}
		if hit != want {
			t.Fatalf("index=%v, want %v (and linear agrees with want)", hit, want)
		}
	}
	// float64(2^53) == float64(2^53+1), but the ints differ.
	check(event.New("t", "s", 0).Set("n", event.I(big)).Stamp(1), false)
	check(event.New("t", "s", 0).Set("n", event.I(big+1)).Stamp(2), true)
	// Cross-kind numeric equality still works for exactly representable values.
	ix2 := NewIndex()
	g := NewFilter(Eq("n", event.I(5)))
	ix2.Add(g.Key(), g)
	hit := false
	ix2.Match(event.New("t", "s", 0).Set("n", event.F(5.0)).Stamp(3), func(string) { hit = true })
	if !hit {
		t.Fatal("int-5 constraint must match float-5.0 value")
	}
}

func TestIndexSlotReuse(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 100; i++ {
		f := NewFilter(Eq("user", event.S(fmt.Sprintf("u%d", i))))
		key := f.Key()
		ix.Add(key, f)
		if i%2 == 0 {
			ix.Remove(key)
		}
	}
	if got := len(ix.slots) - len(ix.free); got != ix.Len() {
		t.Fatalf("slot accounting: %d live slots vs %d filters", got, ix.Len())
	}
	if len(ix.slots) >= 100 {
		t.Fatalf("free slots not reused: %d slots for %d live filters", len(ix.slots), ix.Len())
	}
}

func TestIndexAttrsSorted(t *testing.T) {
	ix := NewIndex()
	for _, a := range []string{"zeta", "alpha", "mid"} {
		f := NewFilter(Exists(a))
		ix.Add(f.Key(), f)
	}
	attrs := ix.Attrs()
	if !sort.StringsAreSorted(attrs) {
		t.Fatalf("attr order not sorted: %v", attrs)
	}
}

// --- broker-level differential test -------------------------------------------

// deliveries records per-client delivered event IDs for one world.
type deliveries struct {
	byClient map[int][]string
}

// diffWorld is one of the two lockstep worlds under comparison.
type diffWorld struct {
	tn  *testNet
	got *deliveries
}

func newDiffWorld(seed int64, brokers, clientsPerBroker int, opts Options) *diffWorld {
	tn := newChain(seed, brokers, opts)
	for i := 0; i < brokers*clientsPerBroker; i++ {
		tn.addClient(i % brokers)
	}
	return &diffWorld{tn: tn, got: &deliveries{byClient: map[int][]string{}}}
}

// TestBrokerDifferentialIndexVsLinear drives two identical broker chains
// — one matching through the counting index, one through the preserved
// linear scan — with the same randomized subscribe/advertise/publish/
// unsubscribe workload under all four DisableCovering × UseAdvertisements
// combinations, and requires identical delivery sets, Stats counters,
// table contents and forwarding state. 160 filters × 240 events per combo
// ≈ 38k filter/event pairs each.
func TestBrokerDifferentialIndexVsLinear(t *testing.T) {
	for _, disableCovering := range []bool{false, true} {
		for _, useAdverts := range []bool{false, true} {
			name := fmt.Sprintf("covering=%v/adverts=%v", !disableCovering, useAdverts)
			t.Run(name, func(t *testing.T) {
				runBrokerDifferential(t, Options{
					DisableCovering:   disableCovering,
					UseAdvertisements: useAdverts,
				})
			})
		}
	}
}

func runBrokerDifferential(t *testing.T, opts Options) {
	optsLinear := opts
	optsLinear.DisableIndex = true
	runBrokerDifferentialPair(t, opts, optsLinear)
}

// runBrokerDifferentialPair drives two broker chains configured by optsA
// and optsB through the same randomized workload and requires identical
// observable behaviour — the shared engine behind the index-vs-linear
// and sharded-vs-serial differential tests.
func runBrokerDifferentialPair(t *testing.T, optsA, optsB Options) {
	const (
		brokers          = 3
		clientsPerBroker = 2
		nSubs            = 160
		nUnsubs          = 30
		nEvents          = 240
		seed             = 77
	)
	a := newDiffWorld(seed, brokers, clientsPerBroker, optsA)
	b := newDiffWorld(seed, brokers, clientsPerBroker, optsB)
	worlds := []*diffWorld{a, b}
	nClients := brokers * clientsPerBroker

	// One rng drives the workload; both worlds receive identical inputs.
	rng := rand.New(rand.NewSource(seed))

	// Advertisements (only meaningful under UseAdvertisements, harmless
	// otherwise): every client advertises something, half of them broadly.
	for ci := 0; ci < nClients; ci++ {
		var adv Filter
		if ci%2 == 0 {
			adv = NewFilter() // empty: intersects everything
		} else {
			adv = NewFilter(TypeIs(genTypes[rng.Intn(len(genTypes))]))
		}
		for _, w := range worlds {
			w.tn.clients[ci].Advertise(adv)
		}
	}
	for _, w := range worlds {
		w.tn.settle()
	}

	// Random subscriptions.
	type subRec struct {
		client int
		f      Filter
	}
	var subs []subRec
	for i := 0; i < nSubs; i++ {
		ci := rng.Intn(nClients)
		f := ixRandFilter(rng)
		subs = append(subs, subRec{ci, f})
		for wi, w := range worlds {
			got, ci := w.got, ci
			_ = wi
			w.tn.clients[ci].Subscribe(f, func(e *event.Event) {
				got.byClient[ci] = append(got.byClient[ci], e.ID.String())
			})
		}
		if i%20 == 19 {
			for _, w := range worlds {
				w.tn.settle()
			}
		}
	}
	// Random unsubscriptions of earlier filters.
	for i := 0; i < nUnsubs; i++ {
		r := subs[rng.Intn(len(subs))]
		for _, w := range worlds {
			w.tn.clients[r.client].Unsubscribe(r.f)
		}
	}
	for _, w := range worlds {
		w.tn.settle()
	}

	// Random publishes; the same event content flows through both worlds.
	for i := 0; i < nEvents; i++ {
		ci := rng.Intn(nClients)
		ev := ixRandEvent(rng, uint64(10_000+i))
		for _, w := range worlds {
			w.tn.clients[ci].Publish(ev.Clone())
		}
		if i%40 == 39 {
			for _, w := range worlds {
				w.tn.settle()
			}
		}
	}
	for _, w := range worlds {
		w.tn.world.RunFor(20 * time.Second)
	}

	// Delivery sets must be identical per client.
	for ci := 0; ci < nClients; ci++ {
		ga := append([]string(nil), a.got.byClient[ci]...)
		gb := append([]string(nil), b.got.byClient[ci]...)
		sort.Strings(ga)
		sort.Strings(gb)
		if len(ga) != len(gb) {
			t.Fatalf("client %d: index delivered %d events, linear %d", ci, len(ga), len(gb))
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("client %d: delivery sets diverge at %d: %s vs %s", ci, i, ga[i], gb[i])
			}
		}
		ca, cb := a.tn.clients[ci], b.tn.clients[ci]
		if ca.Delivered != cb.Delivered || ca.Duplicates != cb.Duplicates {
			t.Fatalf("client %d counters diverge: index {%d,%d} linear {%d,%d}",
				ci, ca.Delivered, ca.Duplicates, cb.Delivered, cb.Duplicates)
		}
	}

	// Broker state must be identical: stats, table keys, forwarding maps.
	for bi := 0; bi < brokers; bi++ {
		ba, bb := a.tn.brokers[bi], b.tn.brokers[bi]
		if sa, sb := ba.Stats(), bb.Stats(); sa != sb {
			t.Fatalf("broker %d stats diverge:\nindex:  %+v\nlinear: %+v", bi, sa, sb)
		}
		ka := append([]string(nil), ba.entryKeys...)
		kb := append([]string(nil), bb.entryKeys...)
		if fmt.Sprint(ka) != fmt.Sprint(kb) {
			t.Fatalf("broker %d table keys diverge:\nindex:  %v\nlinear: %v", bi, ka, kb)
		}
		if ba.index.Len() != len(ba.entries) {
			t.Fatalf("broker %d: index holds %d filters but table has %d entries",
				bi, ba.index.Len(), len(ba.entries))
		}
		for n, fa := range ba.forwarded {
			fb := bb.forwarded[n]
			if fmt.Sprint(sortedFilterKeys(fa)) != fmt.Sprint(sortedFilterKeys(fb)) {
				t.Fatalf("broker %d forwarding toward %v diverges:\nindex:  %v\nlinear: %v",
					bi, n, sortedFilterKeys(fa), sortedFilterKeys(fb))
			}
		}
	}
}

// --- benchmarks ---------------------------------------------------------------

// nullEndpoint satisfies netapi.Endpoint with no-op I/O so benchmarks can
// drive Broker.handlePub directly, without simulator scheduling cost.
type nullEndpoint struct {
	id  ids.ID
	rng *rand.Rand
}

func (n *nullEndpoint) ID() ids.ID                { return n.id }
func (n *nullEndpoint) Info() netapi.NodeInfo     { return netapi.NodeInfo{ID: n.id} }
func (n *nullEndpoint) Clock() vclock.Clock       { return nil }
func (n *nullEndpoint) Rand() *rand.Rand          { return n.rng }
func (n *nullEndpoint) Send(ids.ID, wire.Message) {}
func (n *nullEndpoint) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	cb(nil, netapi.ErrUnreachable)
}
func (n *nullEndpoint) Handle(string, netapi.Handler) {}

// benchBroker builds a standalone broker with subs distinct subscriptions
// in a realistic Siena mix: every filter pins an event type (50 types),
// most add a user equality, some add a numeric range.
func benchBroker(subs int, disableIndex bool) (*Broker, []*event.Event) {
	return benchBrokerOpts(subs, Options{DisableIndex: disableIndex})
}

func benchBrokerOpts(subs int, opts Options) (*Broker, []*event.Event) {
	ep := &nullEndpoint{id: ids.FromString("bench-broker"), rng: rand.New(rand.NewSource(9))}
	b := NewBroker(ep, opts)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < subs; i++ {
		typ := fmt.Sprintf("type-%02d", i%50)
		cs := []Constraint{TypeIs(typ)}
		if i%4 != 0 {
			cs = append(cs, Eq("user", event.S(fmt.Sprintf("user-%d", i))))
		}
		if i%3 == 0 {
			cs = append(cs, Gt("x", event.F(float64(rng.Intn(100)))))
		}
		from := ids.FromString(fmt.Sprintf("client-%d", i))
		b.subscribe(from, NewFilter(cs...))
	}
	evs := make([]*event.Event, 64)
	for i := range evs {
		evs[i] = event.New(fmt.Sprintf("type-%02d", i%50), "bench", 0).
			Set("user", event.S(fmt.Sprintf("user-%d", rng.Intn(subs)))).
			Set("x", event.F(float64(rng.Intn(100)))).
			Stamp(uint64(i))
	}
	return b, evs
}

// BenchmarkBrokerPublish measures per-publish matching cost at growing
// subscription-table sizes, for the counting index and the preserved
// linear scan. The acceptance bar for the index is ≥5× lower ns/op at
// subs=10000.
func BenchmarkBrokerPublish(b *testing.B) {
	from := ids.FromString("bench-pub-src")
	for _, subs := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name         string
			disableIndex bool
		}{{"index", false}, {"linear", true}} {
			b.Run(fmt.Sprintf("subs=%d/%s", subs, mode.name), func(b *testing.B) {
				br, evs := benchBroker(subs, mode.disableIndex)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					br.handlePub(nil, from, &PubMsg{Event: evs[i%len(evs)]})
				}
			})
		}
	}
}

// BenchmarkIndexMatch isolates the counting algorithm itself.
func BenchmarkIndexMatch(b *testing.B) {
	br, evs := benchBroker(10000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.index.Match(evs[i%len(evs)], func(string) {})
	}
}
