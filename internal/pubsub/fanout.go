package pubsub

import (
	"encoding/binary"
	"runtime"
	"sync"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
)

// DefaultFanoutWorkers is the pool size selected by FanoutWorkers = 0:
// one worker per core, capped — past the cap the send path is bounded by
// the endpoint, not by group assembly and encode.
func DefaultFanoutWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// fanoutJob is the post-match half of one publish toward one worker's
// destinations: the frozen event plus the slices of neighbour forwards
// and client deliveries whose IDs hash to that worker. Everything
// mutable — subscription tables, shed episodes, stats — stayed behind on
// the actor loop; the job carries only immutable snapshots.
type fanoutJob struct {
	ev       *event.Event
	fwds     []ids.ID
	delivers []ids.ID
}

// fanoutPool pipelines the publish path after the match: message
// assembly, shared-body encode and endpoint sends run on destination-
// sticky workers instead of the broker's actor loop, so a hot broker
// uses every core end-to-end (the matching half was parallelised by
// ShardedIndex; this parallelises dissemination).
//
// Ordering: per-destination FIFO is retained by construction. The actor
// loop is the only producer; destination d is always assigned to worker
// hash(d) % N (stickiness); each worker consumes its FIFO channel
// serially. So the per-destination send order equals the actor's
// submission order, which equals the serial reference path's order.
// What is NOT ordered: data-plane sends from workers may interleave with
// control-plane sends (sub/unsub forwards, advertisements) the actor
// loop issues directly toward the same destination — consumers of the
// event stream only see per-source FIFO of deliveries, which is the
// guarantee the serial path gave local subscribers too.
//
// The pool requires an endpoint that advertises
// netapi.Caps.ConcurrentSend (the TCP transport). Under simnet the
// capability is absent and the broker keeps the serial path, preserving
// the simulator's determinism.
type fanoutPool struct {
	ep      netapi.Endpoint
	workers []chan fanoutJob
	wg      sync.WaitGroup // running worker goroutines
	jobs    sync.WaitGroup // submitted-but-unfinished jobs, for Quiesce
}

// fanoutQueueDepth bounds each worker's job channel. A full channel
// blocks the actor loop's submit — pipeline backpressure: the broker
// cannot race unboundedly ahead of its own send path. Workers never
// send to the broker itself (a broker is not in its own target set), so
// the block cannot deadlock.
const fanoutQueueDepth = 256

func newFanoutPool(ep netapi.Endpoint, n int) *fanoutPool {
	p := &fanoutPool{ep: ep, workers: make([]chan fanoutJob, n)}
	for i := range p.workers {
		ch := make(chan fanoutJob, fanoutQueueDepth)
		p.workers[i] = ch
		p.wg.Add(1)
		go p.run(ch)
	}
	return p
}

func (p *fanoutPool) run(ch chan fanoutJob) {
	defer p.wg.Done()
	for job := range ch {
		if len(job.fwds) > 0 {
			netapi.SendMany(p.ep, job.fwds, &PubMsg{Event: job.ev})
		}
		if len(job.delivers) > 0 {
			netapi.SendMany(p.ep, job.delivers, &DeliverMsg{Event: job.ev})
		}
		p.jobs.Done()
	}
}

// workerFor maps a destination to its sticky worker. IDs are SHA-derived
// (uniform), so the leading 8 bytes are an adequate hash.
func (p *fanoutPool) workerFor(d ids.ID) int {
	return int(binary.BigEndian.Uint64(d[:8]) % uint64(len(p.workers)))
}

// submit partitions one publish's targets by sticky worker and enqueues
// a job per worker touched. Called from the actor loop only (single
// producer — that is what makes per-destination FIFO provable). ev must
// be frozen; fwds and delivers must not be reused by the caller.
func (p *fanoutPool) submit(ev *event.Event, fwds, delivers []ids.ID) {
	n := len(p.workers)
	parts := make([]fanoutJob, n)
	for _, d := range fwds {
		w := p.workerFor(d)
		parts[w].fwds = append(parts[w].fwds, d)
	}
	for _, d := range delivers {
		w := p.workerFor(d)
		parts[w].delivers = append(parts[w].delivers, d)
	}
	for w := range parts {
		if len(parts[w].fwds) == 0 && len(parts[w].delivers) == 0 {
			continue
		}
		parts[w].ev = ev
		p.jobs.Add(1)
		p.workers[w] <- parts[w]
	}
}

// quiesce blocks until every submitted job has been sent to the
// endpoint. Call from outside the actor loop (tests, benchmarks,
// shutdown) after the last publish has been handled.
func (p *fanoutPool) quiesce() { p.jobs.Wait() }

// close drains and stops the workers. No submits may follow.
func (p *fanoutPool) close() {
	for _, ch := range p.workers {
		close(ch)
	}
	p.wg.Wait()
}
