// Package erasure implements Reed-Solomon erasure coding over GF(256),
// the replication alternative the paper attributes to the more
// sophisticated P2P storage systems (§3): "erasure-codes … permit data to
// be reconstituted from a subset of the servers on which it is stored".
//
// The code is a non-systematic Vandermonde code: an object split into
// Data source shards is expanded to Data+Parity fragments, any Data of
// which reconstruct the original.
package erasure

import (
	"fmt"
)

// gfPoly is the AES field polynomial x^8+x^4+x^3+x+1.
const gfPoly = 0x11d

// log/exp tables for GF(256) arithmetic.
var (
	gfExp [512]byte
	gfLog [256]byte
)

// initTables fills the log/exp tables. Called lazily from NewCode so the
// package has no init() (per the style guide); the work is idempotent.
var tablesReady bool

func initTables() {
	if tablesReady {
		return
	}
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	tablesReady = true
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns x^n in GF(256).
func gfPow(x byte, n int) byte {
	if n == 0 {
		return 1
	}
	if x == 0 {
		return 0
	}
	l := (int(gfLog[x]) * n) % 255
	return gfExp[l]
}

// Fragment is one coded shard of an object.
type Fragment struct {
	// Index identifies the code row (0 ≤ Index < Data+Parity).
	Index int
	// OrigLen is the length of the original object in bytes.
	OrigLen int
	// Shard holds ceil(OrigLen/Data) coded bytes.
	Shard []byte
}

// Code is a Reed-Solomon coder with fixed parameters.
type Code struct {
	data   int // m: source shards
	parity int // r: redundant shards
}

// NewCode returns a coder producing data+parity fragments, any data of
// which reconstruct the object. Constraints: data ≥ 1, parity ≥ 0,
// data+parity ≤ 255.
func NewCode(data, parity int) (*Code, error) {
	if data < 1 || parity < 0 || data+parity > 255 {
		return nil, fmt.Errorf("erasure: invalid parameters data=%d parity=%d", data, parity)
	}
	initTables()
	return &Code{data: data, parity: parity}, nil
}

// Total returns the number of fragments produced.
func (c *Code) Total() int { return c.data + c.parity }

// Data returns the number of fragments required to reconstruct.
func (c *Code) Data() int { return c.data }

// Encode splits content into fragments. The content is padded to a
// multiple of the shard size internally; OrigLen preserves the true size.
func (c *Code) Encode(content []byte) []Fragment {
	shardLen := (len(content) + c.data - 1) / c.data
	if shardLen == 0 {
		shardLen = 1
	}
	// Source shards, zero-padded.
	src := make([][]byte, c.data)
	for i := range src {
		src[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(content) {
			copy(src[i], content[start:])
		}
	}
	out := make([]Fragment, c.Total())
	for row := 0; row < c.Total(); row++ {
		shard := make([]byte, shardLen)
		// Row coefficients: x^j with x = row (Vandermonde).
		for j := 0; j < c.data; j++ {
			coef := gfPow(byte(row), j)
			if coef == 0 {
				continue
			}
			s := src[j]
			for k := 0; k < shardLen; k++ {
				shard[k] ^= gfMul(coef, s[k])
			}
		}
		out[row] = Fragment{Index: row, OrigLen: len(content), Shard: shard}
	}
	return out
}

// Decode reconstructs the original content from any c.Data() distinct
// fragments.
func (c *Code) Decode(frags []Fragment) ([]byte, error) {
	if len(frags) < c.data {
		return nil, fmt.Errorf("erasure: need %d fragments, have %d", c.data, len(frags))
	}
	// Select the first c.data distinct indices.
	chosen := make([]Fragment, 0, c.data)
	seen := make(map[int]bool, c.data)
	origLen := -1
	shardLen := -1
	for _, f := range frags {
		if seen[f.Index] {
			continue
		}
		if f.Index < 0 || f.Index >= c.Total() {
			return nil, fmt.Errorf("erasure: fragment index %d out of range", f.Index)
		}
		if origLen == -1 {
			origLen = f.OrigLen
			shardLen = len(f.Shard)
		} else if f.OrigLen != origLen || len(f.Shard) != shardLen {
			return nil, fmt.Errorf("erasure: inconsistent fragment geometry")
		}
		seen[f.Index] = true
		chosen = append(chosen, f)
		if len(chosen) == c.data {
			break
		}
	}
	if len(chosen) < c.data {
		return nil, fmt.Errorf("erasure: need %d distinct fragments, have %d", c.data, len(chosen))
	}
	// Build the m×m Vandermonde submatrix for the chosen rows and invert.
	m := c.data
	mat := make([][]byte, m)
	for i, f := range chosen {
		mat[i] = make([]byte, m)
		for j := 0; j < m; j++ {
			mat[i][j] = gfPow(byte(f.Index), j)
		}
	}
	inv, err := invert(mat)
	if err != nil {
		return nil, err
	}
	// Reconstruct source shards: src = inv × fragments.
	content := make([]byte, m*shardLen)
	for i := 0; i < m; i++ {
		dst := content[i*shardLen : (i+1)*shardLen]
		for j := 0; j < m; j++ {
			coef := inv[i][j]
			if coef == 0 {
				continue
			}
			s := chosen[j].Shard
			for k := 0; k < shardLen; k++ {
				dst[k] ^= gfMul(coef, s[k])
			}
		}
	}
	if origLen > len(content) {
		return nil, fmt.Errorf("erasure: original length %d exceeds decoded size %d", origLen, len(content))
	}
	return content[:origLen], nil
}

// invert computes the inverse of a square matrix over GF(256) by
// Gauss-Jordan elimination.
func invert(a [][]byte) ([][]byte, error) {
	n := len(a)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("erasure: singular matrix")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Normalise pivot row.
		p := aug[col][col]
		for j := 0; j < 2*n; j++ {
			aug[col][j] = gfDiv(aug[col][j], p)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*n; j++ {
				aug[r][j] ^= gfMul(f, aug[col][j])
			}
		}
	}
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}
