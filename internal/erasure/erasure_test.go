package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldLaws(t *testing.T) {
	initTables()
	// Multiplicative identity and commutativity on a sample grid.
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			x, y := byte(a), byte(b)
			if gfMul(x, 1) != x {
				t.Fatalf("a*1 != a for %d", a)
			}
			if gfMul(x, y) != gfMul(y, x) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			if y != 0 {
				if gfMul(gfDiv(x, y), y) != x {
					t.Fatalf("(a/b)*b != a at %d,%d", a, b)
				}
			}
		}
	}
	// Distributivity sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
		}
	}
}

func TestEncodeDecodeAllFragments(t *testing.T) {
	c, err := NewCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("the quick brown fox jumps over the lazy dog")
	frags := c.Encode(content)
	if len(frags) != 6 {
		t.Fatalf("fragments = %d, want 6", len(frags))
	}
	got, err := c.Decode(frags)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("decode mismatch: %q", got)
	}
}

func TestDecodeFromAnySubset(t *testing.T) {
	c, err := NewCode(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("pervasive contextual services payload 0123456789")
	frags := c.Encode(content)
	// All 3-subsets of 6 fragments must reconstruct.
	n := len(frags)
	count := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				got, err := c.Decode([]Fragment{frags[i], frags[j], frags[k]})
				if err != nil {
					t.Fatalf("Decode subset (%d,%d,%d): %v", i, j, k, err)
				}
				if !bytes.Equal(got, content) {
					t.Fatalf("subset (%d,%d,%d) mismatch", i, j, k)
				}
				count++
			}
		}
	}
	if count != 20 {
		t.Fatalf("checked %d subsets, want 20", count)
	}
}

func TestDecodeInsufficientFragments(t *testing.T) {
	c, _ := NewCode(4, 2)
	frags := c.Encode([]byte("some data"))
	if _, err := c.Decode(frags[:3]); err == nil {
		t.Fatalf("want error with 3 of 4 required fragments")
	}
	// Duplicate indices do not count twice.
	if _, err := c.Decode([]Fragment{frags[0], frags[0], frags[0], frags[0]}); err == nil {
		t.Fatalf("duplicates must not satisfy the quorum")
	}
}

func TestBadParameters(t *testing.T) {
	for _, p := range [][2]int{{0, 2}, {-1, 0}, {200, 100}} {
		if _, err := NewCode(p[0], p[1]); err == nil {
			t.Errorf("NewCode(%d,%d): want error", p[0], p[1])
		}
	}
}

func TestEmptyAndTinyContent(t *testing.T) {
	c, _ := NewCode(4, 2)
	for _, content := range [][]byte{{}, {0x42}, []byte("ab")} {
		frags := c.Encode(content)
		got, err := c.Decode(frags[2:])
		if err != nil {
			t.Fatalf("Decode len=%d: %v", len(content), err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("mismatch for len=%d: %v vs %v", len(content), got, content)
		}
	}
}

func TestFragmentGeometryValidation(t *testing.T) {
	c, _ := NewCode(2, 1)
	frags := c.Encode([]byte("hello world"))
	frags[1].OrigLen = 999999
	if _, err := c.Decode(frags[:2]); err == nil {
		t.Fatalf("want geometry error")
	}
}

// Property: for random content and random loss patterns leaving ≥ m
// fragments, decode always reproduces the content.
func TestQuickReconstruction(t *testing.T) {
	c, err := NewCode(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	f := func(content []byte, lossMask uint8) bool {
		frags := c.Encode(content)
		// Drop up to parity fragments.
		var kept []Fragment
		dropped := 0
		for i, fr := range frags {
			if dropped < c.parity && lossMask&(1<<uint(i%8)) != 0 {
				dropped++
				continue
			}
			kept = append(kept, fr)
		}
		// Shuffle to prove order independence.
		rng.Shuffle(len(kept), func(i, j int) { kept[i], kept[j] = kept[j], kept[i] })
		got, err := c.Decode(kept)
		if err != nil {
			return false
		}
		return bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode4KB(b *testing.B) {
	c, _ := NewCode(4, 2)
	content := make([]byte, 4096)
	rng := rand.New(rand.NewSource(1))
	rng.Read(content)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(content)
	}
	b.SetBytes(4096)
}

func BenchmarkDecode4KB(b *testing.B) {
	c, _ := NewCode(4, 2)
	content := make([]byte, 4096)
	rng := rand.New(rand.NewSource(1))
	rng.Read(content)
	frags := c.Encode(content)
	subset := frags[2:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(subset); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4096)
}
