package netapi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

func TestDistanceKm(t *testing.T) {
	a := Coord{X: 0, Y: 0}
	b := Coord{X: 3, Y: 4}
	if got := a.DistanceKm(b); got != 5 {
		t.Fatalf("distance = %v, want 5", got)
	}
	if got := a.DistanceKm(a); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

// Property: distance is symmetric, non-negative, and satisfies the
// triangle inequality.
func TestQuickDistanceMetric(t *testing.T) {
	bound := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Coord{X: bound(ax), Y: bound(ay)}
		b := Coord{X: bound(bx), Y: bound(by)}
		c := Coord{X: bound(cx), Y: bound(cy)}
		ab, ba := a.DistanceKm(b), b.DistanceKm(a)
		if ab != ba || ab < 0 {
			return false
		}
		// Triangle inequality with a small float tolerance.
		return a.DistanceKm(c) <= ab+b.DistanceKm(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// stubEndpoint is the minimal Endpoint for capability-probe tests.
type stubEndpoint struct{}

func (stubEndpoint) ID() ids.ID                                             { return ids.ID{} }
func (stubEndpoint) Info() NodeInfo                                         { return NodeInfo{} }
func (stubEndpoint) Clock() vclock.Clock                                    { return nil }
func (stubEndpoint) Rand() *rand.Rand                                       { return nil }
func (stubEndpoint) Send(ids.ID, wire.Message)                              {}
func (stubEndpoint) Request(ids.ID, wire.Message, time.Duration, ReplyFunc) {}
func (stubEndpoint) Handle(string, Handler)                                 {}

type concStub struct {
	stubEndpoint
	ok bool
}

func (c concStub) ConcurrentSends() bool { return c.ok }

func TestCapabilitiesConcurrentSend(t *testing.T) {
	if Capabilities(stubEndpoint{}).ConcurrentSend {
		t.Fatal("plain endpoint must not report ConcurrentSend")
	}
	if Capabilities(concStub{ok: false}).ConcurrentSend {
		t.Fatal("ConcurrentSends()==false must not set the capability")
	}
	if !Capabilities(concStub{ok: true}).ConcurrentSend {
		t.Fatal("ConcurrentSends()==true must set the capability")
	}
}
