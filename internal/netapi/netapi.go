// Package netapi defines the endpoint abstraction through which every
// protocol in this repository (overlay routing, pub/sub, storage, bundle
// deployment, pipelines) talks to the network. Two implementations exist:
// the deterministic simulator (internal/simnet) and the real TCP transport
// (internal/transport).
//
// Callback discipline: an endpoint delivers messages and timer callbacks
// serially — protocol code never runs concurrently with itself on the same
// node and therefore needs no locks. Under simnet the whole world shares
// one event loop; under TCP each node has an actor loop.
//
// Send discipline: by default Send/SendMany may only be called from the
// endpoint's callback goroutine (the same discipline as everything else).
// Endpoints that can accept sends from arbitrary goroutines advertise it
// via ConcurrentSender/Caps.ConcurrentSend; only then may protocol code
// move send work onto worker goroutines (the broker's fan-out pool does
// exactly this). Incoming delivery remains serial either way.
package netapi

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// ErrTimeout is delivered to request callbacks when no reply arrives in time.
var ErrTimeout = errors.New("netapi: request timed out")

// ErrUnreachable is delivered when the destination is known to be dead or
// the message could not be sent.
var ErrUnreachable = errors.New("netapi: destination unreachable")

// Coord is a planar position in kilometres, used by the latency model and
// by geographic placement policies.
type Coord struct {
	X, Y float64
}

// DistanceKm returns the Euclidean distance between two coordinates.
func (c Coord) DistanceKm(o Coord) float64 {
	dx, dy := c.X-o.X, c.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// NodeInfo describes a node's static attributes, advertised to other nodes
// and used by deployment policies.
type NodeInfo struct {
	ID     ids.ID
	Region string
	Coord  Coord
}

// Ctx accompanies an incoming message.
type Ctx interface {
	// Reply answers a request. For one-way messages Reply is a no-op.
	Reply(msg wire.Message)
	// ReplyErr answers a request with an error.
	ReplyErr(err error)
}

// Handler processes one incoming message of a registered kind.
type Handler func(ctx Ctx, from ids.ID, msg wire.Message)

// ReplyFunc receives the outcome of a Request.
type ReplyFunc func(reply wire.Message, err error)

// Endpoint is a node's interface to the network.
type Endpoint interface {
	// ID returns this node's identifier.
	ID() ids.ID
	// Info returns this node's static attributes.
	Info() NodeInfo
	// Clock returns the node's scheduling clock.
	Clock() vclock.Clock
	// Rand returns the node's deterministic random source. Protocol code
	// must use this rather than global rand.
	Rand() *rand.Rand
	// Send transmits a one-way message.
	Send(to ids.ID, msg wire.Message)
	// Request transmits msg and invokes cb exactly once with the reply
	// or an error (ErrTimeout after the deadline).
	Request(to ids.ID, msg wire.Message, timeout time.Duration, cb ReplyFunc)
	// Handle registers the handler for a message kind. A second
	// registration for the same kind replaces the first.
	Handle(kind string, h Handler)
}

// Multicaster is optionally implemented by endpoints with a fan-out fast
// path: one message value (and, where the endpoint serialises, one
// encoded body) is shared across every destination instead of being
// re-built per Send. The TCP transport encodes the payload once per
// negotiated codec; the simulator coalesces same-deadline deliveries
// into one scheduler event.
type Multicaster interface {
	// SendMany transmits msg once to each destination, in order.
	// Semantically identical to calling Send per destination.
	//
	// Ordering under concurrency: when the endpoint advertises
	// ConcurrentSends, calls from different goroutines may interleave
	// arbitrarily with each other, but each call still emits toward its
	// destinations in argument order, and two calls toward the same
	// destination from the SAME goroutine are emitted in program order.
	// Callers that need per-destination FIFO across goroutines must keep
	// each destination on one goroutine (destination-sticky workers).
	SendMany(tos []ids.ID, msg wire.Message)
}

// SendMany delivers msg to every destination, using the endpoint's
// multicast fast path when it has one and per-destination Sends
// otherwise. Callers must treat msg as shared and immutable afterwards
// (events should be frozen before fanning out).
func SendMany(ep Endpoint, tos []ids.ID, msg wire.Message) {
	if m := Capabilities(ep).Multicast; m != nil {
		m.SendMany(tos, msg)
		return
	}
	for _, to := range tos {
		ep.Send(to, msg)
	}
}

// Caps collects an endpoint's optional interfaces in one typed struct.
// A field is nil when the endpoint does not provide that capability.
type Caps struct {
	// Multicast is the fan-out fast path, or nil.
	Multicast Multicaster
	// Backpressure is the send-queue saturation signal, or nil.
	Backpressure Backpressured
	// ConcurrentSend reports that Send/SendMany (and the read-only
	// Backpressured gauges, if present) are safe to call from any
	// goroutine, not just the callback goroutine.
	ConcurrentSend bool
}

// Capabilities discovers ep's optional interfaces. It formalises what
// callers used to do with scattered ad-hoc type assertions: probe once,
// keep the typed result. Protocol constructors call it at wiring time
// (the broker records Caps.Backpressure for shedding, SendMany uses
// Caps.Multicast); the capability set of an endpoint never changes over
// its lifetime, so the snapshot stays valid.
func Capabilities(ep Endpoint) Caps {
	var c Caps
	if m, ok := ep.(Multicaster); ok {
		c.Multicast = m
	}
	if b, ok := ep.(Backpressured); ok {
		c.Backpressure = b
	}
	if s, ok := ep.(ConcurrentSender); ok && s.ConcurrentSends() {
		c.ConcurrentSend = true
	}
	return c
}

// ConcurrentSender is optionally implemented by endpoints whose send path
// tolerates concurrent producers. The default Endpoint contract confines
// Send/SendMany to the callback goroutine; an endpoint that returns true
// here widens that to any goroutine: sends may race with each other and
// with the callback goroutine without corrupting state or losing frames,
// and queue accounting (outbox budgets, stats) stays exact. The TCP
// transport implements it (encode runs on the caller, the per-peer outbox
// is mutex-protected); the simulator deliberately does not — its
// determinism depends on the world loop being the only scheduler, so
// concurrent load is staged through World.Inject instead.
type ConcurrentSender interface {
	// ConcurrentSends reports whether Send/SendMany may be called from
	// any goroutine. The answer must not change over the endpoint's
	// lifetime (Capabilities snapshots it at wiring time).
	ConcurrentSends() bool
}

// Backpressured is optionally implemented by endpoints whose send path
// can saturate: the TCP transport's byte-budgeted per-peer outboxes and
// the simulator's in-flight budget mirror. It surfaces overload to
// protocol code so it can shed its lowest-value work (the pub/sub
// broker drops per-subscriber deliveries toward saturated destinations)
// instead of letting the transport drop blindly.
//
// Callback discipline applies: these methods may only be called from
// protocol code running on the endpoint's callback goroutine (the
// actor loop under TCP, the world loop under simnet), and OnDrain
// callbacks are invoked there too. Exception: an endpoint that reports
// Caps.ConcurrentSend must also make QueuedBytes and Saturated safe to
// call from any goroutine (they become advisory snapshots under
// concurrent sends); OnDrain registration and callback delivery stay on
// the callback goroutine regardless, which is what lets the broker keep
// its shed-episode bookkeeping lock-free on the actor loop.
type Backpressured interface {
	// QueuedBytes is the backpressure gauge: payload bytes currently
	// queued (including frames mid-write) toward to. Zero for unknown
	// or idle destinations. Without a sizing codec the simulator counts
	// one byte per message, making the gauge a message count.
	QueuedBytes(to ids.ID) int
	// Saturated reports whether the send queue toward to has crossed
	// its high watermark and not yet drained back to its low one — the
	// hysteresis window in which new non-control sends are dropped.
	Saturated(to ids.ID) bool
	// OnDrain registers fn, invoked each time a destination's queue
	// falls back to its low watermark after having been saturated
	// ("below the low watermark again" — safe to resume fan-out).
	OnDrain(fn func(to ids.ID))
}
