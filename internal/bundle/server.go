package bundle

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// Program is a unit of deployed behaviour running in a security domain.
type Program interface {
	// Start begins execution. The domain is the program's only window
	// onto the host.
	Start(d *Domain) error
	// Stop halts execution and releases resources.
	Stop()
}

// Factory instantiates a program from bundle parameters and payload.
type Factory func(params map[string]string, data []byte) (Program, error)

// Registry maps program names to factories — the "code cache" bundles
// resolve against.
type Registry struct {
	factories map[string]Factory
}

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under name; re-registration replaces it.
func (r *Registry) Register(name string, f Factory) {
	r.factories[name] = f
}

// Names lists registered programs, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New instantiates the named program.
func (r *Registry) New(name string, params map[string]string, data []byte) (Program, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("bundle: unknown program %q", name)
	}
	return f(params, data)
}

// Domain is the security domain a program executes in: a capability-
// checked API surface plus a quota-bounded object store.
type Domain struct {
	name    string
	server  *ThinServer
	rights  map[Right]bool
	store   map[string][]byte
	used    int64
	quota   int64
	program Program
	onEvent func(*event.Event)
	log     *slog.Logger
}

// ErrForbidden reports a capability violation.
var ErrForbidden = errors.New("bundle: capability denied")

// ErrQuota reports object-store quota exhaustion.
var ErrQuota = errors.New("bundle: object store quota exceeded")

// Name returns the domain (installation) name.
func (d *Domain) Name() string { return d.name }

// Clock exposes the host clock.
func (d *Domain) Clock() vclock.Clock { return d.server.ep.Clock() }

// Host returns the hosting node's info (for placement-aware programs).
func (d *Domain) Host() netapi.NodeInfo { return d.server.ep.Info() }

// Logger returns the domain's logger.
func (d *Domain) Logger() *slog.Logger { return d.log }

// PutObject stores a value in the domain object store (RightStore).
func (d *Domain) PutObject(key string, val []byte) error {
	if !d.rights[RightStore] {
		return fmt.Errorf("%w: store", ErrForbidden)
	}
	old := int64(len(d.store[key]))
	if d.used-old+int64(len(val)) > d.quota {
		return fmt.Errorf("%w: %d bytes", ErrQuota, d.quota)
	}
	d.used += int64(len(val)) - old
	d.store[key] = val
	return nil
}

// GetObject reads a value from the domain object store.
func (d *Domain) GetObject(key string) ([]byte, bool) {
	v, ok := d.store[key]
	return v, ok
}

// Emit publishes an event through the host (RightEmit).
func (d *Domain) Emit(ev *event.Event) error {
	if !d.rights[RightEmit] {
		return fmt.Errorf("%w: emit", ErrForbidden)
	}
	if d.server.emit != nil {
		d.server.emit(ev)
	}
	return nil
}

// OnEvent registers the program's event sink; the host delivers matching
// traffic here ("the primary API offered by the host to matchlets is an
// event delivery source and an event sink", §5).
func (d *Domain) OnEvent(h func(*event.Event)) { d.onEvent = h }

// Options configure a thin server.
type Options struct {
	// Secret is the HMAC key capabilities must be minted with.
	Secret []byte
	// TrustedKeys lists accepted bundle signers; empty accepts any
	// well-signed bundle (verification only proves integrity then).
	TrustedKeys []wire.Bytes
	// DomainQuota bounds each domain's object store. Default 256 KiB.
	DomainQuota int64
	// Logger receives diagnostics; nil discards.
	Logger *slog.Logger
}

func (o *Options) applyDefaults() {
	if o.DomainQuota == 0 {
		o.DomainQuota = 256 << 10
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
}

// Stats counts thin-server activity.
type Stats struct {
	Installed     uint64
	Rejected      uint64
	Uninstalled   uint64
	ActiveDomains int
}

// ThinServer hosts security domains and accepts bundle deployments, both
// locally and over the network ("bundle.deploy" requests).
type ThinServer struct {
	ep      netapi.Endpoint
	reg     *Registry
	opts    Options
	log     *slog.Logger
	domains map[string]*Domain
	order   []string // deterministic iteration
	emit    func(*event.Event)
	stats   Stats
}

// NewThinServer builds a thin server on ep and registers its handlers.
func NewThinServer(ep netapi.Endpoint, reg *Registry, opts Options) *ThinServer {
	opts.applyDefaults()
	ts := &ThinServer{
		ep:      ep,
		reg:     reg,
		opts:    opts,
		log:     opts.Logger.With("node", ep.ID().Short()),
		domains: make(map[string]*Domain),
	}
	ep.Handle("bundle.deploy", ts.handleDeploy)
	ep.Handle("bundle.undeploy", ts.handleUndeploy)
	ep.Handle("bundle.list", ts.handleList)
	return ts
}

// SetEmitter wires domain Emit calls into the host (pipelines/pub-sub).
func (ts *ThinServer) SetEmitter(emit func(*event.Event)) { ts.emit = emit }

// Stats returns a snapshot of counters. Must run on the server's
// owning goroutine: deployment state is confined to the endpoint's
// delivery loop.
//
//vetactive:ignore atomicstats actor-confined to the endpoint delivery goroutine
func (ts *ThinServer) Stats() Stats {
	s := ts.stats
	s.ActiveDomains = len(ts.domains)
	return s
}

// Domain returns the named domain, if installed.
func (ts *ThinServer) Domain(name string) (*Domain, bool) {
	d, ok := ts.domains[name]
	return d, ok
}

// Domains lists installed domain names in installation order.
func (ts *ThinServer) Domains() []string {
	out := make([]string, len(ts.order))
	copy(out, ts.order)
	return out
}

// LogicalPrograms returns the logical program name of each installed
// domain: the domain name up to the first '#'. Deployment engines name
// bundles "<logical>#<instance>" so that placement constraints can count
// instances per logical program.
func (ts *ThinServer) LogicalPrograms() []string {
	out := make([]string, 0, len(ts.order))
	for _, name := range ts.order {
		if i := strings.Index(name, "#"); i >= 0 {
			out = append(out, name[:i])
			continue
		}
		out = append(out, name)
	}
	return out
}

// Install verifies and runs a bundle locally.
func (ts *ThinServer) Install(b *Bundle) (*Domain, error) {
	if err := ts.verify(b); err != nil {
		ts.stats.Rejected++
		return nil, err
	}
	if _, exists := ts.domains[b.Name]; exists {
		ts.stats.Rejected++
		return nil, fmt.Errorf("bundle: domain %q already installed", b.Name)
	}
	rights := make(map[Right]bool)
	for _, c := range b.Capabilities {
		if c.Valid(ts.opts.Secret) {
			rights[c.Right] = true
		}
	}
	d := &Domain{
		name:   b.Name,
		server: ts,
		rights: rights,
		store:  make(map[string][]byte),
		quota:  ts.opts.DomainQuota,
		log:    ts.log.With("domain", b.Name),
	}
	prog, err := ts.reg.New(b.Program, b.ParamMap(), b.Data)
	if err != nil {
		ts.stats.Rejected++
		return nil, err
	}
	d.program = prog
	if err := prog.Start(d); err != nil {
		ts.stats.Rejected++
		return nil, fmt.Errorf("bundle: start %q: %w", b.Name, err)
	}
	ts.domains[b.Name] = d
	ts.order = append(ts.order, b.Name)
	ts.stats.Installed++
	ts.log.Debug("installed", "domain", b.Name, "program", b.Program)
	return d, nil
}

// verify performs the arrival checks: signature, trust, deploy capability.
func (ts *ThinServer) verify(b *Bundle) error {
	if err := b.Verify(); err != nil {
		return err
	}
	if len(ts.opts.TrustedKeys) > 0 {
		trusted := false
		for _, k := range ts.opts.TrustedKeys {
			if string(k) == string(b.PublicKey) {
				trusted = true
				break
			}
		}
		if !trusted {
			return fmt.Errorf("bundle: signer of %q is not trusted", b.Name)
		}
	}
	if !b.HasCapability(ts.opts.Secret, RightDeploy) {
		return fmt.Errorf("%w: deploy capability missing or invalid for %q", ErrForbidden, b.Name)
	}
	return nil
}

// Uninstall stops and removes a domain.
func (ts *ThinServer) Uninstall(name string) error {
	d, ok := ts.domains[name]
	if !ok {
		return fmt.Errorf("bundle: no domain %q", name)
	}
	d.program.Stop()
	delete(ts.domains, name)
	for i, n := range ts.order {
		if n == name {
			ts.order = append(ts.order[:i], ts.order[i+1:]...)
			break
		}
	}
	ts.stats.Uninstalled++
	return nil
}

// Deliver pushes an event to every domain's event sink, in install order.
func (ts *ThinServer) Deliver(ev *event.Event) {
	for _, name := range ts.order {
		d := ts.domains[name]
		if d.onEvent != nil {
			d.onEvent(ev)
		}
	}
}

// --- network deployment ------------------------------------------------------

// DeployMsg requests installation of the carried bundle XML.
type DeployMsg struct {
	Bundle wire.Bytes `xml:"bundle"`
}

// Kind implements wire.Message.
func (DeployMsg) Kind() string { return "bundle.deploy" }

// UndeployMsg requests removal of a domain.
type UndeployMsg struct {
	Name string `xml:"name,attr"`
}

// Kind implements wire.Message.
func (UndeployMsg) Kind() string { return "bundle.undeploy" }

// ListMsg requests the installed domain names.
type ListMsg struct{}

// Kind implements wire.Message.
func (ListMsg) Kind() string { return "bundle.list" }

// DeployReply acknowledges a deploy/undeploy/list request.
type DeployReply struct {
	OK      bool     `xml:"ok,attr"`
	Err     string   `xml:"err,attr,omitempty"`
	Domains []string `xml:"domain,omitempty"`
}

// Kind implements wire.Message.
func (DeployReply) Kind() string { return "bundle.reply" }

// RegisterMessages records deployment message types in a wire registry.
// Deployments are rare control-plane operations carrying XML bundle
// documents; a binary fast path would save nothing measurable.
//
//vetactive:xmlfallback rare control-plane kinds, payload is XML anyway
func RegisterMessages(r *wire.Registry) {
	r.Register(&DeployMsg{})
	r.Register(&UndeployMsg{})
	r.Register(&ListMsg{})
	r.Register(&DeployReply{})
}

func (ts *ThinServer) handleDeploy(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
	dm := msg.(*DeployMsg)
	b, err := Unmarshal(dm.Bundle)
	if err != nil {
		ctx.Reply(&DeployReply{OK: false, Err: err.Error()})
		return
	}
	if _, err := ts.Install(b); err != nil {
		ctx.Reply(&DeployReply{OK: false, Err: err.Error()})
		return
	}
	ctx.Reply(&DeployReply{OK: true})
}

func (ts *ThinServer) handleUndeploy(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
	um := msg.(*UndeployMsg)
	if err := ts.Uninstall(um.Name); err != nil {
		ctx.Reply(&DeployReply{OK: false, Err: err.Error()})
		return
	}
	ctx.Reply(&DeployReply{OK: true})
}

func (ts *ThinServer) handleList(ctx netapi.Ctx, _ ids.ID, _ wire.Message) {
	ctx.Reply(&DeployReply{OK: true, Domains: ts.Domains()})
}

// Deploy sends a bundle to a remote thin server and reports the outcome.
func Deploy(ep netapi.Endpoint, target ids.ID, b *Bundle, timeout time.Duration, cb func(error)) {
	data, err := Marshal(b)
	if err != nil {
		cb(err)
		return
	}
	ep.Request(target, &DeployMsg{Bundle: data}, timeout, func(reply wire.Message, err error) {
		if err != nil {
			cb(err)
			return
		}
		r, ok := reply.(*DeployReply)
		if !ok {
			cb(fmt.Errorf("bundle: unexpected reply %T", reply))
			return
		}
		if !r.OK {
			cb(errors.New(r.Err))
			return
		}
		cb(nil)
	})
}
