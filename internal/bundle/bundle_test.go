package bundle

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/wire"
)

// testProgram records lifecycle calls and echoes events.
type testProgram struct {
	params  map[string]string
	data    []byte
	started bool
	stopped bool
	events  []*event.Event
}

func (p *testProgram) Start(d *Domain) error {
	p.started = true
	d.OnEvent(func(ev *event.Event) { p.events = append(p.events, ev) })
	return nil
}

func (p *testProgram) Stop() { p.stopped = true }

// deterministic key material for tests.
func testKeys(t *testing.T, seed string) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(len(seed)) + int64(seed[0])))
	buf := make([]byte, ed25519.SeedSize)
	rng.Read(buf)
	priv := ed25519.NewKeyFromSeed(buf)
	return priv.Public().(ed25519.PublicKey), priv
}

func testServer(t *testing.T, secret []byte, trusted ...wire.Bytes) (*simnet.World, *ThinServer, *Registry, *testProgram) {
	t.Helper()
	w := simnet.NewWorld(simnet.Config{Seed: 1})
	node := w.NewNode(ids.FromString("server"), "eu", netapi.Coord{})
	reg := NewRegistry()
	prog := &testProgram{}
	reg.Register("test.echo", func(params map[string]string, data []byte) (Program, error) {
		prog.params = params
		prog.data = data
		return prog, nil
	})
	reg.Register("test.failing", func(map[string]string, []byte) (Program, error) {
		return nil, fmt.Errorf("factory exploded")
	})
	ts := NewThinServer(node, reg, Options{Secret: secret, TrustedKeys: trusted})
	return w, ts, reg, prog
}

func signedBundle(t *testing.T, secret []byte, name, program string) *Bundle {
	t.Helper()
	pub, priv := testKeys(t, "signer")
	b := &Bundle{
		Name:    name,
		Program: program,
		Params:  []Param{{Key: "rate", Value: "5"}},
		Data:    []byte("<rule/>"),
		Capabilities: []Capability{
			MintCapability(secret, RightDeploy, 1),
			MintCapability(secret, RightStore, 2),
			MintCapability(secret, RightEmit, 3),
		},
	}
	if err := b.Sign(pub, priv); err != nil {
		t.Fatalf("sign: %v", err)
	}
	return b
}

func TestXMLRoundTrip(t *testing.T) {
	secret := []byte("s3cret")
	b := signedBundle(t, secret, "m1", "test.echo")
	data, err := Marshal(b)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.HasPrefix(string(data), "<bundle ") {
		t.Fatalf("not an XML packet: %s", data[:40])
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("verify after round trip: %v", err)
	}
	if got.ParamMap()["rate"] != "5" {
		t.Fatalf("params lost: %+v", got.Params)
	}
}

func TestTamperingDetected(t *testing.T) {
	secret := []byte("s3cret")
	b := signedBundle(t, secret, "m1", "test.echo")
	b.Program = "evil.program"
	if err := b.Verify(); err == nil {
		t.Fatalf("tampered bundle passed verification")
	}
}

func TestCapabilityForgeryRejected(t *testing.T) {
	good := []byte("real-secret")
	bad := []byte("wrong-secret")
	c := MintCapability(bad, RightDeploy, 7)
	if c.Valid(good) {
		t.Fatalf("capability minted with wrong secret accepted")
	}
	if !MintCapability(good, RightDeploy, 7).Valid(good) {
		t.Fatalf("genuine capability rejected")
	}
}

func TestInstallRunsProgram(t *testing.T) {
	secret := []byte("k")
	_, ts, _, prog := testServer(t, secret)
	b := signedBundle(t, secret, "m1", "test.echo")
	d, err := ts.Install(b)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if !prog.started {
		t.Fatalf("program not started")
	}
	if prog.params["rate"] != "5" || string(prog.data) != "<rule/>" {
		t.Fatalf("program config lost")
	}
	// Event delivery reaches the domain's sink.
	ts.Deliver(event.New("t", "s", 0).Stamp(1))
	if len(prog.events) != 1 {
		t.Fatalf("program received %d events", len(prog.events))
	}
	if d.Name() != "m1" {
		t.Fatalf("domain name %q", d.Name())
	}
}

func TestInstallRejectsMissingDeployCapability(t *testing.T) {
	secret := []byte("k")
	_, ts, _, _ := testServer(t, secret)
	pub, priv := testKeys(t, "signer")
	b := &Bundle{Name: "m", Program: "test.echo",
		Capabilities: []Capability{MintCapability([]byte("other"), RightDeploy, 1)}}
	if err := b.Sign(pub, priv); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Install(b); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}
	if ts.Stats().Rejected != 1 {
		t.Fatalf("rejection not counted")
	}
}

func TestInstallRejectsUntrustedSigner(t *testing.T) {
	secret := []byte("k")
	trustedPub, _ := testKeys(t, "trusted")
	_, ts, _, _ := testServer(t, secret, wire.Bytes(trustedPub))
	b := signedBundle(t, secret, "m1", "test.echo") // signed by "signer", not "trusted"
	if _, err := ts.Install(b); err == nil || !strings.Contains(err.Error(), "not trusted") {
		t.Fatalf("err = %v, want untrusted-signer rejection", err)
	}
}

func TestInstallRejectsDuplicateAndUnknownProgram(t *testing.T) {
	secret := []byte("k")
	_, ts, _, _ := testServer(t, secret)
	b := signedBundle(t, secret, "m1", "test.echo")
	if _, err := ts.Install(b); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Install(b); err == nil {
		t.Fatalf("duplicate install accepted")
	}
	b2 := signedBundle(t, secret, "m2", "no.such.program")
	if _, err := ts.Install(b2); err == nil {
		t.Fatalf("unknown program accepted")
	}
	b3 := signedBundle(t, secret, "m3", "test.failing")
	if _, err := ts.Install(b3); err == nil || !strings.Contains(err.Error(), "factory exploded") {
		t.Fatalf("factory error not propagated: %v", err)
	}
}

func TestUninstallStopsProgram(t *testing.T) {
	secret := []byte("k")
	_, ts, _, prog := testServer(t, secret)
	b := signedBundle(t, secret, "m1", "test.echo")
	if _, err := ts.Install(b); err != nil {
		t.Fatal(err)
	}
	if err := ts.Uninstall("m1"); err != nil {
		t.Fatal(err)
	}
	if !prog.stopped {
		t.Fatalf("program not stopped")
	}
	if err := ts.Uninstall("m1"); err == nil {
		t.Fatalf("double uninstall accepted")
	}
	// Events no longer delivered.
	ts.Deliver(event.New("t", "s", 0).Stamp(2))
	if len(prog.events) != 0 {
		t.Fatalf("uninstalled program still receives events")
	}
}

func TestObjectStoreQuotaAndRights(t *testing.T) {
	secret := []byte("k")
	w := simnet.NewWorld(simnet.Config{Seed: 2})
	node := w.NewNode(ids.FromString("server"), "eu", netapi.Coord{})
	reg := NewRegistry()
	var dom *Domain
	reg.Register("grab", func(map[string]string, []byte) (Program, error) {
		return progFunc{start: func(d *Domain) error { dom = d; return nil }}, nil
	})
	ts := NewThinServer(node, reg, Options{Secret: secret, DomainQuota: 10})
	pub, priv := testKeys(t, "signer")

	// With store right.
	b := &Bundle{Name: "a", Program: "grab", Capabilities: []Capability{
		MintCapability(secret, RightDeploy, 1), MintCapability(secret, RightStore, 2)}}
	if err := b.Sign(pub, priv); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Install(b); err != nil {
		t.Fatal(err)
	}
	if err := dom.PutObject("x", []byte("12345")); err != nil {
		t.Fatalf("PutObject: %v", err)
	}
	if err := dom.PutObject("y", make([]byte, 6)); !errors.Is(err, ErrQuota) {
		t.Fatalf("quota not enforced: %v", err)
	}
	if err := dom.PutObject("x", make([]byte, 10)); err != nil {
		t.Fatalf("replacing within quota should work: %v", err)
	}
	if v, ok := dom.GetObject("x"); !ok || len(v) != 10 {
		t.Fatalf("GetObject: %v %v", v, ok)
	}
	// Emit without the right is forbidden.
	if err := dom.Emit(event.New("t", "s", 0)); !errors.Is(err, ErrForbidden) {
		t.Fatalf("emit without right: %v", err)
	}

	// Without store right.
	b2 := &Bundle{Name: "b", Program: "grab", Capabilities: []Capability{
		MintCapability(secret, RightDeploy, 3)}}
	if err := b2.Sign(pub, priv); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Install(b2); err != nil {
		t.Fatal(err)
	}
	if err := dom.PutObject("z", []byte("1")); !errors.Is(err, ErrForbidden) {
		t.Fatalf("store without right: %v", err)
	}
}

type progFunc struct {
	start func(*Domain) error
}

func (p progFunc) Start(d *Domain) error { return p.start(d) }
func (p progFunc) Stop()                 {}

func TestRemoteDeploy(t *testing.T) {
	secret := []byte("k")
	w := simnet.NewWorld(simnet.Config{Seed: 3})
	serverNode := w.NewNode(ids.FromString("server"), "eu", netapi.Coord{})
	clientNode := w.NewNode(ids.FromString("client"), "us", netapi.Coord{X: 5000})
	reg := NewRegistry()
	reg.Register("test.echo", func(map[string]string, []byte) (Program, error) {
		return progFunc{start: func(*Domain) error { return nil }}, nil
	})
	ts := NewThinServer(serverNode, reg, Options{Secret: secret})
	b := signedBundle(t, secret, "remote-1", "test.echo")

	var deployErr error
	done := false
	Deploy(clientNode, serverNode.ID(), b, 5*time.Second, func(err error) {
		deployErr = err
		done = true
	})
	w.RunFor(10 * time.Second)
	if !done {
		t.Fatalf("deploy callback never fired")
	}
	if deployErr != nil {
		t.Fatalf("remote deploy: %v", deployErr)
	}
	if _, ok := ts.Domain("remote-1"); !ok {
		t.Fatalf("domain not installed remotely")
	}

	// A rejected bundle reports its error back.
	bad := signedBundle(t, []byte("wrong"), "remote-2", "test.echo")
	Deploy(clientNode, serverNode.ID(), bad, 5*time.Second, func(err error) { deployErr = err })
	w.RunFor(10 * time.Second)
	if deployErr == nil {
		t.Fatalf("bad bundle deployed without error")
	}

	// List over the network.
	var domains []string
	clientNode.Request(serverNode.ID(), &ListMsg{}, 5*time.Second, func(reply wire.Message, err error) {
		if err == nil {
			domains = reply.(*DeployReply).Domains
		}
	})
	w.RunFor(5 * time.Second)
	if len(domains) != 1 || domains[0] != "remote-1" {
		t.Fatalf("list = %v", domains)
	}

	// Undeploy over the network.
	clientNode.Send(serverNode.ID(), &UndeployMsg{Name: "remote-1"})
	w.RunFor(5 * time.Second)
	if _, ok := ts.Domain("remote-1"); ok {
		t.Fatalf("domain still installed after undeploy")
	}
}
