// Package bundle implements the paper's Cingal-style code-push technology
// (§3, §4.3): "bundles of code and data wrapped in XML packets to be
// deployed and run on a thin server. On arrival at a thin server, and
// subject to verification and security checks, the code may be executed
// within a security domain. Each thin server provides the necessary
// infrastructure for code deployment, authentication of bundles, a
// capability-based protection system and an object store."
//
// Go cannot load native code at runtime, so a bundle's "code" is a program
// name resolved against a capability-checked registry of factories plus
// XML parameters and an opaque data payload (see DESIGN.md §2 for why this
// substitution preserves the architecture's behaviour: late binding of
// behaviour to nodes, with verification, protection and discovery of
// previously unknown programs fetched from the P2P store).
package bundle

import (
	"bytes"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/xml"
	"fmt"

	"github.com/gloss/active/internal/wire"
)

// Right names a privilege a bundle may hold on a thin server.
type Right string

// Rights checked by thin servers.
const (
	// RightDeploy allows installing the bundle at all.
	RightDeploy Right = "deploy"
	// RightStore allows use of the domain object store.
	RightStore Right = "store"
	// RightEmit allows the program to publish events to the host.
	RightEmit Right = "emit"
)

// Capability is an unforgeable token minted with the thin server's secret:
// HMAC-SHA256(secret, right ‖ nonce). Possession proves authorisation.
type Capability struct {
	Right Right      `xml:"right,attr"`
	Nonce uint64     `xml:"nonce,attr"`
	MAC   wire.Bytes `xml:"mac"`
}

// MintCapability creates a capability valid on servers sharing secret.
func MintCapability(secret []byte, right Right, nonce uint64) Capability {
	return Capability{Right: right, Nonce: nonce, MAC: capMAC(secret, right, nonce)}
}

func capMAC(secret []byte, right Right, nonce uint64) []byte {
	mac := hmac.New(sha256.New, secret)
	fmt.Fprintf(mac, "%s|%d", right, nonce)
	return mac.Sum(nil)
}

// Valid reports whether the capability was minted with secret.
func (c Capability) Valid(secret []byte) bool {
	return hmac.Equal(c.MAC, capMAC(secret, c.Right, c.Nonce))
}

// Param is one configuration key/value pair for a program.
type Param struct {
	Key   string `xml:"k,attr"`
	Value string `xml:"v,attr"`
}

// Bundle is the unit of code+data deployment.
type Bundle struct {
	XMLName xml.Name `xml:"bundle"`
	// Name identifies the installation (domain name on the server).
	Name string `xml:"name,attr"`
	// Program names the factory in the server's registry.
	Program string `xml:"program,attr"`
	// Params configure the program instance.
	Params []Param `xml:"param"`
	// Data is an opaque payload handed to the program (e.g. a rule spec).
	Data wire.Bytes `xml:"data,omitempty"`
	// Capabilities authorise the bundle's actions on the server.
	Capabilities []Capability `xml:"capability"`
	// PublicKey is the signer's ed25519 key.
	PublicKey wire.Bytes `xml:"pubkey"`
	// Signature is ed25519 over the canonical bundle bytes.
	Signature wire.Bytes `xml:"sig,omitempty"`
}

// ParamMap returns the parameters as a map (later duplicates win).
func (b *Bundle) ParamMap() map[string]string {
	m := make(map[string]string, len(b.Params))
	for _, p := range b.Params {
		m[p.Key] = p.Value
	}
	return m
}

// HasCapability reports whether the bundle carries a capability for right
// valid under the given secret.
func (b *Bundle) HasCapability(secret []byte, right Right) bool {
	for _, c := range b.Capabilities {
		if c.Right == right && c.Valid(secret) {
			return true
		}
	}
	return false
}

// signingBytes returns the canonical byte form covered by the signature.
func (b *Bundle) signingBytes() ([]byte, error) {
	clone := *b
	clone.Signature = nil
	var buf bytes.Buffer
	if err := xml.NewEncoder(&buf).Encode(&clone); err != nil {
		return nil, fmt.Errorf("bundle: canonicalise: %w", err)
	}
	return buf.Bytes(), nil
}

// Sign stamps the bundle with the signer's key pair.
func (b *Bundle) Sign(pub ed25519.PublicKey, priv ed25519.PrivateKey) error {
	b.PublicKey = wire.Bytes(pub)
	data, err := b.signingBytes()
	if err != nil {
		return err
	}
	b.Signature = ed25519.Sign(priv, data)
	return nil
}

// Verify checks the signature against the embedded public key.
func (b *Bundle) Verify() error {
	if len(b.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("bundle: bad public key length %d", len(b.PublicKey))
	}
	data, err := b.signingBytes()
	if err != nil {
		return err
	}
	if !ed25519.Verify(ed25519.PublicKey(b.PublicKey), data, b.Signature) {
		return fmt.Errorf("bundle: signature verification failed for %q", b.Name)
	}
	return nil
}

// Marshal serialises a bundle to its XML packet form.
func Marshal(b *Bundle) ([]byte, error) {
	return xml.Marshal(b)
}

// Unmarshal parses an XML bundle packet.
func Unmarshal(data []byte) (*Bundle, error) {
	var b Bundle
	if err := xml.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bundle: parse: %w", err)
	}
	return &b, nil
}
