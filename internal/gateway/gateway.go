// Package gateway provides the administrative interface cmd/glossctl uses
// to drive a running active node over the network: store access, event
// publication, subscriptions and status, all proxied by the node on the
// caller's behalf (a thin client need not join the overlay itself).
package gateway

import (
	"fmt"
	"strings"
	"time"

	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/wire"
)

// PutReq stores content through the node.
type PutReq struct {
	Data wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (PutReq) Kind() string { return "gateway.put" }

// PutReply acknowledges a PutReq.
type PutReply struct {
	GUID string `xml:"guid,attr"`
	Err  string `xml:"err,attr,omitempty"`
}

// Kind implements wire.Message.
func (PutReply) Kind() string { return "gateway.putReply" }

// GetReq fetches an object through the node.
type GetReq struct {
	GUID string `xml:"guid,attr"`
}

// Kind implements wire.Message.
func (GetReq) Kind() string { return "gateway.get" }

// GetReply answers a GetReq.
type GetReply struct {
	Data wire.Bytes `xml:"data,omitempty"`
	Err  string     `xml:"err,attr,omitempty"`
}

// Kind implements wire.Message.
func (GetReply) Kind() string { return "gateway.getReply" }

// PubReq publishes an event onto the bus through the node.
type PubReq struct {
	Event *event.Event `xml:"event"`
}

// Kind implements wire.Message.
func (PubReq) Kind() string { return "gateway.pub" }

// SubReq subscribes the sender; matching events stream back as EventMsg.
type SubReq struct {
	Filter pubsub.Filter `xml:"filter"`
}

// Kind implements wire.Message.
func (SubReq) Kind() string { return "gateway.sub" }

// EventMsg carries a matched event to a gateway subscriber.
type EventMsg struct {
	Event *event.Event `xml:"event"`
}

// Kind implements wire.Message.
func (EventMsg) Kind() string { return "gateway.event" }

// StatusReq asks for a node status summary.
type StatusReq struct{}

// Kind implements wire.Message.
func (StatusReq) Kind() string { return "gateway.status" }

// StatusReply renders the node's state.
type StatusReply struct {
	Text string `xml:"text"`
}

// Kind implements wire.Message.
func (StatusReply) Kind() string { return "gateway.statusReply" }

// RegisterMessages records gateway message types in a wire registry.
// Gateway traffic is the client edge, not the broker fast path: volume
// is per-client-request, and the XML forms double as the external
// interop surface, so none of these kinds carry binary codecs.
//
//vetactive:xmlfallback client-edge kinds stay XML-only as the interop surface
func RegisterMessages(r *wire.Registry) {
	r.Register(&PutReq{})
	r.Register(&PutReply{})
	r.Register(&GetReq{})
	r.Register(&GetReply{})
	r.Register(&PubReq{})
	r.Register(&SubReq{})
	r.Register(&EventMsg{})
	r.Register(&StatusReq{})
	r.Register(&StatusReply{})
}

// Serve registers the gateway handlers on an active node.
func Serve(n *core.ActiveNode) {
	ep := n.Endpoint()
	ep.Handle("gateway.put", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		req := msg.(*PutReq)
		n.Store.Put(req.Data, func(guid ids.ID, err error) {
			reply := &PutReply{GUID: guid.String()}
			if err != nil {
				reply.Err = err.Error()
			}
			ctx.Reply(reply)
		})
	})
	ep.Handle("gateway.get", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		req := msg.(*GetReq)
		guid, err := ids.Parse(req.GUID)
		if err != nil {
			ctx.Reply(&GetReply{Err: err.Error()})
			return
		}
		n.Store.Get(guid, func(data []byte, err error) {
			reply := &GetReply{Data: data}
			if err != nil {
				reply.Err = err.Error()
			}
			ctx.Reply(reply)
		})
	})
	ep.Handle("gateway.pub", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
		req := msg.(*PubReq)
		if req.Event != nil {
			n.Client.Publish(req.Event)
		}
	})
	ep.Handle("gateway.sub", func(_ netapi.Ctx, from ids.ID, msg wire.Message) {
		req := msg.(*SubReq)
		subscriber := from
		n.Client.Subscribe(req.Filter, func(ev *event.Event) {
			ep.Send(subscriber, &EventMsg{Event: ev})
		})
	})
	ep.Handle("gateway.status", func(ctx netapi.Ctx, _ ids.ID, _ wire.Message) {
		ctx.Reply(&StatusReply{Text: Status(n)})
	})
}

// Status renders a one-screen node summary.
func Status(n *core.ActiveNode) string {
	var b strings.Builder
	info := n.Info()
	fmt.Fprintf(&b, "node       %s\n", n.ID())
	fmt.Fprintf(&b, "region     %s (%.0f, %.0f)\n", info.Region, info.Coord.X, info.Coord.Y)
	fmt.Fprintf(&b, "overlay    joined=%v leaves=%d\n", n.Overlay.Joined(), len(n.Overlay.Leaves()))
	st := n.Store.Stats()
	fmt.Fprintf(&b, "store      objects=%d bytes=%d cache=%d/%dB\n",
		st.StoredObjects, st.StoredBytes, st.CacheObjects, st.CacheBytes)
	bs := n.Broker.Stats()
	fmt.Fprintf(&b, "broker     entries=%d pubs=%d delivers=%d\n",
		bs.TableEntries, bs.PubsReceived, bs.ClientDelivers)
	fmt.Fprintf(&b, "domains    %s\n", strings.Join(n.Server.Domains(), ", "))
	es := n.Engine.Stats()
	fmt.Fprintf(&b, "matching   rules=%d in=%d out=%d\n", es.Rules, es.EventsIn, es.Emitted)
	return b.String()
}

// Client is a thin glossctl-side helper speaking to one gateway node.
type Client struct {
	EP     netapi.Endpoint
	Target ids.ID
}

// Put stores content and returns the GUID.
func (c *Client) Put(data []byte, timeout time.Duration, cb func(string, error)) {
	c.EP.Request(c.Target, &PutReq{Data: data}, timeout, func(reply wire.Message, err error) {
		if err != nil {
			cb("", err)
			return
		}
		r := reply.(*PutReply)
		if r.Err != "" {
			cb("", fmt.Errorf("%s", r.Err))
			return
		}
		cb(r.GUID, nil)
	})
}

// Get fetches an object by GUID hex.
func (c *Client) Get(guid string, timeout time.Duration, cb func([]byte, error)) {
	c.EP.Request(c.Target, &GetReq{GUID: guid}, timeout, func(reply wire.Message, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		r := reply.(*GetReply)
		if r.Err != "" {
			cb(nil, fmt.Errorf("%s", r.Err))
			return
		}
		cb(r.Data, nil)
	})
}
