package gateway

import (
	"strings"
	"testing"
	"time"

	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/wire"
)

// gwWorld boots a small world with a gateway on node 0 and a raw client
// endpoint that talks to it.
func gwWorld(t *testing.T) (*core.World, netapi.Endpoint) {
	t.Helper()
	w, err := core.NewWorld(core.WorldConfig{Seed: 31, Nodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	Serve(w.Node(0))
	// A bare endpoint playing the part of glossctl.
	RegisterMessages(w.Reg)
	client := w.Sim.NewNode(ids.FromString("ctl"), "eu", netapi.Coord{})
	return w, client
}

func TestGatewayPutGet(t *testing.T) {
	w, client := gwWorld(t)
	gw := &Client{EP: client, Target: w.Node(0).ID()}

	var guid string
	var putErr error
	gw.Put([]byte("gateway payload"), 10*time.Second, func(g string, err error) {
		guid, putErr = g, err
	})
	w.RunFor(10 * time.Second)
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}
	if guid == "" {
		t.Fatal("no guid returned")
	}
	var got []byte
	var getErr error
	gw.Get(guid, 10*time.Second, func(d []byte, err error) { got, getErr = d, err })
	w.RunFor(10 * time.Second)
	if getErr != nil {
		t.Fatalf("get: %v", getErr)
	}
	if string(got) != "gateway payload" {
		t.Fatalf("content: %q", got)
	}
	// Missing object reports an error.
	gw.Get(ids.FromString("nothing").String(), 10*time.Second, func(_ []byte, err error) { getErr = err })
	w.RunFor(15 * time.Second)
	if getErr == nil {
		t.Fatal("missing object did not error")
	}
}

func TestGatewayPubSub(t *testing.T) {
	w, client := gwWorld(t)
	target := w.Node(0).ID()

	var got []*event.Event
	client.Handle("gateway.event", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
		got = append(got, msg.(*EventMsg).Event)
	})
	client.Send(target, &SubReq{Filter: pubsub.NewFilter(pubsub.TypeIs("gw.test"))})
	w.RunFor(3 * time.Second)

	ev := event.New("gw.test", "ctl", w.Sim.Now()).Set("n", event.I(7)).Stamp(1)
	client.Send(target, &PubReq{Event: ev})
	w.RunFor(3 * time.Second)
	if len(got) != 1 || got[0].GetNum("n") != 7 {
		t.Fatalf("streamed events: %d", len(got))
	}
	// The event also reached the wider bus (another node's client).
	seen := 0
	w.Node(3).Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("gw.test")), func(*event.Event) { seen++ })
	w.RunFor(2 * time.Second)
	client.Send(target, &PubReq{Event: event.New("gw.test", "ctl", w.Sim.Now()).Stamp(2)})
	w.RunFor(3 * time.Second)
	if seen != 1 {
		t.Fatalf("bus delivery: %d", seen)
	}
}

func TestGatewayStatus(t *testing.T) {
	w, client := gwWorld(t)
	var text string
	client.Request(w.Node(0).ID(), &StatusReq{}, 5*time.Second, func(reply wire.Message, err error) {
		if err != nil {
			t.Errorf("status: %v", err)
			return
		}
		text = reply.(*StatusReply).Text
	})
	w.RunFor(5 * time.Second)
	for _, want := range []string{"node", "overlay", "store", "broker", "matching"} {
		if !strings.Contains(text, want) {
			t.Fatalf("status missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "joined=true") {
		t.Fatalf("node not joined per status:\n%s", text)
	}
}
