// Package leakcheck fails a test when goroutines spawned by this
// module outlive it. Close paths are where middleware rots quietly —
// a fan-out worker, an accept loop or a sweeper that survives Close
// shows up nowhere until a long-running process runs out of threads —
// so shutdown tests pin the property directly:
//
//	defer leakcheck.Check(t)()
//
// as the first statement, before anything is constructed.
//
// Goroutines are identified by their "created by" frame, counted
// before and after, and the comparison retries briefly so workers
// mid-exit (Close has returned, the goroutine is between its last
// statement and termination) do not flap the test. Only goroutines
// created by this module are considered: the testing harness and
// stdlib helpers are invisible to the check.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// modulePrefix keys "created by" frames to this repository.
const modulePrefix = "github.com/gloss/active/"

// Check snapshots the module's live goroutines and returns the
// function that enforces the snapshot; defer its result immediately.
func Check(t testing.TB) func() {
	t.Helper()
	before := snapshot()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked := diff(before, snapshot())
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutines leaked past test end:\n%s", strings.Join(leaked, "\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// snapshot counts live goroutines per module "created by" site.
func snapshot() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	counts := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if site := createdBy(g); site != "" {
			counts[site]++
		}
	}
	return counts
}

// createdBy extracts the module spawn site of one goroutine dump, or
// "" for goroutines this module did not create.
func createdBy(stack string) string {
	for _, line := range strings.Split(stack, "\n") {
		rest, ok := strings.CutPrefix(line, "created by ")
		if !ok {
			continue
		}
		if fn, _, found := strings.Cut(rest, " in goroutine"); found {
			rest = fn
		}
		if strings.HasPrefix(rest, modulePrefix) && !strings.HasPrefix(rest, modulePrefix+"internal/leakcheck") {
			return rest
		}
		return ""
	}
	return ""
}

// diff lists spawn sites with more live goroutines after than before.
func diff(before, after map[string]int) []string {
	var leaked []string
	for site, n := range after {
		if extra := n - before[site]; extra > 0 {
			leaked = append(leaked, fmt.Sprintf("  %d leaked from %s", extra, site))
		}
	}
	sort.Strings(leaked)
	return leaked
}
