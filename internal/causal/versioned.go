package causal

// Sibling is one line of an object's history: a value together with the
// version vector that produced it.
type Sibling[T any] struct {
	Vec   Vec
	Value T
}

// Versioned is a causally versioned replicated object. It always holds
// at least one sibling once written; more than one means concurrent
// writers updated it from split histories and the application has not
// yet resolved the conflict (its reader merges the sibling values).
//
// Invariants maintained by Put/Absorb: sibling vectors are pairwise
// Concurrent (no sibling dominates or equals another), and siblings are
// kept in deterministic order (sorted by Vec.Key), so two replicas that
// absorbed the same histories hold byte-identical state.
type Versioned[T any] struct {
	Sibs []Sibling[T]
}

// Vec returns the object's summary vector: the merge of every sibling's
// vector — what this replica has seen, regardless of conflicts.
func (v *Versioned[T]) Vec() Vec {
	var out Vec
	for _, s := range v.Sibs {
		out = Merge(out, s.Vec)
	}
	return out
}

// Put records a local write by writer: the new version descends from
// everything seen so far (including all current siblings), so the write
// collapses any sibling set into a single resolved line of history.
// Callers resolve the sibling values into val BEFORE putting (read the
// merged view, modify, write back).
func (v *Versioned[T]) Put(writer string, val T) {
	vec := v.Vec().Increment(writer)
	v.Sibs = []Sibling[T]{{Vec: vec, Value: val}}
}

// Absorb merges a remote replica's state into v and reports whether v
// changed. Dominated or duplicate histories are dropped on both sides;
// genuinely concurrent ones accumulate as siblings.
func (v *Versioned[T]) Absorb(o *Versioned[T]) bool {
	if o == nil || len(o.Sibs) == 0 {
		return false
	}
	before := make([]string, len(v.Sibs))
	for i, s := range v.Sibs {
		before[i] = s.Vec.Key()
	}
	all := append(append([]Sibling[T]{}, v.Sibs...), o.Sibs...)
	v.Sibs = maximalSiblings(all)
	if len(v.Sibs) != len(before) {
		return true
	}
	for i, s := range v.Sibs {
		if s.Vec.Key() != before[i] {
			return true
		}
	}
	return false
}

// maximalSiblings keeps only the maximal elements of the causal partial
// order, deduplicates equal histories, and sorts deterministically.
func maximalSiblings[T any](all []Sibling[T]) []Sibling[T] {
	var keep []Sibling[T]
	for i, c := range all {
		alive := true
		for j, o := range all {
			if i == j {
				continue
			}
			switch Compare(c.Vec, o.Vec) {
			case Dominated:
				alive = false
			case Equal:
				// Duplicate history: keep the first occurrence only.
				if j < i {
					alive = false
				}
			}
			if !alive {
				break
			}
		}
		if alive {
			keep = append(keep, c)
		}
	}
	sortSiblings(keep)
	return keep
}

func sortSiblings[T any](sibs []Sibling[T]) {
	for i := 1; i < len(sibs); i++ {
		for j := i; j > 0 && sibs[j].Vec.Key() < sibs[j-1].Vec.Key(); j-- {
			sibs[j], sibs[j-1] = sibs[j-1], sibs[j]
		}
	}
}

// Compact enforces a sibling cap: when more than cap concurrent
// histories accumulate, they are collapsed into a single sibling whose
// vector is the merge of all of them and whose value is merge over the
// sibling values. This trades a sliver of causality (a yet-unseen
// sibling dominated by the merged vector will be discarded on a later
// Absorb) for bounded state — the classic Riak sibling-explosion valve.
// Reports whether a collapse happened.
func (v *Versioned[T]) Compact(cap int, merge func(vals []T) T) bool {
	if cap <= 0 || len(v.Sibs) <= cap || merge == nil {
		return false
	}
	vals := make([]T, len(v.Sibs))
	for i, s := range v.Sibs {
		vals[i] = s.Value
	}
	v.Sibs = []Sibling[T]{{Vec: v.Vec(), Value: merge(vals)}}
	return true
}

// Values returns the sibling values in deterministic sibling order.
func (v *Versioned[T]) Values() []T {
	out := make([]T, len(v.Sibs))
	for i, s := range v.Sibs {
		out[i] = s.Value
	}
	return out
}
