// Package causal provides version-vector causality for the knowledge
// plane: per-writer counters detecting whether two replicas of a mutable
// object descend from one another or have split into concurrent "sibling"
// histories (the Riak pattern — cf. mec-db's vclock package).
//
// It is named causal rather than vclock because internal/vclock is
// already taken by the simulation scheduler: that package orders *events
// in virtual time*, this one orders *versions of replicated state*.
package causal

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gloss/active/internal/wire"
)

// Vec is a version vector: one monotonic counter per writer node.
// The zero value (nil) is the empty history, dominated by every
// non-empty vector.
type Vec map[string]uint64

// Order is the outcome of comparing two vectors under the causal
// partial order.
type Order int

const (
	// Equal: identical histories.
	Equal Order = iota
	// Descends: the first vector strictly dominates the second — it has
	// seen everything the second has, and more.
	Descends
	// Dominated: the second vector strictly dominates the first.
	Dominated
	// Concurrent: each side has writes the other has not seen — the
	// histories split from a common ancestor (a sibling case).
	Concurrent
)

// String renders the order for logs and test failures.
func (o Order) String() string {
	switch o {
	case Equal:
		return "equal"
	case Descends:
		return "descends"
	case Dominated:
		return "dominated"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("order(%d)", int(o))
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	if v == nil {
		return nil
	}
	out := make(Vec, len(v))
	for w, n := range v {
		out[w] = n
	}
	return out
}

// Increment returns a copy of v with writer's counter bumped by one.
func (v Vec) Increment(writer string) Vec {
	out := v.Clone()
	if out == nil {
		out = make(Vec, 1)
	}
	out[writer]++
	return out
}

// Counter returns writer's counter (zero when absent).
func (v Vec) Counter(writer string) uint64 { return v[writer] }

// Merge returns the pointwise maximum of a and b: the smallest vector
// that descends from both.
func Merge(a, b Vec) Vec {
	if len(a) == 0 {
		return b.Clone()
	}
	out := a.Clone()
	for w, n := range b {
		if n > out[w] {
			out[w] = n
		}
	}
	return out
}

// Compare places a relative to b under the causal partial order.
func Compare(a, b Vec) Order {
	aAhead, bAhead := false, false
	for w, n := range a {
		if n > b[w] {
			aAhead = true
			break
		}
	}
	for w, n := range b {
		if n > a[w] {
			bAhead = true
			break
		}
	}
	switch {
	case aAhead && bAhead:
		return Concurrent
	case aAhead:
		return Descends
	case bAhead:
		return Dominated
	}
	return Equal
}

// writers returns v's writer IDs in sorted order — the basis of every
// deterministic serialisation below.
func (v Vec) writers() []string {
	ws := make([]string, 0, len(v))
	for w := range v {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}

// AppendWire serialises v deterministically (writers sorted) using the
// wire binary primitives, so equal vectors always produce equal bytes.
func (v Vec) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(v)))
	for _, w := range v.writers() {
		b = wire.AppendString(b, w)
		b = wire.AppendUvarint(b, v[w])
	}
	return b
}

// ParseVec reads a vector serialised by AppendWire. Zero-counter entries
// are dropped so the parsed vector compares Equal to its source even if
// a hand-built input carried explicit zeros.
func ParseVec(r *wire.BinReader) Vec {
	n := r.Count()
	var v Vec
	for i := 0; i < n && r.Err() == nil; i++ {
		w := r.String()
		c := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if c == 0 {
			continue
		}
		if v == nil {
			v = make(Vec, n)
		}
		v[w] = c
	}
	return v
}

// Key returns the deterministic serialised form as a string — usable as
// a map key and as a total tie-break order over vectors.
func (v Vec) Key() string { return string(v.AppendWire(nil)) }

// String renders the vector for logs: {a:2 b:1}.
func (v Vec) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, w := range v.writers() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:%d", w, v[w])
	}
	sb.WriteByte('}')
	return sb.String()
}
