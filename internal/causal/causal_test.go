package causal

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/gloss/active/internal/wire"
)

func TestCompareBasics(t *testing.T) {
	a := Vec{}.Increment("a") // {a:1}
	a2 := a.Increment("a")    // {a:2}
	b := Vec{}.Increment("b") // {b:1}
	ab := Merge(a2, b)        // {a:2 b:1}
	cases := []struct {
		x, y Vec
		want Order
	}{
		{nil, nil, Equal},
		{a, a.Clone(), Equal},
		{a2, a, Descends},
		{a, a2, Dominated},
		{nil, a, Dominated},
		{a, nil, Descends},
		{a, b, Concurrent},
		{ab, a2, Descends},
		{ab, b, Descends},
		{a2, ab, Dominated},
	}
	for i, c := range cases {
		if got := Compare(c.x, c.y); got != c.want {
			t.Errorf("case %d: Compare(%v, %v) = %v, want %v", i, c.x, c.y, got, c.want)
		}
	}
}

func TestIncrementDoesNotAlias(t *testing.T) {
	a := Vec{}.Increment("w")
	b := a.Increment("w")
	if a.Counter("w") != 1 || b.Counter("w") != 2 {
		t.Fatalf("increment aliased: a=%v b=%v", a, b)
	}
	if Compare(b, a) != Descends {
		t.Fatalf("child must descend from parent")
	}
}

func TestMergeDescendsFromBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	writers := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 200; trial++ {
		var x, y Vec
		for i := 0; i < 6; i++ {
			x = x.Increment(writers[rng.Intn(len(writers))])
			y = y.Increment(writers[rng.Intn(len(writers))])
		}
		m := Merge(x, y)
		if o := Compare(m, x); o != Descends && o != Equal {
			t.Fatalf("merge %v does not cover %v: %v", m, x, o)
		}
		if o := Compare(m, y); o != Descends && o != Equal {
			t.Fatalf("merge %v does not cover %v: %v", m, y, o)
		}
		if Compare(Merge(x, y), Merge(y, x)) != Equal {
			t.Fatalf("merge not commutative")
		}
	}
}

func TestWireRoundTripDeterministic(t *testing.T) {
	v := Vec{"node-b": 3, "node-a": 1, "node-c": 7}
	b1 := v.AppendWire(nil)
	b2 := v.Clone().AppendWire(nil)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("serialisation not deterministic")
	}
	r := wire.NewBinReader(b1)
	got := ParseVec(r)
	if r.Err() != nil {
		t.Fatalf("parse: %v", r.Err())
	}
	if Compare(got, v) != Equal {
		t.Fatalf("round trip: got %v want %v", got, v)
	}
	if got.Key() != v.Key() {
		t.Fatalf("keys differ after round trip")
	}
}

func TestParseVecDropsZeros(t *testing.T) {
	var b []byte
	b = wire.AppendUvarint(b, 2)
	b = wire.AppendString(b, "a")
	b = wire.AppendUvarint(b, 0)
	b = wire.AppendString(b, "b")
	b = wire.AppendUvarint(b, 2)
	got := ParseVec(wire.NewBinReader(b))
	if len(got) != 1 || got.Counter("b") != 2 {
		t.Fatalf("zero entry kept: %v", got)
	}
}

func TestVersionedPutCollapsesSiblings(t *testing.T) {
	var v Versioned[string]
	v.Put("a", "one")
	var w Versioned[string]
	w.Put("b", "two")
	if !v.Absorb(&w) {
		t.Fatalf("absorb of concurrent write must change state")
	}
	if len(v.Sibs) != 2 {
		t.Fatalf("want 2 siblings, got %d", len(v.Sibs))
	}
	v.Put("a", "resolved")
	if len(v.Sibs) != 1 {
		t.Fatalf("put must collapse siblings, got %d", len(v.Sibs))
	}
	// The resolved write dominates both originals.
	for _, old := range []Vec{Vec{"a": 1}, Vec{"b": 1}} {
		if Compare(v.Sibs[0].Vec, old) != Descends {
			t.Fatalf("resolved vec %v does not dominate %v", v.Sibs[0].Vec, old)
		}
	}
}

func TestAbsorbIdempotentAndOrderFree(t *testing.T) {
	mk := func(writer, val string) *Versioned[string] {
		var v Versioned[string]
		v.Put(writer, val)
		return &v
	}
	a, b, c := mk("a", "A"), mk("b", "B"), mk("c", "C")

	var x Versioned[string]
	x.Absorb(a)
	x.Absorb(b)
	x.Absorb(c)
	var y Versioned[string]
	y.Absorb(c)
	y.Absorb(a)
	y.Absorb(b)
	if len(x.Sibs) != 3 || len(y.Sibs) != 3 {
		t.Fatalf("sibling counts: %d %d", len(x.Sibs), len(y.Sibs))
	}
	for i := range x.Sibs {
		if x.Sibs[i].Vec.Key() != y.Sibs[i].Vec.Key() || x.Sibs[i].Value != y.Sibs[i].Value {
			t.Fatalf("absorb order changed deterministic state")
		}
	}
	if x.Absorb(a) || x.Absorb(&y) {
		t.Fatalf("re-absorbing known history must be a no-op")
	}
}

func TestAbsorbDropsDominated(t *testing.T) {
	var old Versioned[string]
	old.Put("a", "stale")
	newer := &Versioned[string]{}
	newer.Absorb(&old)
	newer.Put("a", "fresh")

	var v Versioned[string]
	v.Absorb(newer)
	if v.Absorb(&old) {
		t.Fatalf("dominated history must not change state")
	}
	if len(v.Sibs) != 1 || v.Sibs[0].Value != "fresh" {
		t.Fatalf("dominated sibling survived: %+v", v.Sibs)
	}
}

func TestCompact(t *testing.T) {
	var v Versioned[string]
	for _, w := range []string{"a", "b", "c", "d"} {
		var o Versioned[string]
		o.Put(w, w)
		v.Absorb(&o)
	}
	if v.Compact(4, nil) {
		t.Fatalf("compact under cap must be a no-op")
	}
	joined := func(vals []string) string {
		out := ""
		for _, s := range vals {
			out += s
		}
		return out
	}
	if !v.Compact(2, joined) {
		t.Fatalf("compact over cap must fire")
	}
	if len(v.Sibs) != 1 {
		t.Fatalf("compact left %d siblings", len(v.Sibs))
	}
	if len(v.Sibs[0].Value) != 4 {
		t.Fatalf("merge did not see all sibling values: %q", v.Sibs[0].Value)
	}
	for _, w := range []string{"a", "b", "c", "d"} {
		if v.Sibs[0].Vec.Counter(w) != 1 {
			t.Fatalf("compacted vec lost writer %s: %v", w, v.Sibs[0].Vec)
		}
	}
}

func FuzzParseVec(f *testing.F) {
	f.Add(Vec{"a": 1, "b": 2}.AppendWire(nil))
	f.Add(Vec(nil).AppendWire(nil))
	f.Add([]byte{0x02, 0x01, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewBinReader(data)
		v := ParseVec(r)
		if r.Err() != nil {
			return
		}
		// Accepted vectors must re-serialise stably.
		b1 := v.AppendWire(nil)
		v2 := ParseVec(wire.NewBinReader(b1))
		if Compare(v, v2) != Equal {
			t.Fatalf("unstable round trip: %v vs %v", v, v2)
		}
		if !bytes.Equal(b1, v2.AppendWire(nil)) {
			t.Fatalf("unstable bytes")
		}
	})
}
