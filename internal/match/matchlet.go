package match

import (
	"fmt"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/store"
)

// Matchlet is the deployable unit of matching computation (§5): "Matchlets
// are structured as pipeline code that accepts events from the event
// distribution mechanism and performs matching on them. Each matchlet
// writes its results onto the event bus. Thus the primary API offered by
// the host to matchlets is an event delivery source and an event sink."
//
// A matchlet program runs one declarative rule on a private engine that
// shares the host's knowledge base and GIS view; it reads events from its
// security domain's event source and emits synthesised events through the
// domain (requiring the emit capability).
type Matchlet struct {
	rule   *Rule
	engine *Engine
	kb     *knowledge.KB
	gis    *knowledge.GIS
}

var _ bundle.Program = (*Matchlet)(nil)

// NewMatchletFactory returns a bundle factory producing matchlets bound
// to the host's knowledge base and GIS. Register it under "matchlet".
func NewMatchletFactory(kb *knowledge.KB, gis *knowledge.GIS) bundle.Factory {
	return func(_ map[string]string, data []byte) (bundle.Program, error) {
		rule, err := UnmarshalRule(data)
		if err != nil {
			return nil, fmt.Errorf("match: matchlet payload: %w", err)
		}
		return &Matchlet{rule: rule, kb: kb, gis: gis}, nil
	}
}

// Start implements bundle.Program.
func (m *Matchlet) Start(d *bundle.Domain) error {
	m.engine = NewEngine(d.Clock(), m.kb, m.gis, Options{Source: "matchlet/" + d.Name()})
	if err := m.engine.AddRule(m.rule); err != nil {
		return err
	}
	m.engine.OnEmit(func(ev *event.Event) {
		// Errors here mean the emit capability is missing; the event is
		// dropped — the domain is sandboxed, not trusted.
		_ = d.Emit(ev)
	})
	d.OnEvent(m.engine.Put)
	return nil
}

// Stop implements bundle.Program.
func (m *Matchlet) Stop() {}

// Engine exposes the matchlet's engine (for stats in tests/benches).
func (m *Matchlet) Engine() *Engine { return m.engine }

// MatchletKey derives the storage GUID under which the matchlet bundle
// for an event type is published — the directory discovery matchlets
// consult ("These look for code capable of matching these new events in
// the storage architecture and deploy this code onto the network", §5).
func MatchletKey(eventType string) ids.ID {
	return ids.FromString("matchlet-for/" + eventType)
}

// Discovery reacts to unknown event types by fetching the matching code
// bundle from the P2P store and installing it on the local thin server.
type Discovery struct {
	store  *store.Store
	server *bundle.ThinServer
	engine *Engine

	// Installed counts successful dynamic deployments.
	Installed uint64
	// Failed counts lookups or installs that failed.
	Failed uint64
	// LastError records the most recent failure for diagnostics.
	LastError error
}

// NewDiscovery wires a discovery matchlet: engine's unknown-type hook →
// store lookup → thin-server install.
func NewDiscovery(st *store.Store, ts *bundle.ThinServer, engine *Engine) *Discovery {
	d := &Discovery{store: st, server: ts, engine: engine}
	engine.SetUnknownHandler(d.handleUnknown)
	return d
}

// PublishMatchlet stores a matchlet bundle under the directory key for
// its event type, making it discoverable network-wide.
func PublishMatchlet(st *store.Store, eventType string, b *bundle.Bundle, cb func(error)) {
	data, err := bundle.Marshal(b)
	if err != nil {
		cb(err)
		return
	}
	st.PutAs(MatchletKey(eventType), data, cb)
}

func (d *Discovery) handleUnknown(eventType string) {
	d.store.Get(MatchletKey(eventType), func(data []byte, err error) {
		if err != nil {
			d.Failed++
			d.LastError = err
			d.engine.ForgetUnknown(eventType) // retry on next occurrence
			return
		}
		b, err := bundle.Unmarshal(data)
		if err != nil {
			d.Failed++
			d.LastError = err
			return
		}
		if _, err := d.server.Install(b); err != nil {
			d.Failed++
			d.LastError = err
			return
		}
		d.Installed++
	})
}
