// Package match implements the paper's distributed contextual matching
// engine (§1.1, §4.2, §5): matchlets that accept events from the event
// distribution mechanism, correlate them against the knowledge base with
// spatial, temporal and logical conditions, and write synthesised
// higher-level events back onto the event bus — "distilling [a very high
// volume of items] down into a relatively small volume of meaningful
// events".
//
// Rules are fully declarative and XML-serialisable so they can travel in
// code bundles and be deployed onto thin servers, including for event
// types unknown at initial deployment (discovery matchlets, §5).
package match

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
)

// Binding unifies an event attribute with a rule variable.
type Binding struct {
	Attr string `xml:"attr,attr"`
	Var  string `xml:"var,attr"`
}

// Pattern describes one event stream the rule correlates.
type Pattern struct {
	// Alias names the matched event for $alias.attr references.
	Alias string `xml:"alias,attr"`
	// Filter selects the events belonging to this pattern.
	Filter pubsub.Filter `xml:"filter"`
	// Bind unifies attributes with variables; patterns sharing a
	// variable only join on events whose bound values are equal.
	Bind []Binding `xml:"bind"`
}

// Condition is one declarative predicate evaluated over the bindings, the
// knowledge base and the GIS layer. Type selects the semantics:
//
//	kb                  — fact (S,P,O) holds now (terms substituted)
//	nokb                — fact absent
//	kbBind              — bind Var to the object of the first fact
//	                      matching (S, P, ·); fails if none
//	cmp                 — Left Op Right over resolved terms
//	withinKm            — A and B within Km kilometres
//	bindNearestSelling  — bind Var to the nearest place selling Item
//	                      within Km of Near; fails if none
//	openFor             — place in Var open now and for ≥ MinMinutes
//	reachable           — subject at A can walk (SpeedKmH) to place Var
//	                      before it closes
type Condition struct {
	XMLName xml.Name `xml:"cond"`
	Type    string   `xml:"type,attr"`

	S string `xml:"s,attr,omitempty"`
	P string `xml:"p,attr,omitempty"`
	O string `xml:"o,attr,omitempty"`

	Left  string `xml:"left,attr,omitempty"`
	Op    string `xml:"op,attr,omitempty"`
	Right string `xml:"right,attr,omitempty"`

	A  string  `xml:"a,attr,omitempty"`
	B  string  `xml:"b,attr,omitempty"`
	Km float64 `xml:"km,attr,omitempty"`

	Item string `xml:"item,attr,omitempty"`
	Near string `xml:"near,attr,omitempty"`
	Var  string `xml:"var,attr,omitempty"`

	MinMinutes float64 `xml:"minMinutes,attr,omitempty"`
	SpeedKmH   float64 `xml:"speedKmH,attr,omitempty"`
}

// EmitAttr maps a synthesised event attribute to a term. Volatile attrs
// (timestamps, measurements) are excluded from the output-suppression key
// so that they do not defeat semantic deduplication.
type EmitAttr struct {
	Name     string `xml:"name,attr"`
	From     string `xml:"from,attr"`
	Volatile bool   `xml:"volatile,attr,omitempty"`
}

// Emit describes the synthesised event.
type Emit struct {
	Type  string     `xml:"type,attr"`
	Attrs []EmitAttr `xml:"attr"`
}

// Rule is a complete declarative matchlet specification.
type Rule struct {
	XMLName  xml.Name `xml:"rule"`
	Name     string   `xml:"name,attr"`
	WindowMs int64    `xml:"windowMs,attr"`
	// SuppressMs throttles semantically identical outputs: after the rule
	// emits an event, an identical one (same type and non-volatile
	// attributes) is suppressed for this long. 0 uses the rule window;
	// negative disables suppression.
	SuppressMs int64       `xml:"suppressMs,attr,omitempty"`
	Patterns   []Pattern   `xml:"pattern"`
	Where      []Condition `xml:"where>cond"`
	Emit       Emit        `xml:"emit"`
}

// Window returns the correlation window (default 5 minutes).
func (r *Rule) Window() time.Duration {
	if r.WindowMs <= 0 {
		return 5 * time.Minute
	}
	return time.Duration(r.WindowMs) * time.Millisecond
}

// Suppression returns the output-suppression window.
func (r *Rule) Suppression() time.Duration {
	if r.SuppressMs < 0 {
		return 0
	}
	if r.SuppressMs == 0 {
		return r.Window()
	}
	return time.Duration(r.SuppressMs) * time.Millisecond
}

// MarshalRule serialises a rule for transport in a bundle payload.
func MarshalRule(r *Rule) ([]byte, error) { return xml.Marshal(r) }

// UnmarshalRule parses a rule payload.
func UnmarshalRule(data []byte) (*Rule, error) {
	var r Rule
	if err := xml.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("match: parse rule: %w", err)
	}
	return &r, nil
}

// env is a (partial) match: variable bindings plus the events per alias.
// Rules bind only a handful of names, so linear scans over small slices
// beat maps on both allocation and lookup cost in the join hot path.
type env struct {
	varNames []string
	varVals  []event.Value
	aliases  []string
	aliasEvs []*event.Event
}

func newEnv() *env { return &env{} }

// truncate rolls the env back to nv variables and na aliases — the undo
// operation for backtracking joins.
func (e *env) truncate(nv, na int) {
	e.varNames = e.varNames[:nv]
	e.varVals = e.varVals[:nv]
	e.aliases = e.aliases[:na]
	e.aliasEvs = e.aliasEvs[:na]
}

func (e *env) varValue(name string) (event.Value, bool) {
	for i, n := range e.varNames {
		if n == name {
			return e.varVals[i], true
		}
	}
	return event.Value{}, false
}

func (e *env) setVar(name string, v event.Value) {
	e.varNames = append(e.varNames, name)
	e.varVals = append(e.varVals, v)
}

func (e *env) eventFor(alias string) (*event.Event, bool) {
	for i, a := range e.aliases {
		if a == alias {
			return e.aliasEvs[i], true
		}
	}
	return nil, false
}

func (e *env) setEvent(alias string, ev *event.Event) {
	e.aliases = append(e.aliases, alias)
	e.aliasEvs = append(e.aliasEvs, ev)
}

// evalCtx carries everything term/condition evaluation needs.
type evalCtx struct {
	kb  *knowledge.KB
	gis *knowledge.GIS
	now time.Duration
}

// resolveTerm evaluates a term string against the environment:
//
//	$VAR            — variable value
//	$alias.attr     — attribute of the event bound to alias
//	place:$VAR.f    — field f (x, y, name, region) of the place named by VAR
//	kb:S:P[:def]    — object of fact (S, P, ·), with optional default;
//	                  S may itself be a $var/$alias.attr term
//	anything else   — numeric literal if parseable, else string literal
func resolveTerm(term string, e *env, ctx *evalCtx) (event.Value, error) {
	switch {
	case strings.HasPrefix(term, "place:"):
		rest := term[len("place:"):]
		dot := strings.LastIndex(rest, ".")
		if dot < 0 {
			return event.Value{}, fmt.Errorf("match: place term %q needs a field", term)
		}
		nameVal, err := resolveTerm(rest[:dot], e, ctx)
		if err != nil {
			return event.Value{}, err
		}
		p, ok := ctx.gis.Place(nameVal.String())
		if !ok {
			return event.Value{}, fmt.Errorf("match: unknown place %q", nameVal.String())
		}
		switch rest[dot+1:] {
		case "x":
			return event.F(p.X), nil
		case "y":
			return event.F(p.Y), nil
		case "name":
			return event.S(p.Name), nil
		case "region":
			return event.S(p.Region), nil
		default:
			return event.Value{}, fmt.Errorf("match: unknown place field in %q", term)
		}
	case strings.HasPrefix(term, "kb:"):
		parts := strings.SplitN(term[len("kb:"):], ":", 3)
		if len(parts) < 2 {
			return event.Value{}, fmt.Errorf("match: kb term %q needs subject and predicate", term)
		}
		subjVal, err := resolveTerm(parts[0], e, ctx)
		if err != nil {
			return event.Value{}, err
		}
		if o, ok := ctx.kb.One(subjVal.String(), parts[1], ctx.now); ok {
			return literal(o), nil
		}
		if len(parts) == 3 {
			return literal(parts[2]), nil
		}
		return event.Value{}, fmt.Errorf("match: no fact (%s, %s, ·)", subjVal.String(), parts[1])
	case strings.HasPrefix(term, "$"):
		body := term[1:]
		if dot := strings.Index(body, "."); dot >= 0 {
			alias, attr := body[:dot], body[dot+1:]
			ev, ok := e.eventFor(alias)
			if !ok {
				return event.Value{}, fmt.Errorf("match: alias %q not bound", alias)
			}
			v, ok := ev.Get(attr)
			if !ok {
				return event.Value{}, fmt.Errorf("match: event %q has no attribute %q", alias, attr)
			}
			return v, nil
		}
		v, ok := e.varValue(body)
		if !ok {
			return event.Value{}, fmt.Errorf("match: variable %q not bound", body)
		}
		return v, nil
	default:
		return literal(term), nil
	}
}

// literal interprets a bare string as a number when possible.
func literal(s string) event.Value {
	if f, err := strconv.ParseFloat(s, 64); err == nil && s != "" {
		return event.F(f)
	}
	return event.S(s)
}

// coordOf resolves a spatial endpoint: "$alias" (event with x/y attrs) or
// "place:$VAR" (GIS coordinates).
func coordOf(term string, e *env, ctx *evalCtx) (netapi.Coord, error) {
	if strings.HasPrefix(term, "place:") {
		nameVal, err := resolveTerm(term[len("place:"):], e, ctx)
		if err != nil {
			return netapi.Coord{}, err
		}
		p, ok := ctx.gis.Place(nameVal.String())
		if !ok {
			return netapi.Coord{}, fmt.Errorf("match: unknown place %q", nameVal.String())
		}
		return p.At(), nil
	}
	if strings.HasPrefix(term, "$") {
		ev, ok := e.eventFor(term[1:])
		if !ok {
			return netapi.Coord{}, fmt.Errorf("match: alias %q not bound", term[1:])
		}
		return netapi.Coord{X: ev.GetNum("x"), Y: ev.GetNum("y")}, nil
	}
	return netapi.Coord{}, fmt.Errorf("match: bad spatial term %q", term)
}

// evalCondition evaluates (and possibly extends, for binder conditions)
// the environment. It reports whether the condition holds.
func evalCondition(c *Condition, e *env, ctx *evalCtx) (bool, error) {
	switch c.Type {
	case "kb", "nokb":
		s, err := resolveString(c.S, e, ctx)
		if err != nil {
			return false, err
		}
		p, err := resolveString(c.P, e, ctx)
		if err != nil {
			return false, err
		}
		o, err := resolveString(c.O, e, ctx)
		if err != nil {
			return false, err
		}
		holds := ctx.kb.Ask(s, p, o, ctx.now)
		if c.Type == "nokb" {
			return !holds, nil
		}
		return holds, nil
	case "kbBind":
		s, err := resolveString(c.S, e, ctx)
		if err != nil {
			return false, err
		}
		p, err := resolveString(c.P, e, ctx)
		if err != nil {
			return false, err
		}
		o, ok := ctx.kb.One(s, p, ctx.now)
		if !ok {
			return false, nil
		}
		e.setVar(c.Var, literal(o))
		return true, nil
	case "cmp":
		l, err := resolveTerm(c.Left, e, ctx)
		if err != nil {
			return false, err
		}
		r, err := resolveTerm(c.Right, e, ctx)
		if err != nil {
			return false, err
		}
		switch c.Op {
		case "eq":
			return l.Equal(r), nil
		case "ne":
			return !l.Equal(r), nil
		case "lt", "le", "gt", "ge":
			cmp, ok := l.Compare(r)
			if !ok {
				return false, nil
			}
			switch c.Op {
			case "lt":
				return cmp < 0, nil
			case "le":
				return cmp <= 0, nil
			case "gt":
				return cmp > 0, nil
			default:
				return cmp >= 0, nil
			}
		default:
			return false, fmt.Errorf("match: unknown cmp op %q", c.Op)
		}
	case "withinKm":
		a, err := coordOf(c.A, e, ctx)
		if err != nil {
			return false, err
		}
		b, err := coordOf(c.B, e, ctx)
		if err != nil {
			return false, err
		}
		return a.DistanceKm(b) <= c.Km, nil
	case "bindNearestSelling":
		near, err := coordOf(c.Near, e, ctx)
		if err != nil {
			return false, err
		}
		km := c.Km
		if km == 0 {
			km = 1.0
		}
		p := ctx.gis.NearestSelling(near, c.Item, km)
		if p == nil {
			return false, nil
		}
		e.setVar(c.Var, event.S(p.Name))
		return true, nil
	case "openFor":
		p, err := placeOf(c.Var, e, ctx)
		if err != nil {
			return false, err
		}
		need := time.Duration(c.MinMinutes * float64(time.Minute))
		return p.OpenAt(ctx.now) && p.OpenFor(ctx.now) >= need, nil
	case "reachable":
		p, err := placeOf(c.Var, e, ctx)
		if err != nil {
			return false, err
		}
		from, err := coordOf(c.A, e, ctx)
		if err != nil {
			return false, err
		}
		speed := c.SpeedKmH
		if speed == 0 {
			speed = 5
		}
		walk := time.Duration(from.DistanceKm(p.At()) / speed * float64(time.Hour))
		return p.OpenAt(ctx.now) && p.OpenFor(ctx.now) > walk, nil
	default:
		return false, fmt.Errorf("match: unknown condition type %q", c.Type)
	}
}

// placeOf resolves a place from a $var holding its name.
func placeOf(term string, e *env, ctx *evalCtx) (*knowledge.Place, error) {
	nameVal, err := resolveTerm(term, e, ctx)
	if err != nil {
		return nil, err
	}
	p, ok := ctx.gis.Place(nameVal.String())
	if !ok {
		return nil, fmt.Errorf("match: unknown place %q", nameVal.String())
	}
	return p, nil
}

// resolveString resolves a term and renders it as a string ("" stays "").
func resolveString(term string, e *env, ctx *evalCtx) (string, error) {
	if term == "" {
		return "", nil
	}
	v, err := resolveTerm(term, e, ctx)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}
