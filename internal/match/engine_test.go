package match

import (
	"strings"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/vclock"
)

// --- fixtures: the paper's §1.1 ice-cream scenario --------------------------

// scenarioTime is 16:45 on day 21 (within Bob's holiday, day 20–27).
const scenarioTime = 21*24*time.Hour + 16*time.Hour + 45*time.Minute

func scenarioKB() *knowledge.KB {
	kb := knowledge.NewKB()
	kb.AddSPO("bob", "likes", "ice cream")
	kb.AddSPO("bob", "nationality", "scottish")
	// Scottish users regard 20° as hot (§1.1's inference, materialised as
	// a derived fact when the profile is loaded).
	kb.AddSPO("bob", "hot-threshold", "20")
	kb.AddSPO("bob", "knows", "anna")
	kb.Add(knowledge.Fact{S: "bob", P: "has-spare-time", O: "true",
		From: 20 * 24 * time.Hour, To: 27 * 24 * time.Hour})
	return kb
}

func scenarioGIS() *knowledge.GIS {
	g := knowledge.NewGIS()
	// Janetta's in Market Street, open 9:00–17:00, sells ice cream.
	_ = g.AddPlace(knowledge.Place{
		Name: "janettas", Region: "st-andrews", X: 10.30, Y: 4.00,
		Hours: knowledge.Span{Open: 9 * time.Hour, Close: 17 * time.Hour},
		Sells: []string{"ice cream"},
	})
	return g
}

// iceCreamRule is the paper's example correlation as a declarative rule.
func iceCreamRule() *Rule {
	return &Rule{
		Name:     "ice-cream-meetup",
		WindowMs: int64(30 * time.Minute / time.Millisecond),
		Patterns: []Pattern{
			{
				Alias:  "loc",
				Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location")),
				Bind:   []Binding{{Attr: "user", Var: "U"}},
			},
			{
				Alias:  "floc",
				Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location")),
				Bind:   []Binding{{Attr: "user", Var: "F"}},
			},
			{
				Alias:  "w",
				Filter: pubsub.NewFilter(pubsub.TypeIs("weather.report")),
			},
		},
		Where: []Condition{
			{Type: "cmp", Left: "$U", Op: "ne", Right: "$F"},
			{Type: "kb", S: "$U", P: "likes", O: "ice cream"},
			{Type: "kb", S: "$U", P: "knows", O: "$F"},
			{Type: "kb", S: "$U", P: "has-spare-time", O: "true"},
			{Type: "cmp", Left: "$w.tempC", Op: "ge", Right: "kb:$U:hot-threshold:25"},
			{Type: "withinKm", A: "$loc", B: "$floc", Km: 2},
			{Type: "bindNearestSelling", Item: "ice cream", Near: "$loc", Km: 1.5, Var: "P"},
			{Type: "reachable", A: "$loc", Var: "$P", SpeedKmH: 5},
		},
		Emit: Emit{
			Type: "suggestion.meet",
			Attrs: []EmitAttr{
				{Name: "user", From: "$U"},
				{Name: "friend", From: "$F"},
				{Name: "place", From: "$P"},
				{Name: "x", From: "place:$P.x"},
				{Name: "y", From: "place:$P.y"},
				{Name: "reason", From: "ice cream"},
			},
		},
	}
}

func locEv(user string, x, y float64, at time.Duration, seq uint64) *event.Event {
	return event.New("gps.location", "gps-"+user, at).
		Set("user", event.S(user)).
		Set("x", event.F(x)).
		Set("y", event.F(y)).
		Stamp(seq)
}

func weatherEv(region string, temp float64, at time.Duration, seq uint64) *event.Event {
	return event.New("weather.report", "thermo-"+region, at).
		Set("region", event.S(region)).
		Set("tempC", event.F(temp)).
		Stamp(seq)
}

// scenarioEngine builds an engine at the scenario time with the rule loaded.
func scenarioEngine(t *testing.T) (*Engine, *vclock.Scheduler, *[]*event.Event) {
	t.Helper()
	sched := vclock.NewScheduler()
	sched.RunUntil(scenarioTime)
	eng := NewEngine(sched, scenarioKB(), scenarioGIS(), Options{})
	if err := eng.AddRule(iceCreamRule()); err != nil {
		t.Fatal(err)
	}
	var out []*event.Event
	eng.OnEmit(func(ev *event.Event) { out = append(out, ev) })
	return eng, sched, &out
}

// feedScenario injects the happy-path events: Bob in North Street, Anna
// nearby, 20° in the region.
func feedScenario(eng *Engine) {
	eng.Put(weatherEv("st-andrews", 20, scenarioTime-5*time.Minute, 1))
	eng.Put(locEv("anna", 10.25, 3.95, scenarioTime-2*time.Minute, 2))
	eng.Put(locEv("bob", 10.20, 4.05, scenarioTime, 3))
}

func TestIceCreamScenarioEmitsSuggestion(t *testing.T) {
	eng, _, out := scenarioEngine(t)
	feedScenario(eng)
	// Two directed suggestions are possible (bob→anna requires anna's
	// profile too; anna has none, so only bob→anna's correlation from
	// bob's perspective fires).
	if len(*out) != 1 {
		t.Fatalf("suggestions = %d, want 1", len(*out))
	}
	s := (*out)[0]
	if s.Type != "suggestion.meet" {
		t.Fatalf("type = %s", s.Type)
	}
	if s.GetString("user") != "bob" || s.GetString("friend") != "anna" {
		t.Fatalf("participants: %+v", s.Attrs)
	}
	if s.GetString("place") != "janettas" {
		t.Fatalf("place = %q", s.GetString("place"))
	}
	if s.GetNum("x") != 10.30 {
		t.Fatalf("place coords not resolved: %+v", s.Attrs)
	}
	st := eng.Stats()
	if st.EventsIn != 3 || st.Emitted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestScenarioNegatives(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Engine, *vclock.Scheduler)
	}{
		{"cold weather", func(eng *Engine, _ *vclock.Scheduler) {
			eng.Put(weatherEv("st-andrews", 12, scenarioTime-5*time.Minute, 1))
			eng.Put(locEv("anna", 10.25, 3.95, scenarioTime-2*time.Minute, 2))
			eng.Put(locEv("bob", 10.20, 4.05, scenarioTime, 3))
		}},
		{"friend too far", func(eng *Engine, _ *vclock.Scheduler) {
			eng.Put(weatherEv("st-andrews", 20, scenarioTime-5*time.Minute, 1))
			eng.Put(locEv("anna", 40, 40, scenarioTime-2*time.Minute, 2))
			eng.Put(locEv("bob", 10.20, 4.05, scenarioTime, 3))
		}},
		{"no social link", func(eng *Engine, _ *vclock.Scheduler) {
			eng.KB().Remove("bob", "knows", "anna")
			feedScenario(eng)
		}},
		{"no spare time (holiday over)", func(eng *Engine, sched *vclock.Scheduler) {
			// Day 28, same hour: holiday fact expired.
			sched.RunUntil(28*24*time.Hour + 16*time.Hour + 45*time.Minute)
			now := sched.Now()
			eng.Put(weatherEv("st-andrews", 20, now-5*time.Minute, 1))
			eng.Put(locEv("anna", 10.25, 3.95, now-2*time.Minute, 2))
			eng.Put(locEv("bob", 10.20, 4.05, now, 3))
		}},
		{"shop closed (evening)", func(eng *Engine, sched *vclock.Scheduler) {
			late := 21*24*time.Hour + 18*time.Hour
			sched.RunUntil(late)
			eng.Put(weatherEv("st-andrews", 20, late-5*time.Minute, 1))
			eng.Put(locEv("anna", 10.25, 3.95, late-2*time.Minute, 2))
			eng.Put(locEv("bob", 10.20, 4.05, late, 3))
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			eng, sched, out := scenarioEngine(t)
			tt.mutate(eng, sched)
			if len(*out) != 0 {
				t.Fatalf("unexpected suggestion: %+v", (*out)[0].Attrs)
			}
		})
	}
}

func TestDuplicateSuppression(t *testing.T) {
	eng, _, out := scenarioEngine(t)
	feedScenario(eng)
	// Re-inject bob's location (same event ID): must not re-emit.
	eng.Put(locEv("bob", 10.20, 4.05, scenarioTime, 3))
	if len(*out) != 1 {
		t.Fatalf("suggestions = %d, want 1 (dedup)", len(*out))
	}
	if eng.Stats().Duplicates == 0 {
		t.Fatalf("duplicate not counted")
	}
	// A *new* location event forms a new tuple, but the synthesised
	// suggestion is semantically identical → output suppression holds it
	// within the window.
	eng.Put(locEv("bob", 10.21, 4.04, scenarioTime+time.Minute, 4))
	if len(*out) != 1 {
		t.Fatalf("semantically identical output not suppressed: %d", len(*out))
	}
	if eng.Stats().Suppressed == 0 {
		t.Fatalf("suppression not counted")
	}
}

func TestSuppressionDisabled(t *testing.T) {
	sched := vclock.NewScheduler()
	sched.RunUntil(scenarioTime)
	eng := NewEngine(sched, scenarioKB(), scenarioGIS(), Options{})
	rule := iceCreamRule()
	rule.SuppressMs = -1 // every distinct tuple re-fires
	if err := eng.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	var out []*event.Event
	eng.OnEmit(func(ev *event.Event) { out = append(out, ev) })
	feedScenario(eng)
	eng.Put(locEv("bob", 10.21, 4.04, scenarioTime+time.Minute, 4))
	if len(out) != 2 {
		t.Fatalf("with suppression off, fresh tuple should re-fire: %d", len(out))
	}
}

func TestSuppressionExpires(t *testing.T) {
	sched := vclock.NewScheduler()
	sched.RunUntil(scenarioTime)
	eng := NewEngine(sched, scenarioKB(), scenarioGIS(), Options{})
	rule := iceCreamRule()
	rule.SuppressMs = int64(2 * time.Minute / time.Millisecond)
	if err := eng.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	count := 0
	eng.OnEmit(func(*event.Event) { count++ })
	feedScenario(eng)
	if count != 1 {
		t.Fatalf("initial emit count = %d", count)
	}
	// Within the suppression window: quiet.
	eng.Put(locEv("bob", 10.21, 4.04, scenarioTime+time.Minute, 10))
	if count != 1 {
		t.Fatalf("suppression failed: %d", count)
	}
	// After expiry (within the 30m correlation window): re-fires.
	sched.RunUntil(scenarioTime + 5*time.Minute)
	eng.Put(locEv("bob", 10.22, 4.03, sched.Now(), 11))
	if count != 2 {
		t.Fatalf("expired suppression did not re-fire: %d", count)
	}
}

func TestWindowExpiry(t *testing.T) {
	eng, sched, out := scenarioEngine(t)
	// Anna seen long ago; bob arrives after the 30m window: stale.
	eng.Put(weatherEv("st-andrews", 20, scenarioTime, 1))
	eng.Put(locEv("anna", 10.25, 3.95, scenarioTime, 2))
	sched.RunUntil(scenarioTime + 45*time.Minute)
	// Re-supply fresh weather (it also expired), but not anna.
	eng.Put(weatherEv("st-andrews", 20, sched.Now(), 3))
	eng.Put(locEv("bob", 10.20, 4.05, sched.Now(), 4))
	if len(*out) != 0 {
		t.Fatalf("stale event joined: %+v", (*out)[0].Attrs)
	}
	if eng.Stats().Expired == 0 {
		t.Fatalf("expiry not counted")
	}
}

func TestUnknownTypeHookFiresOnce(t *testing.T) {
	eng, _, _ := scenarioEngine(t)
	var unknown []string
	eng.SetUnknownHandler(func(typ string) { unknown = append(unknown, typ) })
	eng.Put(event.New("alien.reading", "s", scenarioTime).Stamp(1))
	eng.Put(event.New("alien.reading", "s", scenarioTime).Stamp(2))
	eng.Put(event.New("other.unknown", "s", scenarioTime).Stamp(3))
	if len(unknown) != 2 || unknown[0] != "alien.reading" || unknown[1] != "other.unknown" {
		t.Fatalf("unknown hook calls: %v", unknown)
	}
	eng.ForgetUnknown("alien.reading")
	eng.Put(event.New("alien.reading", "s", scenarioTime).Stamp(4))
	if len(unknown) != 3 {
		t.Fatalf("ForgetUnknown did not re-arm the hook")
	}
}

func TestRuleXMLRoundTrip(t *testing.T) {
	r := iceCreamRule()
	data, err := MarshalRule(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "bindNearestSelling") {
		t.Fatalf("serialisation lost conditions: %s", data)
	}
	got, err := UnmarshalRule(data)
	if err != nil {
		t.Fatal(err)
	}
	// The round-tripped rule must behave identically.
	sched := vclock.NewScheduler()
	sched.RunUntil(scenarioTime)
	eng := NewEngine(sched, scenarioKB(), scenarioGIS(), Options{})
	if err := eng.AddRule(got); err != nil {
		t.Fatal(err)
	}
	fired := 0
	eng.OnEmit(func(*event.Event) { fired++ })
	feedScenario(eng)
	if fired != 1 {
		t.Fatalf("round-tripped rule fired %d times, want 1", fired)
	}
}

func TestAddRuleValidation(t *testing.T) {
	eng, _, _ := scenarioEngine(t)
	if err := eng.AddRule(&Rule{Name: ""}); err == nil {
		t.Errorf("empty name accepted")
	}
	if err := eng.AddRule(iceCreamRule()); err == nil {
		t.Errorf("duplicate rule accepted")
	}
	if err := eng.AddRule(&Rule{Name: "x", Patterns: []Pattern{{}}, Emit: Emit{}}); err == nil {
		t.Errorf("missing emit type accepted")
	}
	if err := eng.AddRule(&Rule{Name: "y", Emit: Emit{Type: "t"}}); err == nil {
		t.Errorf("missing patterns accepted")
	}
}

func TestRemoveRuleStopsMatching(t *testing.T) {
	eng, _, out := scenarioEngine(t)
	eng.RemoveRule("ice-cream-meetup")
	feedScenario(eng)
	if len(*out) != 0 {
		t.Fatalf("removed rule still fired")
	}
	if len(eng.Rules()) != 0 {
		t.Fatalf("rule list not empty")
	}
}

func TestDistillationRatio(t *testing.T) {
	eng, _, out := scenarioEngine(t)
	// A storm of irrelevant low-level events around one meaningful
	// correlation: the engine distils thousands to one.
	for i := 0; i < 500; i++ {
		eng.Put(weatherEv("elsewhere", 5, scenarioTime-time.Minute, uint64(1000+i)))
		eng.Put(locEv("stranger", 500, 500, scenarioTime-time.Minute, uint64(3000+i)))
	}
	feedScenario(eng)
	st := eng.Stats()
	if len(*out) != 1 {
		t.Fatalf("meaningful events = %d, want 1", len(*out))
	}
	ratio := float64(st.EventsIn) / float64(st.Emitted)
	if ratio < 1000 {
		t.Fatalf("distillation ratio %.0f too low", ratio)
	}
}

func TestCmpAliasAttributeAgainstLiteral(t *testing.T) {
	sched := vclock.NewScheduler()
	eng := NewEngine(sched, knowledge.NewKB(), knowledge.NewGIS(), Options{})
	err := eng.AddRule(&Rule{
		Name: "hot",
		Patterns: []Pattern{{
			Alias:  "w",
			Filter: pubsub.NewFilter(pubsub.TypeIs("weather.report")),
		}},
		Where: []Condition{{Type: "cmp", Left: "$w.tempC", Op: "gt", Right: "30"}},
		Emit:  Emit{Type: "alert.heat", Attrs: []EmitAttr{{Name: "t", From: "$w.tempC"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	eng.OnEmit(func(*event.Event) { count++ })
	eng.Put(weatherEv("oz", 35, 0, 1))
	eng.Put(weatherEv("oz", 25, 0, 2))
	if count != 1 {
		t.Fatalf("emitted %d, want 1", count)
	}
}
