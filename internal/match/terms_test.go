package match

import (
	"strings"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/vclock"
)

// termCtx builds a minimal evaluation context.
func termCtx() (*env, *evalCtx) {
	kb := knowledge.NewKB()
	kb.AddSPO("bob", "likes", "ice cream")
	kb.AddSPO("bob", "age", "34")
	gis := knowledge.NewGIS()
	_ = gis.AddPlace(knowledge.Place{Name: "cafe", Region: "eu", X: 1.5, Y: 2.5})
	e := newEnv()
	e.setVar("U", event.S("bob"))
	e.setVar("P", event.S("cafe"))
	ev := event.New("gps.location", "gps", 9*time.Hour).
		Set("user", event.S("bob")).Set("x", event.F(1.0)).Set("y", event.F(2.0))
	e.setEvent("loc", ev)
	return e, &evalCtx{kb: kb, gis: gis, now: 9 * time.Hour}
}

func TestResolveTermForms(t *testing.T) {
	e, ctx := termCtx()
	tests := []struct {
		term string
		want string
	}{
		{"$U", "bob"},
		{"$loc.user", "bob"},
		{"$loc.type", "gps.location"}, // implicit attribute
		{"place:$P.name", "cafe"},
		{"place:$P.x", "1.5"},
		{"place:$P.region", "eu"},
		{"kb:$U:likes", "ice cream"},
		{"kb:$U:age", "34"},
		{"kb:$U:shoe-size:11", "11"}, // default applies
		{"plain literal", "plain literal"},
		{"42.5", "42.5"},
	}
	for _, tt := range tests {
		v, err := resolveTerm(tt.term, e, ctx)
		if err != nil {
			t.Errorf("resolveTerm(%q): %v", tt.term, err)
			continue
		}
		if v.String() != tt.want {
			t.Errorf("resolveTerm(%q) = %q, want %q", tt.term, v.String(), tt.want)
		}
	}
	// Numeric literals resolve as numbers.
	if v, _ := resolveTerm("42.5", e, ctx); v.K != event.KindFloat {
		t.Errorf("numeric literal kind = %v", v.K)
	}
}

func TestResolveTermErrors(t *testing.T) {
	e, ctx := termCtx()
	for _, term := range []string{
		"$missing",          // unbound variable
		"$ghost.attr",       // unbound alias
		"$loc.no-such-attr", // missing attribute
		"place:$U.x",        // "bob" is not a place
		"place:$P",          // no field
		"place:$P.altitude", // unknown field
		"kb:$U:absent",      // no fact, no default
		"kb:only-subject",   // malformed kb term
	} {
		if _, err := resolveTerm(term, e, ctx); err == nil {
			t.Errorf("resolveTerm(%q): want error", term)
		}
	}
}

func TestCoordOfForms(t *testing.T) {
	e, ctx := termCtx()
	c, err := coordOf("$loc", e, ctx)
	if err != nil || c.X != 1.0 || c.Y != 2.0 {
		t.Fatalf("coordOf($loc) = %v, %v", c, err)
	}
	c, err = coordOf("place:$P", e, ctx)
	if err != nil || c.X != 1.5 {
		t.Fatalf("coordOf(place:$P) = %v, %v", c, err)
	}
	for _, term := range []string{"$nope", "place:$U", "literal"} {
		if _, err := coordOf(term, e, ctx); err == nil {
			t.Errorf("coordOf(%q): want error", term)
		}
	}
}

func TestUnknownConditionTypeErrors(t *testing.T) {
	e, ctx := termCtx()
	c := &Condition{Type: "teleport"}
	if _, err := evalCondition(c, e, ctx); err == nil || !strings.Contains(err.Error(), "unknown condition") {
		t.Fatalf("err = %v", err)
	}
	bad := &Condition{Type: "cmp", Left: "$U", Op: "spaceship", Right: "$U"}
	if _, err := evalCondition(bad, e, ctx); err == nil {
		t.Fatalf("bad cmp op accepted")
	}
}

func TestConditionErrorsCountedByEngine(t *testing.T) {
	kb := knowledge.NewKB()
	gis := knowledge.NewGIS()
	sched := newTestClock()
	eng := NewEngine(sched, kb, gis, Options{})
	err := eng.AddRule(&Rule{
		Name: "broken",
		Patterns: []Pattern{{
			Alias:  "e",
			Filter: filterForType("x.y"),
		}},
		// References an alias that is never bound.
		Where: []Condition{{Type: "cmp", Left: "$ghost.attr", Op: "eq", Right: "1"}},
		Emit:  Emit{Type: "never"},
	})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	eng.OnEmit(func(*event.Event) { emitted++ })
	eng.Put(event.New("x.y", "s", 0).Stamp(1))
	if emitted != 0 {
		t.Fatal("broken rule emitted")
	}
	if eng.Stats().Errors == 0 {
		t.Fatal("condition error not counted")
	}
}

// --- test helpers ---------------------------------------------------------

// newTestClock returns a scheduler positioned at time zero.
func newTestClock() *vclock.Scheduler { return vclock.NewScheduler() }

// filterForType builds a type-equality filter.
func filterForType(t string) pubsub.Filter {
	return pubsub.NewFilter(pubsub.TypeIs(t))
}
