package match

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/vclock"
)

// Options configure an engine.
type Options struct {
	// MaxBuffer bounds the per-pattern event buffer. Default 64.
	MaxBuffer int
	// MaxEmittedMemory bounds the duplicate-suppression window. Default 4096.
	MaxEmittedMemory int
	// Source stamps synthesised events. Default "matching-engine".
	Source string
}

func (o *Options) applyDefaults() {
	if o.MaxBuffer == 0 {
		o.MaxBuffer = 64
	}
	if o.MaxEmittedMemory == 0 {
		o.MaxEmittedMemory = 4096
	}
	if o.Source == "" {
		o.Source = "matching-engine"
	}
}

// Stats counts engine activity; the In/Out ratio is the paper's
// distillation measure.
type Stats struct {
	EventsIn   uint64
	Buffered   uint64
	Joins      uint64 // complete candidate tuples examined
	CondFails  uint64
	Emitted    uint64
	Duplicates uint64 // exact tuple repeats
	Suppressed uint64 // semantically identical outputs within the window
	Expired    uint64
	Errors     uint64
	Rules      int
}

// compiledRule is a rule with its runtime correlation state.
type compiledRule struct {
	rule     *Rule
	window   time.Duration
	suppress time.Duration
	buffers  [][]*event.Event // one per pattern, newest last
	// emittedUntil maps an output's semantic key to its suppression
	// expiry.
	emittedUntil map[string]time.Duration
}

// Engine correlates events against rules, the knowledge base and GIS.
type Engine struct {
	clock     vclock.Clock
	kb        *knowledge.KB
	gis       *knowledge.GIS
	opts      Options
	rules     map[string]*compiledRule
	ruleOrder []string
	onEmit    []func(*event.Event)
	onUnknown func(eventType string)
	unknowns  map[string]bool
	emitted   map[string]bool
	emitFIFO  []string
	emitSeq   uint64
	stats     Stats
}

// NewEngine builds an engine over a local KB and GIS view.
func NewEngine(clock vclock.Clock, kb *knowledge.KB, gis *knowledge.GIS, opts Options) *Engine {
	opts.applyDefaults()
	return &Engine{
		clock:    clock,
		kb:       kb,
		gis:      gis,
		opts:     opts,
		rules:    make(map[string]*compiledRule),
		unknowns: make(map[string]bool),
		emitted:  make(map[string]bool),
	}
}

// KB exposes the engine's knowledge base (for host-side fact loading).
func (e *Engine) KB() *knowledge.KB { return e.kb }

// GIS exposes the engine's GIS layer.
func (e *Engine) GIS() *knowledge.GIS { return e.gis }

// Stats returns a snapshot of counters. Must run on the engine's
// owning goroutine: rules and counters are mutated only by delivery
// callbacks on that same loop.
//
//vetactive:ignore atomicstats actor-confined; writers are delivery callbacks on the same loop
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Rules = len(e.rules)
	return s
}

// OnEmit registers a sink for synthesised events.
func (e *Engine) OnEmit(fn func(*event.Event)) { e.onEmit = append(e.onEmit, fn) }

// SetUnknownHandler registers the discovery hook invoked once per event
// type no rule covers (§5: routing unknown event types to discovery
// matchlets).
func (e *Engine) SetUnknownHandler(fn func(eventType string)) { e.onUnknown = fn }

// AddRule installs a rule; the name must be unique.
func (e *Engine) AddRule(r *Rule) error {
	if r.Name == "" {
		return fmt.Errorf("match: rule needs a name")
	}
	if _, dup := e.rules[r.Name]; dup {
		return fmt.Errorf("match: duplicate rule %q", r.Name)
	}
	if len(r.Patterns) == 0 {
		return fmt.Errorf("match: rule %q has no patterns", r.Name)
	}
	if r.Emit.Type == "" {
		return fmt.Errorf("match: rule %q emits no event type", r.Name)
	}
	cr := &compiledRule{
		rule:         r,
		window:       r.Window(),
		suppress:     r.Suppression(),
		buffers:      make([][]*event.Event, len(r.Patterns)),
		emittedUntil: make(map[string]time.Duration),
	}
	e.rules[r.Name] = cr
	e.ruleOrder = append(e.ruleOrder, r.Name)
	return nil
}

// RemoveRule uninstalls a rule.
func (e *Engine) RemoveRule(name string) {
	if _, ok := e.rules[name]; !ok {
		return
	}
	delete(e.rules, name)
	for i, n := range e.ruleOrder {
		if n == name {
			e.ruleOrder = append(e.ruleOrder[:i], e.ruleOrder[i+1:]...)
			break
		}
	}
}

// Rules lists installed rule names in insertion order.
func (e *Engine) Rules() []string {
	out := make([]string, len(e.ruleOrder))
	copy(out, e.ruleOrder)
	return out
}

// Covers reports whether any rule pattern accepts the event type (used by
// the discovery path).
func (e *Engine) Covers(ev *event.Event) bool {
	for _, name := range e.ruleOrder {
		for _, p := range e.rules[name].rule.Patterns {
			if p.Filter.Matches(ev) {
				return true
			}
		}
	}
	return false
}

// Put feeds one event into the engine.
func (e *Engine) Put(ev *event.Event) {
	e.stats.EventsIn++
	matched := false
	for _, name := range e.ruleOrder {
		cr := e.rules[name]
		for pi, p := range cr.rule.Patterns {
			if !p.Filter.Matches(ev) {
				continue
			}
			matched = true
			e.insert(cr, pi, ev)
			e.tryJoin(cr, pi, ev)
		}
	}
	if !matched && e.onUnknown != nil && !e.unknowns[ev.Type] {
		e.unknowns[ev.Type] = true
		e.onUnknown(ev.Type)
	}
}

// ForgetUnknown clears the once-only latch for an event type so a later
// occurrence triggers discovery again (e.g. after an install failure).
func (e *Engine) ForgetUnknown(eventType string) { delete(e.unknowns, eventType) }

// insert adds ev to the pattern buffer, expiring old entries.
func (e *Engine) insert(cr *compiledRule, pi int, ev *event.Event) {
	e.stats.Buffered++
	buf := cr.buffers[pi]
	cutoff := e.clock.Now() - cr.window
	kept := buf[:0]
	for _, old := range buf {
		if old.Time >= cutoff {
			kept = append(kept, old)
		} else {
			e.stats.Expired++
		}
	}
	kept = append(kept, ev)
	if len(kept) > e.opts.MaxBuffer {
		kept = kept[len(kept)-e.opts.MaxBuffer:]
	}
	cr.buffers[pi] = kept
}

// tryJoin attempts all complete correlations that include ev at pattern pi.
// The search backtracks over a single mutable environment: binding undo is
// truncation of the env's slices, so the join allocates nothing per
// candidate tuple.
func (e *Engine) tryJoin(cr *compiledRule, pi int, ev *event.Event) {
	base := newEnv()
	if !bindPattern(&cr.rule.Patterns[pi], ev, base) {
		return
	}
	e.joinRest(cr, pi, 0, base)
}

// joinRest recursively extends env with one event per remaining pattern.
func (e *Engine) joinRest(cr *compiledRule, fixed int, next int, cur *env) {
	if next == len(cr.rule.Patterns) {
		e.complete(cr, cur)
		return
	}
	if next == fixed {
		e.joinRest(cr, fixed, next+1, cur)
		return
	}
	cutoff := e.clock.Now() - cr.window
	buf := cr.buffers[next]
	p := &cr.rule.Patterns[next]
	nv, na := len(cur.varNames), len(cur.aliases)
	// Newest first: prefer fresh context.
	for i := len(buf) - 1; i >= 0; i-- {
		cand := buf[i]
		if cand.Time < cutoff {
			break
		}
		if !bindPattern(p, cand, cur) {
			cur.truncate(nv, na)
			continue
		}
		e.joinRest(cr, fixed, next+1, cur)
		cur.truncate(nv, na)
	}
}

// bindPattern unifies ev's bound attributes into env; reports success.
// On failure the caller must truncate the env back to its prior lengths.
func bindPattern(p *Pattern, ev *event.Event, e *env) bool {
	if p.Alias != "" {
		if prev, taken := e.eventFor(p.Alias); taken {
			if prev.ID != ev.ID {
				return false
			}
		} else {
			e.setEvent(p.Alias, ev)
		}
	}
	for _, b := range p.Bind {
		v, ok := ev.Get(b.Attr)
		if !ok {
			return false
		}
		if prev, bound := e.varValue(b.Var); bound {
			if !prev.Equal(v) {
				return false
			}
			continue
		}
		e.setVar(b.Var, v)
	}
	return true
}

// complete evaluates conditions for a full tuple and emits on success.
// Conditions run before the (allocating) dedup-key construction: failing
// tuples — the vast majority under event storms — stay allocation-free.
func (e *Engine) complete(cr *compiledRule, env_ *env) {
	e.stats.Joins++
	ctx := &evalCtx{kb: e.kb, gis: e.gis, now: e.clock.Now()}
	// Binder conditions may extend the env; truncate on any exit so the
	// backtracking join sees it unchanged.
	nv, na := len(env_.varNames), len(env_.aliases)
	work := env_
	defer work.truncate(nv, na)
	for i := range cr.rule.Where {
		ok, err := evalCondition(&cr.rule.Where[i], work, ctx)
		if err != nil {
			e.stats.Errors++
			return
		}
		if !ok {
			e.stats.CondFails++
			return
		}
	}
	key := emitKey(cr.rule.Name, env_)
	if e.emitted[key] {
		e.stats.Duplicates++
		return
	}
	e.remember(key)
	out, err := e.synthesise(cr.rule, work, ctx)
	if err != nil {
		e.stats.Errors++
		return
	}
	// Semantic output suppression: a fresh tuple producing the same
	// meaningful event within the suppression window stays quiet.
	if cr.suppress > 0 {
		sk := suppressKey(cr.rule, out)
		if until, seen := cr.emittedUntil[sk]; seen && ctx.now < until {
			e.stats.Suppressed++
			return
		}
		cr.emittedUntil[sk] = ctx.now + cr.suppress
		// Opportunistic expiry sweep keeps the map bounded.
		if len(cr.emittedUntil) > 1024 {
			for k, until := range cr.emittedUntil {
				if ctx.now >= until {
					delete(cr.emittedUntil, k)
				}
			}
		}
	}
	e.stats.Emitted++
	for _, fn := range e.onEmit {
		fn(out)
	}
}

// suppressKey renders an output's semantic identity: type plus all
// non-volatile emitted attributes.
func suppressKey(r *Rule, out *event.Event) string {
	parts := make([]string, 0, len(r.Emit.Attrs)+1)
	parts = append(parts, out.Type)
	for _, ea := range r.Emit.Attrs {
		if ea.Volatile {
			continue
		}
		if v, ok := out.Attrs[ea.Name]; ok {
			parts = append(parts, ea.Name+"="+v.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// emitKey identifies a correlation by rule and contributing event IDs.
func emitKey(rule string, env_ *env) string {
	parts := make([]string, 0, len(env_.aliases)+1)
	parts = append(parts, rule)
	for i, alias := range env_.aliases {
		parts = append(parts, alias+"="+env_.aliasEvs[i].ID.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

func (e *Engine) remember(key string) {
	e.emitted[key] = true
	e.emitFIFO = append(e.emitFIFO, key)
	if len(e.emitFIFO) > e.opts.MaxEmittedMemory {
		delete(e.emitted, e.emitFIFO[0])
		e.emitFIFO = e.emitFIFO[1:]
	}
}

// synthesise builds the output event from the emit spec.
func (e *Engine) synthesise(r *Rule, env_ *env, ctx *evalCtx) (*event.Event, error) {
	e.emitSeq++
	out := event.New(r.Emit.Type, e.opts.Source+"/"+r.Name, ctx.now)
	for _, ea := range r.Emit.Attrs {
		v, err := resolveTerm(ea.From, env_, ctx)
		if err != nil {
			return nil, err
		}
		out.Set(ea.Name, v)
	}
	out.Stamp(e.emitSeq)
	return out, nil
}
