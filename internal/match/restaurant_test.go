package match

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/vclock"
)

// The paper's second §1.1 scenario: Bob in Australia walks past a
// restaurant previously recommended by Anna; her opinion should be
// delivered "if it is dinner time and he has no plans for dinner".
// Exercises kbBind, nokb and openFor conditions.

func restaurantRule() *Rule {
	return &Rule{
		Name:     "recommended-restaurant",
		WindowMs: int64(10 * time.Minute / time.Millisecond),
		Patterns: []Pattern{{
			Alias:  "loc",
			Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location")),
			Bind:   []Binding{{Attr: "user", Var: "U"}},
		}},
		Where: []Condition{
			{Type: "bindNearestSelling", Item: "dinner", Near: "$loc", Km: 0.3, Var: "P"},
			{Type: "kbBind", S: "$P", P: "recommended-by", Var: "R"},
			{Type: "kb", S: "$U", P: "knows", O: "$R"},
			{Type: "nokb", S: "$U", P: "has-dinner-plans", O: "true"},
			{Type: "openFor", Var: "$P", MinMinutes: 60},
		},
		Emit: Emit{
			Type: "suggestion.dine",
			Attrs: []EmitAttr{
				{Name: "user", From: "$U"},
				{Name: "place", From: "$P"},
				{Name: "recommendedBy", From: "$R"},
				{Name: "opinion", From: "kb:$P:opinion:worth a visit"},
			},
		},
	}
}

func restaurantWorld() (*Engine, *vclock.Scheduler, *[]*event.Event) {
	sched := vclock.NewScheduler()
	sched.RunUntil(19 * time.Hour) // dinner time
	kb := knowledge.NewKB()
	kb.AddSPO("bob", "knows", "anna")
	kb.AddSPO("harbour-grill", "recommended-by", "anna")
	kb.AddSPO("harbour-grill", "opinion", "best barramundi in Sydney")
	gis := knowledge.NewGIS()
	_ = gis.AddPlace(knowledge.Place{
		Name: "harbour-grill", Region: "ap", X: 15010, Y: -1990,
		Hours: knowledge.Span{Open: 8 * time.Hour, Close: 23 * time.Hour},
		Sells: []string{"dinner"},
	})
	eng := NewEngine(sched, kb, gis, Options{})
	if err := eng.AddRule(restaurantRule()); err != nil {
		panic(err)
	}
	var out []*event.Event
	eng.OnEmit(func(ev *event.Event) { out = append(out, ev) })
	return eng, sched, &out
}

func bobAt(x, y float64, at time.Duration, seq uint64) *event.Event {
	return event.New("gps.location", "gps-bob", at).
		Set("user", event.S("bob")).
		Set("x", event.F(x)).Set("y", event.F(y)).
		Stamp(seq)
}

func TestRestaurantRecommendationDelivered(t *testing.T) {
	eng, sched, out := restaurantWorld()
	eng.Put(bobAt(15010.1, -1990.05, sched.Now(), 1))
	if len(*out) != 1 {
		t.Fatalf("suggestions = %d, want 1", len(*out))
	}
	s := (*out)[0]
	if s.GetString("place") != "harbour-grill" || s.GetString("recommendedBy") != "anna" {
		t.Fatalf("content: %+v", s.Attrs)
	}
	if s.GetString("opinion") != "best barramundi in Sydney" {
		t.Fatalf("opinion lookup: %q", s.GetString("opinion"))
	}
}

func TestRestaurantNegatives(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Engine, *vclock.Scheduler)
	}{
		{"too far from the restaurant", func(eng *Engine, s *vclock.Scheduler) {
			eng.Put(bobAt(15015, -1990, s.Now(), 1))
		}},
		{"has dinner plans", func(eng *Engine, s *vclock.Scheduler) {
			eng.KB().AddSPO("bob", "has-dinner-plans", "true")
			eng.Put(bobAt(15010.1, -1990.05, s.Now(), 1))
		}},
		{"recommended by a stranger", func(eng *Engine, s *vclock.Scheduler) {
			eng.KB().Remove("harbour-grill", "recommended-by", "anna")
			eng.KB().AddSPO("harbour-grill", "recommended-by", "carlos")
			eng.Put(bobAt(15010.1, -1990.05, s.Now(), 1))
		}},
		{"no recommendation at all", func(eng *Engine, s *vclock.Scheduler) {
			eng.KB().Remove("harbour-grill", "recommended-by", "anna")
			eng.Put(bobAt(15010.1, -1990.05, s.Now(), 1))
		}},
		{"closing within the hour", func(eng *Engine, s *vclock.Scheduler) {
			s.RunUntil(22*time.Hour + 30*time.Minute) // closes at 23:00
			eng.Put(bobAt(15010.1, -1990.05, s.Now(), 1))
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			eng, sched, out := restaurantWorld()
			tt.mutate(eng, sched)
			if len(*out) != 0 {
				t.Fatalf("unexpected suggestion: %+v", (*out)[0].Attrs)
			}
		})
	}
}

func TestKBDefaultTermUsed(t *testing.T) {
	eng, sched, out := restaurantWorld()
	// Remove the opinion fact: the emit term's default applies.
	eng.KB().Remove("harbour-grill", "opinion", "best barramundi in Sydney")
	eng.Put(bobAt(15010.1, -1990.05, sched.Now(), 1))
	if len(*out) != 1 {
		t.Fatalf("suggestions = %d", len(*out))
	}
	if got := (*out)[0].GetString("opinion"); got != "worth a visit" {
		t.Fatalf("default opinion = %q", got)
	}
}
