package event

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/wire"
)

// Compact binary wire form of events and values, used by the binary fast
// path codec (wire.BinaryCodec). The XML form in event.go remains the
// open interop format; this one exists so hot interior links do not pay
// reflection and text formatting per message. Both forms must decode to
// identical events — internal/wire's differential test enforces that.

// AppendWire appends the event's binary form: raw ID, type, source,
// varint time, body, then the attributes in sorted name order (the same
// deterministic order the XML marshaller uses).
func (e *Event) AppendWire(b []byte) []byte {
	b = wire.AppendID(b, e.ID)
	b = wire.AppendString(b, e.Type)
	b = wire.AppendString(b, e.Source)
	b = wire.AppendVarint(b, int64(e.Time))
	b = wire.AppendString(b, e.Body)
	names := e.Attrs.Names()
	b = wire.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = wire.AppendString(b, name)
		b = e.Attrs[name].AppendWire(b)
	}
	return b
}

// ParseWire reads the form produced by AppendWire.
func (e *Event) ParseWire(r *wire.BinReader) error {
	e.ID = r.ID()
	e.Type = r.String()
	e.Source = r.String()
	e.Time = time.Duration(r.Varint())
	e.Body = r.String()
	n := r.Count()
	e.Attrs = make(Attributes, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		e.Attrs[name] = ReadValue(r)
	}
	return r.Err()
}

// AppendWirePtr appends an optional event: a presence byte, then the
// event when non-nil. Messages with *Event fields share this so nil
// round-trips as nil (matching the XML form, where the element is
// simply absent).
func AppendWirePtr(b []byte, e *Event) []byte {
	if e == nil {
		return wire.AppendBool(b, false)
	}
	b = wire.AppendBool(b, true)
	return e.AppendWire(b)
}

// ReadPtr reads an optional event written by AppendWirePtr.
func ReadPtr(r *wire.BinReader) *Event {
	if !r.Bool() || r.Err() != nil {
		return nil
	}
	var e Event
	_ = e.ParseWire(r) // sticky error surfaces via r.Err()
	return &e
}

// AppendWire appends the value as a kind byte plus kind-specific payload
// (string, zig-zag varint, float64 bits, or bool byte).
func (v Value) AppendWire(b []byte) []byte {
	b = append(b, byte(v.K))
	switch v.K {
	case KindString:
		b = wire.AppendString(b, v.S)
	case KindInt:
		b = wire.AppendVarint(b, v.I)
	case KindFloat:
		b = wire.AppendFloat64(b, v.F)
	case KindBool:
		b = wire.AppendBool(b, v.B)
	}
	return b
}

// ReadValue reads a value written by Value.AppendWire. An out-of-range
// kind byte poisons the reader.
func ReadValue(r *wire.BinReader) Value {
	k := Kind(r.Uvarint())
	switch k {
	case KindString:
		return Value{K: k, S: r.String()}
	case KindInt:
		return Value{K: k, I: r.Varint()}
	case KindFloat:
		return Value{K: k, F: r.Float64()}
	case KindBool:
		return Value{K: k, B: r.Bool()}
	case KindInvalid:
		return Value{}
	default:
		r.Poison(fmt.Errorf("event: unknown wire value kind %d", int(k)))
		return Value{}
	}
}
