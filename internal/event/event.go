// Package event defines the contextual event model used across the whole
// architecture: sensor readings, resource advertisements, synthesised
// high-level events — everything that flows through pipelines and the
// publish/subscribe network.
//
// An event carries a set of typed named attributes (the view pub/sub
// filters and matchlets operate on) plus an optional XML body island for
// structured payloads bound via type projection (internal/typeproj).
package event

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/gloss/active/internal/ids"
)

// Kind enumerates attribute value kinds.
type Kind int

// Attribute value kinds. Starting at 1 so the zero Value is invalid and
// detectable.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the kind name used in the XML encoding.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

func kindFromString(s string) Kind {
	switch s {
	case "string":
		return KindString
	case "int":
		return KindInt
	case "float":
		return KindFloat
	case "bool":
		return KindBool
	default:
		return KindInvalid
	}
}

// Value is a typed attribute value.
type Value struct {
	K Kind
	S string
	I int64
	F float64
	B bool
}

// S constructs a string value.
func S(s string) Value { return Value{K: KindString, S: s} }

// I constructs an integer value.
func I(i int64) Value { return Value{K: KindInt, I: i} }

// F constructs a float value.
func F(f float64) Value { return Value{K: KindFloat, F: f} }

// B constructs a boolean value.
func B(b bool) Value { return Value{K: KindBool, B: b} }

// String renders the value's payload as text (the XML form).
func (v Value) String() string {
	switch v.K {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.B)
	default:
		return ""
	}
}

// Num returns the value as a float64 and whether it is numeric.
func (v Value) Num() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// Equal reports deep equality, with int/float cross-kind numeric equality.
func (v Value) Equal(o Value) bool {
	if v.K == o.K {
		return v == o
	}
	a, okA := v.Num()
	b, okB := o.Num()
	return okA && okB && a == b
}

// Compare orders two values: -1, 0, +1. The second result is false when
// the values are incomparable (different non-numeric kinds, or bools).
func (v Value) Compare(o Value) (int, bool) {
	if a, ok := v.Num(); ok {
		if b, ok2 := o.Num(); ok2 {
			switch {
			case a < b:
				return -1, true
			case a > b:
				return 1, true
			default:
				return 0, true
			}
		}
		return 0, false
	}
	if v.K == KindString && o.K == KindString {
		switch {
		case v.S < o.S:
			return -1, true
		case v.S > o.S:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.K == KindBool && o.K == KindBool && v.B == o.B {
		return 0, true
	}
	return 0, false
}

func parseValue(kind, text string) (Value, error) {
	switch kindFromString(kind) {
	case KindString:
		return S(text), nil
	case KindInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("event: bad int attribute %q: %w", text, err)
		}
		return I(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("event: bad float attribute %q: %w", text, err)
		}
		return F(f), nil
	case KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return Value{}, fmt.Errorf("event: bad bool attribute %q: %w", text, err)
		}
		return B(b), nil
	default:
		return Value{}, fmt.Errorf("event: unknown attribute kind %q", kind)
	}
}

// Attributes is a named set of typed values.
type Attributes map[string]Value

// Clone returns a copy; mutating the copy does not affect the original.
func (a Attributes) Clone() Attributes {
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Names returns attribute names in sorted order.
func (a Attributes) Names() []string {
	out := make([]string, 0, len(a))
	for k := range a {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Event is one item of contextual information in flight.
//
// Ownership: an event is mutable while its producer assembles it (New,
// Set, Stamp). The moment it enters fan-out — published into the event
// service or handed to subscription handlers — it is frozen and shared:
// one Event value backs every local delivery and every outgoing wire
// message, which is what makes delivery zero-copy. Pipeline stages that
// rewrite attributes must take Mutable() (copy-on-write) or
// CloneDetached() first; mutator methods on a frozen event panic, so a
// misbehaving subscriber cannot corrupt the copies its neighbours see.
type Event struct {
	// ID uniquely identifies the event (for dedup across paths).
	ID ids.ID
	// Type names the event schema, e.g. "gps.location", "weather.report",
	// or a synthesised type like "suggestion.meet".
	Type string
	// Source identifies the producing component or sensor.
	Source string
	// Time is the production timestamp (virtual time since world epoch).
	Time time.Duration
	// Attrs is the filterable attribute view. Read-only once the event is
	// frozen; use Mutable or CloneDetached to rewrite. The freeze guard
	// lives in the mutator methods (Set, SetBody, Stamp) — Go cannot seal
	// a map, so writing Attrs directly on a frozen event is undetected
	// corruption of every sharer. The clone-vs-borrow differential test
	// keeps in-tree stages honest about this.
	Attrs Attributes
	// Body is an optional XML island with structured payload, bound via
	// type projection.
	Body string

	// frozen marks the event immutable and shareable across deliveries.
	// Only the zero value travels on the wire: both decoders leave it
	// unset so decoded envelopes compare equal to their originals, and
	// the pub/sub layer freezes at the fan-out boundary instead.
	frozen bool
}

// New constructs an event with a fresh attribute map.
func New(typ, source string, at time.Duration) *Event {
	return &Event{
		Type:   typ,
		Source: source,
		Time:   at,
		Attrs:  make(Attributes),
	}
}

// Set assigns an attribute and returns the event for chaining. It panics
// on a frozen event: shared events must not be rewritten in place.
func (e *Event) Set(name string, v Value) *Event {
	e.mustBeMutable("Set")
	e.Attrs[name] = v
	return e
}

// SetBody assigns the XML body island and returns the event for chaining.
// It panics on a frozen event.
func (e *Event) SetBody(xmlIsland string) *Event {
	e.mustBeMutable("SetBody")
	e.Body = xmlIsland
	return e
}

// Get returns an attribute value. Implicit attributes "type", "source"
// and "time" (nanoseconds, int) reflect the envelope fields so filters
// can constrain them uniformly.
func (e *Event) Get(name string) (Value, bool) {
	switch name {
	case "type":
		return S(e.Type), true
	case "source":
		return S(e.Source), true
	case "time":
		return I(int64(e.Time)), true
	}
	v, ok := e.Attrs[name]
	return v, ok
}

// GetString returns a string attribute or "".
func (e *Event) GetString(name string) string {
	if v, ok := e.Get(name); ok && v.K == KindString {
		return v.S
	}
	return ""
}

// GetNum returns a numeric attribute or 0.
func (e *Event) GetNum(name string) float64 {
	if v, ok := e.Get(name); ok {
		if f, isNum := v.Num(); isNum {
			return f
		}
	}
	return 0
}

// Stamp assigns the event's ID deterministically from source and sequence
// number, and returns the event. It panics on a frozen event.
func (e *Event) Stamp(seq uint64) *Event {
	e.mustBeMutable("Stamp")
	e.ID = ids.FromString(fmt.Sprintf("%s/%s/%d", e.Source, e.Type, seq))
	return e
}

func (e *Event) mustBeMutable(op string) {
	if e.frozen {
		panic(fmt.Sprintf("event: %s on frozen event %s (type %s); use Mutable or CloneDetached", op, e.ID.Short(), e.Type))
	}
}

// Freeze marks the event immutable so one value can be shared across
// every delivery of a fan-out (zero-copy). Idempotent; returns e. The
// pub/sub layer calls this at the publish and dispatch boundaries —
// producers rarely need to.
//
// The already-frozen fast path deliberately skips the write: after the
// publisher's initial Freeze (which happens-before every delivery via
// the endpoint's message handoff), re-freezes on other goroutines — the
// TCP loopback dispatching to the local broker, for instance — are pure
// reads, keeping the shared event race-free.
func (e *Event) Freeze() *Event {
	if !e.frozen {
		e.frozen = true
	}
	return e
}

// Frozen reports whether the event is immutable and shared.
func (e *Event) Frozen() bool { return e.frozen }

// Mutable returns an event safe to modify: e itself when it is still
// unfrozen, otherwise a detached deep copy (copy-on-write). Pipeline
// stages that rewrite attributes call this once and work on the result.
func (e *Event) Mutable() *Event {
	if !e.frozen {
		return e
	}
	return e.CloneDetached()
}

// CloneDetached returns a mutable deep copy that shares no state with e:
// a fresh attribute map, and no frozen mark regardless of e's. Use it
// when a copy must be retained and rewritten independently of the
// original (the explicit escape hatch from borrow semantics).
func (e *Event) CloneDetached() *Event {
	out := *e
	out.Attrs = e.Attrs.Clone()
	out.frozen = false
	return &out
}

// Clone returns a mutable deep copy of the event (alias of CloneDetached,
// kept for existing callers).
func (e *Event) Clone() *Event { return e.CloneDetached() }

// xmlEvent is the XML wire form.
type xmlEvent struct {
	XMLName xml.Name  `xml:"event"`
	ID      string    `xml:"id,attr"`
	Type    string    `xml:"type,attr"`
	Source  string    `xml:"source,attr"`
	Time    int64     `xml:"time,attr"`
	Attrs   []xmlAttr `xml:"attr"`
	Body    string    `xml:"body,omitempty"`
}

type xmlAttr struct {
	Name string `xml:"name,attr"`
	Kind string `xml:"kind,attr"`
	Text string `xml:",chardata"`
}

// MarshalXML implements xml.Marshaler with deterministic attribute order.
func (e *Event) MarshalXML(enc *xml.Encoder, start xml.StartElement) error {
	xe := xmlEvent{
		ID:     e.ID.String(),
		Type:   e.Type,
		Source: e.Source,
		Time:   int64(e.Time),
		Body:   e.Body,
	}
	for _, name := range e.Attrs.Names() {
		v := e.Attrs[name]
		xe.Attrs = append(xe.Attrs, xmlAttr{Name: name, Kind: v.K.String(), Text: v.String()})
	}
	start.Name = xml.Name{Local: "event"}
	return enc.EncodeElement(xe, start)
}

// UnmarshalXML implements xml.Unmarshaler.
func (e *Event) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	var xe xmlEvent
	if err := dec.DecodeElement(&xe, &start); err != nil {
		return err
	}
	id, err := ids.Parse(xe.ID)
	if err != nil {
		return fmt.Errorf("event: bad id: %w", err)
	}
	e.ID = id
	e.Type = xe.Type
	e.Source = xe.Source
	e.Time = time.Duration(xe.Time)
	e.Body = xe.Body
	e.Attrs = make(Attributes, len(xe.Attrs))
	for _, a := range xe.Attrs {
		v, err := parseValue(a.Kind, a.Text)
		if err != nil {
			return err
		}
		e.Attrs[a.Name] = v
	}
	return nil
}

var (
	_ xml.Marshaler   = (*Event)(nil)
	_ xml.Unmarshaler = (*Event)(nil)
)

// Marshal serialises the event to XML bytes.
func Marshal(e *Event) ([]byte, error) {
	return xml.Marshal(e)
}

// Unmarshal parses XML bytes into an event.
func Unmarshal(data []byte) (*Event, error) {
	var e Event
	if err := xml.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	return &e, nil
}
