package event

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructors(t *testing.T) {
	tests := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{S("hi"), KindString, "hi"},
		{I(-42), KindInt, "-42"},
		{F(2.5), KindFloat, "2.5"},
		{B(true), KindBool, "true"},
	}
	for _, tt := range tests {
		if tt.v.K != tt.kind {
			t.Errorf("kind = %v, want %v", tt.v.K, tt.kind)
		}
		if got := tt.v.String(); got != tt.str {
			t.Errorf("String() = %q, want %q", got, tt.str)
		}
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !I(3).Equal(F(3.0)) {
		t.Errorf("3 should equal 3.0")
	}
	if I(3).Equal(F(3.5)) {
		t.Errorf("3 should not equal 3.5")
	}
	if S("3").Equal(I(3)) {
		t.Errorf("string should not equal int")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{I(1), I(2), -1, true},
		{F(2.5), I(2), 1, true},
		{S("a"), S("b"), -1, true},
		{S("b"), S("b"), 0, true},
		{S("a"), I(1), 0, false},
		{B(true), B(true), 0, true},
		{B(true), B(false), 0, false},
	}
	for _, tt := range tests {
		got, ok := tt.a.Compare(tt.b)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("Compare(%v, %v) = (%d,%v), want (%d,%v)", tt.a, tt.b, got, ok, tt.want, tt.ok)
		}
	}
}

func TestImplicitAttributes(t *testing.T) {
	e := New("gps.location", "sensor-1", 5*time.Second)
	if v, ok := e.Get("type"); !ok || v.S != "gps.location" {
		t.Errorf("implicit type = %v", v)
	}
	if v, ok := e.Get("source"); !ok || v.S != "sensor-1" {
		t.Errorf("implicit source = %v", v)
	}
	if v, ok := e.Get("time"); !ok || v.I != int64(5*time.Second) {
		t.Errorf("implicit time = %v", v)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	e := New("weather.report", "thermo-3", 90*time.Second).
		Set("region", S("south-street")).
		Set("tempC", F(20.5)).
		Set("reading", I(7)).
		Set("sunny", B(true)).
		SetBody(`<reading><raw>20.5</raw></reading>`).
		Stamp(1)
	data, err := Marshal(e)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.ID != e.ID || got.Type != e.Type || got.Source != e.Source || got.Time != e.Time {
		t.Fatalf("envelope mismatch: %+v vs %+v", got, e)
	}
	if len(got.Attrs) != 4 {
		t.Fatalf("attrs = %v", got.Attrs)
	}
	for name, want := range e.Attrs {
		if gv, ok := got.Attrs[name]; !ok || !gv.Equal(want) {
			t.Errorf("attr %q = %v, want %v", name, gv, want)
		}
	}
	if !strings.Contains(got.Body, "<raw>20.5</raw>") {
		t.Errorf("body lost: %q", got.Body)
	}
}

func TestXMLDeterministic(t *testing.T) {
	e := New("t", "s", 0).Set("b", I(1)).Set("a", I(2)).Set("c", I(3)).Stamp(9)
	d1, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatalf("marshal not deterministic")
	}
	ai := strings.Index(string(d1), `name="a"`)
	bi := strings.Index(string(d1), `name="b"`)
	ci := strings.Index(string(d1), `name="c"`)
	if !(ai < bi && bi < ci) {
		t.Fatalf("attributes not sorted: %s", d1)
	}
}

func TestStampDeterministicDistinct(t *testing.T) {
	a := New("t", "s", 0).Stamp(1)
	b := New("t", "s", 0).Stamp(1)
	c := New("t", "s", 0).Stamp(2)
	if a.ID != b.ID {
		t.Fatalf("same (source,type,seq) should yield same ID")
	}
	if a.ID == c.ID {
		t.Fatalf("different seq should yield different ID")
	}
}

func TestClone(t *testing.T) {
	e := New("t", "s", 0).Set("x", I(1))
	c := e.Clone()
	c.Attrs["x"] = I(2)
	c.Attrs["y"] = I(3)
	if e.Attrs["x"].I != 1 || len(e.Attrs) != 1 {
		t.Fatalf("clone mutated original: %+v", e.Attrs)
	}
}

// Property: string and numeric round-trips through the XML codec preserve values.
func TestQuickAttrRoundTrip(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool) bool {
		// encoding/xml cannot represent invalid XML chars; restrict to
		// printable input for the string attr.
		s = strings.Map(func(r rune) rune {
			if r < 0x20 || r > 0xFFFD {
				return 'x'
			}
			return r
		}, s)
		// NaN does not round-trip through formatted floats equal to itself.
		if fl != fl {
			fl = 0
		}
		e := New("q", "quick", 0).
			Set("s", S(s)).Set("i", I(i)).Set("f", F(fl)).Set("b", B(b)).
			Stamp(0)
		data, err := Marshal(e)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got.Attrs["s"].S == s && got.Attrs["i"].I == i &&
			got.Attrs["f"].F == fl && got.Attrs["b"].B == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGetHelpers(t *testing.T) {
	e := New("t", "s", 0).Set("user", S("bob")).Set("temp", F(20)).Set("n", I(3))
	if e.GetString("user") != "bob" {
		t.Errorf("GetString")
	}
	if e.GetString("missing") != "" {
		t.Errorf("GetString missing should be empty")
	}
	if e.GetNum("temp") != 20 {
		t.Errorf("GetNum float")
	}
	if e.GetNum("n") != 3 {
		t.Errorf("GetNum int")
	}
	if e.GetNum("user") != 0 {
		t.Errorf("GetNum non-numeric should be 0")
	}
}

func TestFreezeSemantics(t *testing.T) {
	e := New("t", "s", 0).Set("user", S("anna")).Stamp(1)
	if e.Frozen() {
		t.Fatal("fresh event already frozen")
	}
	if e.Mutable() != e {
		t.Fatal("Mutable of an unfrozen event must return the event itself")
	}
	if e.Freeze() != e || !e.Frozen() {
		t.Fatal("Freeze must mark and return the event")
	}
	e.Freeze() // idempotent

	mustPanic := func(op string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on frozen event did not panic", op)
			}
		}()
		fn()
	}
	mustPanic("Set", func() { e.Set("user", S("mallory")) })
	mustPanic("SetBody", func() { e.SetBody("<x/>") })
	mustPanic("Stamp", func() { e.Stamp(2) })

	// Reads stay available on frozen events.
	if e.GetString("user") != "anna" {
		t.Fatal("read on frozen event failed")
	}
}

func TestMutableAndCloneDetached(t *testing.T) {
	e := New("t", "s", 0).Set("user", S("anna")).Stamp(1).Freeze()
	m := e.Mutable()
	if m == e || m.Frozen() {
		t.Fatal("Mutable of a frozen event must be a fresh unfrozen copy")
	}
	m.Set("user", S("bob")).SetBody("<b/>")
	if e.GetString("user") != "anna" || e.Body != "" {
		t.Fatal("mutating the copy leaked into the frozen original")
	}

	c := e.CloneDetached()
	if c == e || c.Frozen() {
		t.Fatal("CloneDetached must be a fresh unfrozen copy")
	}
	c.Attrs["user"] = S("carol")
	if e.GetString("user") != "anna" {
		t.Fatal("detached clone shares the attribute map")
	}
	if c.ID != e.ID || c.Type != e.Type || c.Source != e.Source || c.Time != e.Time {
		t.Fatal("detached clone lost envelope fields")
	}
}

func TestWireRoundTripNotFrozen(t *testing.T) {
	// Frozen-ness is a process-local sharing mark, not wire state: an
	// event frozen by fan-out decodes unfrozen on the receiving node (it
	// is refrozen at that node's own fan-out boundary).
	e := New("t", "s", 0).Set("user", S("anna")).Stamp(1).Freeze()
	data, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Frozen() {
		t.Fatal("decoded event must start unfrozen")
	}
}
