package event

import (
	"bytes"
	"testing"
	"time"

	"github.com/gloss/active/internal/wire"
)

// FuzzEventParseWire drives the binary event decoder with arbitrary
// frames: it must never panic, and anything it accepts must re-encode
// to a stable canonical form (attribute order is sorted, so
// encode∘parse∘encode is a fixed point).
func FuzzEventParseWire(f *testing.F) {
	seed := New("alert", "sensor-7", 42*time.Millisecond)
	seed.SetBody("hot")
	seed.Set("user", S("alice"))
	seed.Set("temp", I(99))
	f.Add([]byte(seed.AppendWire(nil)))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var e Event
		if err := e.ParseWire(wire.NewBinReader(data)); err != nil {
			return
		}
		first := e.AppendWire(nil)
		var re Event
		if err := re.ParseWire(wire.NewBinReader(first)); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if second := re.AppendWire(nil); !bytes.Equal(first, second) {
			t.Fatalf("encode not a fixed point:\n first=%x\nsecond=%x", first, second)
		}
	})
}
