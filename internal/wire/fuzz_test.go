package wire_test

// Fuzz targets for both wire decoders: arbitrary input must either
// decode cleanly or return an error — never panic, never over-allocate
// from a forged length field. The seed corpus is built from encoded real
// protocol messages so the fuzzer starts inside the interesting format
// space. CI runs a short smoke pass (see .github/workflows/ci.yml);
// longer local runs:
//
//	go test -run '^$' -fuzz FuzzBinaryDecode -fuzztime 60s ./internal/wire
//	go test -run '^$' -fuzz FuzzXMLDecode -fuzztime 60s ./internal/wire

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/wire"
)

// seedEnvelopes builds a corpus of real protocol traffic.
func seedEnvelopes(t interface{ Fatal(...any) }) (*wire.Registry, []*wire.Envelope) {
	reg := fullRegistry()
	ev := event.New("gps.location", "phone-7", 42*time.Second).
		Set("user", event.S("bob")).
		Set("x", event.F(3.25)).
		Set("n", event.I(-9)).
		Set("ok", event.B(true)).
		Stamp(7)
	inner, err := reg.Encode(&wire.Envelope{
		From: ids.FromString("a"), To: ids.FromString("b"),
		Msg: &pubsub.PubMsg{Event: ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	envs := []*wire.Envelope{
		{From: ids.FromString("a"), To: ids.FromString("b"), Msg: &pubsub.PubMsg{Event: ev}},
		{From: ids.FromString("a"), To: ids.FromString("b"), CorrID: 3, Msg: &pubsub.SubMsg{
			Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location"), pubsub.Gt("x", event.F(1))),
		}},
		{From: ids.FromString("c"), To: ids.FromString("d"), Msg: &plaxton.RouteMsg{
			Key: ids.FromString("k").String(), Origin: ids.FromString("a").String(),
			Hops: 2, Path: []string{"n1", "n2"}, InnerKind: "pubsub.pub", Inner: inner,
		}},
		{From: ids.FromString("e"), To: ids.FromString("f"), CorrID: 9, IsReply: true, Err: "not found"},
		{From: ids.FromString("g"), To: ids.FromString("h"), Msg: &pubsub.ReclaimReply{
			Events: []*event.Event{ev}, Dropped: 1,
		}},
	}
	return reg, envs
}

func FuzzXMLDecode(f *testing.F) {
	reg, envs := seedEnvelopes(f)
	for _, env := range envs {
		frame, err := reg.Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("<env"))
	f.Add([]byte("<env from=\"zz\"/>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := reg.Decode(data)
		if err != nil {
			return
		}
		if env == nil {
			t.Fatal("nil envelope with nil error")
		}
	})
}

func FuzzBinaryDecode(f *testing.F) {
	reg, envs := seedEnvelopes(f)
	bin := wire.NewBinaryCodec(reg)
	for _, env := range envs {
		frame, err := bin.Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{0xA7})
	f.Add([]byte{0xA7, 1, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := bin.Decode(data)
		if err != nil {
			return
		}
		if env == nil {
			t.Fatal("nil envelope with nil error")
		}
		// A successful decode must re-encode without panicking; errors are
		// tolerated (arbitrary decoded strings may not be XML-embeddable
		// through the fallback path).
		_, _ = bin.Encode(env)
	})
}
