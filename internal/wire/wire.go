// Package wire defines the message envelope and XML codec shared by the
// simulated network (for byte accounting) and the real TCP transport.
//
// Per the paper (§4.7), all inter-node traffic uses "standardised and open
// interfaces and data formats wherever possible — thus XML-encoded events,
// web service interfaces for pushing events and new code bundles". Every
// protocol message in this repository is XML-serialisable and registered
// with a Registry under a unique kind string.
package wire

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"github.com/gloss/active/internal/ids"
)

// Message is a protocol message. Kind returns the globally unique message
// type name, e.g. "plaxton.join" or "pipeline.put". The concrete type must
// be XML-marshalable.
type Message interface {
	Kind() string
}

// ControlMessage is optionally implemented by message types whose loss
// would wedge a protocol rather than merely lose data: subscription
// state, hellos, topology repair. Byte-budgeted send queues never drop
// control messages on watermark overflow — only at an absolute hard cap
// — so overload sheds event fan-out before the routing state that
// steers it.
type ControlMessage interface {
	Message
	Control() bool
}

// Control reports whether msg is control-plane traffic exempt from
// send-queue budget drops.
func Control(msg Message) bool {
	c, ok := msg.(ControlMessage)
	return ok && c.Control()
}

// Envelope carries one message between two nodes.
type Envelope struct {
	From    ids.ID
	To      ids.ID
	CorrID  uint64 // request/response correlation; 0 for one-way sends
	IsReply bool
	Err     string // transported error for failed requests ("" = ok)
	Msg     Message
}

// Registry maps message kinds to concrete Go types for decoding.
// The zero value is not usable; construct with NewRegistry. Registration
// is normally completed at wiring time, but the registry tolerates
// runtime Register calls (dynamic bundle types) concurrent with decoding
// — transport nodes then rebuild their binary codec and re-advertise the
// new kinds hash (see transport.Node.RefreshRegistry).
type Registry struct {
	mu    sync.RWMutex
	types map[string]reflect.Type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{types: make(map[string]reflect.Type)}
}

// Register records the concrete type of prototype under its Kind.
// It panics on duplicate kinds with differing types — that is a
// programming error caught at wiring time.
func (r *Registry) Register(prototype Message) {
	kind := prototype.Kind()
	t := reflect.TypeOf(prototype)
	if t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.types[kind]; ok {
		if prev != t {
			panic(fmt.Sprintf("wire: kind %q registered twice with different types (%v, %v)", kind, prev, t))
		}
		return
	}
	r.types[kind] = t
}

// Kinds returns all registered kinds, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.types))
	for k := range r.types {
		out = append(out, k)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// New instantiates a fresh message value for kind.
func (r *Registry) New(kind string) (Message, error) {
	r.mu.RLock()
	t, ok := r.types[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unknown message kind %q", kind)
	}
	v := reflect.New(t).Interface()
	m, ok := v.(Message)
	if !ok {
		// Value receiver Kind: the pointer still satisfies Message in
		// all our message types; this is defensive.
		return nil, fmt.Errorf("wire: kind %q type %v does not implement Message", kind, t)
	}
	return m, nil
}

// xmlEnvelope is the on-the-wire form of an Envelope.
type xmlEnvelope struct {
	XMLName xml.Name `xml:"env"`
	From    string   `xml:"from,attr"`
	To      string   `xml:"to,attr"`
	Kind    string   `xml:"kind,attr"`
	CorrID  uint64   `xml:"corr,attr,omitempty"`
	IsReply bool     `xml:"reply,attr,omitempty"`
	Err     string   `xml:"err,attr,omitempty"`
	Body    []byte   `xml:",innerxml"`
}

// SharedBody caches one message's encoded body so an envelope fanning
// out to many destinations pays the body encoding once per codec
// ("encode once, send many"): per-envelope header fields (From, To,
// CorrID) are still written fresh per frame, only the payload bytes are
// reused. A SharedBody is valid for exactly one Message value — reusing
// it across different messages is a caller bug. The zero value is ready.
// Not safe for concurrent use.
type SharedBody struct {
	xmlBody []byte
	haveXML bool
	binBody []byte
	binXML  bool // binBody holds the XML fallback form
	haveBin bool
}

// SharedEncoder is implemented by codecs that can amortise body encoding
// across a fan-out through a SharedBody cache. Both built-in codecs do;
// transport falls back to plain Encode for codecs that don't.
type SharedEncoder interface {
	Codec
	// EncodeShared is Encode with the message body cached in s.
	// A nil s behaves exactly like Encode.
	EncodeShared(env *Envelope, s *SharedBody) ([]byte, error)
}

var (
	_ SharedEncoder = (*Registry)(nil)
	_ SharedEncoder = (*BinaryCodec)(nil)
)

// Encode serialises an envelope to XML bytes.
func (r *Registry) Encode(env *Envelope) ([]byte, error) {
	return r.EncodeShared(env, nil)
}

// EncodeShared implements SharedEncoder: the marshalled message body is
// taken from (or stored into) s, so only the envelope wrapper is built
// per destination.
func (r *Registry) EncodeShared(env *Envelope, s *SharedBody) ([]byte, error) {
	var body []byte
	var kind string
	if env.Msg != nil {
		kind = env.Msg.Kind()
		if s != nil && s.haveXML {
			body = s.xmlBody
		} else {
			b, err := xml.Marshal(env.Msg)
			if err != nil {
				return nil, fmt.Errorf("wire: encode %q: %w", kind, err)
			}
			body = b
			if s != nil {
				s.xmlBody, s.haveXML = b, true
			}
		}
	}
	xe := xmlEnvelope{
		From:    env.From.String(),
		To:      env.To.String(),
		Kind:    kind,
		CorrID:  env.CorrID,
		IsReply: env.IsReply,
		Err:     env.Err,
		Body:    body,
	}
	var buf bytes.Buffer
	if err := xml.NewEncoder(&buf).Encode(xe); err != nil {
		return nil, fmt.Errorf("wire: encode envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses XML bytes produced by Encode.
func (r *Registry) Decode(data []byte) (*Envelope, error) {
	var xe xmlEnvelope
	if err := xml.Unmarshal(data, &xe); err != nil {
		return nil, fmt.Errorf("wire: decode envelope: %w", err)
	}
	from, err := ids.Parse(xe.From)
	if err != nil {
		return nil, fmt.Errorf("wire: decode from: %w", err)
	}
	to, err := ids.Parse(xe.To)
	if err != nil {
		return nil, fmt.Errorf("wire: decode to: %w", err)
	}
	env := &Envelope{From: from, To: to, CorrID: xe.CorrID, IsReply: xe.IsReply, Err: xe.Err}
	if xe.Kind != "" {
		msg, err := r.New(xe.Kind)
		if err != nil {
			return nil, err
		}
		if err := xml.Unmarshal(xe.Body, msg); err != nil {
			return nil, fmt.Errorf("wire: decode body of %q: %w", xe.Kind, err)
		}
		env.Msg = msg
	}
	return env, nil
}

// Size returns the encoded size of env in bytes (for bandwidth accounting).
func (r *Registry) Size(env *Envelope) (int, error) {
	b, err := r.Encode(env)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}
