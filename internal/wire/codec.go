package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"math"
	"strings"
	"sync"
	"unsafe"

	"github.com/gloss/active/internal/ids"
)

// Codec serialises envelopes for a wire. Two implementations exist:
//
//   - *Registry, the XML reference codec mandated by the paper's §4.7 for
//     open interfaces. It stays the default everywhere and is the
//     behaviour baseline for differential tests.
//   - *BinaryCodec, a compact length-prefixed fast path for hot interior
//     links (varints, raw 128-bit IDs, interned kind numbers) with an
//     automatic XML-body fallback for message types without hand-written
//     binary marshalling.
//
// Size exists so the simulator can account bandwidth without keeping the
// encoded document around.
type Codec interface {
	// Name identifies the codec on the wire ("xml", "binary").
	Name() string
	// Encode serialises an envelope to a self-contained frame.
	Encode(env *Envelope) ([]byte, error)
	// Decode parses a frame produced by Encode.
	Decode(data []byte) (*Envelope, error)
	// Size returns the encoded size of env in bytes.
	Size(env *Envelope) (int, error)
}

// Codec names used for negotiation and configuration.
const (
	CodecXML    = "xml"
	CodecBinary = "binary"
)

var _ Codec = (*Registry)(nil)

// BinaryMessage is implemented by message types with a hand-written
// compact binary form. AppendWire appends the message body to b and
// returns the extended slice; ParseWire reads the same form back.
// Types that do not implement it still travel over the binary codec via
// an embedded XML body.
type BinaryMessage interface {
	Message
	AppendWire(b []byte) []byte
	ParseWire(r *BinReader) error
}

// --- binary primitives --------------------------------------------------------

// AppendUvarint appends v in unsigned LEB128 form.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag LEB128 form.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendBool appends one byte: 0 or 1.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat64 appends the IEEE-754 bits, little-endian.
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendID appends the raw 16 identifier bytes (no hex expansion).
func AppendID(b []byte, id ids.ID) []byte {
	return append(b, id[:]...)
}

// BinReader decodes the binary primitives with a sticky error: after the
// first malformed field every subsequent read returns a zero value, and
// Err reports what went wrong. Malformed input can never panic — lengths
// are validated against the remaining buffer before any allocation.
type BinReader struct {
	buf    []byte
	off    int
	err    error
	borrow bool
}

// NewBinReader wraps buf for reading.
func NewBinReader(buf []byte) *BinReader { return &BinReader{buf: buf} }

// NewBinReaderBorrowed wraps buf for borrowing reads: String returns
// views over buf instead of copies (see Borrowed). Use only when buf is
// immutable for the life of everything decoded from it.
func NewBinReaderBorrowed(buf []byte) *BinReader {
	return &BinReader{buf: buf, borrow: true}
}

// Borrowed reports whether String returns views over the input buffer.
func (r *BinReader) Borrowed() bool { return r.borrow }

// Err returns the first decoding error, or nil.
func (r *BinReader) Err() error { return r.err }

// Poison records a semantic decoding error (e.g. an out-of-range enum),
// keeping the sticky-error contract for callers outside this package.
// The first error wins.
func (r *BinReader) Poison(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Remaining reports how many bytes are left.
func (r *BinReader) Remaining() int { return len(r.buf) - r.off }

func (r *BinReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or malformed %s at offset %d", what, r.off)
	}
}

// Uvarint reads an unsigned LEB128 integer.
func (r *BinReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag LEB128 integer.
func (r *BinReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Count reads a collection length and rejects values that could not fit
// in the remaining bytes (every element takes at least one byte), so a
// corrupted count cannot trigger a huge allocation.
func (r *BinReader) Count() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.fail("collection count")
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed slice. The result aliases the input
// buffer; callers that retain it past the frame's life must copy.
func (r *BinReader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail("byte-slice length")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

// String reads a length-prefixed string. A plain reader copies; a
// borrowed reader (NewBinReaderBorrowed) returns a view sharing the
// input buffer's storage — zero allocations, at the price of pinning
// the buffer for as long as any returned string lives. The hot decode
// path (events with many attributes) is why the mode exists: copying
// every type, source, attribute name and string value made decode
// allocation the ceiling once matching went shard-parallel.
func (r *BinReader) String() string {
	b := r.Bytes()
	if len(b) == 0 {
		return ""
	}
	if r.borrow {
		return unsafe.String(&b[0], len(b))
	}
	return string(b)
}

// Bool reads one byte as a boolean.
func (r *BinReader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail("bool")
		return false
	}
	v := r.buf[r.off]
	r.off++
	return v != 0
}

// Float64 reads IEEE-754 bits, little-endian.
func (r *BinReader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("float64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// ID reads 16 raw identifier bytes.
func (r *BinReader) ID() ids.ID {
	var id ids.ID
	if r.err != nil {
		return id
	}
	if r.Remaining() < ids.Size {
		r.fail("id")
		return id
	}
	copy(id[:], r.buf[r.off:])
	r.off += ids.Size
	return id
}

// --- binary envelope codec ----------------------------------------------------

// BinaryMagic is the first byte of every binary frame. XML frames start
// with '<' (0x3C), so one byte distinguishes the two codecs on a shared
// connection.
const BinaryMagic = 0xA7

// binaryVersion is bumped on incompatible format changes.
const binaryVersion = 1

// Envelope flag bits.
const (
	flagReply   = 1 << 0
	flagHasMsg  = 1 << 1
	flagHasErr  = 1 << 2
	flagXMLBody = 1 << 3 // body is the message's XML form (fallback)
)

// IsBinaryFrame reports whether a frame was produced by a BinaryCodec.
func IsBinaryFrame(frame []byte) bool {
	return len(frame) > 0 && frame[0] == BinaryMagic
}

// BinaryCodec is the compact fast-path codec. Kind strings are interned
// as indexes into the registry's sorted kind list, so both ends must hold
// identical registries — transport verifies that with KindsHash during
// its hello handshake. Construct it only after every message type has
// been registered.
type BinaryCodec struct {
	reg       *Registry
	kinds     []string
	kindID    map[string]uint64
	kindsHash string
	scratch   sync.Pool // *[]byte buffers for Size
}

var _ Codec = (*BinaryCodec)(nil)

// NewBinaryCodec snapshots reg's kind table into an interning codec.
func NewBinaryCodec(reg *Registry) *BinaryCodec {
	kinds := reg.Kinds()
	c := &BinaryCodec{
		reg:       reg,
		kinds:     kinds,
		kindID:    make(map[string]uint64, len(kinds)),
		kindsHash: reg.KindsHash(),
	}
	for i, k := range kinds {
		c.kindID[k] = uint64(i)
	}
	c.scratch.New = func() any { b := make([]byte, 0, 512); return &b }
	return c
}

// Name implements Codec.
func (c *BinaryCodec) Name() string { return CodecBinary }

// KindsHash identifies the interned kind table (must match the peer's).
func (c *BinaryCodec) KindsHash() string { return c.kindsHash }

// Encode implements Codec.
func (c *BinaryCodec) Encode(env *Envelope) ([]byte, error) {
	return c.appendEnvelope(make([]byte, 0, 160), env, nil)
}

// EncodeShared implements SharedEncoder: the message body bytes are taken
// from (or stored into) s, so a fan-out marshals the payload once and
// stamps per-destination headers around it.
func (c *BinaryCodec) EncodeShared(env *Envelope, s *SharedBody) ([]byte, error) {
	return c.appendEnvelope(make([]byte, 0, 160), env, s)
}

func (c *BinaryCodec) appendEnvelope(b []byte, env *Envelope, s *SharedBody) ([]byte, error) {
	var flags byte
	if env.IsReply {
		flags |= flagReply
	}
	if env.Err != "" {
		flags |= flagHasErr
	}
	var kindID uint64
	var body []byte
	var bodyScratch *[]byte
	if env.Msg != nil {
		flags |= flagHasMsg
		kind := env.Msg.Kind()
		id, ok := c.kindID[kind]
		if !ok {
			return nil, fmt.Errorf("wire: binary encode: kind %q not in interned table", kind)
		}
		kindID = id
		if s != nil && s.haveBin {
			body = s.binBody
			if s.binXML {
				flags |= flagXMLBody
			}
		} else {
			if bm, ok := env.Msg.(BinaryMessage); ok {
				if s == nil {
					// The body needs encoding before the header (its
					// length is prefixed); a pooled scratch keeps the
					// whole envelope — including Size-only calls —
					// allocation-free.
					bodyScratch = c.scratch.Get().(*[]byte)
					body = bm.AppendWire((*bodyScratch)[:0])
				} else {
					// Cached bodies outlive this call, so they cannot
					// borrow the scratch pool; the one allocation is
					// amortised over the whole fan-out.
					body = bm.AppendWire(nil)
				}
			} else {
				xb, err := xml.Marshal(env.Msg)
				if err != nil {
					return nil, fmt.Errorf("wire: binary encode %q fallback: %w", kind, err)
				}
				flags |= flagXMLBody
				body = xb
			}
			if s != nil {
				s.binBody, s.binXML, s.haveBin = body, flags&flagXMLBody != 0, true
			}
		}
	}
	b = append(b, BinaryMagic, binaryVersion, flags)
	b = AppendID(b, env.From)
	b = AppendID(b, env.To)
	b = AppendUvarint(b, env.CorrID)
	if flags&flagHasErr != 0 {
		b = AppendString(b, env.Err)
	}
	if flags&flagHasMsg != 0 {
		b = AppendUvarint(b, kindID)
		b = AppendBytes(b, body)
	}
	if bodyScratch != nil {
		*bodyScratch = body[:0]
		c.scratch.Put(bodyScratch)
	}
	return b, nil
}

// Decode implements Codec. Every decoded string is an independent copy;
// the frame may be reused or mutated afterwards.
func (c *BinaryCodec) Decode(data []byte) (*Envelope, error) {
	return c.decode(data, false)
}

// DecodeBorrow parses a frame like Decode, but strings in the decoded
// messages (event types, sources, attribute names and values, filter
// constraints …) are views borrowing the frame's storage rather than
// copies. The caller must guarantee data is never mutated or recycled —
// the transport qualifies, since it allocates a fresh buffer per
// received frame — and accepts that retaining any decoded string (a
// frozen event in a proxy buffer, say) pins the whole frame in memory.
func (c *BinaryCodec) DecodeBorrow(data []byte) (*Envelope, error) {
	return c.decode(data, true)
}

func (c *BinaryCodec) decode(data []byte, borrow bool) (*Envelope, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("wire: binary decode: frame of %d bytes too short", len(data))
	}
	if data[0] != BinaryMagic {
		return nil, fmt.Errorf("wire: binary decode: bad magic 0x%02x", data[0])
	}
	if data[1] != binaryVersion {
		return nil, fmt.Errorf("wire: binary decode: unsupported version %d", data[1])
	}
	flags := data[2]
	r := NewBinReader(data[3:])
	r.borrow = borrow
	env := &Envelope{
		From:    r.ID(),
		To:      r.ID(),
		CorrID:  r.Uvarint(),
		IsReply: flags&flagReply != 0,
	}
	if flags&flagHasErr != 0 {
		env.Err = r.String()
	}
	if flags&flagHasMsg != 0 {
		kindID := r.Uvarint()
		body := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if kindID >= uint64(len(c.kinds)) {
			return nil, fmt.Errorf("wire: binary decode: kind id %d out of range", kindID)
		}
		kind := c.kinds[kindID]
		msg, err := c.reg.New(kind)
		if err != nil {
			return nil, err
		}
		if flags&flagXMLBody != 0 {
			if err := xml.Unmarshal(body, msg); err != nil {
				return nil, fmt.Errorf("wire: binary decode body of %q: %w", kind, err)
			}
		} else {
			bm, ok := msg.(BinaryMessage)
			if !ok {
				return nil, fmt.Errorf("wire: binary decode: kind %q has no binary form", kind)
			}
			br := NewBinReader(body)
			br.borrow = borrow
			if err := bm.ParseWire(br); err != nil {
				return nil, fmt.Errorf("wire: binary decode body of %q: %w", kind, err)
			}
		}
		env.Msg = msg
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return env, nil
}

// Size implements Codec in O(encoded bytes) with no reflection and no
// retained document: the envelope is appended to a pooled scratch buffer
// and only its length escapes.
func (c *BinaryCodec) Size(env *Envelope) (int, error) {
	bp := c.scratch.Get().(*[]byte)
	b, err := c.appendEnvelope((*bp)[:0], env, nil)
	n := len(b)
	*bp = b[:0]
	c.scratch.Put(bp)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// KindsHash fingerprints the registry's sorted kind list; two registries
// with the same hash intern kinds identically, making their binary
// codecs wire-compatible.
func (r *Registry) KindsHash() string {
	sum := sha256.Sum256([]byte(strings.Join(r.Kinds(), "\n")))
	return hex.EncodeToString(sum[:8])
}

// Name implements Codec: the Registry doubles as the XML reference codec.
func (r *Registry) Name() string { return CodecXML }
