package wire_test

// Differential property test for the two codecs: for EVERY message kind
// the full stack registers (overlay, store, pub/sub, bundles, pipelines,
// gateway, transport) and randomized field values, the binary fast path
// and the XML reference codec must decode to identical envelopes. This
// is the contract that lets the binary codec replace XML on interior
// links without changing any observable behaviour.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/gateway"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/transport"
	"github.com/gloss/active/internal/wire"
)

// fullRegistry holds every kind a deployed node speaks.
func fullRegistry() *wire.Registry {
	reg := wire.NewRegistry()
	core.RegisterMessages(reg)
	transport.RegisterMessages(reg)
	gateway.RegisterMessages(reg)
	return reg
}

// randString draws from a charset that includes XML-significant runes so
// escaping differences between the codecs would surface.
func randString(rng *rand.Rand, maxLen int) string {
	const charset = "abcdefgh XYZ0123<&>'\"./-_:"
	n := rng.Intn(maxLen + 1)
	out := make([]byte, n)
	for i := range out {
		out[i] = charset[rng.Intn(len(charset))]
	}
	return string(out)
}

func randValue(rng *rand.Rand) event.Value {
	switch 1 + rng.Intn(4) {
	case 1:
		return event.S(randString(rng, 10))
	case 2:
		return event.I(rng.Int63() - rng.Int63())
	case 3:
		return event.F(rng.NormFloat64() * 1e3)
	default:
		return event.B(rng.Intn(2) == 0)
	}
}

func randEvent(rng *rand.Rand) *event.Event {
	ev := event.New(randString(rng, 8), randString(rng, 8), time.Duration(rng.Int63n(1e12)))
	ev.ID = ids.Random(rng)
	for i, n := 0, rng.Intn(4); i < n; i++ {
		// Index prefix keeps names unique (Attrs is a map).
		ev.Set(string(rune('a'+i))+randString(rng, 6), randValue(rng))
	}
	if rng.Intn(2) == 0 {
		ev.SetBody("<x a=\"" + randString(rng, 6) + "\"/>")
	}
	return ev
}

func randFilter(rng *rand.Rand) pubsub.Filter {
	var cs []pubsub.Constraint
	for i, n := 0, rng.Intn(4); i < n; i++ {
		op := pubsub.Op(1 + rng.Intn(int(pubsub.OpExists)))
		c := pubsub.Constraint{Attr: randString(rng, 8), Op: op}
		if op != pubsub.OpExists {
			c.Val = randValue(rng)
		}
		cs = append(cs, c)
	}
	return pubsub.NewFilter(cs...)
}

var (
	typeValue    = reflect.TypeOf(event.Value{})
	typeFilter   = reflect.TypeOf(pubsub.Filter{})
	typeEvent    = reflect.TypeOf(event.Event{})
	typeID       = reflect.TypeOf(ids.ID{})
	typeDuration = reflect.TypeOf(time.Duration(0))
)

// fill populates v with random values. Slices are either nil or
// non-empty and byte slices always non-empty, because the XML codec
// cannot distinguish nil from empty for those shapes.
func fill(v reflect.Value, rng *rand.Rand, depth int) {
	t := v.Type()
	switch t {
	case typeValue:
		v.Set(reflect.ValueOf(randValue(rng)))
		return
	case typeFilter:
		v.Set(reflect.ValueOf(randFilter(rng)))
		return
	case typeEvent:
		v.Set(reflect.ValueOf(*randEvent(rng)))
		return
	case typeID:
		v.Set(reflect.ValueOf(ids.Random(rng)))
		return
	case typeDuration:
		v.SetInt(rng.Int63n(1e12))
		return
	}
	switch t.Kind() {
	case reflect.Pointer:
		if depth > 3 || rng.Intn(3) == 0 {
			v.SetZero()
			return
		}
		v.Set(reflect.New(t.Elem()))
		fill(v.Elem(), rng, depth+1)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() {
				fill(v.Field(i), rng, depth+1)
			}
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			n := 1 + rng.Intn(8)
			b := make([]byte, n)
			rng.Read(b)
			v.Set(reflect.MakeSlice(t, n, n))
			reflect.Copy(v, reflect.ValueOf(b))
			return
		}
		if rng.Intn(2) == 0 {
			v.SetZero()
			return
		}
		n := 1 + rng.Intn(3)
		s := reflect.MakeSlice(t, n, n)
		for i := 0; i < n; i++ {
			elem := s.Index(i)
			switch elem.Kind() {
			case reflect.String:
				// Per-element omitempty silently drops empty strings from
				// XML lists; that shape is unrepresentable, not a codec bug.
				elem.SetString("s" + randString(rng, 10))
			case reflect.Pointer:
				// Nil pointers inside slices are likewise dropped by XML.
				elem.Set(reflect.New(elem.Type().Elem()))
				fill(elem.Elem(), rng, depth+1)
			default:
				fill(elem, rng, depth+1)
			}
		}
		v.Set(s)
	case reflect.String:
		v.SetString(randString(rng, 12))
	case reflect.Bool:
		v.SetBool(rng.Intn(2) == 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(rng.Int63n(1 << 30))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(rng.Uint64() >> 16)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(rng.NormFloat64() * 1e3)
	default:
		// Maps and other kinds do not occur in message types outside the
		// special cases above; leave them zero if they ever appear.
	}
}

func randMessage(t *testing.T, reg *wire.Registry, kind string, rng *rand.Rand) wire.Message {
	t.Helper()
	msg, err := reg.New(kind)
	if err != nil {
		t.Fatalf("New(%q): %v", kind, err)
	}
	fill(reflect.ValueOf(msg).Elem(), rng, 0)
	return msg
}

func TestDifferentialBinaryVsXMLEveryKind(t *testing.T) {
	reg := fullRegistry()
	bin := wire.NewBinaryCodec(reg)
	rng := rand.New(rand.NewSource(20260729))
	kinds := reg.Kinds()
	if len(kinds) < 30 {
		t.Fatalf("expected the full stack to register 30+ kinds, got %d", len(kinds))
	}
	const trials = 32
	for _, kind := range kinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				env := &wire.Envelope{
					From:   ids.Random(rng),
					To:     ids.Random(rng),
					CorrID: uint64(rng.Intn(1000)),
					Msg:    randMessage(t, reg, kind, rng),
				}
				if rng.Intn(4) == 0 {
					env.IsReply = true
				}
				if rng.Intn(8) == 0 {
					env.Err = randString(rng, 20)
				}

				xmlFrame, err := reg.Encode(env)
				if err != nil {
					t.Fatalf("trial %d: xml encode: %v", trial, err)
				}
				envX, err := reg.Decode(xmlFrame)
				if err != nil {
					t.Fatalf("trial %d: xml decode: %v", trial, err)
				}
				binFrame, err := bin.Encode(env)
				if err != nil {
					t.Fatalf("trial %d: binary encode: %v", trial, err)
				}
				envB, err := bin.Decode(binFrame)
				if err != nil {
					t.Fatalf("trial %d: binary decode: %v", trial, err)
				}
				if !reflect.DeepEqual(envX, envB) {
					t.Fatalf("trial %d: codecs disagree\n xml: %#v\n bin: %#v\norig: %#v",
						trial, envX.Msg, envB.Msg, env.Msg)
				}
				if !reflect.DeepEqual(envX, env) && !reflect.DeepEqual(envB, env) {
					t.Fatalf("trial %d: both codecs normalised away from the original\norig: %#v\n got: %#v",
						trial, env.Msg, envX.Msg)
				}
			}
		})
	}
}
