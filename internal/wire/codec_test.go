package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"github.com/gloss/active/internal/ids"
)

// binMsg is a test type with a hand-written binary form.
type binMsg struct {
	Name  string  `xml:"name"`
	Score float64 `xml:"score,attr"`
	N     int64   `xml:"n,attr"`
	Up    bool    `xml:"up,attr"`
	Blob  Bytes   `xml:"blob,omitempty"`
}

func (binMsg) Kind() string { return "test.bin" }

func (m *binMsg) AppendWire(b []byte) []byte {
	b = AppendString(b, m.Name)
	b = AppendFloat64(b, m.Score)
	b = AppendVarint(b, m.N)
	b = AppendBool(b, m.Up)
	return AppendBytes(b, m.Blob)
}

func (m *binMsg) ParseWire(r *BinReader) error {
	m.Name = r.String()
	m.Score = r.Float64()
	m.N = r.Varint()
	m.Up = r.Bool()
	if raw := r.Bytes(); raw != nil {
		m.Blob = append(Bytes(nil), raw...)
	}
	return r.Err()
}

var _ BinaryMessage = (*binMsg)(nil)

func binRegistry() *Registry {
	r := NewRegistry()
	r.Register(&testMsg{}) // XML-fallback type
	r.Register(&otherMsg{})
	r.Register(&binMsg{})
	return r
}

func TestBinPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40)
	b = AppendVarint(b, -12345)
	b = AppendString(b, "héllo")
	b = AppendBytes(b, []byte{0, 255, 7})
	b = AppendBool(b, true)
	b = AppendFloat64(b, math.Inf(-1))
	id := ids.FromString("prim")
	b = AppendID(b, id)

	r := NewBinReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint 0: got %d", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint 2^40: got %d", v)
	}
	if v := r.Varint(); v != -12345 {
		t.Fatalf("varint: got %d", v)
	}
	if s := r.String(); s != "héllo" {
		t.Fatalf("string: got %q", s)
	}
	if p := r.Bytes(); !bytes.Equal(p, []byte{0, 255, 7}) {
		t.Fatalf("bytes: got %v", p)
	}
	if !r.Bool() {
		t.Fatal("bool: want true")
	}
	if f := r.Float64(); !math.IsInf(f, -1) {
		t.Fatalf("float: got %v", f)
	}
	if got := r.ID(); got != id {
		t.Fatalf("id: got %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining: %d", r.Remaining())
	}
}

func TestBinReaderTruncation(t *testing.T) {
	full := AppendString(nil, "0123456789")
	for cut := 0; cut < len(full); cut++ {
		r := NewBinReader(full[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("cut at %d: want error", cut)
		}
	}
	// A giant declared length must fail without allocating.
	r := NewBinReader(AppendUvarint(nil, 1<<60))
	if r.Bytes() != nil || r.Err() == nil {
		t.Fatal("giant length should error")
	}
	r = NewBinReader(AppendUvarint(nil, 1<<60))
	if r.Count() != 0 || r.Err() == nil {
		t.Fatal("giant count should error")
	}
}

func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	reg := binRegistry()
	c := NewBinaryCodec(reg)
	env := &Envelope{
		From:   ids.FromString("alice"),
		To:     ids.FromString("bob"),
		CorrID: 99,
		Msg:    &binMsg{Name: "fast", Score: 2.5, N: -7, Up: true, Blob: Bytes{1, 2, 3}},
	}
	frame, err := c.Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !IsBinaryFrame(frame) {
		t.Fatal("frame should sniff as binary")
	}
	got, err := c.Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, env)
	}
	if n, err := c.Size(env); err != nil || n != len(frame) {
		t.Fatalf("Size = %d, %v; want %d", n, err, len(frame))
	}
}

func TestBinaryEnvelopeXMLFallback(t *testing.T) {
	reg := binRegistry()
	c := NewBinaryCodec(reg)
	env := &Envelope{
		From: ids.FromString("a"),
		To:   ids.FromString("b"),
		Msg:  &testMsg{Name: "no binary form", Count: 5, Data: Bytes{9, 8}},
	}
	frame, err := c.Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := c.Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	m, ok := got.Msg.(*testMsg)
	if !ok || m.Name != "no binary form" || m.Count != 5 || string(m.Data) != string([]byte{9, 8}) {
		t.Fatalf("fallback decode: %#v", got.Msg)
	}
}

func TestBinaryEnvelopeReplyWithError(t *testing.T) {
	c := NewBinaryCodec(binRegistry())
	env := &Envelope{
		From:    ids.FromString("a"),
		To:      ids.FromString("b"),
		CorrID:  3,
		IsReply: true,
		Err:     "no such object",
	}
	frame, err := c.Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := c.Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	c := NewBinaryCodec(binRegistry())
	frame, err := c.Encode(&Envelope{
		From: ids.FromString("a"), To: ids.FromString("b"),
		Msg: &binMsg{Name: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   {0x00, 1, 0},
		"bad version": {BinaryMagic, 99, 0},
		"truncated":   frame[:len(frame)-3],
	}
	for name, data := range cases {
		if _, err := c.Decode(data); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
	// Kind id past the interned table.
	small := NewRegistry()
	small.Register(&binMsg{})
	cSmall := NewBinaryCodec(small)
	big := binRegistry()
	cBig := NewBinaryCodec(big)
	frame2, err := cBig.Encode(&Envelope{
		From: ids.FromString("a"), To: ids.FromString("b"), Msg: &testMsg{Name: "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cSmall.Decode(frame2); err == nil {
		t.Fatal("kind id out of range should error")
	}
}

func TestBinaryEncodeUnknownKind(t *testing.T) {
	empty := NewBinaryCodec(NewRegistry())
	_, err := empty.Encode(&Envelope{
		From: ids.FromString("a"), To: ids.FromString("b"), Msg: &binMsg{},
	})
	if err == nil {
		t.Fatal("unregistered kind should fail to encode")
	}
}

func TestBinaryMuchSmallerThanXML(t *testing.T) {
	reg := binRegistry()
	bin := NewBinaryCodec(reg)
	env := &Envelope{
		From:   ids.FromString("alice"),
		To:     ids.FromString("bob"),
		CorrID: 1,
		Msg:    &binMsg{Name: "payload", Score: 3.14, N: 42, Up: true, Blob: Bytes{1, 2, 3, 4}},
	}
	xb, err := reg.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := bin.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb)*2 >= len(xb) {
		t.Fatalf("binary frame (%dB) should be well under half the XML frame (%dB)", len(bb), len(xb))
	}
}

func TestKindsHash(t *testing.T) {
	a, b := binRegistry(), binRegistry()
	if a.KindsHash() != b.KindsHash() {
		t.Fatal("identical registries must hash alike")
	}
	b.Register(&conflictFree{})
	if a.KindsHash() == b.KindsHash() {
		t.Fatal("different kind tables must hash differently")
	}
	if a.Name() != CodecXML || NewBinaryCodec(a).Name() != CodecBinary {
		t.Fatal("codec names")
	}
}

type conflictFree struct{}

func (conflictFree) Kind() string { return "test.extra" }

// TestEncodeSharedMatchesEncode: for both codecs, fan-out frames built
// through a SharedBody are byte-identical to independently encoded ones —
// only the body encoding is amortised, never the per-peer header.
func TestEncodeSharedMatchesEncode(t *testing.T) {
	reg := binRegistry()
	bin := NewBinaryCodec(reg)
	msg := &binMsg{Name: "shared-body", Score: 4.5, N: 42}
	from := ids.FromString("fan-src")
	tos := []ids.ID{ids.FromString("peer-1"), ids.FromString("peer-2"), ids.FromString("peer-3")}
	for _, codec := range []SharedEncoder{reg, bin} {
		shared := &SharedBody{}
		for i, to := range tos {
			env := &Envelope{From: from, To: to, CorrID: uint64(i), Msg: msg}
			got, err := codec.EncodeShared(env, shared)
			if err != nil {
				t.Fatalf("%s EncodeShared: %v", codec.Name(), err)
			}
			want, err := codec.Encode(env)
			if err != nil {
				t.Fatalf("%s Encode: %v", codec.Name(), err)
			}
			if string(got) != string(want) {
				t.Fatalf("%s: shared frame %d differs from plain encode", codec.Name(), i)
			}
			dec, err := codec.Decode(got)
			if err != nil {
				t.Fatalf("%s Decode: %v", codec.Name(), err)
			}
			if dec.To != to || dec.Msg.(*binMsg).Name != "shared-body" {
				t.Fatalf("%s: decoded %+v", codec.Name(), dec)
			}
		}
	}
}

// TestEncodeSharedCachesBody proves the body really is encoded once: a
// (forbidden) mutation of the message between sends does not change
// later frames, because they reuse the cached body bytes.
func TestEncodeSharedCachesBody(t *testing.T) {
	reg := binRegistry()
	bin := NewBinaryCodec(reg)
	for _, codec := range []SharedEncoder{reg, bin} {
		msg := &binMsg{Name: "original", N: 1}
		shared := &SharedBody{}
		env := &Envelope{From: ids.FromString("x"), To: ids.FromString("y"), Msg: msg}
		first, err := codec.EncodeShared(env, shared)
		if err != nil {
			t.Fatal(err)
		}
		msg.Name = "mutated"
		second, err := codec.EncodeShared(env, shared)
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(second) {
			t.Fatalf("%s: body re-encoded instead of cached", codec.Name())
		}
	}
}
