package wire

import (
	"strings"
	"testing"

	"github.com/gloss/active/internal/ids"
)

type testMsg struct {
	Name  string `xml:"name"`
	Count int    `xml:"count"`
	Data  Bytes  `xml:"data,omitempty"`
}

func (testMsg) Kind() string { return "test.msg" }

type otherMsg struct {
	V string `xml:"v"`
}

func (otherMsg) Kind() string { return "test.other" }

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register(&testMsg{})
	r.Register(&otherMsg{})
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := testRegistry()
	env := &Envelope{
		From:   ids.FromString("alice"),
		To:     ids.FromString("bob"),
		CorrID: 42,
		Msg:    &testMsg{Name: "hello <&> world", Count: -3, Data: []byte{0, 1, 2, 255}},
	}
	b, err := r.Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := r.Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.From != env.From || got.To != env.To || got.CorrID != env.CorrID || got.IsReply != env.IsReply {
		t.Fatalf("envelope header mismatch: %+v vs %+v", got, env)
	}
	m, ok := got.Msg.(*testMsg)
	if !ok {
		t.Fatalf("decoded message type %T", got.Msg)
	}
	if m.Name != "hello <&> world" || m.Count != -3 || string(m.Data) != string([]byte{0, 1, 2, 255}) {
		t.Fatalf("decoded message mismatch: %+v", m)
	}
}

func TestDecodeReplyWithError(t *testing.T) {
	r := testRegistry()
	env := &Envelope{
		From:    ids.FromString("a"),
		To:      ids.FromString("b"),
		CorrID:  7,
		IsReply: true,
		Err:     "object not found",
	}
	b, err := r.Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := r.Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.IsReply || got.Err != "object not found" || got.Msg != nil {
		t.Fatalf("decoded: %+v", got)
	}
}

func TestUnknownKind(t *testing.T) {
	r := testRegistry()
	env := &Envelope{From: ids.FromString("a"), To: ids.FromString("b"), Msg: &testMsg{}}
	b, err := r.Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	empty := NewRegistry()
	if _, err := empty.Decode(b); err == nil {
		t.Fatalf("Decode with unknown kind: want error")
	}
}

func TestDuplicateRegistrationSameTypeOK(t *testing.T) {
	r := NewRegistry()
	r.Register(&testMsg{})
	r.Register(&testMsg{}) // idempotent
	defer func() {
		if recover() == nil {
			t.Fatalf("conflicting registration should panic")
		}
	}()
	type clash struct{ otherMsg }
	_ = clash{}
	// Register a different type under the same kind.
	r.Register(&conflictMsg{})
}

type conflictMsg struct{}

func (conflictMsg) Kind() string { return "test.msg" }

func TestKindsSorted(t *testing.T) {
	r := testRegistry()
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != "test.msg" || kinds[1] != "test.other" {
		t.Fatalf("Kinds = %v", kinds)
	}
}

func TestEnvelopeIsXML(t *testing.T) {
	r := testRegistry()
	b, err := r.Encode(&Envelope{From: ids.FromString("a"), To: ids.FromString("b"), Msg: &testMsg{Name: "x"}})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	s := string(b)
	if !strings.HasPrefix(s, "<env ") || !strings.Contains(s, `kind="test.msg"`) {
		t.Fatalf("not the expected XML envelope: %s", s)
	}
}

func TestSize(t *testing.T) {
	r := testRegistry()
	small := &Envelope{From: ids.FromString("a"), To: ids.FromString("b"), Msg: &testMsg{}}
	big := &Envelope{From: ids.FromString("a"), To: ids.FromString("b"), Msg: &testMsg{Data: make([]byte, 10000)}}
	ss, err := r.Size(small)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.Size(big)
	if err != nil {
		t.Fatal(err)
	}
	if sb <= ss {
		t.Fatalf("size of big (%d) should exceed small (%d)", sb, ss)
	}
}
