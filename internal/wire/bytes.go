package wire

import (
	"encoding/base64"
	"encoding/xml"
	"fmt"
)

// Bytes is a binary payload that XML-encodes as base64 character data.
// encoding/xml would otherwise emit raw bytes and corrupt non-UTF-8 data.
type Bytes []byte

var (
	_ xml.Marshaler   = Bytes(nil)
	_ xml.Unmarshaler = (*Bytes)(nil)
)

// MarshalXML implements xml.Marshaler.
func (b Bytes) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	s := base64.StdEncoding.EncodeToString(b)
	return e.EncodeElement(s, start)
}

// UnmarshalXML implements xml.Unmarshaler.
func (b *Bytes) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	var s string
	if err := d.DecodeElement(&s, &start); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return fmt.Errorf("wire: bad base64 payload: %w", err)
	}
	*b = raw
	return nil
}
