package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/leakcheck"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/wire"
)

type echoMsg struct {
	Text string `xml:"text,attr"`
}

func (echoMsg) Kind() string { return "test.echo" }

func testReg() *wire.Registry {
	reg := wire.NewRegistry()
	RegisterMessages(reg)
	reg.Register(&echoMsg{})
	plaxton.RegisterMessages(reg)
	store.RegisterMessages(reg)
	return reg
}

func newNode(t *testing.T, name string, reg *wire.Registry) *Node {
	t.Helper()
	n, err := Listen(ids.FromString(name), reg, Options{Region: "test", Seed: 1})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestSendAndHandle(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-a", reg)
	b := newNode(t, "tcp-b", reg)
	a.AddPeer(b.ID(), b.Addr())

	got := make(chan string, 1)
	b.Handle("test.echo", func(_ netapi.Ctx, from ids.ID, msg wire.Message) {
		if from != a.ID() {
			t.Errorf("from = %v", from)
		}
		got <- msg.(*echoMsg).Text
	})
	a.Send(b.ID(), &echoMsg{Text: "over tcp"})
	select {
	case s := <-got:
		if s != "over tcp" {
			t.Fatalf("payload = %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestRequestReplyOverTCP(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-req-a", reg)
	b := newNode(t, "tcp-req-b", reg)
	a.AddPeer(b.ID(), b.Addr())
	b.AddPeer(a.ID(), a.Addr())

	b.Handle("test.echo", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		ctx.Reply(&echoMsg{Text: "re: " + msg.(*echoMsg).Text})
	})
	done := make(chan string, 1)
	a.Request(b.ID(), &echoMsg{Text: "hi"}, 5*time.Second, func(reply wire.Message, err error) {
		if err != nil {
			done <- "err: " + err.Error()
			return
		}
		done <- reply.(*echoMsg).Text
	})
	select {
	case s := <-done:
		if s != "re: hi" {
			t.Fatalf("reply = %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never completed")
	}
}

func TestRequestTimeoutOverTCP(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-to-a", reg)
	// Peer address points at a port that is not listening.
	dead := ids.FromString("tcp-dead")
	a.AddPeer(dead, "127.0.0.1:1")
	done := make(chan error, 1)
	a.Request(dead, &echoMsg{}, 500*time.Millisecond, func(_ wire.Message, err error) {
		done <- err
	})
	select {
	case err := <-done:
		if !errors.Is(err, netapi.ErrTimeout) {
			t.Fatalf("err = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout never fired")
	}
}

func TestHelloGossipsAddresses(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-g-a", reg)
	b := newNode(t, "tcp-g-b", reg)
	c := newNode(t, "tcp-g-c", reg)
	// a knows b and c; b initially knows only a.
	a.AddPeer(b.ID(), b.Addr())
	a.AddPeer(c.ID(), c.Addr())
	b.AddPeer(a.ID(), a.Addr())

	// a dials b: hello carries c's address; b can then reach c.
	bGot := make(chan struct{}, 1)
	b.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) { bGot <- struct{}{} })
	cGot := make(chan struct{}, 1)
	c.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) { cGot <- struct{}{} })

	a.Send(b.ID(), &echoMsg{Text: "seed"})
	select {
	case <-bGot:
	case <-time.After(5 * time.Second):
		t.Fatal("seed message lost")
	}
	b.Send(c.ID(), &echoMsg{Text: "via gossip"})
	select {
	case <-cGot:
	case <-time.After(5 * time.Second):
		t.Fatal("gossiped address unusable")
	}
}

func TestLoopbackToSelf(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-self", reg)
	got := make(chan struct{}, 1)
	a.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) { got <- struct{}{} })
	a.Send(a.ID(), &echoMsg{})
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("loopback failed")
	}
}

func TestClockAfterAndStop(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-clock", reg)
	fired := make(chan struct{}, 1)
	a.Clock().After(50*time.Millisecond, func() { fired <- struct{}{} })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	tm := a.Clock().After(time.Hour, func() { t.Error("stopped timer fired") })
	if !tm.Stop() {
		t.Fatal("Stop reported false for pending timer")
	}
}

// TestOverlayAndStoreOverTCP boots a small Plaxton+store cluster over real
// sockets: the same protocol code that runs under simnet.
func TestOverlayAndStoreOverTCP(t *testing.T) {
	reg := testReg()
	const n = 4
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = newNode(t, "tcp-cluster-"+string(rune('a'+i)), reg)
	}
	// Full address book (in production the hello gossip fills this in).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].AddPeer(nodes[j].ID(), nodes[j].Addr())
			}
		}
	}
	overlays := make([]*plaxton.Overlay, n)
	stores := make([]*store.Store, n)
	for i := 0; i < n; i++ {
		overlays[i] = plaxton.New(nodes[i], reg, plaxton.Options{
			HeartbeatInterval: -1,
			LeafHalf:          4,
			JoinTimeout:       5 * time.Second,
		})
		stores[i] = store.New(nodes[i], overlays[i], store.Options{
			RepairInterval: -1,
			Replicas:       2,
			RequestTimeout: 3 * time.Second,
		})
	}
	nodes[0].Do(overlays[0].CreateNetwork)
	for i := 1; i < n; i++ {
		i := i
		joined := make(chan error, 1)
		nodes[i].Do(func() {
			overlays[i].Join(overlays[0].ID(), func(err error) { joined <- err })
		})
		select {
		case err := <-joined:
			if err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("join %d stuck", i)
		}
	}
	// Put from node 1, get from node 3.
	content := []byte("stored over real tcp sockets")
	putDone := make(chan error, 1)
	guidCh := make(chan ids.ID, 1)
	nodes[1].Do(func() {
		stores[1].Put(content, func(g ids.ID, err error) {
			guidCh <- g
			putDone <- err
		})
	})
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("put: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("put stuck")
	}
	guid := <-guidCh
	getDone := make(chan []byte, 1)
	nodes[3].Do(func() {
		stores[3].Get(guid, func(data []byte, err error) {
			if err != nil {
				t.Errorf("get: %v", err)
			}
			getDone <- data
		})
	})
	select {
	case data := <-getDone:
		if string(data) != string(content) {
			t.Fatalf("content mismatch: %q", data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("get stuck")
	}
}

func TestCloseIsIdempotentAndStopsTraffic(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	reg := testReg()
	a := newNode(t, "tcp-close-a", reg)
	b := newNode(t, "tcp-close-b", reg)
	a.AddPeer(b.ID(), b.Addr())
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Sends after close are silently discarded.
	a.Send(b.ID(), &echoMsg{})
}
