package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

// sendBurst queues n echo messages a→to in one actor turn (so they are
// all pending before the write loop drains) and returns when the
// receiver has counted them all.
func sendBurst(t *testing.T, a *Node, to ids.ID, n int, received *atomic.Uint64, want uint64) {
	t.Helper()
	a.Do(func() {
		for i := 0; i < n; i++ {
			a.transmit(&wire.Envelope{From: a.ID(), To: to, Msg: &echoMsg{Text: fmt.Sprintf("burst-%d", i)}}, nil)
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", received.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWriteBatchingCoalesces: frames queued behind a slow link startup
// ride one writev; at fan-out (burst) ≥ 8 the connection sees at least
// 2x fewer writes than frames, every frame still arrives intact, and the
// flush/batch counters add up.
func TestWriteBatchingCoalesces(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-batch-a", reg)
	b := newNode(t, "tcp-batch-b", reg)
	a.AddPeer(b.ID(), b.Addr())
	var received atomic.Uint64
	b.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) { received.Add(1) })

	const burst = 16
	// The first burst queues entirely while the connection dials, so the
	// write loop's first drain sees the whole backlog.
	sendBurst(t, a, b.ID(), burst, &received, burst)

	st := a.Stats()
	if st.Sent != burst {
		t.Fatalf("Sent = %d, want %d", st.Sent, burst)
	}
	if st.FlushWrites == 0 {
		t.Fatalf("no flushes recorded: %+v", st)
	}
	if st.FlushWrites*2 > st.Sent {
		t.Fatalf("batching ineffective: %d flushes for %d frames (want ≥2x fewer writes)", st.FlushWrites, st.Sent)
	}
	if st.BatchedFrames != st.Sent-st.FlushWrites {
		t.Fatalf("counter identity broken: Batched=%d, Sent-Flushes=%d", st.BatchedFrames, st.Sent-st.FlushWrites)
	}
}

// TestDisableBatchingReference: the one-frame-per-write path delivers the
// same traffic and counts one flush per frame, making FlushWrites/Sent
// the direct measure of the batching win.
func TestDisableBatchingReference(t *testing.T) {
	reg := testReg()
	a, err := Listen(ids.FromString("tcp-nobatch-a"), reg, Options{Region: "test", Seed: 1, DisableBatching: true})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b := newNode(t, "tcp-nobatch-b", reg)
	a.AddPeer(b.ID(), b.Addr())
	var received atomic.Uint64
	b.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) { received.Add(1) })

	const burst = 16
	sendBurst(t, a, b.ID(), burst, &received, burst)

	st := a.Stats()
	if st.FlushWrites != st.Sent {
		t.Fatalf("reference path flushed %d for %d frames, want one write per frame", st.FlushWrites, st.Sent)
	}
	if st.BatchedFrames != 0 {
		t.Fatalf("reference path batched %d frames, want 0", st.BatchedFrames)
	}
}

// TestSendManySharedBody: a multicast burst reaches every peer intact
// (the shared encoded body is stamped with per-peer headers).
func TestSendManySharedBody(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-many-a", reg)
	peers := make([]*Node, 3)
	tos := make([]ids.ID, 3)
	var received atomic.Uint64
	for i := range peers {
		peers[i] = newNode(t, fmt.Sprintf("tcp-many-p%d", i), reg)
		tos[i] = peers[i].ID()
		a.AddPeer(peers[i].ID(), peers[i].Addr())
		want := fmt.Sprintf("tcp-many-p%d", i)
		peers[i].Handle("test.echo", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
			if msg.(*echoMsg).Text != "multicast" {
				t.Errorf("%s got %q", want, msg.(*echoMsg).Text)
			}
			received.Add(1)
		})
	}
	for round := 0; round < 4; round++ {
		a.SendMany(tos, &echoMsg{Text: "multicast"})
	}
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < 12 {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of 12 multicast copies", received.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkTransportBatch pushes bursts of frames through a real TCP
// pair, batched vs one-frame-per-write, and reports writes per frame.
// The CI smoke run keeps both paths compiling and executable.
func BenchmarkTransportBatch(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"batch", false}, {"nobatch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			reg := testReg()
			a, err := Listen(ids.FromString("bench-batch-a-"+mode.name), reg,
				Options{Region: "bench", Seed: 1, DisableBatching: mode.disable})
			if err != nil {
				b.Fatalf("Listen: %v", err)
			}
			defer a.Close()
			dst, err := Listen(ids.FromString("bench-batch-b-"+mode.name), reg,
				Options{Region: "bench", Seed: 2})
			if err != nil {
				b.Fatalf("Listen: %v", err)
			}
			defer dst.Close()
			a.AddPeer(dst.ID(), dst.Addr())
			var received atomic.Uint64
			dst.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) { received.Add(1) })

			const burst = 16
			msg := &echoMsg{Text: "payload payload payload payload"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Do(func() {
					for j := 0; j < burst; j++ {
						a.transmit(&wire.Envelope{From: a.ID(), To: dst.ID(), Msg: msg}, nil)
					}
				})
				want := uint64((i + 1) * burst)
				for received.Load() < want {
					time.Sleep(50 * time.Microsecond)
				}
			}
			b.StopTimer()
			st := a.Stats()
			if st.Sent > 0 {
				b.ReportMetric(float64(st.FlushWrites)/float64(st.Sent), "writes/frame")
			}
		})
	}
}
