package transport

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

func newCodecNode(t *testing.T, name string, reg *wire.Registry, codec string) *Node {
	t.Helper()
	n, err := Listen(ids.FromString(name), reg, Options{Region: "test", Seed: 1, Codec: codec})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

// roundTrip sends one request a→b and waits for the reply.
func roundTrip(t *testing.T, a, b *Node, text string) {
	t.Helper()
	done := make(chan string, 1)
	a.Request(b.ID(), &echoMsg{Text: text}, 5*time.Second, func(reply wire.Message, err error) {
		if err != nil {
			done <- "err: " + err.Error()
			return
		}
		done <- reply.(*echoMsg).Text
	})
	select {
	case s := <-done:
		if s != "re: "+text {
			t.Fatalf("reply = %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never completed")
	}
}

// TestBinaryCodecNegotiated: two nodes preferring the binary codec
// settle on it after exchanging hellos. The first request still travels
// as XML (the dialer has not heard the peer's hello yet); once both
// address books carry the capability, traffic switches to binary frames.
func TestBinaryCodecNegotiated(t *testing.T) {
	reg := testReg()
	a := newCodecNode(t, "tcp-bin-a", reg, wire.CodecBinary)
	b := newCodecNode(t, "tcp-bin-b", reg, wire.CodecBinary)
	a.AddPeer(b.ID(), b.Addr())
	b.AddPeer(a.ID(), a.Addr())
	b.Handle("test.echo", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		ctx.Reply(&echoMsg{Text: "re: " + msg.(*echoMsg).Text})
	})
	roundTrip(t, a, b, "one") // b learns a's capability from a's hello
	roundTrip(t, a, b, "two") // a has b's hello by now: binary both ways
	deadline := time.Now().Add(5 * time.Second)
	for {
		sa, sb := a.Stats(), b.Stats()
		if sa.SentBinary >= 1 && sb.SentBinary >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("binary codec never negotiated: a=%+v b=%+v", sa, sb)
		}
		roundTrip(t, a, b, "again")
	}
}

// TestMixedCodecFallsBackToXML: a binary-preferring node keeps every
// frame XML toward a peer that did not opt in, and vice versa — the
// deployment interoperates with zero binary frames on the wire.
func TestMixedCodecFallsBackToXML(t *testing.T) {
	reg := testReg()
	a := newCodecNode(t, "tcp-mix-a", reg, wire.CodecBinary)
	b := newCodecNode(t, "tcp-mix-b", reg, wire.CodecXML)
	a.AddPeer(b.ID(), b.Addr())
	b.AddPeer(a.ID(), a.Addr())
	b.Handle("test.echo", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		ctx.Reply(&echoMsg{Text: "re: " + msg.(*echoMsg).Text})
	})
	for _, text := range []string{"one", "two", "three"} {
		roundTrip(t, a, b, text)
	}
	if sa := a.Stats(); sa.SentBinary != 0 {
		t.Fatalf("a sent %d binary frames to an XML-only peer", sa.SentBinary)
	}
	if sb := b.Stats(); sb.SentBinary != 0 {
		t.Fatalf("b sent %d binary frames despite preferring XML", sb.SentBinary)
	}
}

// TestCodecRegistryMismatchStaysXML: differing registries hash apart, so
// the binary fast path (whose interned kind ids depend on an identical
// sorted kind table) is never engaged even when both nodes prefer it.
func TestCodecRegistryMismatchStaysXML(t *testing.T) {
	regA := testReg()
	regB := testReg()
	regB.Register(&extraMsg{}) // perturb b's kind table
	a := newCodecNode(t, "tcp-hash-a", regA, wire.CodecBinary)
	b := newCodecNode(t, "tcp-hash-b", regB, wire.CodecBinary)
	a.AddPeer(b.ID(), b.Addr())
	b.AddPeer(a.ID(), a.Addr())
	b.Handle("test.echo", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		ctx.Reply(&echoMsg{Text: "re: " + msg.(*echoMsg).Text})
	})
	for _, text := range []string{"one", "two", "three"} {
		roundTrip(t, a, b, text)
	}
	if sa, sb := a.Stats(), b.Stats(); sa.SentBinary != 0 || sb.SentBinary != 0 {
		t.Fatalf("binary frames sent across mismatched registries: a=%d b=%d",
			sa.SentBinary, sb.SentBinary)
	}
}

// TestCodecRenegotiationMidSession: a peer flips from XML to binary
// mid-session. Node a starts with a registry missing one kind, so the
// kinds hashes differ and all traffic is XML despite both nodes
// preferring binary. Registering the missing kind and calling
// RefreshRegistry rebuilds a's codec and rebroadcasts its hello; both
// directions then converge on binary without reconnecting.
func TestCodecRenegotiationMidSession(t *testing.T) {
	regA := testReg()
	regB := testReg()
	regB.Register(&extraMsg{}) // a's table is short one kind
	a := newCodecNode(t, "tcp-reneg-a", regA, wire.CodecBinary)
	b := newCodecNode(t, "tcp-reneg-b", regB, wire.CodecBinary)
	a.AddPeer(b.ID(), b.Addr())
	b.AddPeer(a.ID(), a.Addr())
	b.Handle("test.echo", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		ctx.Reply(&echoMsg{Text: "re: " + msg.(*echoMsg).Text})
	})

	// Phase 1: hashes mismatch — everything stays XML.
	for _, text := range []string{"one", "two", "three"} {
		roundTrip(t, a, b, text)
	}
	if sa, sb := a.Stats(), b.Stats(); sa.SentBinary != 0 || sb.SentBinary != 0 {
		t.Fatalf("binary before renegotiation: a=%d b=%d", sa.SentBinary, sb.SentBinary)
	}

	// Phase 2: a learns the missing kind at runtime (a dynamic bundle
	// type) and renegotiates. The registries now hash identically.
	regA.Register(&extraMsg{})
	a.RefreshRegistry()

	deadline := time.Now().Add(5 * time.Second)
	for {
		sa, sb := a.Stats(), b.Stats()
		if sa.SentBinary >= 1 && sb.SentBinary >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("binary never negotiated after refresh: a=%+v b=%+v", sa, sb)
		}
		roundTrip(t, a, b, "again")
	}
}

func TestListenRejectsUnknownCodec(t *testing.T) {
	if _, err := Listen(ids.FromString("x"), testReg(), Options{Codec: "protobuf"}); err == nil {
		t.Fatal("want error for unknown codec")
	}
}

type extraMsg struct{}

func (extraMsg) Kind() string { return "test.extra" }
