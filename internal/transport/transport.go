// Package transport is the real-network counterpart of internal/simnet:
// a TCP implementation of netapi.Endpoint carrying length-prefixed XML
// envelopes (§4.7: open data formats and interfaces on the wire). The
// same protocol stacks — overlay, storage, pub/sub, bundle deployment,
// pipelines — run unchanged over it; cmd/activenode and cmd/glossctl use
// it for multi-process deployments.
//
// Concurrency model: all protocol callbacks (message handlers, timers,
// request completions) execute on a single actor goroutine per node,
// preserving the lock-free discipline protocol code is written against.
// Blocking I/O lives in per-connection reader/writer goroutines.
// Connections are unidirectional: a node dials a write-only connection to
// each peer it sends to, and accepts read-only connections; this removes
// all simultaneous-connect conflicts.
//
// The send path, by contrast, is thread-safe (netapi.ConcurrentSender):
// Send/SendMany encode on the caller's goroutine and push into the
// per-peer mutex-protected outbox directly, so a broker's fan-out worker
// pool can drive many destinations in parallel without detouring through
// the actor inbox. The peer table is guarded by an RWMutex whose only
// writer is the actor loop; peer dial state is atomic so any sender can
// kick a connection attempt. Stats counters are atomics.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/nodecfg"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// maxFrame bounds a single message frame (16 MiB).
const maxFrame = 16 << 20

// legacyOutboxFrames is the original fixed per-peer queue bound in
// frames, kept as the Options.LegacyOutbox reference path; the default
// outbox is byte-budgeted instead (Options.OutboxHighWater).
const legacyOutboxFrames = 256

// flushWatermark bounds the payload bytes coalesced into one flush, so a
// queue of large frames cannot grow an unbounded writev batch.
const flushWatermark = 256 << 10

// HelloMsg identifies the dialing node and gossips its address book.
// Codecs lists the wire codecs the sender is willing to speak beyond the
// default XML, and KindsHash fingerprints its registry: a receiver sends
// binary frames back only when the sender advertised "binary" with a
// matching hash, since the binary codec interns kind strings as indexes
// into the sorted registry table. The hello itself always travels as XML
// so negotiation needs no prior agreement.
type HelloMsg struct {
	ID        string      `xml:"id,attr"`
	Addr      string      `xml:"addr,attr"`
	Region    string      `xml:"region,attr"`
	X         float64     `xml:"x,attr"`
	Y         float64     `xml:"y,attr"`
	Codecs    []string    `xml:"codec,omitempty"`
	KindsHash string      `xml:"kinds,attr,omitempty"`
	Known     []HelloPeer `xml:"peer"`
}

// HelloPeer is one address-book entry.
type HelloPeer struct {
	ID   string `xml:"id,attr"`
	Addr string `xml:"addr,attr"`
}

// Kind implements wire.Message.
func (HelloMsg) Kind() string { return "transport.hello" }

// Control marks hellos as control-plane traffic (wire.ControlMessage):
// capability knowledge is updated only by hellos, so a budget-dropped
// one would strand a peer on a stale kinds hash until reconnect. The
// outbox therefore never drops hellos for watermark overflow.
func (HelloMsg) Control() bool { return true }

// RegisterMessages records transport message types in a wire registry.
// The hello handshake happens once per connection and must stay
// decodable by the oldest peer in a mixed fleet, so it is XML-only by
// design.
//
//vetactive:xmlfallback handshake is once-per-connection and version-bridging
func RegisterMessages(r *wire.Registry) { r.Register(&HelloMsg{}) }

// Options configure a TCP node.
type Options struct {
	// Common is the node-configuration block shared with the simulated
	// substrate (see internal/nodecfg): codec preference, outbox
	// watermarks and the per-peer budget override can be set once there
	// and handed to either transport.Options or simnet.Config. The
	// substrate-specific fields below shadow their Common counterparts;
	// when both are set the (older, deprecated-but-working) outer field
	// wins.
	nodecfg.Common
	// Listen is the TCP listen address (e.g. "127.0.0.1:0").
	Listen string
	// Region and Coord describe the node for placement policies.
	Region string
	Coord  netapi.Coord
	// Seed drives the node's RNG.
	Seed int64
	// DialTimeout bounds connection attempts. Default 3s.
	DialTimeout time.Duration
	// Codec is the preferred wire codec: wire.CodecXML (default) or
	// wire.CodecBinary. A node preferring binary advertises it in its
	// hello and uses it toward every peer that advertised it back with a
	// matching registry hash; all other traffic stays XML, so mixed
	// deployments interoperate frame by frame.
	Codec string
	// DisableBatching writes one frame per connection write (the
	// original reference path) instead of coalescing a peer's queued
	// frames into a single writev batch. Kept for the batching ablation
	// in E-T12 and the differential transport tests.
	DisableBatching bool
	// OutboxHighWater is the per-peer send-queue byte budget: sends are
	// accepted while queued bytes are below it and dropped above it
	// (Stats.DroppedOverflow). Default 1 MiB. Control frames (hellos,
	// subscription state) are exempt up to a 2x hard cap.
	OutboxHighWater int
	// OutboxLowWater is the relief threshold: once a saturated peer
	// queue drains back to it, the netapi.Backpressured drain callbacks
	// fire and Saturated flips false. Default OutboxHighWater/2; must
	// not exceed OutboxHighWater.
	OutboxLowWater int
	// PeerBudget, when non-nil, overrides the outbox watermarks per
	// peer — per-link-class tuning (generous budgets toward LAN
	// brokers, tight ones toward constrained WAN edges). Return
	// high <= 0 to keep the node-wide defaults; low <= 0 defaults to
	// high/2.
	PeerBudget func(peer ids.ID) (high, low int)
	// LegacyOutbox restores the original fixed 256-frame-count queue
	// bound (the pre-watermark reference path, measured against the
	// byte budget in E-T13). Control frames remain exempt; the
	// backpressure signal (Saturated/OnDrain) stays inactive, as it
	// did not exist on this path.
	LegacyOutbox bool
	// RedialBackoff is the initial delay before redialing a peer whose
	// connection failed while frames are still queued; it doubles per
	// consecutive failure, capped at 32x. Default 100ms.
	RedialBackoff time.Duration
	// RedialAttempts bounds consecutive connection failures before a
	// peer's queued frames are drained and counted as
	// Stats.DroppedDialFail, so a dead address cannot park memory
	// forever. Default 6.
	RedialAttempts int
	// Logger receives diagnostics; nil discards.
	Logger *slog.Logger
}

func (o *Options) applyDefaults() {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 3 * time.Second
	}
	// Adopt values from the embedded nodecfg.Common wherever the
	// shadowing substrate-local field was left unset.
	if o.Codec == "" {
		o.Codec = o.Common.Codec
	}
	if o.OutboxHighWater == 0 {
		o.OutboxHighWater = o.Common.OutboxHighWater
	}
	if o.OutboxLowWater == 0 {
		o.OutboxLowWater = o.Common.OutboxLowWater
	}
	if o.PeerBudget == nil && o.Common.PeerBudget != nil {
		o.PeerBudget = o.Common.PeerBudget
	}
	if !o.LegacyOutbox {
		o.LegacyOutbox = o.Common.LegacyOutbox
	}
	if o.OutboxHighWater == 0 {
		o.OutboxHighWater = 1 << 20
	}
	if o.OutboxLowWater == 0 {
		o.OutboxLowWater = o.OutboxHighWater / 2
	}
	if o.RedialBackoff == 0 {
		o.RedialBackoff = 100 * time.Millisecond
	}
	if o.RedialAttempts == 0 {
		o.RedialAttempts = 6
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
}

// Stats counts transport activity.
type Stats struct {
	Sent       uint64
	SentBinary uint64 // subset of Sent framed with the binary codec
	Received   uint64
	// Dropped is the total of the per-reason counters below, so overload
	// behaviour is attributable, not a blur.
	Dropped uint64
	// DroppedOverflow counts sends refused by a peer outbox at/above its
	// byte budget (or frame cap under Options.LegacyOutbox).
	DroppedOverflow uint64
	// DroppedNoAddr counts sends to destinations with no known address —
	// checked before the encode is paid.
	DroppedNoAddr uint64
	// DroppedEncode counts codec failures.
	DroppedEncode uint64
	// DroppedDialFail counts queued frames drained after RedialAttempts
	// consecutive connection failures to an unreachable peer.
	DroppedDialFail uint64
	Dials           uint64
	DialFails       uint64
	// FlushWrites counts connection flushes: each is one vectored write
	// (writev) covering every frame drained from the peer's queue at that
	// moment, however many coalesced. With DisableBatching it counts one
	// per frame, so FlushWrites/Sent measures the batching win directly.
	FlushWrites uint64
	// BatchedFrames counts frames that rode in a flush after the first —
	// each one saved a write the one-frame-per-write path would have paid.
	BatchedFrames uint64
}

const (
	peerIdle int32 = iota
	peerDialing
	peerConnected
)

type peer struct {
	id ids.ID
	ox *outbox
	// state is the connection lifecycle (peerIdle/peerDialing/
	// peerConnected), atomic so any sender can CAS idle→dialing and spawn
	// the dial itself instead of detouring through the actor inbox.
	// redialPending guards against stacking redial timers.
	state         atomic.Int32
	redialPending atomic.Bool
	// Routing fields guarded by Node.peersMu (writers: the actor loop
	// via mergeHello, and AddPeer; concurrent senders read under RLock).
	// addr is where to dial. wantsBinary and kindsHash record the codec
	// capabilities from the peer's most recent hello: binary frames flow
	// toward it only while it advertised the binary codec AND its registry
	// fingerprint matches ours — re-derived on every send, so either side
	// re-helloing after a runtime registry change flips the link codec
	// without reconnecting.
	addr        string
	wantsBinary bool
	kindsHash   string
	// Actor-confined: conn is the established write connection; connFails
	// counts consecutive dial/connection failures while frames were still
	// queued, reset on a successful connection.
	conn      net.Conn
	connFails int
}

type pendingReq struct {
	cb    netapi.ReplyFunc
	timer vclock.Timer
}

// binCodecState is the node's current fast-path codec and the registry
// fingerprint it was built from, swapped atomically on RefreshRegistry so
// reader goroutines never see a codec/hash torn pair.
type binCodecState struct {
	bin       *wire.BinaryCodec
	kindsHash string
}

// Node is a TCP-backed netapi.Endpoint.
type Node struct {
	info      netapi.NodeInfo
	reg       *wire.Registry
	codec     atomic.Pointer[binCodecState]
	preferBin bool
	opts      Options
	log       *slog.Logger
	ln        net.Listener
	start     time.Time
	rng       *rand.Rand

	inbox    chan func()
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup

	// Stats counters, all atomics: the send path runs on arbitrary
	// caller goroutines (netapi.ConcurrentSender), writer goroutines
	// count flushes, and the read loops count receives — none of them
	// detour through the inbox to count.
	c counters

	// peersMu guards the peer table and each peer's routing fields
	// (addr, wantsBinary, kindsHash). Writers are the actor loop
	// (mergeHello) and AddPeer; the concurrent send path reads under
	// RLock and never grows the table.
	peersMu sync.RWMutex
	peers   map[ids.ID]*peer

	// Actor-confined state.
	handlers map[string]netapi.Handler
	pending  map[uint64]*pendingReq
	nextCorr uint64
	drainFns []func(ids.ID)
}

// counters is Stats in atomic form; Stats() materialises a snapshot.
type counters struct {
	sent, sentBinary, received                                              atomic.Uint64
	dropped, droppedOverflow, droppedNoAddr, droppedEncode, droppedDialFail atomic.Uint64
	dials, dialFails                                                        atomic.Uint64
	flushWrites, batchedFrames                                              atomic.Uint64
}

var (
	_ netapi.Endpoint         = (*Node)(nil)
	_ netapi.Multicaster      = (*Node)(nil)
	_ netapi.Backpressured    = (*Node)(nil)
	_ netapi.ConcurrentSender = (*Node)(nil)
)

// Listen starts a TCP node. Register every message type with reg before
// calling — the binary fast-path codec interns the registry's kind table
// at this point. Call Close to release the node's goroutines.
func Listen(id ids.ID, reg *wire.Registry, opts Options) (*Node, error) {
	opts.applyDefaults()
	if opts.Codec != "" && opts.Codec != wire.CodecXML && opts.Codec != wire.CodecBinary {
		return nil, fmt.Errorf("transport: unknown codec %q (want %q or %q)", opts.Codec, wire.CodecXML, wire.CodecBinary)
	}
	if opts.OutboxLowWater > opts.OutboxHighWater {
		return nil, fmt.Errorf("transport: OutboxLowWater %d exceeds OutboxHighWater %d", opts.OutboxLowWater, opts.OutboxHighWater)
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", opts.Listen, err)
	}
	n := &Node{
		info:      netapi.NodeInfo{ID: id, Region: opts.Region, Coord: opts.Coord},
		reg:       reg,
		preferBin: opts.Codec == wire.CodecBinary,
		opts:      opts,
		log:       opts.Logger.With("node", id.Short()),
		ln:        ln,
		start:     time.Now(),
		rng:       rand.New(rand.NewSource(opts.Seed)),
		inbox:     make(chan func(), 1024),
		closed:    make(chan struct{}),
		handlers:  make(map[string]netapi.Handler),
		peers:     make(map[ids.ID]*peer),
		pending:   make(map[uint64]*pendingReq),
	}
	n.codec.Store(&binCodecState{bin: wire.NewBinaryCodec(reg), kindsHash: reg.KindsHash()})
	n.wg.Add(2)
	go n.actorLoop()
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID implements netapi.Endpoint.
func (n *Node) ID() ids.ID { return n.info.ID }

// Info implements netapi.Endpoint.
func (n *Node) Info() netapi.NodeInfo { return n.info }

// Rand implements netapi.Endpoint. Only protocol code on the actor loop
// may use it.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Clock implements netapi.Endpoint with wall-clock time; callbacks are
// posted to the actor loop.
func (n *Node) Clock() vclock.Clock { return (*realClock)(n) }

type realClock Node

func (c *realClock) Now() time.Duration { return time.Since(c.start) }

func (c *realClock) After(d time.Duration, fn func()) vclock.Timer {
	n := (*Node)(c)
	t := time.AfterFunc(d, func() { n.do(fn) })
	return realTimer{t}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// do posts fn to the actor loop (no-op after Close).
func (n *Node) do(fn func()) {
	select {
	case <-n.closed:
	case n.inbox <- fn:
	}
}

// Do schedules fn on the node's actor loop, where all protocol state may
// be touched safely. Code outside the loop (main goroutines, tests) must
// use Do to invoke protocol APIs such as Store.Get or Overlay.Join — the
// loop owns their state. No-op after Close.
func (n *Node) Do(fn func()) { n.do(fn) }

func (n *Node) actorLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case fn := <-n.inbox:
			fn()
		}
	}
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.closeOne.Do(func() {
		close(n.closed)
		_ = n.ln.Close()
	})
	n.wg.Wait()
	return nil
}

// Stats returns a snapshot of the atomic counters. It first rides one
// no-op through the actor loop so pending actor work (receives, hello
// merges) is reflected — callers historically used Stats as that
// barrier — then loads; counter pairs are exact at quiescence.
func (n *Node) Stats() Stats {
	done := make(chan struct{})
	n.do(func() { close(done) })
	select {
	case <-done:
	case <-n.closed:
	}
	return Stats{
		Sent:            n.c.sent.Load(),
		SentBinary:      n.c.sentBinary.Load(),
		Received:        n.c.received.Load(),
		Dropped:         n.c.dropped.Load(),
		DroppedOverflow: n.c.droppedOverflow.Load(),
		DroppedNoAddr:   n.c.droppedNoAddr.Load(),
		DroppedEncode:   n.c.droppedEncode.Load(),
		DroppedDialFail: n.c.droppedDialFail.Load(),
		Dials:           n.c.dials.Load(),
		DialFails:       n.c.dialFails.Load(),
		FlushWrites:     n.c.flushWrites.Load(),
		BatchedFrames:   n.c.batchedFrames.Load(),
	}
}

// ConcurrentSends implements netapi.ConcurrentSender: Send and SendMany
// may be called from any goroutine. Encode runs on the caller, the
// per-peer outbox is mutex-protected, stats are atomic, and dial
// kick-off CASes the peer state — nothing on the send path needs the
// actor loop. This is what lets the pub/sub broker's fan-out workers
// drive the transport in parallel.
func (n *Node) ConcurrentSends() bool { return true }

// Handle implements netapi.Endpoint.
func (n *Node) Handle(kind string, h netapi.Handler) {
	n.do(func() { n.handlers[kind] = h })
}

// AddPeer seeds the address book. Synchronous and safe from any
// goroutine: a Send immediately after AddPeer returns sees the address.
func (n *Node) AddPeer(id ids.ID, addr string) {
	n.peersMu.Lock()
	n.ensurePeerLocked(id).addr = addr
	n.peersMu.Unlock()
}

// Send implements netapi.Endpoint. Safe from any goroutine
// (ConcurrentSends): the frame is encoded and queued on the caller's
// goroutine before Send returns.
func (n *Node) Send(to ids.ID, msg wire.Message) {
	n.transmit(&wire.Envelope{From: n.info.ID, To: to, Msg: msg}, nil)
}

// SendMany implements netapi.Multicaster: the message body is encoded
// once per negotiated codec and shared across every destination frame
// (encode once, send many); only the per-peer envelope header differs.
// Safe from any goroutine; destinations are processed in argument order
// on the caller's goroutine, so per-destination FIFO holds per caller.
func (n *Node) SendMany(tos []ids.ID, msg wire.Message) {
	shared := &wire.SharedBody{}
	for _, to := range tos {
		n.transmit(&wire.Envelope{From: n.info.ID, To: to, Msg: msg}, shared)
	}
}

// Request implements netapi.Endpoint.
func (n *Node) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	n.do(func() {
		n.nextCorr++
		corr := n.nextCorr
		env := &wire.Envelope{From: n.info.ID, To: to, CorrID: corr, Msg: msg}
		p := &pendingReq{cb: cb}
		p.timer = n.Clock().After(timeout, func() {
			if _, ok := n.pending[corr]; ok {
				delete(n.pending, corr)
				cb(nil, netapi.ErrTimeout)
			}
		})
		n.pending[corr] = p
		n.transmit(env, nil)
	})
}

// --- sending (any goroutine) ---------------------------------------------------

// ensurePeerLocked inserts or returns the peer entry for id. Callers must
// hold peersMu for writing (actor loop only — the send path never grows
// the table).
func (n *Node) ensurePeerLocked(id ids.ID) *peer {
	p, ok := n.peers[id]
	if !ok {
		p = &peer{id: id, ox: n.newOutbox(id)}
		n.peers[id] = p
	}
	return p
}

// ensurePeer is ensurePeerLocked under the write lock. Actor loop only.
func (n *Node) ensurePeer(id ids.ID) *peer {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	return n.ensurePeerLocked(id)
}

// lookupPeer snapshots the routing fields needed by one transmit: the
// peer entry, its dial address and whether the binary fast path is
// negotiated against localHash. Safe from any goroutine.
func (n *Node) lookupPeer(to ids.ID, localHash string) (p *peer, addr string, binOK bool) {
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	p = n.peers[to]
	if p == nil {
		return nil, "", false
	}
	return p, p.addr, p.wantsBinary && p.kindsHash == localHash
}

// newOutbox builds a peer's queue with its link-class budget: the
// node-wide watermarks unless Options.PeerBudget overrides them.
func (n *Node) newOutbox(id ids.ID) *outbox {
	high, low := n.opts.OutboxHighWater, n.opts.OutboxLowWater
	if n.opts.PeerBudget != nil {
		if h, l := n.opts.PeerBudget(id); h > 0 {
			high = h
			if l > 0 && l <= h {
				low = l
			} else {
				low = h / 2
			}
		}
	}
	frameCap := 0
	if n.opts.LegacyOutbox {
		frameCap = legacyOutboxFrames
	}
	return newOutbox(high, low, frameCap)
}

// transmit encodes env and queues it toward its destination. Safe from
// any goroutine (netapi.ConcurrentSender): the encode runs on the
// caller, the outbox push is mutex-protected, counters are atomic, and
// a needed dial is kicked off via CAS on the peer state. Loopback
// dispatch is posted to the actor loop, where all protocol callbacks run.
func (n *Node) transmit(env *wire.Envelope, shared *wire.SharedBody) {
	select {
	case <-n.closed:
		return
	default:
	}
	if env.To == n.info.ID {
		// Local loopback.
		n.do(func() { n.dispatch(env) })
		return
	}
	// Route check first: no peer entry or no address means the frame
	// could never leave this node — drop before paying the encode, and
	// never grow the peer map for unroutable destinations.
	st := n.codec.Load()
	p, addr, binOK := n.lookupPeer(env.To, st.kindsHash)
	if p == nil || addr == "" {
		n.c.dropped.Add(1)
		n.c.droppedNoAddr.Add(1)
		n.log.Debug("no address for peer", "peer", env.To.Short())
		return
	}
	// Negotiated per peer: binary frames only toward peers whose hello
	// advertised the binary codec with a matching kind table.
	codec := wire.Codec(n.reg)
	if n.preferBin && binOK {
		codec = st.bin
	}
	var frame []byte
	var err error
	if se, ok := codec.(wire.SharedEncoder); ok && shared != nil {
		frame, err = se.EncodeShared(env, shared)
	} else {
		frame, err = codec.Encode(env)
	}
	if err != nil {
		n.c.dropped.Add(1)
		n.c.droppedEncode.Add(1)
		n.log.Warn("encode failed", "err", err)
		return
	}
	if p.ox.push(frame, wire.Control(env.Msg)) {
		n.c.sent.Add(1)
		if codec == st.bin {
			n.c.sentBinary.Add(1)
		}
	} else {
		n.c.dropped.Add(1)
		n.c.droppedOverflow.Add(1)
	}
	n.maybeDial(p)
}

// maybeDial starts a connection attempt toward p unless one is already
// in flight or a redial backoff owns the next attempt. Safe from any
// goroutine: the idle→dialing transition is a CAS, so exactly one
// concurrent sender wins the dial.
func (n *Node) maybeDial(p *peer) {
	if p.redialPending.Load() {
		return
	}
	n.peersMu.RLock()
	addr := p.addr
	n.peersMu.RUnlock()
	if addr == "" {
		return
	}
	if !p.state.CompareAndSwap(peerIdle, peerDialing) {
		return
	}
	select {
	case <-n.closed:
		// Late send racing Close: undo and bail rather than spawn a
		// goroutine Close will not wait for.
		p.state.Store(peerIdle)
		return
	default:
	}
	n.c.dials.Add(1)
	n.wg.Add(1)
	go n.dialPeer(p.id, addr)
}

// scheduleRedial arranges another dial after a connection failure while
// frames are still queued — without it a transient dial failure would
// strand those frames until an unrelated later transmit. Backoff doubles
// per consecutive failure; after Options.RedialAttempts failures the
// stranded frames are drained and counted (DroppedDialFail) so a dead
// address cannot park memory forever. Actor loop only.
func (n *Node) scheduleRedial(p *peer) {
	if p.ox.pendingFrames() == 0 {
		p.connFails = 0
		return
	}
	p.connFails++
	if p.connFails >= n.opts.RedialAttempts {
		dropped, drained := p.ox.dropAll()
		n.c.dropped.Add(uint64(dropped))
		n.c.droppedDialFail.Add(uint64(dropped))
		p.connFails = 0
		n.log.Warn("peer unreachable, dropping queued frames",
			"peer", p.id.Short(), "frames", dropped)
		if drained {
			n.fireDrain(p.id)
		}
		return
	}
	if !p.redialPending.CompareAndSwap(false, true) {
		return
	}
	// Cap the exponent, not the product: a large RedialAttempts must not
	// shift the backoff into overflow.
	shift := p.connFails - 1
	if shift > 5 {
		shift = 5
	}
	n.Clock().After(n.opts.RedialBackoff<<shift, func() {
		p.redialPending.Store(false)
		if p.ox.pendingFrames() > 0 {
			n.maybeDial(p)
		}
	})
}

// --- backpressure (netapi.Backpressured) -----------------------------------------

// QueuedBytes implements netapi.Backpressured. Safe from any goroutine
// (the ConcurrentSender widening of the Backpressured contract): the
// peer table is read under RLock and the byte counter is lock-protected.
// Under concurrent sends the value is an advisory snapshot.
func (n *Node) QueuedBytes(to ids.ID) int {
	n.peersMu.RLock()
	p, ok := n.peers[to]
	n.peersMu.RUnlock()
	if ok {
		return p.ox.queuedBytes()
	}
	return 0
}

// Saturated implements netapi.Backpressured. Safe from any goroutine;
// see QueuedBytes.
func (n *Node) Saturated(to ids.ID) bool {
	n.peersMu.RLock()
	p, ok := n.peers[to]
	n.peersMu.RUnlock()
	if ok {
		return p.ox.saturated()
	}
	return false
}

// OnDrain implements netapi.Backpressured; fn runs on the actor loop.
func (n *Node) OnDrain(fn func(to ids.ID)) {
	n.do(func() { n.drainFns = append(n.drainFns, fn) })
}

// fireDrain runs the registered drain callbacks. Actor loop only.
func (n *Node) fireDrain(id ids.ID) {
	for _, fn := range n.drainFns {
		fn(id)
	}
}

// notifyDrain posts a drain event from a writer goroutine.
func (n *Node) notifyDrain(id ids.ID) {
	n.do(func() { n.fireDrain(id) })
}

// dialPeer establishes the write-only connection to a peer. Failures
// hand the peer to scheduleRedial so frames queued during the attempt
// are not stranded until an unrelated later transmit.
func (n *Node) dialPeer(id ids.ID, addr string) {
	defer n.wg.Done()
	fail := func(countDial bool) {
		if countDial {
			n.c.dialFails.Add(1)
		}
		n.do(func() {
			n.peersMu.RLock()
			p, ok := n.peers[id]
			n.peersMu.RUnlock()
			if ok {
				p.state.Store(peerIdle)
				n.scheduleRedial(p)
			}
		})
	}
	conn, err := net.DialTimeout("tcp", addr, n.opts.DialTimeout)
	if err != nil {
		fail(true)
		return
	}
	hello, err := n.helloFrame()
	if err != nil || writeFrame(conn, hello) != nil {
		_ = conn.Close()
		fail(false)
		return
	}
	n.do(func() {
		n.peersMu.RLock()
		p, ok := n.peers[id]
		n.peersMu.RUnlock()
		if !ok {
			_ = conn.Close()
			return
		}
		p.conn = conn
		p.connFails = 0
		p.state.Store(peerConnected)
		n.wg.Add(1)
		go n.writeLoop(p, conn)
	})
}

// bookSnapshot lists known peer addresses. Safe from any goroutine.
func (n *Node) bookSnapshot() []HelloPeer {
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	var book []HelloPeer
	for id, p := range n.peers {
		if p.addr != "" {
			book = append(book, HelloPeer{ID: id.String(), Addr: p.addr})
		}
	}
	return book
}

// buildHello assembles this node's hello around a book snapshot. Safe off
// the actor loop: everything else it reads is immutable or atomic.
func (n *Node) buildHello(book []HelloPeer) *HelloMsg {
	hello := &HelloMsg{
		ID:     n.info.ID.String(),
		Addr:   n.Addr(),
		Region: n.info.Region,
		X:      n.info.Coord.X,
		Y:      n.info.Coord.Y,
		Known:  book,
	}
	if n.preferBin {
		hello.Codecs = []string{wire.CodecXML, wire.CodecBinary}
		hello.KindsHash = n.codec.Load().kindsHash
	}
	return hello
}

// helloEnvelope wraps a hello for the wire; hellos always travel as XML
// so negotiation needs no prior agreement.
func (n *Node) helloEnvelope(book []HelloPeer) ([]byte, error) {
	return n.reg.Encode(&wire.Envelope{From: n.info.ID, To: n.info.ID, Msg: n.buildHello(book)})
}

// helloFrame builds the dialer's hello (called from dial goroutine; the
// address book snapshot is fetched via the actor loop).
func (n *Node) helloFrame() ([]byte, error) {
	ch := make(chan []HelloPeer, 1)
	n.do(func() { ch <- n.bookSnapshot() })
	select {
	case book := <-ch:
		return n.helloEnvelope(book)
	case <-n.closed:
		return nil, errors.New("transport: closed")
	}
}

// RefreshRegistry rebuilds the binary fast-path codec after message
// kinds were registered at runtime (e.g. dynamic bundle types) and
// rebroadcasts the hello on every established link, so peers re-evaluate
// codec compatibility against the new kinds hash — adaptive
// renegotiation without reconnecting. Links whose peers now match flip
// to binary on this node's next sends; peers learn the new hash from the
// hello and flip their own sending side.
func (n *Node) RefreshRegistry() {
	n.do(func() {
		n.codec.Store(&binCodecState{bin: wire.NewBinaryCodec(n.reg), kindsHash: n.reg.KindsHash()})
		n.rehello()
	})
}

// rehello queues a fresh hello on every connected peer link. Actor loop
// only. A saturated outbox must not lose the renegotiation: capability
// knowledge is updated only by hellos, so a dropped one would leave the
// peer on the stale kinds hash until the next reconnect. Hellos are
// control frames, exempt from the byte budget, so only a queue at its
// hard cap can refuse one — those peers are tracked individually and
// only they are retried; peers that already got the hello are not
// re-broadcast to.
func (n *Node) rehello() { n.rehelloTo(nil) }

// rehelloTo sends the hello to every connected peer, or with a non-nil
// only set just to those peers. Actor loop only.
func (n *Node) rehelloTo(only map[ids.ID]bool) {
	frame, err := n.helloEnvelope(n.bookSnapshot())
	if err != nil {
		n.log.Warn("rehello encode failed", "err", err)
		return
	}
	var missed map[ids.ID]bool
	n.peersMu.RLock()
	conns := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		if p.state.Load() == peerConnected {
			conns = append(conns, p)
		}
	}
	n.peersMu.RUnlock()
	for _, p := range conns {
		if only != nil && !only[p.id] {
			continue
		}
		if !p.ox.push(frame, true) {
			if missed == nil {
				missed = make(map[ids.ID]bool)
			}
			missed[p.id] = true
		}
	}
	if len(missed) > 0 {
		n.Clock().After(100*time.Millisecond, func() { n.rehelloTo(missed) })
	}
}

func (n *Node) writeLoop(p *peer, conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	fail := func() {
		n.do(func() {
			p.conn = nil
			p.state.Store(peerIdle)
			// Frames queued after this batch was taken would otherwise be
			// stranded until an unrelated later transmit.
			n.scheduleRedial(p)
		})
	}
	// The reference path writes one frame per call; take still drains the
	// queue one frame at a time because any second frame overflows max=1.
	maxBytes := flushWatermark
	if n.opts.DisableBatching {
		maxBytes = 1
	}
	var (
		frames [][]byte
		hdrs   []byte
		iovecs [][]byte
	)
	for {
		// Drain before waiting: a fresh writeLoop may start with frames
		// already queued (and the notify token consumed by a previous
		// writer that died mid-flush).
		for {
			// Re-check shutdown between batches: a deep byte-budgeted
			// queue toward a slow receiver must not pin Close() until it
			// fully drains.
			select {
			case <-n.closed:
				return
			default:
			}
			var total int
			frames, total = p.ox.take(frames[:0], maxBytes)
			if len(frames) == 0 {
				break
			}
			// Write the whole batch with one writev. Each frame keeps its
			// own 4-byte length header, so the receiver's framing is
			// unchanged — only the syscall count drops.
			hdrs = hdrs[:0]
			for _, f := range frames {
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
				hdrs = append(hdrs, hdr[:]...)
			}
			iovecs = iovecs[:0]
			for i, f := range frames {
				iovecs = append(iovecs, hdrs[4*i:4*i+4], f)
			}
			bufs := net.Buffers(iovecs)
			_, err := bufs.WriteTo(conn)
			// Release the batch's bytes even on error: the frames left the
			// queue either way, and the gauge must not wedge saturated.
			if p.ox.release(total) {
				n.notifyDrain(p.id)
			}
			if err != nil {
				fail()
				return
			}
			n.c.flushWrites.Add(1)
			if len(frames) > 1 {
				n.c.batchedFrames.Add(uint64(len(frames) - 1))
			}
		}
		select {
		case <-n.closed:
			return
		case <-p.ox.notify:
		}
	}
}

// --- receiving -------------------------------------------------------------------

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				n.log.Debug("accept error", "err", err)
				continue
			}
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	// Close the connection promptly on shutdown.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-n.closed:
			_ = conn.Close()
		case <-stop:
		}
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		env, err := n.decodeFrame(frame)
		if err != nil {
			n.log.Warn("bad frame", "err", err)
			return
		}
		n.c.received.Add(1)
		n.do(func() {
			if hello, ok := env.Msg.(*HelloMsg); ok {
				n.mergeHello(hello)
				return
			}
			n.dispatch(env)
		})
	}
}

// decodeFrame parses one frame, sniffing the codec from the leading
// byte: binary frames start with wire.BinaryMagic, XML frames with '<'.
// Both are accepted on every connection regardless of preference, so a
// codec mismatch can never wedge a link mid-negotiation.
//
// Binary frames decode in borrow mode: each frame is a fresh buffer
// (readFrame) handed off wholesale to the decoded envelope, so strings
// can alias it instead of copying — the PubMsg/DeliverMsg hot path
// decodes an event without one allocation per attribute.
func (n *Node) decodeFrame(frame []byte) (*wire.Envelope, error) {
	if wire.IsBinaryFrame(frame) {
		return n.codec.Load().bin.DecodeBorrow(frame)
	}
	return n.reg.Decode(frame)
}

// mergeHello learns addresses and codec capabilities from a peer's hello.
// Capabilities are recorded verbatim and compared against our own kinds
// hash lazily at send time, so a later RefreshRegistry on either side
// re-evaluates every link without new state. Actor loop only (the sole
// peer-table writer); mutations hold the peersMu write lock so
// concurrent senders see consistent routing fields.
func (n *Node) mergeHello(h *HelloMsg) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if id, err := ids.Parse(h.ID); err == nil && h.Addr != "" {
		p := n.ensurePeerLocked(id)
		p.addr = h.Addr
		p.wantsBinary = false
		p.kindsHash = h.KindsHash
		for _, c := range h.Codecs {
			if c == wire.CodecBinary {
				p.wantsBinary = true
			}
		}
	}
	for _, k := range h.Known {
		id, err := ids.Parse(k.ID)
		if err != nil || k.Addr == "" || id == n.info.ID {
			continue
		}
		p := n.ensurePeerLocked(id)
		if p.addr == "" {
			p.addr = k.Addr
		}
	}
}

// dispatch runs on the actor loop.
func (n *Node) dispatch(env *wire.Envelope) {
	if env.IsReply {
		p, ok := n.pending[env.CorrID]
		if !ok {
			return
		}
		delete(n.pending, env.CorrID)
		p.timer.Stop()
		if env.Err != "" {
			p.cb(env.Msg, errors.New(env.Err))
			return
		}
		p.cb(env.Msg, nil)
		return
	}
	if env.Msg == nil {
		return
	}
	h, ok := n.handlers[env.Msg.Kind()]
	if !ok {
		n.log.Debug("unhandled message", "kind", env.Msg.Kind())
		return
	}
	h(&tcpCtx{node: n, env: env}, env.From, env.Msg)
}

type tcpCtx struct {
	node    *Node
	env     *wire.Envelope
	replied bool
}

func (c *tcpCtx) Reply(msg wire.Message) {
	if c.env.CorrID == 0 || c.replied {
		return
	}
	c.replied = true
	c.node.transmit(&wire.Envelope{
		From: c.node.info.ID, To: c.env.From,
		CorrID: c.env.CorrID, IsReply: true, Msg: msg,
	}, nil)
}

func (c *tcpCtx) ReplyErr(err error) {
	if c.env.CorrID == 0 || c.replied {
		return
	}
	c.replied = true
	c.node.transmit(&wire.Envelope{
		From: c.node.info.ID, To: c.env.From,
		CorrID: c.env.CorrID, IsReply: true, Err: err.Error(),
	}, nil)
}

// --- framing -------------------------------------------------------------------

func writeFrame(conn net.Conn, frame []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(frame)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
