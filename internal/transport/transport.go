// Package transport is the real-network counterpart of internal/simnet:
// a TCP implementation of netapi.Endpoint carrying length-prefixed XML
// envelopes (§4.7: open data formats and interfaces on the wire). The
// same protocol stacks — overlay, storage, pub/sub, bundle deployment,
// pipelines — run unchanged over it; cmd/activenode and cmd/glossctl use
// it for multi-process deployments.
//
// Concurrency model: all protocol callbacks (message handlers, timers,
// request completions) execute on a single actor goroutine per node,
// preserving the lock-free discipline protocol code is written against.
// Blocking I/O lives in per-connection reader/writer goroutines.
// Connections are unidirectional: a node dials a write-only connection to
// each peer it sends to, and accepts read-only connections; this removes
// all simultaneous-connect conflicts.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// maxFrame bounds a single message frame (16 MiB).
const maxFrame = 16 << 20

// outboxSize bounds per-peer queued frames; excess is dropped (the
// protocols tolerate loss).
const outboxSize = 256

// flushWatermark bounds the payload bytes coalesced into one flush, so a
// queue of large frames cannot grow an unbounded writev batch.
const flushWatermark = 256 << 10

// HelloMsg identifies the dialing node and gossips its address book.
// Codecs lists the wire codecs the sender is willing to speak beyond the
// default XML, and KindsHash fingerprints its registry: a receiver sends
// binary frames back only when the sender advertised "binary" with a
// matching hash, since the binary codec interns kind strings as indexes
// into the sorted registry table. The hello itself always travels as XML
// so negotiation needs no prior agreement.
type HelloMsg struct {
	ID        string      `xml:"id,attr"`
	Addr      string      `xml:"addr,attr"`
	Region    string      `xml:"region,attr"`
	X         float64     `xml:"x,attr"`
	Y         float64     `xml:"y,attr"`
	Codecs    []string    `xml:"codec,omitempty"`
	KindsHash string      `xml:"kinds,attr,omitempty"`
	Known     []HelloPeer `xml:"peer"`
}

// HelloPeer is one address-book entry.
type HelloPeer struct {
	ID   string `xml:"id,attr"`
	Addr string `xml:"addr,attr"`
}

// Kind implements wire.Message.
func (HelloMsg) Kind() string { return "transport.hello" }

// RegisterMessages records transport message types in a wire registry.
func RegisterMessages(r *wire.Registry) { r.Register(&HelloMsg{}) }

// Options configure a TCP node.
type Options struct {
	// Listen is the TCP listen address (e.g. "127.0.0.1:0").
	Listen string
	// Region and Coord describe the node for placement policies.
	Region string
	Coord  netapi.Coord
	// Seed drives the node's RNG.
	Seed int64
	// DialTimeout bounds connection attempts. Default 3s.
	DialTimeout time.Duration
	// Codec is the preferred wire codec: wire.CodecXML (default) or
	// wire.CodecBinary. A node preferring binary advertises it in its
	// hello and uses it toward every peer that advertised it back with a
	// matching registry hash; all other traffic stays XML, so mixed
	// deployments interoperate frame by frame.
	Codec string
	// DisableBatching writes one frame per connection write (the
	// original reference path) instead of coalescing a peer's queued
	// frames into a single writev batch. Kept for the batching ablation
	// in E-T12 and the differential transport tests.
	DisableBatching bool
	// Logger receives diagnostics; nil discards.
	Logger *slog.Logger
}

func (o *Options) applyDefaults() {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
}

// Stats counts transport activity.
type Stats struct {
	Sent       uint64
	SentBinary uint64 // subset of Sent framed with the binary codec
	Received   uint64
	Dropped    uint64 // no address, queue overflow, encode failures
	Dials      uint64
	DialFails  uint64
	// FlushWrites counts connection flushes: each is one vectored write
	// (writev) covering every frame drained from the peer's queue at that
	// moment, however many coalesced. With DisableBatching it counts one
	// per frame, so FlushWrites/Sent measures the batching win directly.
	FlushWrites uint64
	// BatchedFrames counts frames that rode in a flush after the first —
	// each one saved a write the one-frame-per-write path would have paid.
	BatchedFrames uint64
}

type peerState int

const (
	peerIdle peerState = iota
	peerDialing
	peerConnected
)

type peer struct {
	id    ids.ID
	addr  string
	state peerState
	out   chan []byte
	conn  net.Conn
	// wantsBinary and kindsHash record the codec capabilities from the
	// peer's most recent hello. Binary frames flow toward it only while
	// it advertised the binary codec AND its registry fingerprint matches
	// ours — re-derived on every send, so either side re-helloing after a
	// runtime registry change flips the link codec without reconnecting.
	wantsBinary bool
	kindsHash   string
}

// binaryOK reports whether the fast-path codec may be used toward p given
// this node's current registry fingerprint.
func (p *peer) binaryOK(localHash string) bool {
	return p.wantsBinary && p.kindsHash == localHash
}

type pendingReq struct {
	cb    netapi.ReplyFunc
	timer vclock.Timer
}

// binCodecState is the node's current fast-path codec and the registry
// fingerprint it was built from, swapped atomically on RefreshRegistry so
// reader goroutines never see a codec/hash torn pair.
type binCodecState struct {
	bin       *wire.BinaryCodec
	kindsHash string
}

// Node is a TCP-backed netapi.Endpoint.
type Node struct {
	info      netapi.NodeInfo
	reg       *wire.Registry
	codec     atomic.Pointer[binCodecState]
	preferBin bool
	opts      Options
	log       *slog.Logger
	ln        net.Listener
	start     time.Time
	rng       *rand.Rand

	inbox    chan func()
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup

	// Write-path counters, updated by writer goroutines (atomics, not
	// actor state, so flushes never detour through the inbox).
	flushWrites   atomic.Uint64
	batchedFrames atomic.Uint64

	// Actor-confined state.
	handlers map[string]netapi.Handler
	peers    map[ids.ID]*peer
	pending  map[uint64]*pendingReq
	nextCorr uint64
	stats    Stats
}

var (
	_ netapi.Endpoint    = (*Node)(nil)
	_ netapi.Multicaster = (*Node)(nil)
)

// Listen starts a TCP node. Register every message type with reg before
// calling — the binary fast-path codec interns the registry's kind table
// at this point. Call Close to release the node's goroutines.
func Listen(id ids.ID, reg *wire.Registry, opts Options) (*Node, error) {
	opts.applyDefaults()
	if opts.Codec != "" && opts.Codec != wire.CodecXML && opts.Codec != wire.CodecBinary {
		return nil, fmt.Errorf("transport: unknown codec %q (want %q or %q)", opts.Codec, wire.CodecXML, wire.CodecBinary)
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", opts.Listen, err)
	}
	n := &Node{
		info:      netapi.NodeInfo{ID: id, Region: opts.Region, Coord: opts.Coord},
		reg:       reg,
		preferBin: opts.Codec == wire.CodecBinary,
		opts:      opts,
		log:       opts.Logger.With("node", id.Short()),
		ln:        ln,
		start:     time.Now(),
		rng:       rand.New(rand.NewSource(opts.Seed)),
		inbox:     make(chan func(), 1024),
		closed:    make(chan struct{}),
		handlers:  make(map[string]netapi.Handler),
		peers:     make(map[ids.ID]*peer),
		pending:   make(map[uint64]*pendingReq),
	}
	n.codec.Store(&binCodecState{bin: wire.NewBinaryCodec(reg), kindsHash: reg.KindsHash()})
	n.wg.Add(2)
	go n.actorLoop()
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID implements netapi.Endpoint.
func (n *Node) ID() ids.ID { return n.info.ID }

// Info implements netapi.Endpoint.
func (n *Node) Info() netapi.NodeInfo { return n.info }

// Rand implements netapi.Endpoint. Only protocol code on the actor loop
// may use it.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Clock implements netapi.Endpoint with wall-clock time; callbacks are
// posted to the actor loop.
func (n *Node) Clock() vclock.Clock { return (*realClock)(n) }

type realClock Node

func (c *realClock) Now() time.Duration { return time.Since(c.start) }

func (c *realClock) After(d time.Duration, fn func()) vclock.Timer {
	n := (*Node)(c)
	t := time.AfterFunc(d, func() { n.do(fn) })
	return realTimer{t}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// do posts fn to the actor loop (no-op after Close).
func (n *Node) do(fn func()) {
	select {
	case <-n.closed:
	case n.inbox <- fn:
	}
}

// Do schedules fn on the node's actor loop, where all protocol state may
// be touched safely. Code outside the loop (main goroutines, tests) must
// use Do to invoke protocol APIs such as Store.Get or Overlay.Join — the
// loop owns their state. No-op after Close.
func (n *Node) Do(fn func()) { n.do(fn) }

func (n *Node) actorLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case fn := <-n.inbox:
			fn()
		}
	}
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.closeOne.Do(func() {
		close(n.closed)
		_ = n.ln.Close()
	})
	n.wg.Wait()
	return nil
}

// Stats returns a snapshot (posted through the actor loop for safety;
// the write-path counters are folded in from their atomics).
func (n *Node) Stats() Stats {
	ch := make(chan Stats, 1)
	n.do(func() { ch <- n.stats })
	select {
	case s := <-ch:
		s.FlushWrites = n.flushWrites.Load()
		s.BatchedFrames = n.batchedFrames.Load()
		return s
	case <-time.After(time.Second):
		return Stats{}
	}
}

// Handle implements netapi.Endpoint.
func (n *Node) Handle(kind string, h netapi.Handler) {
	n.do(func() { n.handlers[kind] = h })
}

// AddPeer seeds the address book.
func (n *Node) AddPeer(id ids.ID, addr string) {
	n.do(func() { n.ensurePeer(id).addr = addr })
}

// Send implements netapi.Endpoint.
func (n *Node) Send(to ids.ID, msg wire.Message) {
	env := &wire.Envelope{From: n.info.ID, To: to, Msg: msg}
	n.do(func() { n.transmit(env, nil) })
}

// SendMany implements netapi.Multicaster: the message body is encoded
// once per negotiated codec and shared across every destination frame
// (encode once, send many); only the per-peer envelope header differs.
func (n *Node) SendMany(tos []ids.ID, msg wire.Message) {
	targets := append([]ids.ID(nil), tos...)
	n.do(func() {
		shared := &wire.SharedBody{}
		for _, to := range targets {
			n.transmit(&wire.Envelope{From: n.info.ID, To: to, Msg: msg}, shared)
		}
	})
}

// Request implements netapi.Endpoint.
func (n *Node) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	n.do(func() {
		n.nextCorr++
		corr := n.nextCorr
		env := &wire.Envelope{From: n.info.ID, To: to, CorrID: corr, Msg: msg}
		p := &pendingReq{cb: cb}
		p.timer = n.Clock().After(timeout, func() {
			if _, ok := n.pending[corr]; ok {
				delete(n.pending, corr)
				cb(nil, netapi.ErrTimeout)
			}
		})
		n.pending[corr] = p
		n.transmit(env, nil)
	})
}

// --- sending (actor loop) ------------------------------------------------------

func (n *Node) ensurePeer(id ids.ID) *peer {
	p, ok := n.peers[id]
	if !ok {
		p = &peer{id: id, out: make(chan []byte, outboxSize)}
		n.peers[id] = p
	}
	return p
}

func (n *Node) transmit(env *wire.Envelope, shared *wire.SharedBody) {
	if env.To == n.info.ID {
		// Local loopback.
		n.dispatch(env)
		return
	}
	p := n.ensurePeer(env.To)
	// Negotiated per peer: binary frames only toward peers whose hello
	// advertised the binary codec with a matching kind table.
	st := n.codec.Load()
	codec := wire.Codec(n.reg)
	if n.preferBin && p.binaryOK(st.kindsHash) {
		codec = st.bin
	}
	var frame []byte
	var err error
	if se, ok := codec.(wire.SharedEncoder); ok && shared != nil {
		frame, err = se.EncodeShared(env, shared)
	} else {
		frame, err = codec.Encode(env)
	}
	if err != nil {
		n.stats.Dropped++
		n.log.Warn("encode failed", "err", err)
		return
	}
	if p.addr == "" {
		n.stats.Dropped++
		n.log.Debug("no address for peer", "peer", env.To.Short())
		return
	}
	select {
	case p.out <- frame:
		n.stats.Sent++
		if codec == st.bin {
			n.stats.SentBinary++
		}
	default:
		n.stats.Dropped++
	}
	if p.state == peerIdle {
		p.state = peerDialing
		n.stats.Dials++
		n.wg.Add(1)
		go n.dialPeer(p.id, p.addr)
	}
}

// dialPeer establishes the write-only connection to a peer.
func (n *Node) dialPeer(id ids.ID, addr string) {
	defer n.wg.Done()
	conn, err := net.DialTimeout("tcp", addr, n.opts.DialTimeout)
	if err != nil {
		n.do(func() {
			n.stats.DialFails++
			if p, ok := n.peers[id]; ok {
				p.state = peerIdle
			}
		})
		return
	}
	hello, err := n.helloFrame()
	if err != nil || writeFrame(conn, hello) != nil {
		_ = conn.Close()
		n.do(func() {
			if p, ok := n.peers[id]; ok {
				p.state = peerIdle
			}
		})
		return
	}
	n.do(func() {
		p, ok := n.peers[id]
		if !ok {
			_ = conn.Close()
			return
		}
		p.state = peerConnected
		p.conn = conn
		n.wg.Add(1)
		go n.writeLoop(p, conn)
	})
}

// bookSnapshot lists known peer addresses. Actor loop only.
func (n *Node) bookSnapshot() []HelloPeer {
	var book []HelloPeer
	for id, p := range n.peers {
		if p.addr != "" {
			book = append(book, HelloPeer{ID: id.String(), Addr: p.addr})
		}
	}
	return book
}

// buildHello assembles this node's hello around a book snapshot. Safe off
// the actor loop: everything else it reads is immutable or atomic.
func (n *Node) buildHello(book []HelloPeer) *HelloMsg {
	hello := &HelloMsg{
		ID:     n.info.ID.String(),
		Addr:   n.Addr(),
		Region: n.info.Region,
		X:      n.info.Coord.X,
		Y:      n.info.Coord.Y,
		Known:  book,
	}
	if n.preferBin {
		hello.Codecs = []string{wire.CodecXML, wire.CodecBinary}
		hello.KindsHash = n.codec.Load().kindsHash
	}
	return hello
}

// helloEnvelope wraps a hello for the wire; hellos always travel as XML
// so negotiation needs no prior agreement.
func (n *Node) helloEnvelope(book []HelloPeer) ([]byte, error) {
	return n.reg.Encode(&wire.Envelope{From: n.info.ID, To: n.info.ID, Msg: n.buildHello(book)})
}

// helloFrame builds the dialer's hello (called from dial goroutine; the
// address book snapshot is fetched via the actor loop).
func (n *Node) helloFrame() ([]byte, error) {
	ch := make(chan []HelloPeer, 1)
	n.do(func() { ch <- n.bookSnapshot() })
	select {
	case book := <-ch:
		return n.helloEnvelope(book)
	case <-n.closed:
		return nil, errors.New("transport: closed")
	}
}

// RefreshRegistry rebuilds the binary fast-path codec after message
// kinds were registered at runtime (e.g. dynamic bundle types) and
// rebroadcasts the hello on every established link, so peers re-evaluate
// codec compatibility against the new kinds hash — adaptive
// renegotiation without reconnecting. Links whose peers now match flip
// to binary on this node's next sends; peers learn the new hash from the
// hello and flip their own sending side.
func (n *Node) RefreshRegistry() {
	n.do(func() {
		n.codec.Store(&binCodecState{bin: wire.NewBinaryCodec(n.reg), kindsHash: n.reg.KindsHash()})
		n.rehello()
	})
}

// rehello queues a fresh hello on every connected peer link. Actor loop
// only. A saturated outbox must not lose the renegotiation: capability
// knowledge is updated only by hellos, so a dropped one would leave the
// peer on the stale kinds hash until the next reconnect — rehello
// retries shortly instead (re-sending to peers that already got one is
// harmless; mergeHello is idempotent).
func (n *Node) rehello() {
	frame, err := n.helloEnvelope(n.bookSnapshot())
	if err != nil {
		n.log.Warn("rehello encode failed", "err", err)
		return
	}
	retry := false
	for _, p := range n.peers {
		if p.state != peerConnected {
			continue
		}
		select {
		case p.out <- frame:
		default:
			retry = true
		}
	}
	if retry {
		n.Clock().After(100*time.Millisecond, n.rehello)
	}
}

func (n *Node) writeLoop(p *peer, conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	fail := func() {
		n.do(func() {
			p.state = peerIdle
			p.conn = nil
		})
	}
	var (
		frames [][]byte
		hdrs   []byte
		iovecs [][]byte
	)
	for {
		select {
		case <-n.closed:
			return
		case frame := <-p.out:
			if n.opts.DisableBatching {
				// Reference path: one frame per write call.
				if err := writeFrame(conn, frame); err != nil {
					fail()
					return
				}
				n.flushWrites.Add(1)
				continue
			}
			// Drain whatever else is already queued (up to the flush
			// watermark) and write the whole batch with one writev. Each
			// frame keeps its own 4-byte length header, so the receiver's
			// framing is unchanged — only the syscall count drops.
			frames = append(frames[:0], frame)
			total := len(frame)
		drain:
			for total < flushWatermark {
				select {
				case f := <-p.out:
					frames = append(frames, f)
					total += len(f)
				default:
					break drain
				}
			}
			hdrs = hdrs[:0]
			for _, f := range frames {
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
				hdrs = append(hdrs, hdr[:]...)
			}
			iovecs = iovecs[:0]
			for i, f := range frames {
				iovecs = append(iovecs, hdrs[4*i:4*i+4], f)
			}
			bufs := net.Buffers(iovecs)
			if _, err := bufs.WriteTo(conn); err != nil {
				fail()
				return
			}
			n.flushWrites.Add(1)
			if len(frames) > 1 {
				n.batchedFrames.Add(uint64(len(frames) - 1))
			}
		}
	}
}

// --- receiving -------------------------------------------------------------------

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				n.log.Debug("accept error", "err", err)
				continue
			}
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	// Close the connection promptly on shutdown.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-n.closed:
			_ = conn.Close()
		case <-stop:
		}
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		env, err := n.decodeFrame(frame)
		if err != nil {
			n.log.Warn("bad frame", "err", err)
			return
		}
		n.do(func() {
			n.stats.Received++
			if hello, ok := env.Msg.(*HelloMsg); ok {
				n.mergeHello(hello)
				return
			}
			n.dispatch(env)
		})
	}
}

// decodeFrame parses one frame, sniffing the codec from the leading
// byte: binary frames start with wire.BinaryMagic, XML frames with '<'.
// Both are accepted on every connection regardless of preference, so a
// codec mismatch can never wedge a link mid-negotiation.
func (n *Node) decodeFrame(frame []byte) (*wire.Envelope, error) {
	if wire.IsBinaryFrame(frame) {
		return n.codec.Load().bin.Decode(frame)
	}
	return n.reg.Decode(frame)
}

// mergeHello learns addresses and codec capabilities from a peer's hello.
// Capabilities are recorded verbatim and compared against our own kinds
// hash lazily at send time, so a later RefreshRegistry on either side
// re-evaluates every link without new state.
func (n *Node) mergeHello(h *HelloMsg) {
	if id, err := ids.Parse(h.ID); err == nil && h.Addr != "" {
		p := n.ensurePeer(id)
		p.addr = h.Addr
		p.wantsBinary = false
		p.kindsHash = h.KindsHash
		for _, c := range h.Codecs {
			if c == wire.CodecBinary {
				p.wantsBinary = true
			}
		}
	}
	for _, k := range h.Known {
		id, err := ids.Parse(k.ID)
		if err != nil || k.Addr == "" || id == n.info.ID {
			continue
		}
		p := n.ensurePeer(id)
		if p.addr == "" {
			p.addr = k.Addr
		}
	}
}

// dispatch runs on the actor loop.
func (n *Node) dispatch(env *wire.Envelope) {
	if env.IsReply {
		p, ok := n.pending[env.CorrID]
		if !ok {
			return
		}
		delete(n.pending, env.CorrID)
		p.timer.Stop()
		if env.Err != "" {
			p.cb(env.Msg, errors.New(env.Err))
			return
		}
		p.cb(env.Msg, nil)
		return
	}
	if env.Msg == nil {
		return
	}
	h, ok := n.handlers[env.Msg.Kind()]
	if !ok {
		n.log.Debug("unhandled message", "kind", env.Msg.Kind())
		return
	}
	h(&tcpCtx{node: n, env: env}, env.From, env.Msg)
}

type tcpCtx struct {
	node    *Node
	env     *wire.Envelope
	replied bool
}

func (c *tcpCtx) Reply(msg wire.Message) {
	if c.env.CorrID == 0 || c.replied {
		return
	}
	c.replied = true
	c.node.transmit(&wire.Envelope{
		From: c.node.info.ID, To: c.env.From,
		CorrID: c.env.CorrID, IsReply: true, Msg: msg,
	}, nil)
}

func (c *tcpCtx) ReplyErr(err error) {
	if c.env.CorrID == 0 || c.replied {
		return
	}
	c.replied = true
	c.node.transmit(&wire.Envelope{
		From: c.node.info.ID, To: c.env.From,
		CorrID: c.env.CorrID, IsReply: true, Err: err.Error(),
	}, nil)
}

// --- framing -------------------------------------------------------------------

func writeFrame(conn net.Conn, frame []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(frame)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
