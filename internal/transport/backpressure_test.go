package transport

import (
	"encoding/xml"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

// ctlMsg is a control-marked test message (wire.ControlMessage).
type ctlMsg struct {
	Text string `xml:"text,attr"`
}

func (ctlMsg) Kind() string  { return "test.ctl" }
func (ctlMsg) Control() bool { return true }

// badMsg cannot be XML-encoded (chan fields are unmarshalable), for the
// encode-failure drop path.
type badMsg struct {
	C chan int
}

func (badMsg) Kind() string { return "test.bad" }

// panicMsg panics if any codec ever tries to marshal it — proof the
// send path checked routability before paying the encode.
type panicMsg struct{}

func (panicMsg) Kind() string { return "test.panic" }

func (panicMsg) MarshalXML(*xml.Encoder, xml.StartElement) error {
	panic("encode must not be reached")
}

// TestOutboxWatermarks drives the queue structure directly through an
// accept→saturate→drain cycle.
func TestOutboxWatermarks(t *testing.T) {
	ox := newOutbox(100, 50, 0)
	frame := make([]byte, 60)

	if !ox.push(frame, false) {
		t.Fatal("first push below high watermark must be accepted")
	}
	// 60 queued < 100: still accepting; this push crosses the watermark.
	if !ox.push(frame, false) {
		t.Fatal("push while below high watermark must be accepted even if it overshoots")
	}
	if !ox.saturated() {
		t.Fatal("crossing the high watermark must latch saturation")
	}
	if ox.push(frame, false) {
		t.Fatal("push at/above high watermark must be dropped")
	}
	if got := ox.queuedBytes(); got != 120 {
		t.Fatalf("queuedBytes = %d, want 120", got)
	}

	// Control frames are exempt up to the hard cap (2x high = 200).
	if !ox.push(frame, true) {
		t.Fatal("control push must be exempt from the byte budget")
	}
	if !ox.push(frame, true) { // 180 < 200
		t.Fatal("control push below hard cap must be accepted")
	}
	if ox.push(frame, true) { // 240 >= 200
		t.Fatal("control push at hard cap must be refused")
	}

	// Drain: bytes stay counted between take and release.
	buf, total := ox.take(nil, 1<<20)
	if len(buf) != 4 || total != 240 {
		t.Fatalf("take = %d frames / %d bytes, want 4 / 240", len(buf), total)
	}
	if got := ox.queuedBytes(); got != 240 {
		t.Fatalf("in-flight bytes must stay on the gauge, got %d", got)
	}
	if ox.release(120) {
		t.Fatal("release above low watermark must not report a drain")
	}
	if !ox.release(120) {
		t.Fatal("release to/below low watermark after saturation must report a drain")
	}
	if ox.saturated() {
		t.Fatal("drain must clear saturation")
	}
	if ox.release(0) {
		t.Fatal("drain must be reported exactly once per saturation episode")
	}
}

// TestOutboxLegacyFrameCap: the reference path bounds frames, not
// bytes, and its control exemption is frame-based too — large data
// frames can exceed the byte hard cap without ever blocking a small
// control frame (control must never drop before data).
func TestOutboxLegacyFrameCap(t *testing.T) {
	ox := newOutbox(100, 50, 4) // byte hard cap would be 200
	for i := 0; i < 4; i++ {
		if !ox.push(make([]byte, 60), false) {
			t.Fatalf("push %d below the frame cap must be accepted", i)
		}
	}
	if ox.push(make([]byte, 60), false) {
		t.Fatal("push at the frame cap must be dropped")
	}
	// 240 queued bytes exceed the byte hard cap; the control frame must
	// still be admitted under the frame-based exemption (< 2x cap).
	if !ox.push(make([]byte, 10), true) {
		t.Fatal("control frames must be exempt from the frame cap regardless of queued bytes")
	}
	if ox.saturated() {
		t.Fatal("the legacy reference path must not report watermark saturation")
	}
	for i := 0; i < 3; i++ {
		if !ox.push(make([]byte, 10), true) {
			t.Fatalf("control push %d below 2x frame cap must be accepted", i)
		}
	}
	if ox.push(make([]byte, 10), true) {
		t.Fatal("control push at the 2x frame hard cap must be refused")
	}
}

// TestOutboxOversizedFrame: a frame larger than the whole budget still
// sends on an empty queue, and take always drains at least one frame.
func TestOutboxOversizedFrame(t *testing.T) {
	ox := newOutbox(100, 50, 0)
	if !ox.push(make([]byte, 500), false) {
		t.Fatal("oversized frame on an empty queue must be accepted")
	}
	if ox.push(make([]byte, 1), false) {
		t.Fatal("queue over budget must drop")
	}
	buf, total := ox.take(nil, 64)
	if len(buf) != 1 || total != 500 {
		t.Fatalf("take must return the oversized frame, got %d frames / %d bytes", len(buf), total)
	}
}

// TestTransmitNoAddrSkipsEncodeAndPeerMap: sends to unroutable
// destinations are dropped before the encode is paid (the panicMsg
// marshaller would panic) and never grow the peer map.
func TestTransmitNoAddrSkipsEncodeAndPeerMap(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-noaddr-a", reg)
	unknown := ids.FromString("tcp-noaddr-ghost")

	for i := 0; i < 3; i++ {
		a.Send(unknown, &panicMsg{})
	}
	peers := make(chan int, 1)
	a.Do(func() { peers <- len(a.peers) })
	if got := <-peers; got != 0 {
		t.Fatalf("peer map grew to %d entries for an unroutable destination, want 0", got)
	}
	st := a.Stats()
	if st.DroppedNoAddr != 3 || st.Dropped != 3 {
		t.Fatalf("DroppedNoAddr = %d, Dropped = %d, want 3, 3", st.DroppedNoAddr, st.Dropped)
	}
}

// TestTransmitEncodeFailureCounted: unencodable messages land in
// DroppedEncode, not a catch-all.
func TestTransmitEncodeFailureCounted(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-badenc-a", reg)
	b := newNode(t, "tcp-badenc-b", reg)
	a.AddPeer(b.ID(), b.Addr())

	a.Send(b.ID(), &badMsg{C: make(chan int)})
	st := a.Stats()
	if st.DroppedEncode != 1 || st.Dropped != 1 {
		t.Fatalf("DroppedEncode = %d, Dropped = %d, want 1, 1", st.DroppedEncode, st.Dropped)
	}
}

// TestWatermarkTransitions exercises the full accept→drop→drain cycle
// through transmit against a peer held in the dialing state (so nothing
// drains), then releases the link and asserts every accepted frame
// arrives and the drain callback fires.
func TestWatermarkTransitions(t *testing.T) {
	reg := testReg()
	reg.Register(&ctlMsg{})
	a, err := Listen(ids.FromString("tcp-wm-a"), reg, Options{
		Region: "test", Seed: 1,
		OutboxHighWater: 600, OutboxLowWater: 100,
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b := newNode(t, "tcp-wm-b", reg)
	a.AddPeer(b.ID(), b.Addr())

	var received atomic.Uint64
	count := func(netapi.Ctx, ids.ID, wire.Message) { received.Add(1) }
	b.Handle("test.echo", count)
	b.Handle("test.ctl", count)

	var drains atomic.Uint64
	a.OnDrain(func(to ids.ID) {
		if to == b.ID() {
			drains.Add(1)
		}
	})

	// Hold the peer in the dialing state so pushes queue without
	// draining; frames are ~100 B XML envelopes, so the 600-byte budget
	// accepts a handful and then saturates.
	park := make(chan struct{})
	a.Do(func() {
		a.peers[b.ID()].state.Store(peerDialing)
		close(park)
	})
	<-park

	const sends = 20
	a.Do(func() {
		for i := 0; i < sends; i++ {
			a.transmit(&wire.Envelope{From: a.ID(), To: b.ID(),
				Msg: &echoMsg{Text: fmt.Sprintf("wm-%02d", i)}}, nil)
		}
	})
	st := a.Stats()
	if st.DroppedOverflow == 0 {
		t.Fatalf("no overflow drops despite %d sends against a 600-byte budget: %+v", sends, st)
	}
	if st.Sent == 0 {
		t.Fatalf("every send dropped; watermark should admit frames below the budget: %+v", st)
	}
	if st.Sent+st.DroppedOverflow != sends {
		t.Fatalf("Sent (%d) + DroppedOverflow (%d) != %d sends", st.Sent, st.DroppedOverflow, sends)
	}
	sat := make(chan bool, 1)
	a.Do(func() { sat <- a.Saturated(b.ID()) })
	if !<-sat {
		t.Fatal("Saturated must latch while over the high watermark")
	}

	// Control frames are exempt from the budget.
	a.Do(func() {
		a.transmit(&wire.Envelope{From: a.ID(), To: b.ID(), Msg: &ctlMsg{Text: "exempt"}}, nil)
	})
	st2 := a.Stats()
	if st2.Sent != st.Sent+1 {
		t.Fatalf("control frame was dropped on a saturated queue: %+v", st2)
	}

	// Release the link: the queued frames drain, the receiver gets every
	// accepted frame, and the drain callback fires.
	accepted := st2.Sent
	a.Do(func() {
		p := a.peers[b.ID()]
		p.state.Store(peerIdle)
		a.maybeDial(p)
	})
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < accepted {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d accepted frames", received.Load(), accepted)
		}
		time.Sleep(time.Millisecond)
	}
	for drains.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drain callback never fired after the queue emptied")
		}
		time.Sleep(time.Millisecond)
	}
	qb := make(chan int, 1)
	a.Do(func() { qb <- a.QueuedBytes(b.ID()) })
	if got := <-qb; got != 0 {
		t.Fatalf("QueuedBytes = %d after full drain, want 0", got)
	}
}

// TestRedialBackoffRecovers: frames queued while a dial is in flight
// must not be stranded by a dial failure — the redial backoff retries
// and delivers once the destination comes up.
func TestRedialBackoffRecovers(t *testing.T) {
	reg := testReg()
	// Reserve an address, then close the listener so the first dials
	// fail with a real connection-refused.
	b := newNode(t, "tcp-redial-b", reg)
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := Listen(ids.FromString("tcp-redial-a"), reg, Options{
		Region: "test", Seed: 1,
		RedialBackoff: 20 * time.Millisecond, RedialAttempts: 50,
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	bID := ids.FromString("tcp-redial-b2")
	a.AddPeer(bID, addr)
	a.Send(bID, &echoMsg{Text: "parked"})

	// Let at least one dial fail, then bring the destination up at the
	// same address with the expected ID.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().DialFails == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dial never failed")
		}
		time.Sleep(time.Millisecond)
	}
	b2, err := Listen(bID, reg, Options{Listen: addr, Region: "test", Seed: 2})
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	got := make(chan string, 1)
	b2.Handle("test.echo", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
		got <- msg.(*echoMsg).Text
	})
	select {
	case s := <-got:
		if s != "parked" {
			t.Fatalf("payload = %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked frame never delivered: redial did not recover it")
	}
}

// TestRedialExhaustionDrains: a permanently dead peer cannot park
// frames forever — after RedialAttempts failures the queue is drained
// and the loss is attributed to DroppedDialFail.
func TestRedialExhaustionDrains(t *testing.T) {
	reg := testReg()
	a, err := Listen(ids.FromString("tcp-drain-a"), reg, Options{
		Region: "test", Seed: 1,
		RedialBackoff: 5 * time.Millisecond, RedialAttempts: 3,
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	dead := ids.FromString("tcp-drain-dead")
	a.AddPeer(dead, "127.0.0.1:1") // nothing listens here
	const sends = 5
	for i := 0; i < sends; i++ {
		a.Send(dead, &echoMsg{Text: "doomed"})
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().DroppedDialFail < sends {
		if time.Now().After(deadline) {
			t.Fatalf("stranded frames never drained: %+v", a.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := a.Stats()
	if st.DroppedDialFail != sends {
		t.Fatalf("DroppedDialFail = %d, want %d", st.DroppedDialFail, sends)
	}
	pending := make(chan int, 1)
	a.Do(func() { pending <- a.peers[dead].ox.pendingFrames() })
	if got := <-pending; got != 0 {
		t.Fatalf("%d frames still parked after redial exhaustion", got)
	}
}

// TestRehelloRetriesOnlyMissedPeers: when one connected peer's queue is
// at its hard cap, the rehello retry targets only that peer instead of
// re-broadcasting to everyone.
func TestRehelloRetriesOnlyMissedPeers(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-rh-a", reg)
	full := ids.FromString("tcp-rh-full")
	roomy := ids.FromString("tcp-rh-roomy")

	step := make(chan struct{})
	a.Do(func() {
		// Two fake-connected peers with no writer draining them: frame
		// counts are then exact.
		for _, id := range []ids.ID{full, roomy} {
			p := a.ensurePeer(id)
			p.addr = "127.0.0.1:1"
			p.state.Store(peerConnected)
		}
		// Saturate one queue past the control hard cap.
		pf := a.peers[full]
		for pf.ox.push(make([]byte, 1024), true) {
		}
		close(step)
	})
	<-step

	a.Do(func() { a.rehello() })
	counts := func() (f, r int) {
		ch := make(chan [2]int, 1)
		a.Do(func() {
			ch <- [2]int{a.peers[full].ox.pendingFrames(), a.peers[roomy].ox.pendingFrames()}
		})
		got := <-ch
		return got[0], got[1]
	}
	fullBase, roomyGot := counts()
	if roomyGot != 1 {
		t.Fatalf("roomy peer queued %d hellos after rehello, want 1", roomyGot)
	}

	// Free the saturated queue, then wait out the 100ms retry.
	a.Do(func() {
		pf := a.peers[full]
		buf, total := pf.ox.take(nil, 1<<30)
		pf.ox.release(total)
		_ = buf
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		fullGot, roomyAfter := counts()
		if fullGot == 1 && roomyAfter == 1 {
			break // retry reached only the peer that missed it
		}
		if roomyAfter > 1 {
			t.Fatalf("retry re-broadcast to a peer that already had the hello (%d queued)", roomyAfter)
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry never delivered to the missed peer (full=%d→%d, roomy=%d)", fullBase, fullGot, roomyAfter)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoFrameLossBelowHighWatermark is the race-enabled stress check:
// concurrent senders below the byte budget must lose nothing — every
// frame is delivered and every drop counter stays zero.
func TestNoFrameLossBelowHighWatermark(t *testing.T) {
	reg := testReg()
	a, err := Listen(ids.FromString("tcp-stress-a"), reg, Options{
		Region: "test", Seed: 1, OutboxHighWater: 8 << 20,
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b := newNode(t, "tcp-stress-b", reg)
	a.AddPeer(b.ID(), b.Addr())
	var received atomic.Uint64
	b.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) { received.Add(1) })

	const (
		senders = 8
		perSend = 250
	)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSend; i++ {
				a.Send(b.ID(), &echoMsg{Text: fmt.Sprintf("s%d-%d", g, i)})
			}
		}(g)
	}
	wg.Wait()
	const want = senders * perSend
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d frames below the high watermark", received.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	st := a.Stats()
	if st.Dropped != 0 || st.DroppedOverflow != 0 || st.DroppedNoAddr != 0 ||
		st.DroppedEncode != 0 || st.DroppedDialFail != 0 {
		t.Fatalf("drops below the high watermark: %+v", st)
	}
	if st.Sent != want {
		t.Fatalf("Sent = %d, want %d", st.Sent, want)
	}
}

// BenchmarkBackpressure pushes burst traffic at a deliberately slow
// receiver and reports the drop rate per outbox configuration: the
// legacy 256-frame bound against byte budgets. CI's hot-path smoke step
// runs it by name so the overload path cannot bit-rot.
func BenchmarkBackpressure(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"legacy-256frame", Options{LegacyOutbox: true}},
		{"budget-64k", Options{OutboxHighWater: 64 << 10}},
		{"budget-1m", Options{OutboxHighWater: 1 << 20}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			reg := testReg()
			opts := mode.opts
			opts.Region, opts.Seed = "bench", 1
			a, err := Listen(ids.FromString("bench-bp-a-"+mode.name), reg, opts)
			if err != nil {
				b.Fatalf("Listen: %v", err)
			}
			defer a.Close()
			dst, err := Listen(ids.FromString("bench-bp-b-"+mode.name), reg,
				Options{Region: "bench", Seed: 2})
			if err != nil {
				b.Fatalf("Listen: %v", err)
			}
			defer dst.Close()
			a.AddPeer(dst.ID(), dst.Addr())
			var received atomic.Uint64
			dst.Handle("test.echo", func(netapi.Ctx, ids.ID, wire.Message) {
				time.Sleep(20 * time.Microsecond) // slow consumer
				received.Add(1)
			})

			const burst = 256
			msg := &echoMsg{Text: "overload overload overload overload overload"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Do(func() {
					for j := 0; j < burst; j++ {
						a.transmit(&wire.Envelope{From: a.ID(), To: dst.ID(), Msg: msg}, nil)
					}
				})
			}
			b.StopTimer()
			// Wait out the accepted frames so per-iteration timing is fair
			// across runs.
			st := a.Stats()
			deadline := time.Now().Add(30 * time.Second)
			for received.Load() < st.Sent && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			attempts := st.Sent + st.DroppedOverflow
			if attempts > 0 {
				b.ReportMetric(100*float64(st.DroppedOverflow)/float64(attempts), "drop-pct")
			}
		})
	}
}
