package transport

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

// TestConcurrentSendsAdvertised pins the capability: the TCP transport
// must report ConcurrentSend so the broker's fan-out pool turns on over
// it, and the probe must flow through netapi.Capabilities.
func TestConcurrentSendsAdvertised(t *testing.T) {
	n := newNode(t, "tcp-caps", testReg())
	if !netapi.Capabilities(n).ConcurrentSend {
		t.Fatal("transport.Node must advertise netapi.Caps.ConcurrentSend")
	}
}

// TestSendManyConcurrentProducers drives SendMany from many goroutines
// at once — the netapi.ConcurrentSender contract — and asserts three
// things: no message is lost or double-counted (receiver count and
// Stats.Sent both exact), outbox accounting returns to zero, and
// per-destination FIFO holds per producing goroutine (each goroutine
// tags its messages with a sequence; the receiver asserts the sequence
// is monotone per tag even though goroutines interleave freely).
func TestSendManyConcurrentProducers(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-conc-a", reg)
	b := newNode(t, "tcp-conc-b", reg)
	c := newNode(t, "tcp-conc-c", reg)
	a.AddPeer(b.ID(), b.Addr())
	a.AddPeer(c.ID(), c.Addr())

	const producers = 8
	const perProducer = 200

	type rec struct {
		mu   sync.Mutex
		seen map[string][]int // producer tag -> sequence numbers in arrival order
		n    int
	}
	collect := func(r *rec) func(netapi.Ctx, ids.ID, wire.Message) {
		return func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
			parts := strings.SplitN(msg.(*echoMsg).Text, "/", 2)
			var seq int
			fmt.Sscanf(parts[1], "%d", &seq)
			r.mu.Lock()
			r.seen[parts[0]] = append(r.seen[parts[0]], seq)
			r.n++
			r.mu.Unlock()
		}
	}
	rb := &rec{seen: make(map[string][]int)}
	rc := &rec{seen: make(map[string][]int)}
	b.Handle("test.echo", collect(rb))
	c.Handle("test.echo", collect(rc))

	tos := []ids.ID{b.ID(), c.ID()}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				a.SendMany(tos, &echoMsg{Text: fmt.Sprintf("p%d/%d", p, i)})
			}
		}(p)
	}
	wg.Wait()

	want := producers * perProducer
	deadline := time.Now().Add(10 * time.Second)
	for {
		rb.mu.Lock()
		gotB := rb.n
		rb.mu.Unlock()
		rc.mu.Lock()
		gotC := rc.n
		rc.mu.Unlock()
		if gotB == want && gotC == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d (b) and %d/%d (c) frames", gotB, want, gotC, want)
		}
		time.Sleep(time.Millisecond)
	}

	st := a.Stats()
	if st.Sent != uint64(2*want) {
		t.Fatalf("Stats.Sent = %d, want %d (no frame may be lost or double-counted)", st.Sent, 2*want)
	}
	if st.Dropped != 0 {
		t.Fatalf("Stats.Dropped = %d under an uncontended 1MiB budget: %+v", st.Dropped, st)
	}
	if qb := a.QueuedBytes(b.ID()); qb != 0 {
		t.Fatalf("QueuedBytes(b) = %d after full drain, want 0", qb)
	}

	for name, r := range map[string]*rec{"b": rb, "c": rc} {
		r.mu.Lock()
		for tag, seqs := range r.seen {
			if len(seqs) != perProducer {
				t.Fatalf("%s saw %d messages from %s, want %d", name, len(seqs), tag, perProducer)
			}
			for i := 1; i < len(seqs); i++ {
				if seqs[i] != seqs[i-1]+1 {
					t.Fatalf("%s: FIFO violated for %s: seq %d followed %d at position %d",
						name, tag, seqs[i], seqs[i-1], i)
				}
			}
		}
		r.mu.Unlock()
	}
}

// TestConcurrentSendsWithChurn races SendMany producers against address
// churn (AddPeer re-seeding) and Backpressured gauge reads from other
// goroutines — the widened thread-safety surface. The assertion is the
// race detector plus conservation: every frame is either Sent or
// attributed to a drop reason.
func TestConcurrentSendsWithChurn(t *testing.T) {
	reg := testReg()
	a := newNode(t, "tcp-churn-a", reg)
	b := newNode(t, "tcp-churn-b", reg)
	a.AddPeer(b.ID(), b.Addr())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				a.SendMany([]ids.ID{b.ID()}, &echoMsg{Text: fmt.Sprintf("c%d/%d", p, i)})
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			a.AddPeer(b.ID(), b.Addr())
		}
	}()
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = a.Saturated(b.ID())
				_ = a.QueuedBytes(b.ID())
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	st := a.Stats()
	if st.Sent+st.Dropped != 4*300 {
		t.Fatalf("Sent (%d) + Dropped (%d) != %d sends", st.Sent, st.Dropped, 4*300)
	}
}
