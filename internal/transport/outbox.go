package transport

import "sync"

// outbox is one peer's pending-frame queue: a byte-budgeted deque with
// high/low watermarks replacing the old fixed 256-frame channel. Frames
// vary from ~40 B binary events to multi-KiB XML fallbacks, so a frame
// count bounded the real queued memory only to within ~100x; bytes are
// what a link class can absorb, so bytes are what the budget counts.
//
// Semantics:
//
//   - A non-control push is accepted iff queued bytes are strictly below
//     the high watermark (so one frame may overshoot it, and a frame
//     larger than the whole budget still sends on an empty queue).
//   - Control frames (hellos, subscription state — wire.ControlMessage)
//     are exempt from the budget and refused only at an absolute hard
//     cap, so a saturated link cannot lose the traffic that would let it
//     recover. The hard cap bounds memory if the link is truly wedged.
//   - Crossing the high watermark latches the outbox "over"; draining
//     back to the low watermark clears it and reports a drain event.
//     The hysteresis window is what Saturated exposes to protocol code.
//   - With frameCap > 0 (Options.LegacyOutbox) non-control pushes use
//     the original frame-count bound instead — the reference path the
//     byte budget is compared against in E-T13. The watermark signal
//     stays inactive on this path (the original code had none): the
//     byte low watermark would sit far above 256 small frames and make
//     Saturated/drain oscillate per flush.
//
// The mutex is shared by the actor loop (push, drop) and the peer's
// writer goroutine (take, release); all sections are O(batch) or O(1).
type outbox struct {
	mu     sync.Mutex
	frames [][]byte
	// bytes counts queued plus in-flight payload: take moves frames out
	// of the queue but their bytes stay counted until release, so the
	// gauge covers frames being written, not just frames waiting.
	bytes    int
	high     int
	low      int
	hard     int // absolute bound, control frames included
	frameCap int // >0: legacy frame-count bound for non-control pushes
	over     bool
	// notify wakes the writer goroutine; capacity 1, a token means
	// "frames may be queued".
	notify chan struct{}
}

func newOutbox(high, low, frameCap int) *outbox {
	return &outbox{
		high:     high,
		low:      low,
		hard:     2 * high,
		frameCap: frameCap,
		notify:   make(chan struct{}, 1),
	}
}

// push queues one encoded frame, reporting whether it was accepted.
// Rejections are budget drops: the caller counts them by reason.
func (ox *outbox) push(frame []byte, control bool) bool {
	ox.mu.Lock()
	var accept bool
	switch {
	case control && ox.frameCap > 0:
		// Legacy mode measures in frames, so the control hard cap must
		// too — a byte cap could refuse a small hello while large data
		// frames still fit under the frame cap, dropping control before
		// data.
		accept = len(ox.frames) < 2*ox.frameCap
	case control:
		accept = ox.bytes < ox.hard
	case ox.frameCap > 0:
		accept = len(ox.frames) < ox.frameCap
	default:
		accept = ox.bytes < ox.high
	}
	if !accept {
		if ox.frameCap == 0 {
			ox.over = true
		}
		ox.mu.Unlock()
		return false
	}
	ox.frames = append(ox.frames, frame)
	ox.bytes += len(frame)
	if ox.frameCap == 0 && ox.bytes >= ox.high {
		ox.over = true
	}
	ox.mu.Unlock()
	select {
	case ox.notify <- struct{}{}:
	default:
	}
	return true
}

// take removes queued frames into buf (reused across flushes) up to max
// payload bytes — always at least one frame, so an oversized frame still
// drains. The removed bytes stay counted until the matching release.
func (ox *outbox) take(buf [][]byte, max int) ([][]byte, int) {
	ox.mu.Lock()
	defer ox.mu.Unlock()
	if len(ox.frames) == 0 {
		return buf, 0
	}
	total, i := 0, 0
	for ; i < len(ox.frames); i++ {
		if i > 0 && total+len(ox.frames[i]) > max {
			break
		}
		total += len(ox.frames[i])
	}
	buf = append(buf, ox.frames[:i]...)
	rest := copy(ox.frames, ox.frames[i:])
	for j := rest; j < len(ox.frames); j++ {
		ox.frames[j] = nil
	}
	ox.frames = ox.frames[:rest]
	return buf, total
}

// release retires nbytes handed to the connection (written or lost with
// it) and reports whether the queue just drained back to the low
// watermark after having been over the high one — the caller then fires
// the backpressure-relief callbacks.
func (ox *outbox) release(nbytes int) (drained bool) {
	ox.mu.Lock()
	ox.bytes -= nbytes
	if ox.over && ox.bytes <= ox.low {
		ox.over = false
		drained = true
	}
	ox.mu.Unlock()
	return drained
}

// dropAll discards every queued frame (redial attempts exhausted),
// returning how many were dropped and whether that constituted a drain.
func (ox *outbox) dropAll() (dropped int, drained bool) {
	ox.mu.Lock()
	dropped = len(ox.frames)
	for i := range ox.frames {
		ox.bytes -= len(ox.frames[i])
		ox.frames[i] = nil
	}
	ox.frames = ox.frames[:0]
	if ox.over && ox.bytes <= ox.low {
		ox.over = false
		drained = true
	}
	ox.mu.Unlock()
	return dropped, drained
}

// queuedBytes is the backpressure gauge: queued plus in-flight payload.
func (ox *outbox) queuedBytes() int {
	ox.mu.Lock()
	defer ox.mu.Unlock()
	return ox.bytes
}

// pendingFrames counts frames waiting in the queue (excluding any batch
// currently being written).
func (ox *outbox) pendingFrames() int {
	ox.mu.Lock()
	defer ox.mu.Unlock()
	return len(ox.frames)
}

// saturated reports the hysteresis state: latched at the high watermark,
// cleared at the low one.
func (ox *outbox) saturated() bool {
	ox.mu.Lock()
	defer ox.mu.Unlock()
	return ox.over
}
