package store

import (
	"github.com/gloss/active/internal/wire"
)

// Compact binary wire forms for the storage plane. These are the hottest
// body-carrying messages in the system — puts, replicas, cache fills and
// chunk frames all move whole object payloads — so escaping the XML
// fallback's base64 inflation matters more here than anywhere else.

var (
	_ wire.BinaryMessage = (*PutMsg)(nil)
	_ wire.BinaryMessage = (*AckMsg)(nil)
	_ wire.BinaryMessage = (*GetMsg)(nil)
	_ wire.BinaryMessage = (*GetReplyMsg)(nil)
	_ wire.BinaryMessage = (*ReplicateMsg)(nil)
	_ wire.BinaryMessage = (*CacheFillMsg)(nil)
	_ wire.BinaryMessage = (*PushMsg)(nil)
	_ wire.BinaryMessage = (*PullMsg)(nil)
	_ wire.BinaryMessage = (*ManifestMsg)(nil)
	_ wire.BinaryMessage = (*ChunkMsg)(nil)
	_ wire.BinaryMessage = (*DigestReqMsg)(nil)
	_ wire.BinaryMessage = (*DigestMsg)(nil)
	_ wire.BinaryMessage = (*StatMsg)(nil)
	_ wire.BinaryMessage = (*StatReplyMsg)(nil)
)

// readBytesCopy reads a length-prefixed byte field and detaches it from
// the frame: stored objects, replicas and cache fills all outlive the
// buffer the BinReader aliases.
func readBytesCopy(r *wire.BinReader) wire.Bytes {
	raw := r.Bytes()
	if raw == nil {
		return nil
	}
	return append(wire.Bytes(nil), raw...)
}

// AppendWire implements wire.BinaryMessage.
func (m *PutMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.GUID)
	b = wire.AppendUvarint(b, m.ReqID)
	b = wire.AppendString(b, m.Origin)
	b = wire.AppendVarint(b, int64(m.Size))
	return wire.AppendBytes(b, m.Data)
}

// ParseWire implements wire.BinaryMessage.
func (m *PutMsg) ParseWire(r *wire.BinReader) error {
	m.GUID = r.String()
	m.ReqID = r.Uvarint()
	m.Origin = r.String()
	m.Size = int(r.Varint())
	m.Data = readBytesCopy(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *AckMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.ReqID)
	b = wire.AppendBool(b, m.OK)
	return wire.AppendString(b, m.Err)
}

// ParseWire implements wire.BinaryMessage.
func (m *AckMsg) ParseWire(r *wire.BinReader) error {
	m.ReqID = r.Uvarint()
	m.OK = r.Bool()
	m.Err = r.String()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *GetMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.GUID)
	return wire.AppendUvarint(b, m.ReqID)
}

// ParseWire implements wire.BinaryMessage.
func (m *GetMsg) ParseWire(r *wire.BinReader) error {
	m.GUID = r.String()
	m.ReqID = r.Uvarint()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *GetReplyMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.ReqID)
	b = wire.AppendString(b, m.GUID)
	b = wire.AppendBool(b, m.Found)
	b = wire.AppendBool(b, m.FromCache)
	b = wire.AppendVarint(b, int64(m.Hops))
	return wire.AppendBytes(b, m.Data)
}

// ParseWire implements wire.BinaryMessage.
func (m *GetReplyMsg) ParseWire(r *wire.BinReader) error {
	m.ReqID = r.Uvarint()
	m.GUID = r.String()
	m.Found = r.Bool()
	m.FromCache = r.Bool()
	m.Hops = int(r.Varint())
	m.Data = readBytesCopy(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *ReplicateMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.GUID)
	b = wire.AppendBool(b, m.Pin)
	return wire.AppendBytes(b, m.Data)
}

// ParseWire implements wire.BinaryMessage.
func (m *ReplicateMsg) ParseWire(r *wire.BinReader) error {
	m.GUID = r.String()
	m.Pin = r.Bool()
	m.Data = readBytesCopy(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *CacheFillMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.GUID)
	return wire.AppendBytes(b, m.Data)
}

// ParseWire implements wire.BinaryMessage.
func (m *CacheFillMsg) ParseWire(r *wire.BinReader) error {
	m.GUID = r.String()
	m.Data = readBytesCopy(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *PushMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.GUID)
	return wire.AppendString(b, m.Target)
}

// ParseWire implements wire.BinaryMessage.
func (m *PushMsg) ParseWire(r *wire.BinReader) error {
	m.GUID = r.String()
	m.Target = r.String()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *PullMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.GUID)
	return wire.AppendUvarint(b, m.ReqID)
}

// ParseWire implements wire.BinaryMessage.
func (m *PullMsg) ParseWire(r *wire.BinReader) error {
	m.GUID = r.String()
	m.ReqID = r.Uvarint()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *ManifestMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Xfer)
	b = wire.AppendString(b, m.GUID)
	b = wire.AppendVarint(b, int64(m.Purpose))
	b = wire.AppendVarint(b, int64(m.TotalLen))
	b = wire.AppendVarint(b, int64(m.Chunk))
	b = wire.AppendUvarint(b, m.Hash)
	b = wire.AppendUvarint(b, m.ReqID)
	b = wire.AppendVarint(b, int64(m.Hops))
	b = wire.AppendBool(b, m.FromCache)
	return wire.AppendBool(b, m.Pin)
}

// ParseWire implements wire.BinaryMessage.
func (m *ManifestMsg) ParseWire(r *wire.BinReader) error {
	m.Xfer = r.Uvarint()
	m.GUID = r.String()
	m.Purpose = int(r.Varint())
	m.TotalLen = int(r.Varint())
	m.Chunk = int(r.Varint())
	m.Hash = r.Uvarint()
	m.ReqID = r.Uvarint()
	m.Hops = int(r.Varint())
	m.FromCache = r.Bool()
	m.Pin = r.Bool()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *ChunkMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Xfer)
	b = wire.AppendVarint(b, int64(m.Off))
	return wire.AppendBytes(b, m.Data)
}

// ParseWire implements wire.BinaryMessage.
func (m *ChunkMsg) ParseWire(r *wire.BinReader) error {
	m.Xfer = r.Uvarint()
	m.Off = int(r.Varint())
	// Copied, not aliased: the handler may drop the chunk (unknown
	// transfer, duplicate) after the frame buffer is reused, and the XML
	// path always yields detached bytes — the two decode paths must agree.
	m.Data = readBytesCopy(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *DigestReqMsg) AppendWire(b []byte) []byte { return wire.AppendUvarint(b, m.Round) }

// ParseWire implements wire.BinaryMessage.
func (m *DigestReqMsg) ParseWire(r *wire.BinReader) error {
	m.Round = r.Uvarint()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *DigestMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Round)
	b = wire.AppendUvarint(b, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b = wire.AppendString(b, e.GUID)
		b = wire.AppendVarint(b, int64(e.Len))
		b = wire.AppendUvarint(b, e.Hash)
	}
	return b
}

// ParseWire implements wire.BinaryMessage.
func (m *DigestMsg) ParseWire(r *wire.BinReader) error {
	m.Round = r.Uvarint()
	n := r.Count()
	var entries []DigestEntry
	for i := 0; i < n && r.Err() == nil; i++ {
		entries = append(entries, DigestEntry{
			GUID: r.String(),
			Len:  int(r.Varint()),
			Hash: r.Uvarint(),
		})
	}
	m.Entries = entries
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *StatMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.GUID)
	return wire.AppendUvarint(b, m.ReqID)
}

// ParseWire implements wire.BinaryMessage.
func (m *StatMsg) ParseWire(r *wire.BinReader) error {
	m.GUID = r.String()
	m.ReqID = r.Uvarint()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *StatReplyMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.ReqID)
	b = wire.AppendBool(b, m.Found)
	return wire.AppendVarint(b, int64(m.Len))
}

// ParseWire implements wire.BinaryMessage.
func (m *StatReplyMsg) ParseWire(r *wire.BinReader) error {
	m.ReqID = r.Uvarint()
	m.Found = r.Bool()
	m.Len = int(r.Varint())
	return r.Err()
}
