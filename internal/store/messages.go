package store

import (
	"github.com/gloss/active/internal/wire"
)

// PutMsg is routed toward an object's root to store it. Large objects
// travel without Data: Size announces the body length and the root pulls
// the bytes directly from Origin (PullMsg → manifest/chunk stream), so
// the routed control frame stays small and the object never crosses the
// overlay hop by hop.
type PutMsg struct {
	GUID   string     `xml:"guid,attr"`
	ReqID  uint64     `xml:"req,attr"`
	Origin string     `xml:"origin,attr"`
	Size   int        `xml:"size,attr,omitempty"`
	Data   wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (PutMsg) Kind() string { return "store.put" }

// AckMsg confirms (or rejects) a put, sent directly to the origin.
type AckMsg struct {
	ReqID uint64 `xml:"req,attr"`
	OK    bool   `xml:"ok,attr"`
	Err   string `xml:"err,attr,omitempty"`
}

// Kind implements wire.Message.
func (AckMsg) Kind() string { return "store.ack" }

// GetMsg is routed (traced) toward an object's root to fetch it; any node
// holding a copy answers from the path.
type GetMsg struct {
	GUID  string `xml:"guid,attr"`
	ReqID uint64 `xml:"req,attr"`
}

// Kind implements wire.Message.
func (GetMsg) Kind() string { return "store.get" }

// GetReplyMsg answers a get, sent directly to the origin.
type GetReplyMsg struct {
	ReqID     uint64     `xml:"req,attr"`
	GUID      string     `xml:"guid,attr"`
	Found     bool       `xml:"found,attr"`
	FromCache bool       `xml:"cache,attr,omitempty"`
	Hops      int        `xml:"hops,attr"`
	Data      wire.Bytes `xml:"data,omitempty"`
}

// Kind implements wire.Message.
func (GetReplyMsg) Kind() string { return "store.getReply" }

// ReplicateMsg pushes a replica to a leaf-set neighbour. Pin marks a
// policy-placed copy (deliverPush targets chosen by the §4.6 placement
// policies, deliberately outside the k-closest range) that replica GC
// must not reclaim.
type ReplicateMsg struct {
	GUID string     `xml:"guid,attr"`
	Pin  bool       `xml:"pin,attr,omitempty"`
	Data wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (ReplicateMsg) Kind() string { return "store.replicate" }

// CacheFillMsg seeds a path node's promiscuous cache.
type CacheFillMsg struct {
	GUID string     `xml:"guid,attr"`
	Data wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (CacheFillMsg) Kind() string { return "store.cacheFill" }

// PushMsg is routed toward an object's root, instructing it to push a
// replica to Target — the primitive the data placement policies of §4.6
// (latency-reduction, backup) are built on.
type PushMsg struct {
	GUID   string `xml:"guid,attr"`
	Target string `xml:"target,attr"`
}

// Kind implements wire.Message.
func (PushMsg) Kind() string { return "store.push" }

// PullMsg asks a put's origin to stream the announced object directly to
// the sender (the object's root). Piri-style: routing decides placement,
// the bytes travel point-to-point.
type PullMsg struct {
	GUID  string `xml:"guid,attr"`
	ReqID uint64 `xml:"req,attr"`
}

// Kind implements wire.Message.
func (PullMsg) Kind() string { return "store.pull" }

// ManifestMsg opens a chunked transfer: the receiver allocates reassembly
// state for TotalLen bytes arriving as Chunk-sized ChunkMsg frames.
// Purpose selects what happens on completion (replicate, cache fill, get
// reply, put), with ReqID/Hops/FromCache carrying the purpose-specific
// context a whole-object message would have carried inline.
type ManifestMsg struct {
	Xfer      uint64 `xml:"xfer,attr"`
	GUID      string `xml:"guid,attr"`
	Purpose   int    `xml:"purpose,attr"`
	TotalLen  int    `xml:"len,attr"`
	Chunk     int    `xml:"chunk,attr"`
	Hash      uint64 `xml:"hash,attr"`
	ReqID     uint64 `xml:"req,attr,omitempty"`
	Hops      int    `xml:"hops,attr,omitempty"`
	FromCache bool   `xml:"cache,attr,omitempty"`
	Pin       bool   `xml:"pin,attr,omitempty"`
}

// Kind implements wire.Message.
func (ManifestMsg) Kind() string { return "store.manifest" }

// ChunkMsg carries one offset-addressed slice of a chunked transfer.
// Deliberately NOT a wire.ControlMessage: chunks are data and must feel
// outbox backpressure (a saturated link sheds them; the transfer times
// out and repair retries) rather than bypass the byte budget.
type ChunkMsg struct {
	Xfer uint64     `xml:"xfer,attr"`
	Off  int        `xml:"off,attr"`
	Data wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (ChunkMsg) Kind() string { return "store.chunk" }

// DigestReqMsg asks a replica holder for a summary of everything it
// stores, so the requesting root can push only missing/stale replicas.
type DigestReqMsg struct {
	Round uint64 `xml:"round,attr"`
}

// Kind implements wire.Message.
func (DigestReqMsg) Kind() string { return "store.digestReq" }

// DigestEntry summarises one stored object: enough for the root to decide
// whether its replica is present and current without moving the bytes.
type DigestEntry struct {
	GUID string `xml:"guid,attr"`
	Len  int    `xml:"len,attr"`
	Hash uint64 `xml:"hash,attr"`
}

// DigestMsg answers a DigestReqMsg with the holder's full object summary.
type DigestMsg struct {
	Round   uint64        `xml:"round,attr"`
	Entries []DigestEntry `xml:"e"`
}

// Kind implements wire.Message.
func (DigestMsg) Kind() string { return "store.digest" }

// StatMsg is routed toward an object's root to probe existence without
// transferring the body — the cheap "is this fragment still alive?" check
// behind erasure-coded repair.
type StatMsg struct {
	GUID  string `xml:"guid,attr"`
	ReqID uint64 `xml:"req,attr"`
}

// Kind implements wire.Message.
func (StatMsg) Kind() string { return "store.stat" }

// StatReplyMsg answers a StatMsg, sent directly to the probe's origin.
type StatReplyMsg struct {
	ReqID uint64 `xml:"req,attr"`
	Found bool   `xml:"found,attr"`
	Len   int    `xml:"len,attr"`
}

// Kind implements wire.Message.
func (StatReplyMsg) Kind() string { return "store.statReply" }

// RegisterMessages records all storage message types in a wire registry.
func RegisterMessages(r *wire.Registry) {
	r.Register(&PutMsg{})
	r.Register(&AckMsg{})
	r.Register(&GetMsg{})
	r.Register(&GetReplyMsg{})
	r.Register(&ReplicateMsg{})
	r.Register(&CacheFillMsg{})
	r.Register(&PushMsg{})
	r.Register(&PullMsg{})
	r.Register(&ManifestMsg{})
	r.Register(&ChunkMsg{})
	r.Register(&DigestReqMsg{})
	r.Register(&DigestMsg{})
	r.Register(&StatMsg{})
	r.Register(&StatReplyMsg{})
}
