package store

import (
	"github.com/gloss/active/internal/wire"
)

// PutMsg is routed toward an object's root to store it.
type PutMsg struct {
	GUID   string     `xml:"guid,attr"`
	ReqID  uint64     `xml:"req,attr"`
	Origin string     `xml:"origin,attr"`
	Data   wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (PutMsg) Kind() string { return "store.put" }

// AckMsg confirms (or rejects) a put, sent directly to the origin.
type AckMsg struct {
	ReqID uint64 `xml:"req,attr"`
	OK    bool   `xml:"ok,attr"`
	Err   string `xml:"err,attr,omitempty"`
}

// Kind implements wire.Message.
func (AckMsg) Kind() string { return "store.ack" }

// GetMsg is routed (traced) toward an object's root to fetch it; any node
// holding a copy answers from the path.
type GetMsg struct {
	GUID  string `xml:"guid,attr"`
	ReqID uint64 `xml:"req,attr"`
}

// Kind implements wire.Message.
func (GetMsg) Kind() string { return "store.get" }

// GetReplyMsg answers a get, sent directly to the origin.
type GetReplyMsg struct {
	ReqID     uint64     `xml:"req,attr"`
	GUID      string     `xml:"guid,attr"`
	Found     bool       `xml:"found,attr"`
	FromCache bool       `xml:"cache,attr,omitempty"`
	Hops      int        `xml:"hops,attr"`
	Data      wire.Bytes `xml:"data,omitempty"`
}

// Kind implements wire.Message.
func (GetReplyMsg) Kind() string { return "store.getReply" }

// ReplicateMsg pushes a replica to a leaf-set neighbour.
type ReplicateMsg struct {
	GUID string     `xml:"guid,attr"`
	Data wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (ReplicateMsg) Kind() string { return "store.replicate" }

// CacheFillMsg seeds a path node's promiscuous cache.
type CacheFillMsg struct {
	GUID string     `xml:"guid,attr"`
	Data wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (CacheFillMsg) Kind() string { return "store.cacheFill" }

// PushMsg is routed toward an object's root, instructing it to push a
// replica to Target — the primitive the data placement policies of §4.6
// (latency-reduction, backup) are built on.
type PushMsg struct {
	GUID   string `xml:"guid,attr"`
	Target string `xml:"target,attr"`
}

// Kind implements wire.Message.
func (PushMsg) Kind() string { return "store.push" }

// RegisterMessages records all storage message types in a wire registry.
func RegisterMessages(r *wire.Registry) {
	r.Register(&PutMsg{})
	r.Register(&AckMsg{})
	r.Register(&GetMsg{})
	r.Register(&GetReplyMsg{})
	r.Register(&ReplicateMsg{})
	r.Register(&CacheFillMsg{})
	r.Register(&PushMsg{})
}
