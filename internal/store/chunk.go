package store

import (
	"fmt"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

// Chunked node-to-node transfer: bodies larger than Options.ChunkBytes
// stream as offset-addressed ChunkMsg frames behind a ManifestMsg, so a
// 10 MiB object never serialises as a single frame through the
// byte-budgeted outbox. Chunks are data, not control — a saturated link
// sheds them and the transfer times out; repair retries next round.

// Transfer purposes: what the receiver does with the reassembled body.
const (
	xferReplicate = 1 + iota // store a replica (ReplicateMsg equivalent)
	xferCacheFill            // seed the promiscuous cache (CacheFillMsg)
	xferGetReply             // complete a pending get (GetReplyMsg)
	xferPut                  // root pulled a large put from its origin
)

// hash64 is FNV-1a over the object body: cheap, allocation-free, and the
// shared integrity/staleness check for chunk transfers and digests.
func hash64(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// reassembly is the pure chunk-reassembly state machine: fixed-size
// chunks copied into a preallocated buffer, tracked by a per-chunk
// bitmap. Pure so the fuzzer can drive it directly against hostile
// geometry (truncated totals, misaligned offsets, wrong lengths).
type reassembly struct {
	total     int
	chunk     int
	hash      uint64
	buf       []byte
	got       []bool
	remaining int
}

func newReassembly(totalLen, chunk, maxObject int, hash uint64) (*reassembly, error) {
	if totalLen <= 0 || totalLen > maxObject {
		return nil, fmt.Errorf("store: transfer length %d out of range (max %d)", totalLen, maxObject)
	}
	if chunk <= 0 || chunk > maxObject {
		return nil, fmt.Errorf("store: chunk size %d out of range", chunk)
	}
	n := (totalLen + chunk - 1) / chunk
	return &reassembly{
		total:     totalLen,
		chunk:     chunk,
		hash:      hash,
		buf:       make([]byte, totalLen),
		got:       make([]bool, n),
		remaining: n,
	}, nil
}

// add copies one chunk in. done reports the body is complete and
// hash-verified; a non-nil error poisons the whole transfer (corrupt or
// hostile geometry — the caller must drop the state).
func (ra *reassembly) add(off int, data []byte) (done bool, err error) {
	if off < 0 || off >= ra.total || off%ra.chunk != 0 {
		return false, fmt.Errorf("store: chunk offset %d invalid for %d-byte transfer", off, ra.total)
	}
	want := ra.chunk
	if off+want > ra.total {
		want = ra.total - off
	}
	if len(data) != want {
		return false, fmt.Errorf("store: chunk at %d has %d bytes, want %d", off, len(data), want)
	}
	idx := off / ra.chunk
	if ra.got[idx] {
		return false, nil // duplicate delivery: benign, ignore
	}
	copy(ra.buf[off:], data)
	ra.got[idx] = true
	ra.remaining--
	if ra.remaining > 0 {
		return false, nil
	}
	if hash64(ra.buf) != ra.hash {
		return false, fmt.Errorf("store: reassembled transfer fails hash check")
	}
	return true, nil
}

// xferKey identifies one inbound transfer: sender-scoped so transfer IDs
// from different nodes cannot collide.
type xferKey struct {
	from ids.ID
	id   uint64
}

// maxEarlyChunks bounds how many chunks delivered ahead of their
// manifest (network reordering) are buffered per transfer.
const maxEarlyChunks = 256

// xfer is one inbound transfer's reassembly state plus completion context.
type xfer struct {
	ra        *reassembly
	guid      ids.ID
	purpose   int
	reqID     uint64
	hops      int
	fromCache bool
	pin       bool
	// progress vs sweptAt implement the timeout GC: a sweep that finds no
	// progress since the last one drops the state.
	progress uint64
	sweptAt  uint64
}

// chunkBytes returns the effective chunk threshold: 0 means chunking is
// off (legacy replication, or ChunkBytes < 0).
func (s *Store) chunkBytes() int {
	if s.opts.LegacyReplication || s.opts.ChunkBytes < 0 {
		return 0
	}
	return s.opts.ChunkBytes
}

// sendChunked streams data to a peer as manifest + chunk frames.
func (s *Store) sendChunked(to ids.ID, purpose int, guid ids.ID, data []byte, reqID uint64, hops int, fromCache, pin bool) {
	chunk := s.chunkBytes()
	s.nextXfer++
	s.ep.Send(to, &ManifestMsg{
		Xfer:      s.nextXfer,
		GUID:      guid.String(),
		Purpose:   purpose,
		TotalLen:  len(data),
		Chunk:     chunk,
		Hash:      hash64(data),
		ReqID:     reqID,
		Hops:      hops,
		FromCache: fromCache,
		Pin:       pin,
	})
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		s.stats.ChunkFramesSent++
		s.ep.Send(to, &ChunkMsg{Xfer: s.nextXfer, Off: off, Data: data[off:end]})
	}
}

// sendObject delivers a replica or cache fill, chunked when the body
// exceeds the threshold.
func (s *Store) sendObject(to ids.ID, purpose int, guid ids.ID, data []byte) {
	s.sendObjectPinned(to, purpose, guid, data, false)
}

func (s *Store) sendObjectPinned(to ids.ID, purpose int, guid ids.ID, data []byte, pin bool) {
	if cb := s.chunkBytes(); cb > 0 && len(data) > cb {
		s.sendChunked(to, purpose, guid, data, 0, 0, false, pin)
		return
	}
	switch purpose {
	case xferReplicate:
		s.ep.Send(to, &ReplicateMsg{GUID: guid.String(), Pin: pin, Data: data})
	case xferCacheFill:
		s.ep.Send(to, &CacheFillMsg{GUID: guid.String(), Data: data})
	}
}

// sendGetReply answers a remote get, chunking large found bodies.
func (s *Store) sendGetReply(to ids.ID, reply *GetReplyMsg) {
	if cb := s.chunkBytes(); reply.Found && cb > 0 && len(reply.Data) > cb {
		guid, err := ids.Parse(reply.GUID)
		if err != nil {
			return
		}
		s.sendChunked(to, xferGetReply, guid, reply.Data, reply.ReqID, reply.Hops, reply.FromCache, false)
		return
	}
	s.ep.Send(to, reply)
}

func (s *Store) handleManifest(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	mm := msg.(*ManifestMsg)
	guid, err := ids.Parse(mm.GUID)
	if err != nil {
		return
	}
	switch mm.Purpose {
	case xferReplicate, xferCacheFill, xferGetReply, xferPut:
	default:
		return
	}
	ra, err := newReassembly(mm.TotalLen, mm.Chunk, s.opts.MaxObjectBytes, mm.Hash)
	if err != nil {
		return
	}
	key := xferKey{from: from, id: mm.Xfer}
	// A repeated manifest (sender restarted the transfer) replaces any
	// half-built state under the same key.
	s.xfers[key] = &xfer{
		ra:        ra,
		guid:      guid,
		purpose:   mm.Purpose,
		reqID:     mm.ReqID,
		hops:      mm.Hops,
		fromCache: mm.FromCache,
		pin:       mm.Pin,
	}
	s.sweepXfer(key)
	if buf, ok := s.early[key]; ok {
		delete(s.early, key)
		for _, cm := range buf {
			s.applyChunk(key, from, cm)
		}
	}
}

// sweepXfer schedules the transfer's timeout GC: every ChunkTimeout the
// sweep either observes progress and re-arms, or drops the state.
func (s *Store) sweepXfer(key xferKey) {
	s.ep.Clock().After(s.opts.ChunkTimeout, func() {
		x, ok := s.xfers[key]
		if !ok {
			return
		}
		if x.progress == x.sweptAt {
			delete(s.xfers, key)
			s.stats.ChunkTimeouts++
			return
		}
		x.sweptAt = x.progress
		s.sweepXfer(key)
	})
}

// sweepEarly drops an early-chunk buffer whose manifest never showed up.
func (s *Store) sweepEarly(key xferKey) {
	s.ep.Clock().After(s.opts.ChunkTimeout, func() {
		if _, ok := s.early[key]; ok {
			delete(s.early, key)
			s.stats.ChunkTimeouts++
		}
	})
}

func (s *Store) handleChunk(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	cm := msg.(*ChunkMsg)
	key := xferKey{from: from, id: cm.Xfer}
	if _, ok := s.xfers[key]; !ok {
		// Reordering can deliver chunks ahead of their manifest: hold a
		// bounded few until it arrives (sweepEarly drops orphans, so a
		// completed or timed-out transfer's stragglers die here too).
		buf := s.early[key]
		if len(buf) >= maxEarlyChunks {
			return
		}
		if len(buf) == 0 {
			s.sweepEarly(key)
		}
		s.early[key] = append(buf, cm)
		return
	}
	s.applyChunk(key, from, cm)
}

// applyChunk feeds one chunk into an open transfer's reassembly.
func (s *Store) applyChunk(key xferKey, from ids.ID, cm *ChunkMsg) {
	x, ok := s.xfers[key]
	if !ok {
		return
	}
	done, err := x.ra.add(cm.Off, cm.Data)
	if err != nil {
		delete(s.xfers, key)
		s.stats.ChunkCorrupt++
		return
	}
	s.stats.ChunkFramesRecv++
	x.progress++
	if !done {
		return
	}
	delete(s.xfers, key)
	s.completeXfer(from, x)
}

// completeXfer dispatches a fully reassembled body to its purpose.
func (s *Store) completeXfer(from ids.ID, x *xfer) {
	switch x.purpose {
	case xferReplicate:
		s.setObject(x.guid, x.ra.buf)
		if x.pin {
			s.pinned[x.guid] = true
		}
	case xferCacheFill:
		if !s.opts.DisableCache {
			s.cache.put(x.guid, x.ra.buf)
		}
	case xferGetReply:
		s.completeGet(x.reqID, true, x.guid.String(), x.ra.buf)
	case xferPut:
		s.storeAndReplicate(x.guid, x.ra.buf)
		s.ep.Send(from, &AckMsg{ReqID: x.reqID, OK: true})
	}
}

// handlePull runs at a large put's origin: the root asks for the bytes.
func (s *Store) handlePull(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	pm := msg.(*PullMsg)
	p, ok := s.pendingPuts[pm.ReqID]
	if !ok || p.content == nil {
		return // put already timed out (or bogus pull): nothing to stream
	}
	guid, err := ids.Parse(pm.GUID)
	if err != nil {
		return
	}
	s.sendChunked(from, xferPut, guid, p.content, pm.ReqID, 0, false, false)
}
