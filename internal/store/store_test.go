package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/wire"
)

// cluster is a joined overlay + store on every node.
type cluster struct {
	world    *simnet.World
	stores   []*Store
	byID     map[ids.ID]*Store
	overlays []*plaxton.Overlay
	reg      *wire.Registry
	rng      *rand.Rand
}

func buildCluster(t testing.TB, seed int64, n int, opts Options) *cluster {
	t.Helper()
	w := simnet.NewWorld(simnet.Config{Seed: seed})
	reg := wire.NewRegistry()
	plaxton.RegisterMessages(reg)
	RegisterMessages(reg)
	rng := rand.New(rand.NewSource(seed))
	c := &cluster{world: w, byID: make(map[ids.ID]*Store), reg: reg, rng: rng}
	for i := 0; i < n; i++ {
		id := ids.Random(rng)
		node := w.NewNode(id, "r", netapi.Coord{X: rng.Float64() * 3000, Y: rng.Float64() * 3000})
		ov := plaxton.New(node, reg, plaxton.Options{
			HeartbeatInterval: time.Second,
			ProbeTimeout:      300 * time.Millisecond,
			LeafHalf:          4,
		})
		st := New(node, ov, opts)
		c.overlays = append(c.overlays, ov)
		c.stores = append(c.stores, st)
		c.byID[id] = st
	}
	c.overlays[0].CreateNetwork()
	for i := 1; i < n; i++ {
		ok := false
		c.overlays[i].Join(c.overlays[rng.Intn(i)].ID(), func(err error) {
			if err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
			ok = true
		})
		w.RunFor(2 * time.Second)
		if !ok {
			t.Fatalf("node %d join incomplete", i)
		}
	}
	w.RunFor(5 * time.Second)
	return c
}

// addNode joins one extra node into an already-built cluster.
func (c *cluster) addNode(t testing.TB, opts Options) *Store {
	t.Helper()
	id := ids.Random(c.rng)
	node := c.world.NewNode(id, "r", netapi.Coord{X: c.rng.Float64() * 3000, Y: c.rng.Float64() * 3000})
	ov := plaxton.New(node, c.reg, plaxton.Options{
		HeartbeatInterval: time.Second,
		ProbeTimeout:      300 * time.Millisecond,
		LeafHalf:          4,
	})
	st := New(node, ov, opts)
	ok := false
	ov.Join(c.overlays[c.rng.Intn(len(c.overlays))].ID(), func(err error) {
		if err != nil {
			t.Fatalf("late join: %v", err)
		}
		ok = true
	})
	c.world.RunFor(2 * time.Second)
	if !ok {
		t.Fatalf("late join incomplete")
	}
	c.overlays = append(c.overlays, ov)
	c.stores = append(c.stores, st)
	c.byID[id] = st
	return st
}

// copies counts primary/replica holders of guid across the cluster.
func (c *cluster) copies(guid ids.ID) int {
	n := 0
	for _, s := range c.stores {
		if s.Holds(guid) {
			n++
		}
	}
	return n
}

func TestPutGetRoundTrip(t *testing.T) {
	c := buildCluster(t, 1, 16, Options{RepairInterval: -1})
	content := []byte("bob likes ice cream when the weather is hot")
	var guid ids.ID
	var putErr error
	c.stores[0].Put(content, func(g ids.ID, err error) { guid, putErr = g, err })
	c.world.RunFor(5 * time.Second)
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}
	if guid != GUIDFor(content) {
		t.Fatalf("guid mismatch")
	}
	var got []byte
	var getErr error
	c.stores[7].Get(guid, func(d []byte, err error) { got, getErr = d, err })
	c.world.RunFor(5 * time.Second)
	if getErr != nil {
		t.Fatalf("get: %v", getErr)
	}
	if string(got) != string(content) {
		t.Fatalf("content mismatch: %q", got)
	}
}

func TestReplicationDegree(t *testing.T) {
	c := buildCluster(t, 2, 20, Options{Replicas: 4, RepairInterval: -1})
	content := []byte("replicate me")
	var guid ids.ID
	c.stores[0].Put(content, func(g ids.ID, _ error) { guid = g })
	c.world.RunFor(5 * time.Second)
	if n := c.copies(guid); n != 4 {
		t.Fatalf("object has %d copies, want 4", n)
	}
}

func TestGetNotFound(t *testing.T) {
	c := buildCluster(t, 3, 8, Options{RepairInterval: -1})
	var gotErr error
	c.stores[0].Get(ids.FromString("never stored"), func(_ []byte, err error) { gotErr = err })
	c.world.RunFor(10 * time.Second)
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", gotErr)
	}
}

func TestPromiscuousCachingServesRepeatReads(t *testing.T) {
	c := buildCluster(t, 4, 24, Options{RepairInterval: -1})
	content := []byte("popular object read by everyone")
	var guid ids.ID
	c.stores[0].Put(content, func(g ids.ID, _ error) { guid = g })
	c.world.RunFor(5 * time.Second)

	reader := c.stores[13]
	done := 0
	for i := 0; i < 5; i++ {
		reader.Get(guid, func(d []byte, err error) {
			if err != nil {
				t.Errorf("get %d: %v", i, err)
			}
			done++
		})
		c.world.RunFor(3 * time.Second)
	}
	if done != 5 {
		t.Fatalf("completed %d of 5 gets", done)
	}
	st := reader.Stats()
	// After the first remote fetch the reader's own cache answers.
	if st.LocalHits < 4 {
		t.Fatalf("local cache hits = %d, want ≥ 4", st.LocalHits)
	}
}

func TestCacheDisabledGoesToRootEveryTime(t *testing.T) {
	c := buildCluster(t, 5, 24, Options{RepairInterval: -1, DisableCache: true, Replicas: 1})
	content := []byte("uncached object")
	var guid ids.ID
	c.stores[0].Put(content, func(g ids.ID, _ error) { guid = g })
	c.world.RunFor(5 * time.Second)
	reader := c.stores[13]
	for i := 0; i < 5; i++ {
		reader.Get(guid, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("get: %v", err)
			}
		})
		c.world.RunFor(3 * time.Second)
	}
	var rootAnswers uint64
	for _, s := range c.stores {
		rootAnswers += s.Stats().RootAnswers
	}
	if rootAnswers != 5 {
		t.Fatalf("root answered %d of 5 reads with caching disabled", rootAnswers)
	}
}

func TestSelfHealingRestoresReplicas(t *testing.T) {
	c := buildCluster(t, 6, 24, Options{Replicas: 3, RepairInterval: time.Second})
	content := []byte("survive the churn")
	var guid ids.ID
	c.stores[0].Put(content, func(g ids.ID, _ error) { guid = g })
	c.world.RunFor(5 * time.Second)
	if n := c.copies(guid); n < 3 {
		t.Fatalf("initial copies = %d", n)
	}
	// Kill every current holder except one.
	killed := 0
	for _, s := range c.stores {
		if s.Holds(guid) && killed < 2 {
			c.world.Node(s.ep.ID()).Kill()
			killed++
		}
	}
	// Heartbeats detect the failures; repair re-replicates.
	c.world.RunFor(30 * time.Second)
	live := 0
	for _, s := range c.stores {
		if !c.world.Node(s.ep.ID()).Alive() {
			continue
		}
		if s.Holds(guid) {
			live++
		}
	}
	if live < 3 {
		t.Fatalf("after healing, live copies = %d, want ≥ 3", live)
	}
	// And the object is still readable.
	var got []byte
	c.stores[20].Get(guid, func(d []byte, err error) {
		if err != nil {
			t.Errorf("get after churn: %v", err)
		}
		got = d
	})
	c.world.RunFor(10 * time.Second)
	if string(got) != string(content) {
		t.Fatalf("content lost after churn")
	}
}

func TestRootFailureBeforeRepairStillReadable(t *testing.T) {
	c := buildCluster(t, 7, 24, Options{Replicas: 3, RepairInterval: time.Second})
	content := []byte("root will die")
	var guid ids.ID
	c.stores[0].Put(content, func(g ids.ID, _ error) { guid = g })
	c.world.RunFor(5 * time.Second)
	// Kill the root (numerically closest holder).
	var root *Store
	for _, s := range c.stores {
		if s.Holds(guid) && s.isRoot(guid) {
			root = s
			break
		}
	}
	if root == nil {
		t.Fatalf("no root found")
	}
	c.world.Node(root.ep.ID()).Kill()
	c.world.RunFor(15 * time.Second) // overlay repairs; replicas remain
	var got []byte
	var getErr error
	c.stores[17].Get(guid, func(d []byte, err error) { got, getErr = d, err })
	c.world.RunFor(10 * time.Second)
	if getErr != nil {
		t.Fatalf("get after root failure: %v", getErr)
	}
	if string(got) != string(content) {
		t.Fatalf("bad content after root failure")
	}
}

func TestPutAsExplicitKey(t *testing.T) {
	c := buildCluster(t, 8, 12, Options{RepairInterval: -1})
	key := ids.FromString("facts/user/bob")
	var putErr error
	c.stores[2].PutAs(key, []byte("v1"), func(err error) { putErr = err })
	c.world.RunFor(5 * time.Second)
	if putErr != nil {
		t.Fatalf("putAs: %v", putErr)
	}
	// Overwrite with v2.
	c.stores[3].PutAs(key, []byte("v2"), func(err error) { putErr = err })
	c.world.RunFor(5 * time.Second)
	var got []byte
	c.stores[9].Get(key, func(d []byte, err error) {
		if err != nil {
			t.Errorf("get: %v", err)
		}
		got = d
	})
	c.world.RunFor(5 * time.Second)
	if string(got) != "v2" {
		t.Fatalf("got %q, want v2", got)
	}
}

func TestCodedPutGet(t *testing.T) {
	c := buildCluster(t, 9, 24, Options{RepairInterval: -1, Replicas: 1, ErasureData: 4, ErasureParity: 2})
	content := []byte("erasure coded payload: reconstitute from any 4 of 6 fragments")
	var guid ids.ID
	var putErr error
	c.stores[0].PutCoded(content, func(g ids.ID, err error) { guid, putErr = g, err })
	c.world.RunFor(10 * time.Second)
	if putErr != nil {
		t.Fatalf("coded put: %v", putErr)
	}
	var got []byte
	var getErr error
	c.stores[11].GetCoded(guid, func(d []byte, err error) { got, getErr = d, err })
	c.world.RunFor(10 * time.Second)
	if getErr != nil {
		t.Fatalf("coded get: %v", getErr)
	}
	if string(got) != string(content) {
		t.Fatalf("coded content mismatch")
	}
}

func TestCodedSurvivesFragmentLoss(t *testing.T) {
	c := buildCluster(t, 10, 24, Options{RepairInterval: -1, Replicas: 1, ErasureData: 3, ErasureParity: 2, Retries: 0, RequestTimeout: 2 * time.Second})
	content := []byte("lose up to two fragment roots and still decode")
	var guid ids.ID
	c.stores[0].PutCoded(content, func(g ids.ID, err error) { guid = g })
	c.world.RunFor(10 * time.Second)
	// Kill nodes losing at most 2 fragments in total (a node may hold
	// several fragments; count what each kill costs).
	fragsHeld := func(s *Store) int {
		n := 0
		for i := 0; i < 5; i++ {
			if s.Holds(fragGUID(guid, i)) {
				n++
			}
		}
		return n
	}
	killedFrags := 0
	for _, s := range c.stores {
		h := fragsHeld(s)
		if h > 0 && killedFrags+h <= 2 {
			c.world.Node(s.ep.ID()).Kill()
			killedFrags += h
		}
		if killedFrags == 2 {
			break
		}
	}
	if killedFrags == 0 {
		t.Fatalf("setup: no fragment holder killed")
	}
	var got []byte
	var getErr error
	c.stores[15].GetCoded(guid, func(d []byte, err error) { got, getErr = d, err })
	c.world.RunFor(20 * time.Second)
	if getErr != nil {
		t.Fatalf("coded get after loss: %v", getErr)
	}
	if string(got) != string(content) {
		t.Fatalf("coded content mismatch after loss")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := buildCluster(t, 11, 8, Options{RepairInterval: -1})
	var guid ids.ID
	c.stores[0].Put([]byte("stats object"), func(g ids.ID, _ error) { guid = g })
	c.world.RunFor(5 * time.Second)
	c.stores[5].Get(guid, func([]byte, error) {})
	c.world.RunFor(5 * time.Second)
	if c.stores[0].Stats().Puts != 1 {
		t.Errorf("Puts = %d", c.stores[0].Stats().Puts)
	}
	if c.stores[5].Stats().Gets != 1 {
		t.Errorf("Gets = %d", c.stores[5].Stats().Gets)
	}
	total := 0
	for _, s := range c.stores {
		st := s.Stats()
		total += st.StoredObjects
	}
	if total < 3 {
		t.Errorf("stored copies across cluster = %d, want ≥ 3 (k=3)", total)
	}
}

func fmtBytes(n int) []byte { return []byte(fmt.Sprintf("object-%06d", n)) }

func TestManyObjectsSpread(t *testing.T) {
	c := buildCluster(t, 12, 16, Options{Replicas: 2, RepairInterval: -1})
	const objs = 60
	acked := 0
	for i := 0; i < objs; i++ {
		c.stores[i%16].Put(fmtBytes(i), func(_ ids.ID, err error) {
			if err == nil {
				acked++
			}
		})
	}
	c.world.RunFor(20 * time.Second)
	if acked != objs {
		t.Fatalf("acked %d of %d puts", acked, objs)
	}
	// Placement must be spread: no node holds more than half of all copies.
	maxHeld := 0
	for _, s := range c.stores {
		if n := s.Stats().StoredObjects; n > maxHeld {
			maxHeld = n
		}
	}
	if maxHeld > objs {
		t.Fatalf("one node holds %d copies — placement is degenerate", maxHeld)
	}
	// All readable from a single reader.
	okReads := 0
	for i := 0; i < objs; i++ {
		c.stores[3].Get(GUIDFor(fmtBytes(i)), func(_ []byte, err error) {
			if err == nil {
				okReads++
			}
		})
	}
	c.world.RunFor(30 * time.Second)
	if okReads != objs {
		t.Fatalf("read back %d of %d", okReads, objs)
	}
}
