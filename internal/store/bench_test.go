package store

import (
	"math/rand"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
)

// BenchmarkStoreReplicate measures one put of a multi-chunk object
// through the replication plane of a joined 8-node cluster: manifest +
// chunk framing, receiver reassembly and the k-1 replica pushes — with
// the legacy whole-frame push as the reference series.
func BenchmarkStoreReplicate(b *testing.B) {
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"chunked", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := buildCluster(b, 42, 8, Options{
				Replicas: 3, RepairInterval: -1, RequestTimeout: 5 * time.Second,
				ChunkBytes: 4 << 10, LegacyReplication: mode.legacy,
			})
			body := make([]byte, 64<<10)
			rand.New(rand.NewSource(42)).Read(body)
			b.SetBytes(int64(len(body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh GUID per iteration: content-hash keys would
				// otherwise dedupe every put after the first.
				body[0], body[1], body[2] = byte(i), byte(i>>8), byte(i>>16)
				done := false
				c.stores[i%len(c.stores)].Put(append([]byte(nil), body...), func(_ ids.ID, err error) {
					if err != nil {
						b.Fatalf("put: %v", err)
					}
					done = true
				})
				for step := 0; !done && step < 60; step++ {
					c.world.RunFor(500 * time.Millisecond)
				}
				if !done {
					b.Fatal("put did not complete")
				}
			}
		})
	}
}
