package store

import (
	"bytes"
	"testing"

	"github.com/gloss/active/internal/erasure"
	"github.com/gloss/active/internal/ids"
)

// FuzzUnpackFragment feeds arbitrary stored bodies to the fragment
// parser — exactly what fragCheck does to every object a node roots —
// and checks accepted fragments are internally consistent and
// re-serialise canonically.
func FuzzUnpackFragment(f *testing.F) {
	code, err := erasure.NewCode(3, 2)
	if err != nil {
		f.Fatal(err)
	}
	obj := ids.FromString("fuzz seed object")
	for _, frag := range code.Encode([]byte("seed fragment corpus body, split five ways")) {
		f.Add(packFragment(obj, 3, 2, frag))
	}
	f.Add([]byte{})
	f.Add([]byte{fragMagic0, fragMagic1})
	f.Add(append([]byte{fragMagic0, fragMagic1}, make([]byte, ids.Size)...))
	f.Fuzz(func(t *testing.T, b []byte) {
		frag, meta, err := unpackFragment(b)
		if err != nil {
			return
		}
		total := meta.data + meta.parity
		if meta.data < 1 || meta.parity < 0 || total > 255 {
			t.Fatalf("accepted invalid geometry m=%d r=%d", meta.data, meta.parity)
		}
		if frag.Index < 0 || frag.Index >= total {
			t.Fatalf("accepted out-of-range index %d of %d", frag.Index, total)
		}
		if frag.OrigLen < 0 || frag.OrigLen > meta.data*len(frag.Shard) {
			t.Fatalf("accepted impossible OrigLen %d for %d-byte shard", frag.OrigLen, len(frag.Shard))
		}
		repacked := packFragment(meta.object, meta.data, meta.parity, frag)
		frag2, meta2, err2 := unpackFragment(repacked)
		if err2 != nil {
			t.Fatalf("repacked fragment does not parse: %v", err2)
		}
		if meta2 != meta || frag2.Index != frag.Index || frag2.OrigLen != frag.OrigLen ||
			!bytes.Equal(frag2.Shard, frag.Shard) {
			t.Fatalf("fragment round-trip not stable")
		}
	})
}

// FuzzChunkReassembly drives the pure reassembly state machine two ways:
// a hostile phase replaying fuzz-derived offsets/lengths (must never
// panic or write out of bounds), then an honest delivery of every chunk
// in a fuzz-chosen order (must complete with the exact body).
func FuzzChunkReassembly(f *testing.F) {
	f.Add(100, 16, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(1, 1, []byte{})
	f.Add(4096, 512, []byte{0xFF, 0x00, 0x10})
	f.Fuzz(func(t *testing.T, totalLen, chunk int, noise []byte) {
		const maxObject = 1 << 16
		hostile, err := newReassembly(totalLen, chunk, maxObject, 0)
		if err != nil {
			return // geometry rejected up front: nothing to drive
		}
		for i := 0; i+3 < len(noise); i += 4 {
			off := int(noise[i]) | int(noise[i+1])<<8
			l := (int(noise[i+2]) | int(noise[i+3])<<8) % (totalLen + 1)
			if _, err := hostile.add(off, make([]byte, l)); err != nil {
				break // poisoned: the store drops the transfer here
			}
		}

		content := make([]byte, totalLen)
		for i := range content {
			content[i] = byte(i) ^ byte(len(noise))
		}
		ra, err := newReassembly(totalLen, chunk, maxObject, hash64(content))
		if err != nil {
			t.Fatalf("honest geometry rejected: %v", err)
		}
		n := (totalLen + chunk - 1) / chunk
		start := 0
		if len(noise) > 0 {
			start = int(noise[0]) % n
		}
		delivered := 0
		for i := 0; i < n; i++ {
			idx := (start + i) % n
			off := idx * chunk
			end := off + chunk
			if end > totalLen {
				end = totalLen
			}
			done, err := ra.add(off, content[off:end])
			if err != nil {
				t.Fatalf("honest chunk at %d rejected: %v", off, err)
			}
			delivered++
			if done != (delivered == n) {
				t.Fatalf("done=%v after %d of %d chunks", done, delivered, n)
			}
			// A duplicate must be benign and never re-complete.
			if done2, err2 := ra.add(off, content[off:end]); done2 || err2 != nil {
				t.Fatalf("duplicate chunk at %d: done=%v err=%v", off, done2, err2)
			}
		}
		if !bytes.Equal(ra.buf, content) {
			t.Fatalf("reassembled body differs from the original")
		}
	})
}
