package store

import (
	"container/list"

	"github.com/gloss/active/internal/ids"
)

// lruCache is a byte-budgeted LRU of object copies — the mechanism behind
// promiscuous caching: any node may hold a copy of any object at any time
// without affecting correctness, so eviction needs no coordination.
type lruCache struct {
	capBytes  int64
	usedBytes int64
	ll        *list.List
	items     map[ids.ID]*list.Element
}

type lruItem struct {
	key  ids.ID
	data []byte
}

func newLRU(capBytes int64) *lruCache {
	return &lruCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[ids.ID]*list.Element),
	}
}

// get returns the cached copy and refreshes its recency.
func (c *lruCache) get(key ids.ID) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).data, true
}

// put inserts or refreshes a copy, evicting LRU entries to fit. Objects
// larger than the whole budget are not cached.
func (c *lruCache) put(key ids.ID, data []byte) {
	if int64(len(data)) > c.capBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		it := el.Value.(*lruItem)
		c.usedBytes += int64(len(data)) - int64(len(it.data))
		it.data = data
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&lruItem{key: key, data: data})
		c.items[key] = el
		c.usedBytes += int64(len(data))
	}
	for c.usedBytes > c.capBytes {
		c.evictOldest()
	}
}

func (c *lruCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	it := el.Value.(*lruItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.usedBytes -= int64(len(it.data))
}

// remove drops a key if present.
func (c *lruCache) remove(key ids.ID) {
	if el, ok := c.items[key]; ok {
		it := el.Value.(*lruItem)
		c.ll.Remove(el)
		delete(c.items, key)
		c.usedBytes -= int64(len(it.data))
	}
}

// len returns the number of cached objects.
func (c *lruCache) len() int { return c.ll.Len() }

// used returns the occupied bytes.
func (c *lruCache) used() int64 { return c.usedBytes }
