// Package store implements the paper's P2P storage architecture (§4.5):
// PAST-like replicated object storage over Plaxton routing, with
// content-hash GUIDs, k-replica placement on the numerically closest
// nodes, RAID-like self-healing re-replication under churn (§4.6), and
// promiscuous caching — "data is free to be cached anywhere at any time
// … crucial to the performance of the system if the fetching of remote
// data at every access is to be avoided".
//
// Erasure-coded storage (storeCoded/fetchCoded) reconstitutes objects
// from any m of m+r fragments, per the schemes the paper cites.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/gloss/active/internal/erasure"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/wire"
)

// ErrNotFound reports that no live replica of the object was reachable.
var ErrNotFound = errors.New("store: object not found")

// Options configure a storage node.
type Options struct {
	// Replicas is the target copy count k (including the root). Default 3.
	Replicas int
	// CacheBytes budgets the promiscuous cache. Default 1 MiB.
	CacheBytes int64
	// DisableCache turns promiscuous caching off (E-T3 ablation).
	DisableCache bool
	// RepairInterval is the period of replica maintenance. Default 5s;
	// negative disables maintenance.
	RepairInterval time.Duration
	// RequestTimeout bounds put/get operations. Default 5s.
	RequestTimeout time.Duration
	// Retries is the number of times a timed-out get/put is re-issued.
	// Default 1.
	Retries int
	// ErasureData/ErasureParity configure coded storage (m, r) used by
	// PutCoded/GetCoded. Defaults 4 and 2.
	ErasureData   int
	ErasureParity int
	// ChunkBytes caps the payload of one data-carrying frame: bodies
	// larger than this stream as offset-addressed store.chunk frames
	// behind a store.manifest instead of one giant frame through the
	// byte-budgeted outbox. Default 64 KiB; negative disables chunking.
	ChunkBytes int
	// ChunkTimeout bounds how long a partly-received transfer may sit
	// without progress before its reassembly state is dropped. Default 30s.
	ChunkTimeout time.Duration
	// MaxObjectBytes rejects transfer manifests announcing bodies larger
	// than this (hostile-manifest allocation bound). Default 64 MiB.
	MaxObjectBytes int
	// LegacyReplication restores the seed storage plane as the reference
	// path: whole-object replica/cache-fill/reply frames (no chunking)
	// and blind interval repair that re-pushes every rooted object
	// (no digests, no erasure reconstruction).
	LegacyReplication bool
	// DisableFragRepair turns off erasure-coded fragment reconstruction
	// (the E-T16 whole-object re-copy ablation).
	DisableFragRepair bool
}

func (o *Options) applyDefaults() {
	if o.Replicas == 0 {
		o.Replicas = 3
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 1 << 20
	}
	if o.RepairInterval == 0 {
		o.RepairInterval = 5 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 1
	}
	if o.ErasureData == 0 {
		o.ErasureData = 4
	}
	if o.ErasureParity == 0 {
		o.ErasureParity = 2
	}
	if o.ChunkBytes == 0 {
		o.ChunkBytes = 64 << 10
	}
	if o.ChunkTimeout == 0 {
		o.ChunkTimeout = 30 * time.Second
	}
	if o.MaxObjectBytes == 0 {
		o.MaxObjectBytes = 64 << 20
	}
}

// Stats counts storage activity.
type Stats struct {
	Puts         uint64
	Gets         uint64
	LocalHits    uint64 // answered before touching the network
	CacheHits    uint64 // answered from a path node's cache
	ReplicaHits  uint64 // answered from a path node's replica set
	RootAnswers  uint64 // answered by the object's root
	NotFound     uint64
	Timeouts     uint64
	Retries      uint64
	CacheFills   uint64
	RepairPushes uint64
	// RepairSkipped counts replicas a digest round proved present and
	// current, so no bytes moved; RepairBytes counts payload bytes that
	// did move in replica pushes.
	RepairSkipped uint64
	RepairBytes   uint64
	// ReplicaEvictions counts out-of-range replicas GC'd during repair.
	ReplicaEvictions uint64
	// FragRepairs counts erasure-coded fragments reconstructed from
	// surviving siblings.
	FragRepairs uint64
	// Chunked-transfer accounting.
	ChunkFramesSent uint64
	ChunkFramesRecv uint64
	ChunkTimeouts   uint64
	ChunkCorrupt    uint64
	StoredObjects   int
	StoredBytes     int64
	CacheObjects    int
	CacheBytes      int64
}

type pendingPut struct {
	cb    func(error)
	timer interface{ Stop() bool }
	// content pins a large put's body at the origin until the root pulls
	// it (or the put times out).
	content []byte
}

type pendingGet struct {
	guid    ids.ID
	cb      func([]byte, error)
	timer   interface{ Stop() bool }
	retries int
}

// Store is one storage node ("storelet" host).
type Store struct {
	ep      netapi.Endpoint
	overlay *plaxton.Overlay
	opts    Options
	code    *erasure.Code

	objects     map[ids.ID][]byte
	storedBytes int64 // incremental sum of len(objects[*]), kept by setObject/dropObject
	// pinned marks policy-placed copies (deliverPush) that replica GC
	// must leave alone even though this node is outside the k-closest
	// range for them.
	pinned map[ids.ID]bool
	cache  *lruCache

	nextReq     uint64
	pendingPuts map[uint64]*pendingPut
	pendingGets map[uint64]*pendingGet

	// Chunked-transfer reassembly, keyed per sender. early holds chunks
	// the network delivered ahead of their manifest.
	nextXfer uint64
	xfers    map[xferKey]*xfer
	early    map[xferKey][]*ChunkMsg

	// Digest repair round state: what the current round asked each
	// replica target to confirm.
	digestRound uint64
	digestWant  map[ids.ID][]ids.ID

	// Erasure reconstruction state.
	pendingStats map[uint64]*statProbe
	fragBusy     map[ids.ID]bool

	stats Stats
}

// New builds a storage node on top of an overlay and registers handlers.
func New(ep netapi.Endpoint, overlay *plaxton.Overlay, opts Options) *Store {
	opts.applyDefaults()
	code, err := erasure.NewCode(opts.ErasureData, opts.ErasureParity)
	if err != nil {
		panic(fmt.Sprintf("store: bad erasure parameters: %v", err)) // programmer error at wiring time
	}
	s := &Store{
		ep:           ep,
		overlay:      overlay,
		opts:         opts,
		code:         code,
		objects:      make(map[ids.ID][]byte),
		pinned:       make(map[ids.ID]bool),
		cache:        newLRU(opts.CacheBytes),
		pendingPuts:  make(map[uint64]*pendingPut),
		pendingGets:  make(map[uint64]*pendingGet),
		xfers:        make(map[xferKey]*xfer),
		early:        make(map[xferKey][]*ChunkMsg),
		digestWant:   make(map[ids.ID][]ids.ID),
		pendingStats: make(map[uint64]*statProbe),
		fragBusy:     make(map[ids.ID]bool),
	}
	overlay.OnDeliver("store.put", s.deliverPut)
	overlay.OnDeliver("store.get", s.deliverGet)
	overlay.OnDeliver("store.push", s.deliverPush)
	overlay.OnDeliver("store.stat", s.deliverStat)
	overlay.SetForwardHook(s.forwardHook)
	ep.Handle("store.ack", s.handleAck)
	ep.Handle("store.getReply", s.handleGetReply)
	ep.Handle("store.replicate", s.handleReplicate)
	ep.Handle("store.cacheFill", s.handleCacheFill)
	ep.Handle("store.pull", s.handlePull)
	ep.Handle("store.manifest", s.handleManifest)
	ep.Handle("store.chunk", s.handleChunk)
	ep.Handle("store.digestReq", s.handleDigestReq)
	ep.Handle("store.digest", s.handleDigest)
	ep.Handle("store.statReply", s.handleStatReply)
	// RepairInterval < 0 disables maintenance entirely, including the
	// leaf-set-change trigger (the E-T2 no-healing ablation).
	if opts.RepairInterval > 0 {
		overlay.OnLeavesChanged(func() { s.repair() })
		s.startRepair()
	}
	return s
}

// GUIDFor returns the content-hash GUID an object will be stored under.
func GUIDFor(content []byte) ids.ID { return ids.FromBytes(content) }

// Endpoint returns the endpoint the store is bound to, for subsystems
// (e.g. the knowledge syncer's gossip) that share its node identity,
// clock and message plane.
func (s *Store) Endpoint() netapi.Endpoint { return s.ep }

// Overlay returns the routing overlay the store is built on.
func (s *Store) Overlay() *plaxton.Overlay { return s.overlay }

// Stats returns a snapshot of counters and occupancy. O(1): stored
// occupancy is maintained incrementally on store/overwrite/evict rather
// than recomputed by iterating every object. Must run on the store's
// owning goroutine: all state is confined to the endpoint's delivery
// loop.
//
//vetactive:ignore atomicstats actor-confined to the endpoint delivery goroutine
func (s *Store) Stats() Stats {
	st := s.stats
	st.StoredObjects = len(s.objects)
	st.StoredBytes = s.storedBytes
	st.CacheObjects = s.cache.len()
	st.CacheBytes = s.cache.used()
	return st
}

// setObject stores or overwrites a primary/replica copy, keeping the
// incremental occupancy counters exact.
func (s *Store) setObject(guid ids.ID, data []byte) {
	if old, ok := s.objects[guid]; ok {
		s.storedBytes -= int64(len(old))
	}
	s.objects[guid] = data
	s.storedBytes += int64(len(data))
}

// dropObject removes a stored copy, keeping the occupancy counters exact.
func (s *Store) dropObject(guid ids.ID) {
	if old, ok := s.objects[guid]; ok {
		s.storedBytes -= int64(len(old))
		delete(s.objects, guid)
		delete(s.pinned, guid)
	}
}

// Holds reports whether this node stores a primary/replica copy.
func (s *Store) Holds(guid ids.ID) bool {
	_, ok := s.objects[guid]
	return ok
}

// Cached reports whether this node's promiscuous cache holds a copy.
func (s *Store) Cached(guid ids.ID) bool {
	_, ok := s.cache.items[guid]
	return ok
}

// --- client API ------------------------------------------------------------

// Put stores content under its content-hash GUID; cb receives the GUID
// once the root acknowledges, or an error.
func (s *Store) Put(content []byte, cb func(ids.ID, error)) {
	guid := GUIDFor(content)
	s.PutAs(guid, content, func(err error) { cb(guid, err) })
}

// PutAs stores content under an explicit GUID (used for mutable keys such
// as fact-base entries and matchlet directories). Bodies above the chunk
// threshold are announced by size only: the routed frame stays small and
// the root pulls the bytes directly from this node (piri-style — routing
// decides placement, data travels point-to-point).
func (s *Store) PutAs(guid ids.ID, content []byte, cb func(error)) {
	s.stats.Puts++
	s.nextReq++
	req := s.nextReq
	p := &pendingPut{cb: cb}
	big := false
	if cbytes := s.chunkBytes(); cbytes > 0 && len(content) > cbytes {
		big = true
		p.content = content
	}
	p.timer = s.ep.Clock().After(s.opts.RequestTimeout, func() {
		if _, ok := s.pendingPuts[req]; ok {
			delete(s.pendingPuts, req)
			s.stats.Timeouts++
			cb(fmt.Errorf("store: put %s timed out", guid.Short()))
		}
	})
	s.pendingPuts[req] = p
	msg := &PutMsg{GUID: guid.String(), ReqID: req, Origin: s.ep.ID().String()}
	if big {
		msg.Size = len(content)
	} else {
		msg.Data = content
	}
	if err := s.overlay.Route(guid, msg); err != nil {
		p.timer.Stop()
		delete(s.pendingPuts, req)
		cb(err)
	}
}

// Get fetches the object stored under guid.
func (s *Store) Get(guid ids.ID, cb func([]byte, error)) {
	s.stats.Gets++
	// Local copies answer immediately (the cheapest promiscuous hit).
	if data, ok := s.objects[guid]; ok {
		s.stats.LocalHits++
		cb(data, nil)
		return
	}
	if !s.opts.DisableCache {
		if data, ok := s.cache.get(guid); ok {
			s.stats.LocalHits++
			cb(data, nil)
			return
		}
	}
	s.issueGet(guid, cb, s.opts.Retries)
}

func (s *Store) issueGet(guid ids.ID, cb func([]byte, error), retries int) {
	s.nextReq++
	req := s.nextReq
	g := &pendingGet{guid: guid, cb: cb, retries: retries}
	g.timer = s.ep.Clock().After(s.opts.RequestTimeout, func() {
		if _, ok := s.pendingGets[req]; !ok {
			return
		}
		delete(s.pendingGets, req)
		if g.retries > 0 {
			s.stats.Retries++
			s.issueGet(guid, cb, g.retries-1)
			return
		}
		s.stats.Timeouts++
		cb(nil, fmt.Errorf("store: get %s timed out", guid.Short()))
	})
	s.pendingGets[req] = g
	msg := &GetMsg{GUID: guid.String(), ReqID: req}
	if err := s.overlay.RouteTraced(guid, msg); err != nil {
		g.timer.Stop()
		delete(s.pendingGets, req)
		cb(nil, err)
	}
}

// --- coded storage -----------------------------------------------------------

// fragGUID derives the storage key of fragment i of a coded object.
func fragGUID(guid ids.ID, i int) ids.ID {
	return ids.FromString(fmt.Sprintf("%s/frag/%d", guid, i))
}

// FragmentGUID returns the storage key of fragment i of a coded object —
// exported so experiments can observe fragment placement and loss.
func FragmentGUID(guid ids.ID, i int) ids.ID { return fragGUID(guid, i) }

// Fragment storage format: a magic pair, the parent object's GUID and
// the full code geometry, so that ANY holder of any fragment knows how
// to check and reconstruct its siblings (the basis of erasure-coded
// repair — the seed format carried only index+length, so nobody but the
// original writer could rebuild a lost fragment).
const (
	fragMagic0 = 0xF5
	fragMagic1 = 0x9A
)

// fragMeta is the self-describing header of a stored fragment.
type fragMeta struct {
	object ids.ID // GUID of the coded object the fragment belongs to
	data   int    // m: fragments needed to reconstruct
	parity int    // r: redundant fragments
}

// packFragment serialises a fragment with its geometry header.
func packFragment(object ids.ID, data, parity int, f erasure.Fragment) []byte {
	out := make([]byte, 0, 2+ids.Size+4*binary.MaxVarintLen32+len(f.Shard))
	out = append(out, fragMagic0, fragMagic1)
	out = append(out, object[:]...)
	out = binary.AppendUvarint(out, uint64(data))
	out = binary.AppendUvarint(out, uint64(parity))
	out = binary.AppendUvarint(out, uint64(f.Index))
	out = binary.AppendUvarint(out, uint64(f.OrigLen))
	return append(out, f.Shard...)
}

func unpackFragment(b []byte) (erasure.Fragment, fragMeta, error) {
	var meta fragMeta
	if len(b) < 2+ids.Size || b[0] != fragMagic0 || b[1] != fragMagic1 {
		return erasure.Fragment{}, meta, fmt.Errorf("store: not a coded fragment (%d bytes)", len(b))
	}
	copy(meta.object[:], b[2:2+ids.Size])
	rest := b[2+ids.Size:]
	fields := make([]uint64, 4)
	for i := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return erasure.Fragment{}, meta, fmt.Errorf("store: truncated fragment header")
		}
		fields[i] = v
		rest = rest[n:]
	}
	meta.data, meta.parity = int(fields[0]), int(fields[1])
	index, origLen := int(fields[2]), int(fields[3])
	if meta.data < 1 || meta.parity < 0 || meta.data+meta.parity > 255 {
		return erasure.Fragment{}, meta, fmt.Errorf("store: fragment geometry m=%d r=%d invalid", meta.data, meta.parity)
	}
	if index < 0 || index >= meta.data+meta.parity {
		return erasure.Fragment{}, meta, fmt.Errorf("store: fragment index %d out of range", index)
	}
	if origLen < 0 || origLen > meta.data*len(rest) {
		return erasure.Fragment{}, meta, fmt.Errorf("store: fragment claims %d original bytes with %d-byte shards", origLen, len(rest))
	}
	return erasure.Fragment{Index: index, OrigLen: origLen, Shard: rest}, meta, nil
}

// PutCoded stores content as m+r erasure-coded fragments spread over the
// ring; cb fires once at least m fragment roots acknowledged (the object
// is then reconstructible).
func (s *Store) PutCoded(content []byte, cb func(ids.ID, error)) {
	guid := GUIDFor(content)
	frags := s.code.Encode(content)
	need := s.code.Data()
	acked, failed, done := 0, 0, false
	total := len(frags)
	for i, f := range frags {
		s.PutAs(fragGUID(guid, i), packFragment(guid, s.code.Data(), total-s.code.Data(), f), func(err error) {
			if done {
				return
			}
			if err != nil {
				failed++
			} else {
				acked++
			}
			if acked >= need {
				done = true
				cb(guid, nil)
				return
			}
			if failed > total-need {
				done = true
				cb(guid, fmt.Errorf("store: coded put failed: only %d/%d fragments stored", acked, total))
			}
		})
	}
}

// GetCoded fetches any m fragments of a coded object and reconstructs it.
func (s *Store) GetCoded(guid ids.ID, cb func([]byte, error)) {
	total := s.code.Total()
	need := s.code.Data()
	frags := make([]erasure.Fragment, 0, need)
	failed, done := 0, false
	for i := 0; i < total; i++ {
		s.Get(fragGUID(guid, i), func(data []byte, err error) {
			if done {
				return
			}
			if err != nil {
				failed++
				if failed > total-need {
					done = true
					cb(nil, fmt.Errorf("store: coded get %s: %w (lost %d fragments)", guid.Short(), ErrNotFound, failed))
				}
				return
			}
			f, _, perr := unpackFragment(data)
			if perr != nil {
				// An unreadable fragment counts as lost: without the
				// threshold re-check here a corrupt final fragment left
				// the callback unfired forever.
				failed++
				if failed > total-need {
					done = true
					cb(nil, fmt.Errorf("store: coded get %s: %w (%d fragments lost or corrupt)", guid.Short(), ErrNotFound, failed))
				}
				return
			}
			frags = append(frags, f)
			if len(frags) == need {
				done = true
				content, derr := s.code.Decode(frags)
				if derr != nil {
					cb(nil, derr)
					return
				}
				cb(content, nil)
			}
		})
	}
}

// --- server side ---------------------------------------------------------------

// deliverPut runs at the object's root.
func (s *Store) deliverPut(_ plaxton.RouteInfo, msg wire.Message) {
	pm := msg.(*PutMsg)
	guid, err := ids.Parse(pm.GUID)
	if err != nil {
		return
	}
	origin, err := ids.Parse(pm.Origin)
	if err != nil {
		return
	}
	if len(pm.Data) == 0 && pm.Size > 0 {
		// Large put: the body did not ride the routed frame. Pull it
		// directly from the origin (manifest + chunk stream); the ack is
		// sent when reassembly completes.
		if origin == s.ep.ID() {
			// We are both origin and root: the body is pinned locally.
			if p, ok := s.pendingPuts[pm.ReqID]; ok && p.content != nil {
				s.storeAndReplicate(guid, p.content)
				s.handleAck(nil, s.ep.ID(), &AckMsg{ReqID: pm.ReqID, OK: true})
			}
			return
		}
		s.ep.Send(origin, &PullMsg{GUID: pm.GUID, ReqID: pm.ReqID})
		return
	}
	s.storeAndReplicate(guid, pm.Data)
	if origin == s.ep.ID() {
		s.handleAck(nil, s.ep.ID(), &AckMsg{ReqID: pm.ReqID, OK: true})
		return
	}
	s.ep.Send(origin, &AckMsg{ReqID: pm.ReqID, OK: true})
}

// storeAndReplicate is the root's store step for a completed put.
func (s *Store) storeAndReplicate(guid ids.ID, data []byte) {
	s.setObject(guid, data)
	s.replicate(guid, data)
}

// replicate pushes copies to the k-1 leaf-set nodes closest to guid.
func (s *Store) replicate(guid ids.ID, data []byte) {
	for _, n := range s.replicaTargets(guid) {
		s.pushReplica(n, guid, data)
	}
}

// replicaTargets returns the k-1 leaf-set members numerically closest to
// guid, deterministically ordered.
func (s *Store) replicaTargets(guid ids.ID) []ids.ID {
	leaves := s.overlay.Leaves()
	sort.Slice(leaves, func(i, j int) bool { return ids.Closer(guid, leaves[i], leaves[j]) })
	n := s.opts.Replicas - 1
	if n > len(leaves) {
		n = len(leaves)
	}
	return leaves[:n]
}

// RequestPush asks the object's root to place a replica on target
// (placement-policy primitive; fire-and-forget).
func (s *Store) RequestPush(guid ids.ID, target ids.ID) {
	msg := &PushMsg{GUID: guid.String(), Target: target.String()}
	if err := s.overlay.Route(guid, msg); err != nil {
		s.stats.Timeouts++
	}
}

// deliverPush runs at the object's root.
func (s *Store) deliverPush(_ plaxton.RouteInfo, msg wire.Message) {
	pm := msg.(*PushMsg)
	guid, err := ids.Parse(pm.GUID)
	if err != nil {
		return
	}
	target, err := ids.Parse(pm.Target)
	if err != nil {
		return
	}
	data, ok := s.objects[guid]
	if !ok {
		return
	}
	// Pinned: the policy chose this target deliberately; replica GC must
	// not reclaim the copy for being outside the k-closest range.
	s.pushReplicaPinned(target, guid, data, true)
}

// deliverGet runs at the object's root (if no path copy answered first).
func (s *Store) deliverGet(info plaxton.RouteInfo, msg wire.Message) {
	gm := msg.(*GetMsg)
	guid, err := ids.Parse(gm.GUID)
	if err != nil {
		return
	}
	reply := &GetReplyMsg{ReqID: gm.ReqID, GUID: gm.GUID, Hops: info.Hops}
	data, ok := s.objects[guid]
	if !ok && !s.opts.DisableCache {
		data, ok = s.cache.get(guid)
	}
	if ok {
		reply.Found = true
		reply.Data = data
		s.stats.RootAnswers++
		// Promiscuous caching along the lookup path: seed the node just
		// before the root (PAST's scheme).
		s.cacheFillPath(info.Path, guid, data)
	} else {
		s.stats.NotFound++
	}
	if info.Origin == s.ep.ID() {
		s.handleGetReply(nil, s.ep.ID(), reply)
		return
	}
	s.sendGetReply(info.Origin, reply)
}

// cacheFillPath seeds the last traversed node's cache.
func (s *Store) cacheFillPath(path []ids.ID, guid ids.ID, data []byte) {
	if s.opts.DisableCache || len(path) == 0 {
		return
	}
	last := path[len(path)-1]
	if last == s.ep.ID() {
		if len(path) < 2 {
			return
		}
		last = path[len(path)-2]
	}
	s.stats.CacheFills++
	s.sendObject(last, xferCacheFill, guid, data)
}

// forwardHook answers gets mid-path from replicas or the promiscuous cache.
func (s *Store) forwardHook(info plaxton.RouteInfo, msg wire.Message) bool {
	gm, ok := msg.(*GetMsg)
	if !ok {
		return false
	}
	if info.Origin == s.ep.ID() && info.Hops == 0 {
		return false // our own fresh request; Get() already checked locally
	}
	guid, err := ids.Parse(gm.GUID)
	if err != nil {
		return false
	}
	if s.isRoot(guid) {
		return false // let normal delivery answer (counted as RootAnswers)
	}
	reply := &GetReplyMsg{ReqID: gm.ReqID, GUID: gm.GUID, Hops: info.Hops}
	if data, have := s.objects[guid]; have {
		s.stats.ReplicaHits++
		reply.Found = true
		reply.Data = data
		s.sendGetReply(info.Origin, reply)
		return true
	}
	if !s.opts.DisableCache {
		if data, have := s.cache.get(guid); have {
			s.stats.CacheHits++
			reply.Found = true
			reply.FromCache = true
			reply.Data = data
			s.sendGetReply(info.Origin, reply)
			return true
		}
	}
	return false
}

func (s *Store) handleAck(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
	am := msg.(*AckMsg)
	p, ok := s.pendingPuts[am.ReqID]
	if !ok {
		return
	}
	delete(s.pendingPuts, am.ReqID)
	p.timer.Stop()
	if am.OK {
		p.cb(nil)
		return
	}
	p.cb(errors.New(am.Err))
}

func (s *Store) handleGetReply(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
	rm := msg.(*GetReplyMsg)
	s.completeGet(rm.ReqID, rm.Found, rm.GUID, rm.Data)
}

// completeGet resolves a pending get — from a whole-frame reply or a
// reassembled chunked transfer.
func (s *Store) completeGet(reqID uint64, found bool, guidStr string, data []byte) {
	g, ok := s.pendingGets[reqID]
	if !ok {
		return
	}
	delete(s.pendingGets, reqID)
	g.timer.Stop()
	if !found {
		g.cb(nil, fmt.Errorf("%w: %s", ErrNotFound, guidStr))
		return
	}
	// Promiscuous caching at the reader.
	if !s.opts.DisableCache {
		s.cache.put(g.guid, data)
	}
	g.cb(data, nil)
}

func (s *Store) handleReplicate(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
	rm := msg.(*ReplicateMsg)
	guid, err := ids.Parse(rm.GUID)
	if err != nil {
		return
	}
	s.setObject(guid, rm.Data)
	if rm.Pin {
		s.pinned[guid] = true
	}
}

func (s *Store) handleCacheFill(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
	cm := msg.(*CacheFillMsg)
	guid, err := ids.Parse(cm.GUID)
	if err != nil {
		return
	}
	if !s.opts.DisableCache {
		s.cache.put(guid, cm.Data)
	}
}

// --- maintenance ---------------------------------------------------------------

func (s *Store) startRepair() {
	if s.opts.RepairInterval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		s.repair()
		s.ep.Clock().After(s.opts.RepairInterval, tick)
	}
	s.ep.Clock().After(s.opts.RepairInterval, tick)
}

// isRoot reports whether this node is numerically closest to guid among
// itself and its leaf set.
func (s *Store) isRoot(guid ids.ID) bool {
	self := s.ep.ID()
	for _, l := range s.overlay.Leaves() {
		if ids.Closer(guid, l, self) {
			return false
		}
	}
	return true
}
