package store

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/leakcheck"
)

// storedState summarises a node's stored objects (GUID + body hash) in
// deterministic order, for exact cross-cluster comparison.
func storedState(s *Store) string {
	var sb strings.Builder
	for _, g := range s.sortedGUIDs() {
		fmt.Fprintf(&sb, "%s:%016x;", g.String(), hash64(s.objects[g]))
	}
	return sb.String()
}

// planeBodies is the mixed-size workload shared by the differential
// tests: several bodies straddle the 1 KiB chunk threshold so the
// chunked path genuinely engages.
func planeBodies(seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{40, 700, 1<<10 + 1, 5 << 10, 24 << 10}
	var bodies [][]byte
	for _, size := range sizes {
		for j := 0; j < 3; j++ {
			b := make([]byte, size)
			rng.Read(b)
			bodies = append(bodies, b)
		}
	}
	return bodies
}

// TestDifferentialLegacyVsChunkedStoredState proves the chunked binary
// plane is a pure transport change: the same workload through
// LegacyReplication (whole-object frames) and through chunked transfer
// leaves byte-identical stored state and identical shared Stats on every
// node — only the new chunk counters may differ.
func TestDifferentialLegacyVsChunkedStoredState(t *testing.T) {
	run := func(legacy bool) *cluster {
		c := buildCluster(t, 77, 16, Options{
			Replicas:          3,
			RepairInterval:    -1,
			ChunkBytes:        1 << 10,
			LegacyReplication: legacy,
		})
		bodies := planeBodies(770)
		acked := 0
		for i, body := range bodies {
			c.stores[i%16].Put(body, func(_ ids.ID, err error) {
				if err == nil {
					acked++
				}
			})
			c.world.RunFor(time.Second)
		}
		c.world.RunFor(20 * time.Second)
		if acked != len(bodies) {
			t.Fatalf("legacy=%v: acked %d of %d puts", legacy, acked, len(bodies))
		}
		return c
	}
	legacy, chunked := run(true), run(false)
	for i := range legacy.stores {
		if legacy.stores[i].ep.ID() != chunked.stores[i].ep.ID() {
			t.Fatalf("topologies diverged at node %d", i)
		}
		a, b := storedState(legacy.stores[i]), storedState(chunked.stores[i])
		if a != b {
			t.Errorf("node %d stored state differs:\nlegacy:  %s\nchunked: %s", i, a, b)
		}
		sa, sb := legacy.stores[i].Stats(), chunked.stores[i].Stats()
		if sa.Puts != sb.Puts || sa.StoredObjects != sb.StoredObjects ||
			sa.StoredBytes != sb.StoredBytes ||
			sa.RepairPushes != sb.RepairPushes || sa.RepairBytes != sb.RepairBytes {
			t.Errorf("node %d stats diverged: legacy=%+v chunked=%+v", i, sa, sb)
		}
	}
	var framesSent, framesRecv uint64
	for _, s := range chunked.stores {
		framesSent += s.Stats().ChunkFramesSent
		framesRecv += s.Stats().ChunkFramesRecv
	}
	if framesSent == 0 || framesRecv == 0 {
		t.Fatalf("chunked cluster moved no chunk frames (sent=%d recv=%d) — differential is vacuous", framesSent, framesRecv)
	}
}

// TestDifferentialRepairConvergence kills the same nodes in a legacy and
// a digest cluster and checks both converge to identical placement —
// with the digest path pushing strictly fewer replicas.
func TestDifferentialRepairConvergence(t *testing.T) {
	run := func(legacy bool) *cluster {
		c := buildCluster(t, 78, 20, Options{
			Replicas:          3,
			RepairInterval:    2 * time.Second,
			ChunkBytes:        1 << 10,
			LegacyReplication: legacy,
		})
		bodies := planeBodies(780)
		acked := 0
		for i, body := range bodies {
			c.stores[i%20].Put(body, func(_ ids.ID, err error) {
				if err == nil {
					acked++
				}
			})
			c.world.RunFor(time.Second)
		}
		c.world.RunFor(10 * time.Second)
		if acked != len(bodies) {
			t.Fatalf("legacy=%v: acked %d of %d puts", legacy, acked, len(bodies))
		}
		for _, i := range []int{3, 8, 14} {
			c.world.Node(c.stores[i].ep.ID()).Kill()
		}
		c.world.RunFor(40 * time.Second)
		return c
	}
	legacy, digest := run(true), run(false)
	var legacyPushes, digestPushes, skipped uint64
	for i := range legacy.stores {
		if !legacy.world.Node(legacy.stores[i].ep.ID()).Alive() {
			continue // frozen mid-flight state on dead nodes is timing noise
		}
		a, b := storedState(legacy.stores[i]), storedState(digest.stores[i])
		if a != b {
			t.Errorf("live node %d placement differs after healing:\nlegacy: %s\ndigest: %s", i, a, b)
		}
		legacyPushes += legacy.stores[i].Stats().RepairPushes
		digestPushes += digest.stores[i].Stats().RepairPushes
		skipped += digest.stores[i].Stats().RepairSkipped
	}
	if digestPushes >= legacyPushes {
		t.Errorf("digest repair pushed %d replicas, legacy %d — digests saved nothing", digestPushes, legacyPushes)
	}
	if skipped == 0 {
		t.Errorf("digest repair never skipped a present replica")
	}
}

// TestDigestRepairQuiescesWhenStable: once a stable cluster is fully
// replicated, digest rounds must move zero payload bytes while legacy
// blind repair keeps re-pushing every interval.
func TestDigestRepairQuiescesWhenStable(t *testing.T) {
	repairBytes := func(c *cluster) uint64 {
		var n uint64
		for _, s := range c.stores {
			n += s.Stats().RepairBytes
		}
		return n
	}
	run := func(legacy bool) *cluster {
		c := buildCluster(t, 79, 16, Options{
			Replicas:          3,
			RepairInterval:    time.Second,
			LegacyReplication: legacy,
		})
		acked := 0
		for i := 0; i < 10; i++ {
			c.stores[i%16].Put([]byte(fmt.Sprintf("stable-object-%d", i)), func(_ ids.ID, err error) {
				if err == nil {
					acked++
				}
			})
		}
		c.world.RunFor(15 * time.Second)
		if acked != 10 {
			t.Fatalf("legacy=%v: acked %d of 10 puts", legacy, acked)
		}
		return c
	}
	legacy, digest := run(true), run(false)
	legacyBase, digestBase := repairBytes(legacy), repairBytes(digest)
	legacy.world.RunFor(10 * time.Second)
	digest.world.RunFor(10 * time.Second)
	if d := repairBytes(digest) - digestBase; d != 0 {
		t.Errorf("digest repair moved %d payload bytes across a stable cluster", d)
	}
	if d := repairBytes(legacy) - legacyBase; d == 0 {
		t.Errorf("legacy blind repair moved no bytes — comparison is vacuous")
	}
	var skipped uint64
	for _, s := range digest.stores {
		skipped += s.Stats().RepairSkipped
	}
	if skipped == 0 {
		t.Errorf("no replicas were digest-verified as present")
	}
}

// TestCodedGetReportsCorruptFragments is the regression test for the
// lost-callback bug: a corrupt (unparseable) fragment pushed the failure
// count past the tolerance without re-checking it, so the final
// callback never fired and the read hung forever.
func TestCodedGetReportsCorruptFragments(t *testing.T) {
	c := buildCluster(t, 80, 20, Options{
		RepairInterval: -1,
		Replicas:       1,
		ErasureData:    3,
		ErasureParity:  1,
		Retries:        0,
		RequestTimeout: 2 * time.Second,
	})
	content := []byte("corrupt two of four fragments and the read must fail loudly")
	var guid ids.ID
	var putErr error
	c.stores[0].PutCoded(content, func(g ids.ID, err error) { guid, putErr = g, err })
	c.world.RunFor(10 * time.Second)
	if putErr != nil {
		t.Fatalf("coded put: %v", putErr)
	}
	// Corrupt exactly 2 fragment roots in place (need 3 of 4; only 2
	// intact remain). Both failures GetCoded sees are corrupt fragments,
	// so the threshold is crossed on the corrupt path specifically.
	corrupted := 0
	for i := 0; i < 4 && corrupted < 2; i++ {
		key := fragGUID(guid, i)
		for _, s := range c.stores {
			if data, ok := s.objects[key]; ok {
				data[0] ^= 0xFF // break the fragment magic
				corrupted++
				break
			}
		}
	}
	if corrupted != 2 {
		t.Fatalf("setup: corrupted %d fragment roots, want 2", corrupted)
	}
	fired := false
	var getErr error
	c.stores[11].GetCoded(guid, func(_ []byte, err error) { fired, getErr = true, err })
	c.world.RunFor(20 * time.Second)
	if !fired {
		t.Fatalf("coded get callback never fired with corrupt fragments")
	}
	if getErr == nil {
		t.Fatalf("coded get returned data reconstructed from too few intact fragments")
	}
}

// TestStatsStoredBytesTracksObjects checks the O(1) incremental byte
// counter against a full recount after puts, overwrites and drops.
func TestStatsStoredBytesTracksObjects(t *testing.T) {
	c := buildCluster(t, 81, 12, Options{Replicas: 3, RepairInterval: time.Second})
	acked := 0
	for i := 0; i < 8; i++ {
		c.stores[i%12].Put([]byte(fmt.Sprintf("bytes-object-%d-%s", i, strings.Repeat("x", i*13))), func(_ ids.ID, err error) {
			if err == nil {
				acked++
			}
		})
	}
	c.world.RunFor(8 * time.Second)
	key := ids.FromString("facts/bytes/overwritten")
	c.stores[0].PutAs(key, []byte("first version, longer than the second"), func(error) {})
	c.world.RunFor(4 * time.Second)
	c.stores[5].PutAs(key, []byte("v2"), func(error) {})
	c.world.RunFor(8 * time.Second)
	if acked != 8 {
		t.Fatalf("acked %d of 8 puts", acked)
	}
	for i, s := range c.stores {
		var recount int64
		for _, data := range s.objects {
			recount += int64(len(data))
		}
		st := s.Stats()
		if st.StoredBytes != recount {
			t.Errorf("node %d: StoredBytes=%d but recount=%d", i, st.StoredBytes, recount)
		}
		if st.StoredObjects != len(s.objects) {
			t.Errorf("node %d: StoredObjects=%d but holds %d", i, st.StoredObjects, len(s.objects))
		}
	}
}

// TestRepairEvictsOutOfRangeReplicas: doubling the cluster shifts the
// k-closest window of most objects; repair must reclaim the replicas the
// old holders are no longer responsible for, and no live node may end up
// holding an unpinned out-of-range copy.
func TestRepairEvictsOutOfRangeReplicas(t *testing.T) {
	opts := Options{Replicas: 3, RepairInterval: time.Second}
	c := buildCluster(t, 82, 10, opts)
	acked := 0
	for i := 0; i < 16; i++ {
		c.stores[i%10].Put([]byte(fmt.Sprintf("gc-object-%d-%s", i, strings.Repeat("y", 150))), func(_ ids.ID, err error) {
			if err == nil {
				acked++
			}
		})
	}
	c.world.RunFor(10 * time.Second)
	if acked != 16 {
		t.Fatalf("acked %d of 16 puts", acked)
	}
	for i := 0; i < 10; i++ {
		c.addNode(t, opts)
	}
	c.world.RunFor(30 * time.Second)
	var evictions uint64
	for _, s := range c.stores {
		evictions += s.Stats().ReplicaEvictions
	}
	if evictions == 0 {
		t.Fatalf("cluster doubled but no out-of-range replica was evicted")
	}
	for i, s := range c.stores {
		for guid := range s.objects {
			if !s.pinned[guid] && !s.isRoot(guid) && !s.inReplicaRange(guid) {
				t.Errorf("node %d still holds out-of-range replica %s", i, guid.Short())
			}
		}
	}
}

// TestChunkedReplicationDelivers pushes a body much larger than
// ChunkBytes end to end: replication degree, read-back fidelity, and the
// chunk counters all have to line up.
func TestChunkedReplicationDelivers(t *testing.T) {
	c := buildCluster(t, 83, 16, Options{Replicas: 3, RepairInterval: -1, ChunkBytes: 512})
	body := make([]byte, 8<<10)
	rand.New(rand.NewSource(83)).Read(body)
	var guid ids.ID
	var putErr error
	c.stores[0].Put(body, func(g ids.ID, err error) { guid, putErr = g, err })
	c.world.RunFor(10 * time.Second)
	if putErr != nil {
		t.Fatalf("chunked put: %v", putErr)
	}
	if n := c.copies(guid); n != 3 {
		t.Fatalf("chunked object has %d copies, want 3", n)
	}
	for i, s := range c.stores {
		if data, ok := s.objects[guid]; ok && string(data) != string(body) {
			t.Errorf("node %d holds a corrupted reassembly", i)
		}
	}
	var got []byte
	var getErr error
	c.stores[9].Get(guid, func(d []byte, err error) { got, getErr = d, err })
	c.world.RunFor(10 * time.Second)
	if getErr != nil {
		t.Fatalf("chunked get: %v", getErr)
	}
	if string(got) != string(body) {
		t.Fatalf("chunked get returned %d bytes, mismatch", len(got))
	}
	var sent, recv uint64
	for _, s := range c.stores {
		sent += s.Stats().ChunkFramesSent
		recv += s.Stats().ChunkFramesRecv
	}
	if sent < 16*3 { // 16 chunks × pull + 2 replicas, at minimum
		t.Errorf("only %d chunk frames sent for an 8 KiB body at 512 B chunks", sent)
	}
	if recv == 0 {
		t.Errorf("no chunk frames received")
	}
}

// TestChunkTimeoutDropsStalledTransfer: a manifest whose chunks never
// arrive must be garbage collected after ChunkTimeout, not leak
// reassembly buffers forever.
func TestChunkTimeoutDropsStalledTransfer(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	c := buildCluster(t, 84, 2, Options{RepairInterval: -1, ChunkTimeout: time.Second})
	recv := c.stores[0]
	recv.handleManifest(nil, c.stores[1].ep.ID(), &ManifestMsg{
		Xfer:     7,
		GUID:     ids.FromString("stalled").String(),
		Purpose:  xferReplicate,
		TotalLen: 4096,
		Chunk:    512,
	})
	if len(recv.xfers) != 1 {
		t.Fatalf("manifest did not open a transfer")
	}
	c.world.RunFor(3 * time.Second)
	if len(recv.xfers) != 0 {
		t.Fatalf("stalled transfer still held after timeout")
	}
	if recv.Stats().ChunkTimeouts != 1 {
		t.Fatalf("ChunkTimeouts = %d, want 1", recv.Stats().ChunkTimeouts)
	}
}

// TestFragmentRepairRebuildsLostFragment kills a single fragment root of
// a coded object and checks a sibling reconstructs the missing fragment
// from m survivors — without any whole-object re-copy.
func TestFragmentRepairRebuildsLostFragment(t *testing.T) {
	c := buildCluster(t, 85, 24, Options{
		Replicas:       1,
		RepairInterval: 2 * time.Second,
		ErasureData:    3,
		ErasureParity:  2,
		RequestTimeout: 2 * time.Second,
	})
	content := make([]byte, 3000)
	rand.New(rand.NewSource(85)).Read(content)
	var guid ids.ID
	var putErr error
	c.stores[0].PutCoded(content, func(g ids.ID, err error) { guid, putErr = g, err })
	c.world.RunFor(10 * time.Second)
	if putErr != nil {
		t.Fatalf("coded put: %v", putErr)
	}
	// Kill one node that roots exactly one fragment.
	var victim *Store
	for _, s := range c.stores {
		held := 0
		for i := 0; i < 5; i++ {
			if s.Holds(fragGUID(guid, i)) {
				held++
			}
		}
		if held == 1 {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Skipf("seed placed no single-fragment holder")
	}
	c.world.Node(victim.ep.ID()).Kill()
	c.world.RunFor(60 * time.Second)
	var repairs uint64
	for _, s := range c.stores {
		if c.world.Node(s.ep.ID()).Alive() {
			repairs += s.Stats().FragRepairs
		}
	}
	if repairs == 0 {
		t.Fatalf("lost fragment was never reconstructed")
	}
	// All 5 fragments live again on live nodes.
	for i := 0; i < 5; i++ {
		held := false
		for _, s := range c.stores {
			if c.world.Node(s.ep.ID()).Alive() && s.Holds(fragGUID(guid, i)) {
				held = true
				break
			}
		}
		if !held {
			t.Errorf("fragment %d still missing after repair", i)
		}
	}
	var got []byte
	var getErr error
	c.stores[15].GetCoded(guid, func(d []byte, err error) { got, getErr = d, err })
	c.world.RunFor(15 * time.Second)
	if getErr != nil {
		t.Fatalf("coded get after repair: %v", getErr)
	}
	if string(got) != string(content) {
		t.Fatalf("coded content mismatch after fragment repair")
	}
}
