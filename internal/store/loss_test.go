package store

import (
	"fmt"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
)

// TestGetRetriesUnderMessageLoss injects 10% message loss and verifies
// that the retry layer still completes reads — the fault model the paper's
// wide-area deployment implies.
func TestGetRetriesUnderMessageLoss(t *testing.T) {
	c := buildCluster(t, 40, 16, Options{
		Replicas:       3,
		RepairInterval: -1,
		Retries:        4,
		RequestTimeout: 2 * time.Second,
	})
	// Loss starts only after the overlay and writes settle, so the
	// cluster itself is sound and only the read path is stressed.
	const objects = 15
	guids := make([]ids.ID, objects)
	acked := 0
	for i := 0; i < objects; i++ {
		content := []byte(fmt.Sprintf("lossy-object-%d", i))
		guids[i] = GUIDFor(content)
		c.stores[i%16].Put(content, func(_ ids.ID, err error) {
			if err == nil {
				acked++
			}
		})
	}
	c.world.RunFor(10 * time.Second)
	if acked != objects {
		t.Fatalf("setup: only %d/%d puts acked", acked, objects)
	}

	lossy := newLossFilter(c, 0.10)
	c.world.SetLinkFilter(lossy)
	ok, fail := 0, 0
	for i := 0; i < objects; i++ {
		c.stores[(i+5)%16].Get(guids[i], func(_ []byte, err error) {
			if err == nil {
				ok++
			} else {
				fail++
			}
		})
		c.world.RunFor(500 * time.Millisecond)
	}
	c.world.RunFor(30 * time.Second)
	if ok+fail != objects {
		t.Fatalf("reads incomplete: ok=%d fail=%d", ok, fail)
	}
	// With 4 retries at 10% loss, effectively all reads must succeed.
	if ok < objects-1 {
		t.Fatalf("too many read failures under loss: ok=%d/%d", ok, objects)
	}
}

// newLossFilter drops a deterministic pseudo-random 'rate' fraction of
// links per message based on a counter (the simnet world's own RNG is
// reserved for jitter; this keeps the test self-contained).
func newLossFilter(c *cluster, rate float64) func(from, to ids.ID) bool {
	counter := 0
	period := int(1 / rate)
	return func(from, to ids.ID) bool {
		counter++
		return counter%period != 0
	}
}
