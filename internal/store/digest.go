package store

import (
	"sort"

	"github.com/gloss/active/internal/erasure"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/wire"
)

// Digest-driven replica maintenance and erasure-coded reconstruction.
//
// The seed repair loop blindly re-pushed k-1 full copies of every rooted
// object each interval. The digest protocol inverts that: each interval
// the root asks its replica targets for a GUID+length+hash summary of
// what they hold and pushes only missing or stale replicas
// (Stats.RepairSkipped / RepairBytes make the saving measurable). For
// erasure-coded objects, a fragment root that finds its successor
// fragment missing reconstructs it from any m surviving siblings via
// erasure.Code instead of someone re-copying the whole object — loss
// recovery traffic drops from O(object x hops) to O(fragment).
// Options.LegacyReplication restores the blind-push reference path.

// repair is the periodic maintenance pass (and the leaf-set-change
// trigger): GC replicas this node is no longer responsible for, then
// restore replication degree for rooted objects.
func (s *Store) repair() {
	guids := s.sortedGUIDs()
	// Replica GC: churn shifts the k-closest window, and before this pass
	// nothing ever removed a replica a node stopped being responsible
	// for, so storage grew without bound. Runs in both modes so legacy
	// and digest repair converge on identical placement.
	for _, guid := range guids {
		if s.pinned[guid] || s.isRoot(guid) || s.inReplicaRange(guid) {
			continue
		}
		s.dropObject(guid)
		s.stats.ReplicaEvictions++
	}
	if s.opts.LegacyReplication {
		for _, guid := range guids {
			if data, ok := s.objects[guid]; ok && s.isRoot(guid) {
				s.replicate(guid, data)
			}
		}
		return
	}
	s.digestRepair()
	if !s.opts.DisableFragRepair {
		s.fragCheck()
	}
}

// sortedGUIDs snapshots the stored object keys in deterministic order.
func (s *Store) sortedGUIDs() []ids.ID {
	guids := make([]ids.ID, 0, len(s.objects))
	for guid := range s.objects {
		guids = append(guids, guid)
	}
	sort.Slice(guids, func(i, j int) bool { return ids.Less(guids[i], guids[j]) })
	return guids
}

// inReplicaRange reports whether this node is one of the k nodes
// numerically closest to guid among itself and its leaf set — i.e. still
// a legitimate replica holder.
func (s *Store) inReplicaRange(guid ids.ID) bool {
	self := s.ep.ID()
	closer := 0
	for _, l := range s.overlay.Leaves() {
		if ids.Closer(guid, l, self) {
			closer++
			if closer >= s.opts.Replicas {
				return false
			}
		}
	}
	return true
}

// digestRepair opens a digest round: ask every current replica target
// for its holdings summary; pushes happen in handleDigest.
func (s *Store) digestRepair() {
	want := make(map[ids.ID][]ids.ID)
	for _, guid := range s.sortedGUIDs() {
		if _, ok := s.objects[guid]; !ok || !s.isRoot(guid) {
			continue
		}
		for _, t := range s.replicaTargets(guid) {
			want[t] = append(want[t], guid)
		}
	}
	if len(want) == 0 {
		return
	}
	s.digestRound++
	s.digestWant = want
	targets := make([]ids.ID, 0, len(want))
	for t := range want {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return ids.Less(targets[i], targets[j]) })
	for _, t := range targets {
		s.ep.Send(t, &DigestReqMsg{Round: s.digestRound})
	}
}

// handleDigestReq runs at a replica holder: summarise everything held.
func (s *Store) handleDigestReq(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	rq := msg.(*DigestReqMsg)
	reply := &DigestMsg{Round: rq.Round}
	for _, guid := range s.sortedGUIDs() {
		data := s.objects[guid]
		reply.Entries = append(reply.Entries, DigestEntry{
			GUID: guid.String(),
			Len:  len(data),
			Hash: hash64(data),
		})
	}
	s.ep.Send(from, reply)
}

// handleDigest runs at the root: compare the holder's summary against
// what it should replicate for us and push only the gaps.
func (s *Store) handleDigest(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	dm := msg.(*DigestMsg)
	if dm.Round != s.digestRound {
		return // stale round: a fresh one is already in flight
	}
	want := s.digestWant[from]
	if len(want) == 0 {
		return
	}
	delete(s.digestWant, from)
	held := make(map[string]DigestEntry, len(dm.Entries))
	for _, e := range dm.Entries {
		held[e.GUID] = e
	}
	for _, guid := range want {
		data, ok := s.objects[guid]
		if !ok || !s.isRoot(guid) {
			continue // dropped or re-rooted since the round opened
		}
		if e, ok := held[guid.String()]; ok && e.Len == len(data) && e.Hash == hash64(data) {
			s.stats.RepairSkipped++
			continue
		}
		s.pushReplica(from, guid, data)
	}
}

// pushReplica sends one replica copy (chunked when large) and accounts it.
func (s *Store) pushReplica(to ids.ID, guid ids.ID, data []byte) {
	s.pushReplicaPinned(to, guid, data, false)
}

func (s *Store) pushReplicaPinned(to ids.ID, guid ids.ID, data []byte, pin bool) {
	s.stats.RepairPushes++
	s.stats.RepairBytes += uint64(len(data))
	s.sendObjectPinned(to, xferReplicate, guid, data, pin)
}

// --- erasure-coded reconstruction ------------------------------------------

// statProbe is one in-flight fragment existence check.
type statProbe struct {
	missing ids.ID // storage key of the fragment being probed
	meta    fragMeta
	index   int    // fragment index under probe
	root    ids.ID // node that answered the stat — the missing key's root
	timer   interface{ Stop() bool }
}

// fragCheck runs at fragment roots: each checks its successor sibling
// (i+1 mod total), so every fragment of a coded object has exactly one
// designated checker and a single loss triggers a single repair. A run
// of adjacent losses heals over successive rounds as each repaired
// fragment starts checking its own successor.
func (s *Store) fragCheck() {
	for _, guid := range s.sortedGUIDs() {
		data, ok := s.objects[guid]
		if !ok || !s.isRoot(guid) {
			continue
		}
		f, meta, err := unpackFragment(data)
		if err != nil {
			continue // not a coded fragment
		}
		total := meta.data + meta.parity
		if total < 2 || f.Index >= total {
			continue
		}
		next := (f.Index + 1) % total
		missing := fragGUID(meta.object, next)
		if _, held := s.objects[missing]; held {
			continue // we root both: trivially present
		}
		if s.fragBusy[missing] {
			continue // probe or repair already in flight
		}
		s.statFragment(missing, meta, next)
	}
}

// statFragment probes whether a sibling fragment still exists anywhere,
// via a routed stat (no body transfer).
func (s *Store) statFragment(missing ids.ID, meta fragMeta, index int) {
	s.fragBusy[missing] = true
	s.nextReq++
	req := s.nextReq
	p := &statProbe{missing: missing, meta: meta, index: index}
	p.timer = s.ep.Clock().After(s.opts.RequestTimeout, func() {
		if _, ok := s.pendingStats[req]; !ok {
			return
		}
		delete(s.pendingStats, req)
		delete(s.fragBusy, missing) // unknown: retry next repair round
	})
	s.pendingStats[req] = p
	if err := s.overlay.Route(missing, &StatMsg{GUID: missing.String(), ReqID: req}); err != nil {
		p.timer.Stop()
		delete(s.pendingStats, req)
		delete(s.fragBusy, missing)
	}
}

// deliverStat runs at the probed key's root.
func (s *Store) deliverStat(info plaxton.RouteInfo, msg wire.Message) {
	sm := msg.(*StatMsg)
	guid, err := ids.Parse(sm.GUID)
	if err != nil {
		return
	}
	data, ok := s.objects[guid]
	reply := &StatReplyMsg{ReqID: sm.ReqID, Found: ok, Len: len(data)}
	if info.Origin == s.ep.ID() {
		s.handleStatReply(nil, s.ep.ID(), reply)
		return
	}
	s.ep.Send(info.Origin, reply)
}

func (s *Store) handleStatReply(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	rm := msg.(*StatReplyMsg)
	p, ok := s.pendingStats[rm.ReqID]
	if !ok {
		return
	}
	delete(s.pendingStats, rm.ReqID)
	p.timer.Stop()
	if rm.Found {
		delete(s.fragBusy, p.missing)
		return
	}
	// The stat was routed to the missing key's root, so the replier IS
	// the node responsible for the rebuilt fragment — remember it and
	// push direct rather than routing a second time.
	p.root = from
	s.repairFragment(p)
}

// repairFragment gathers any m surviving sibling fragments (locally held
// ones first — those cost nothing) and rebuilds the missing one.
func (s *Store) repairFragment(p *statProbe) {
	total := p.meta.data + p.meta.parity
	need := p.meta.data
	// Candidate siblings, locally held ones first (those cost nothing).
	candidates := make([]int, 0, total-1)
	for i := 0; i < total; i++ {
		if i == p.index {
			continue
		}
		if _, held := s.objects[fragGUID(p.meta.object, i)]; held {
			candidates = append(candidates, i)
		}
	}
	for i := 0; i < total; i++ {
		if i == p.index {
			continue
		}
		if _, held := s.objects[fragGUID(p.meta.object, i)]; !held {
			candidates = append(candidates, i)
		}
	}

	var (
		frags    []erasure.Fragment
		seen     = make(map[int]bool, need)
		next     int
		inflight int
		done     bool
		launch   func()
	)
	onFrag := func(data []byte, err error) {
		inflight--
		if done {
			return
		}
		if err == nil {
			if f, meta, perr := unpackFragment(data); perr == nil && meta.object == p.meta.object && !seen[f.Index] {
				seen[f.Index] = true
				frags = append(frags, f)
				if len(frags) == need {
					done = true
					s.rebuildFragment(p, frags)
					return
				}
			}
		}
		launch()
	}
	launch = func() {
		// Fetch only as many siblings as reconstruction still needs;
		// failures pull the next candidate in.
		for !done && len(frags)+inflight < need && next < len(candidates) {
			idx := candidates[next]
			next++
			inflight++
			s.Get(fragGUID(p.meta.object, idx), onFrag)
		}
		if !done && inflight == 0 && len(frags) < need {
			done = true
			delete(s.fragBusy, p.missing) // too few survivors; retry later
		}
	}
	launch()
}

// rebuildFragment decodes the object from the gathered fragments,
// re-encodes, and stores the missing fragment back under its own key.
func (s *Store) rebuildFragment(p *statProbe, frags []erasure.Fragment) {
	code, err := erasure.NewCode(p.meta.data, p.meta.parity)
	if err != nil {
		delete(s.fragBusy, p.missing)
		return
	}
	content, err := code.Decode(frags)
	if err != nil {
		delete(s.fragBusy, p.missing)
		return
	}
	rebuilt := code.Encode(content)
	if p.index >= len(rebuilt) {
		delete(s.fragBusy, p.missing)
		return
	}
	s.stats.FragRepairs++
	packed := packFragment(p.meta.object, p.meta.data, p.meta.parity, rebuilt[p.index])
	if p.root != (ids.ID{}) && p.root != s.ep.ID() {
		// The stat reply identified the fragment's root: hand the rebuilt
		// fragment straight to it (one hop, O(fragment) traffic) instead
		// of routing a put through the overlay. Loss is safe — the next
		// repair round re-probes and re-pushes.
		s.pushReplica(p.root, p.missing, packed)
		delete(s.fragBusy, p.missing)
		return
	}
	s.PutAs(p.missing, packed, func(error) { delete(s.fragBusy, p.missing) })
}
