package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gloss/active/internal/ids"
)

func key(i int) ids.ID { return ids.FromString(fmt.Sprintf("k%d", i)) }

func TestLRUBasics(t *testing.T) {
	c := newLRU(100)
	c.put(key(1), make([]byte, 40))
	c.put(key(2), make([]byte, 40))
	if _, ok := c.get(key(1)); !ok {
		t.Fatalf("k1 missing")
	}
	// Inserting k3 (40 bytes) must evict k2 (LRU; k1 was refreshed).
	c.put(key(3), make([]byte, 40))
	if _, ok := c.get(key(2)); ok {
		t.Fatalf("k2 should have been evicted")
	}
	if _, ok := c.get(key(1)); !ok {
		t.Fatalf("k1 should survive (recently used)")
	}
	if c.used() > 100 {
		t.Fatalf("over budget: %d", c.used())
	}
}

func TestLRUOversizedObjectSkipped(t *testing.T) {
	c := newLRU(10)
	c.put(key(1), make([]byte, 11))
	if c.len() != 0 {
		t.Fatalf("oversized object should not be cached")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(100)
	c.put(key(1), make([]byte, 10))
	c.put(key(1), make([]byte, 30))
	if c.used() != 30 {
		t.Fatalf("used = %d, want 30", c.used())
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestLRURemove(t *testing.T) {
	c := newLRU(100)
	c.put(key(1), make([]byte, 10))
	c.remove(key(1))
	if c.len() != 0 || c.used() != 0 {
		t.Fatalf("remove left residue: len=%d used=%d", c.len(), c.used())
	}
	c.remove(key(2)) // absent: no-op
}

// Property: the cache never exceeds its byte budget, and get after put
// returns the stored bytes while present.
func TestQuickLRUBudget(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newLRU(256)
		rng := rand.New(rand.NewSource(7))
		for _, op := range ops {
			k := key(int(op % 19))
			size := int(op % 97)
			if op%3 == 0 {
				c.remove(k)
			} else {
				data := make([]byte, size)
				rng.Read(data)
				c.put(k, data)
				if got, ok := c.get(k); ok {
					if len(got) != size {
						return false
					}
				} else if size <= 256 {
					return false // must be present right after insertion
				}
			}
			if c.used() > 256 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
