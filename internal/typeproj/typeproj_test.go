package typeproj

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Test fixtures model the paper's GIS-style data: a loosely structured
// document containing well-known place islands.
const gisDoc = `
<gis version="3" xmlns:junk="urn:x">
  <metadata><provider>ordnance</provider><unknown-stuff depth="2"/></metadata>
  <region name="fife">
    <place name="janettas" kind="shop">
      <lat>56.3402</lat>
      <lon>-2.7930</lon>
      <open from="9" to="17"/>
      <sells>ice cream</sells>
      <sells>coffee</sells>
      Market Street
    </place>
    <noise><blob>xyz</blob></noise>
    <place name="castle" kind="ruin">
      <lat>56.3417</lat>
      <lon>-2.7905</lon>
      <extra-unmodelled><deep><deeper/></deep></extra-unmodelled>
    </place>
  </region>
</gis>`

type span struct {
	From int `proj:"@from"`
	To   int `proj:"@to"`
}

type place struct {
	Name   string   `proj:"@name"`
	Kind   string   `proj:"@kind"`
	Lat    float64  `proj:"lat"`
	Lon    float64  `proj:"lon"`
	Sells  []string `proj:"sells"`
	Open   []span   `proj:"open"`
	Street string   `proj:"text"`
}

func TestProjectFirst(t *testing.T) {
	var p place
	if err := Project([]byte(gisDoc), "place", &p); err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Name != "janettas" || p.Kind != "shop" {
		t.Fatalf("attrs: %+v", p)
	}
	if p.Lat != 56.3402 || p.Lon != -2.7930 {
		t.Fatalf("coords: %+v", p)
	}
	if len(p.Sells) != 2 || p.Sells[0] != "ice cream" || p.Sells[1] != "coffee" {
		t.Fatalf("sells: %v", p.Sells)
	}
	if len(p.Open) != 1 || p.Open[0].From != 9 || p.Open[0].To != 17 {
		t.Fatalf("open: %v", p.Open)
	}
	if !strings.Contains(p.Street, "Market Street") {
		t.Fatalf("text binding: %q", p.Street)
	}
}

func TestProjectAll(t *testing.T) {
	var all []place
	if err := ProjectAll([]byte(gisDoc), "place", &all); err != nil {
		t.Fatalf("ProjectAll: %v", err)
	}
	if len(all) != 2 {
		t.Fatalf("islands = %d, want 2", len(all))
	}
	if all[1].Name != "castle" || all[1].Lat != 56.3417 {
		t.Fatalf("second island: %+v", all[1])
	}
	// Partial model: castle has no <sells> or <open>; zero values remain.
	if len(all[1].Sells) != 0 || len(all[1].Open) != 0 {
		t.Fatalf("missing optional fields should stay zero: %+v", all[1])
	}
}

func TestNoIsland(t *testing.T) {
	var p place
	err := Project([]byte("<doc><other/></doc>"), "place", &p)
	if !errors.Is(err, ErrNoIsland) {
		t.Fatalf("err = %v, want ErrNoIsland", err)
	}
}

type strictPlace struct {
	Name  string `proj:"@name,required"`
	Phone string `proj:"phone,required"`
}

func TestRequiredMissing(t *testing.T) {
	var sp strictPlace
	err := Project([]byte(gisDoc), "place", &sp)
	if err == nil || !strings.Contains(err.Error(), "phone") {
		t.Fatalf("err = %v, want missing-required-element error", err)
	}
}

type defaulted struct {
	Lat float64 // no tag: binds child element "lat"
}

func TestUntaggedFieldDefaultsToLowercaseName(t *testing.T) {
	var d defaulted
	if err := Project([]byte(gisDoc), "place", &d); err != nil {
		t.Fatalf("Project: %v", err)
	}
	if d.Lat != 56.3402 {
		t.Fatalf("Lat = %v", d.Lat)
	}
}

type nested struct {
	Inner span `proj:"open"`
}

func TestNestedStruct(t *testing.T) {
	var n nested
	if err := Project([]byte(gisDoc), "place", &n); err != nil {
		t.Fatalf("Project: %v", err)
	}
	if n.Inner.From != 9 || n.Inner.To != 17 {
		t.Fatalf("nested: %+v", n.Inner)
	}
}

func TestMalformedXML(t *testing.T) {
	var p place
	if err := Project([]byte("<a><b></a>"), "place", &p); err == nil {
		t.Fatalf("want parse error")
	}
}

func TestBadScalar(t *testing.T) {
	var p place
	doc := `<place name="x"><lat>not-a-number</lat></place>`
	if err := Project([]byte(doc), "place", &p); err == nil {
		t.Fatalf("want scalar conversion error")
	}
}

func TestProjectorReuse(t *testing.T) {
	proj, err := NewProjector("place", place{})
	if err != nil {
		t.Fatalf("NewProjector: %v", err)
	}
	for i := 0; i < 3; i++ {
		var p place
		if err := proj.First([]byte(gisDoc), &p); err != nil {
			t.Fatalf("First #%d: %v", i, err)
		}
		if p.Name != "janettas" {
			t.Fatalf("First #%d: %+v", i, p)
		}
	}
}

func TestProjectorTypeMismatch(t *testing.T) {
	proj, err := NewProjector("place", place{})
	if err != nil {
		t.Fatal(err)
	}
	var wrong span
	if err := proj.First([]byte(gisDoc), &wrong); err == nil {
		t.Fatalf("want type mismatch error")
	}
}

func TestIslandsAtAnyDepth(t *testing.T) {
	deep := `<a><b><c><d><place name="deep"><lat>1</lat><lon>2</lon></place></d></c></b></a>`
	var p place
	if err := Project([]byte(deep), "place", &p); err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Name != "deep" {
		t.Fatalf("deep island: %+v", p)
	}
}

func TestMultipleRoots(t *testing.T) {
	doc := `<place name="a"><lat>1</lat></place><place name="b"><lat>2</lat></place>`
	var all []place
	if err := ProjectAll([]byte(doc), "place", &all); err != nil {
		t.Fatalf("ProjectAll: %v", err)
	}
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Fatalf("roots: %+v", all)
	}
}

func TestParseTreeStructure(t *testing.T) {
	tree, err := ParseTree([]byte(`<a x="1"><b>hi</b><b>yo</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 1 {
		t.Fatalf("roots: %d", len(tree.Children))
	}
	a := tree.Children[0]
	if a.Name != "a" || a.Attrs["x"] != "1" || len(a.Children) != 2 {
		t.Fatalf("a: %+v", a)
	}
	if a.Children[0].Text != "hi" || a.Children[1].Text != "yo" {
		t.Fatalf("children text: %+v", a.Children)
	}
}

func TestScalarKinds(t *testing.T) {
	type kinds struct {
		S  string  `proj:"s"`
		I  int     `proj:"i"`
		U  uint    `proj:"u"`
		F  float32 `proj:"f"`
		B  bool    `proj:"b"`
		By []byte  `proj:"by"`
	}
	doc := `<k><s>str</s><i>-5</i><u>7</u><f>1.5</f><b>true</b><by>raw</by></k>`
	var k kinds
	if err := Project([]byte(doc), "k", &k); err != nil {
		t.Fatalf("Project: %v", err)
	}
	want := fmt.Sprintf("%+v", kinds{S: "str", I: -5, U: 7, F: 1.5, B: true, By: []byte("raw")})
	if got := fmt.Sprintf("%+v", k); got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}
