// Package typeproj implements type projection for XML data, following the
// approach the paper adopts (§3, citing Simeoni/Connor's language bindings
// to XML): rather than generating types from the data or its schema, the
// type is taken from the program context and *matched against* the data.
//
// The crucial property is tolerance of partial data-model specifications:
// "the overall structure of the data is not tightly specified, yet it
// contains structured 'islands' whose structure is known a priori".
// A Projector searches an XML document for islands whose element name
// matches the target type and binds only the fields the program declared,
// ignoring everything else.
//
// Field binding is declared with `proj` struct tags:
//
//	type Place struct {
//	    Name   string  `proj:"@name"`        // attribute
//	    Lat    float64 `proj:"lat"`          // child element text
//	    Lon    float64 `proj:"lon"`
//	    Phone  string  `proj:"phone,required"` // error when absent
//	    Hours  []Span  `proj:"open"`         // repeated child islands
//	    Label  string  `proj:"text"`         // element character data
//	}
//
// Untagged exported fields default to a child element with the
// lower-cased field name. Unknown elements and attributes in the data are
// ignored; missing optional fields keep their zero values.
package typeproj

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Node is a generic parsed XML element (the "sea" the islands float in).
type Node struct {
	Name     string
	Attrs    map[string]string
	Children []*Node
	Text     string
}

// ParseTree parses an XML document into a generic tree. Multiple root
// elements are permitted (the result is a synthetic root holding them).
func ParseTree(data []byte) (*Node, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	root := &Node{Name: ""}
	stack := []*Node{root}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			return nil, fmt.Errorf("typeproj: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local, Attrs: make(map[string]string, len(t.Attr))}
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, n)
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			cur := stack[len(stack)-1]
			cur.Text += string(t)
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("typeproj: unbalanced document")
	}
	return root, nil
}

// Find returns all descendant elements named name, in document order.
func (n *Node) Find(name string) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(cur *Node) {
		for _, c := range cur.Children {
			if c.Name == name {
				out = append(out, c)
			}
			walk(c)
		}
	}
	walk(n)
	return out
}

// child returns the first direct child with the given name.
func (n *Node) child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// children returns all direct children with the given name.
func (n *Node) childrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// binding describes how one struct field projects from an island.
type binding struct {
	fieldIndex int
	name       string // element/attribute local name
	attr       bool   // @name form
	text       bool   // "text" form: the island's own chardata
	required   bool
	slice      bool
	structType reflect.Type // non-nil when the target is a nested struct
	elemType   reflect.Type // slice element type
}

// Projector binds islands named Island onto values of one struct type.
type Projector struct {
	// Island is the element name identifying islands of this type.
	Island   string
	typ      reflect.Type
	bindings []binding
}

// NewProjector compiles a projector for the struct type of sample (a
// struct or pointer to struct) binding islands named island.
func NewProjector(island string, sample any) (*Projector, error) {
	t := reflect.TypeOf(sample)
	for t != nil && t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("typeproj: sample must be a struct, got %T", sample)
	}
	p := &Projector{Island: island, typ: t}
	if err := p.compile(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Projector) compile() error {
	for i := 0; i < p.typ.NumField(); i++ {
		f := p.typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("proj")
		if tag == "-" {
			continue
		}
		b := binding{fieldIndex: i}
		parts := strings.Split(tag, ",")
		name := parts[0]
		for _, opt := range parts[1:] {
			if opt == "required" {
				b.required = true
			}
		}
		if name == "" {
			name = strings.ToLower(f.Name)
		}
		switch {
		case name == "text":
			b.text = true
		case strings.HasPrefix(name, "@"):
			b.attr = true
			b.name = name[1:]
		default:
			b.name = name
		}
		ft := f.Type
		if ft.Kind() == reflect.Slice && ft.Elem().Kind() != reflect.Uint8 {
			b.slice = true
			b.elemType = ft.Elem()
			if b.elemType.Kind() == reflect.Struct {
				b.structType = b.elemType
			}
		} else if ft.Kind() == reflect.Struct {
			b.structType = ft
		}
		if b.structType != nil && (b.attr || b.text) {
			return fmt.Errorf("typeproj: field %s.%s: struct fields cannot bind attributes or text", p.typ.Name(), f.Name)
		}
		p.bindings = append(p.bindings, b)
	}
	return nil
}

// First searches data for the first island and binds it into v (pointer
// to struct). It returns ErrNoIsland if none is found.
func (p *Projector) First(data []byte, v any) error {
	tree, err := ParseTree(data)
	if err != nil {
		return err
	}
	return p.FirstNode(tree, v)
}

// ErrNoIsland reports that no matching island exists in the document.
var ErrNoIsland = fmt.Errorf("typeproj: no matching island")

// FirstNode is First over an already-parsed tree.
func (p *Projector) FirstNode(tree *Node, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Ptr || rv.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("typeproj: target must be *struct, got %T", v)
	}
	if rv.Elem().Type() != p.typ {
		return fmt.Errorf("typeproj: target type %v does not match projector type %v", rv.Elem().Type(), p.typ)
	}
	islands := tree.Find(p.Island)
	if len(islands) == 0 {
		return fmt.Errorf("%w: %q", ErrNoIsland, p.Island)
	}
	return p.bind(islands[0], rv.Elem())
}

// All binds every island in data, appending to the slice pointed to by
// slicePtr (*[]T).
func (p *Projector) All(data []byte, slicePtr any) error {
	tree, err := ParseTree(data)
	if err != nil {
		return err
	}
	return p.AllNodes(tree, slicePtr)
}

// AllNodes is All over an already-parsed tree.
func (p *Projector) AllNodes(tree *Node, slicePtr any) error {
	rv := reflect.ValueOf(slicePtr)
	if rv.Kind() != reflect.Ptr || rv.Elem().Kind() != reflect.Slice {
		return fmt.Errorf("typeproj: target must be *[]T, got %T", slicePtr)
	}
	sl := rv.Elem()
	if sl.Type().Elem() != p.typ {
		return fmt.Errorf("typeproj: slice element %v does not match projector type %v", sl.Type().Elem(), p.typ)
	}
	for _, island := range tree.Find(p.Island) {
		item := reflect.New(p.typ).Elem()
		if err := p.bind(island, item); err != nil {
			return err
		}
		sl = reflect.Append(sl, item)
	}
	rv.Elem().Set(sl)
	return nil
}

func (p *Projector) bind(island *Node, dst reflect.Value) error {
	for _, b := range p.bindings {
		field := dst.Field(b.fieldIndex)
		switch {
		case b.text:
			if err := setScalar(field, strings.TrimSpace(island.Text)); err != nil {
				return fmt.Errorf("typeproj: field %s: %w", p.typ.Field(b.fieldIndex).Name, err)
			}
		case b.attr:
			val, ok := island.Attrs[b.name]
			if !ok {
				if b.required {
					return fmt.Errorf("typeproj: island %q missing required attribute %q", p.Island, b.name)
				}
				continue
			}
			if err := setScalar(field, val); err != nil {
				return fmt.Errorf("typeproj: field %s: %w", p.typ.Field(b.fieldIndex).Name, err)
			}
		case b.slice:
			kids := island.childrenNamed(b.name)
			if len(kids) == 0 && b.required {
				return fmt.Errorf("typeproj: island %q missing required element %q", p.Island, b.name)
			}
			out := reflect.MakeSlice(dst.Field(b.fieldIndex).Type(), 0, len(kids))
			for _, kid := range kids {
				item := reflect.New(b.elemType).Elem()
				if b.structType != nil {
					sub := &Projector{Island: kid.Name, typ: b.structType}
					if err := sub.compile(); err != nil {
						return err
					}
					if err := sub.bind(kid, item); err != nil {
						return err
					}
				} else if err := setScalar(item, strings.TrimSpace(kid.Text)); err != nil {
					return fmt.Errorf("typeproj: field %s: %w", p.typ.Field(b.fieldIndex).Name, err)
				}
				out = reflect.Append(out, item)
			}
			field.Set(out)
		case b.structType != nil:
			kid := island.child(b.name)
			if kid == nil {
				if b.required {
					return fmt.Errorf("typeproj: island %q missing required element %q", p.Island, b.name)
				}
				continue
			}
			sub := &Projector{Island: kid.Name, typ: b.structType}
			if err := sub.compile(); err != nil {
				return err
			}
			if err := sub.bind(kid, field); err != nil {
				return err
			}
		default:
			kid := island.child(b.name)
			if kid == nil {
				if b.required {
					return fmt.Errorf("typeproj: island %q missing required element %q", p.Island, b.name)
				}
				continue
			}
			if err := setScalar(field, strings.TrimSpace(kid.Text)); err != nil {
				return fmt.Errorf("typeproj: field %s: %w", p.typ.Field(b.fieldIndex).Name, err)
			}
		}
	}
	return nil
}

func setScalar(field reflect.Value, text string) error {
	switch field.Kind() {
	case reflect.String:
		field.SetString(text)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return fmt.Errorf("parse int %q: %w", text, err)
		}
		field.SetInt(i)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return fmt.Errorf("parse uint %q: %w", text, err)
		}
		field.SetUint(u)
	case reflect.Float32, reflect.Float64:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("parse float %q: %w", text, err)
		}
		field.SetFloat(f)
	case reflect.Bool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return fmt.Errorf("parse bool %q: %w", text, err)
		}
		field.SetBool(b)
	case reflect.Slice:
		if field.Type().Elem().Kind() == reflect.Uint8 {
			field.SetBytes([]byte(text))
			return nil
		}
		return fmt.Errorf("unsupported slice kind %v", field.Type())
	default:
		return fmt.Errorf("unsupported field kind %v", field.Kind())
	}
	return nil
}

// Project is a convenience one-shot: find the first island named island in
// data and bind it into v.
func Project(data []byte, island string, v any) error {
	p, err := NewProjector(island, v)
	if err != nil {
		return err
	}
	return p.First(data, v)
}

// ProjectAll binds every island named island into *[]T slicePtr.
func ProjectAll(data []byte, island string, slicePtr any) error {
	rv := reflect.TypeOf(slicePtr)
	if rv == nil || rv.Kind() != reflect.Ptr || rv.Elem().Kind() != reflect.Slice {
		return fmt.Errorf("typeproj: target must be *[]T, got %T", slicePtr)
	}
	p, err := NewProjector(island, reflect.New(rv.Elem().Elem()).Interface())
	if err != nil {
		return err
	}
	return p.All(data, slicePtr)
}
