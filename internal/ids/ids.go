// Package ids provides 128-bit identifiers used throughout the active
// architecture: node identifiers for the structured overlay, GUIDs for
// stored objects, and event identifiers.
//
// Identifiers are interpreted as unsigned 128-bit integers on a circular
// ring (mod 2^128), and as strings of 32 hexadecimal digits for
// Plaxton-style prefix routing (digit base b = 4 bits).
package ids

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
)

// Size is the identifier length in bytes.
const Size = 16

// Digits is the number of base-16 digits in an identifier.
const Digits = 2 * Size

// ID is a 128-bit identifier: a point on the ring [0, 2^128).
type ID [Size]byte

// Zero is the all-zero identifier.
var Zero ID

// FromBytes derives an ID from arbitrary content using SHA-256,
// truncated to 128 bits. This is how object GUIDs are derived from
// document content, per the paper's "secure hashes" scheme.
func FromBytes(content []byte) ID {
	sum := sha256.Sum256(content)
	var id ID
	copy(id[:], sum[:Size])
	return id
}

// FromString derives an ID from a string key (e.g. "matchlet-for:gps.location").
func FromString(s string) ID { return FromBytes([]byte(s)) }

// Random returns a uniformly random ID drawn from rng.
func Random(rng *rand.Rand) ID {
	var id ID
	// rand.Rand.Read never returns an error.
	_, _ = rng.Read(id[:])
	return id
}

// Parse decodes a 32-hex-digit string into an ID.
func Parse(s string) (ID, error) {
	var id ID
	if len(s) != Digits {
		return id, fmt.Errorf("ids: parse %q: want %d hex digits, got %d", s, Digits, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("ids: parse %q: %w", s, err)
	}
	copy(id[:], b)
	return id, nil
}

// MustParse is Parse that panics on malformed input; for tests and constants.
func MustParse(s string) ID {
	id, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String returns the 32-digit lowercase hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns the first 8 hex digits, for logs.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// IsZero reports whether the ID is all zero.
func (id ID) IsZero() bool { return id == Zero }

// Digit returns the i-th base-16 digit (0 = most significant).
func (id ID) Digit(i int) byte {
	b := id[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// WithDigit returns a copy of id with the i-th hex digit set to d.
func (id ID) WithDigit(i int, d byte) ID {
	out := id
	if i%2 == 0 {
		out[i/2] = (out[i/2] & 0x0f) | (d << 4)
	} else {
		out[i/2] = (out[i/2] & 0xf0) | (d & 0x0f)
	}
	return out
}

// CommonPrefixLen returns the number of leading hex digits shared by a and b.
func CommonPrefixLen(a, b ID) int {
	for i := 0; i < Size; i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			continue
		}
		if x&0xf0 != 0 {
			return 2 * i
		}
		return 2*i + 1
	}
	return Digits
}

// Cmp compares a and b as unsigned 128-bit integers:
// -1 if a < b, 0 if equal, +1 if a > b.
func Cmp(a, b ID) int {
	for i := 0; i < Size; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b as unsigned integers.
func Less(a, b ID) bool { return Cmp(a, b) < 0 }

// Add returns (a + b) mod 2^128.
func Add(a, b ID) ID {
	var out ID
	var carry uint16
	for i := Size - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns (a - b) mod 2^128.
func Sub(a, b ID) ID {
	var out ID
	var borrow int16
	for i := Size - 1; i >= 0; i-- {
		d := int16(a[i]) - int16(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// RingDistance returns the minimal distance between a and b on the ring,
// i.e. min(a-b, b-a) mod 2^128.
func RingDistance(a, b ID) ID {
	d1 := Sub(a, b)
	d2 := Sub(b, a)
	if Less(d1, d2) {
		return d1
	}
	return d2
}

// Between reports whether x lies in the half-open ring interval (a, b]
// walking clockwise (increasing) from a. If a == b the interval is the
// full ring and Between reports x != a.
func Between(a, x, b ID) bool {
	if a == b {
		return x != a
	}
	if Less(a, b) {
		return Cmp(a, x) < 0 && Cmp(x, b) <= 0
	}
	// Interval wraps zero.
	return Cmp(a, x) < 0 || Cmp(x, b) <= 0
}

// Closer reports whether a is strictly closer to target than b is,
// by ring distance; ties broken by smaller numeric ID.
func Closer(target, a, b ID) bool {
	da, db := RingDistance(a, target), RingDistance(b, target)
	if c := Cmp(da, db); c != 0 {
		return c < 0
	}
	return Less(a, b)
}
