package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesDeterministic(t *testing.T) {
	a := FromBytes([]byte("hello"))
	b := FromBytes([]byte("hello"))
	if a != b {
		t.Fatalf("FromBytes not deterministic: %v vs %v", a, b)
	}
	c := FromBytes([]byte("world"))
	if a == c {
		t.Fatalf("distinct content produced equal GUIDs")
	}
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		id := Random(rng)
		got, err := Parse(id.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip mismatch: %v != %v", got, id)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{"", "abc", "zz" + MustParse("00000000000000000000000000000000").String()[2:]}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error, got nil", s)
		}
	}
}

func TestDigitWithDigit(t *testing.T) {
	id := MustParse("0123456789abcdef0123456789abcdef")
	for i := 0; i < Digits; i++ {
		want := byte((i % 16))
		if got := id.Digit(i); got != want {
			t.Fatalf("Digit(%d) = %x, want %x", i, got, want)
		}
	}
	id2 := id.WithDigit(0, 0xf)
	if id2.Digit(0) != 0xf {
		t.Fatalf("WithDigit(0, f): got digit %x", id2.Digit(0))
	}
	if id2.Digit(1) != id.Digit(1) {
		t.Fatalf("WithDigit disturbed neighbouring digit")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"00000000000000000000000000000000", "00000000000000000000000000000000", 32},
		{"00000000000000000000000000000000", "80000000000000000000000000000000", 0},
		{"00000000000000000000000000000000", "08000000000000000000000000000000", 1},
		{"abcdef00000000000000000000000000", "abcdef80000000000000000000000000", 6},
		{"abcdef00000000000000000000000000", "abcde000000000000000000000000000", 5},
	}
	for _, tt := range tests {
		got := CommonPrefixLen(MustParse(tt.a), MustParse(tt.b))
		if got != tt.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAddSub(t *testing.T) {
	one := MustParse("00000000000000000000000000000001")
	max := MustParse("ffffffffffffffffffffffffffffffff")
	if got := Add(max, one); got != Zero {
		t.Fatalf("max+1 = %v, want zero (wraparound)", got)
	}
	if got := Sub(Zero, one); got != max {
		t.Fatalf("0-1 = %v, want max (wraparound)", got)
	}
}

func TestBetween(t *testing.T) {
	a := MustParse("10000000000000000000000000000000")
	b := MustParse("20000000000000000000000000000000")
	x := MustParse("18000000000000000000000000000000")
	if !Between(a, x, b) {
		t.Fatalf("x in (a,b] expected")
	}
	if Between(b, x, a) {
		// wrapped interval (b, a] excludes x
		t.Fatalf("x not in wrapped (b,a] expected")
	}
	if !Between(a, b, b) {
		t.Fatalf("b in (a,b] expected (inclusive upper)")
	}
	if Between(a, a, b) {
		t.Fatalf("a not in (a,b] expected (exclusive lower)")
	}
}

// Property: Sub(Add(a,b), b) == a — add/sub are inverses mod 2^128.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		x, y := ID(a), ID(b)
		return Sub(Add(x, y), y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ring distance is symmetric and bounded by half the ring.
func TestQuickRingDistanceSymmetric(t *testing.T) {
	half := MustParse("80000000000000000000000000000000")
	f := func(a, b [Size]byte) bool {
		x, y := ID(a), ID(b)
		d1, d2 := RingDistance(x, y), RingDistance(y, x)
		return d1 == d2 && (Cmp(d1, half) <= 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: common prefix length is symmetric, and equal IDs share all digits.
func TestQuickPrefixLaws(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		x, y := ID(a), ID(b)
		n := CommonPrefixLen(x, y)
		if n != CommonPrefixLen(y, x) {
			return false
		}
		for i := 0; i < n; i++ {
			if x.Digit(i) != y.Digit(i) {
				return false
			}
		}
		if n < Digits && x.Digit(n) == y.Digit(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WithDigit sets exactly the requested digit.
func TestQuickWithDigit(t *testing.T) {
	f := func(a [Size]byte, i uint8, d uint8) bool {
		x := ID(a)
		pos := int(i) % Digits
		dig := d & 0x0f
		y := x.WithDigit(pos, dig)
		if y.Digit(pos) != dig {
			return false
		}
		for j := 0; j < Digits; j++ {
			if j != pos && y.Digit(j) != x.Digit(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloser(t *testing.T) {
	target := MustParse("80000000000000000000000000000000")
	near := MustParse("80000000000000000000000000000001")
	far := MustParse("00000000000000000000000000000000")
	if !Closer(target, near, far) {
		t.Fatalf("near should be closer to target than far")
	}
	if Closer(target, far, near) {
		t.Fatalf("far should not be closer to target than near")
	}
}
