package constraint

import (
	"strings"
	"testing"

	"github.com/gloss/active/internal/ids"
)

func node(name, region string, alive bool, comps ...string) NodeState {
	return NodeState{
		ID:         ids.FromString(name),
		Region:     region,
		Alive:      alive,
		Components: comps,
	}
}

func TestMinInstances(t *testing.T) {
	s := NewState()
	s.Upsert(node("n1", "eu", true, "replicator"))
	s.Upsert(node("n2", "eu", true, "replicator"))
	s.Upsert(node("n3", "us", true, "replicator"))
	s.Upsert(node("n4", "eu", false, "replicator")) // dead: does not count

	c := &MinInstances{Program: "replicator", Region: "eu", N: 5}
	vs := c.Evaluate(s)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	if vs[0].Deficit != 3 || vs[0].Region != "eu" || vs[0].Program != "replicator" {
		t.Fatalf("violation: %+v", vs[0])
	}
	// Satisfied case.
	ok := &MinInstances{Program: "replicator", Region: "", N: 3}
	if vs := ok.Evaluate(s); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestMinInstancesCountsMultiplePerNode(t *testing.T) {
	s := NewState()
	s.Upsert(node("n1", "eu", true, "m", "m", "m"))
	c := &MinInstances{Program: "m", N: 3}
	if vs := c.Evaluate(s); len(vs) != 0 {
		t.Fatalf("three instances on one node should satisfy N=3: %v", vs)
	}
}

func TestSpread(t *testing.T) {
	s := NewState()
	s.Upsert(node("n1", "eu", true, "svc"))
	s.Upsert(node("n2", "us", true))
	s.Upsert(node("n3", "ap", true))
	c := &Spread{Program: "svc", MinRegions: 3}
	vs := c.Evaluate(s)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2 (two regions missing)", len(vs))
	}
	// Deterministic region order: ap before us.
	if vs[0].Region != "ap" || vs[1].Region != "us" {
		t.Fatalf("regions: %v, %v", vs[0].Region, vs[1].Region)
	}
	s.AddComponent(ids.FromString("n2"), "svc")
	s.AddComponent(ids.FromString("n3"), "svc")
	if vs := c.Evaluate(s); len(vs) != 0 {
		t.Fatalf("satisfied spread still violated: %v", vs)
	}
}

func TestColocate(t *testing.T) {
	s := NewState()
	s.Upsert(node("n1", "eu", true, "storelet", "probe"))
	s.Upsert(node("n2", "us", true, "storelet"))
	c := &Colocate{A: "storelet", B: "probe"}
	vs := c.Evaluate(s)
	if len(vs) != 1 || vs[0].Region != "us" || vs[0].Program != "probe" {
		t.Fatalf("violations: %+v", vs)
	}
}

func TestStateMutations(t *testing.T) {
	s := NewState()
	s.Upsert(node("n1", "eu", true, "a"))
	s.AddComponent(ids.FromString("n1"), "b")
	n, ok := s.Node(ids.FromString("n1"))
	if !ok || len(n.Components) != 2 {
		t.Fatalf("components: %+v", n)
	}
	s.RemoveComponent(ids.FromString("n1"), "a")
	if n.HasComponent("a") || !n.HasComponent("b") {
		t.Fatalf("remove failed: %+v", n.Components)
	}
	s.MarkDead(ids.FromString("n1"))
	if len(s.AliveInRegion("")) != 0 {
		t.Fatalf("dead node counted alive")
	}
	// Upsert after death revives with fresh state.
	s.Upsert(node("n1", "eu", true))
	if len(s.AliveInRegion("eu")) != 1 {
		t.Fatalf("revived node missing")
	}
}

func TestSetEvaluateAndXML(t *testing.T) {
	set := NewSet(
		&MinInstances{Program: "replicator", Region: "eu", N: 5},
		&Spread{Program: "matchlet", MinRegions: 2},
		&Colocate{A: "storelet", B: "probe"},
	)
	s := NewState()
	s.Upsert(node("n1", "eu", true, "storelet"))
	vs := set.Evaluate(s)
	if len(vs) < 2 {
		t.Fatalf("violations: %v", vs)
	}

	data, err := MarshalSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "minInstances") {
		t.Fatalf("xml: %s", data)
	}
	got, err := UnmarshalSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round trip lost constraints: %d", got.Len())
	}
	d1 := strings.Join(set.Describe(), ";")
	d2 := strings.Join(got.Describe(), ";")
	if d1 != d2 {
		t.Fatalf("descriptions differ:\n%s\n%s", d1, d2)
	}
}

func TestUpsertIsolatesCallerSlice(t *testing.T) {
	s := NewState()
	comps := []string{"a"}
	n := NodeState{ID: ids.FromString("n"), Region: "eu", Alive: true, Components: comps}
	s.Upsert(n)
	comps[0] = "mutated"
	got, _ := s.Node(ids.FromString("n"))
	if got.Components[0] != "a" {
		t.Fatalf("state aliases caller slice")
	}
}
