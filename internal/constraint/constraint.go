// Package constraint implements the paper's active-pipe deployment
// policies (§4.4): "policies take the form of constraints over the
// placement of processing steps. For example, a constraint might specify
// that at least 5 pipeline components providing a data replication
// service must be deployed in parallel within a given geographical
// region." Constraints are declarative, XML-serialisable, and evaluated
// against a deployment state snapshot; violations feed the evolution
// engine, which repairs them by deploying or moving components.
package constraint

import (
	"encoding/xml"
	"fmt"
	"sort"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
)

// NodeState is the evolution engine's view of one node.
type NodeState struct {
	ID     ids.ID
	Region string
	Coord  netapi.Coord
	Alive  bool
	// CPUFree and StorageFreeMB are advertised spare resources.
	CPUFree       float64
	StorageFreeMB int64
	// Components lists the program names installed on the node
	// (duplicate names allowed — multiple instances).
	Components []string
}

// HasComponent reports whether program runs on the node.
func (n *NodeState) HasComponent(program string) bool {
	for _, c := range n.Components {
		if c == program {
			return true
		}
	}
	return false
}

// State is a snapshot of the whole deployment.
type State struct {
	nodes map[ids.ID]*NodeState
	order []ids.ID
}

// NewState returns an empty deployment state.
func NewState() *State {
	return &State{nodes: make(map[ids.ID]*NodeState)}
}

// Upsert inserts or replaces a node's state.
func (s *State) Upsert(n NodeState) {
	if _, ok := s.nodes[n.ID]; !ok {
		s.order = append(s.order, n.ID)
		sort.Slice(s.order, func(i, j int) bool { return ids.Less(s.order[i], s.order[j]) })
	}
	cp := n
	cp.Components = append([]string(nil), n.Components...)
	s.nodes[n.ID] = &cp
}

// Node returns a node's state.
func (s *State) Node(id ids.ID) (*NodeState, bool) {
	n, ok := s.nodes[id]
	return n, ok
}

// MarkDead flips a node to dead (components remain recorded but count as
// gone for constraint evaluation).
func (s *State) MarkDead(id ids.ID) {
	if n, ok := s.nodes[id]; ok {
		n.Alive = false
	}
}

// AddComponent records an installation.
func (s *State) AddComponent(id ids.ID, program string) {
	if n, ok := s.nodes[id]; ok {
		n.Components = append(n.Components, program)
	}
}

// RemoveComponent records a removal (one instance).
func (s *State) RemoveComponent(id ids.ID, program string) {
	n, ok := s.nodes[id]
	if !ok {
		return
	}
	for i, c := range n.Components {
		if c == program {
			n.Components = append(n.Components[:i], n.Components[i+1:]...)
			return
		}
	}
}

// Nodes returns all node states in deterministic (ID) order.
func (s *State) Nodes() []*NodeState {
	out := make([]*NodeState, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.nodes[id])
	}
	return out
}

// AliveInRegion returns live nodes in a region ("" = anywhere).
func (s *State) AliveInRegion(region string) []*NodeState {
	var out []*NodeState
	for _, n := range s.Nodes() {
		if n.Alive && (region == "" || n.Region == region) {
			out = append(out, n)
		}
	}
	return out
}

// InstancesOf counts live instances of a program, optionally per region.
func (s *State) InstancesOf(program, region string) int {
	count := 0
	for _, n := range s.AliveInRegion(region) {
		for _, c := range n.Components {
			if c == program {
				count++
			}
		}
	}
	return count
}

// Violation reports one unmet constraint.
type Violation struct {
	// Constraint describes the violated constraint.
	Constraint string
	// Program is the component type that must be deployed/moved.
	Program string
	// Region restricts candidate nodes ("" = anywhere).
	Region string
	// Deficit is how many instances are missing.
	Deficit int
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("%s: need %d more %q in region %q", v.Constraint, v.Deficit, v.Program, v.Region)
}

// Constraint is a declarative placement requirement.
type Constraint interface {
	// Evaluate returns the violations present in state.
	Evaluate(s *State) []Violation
	// Describe renders the constraint for logs and documentation.
	Describe() string
}

// MinInstances requires at least N live instances of Program in Region
// ("" = anywhere) — the paper's worked example.
type MinInstances struct {
	XMLName xml.Name `xml:"minInstances"`
	Program string   `xml:"program,attr"`
	Region  string   `xml:"region,attr,omitempty"`
	N       int      `xml:"n,attr"`
}

var _ Constraint = (*MinInstances)(nil)

// Evaluate implements Constraint.
func (c *MinInstances) Evaluate(s *State) []Violation {
	have := s.InstancesOf(c.Program, c.Region)
	if have >= c.N {
		return nil
	}
	return []Violation{{
		Constraint: c.Describe(),
		Program:    c.Program,
		Region:     c.Region,
		Deficit:    c.N - have,
	}}
}

// Describe implements Constraint.
func (c *MinInstances) Describe() string {
	return fmt.Sprintf("minInstances(%s, %q, %d)", c.Program, c.Region, c.N)
}

// Spread requires Program to run in at least MinRegions distinct regions.
type Spread struct {
	XMLName    xml.Name `xml:"spread"`
	Program    string   `xml:"program,attr"`
	MinRegions int      `xml:"minRegions,attr"`
}

var _ Constraint = (*Spread)(nil)

// Evaluate implements Constraint.
func (c *Spread) Evaluate(s *State) []Violation {
	regions := make(map[string]bool)
	empty := make(map[string]bool)
	for _, n := range s.Nodes() {
		if !n.Alive {
			continue
		}
		if n.HasComponent(c.Program) {
			regions[n.Region] = true
		} else {
			empty[n.Region] = true
		}
	}
	if len(regions) >= c.MinRegions {
		return nil
	}
	// Ask for one instance in some region lacking the program; the
	// planner picks a concrete node. Deterministic region choice.
	var candidates []string
	for r := range empty {
		if !regions[r] {
			candidates = append(candidates, r)
		}
	}
	sort.Strings(candidates)
	deficit := c.MinRegions - len(regions)
	var out []Violation
	for i := 0; i < deficit && i < len(candidates); i++ {
		out = append(out, Violation{
			Constraint: c.Describe(),
			Program:    c.Program,
			Region:     candidates[i],
			Deficit:    1,
		})
	}
	return out
}

// Describe implements Constraint.
func (c *Spread) Describe() string {
	return fmt.Sprintf("spread(%s, %d regions)", c.Program, c.MinRegions)
}

// Colocate requires every node running A to also run B (e.g. a probe
// beside every storelet).
type Colocate struct {
	XMLName xml.Name `xml:"colocate"`
	A       string   `xml:"a,attr"`
	B       string   `xml:"b,attr"`
}

var _ Constraint = (*Colocate)(nil)

// Evaluate implements Constraint.
func (c *Colocate) Evaluate(s *State) []Violation {
	var out []Violation
	for _, n := range s.Nodes() {
		if n.Alive && n.HasComponent(c.A) && !n.HasComponent(c.B) {
			out = append(out, Violation{
				Constraint: c.Describe(),
				Program:    c.B,
				Region:     n.Region,
				Deficit:    1,
			})
		}
	}
	return out
}

// Describe implements Constraint.
func (c *Colocate) Describe() string {
	return fmt.Sprintf("colocate(%s with %s)", c.B, c.A)
}

// Set is an ordered collection of constraints.
type Set struct {
	constraints []Constraint
}

// NewSet builds a constraint set.
func NewSet(cs ...Constraint) *Set { return &Set{constraints: cs} }

// Add appends a constraint.
func (cs *Set) Add(c Constraint) { cs.constraints = append(cs.constraints, c) }

// Len returns the number of constraints.
func (cs *Set) Len() int { return len(cs.constraints) }

// Evaluate returns all violations across the set, in constraint order.
func (cs *Set) Evaluate(s *State) []Violation {
	var out []Violation
	for _, c := range cs.constraints {
		out = append(out, c.Evaluate(s)...)
	}
	return out
}

// Describe lists the constraints.
func (cs *Set) Describe() []string {
	out := make([]string, len(cs.constraints))
	for i, c := range cs.constraints {
		out[i] = c.Describe()
	}
	return out
}

// xmlSet is the XML document form of a constraint set.
type xmlSet struct {
	XMLName xml.Name        `xml:"constraints"`
	Min     []*MinInstances `xml:"minInstances"`
	Spread  []*Spread       `xml:"spread"`
	Coloc   []*Colocate     `xml:"colocate"`
}

// MarshalSet serialises a constraint set (grouped by kind).
func MarshalSet(cs *Set) ([]byte, error) {
	var doc xmlSet
	for _, c := range cs.constraints {
		switch t := c.(type) {
		case *MinInstances:
			doc.Min = append(doc.Min, t)
		case *Spread:
			doc.Spread = append(doc.Spread, t)
		case *Colocate:
			doc.Coloc = append(doc.Coloc, t)
		default:
			return nil, fmt.Errorf("constraint: cannot serialise %T", c)
		}
	}
	return xml.Marshal(doc)
}

// UnmarshalSet parses a constraint document.
func UnmarshalSet(data []byte) (*Set, error) {
	var doc xmlSet
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("constraint: parse: %w", err)
	}
	out := NewSet()
	for _, c := range doc.Min {
		out.Add(c)
	}
	for _, c := range doc.Spread {
		out.Add(c)
	}
	for _, c := range doc.Coloc {
		out.Add(c)
	}
	return out, nil
}
