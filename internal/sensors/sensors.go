// Package sensors provides simulated context sources standing in for the
// hardware the paper's pipelines wrap (§4.2): "events may also arise from
// local devices and sensors such as GPS and GSM devices, RFID tag readers,
// weather sensors, etc. Each hardware device has a wrapper component that
// makes it usable as a pipeline component."
//
// Every sensor is a pipeline source component: it emits events downstream
// through an Outlet on a deterministic schedule driven by the node clock
// and a seeded RNG, so whole worlds replay bit-identically.
package sensors

import (
	"math"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pipeline"
	"github.com/gloss/active/internal/vclock"
)

// Day is the length of the simulated diurnal cycle.
const Day = 24 * time.Hour

// GPS simulates a user's position sensor using a random-waypoint mobility
// model over a set of anchor coordinates. It emits "gps.location" events.
type GPS struct {
	pipeline.Outlet
	user     string
	pos      netapi.Coord
	dest     netapi.Coord
	speedKmH float64
	interval time.Duration
	anchors  []netapi.Coord
	rng      *rand.Rand
	clock    vclock.Clock
	seq      uint64
	paused   bool
	stopped  bool
	mode     string
}

// GPSConfig parameterises a GPS sensor.
type GPSConfig struct {
	// User is the subject identifier stamped on events.
	User string
	// Start is the initial position.
	Start netapi.Coord
	// Anchors are waypoint candidates (places the user travels between).
	Anchors []netapi.Coord
	// SpeedKmH is the walking speed. Default 5.
	SpeedKmH float64
	// Interval is the reporting period. Default 30s.
	Interval time.Duration
	// Seed drives waypoint choice.
	Seed int64
	// Mode is stamped on events ("foot", "car", …). Default "foot".
	Mode string
}

// NewGPS builds the sensor; call Start to begin emitting.
func NewGPS(cfg GPSConfig, clock vclock.Clock) *GPS {
	if cfg.SpeedKmH == 0 {
		cfg.SpeedKmH = 5
	}
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Mode == "" {
		cfg.Mode = "foot"
	}
	g := &GPS{
		user:     cfg.User,
		pos:      cfg.Start,
		dest:     cfg.Start,
		speedKmH: cfg.SpeedKmH,
		interval: cfg.Interval,
		anchors:  cfg.Anchors,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		clock:    clock,
		mode:     cfg.Mode,
	}
	return g
}

// Name implements pipeline.Component.
func (g *GPS) Name() string { return "gps:" + g.user }

// Put implements pipeline.Component; GPS is a pure source and ignores input.
func (g *GPS) Put(*event.Event) {}

// Position returns the current simulated position.
func (g *GPS) Position() netapi.Coord { return g.pos }

// Start begins the reporting loop.
func (g *GPS) Start() {
	var tick func()
	tick = func() {
		if g.stopped {
			return
		}
		g.step()
		g.emit()
		g.clock.After(g.interval, tick)
	}
	g.clock.After(g.interval, tick)
}

// Stop halts the sensor permanently.
func (g *GPS) Stop() { g.stopped = true }

// Pause freezes movement (the user dwells); events continue.
func (g *GPS) Pause() { g.paused = true }

// Resume continues movement.
func (g *GPS) Resume() { g.paused = false }

// MoveTo overrides the current destination (scripted travel).
func (g *GPS) MoveTo(dest netapi.Coord) {
	g.dest = dest
	g.paused = false
}

// Teleport relocates instantly (e.g. Bob flies to Australia).
func (g *GPS) Teleport(pos netapi.Coord) {
	g.pos = pos
	g.dest = pos
}

// step advances the position by one interval of walking.
func (g *GPS) step() {
	if g.paused {
		return
	}
	remaining := g.pos.DistanceKm(g.dest)
	stepKm := g.speedKmH * g.interval.Hours()
	if remaining <= stepKm {
		g.pos = g.dest
		if len(g.anchors) > 0 {
			g.dest = g.anchors[g.rng.Intn(len(g.anchors))]
		}
		return
	}
	frac := stepKm / remaining
	g.pos.X += (g.dest.X - g.pos.X) * frac
	g.pos.Y += (g.dest.Y - g.pos.Y) * frac
}

func (g *GPS) emit() {
	g.seq++
	ev := event.New("gps.location", g.Name(), g.clock.Now()).
		Set("user", event.S(g.user)).
		Set("x", event.F(g.pos.X)).
		Set("y", event.F(g.pos.Y)).
		Set("mode", event.S(g.mode)).
		Stamp(g.seq)
	g.Emit(ev)
}

// Thermometer simulates an environmental temperature sensor with a
// diurnal cycle plus noise, emitting "weather.report" events for a region.
type Thermometer struct {
	pipeline.Outlet
	region   string
	baseC    float64
	ampC     float64
	noiseC   float64
	interval time.Duration
	rng      *rand.Rand
	clock    vclock.Clock
	seq      uint64
	stopped  bool
	offset   time.Duration // regional phase shift (hemispheres differ)
}

// ThermometerConfig parameterises a thermometer.
type ThermometerConfig struct {
	Region string
	// BaseC is the daily mean temperature. Default 12.
	BaseC float64
	// AmpC is the diurnal amplitude. Default 8.
	AmpC float64
	// NoiseC bounds the uniform measurement noise. Default 0.5.
	NoiseC float64
	// Interval is the reporting period. Default 5m.
	Interval time.Duration
	// Seed drives the noise.
	Seed int64
	// PhaseOffset shifts the diurnal cycle (e.g. 12h for the antipodes).
	PhaseOffset time.Duration
}

// NewThermometer builds the sensor; call Start to begin emitting.
func NewThermometer(cfg ThermometerConfig, clock vclock.Clock) *Thermometer {
	if cfg.BaseC == 0 {
		cfg.BaseC = 12
	}
	if cfg.AmpC == 0 {
		cfg.AmpC = 8
	}
	if cfg.NoiseC == 0 {
		cfg.NoiseC = 0.5
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Minute
	}
	return &Thermometer{
		region:   cfg.Region,
		baseC:    cfg.BaseC,
		ampC:     cfg.AmpC,
		noiseC:   cfg.NoiseC,
		interval: cfg.Interval,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		clock:    clock,
		offset:   cfg.PhaseOffset,
	}
}

// Name implements pipeline.Component.
func (th *Thermometer) Name() string { return "thermo:" + th.region }

// Put implements pipeline.Component; pure source.
func (th *Thermometer) Put(*event.Event) {}

// Start begins the reporting loop.
func (th *Thermometer) Start() {
	var tick func()
	tick = func() {
		if th.stopped {
			return
		}
		th.emit()
		th.clock.After(th.interval, tick)
	}
	th.clock.After(th.interval, tick)
}

// Stop halts the sensor.
func (th *Thermometer) Stop() { th.stopped = true }

// TempAt returns the modelled temperature (without noise) at time t.
func (th *Thermometer) TempAt(t time.Duration) float64 {
	dayFrac := float64((t+th.offset)%Day) / float64(Day)
	// Peak at 15:00, trough at 03:00.
	return th.baseC + th.ampC*math.Sin(2*math.Pi*(dayFrac-0.375))
}

func (th *Thermometer) emit() {
	th.seq++
	now := th.clock.Now()
	temp := th.TempAt(now) + (th.rng.Float64()*2-1)*th.noiseC
	ev := event.New("weather.report", th.Name(), now).
		Set("region", event.S(th.region)).
		Set("tempC", event.F(temp)).
		Stamp(th.seq)
	th.Emit(ev)
}

// PositionOracle reports a subject's current position; RFID readers use
// it to detect proximity (wired to GPS sensors by the world builder).
type PositionOracle func(user string) (netapi.Coord, bool)

// RFIDReader emits "rfid.read" events when tracked subjects come within
// its radius, modelling tag reads at doorways, shops, vehicles.
type RFIDReader struct {
	pipeline.Outlet
	name     string
	at       netapi.Coord
	radiusKm float64
	interval time.Duration
	users    []string
	oracle   PositionOracle
	clock    vclock.Clock
	inside   map[string]bool
	seq      uint64
	stopped  bool
}

// RFIDConfig parameterises a reader.
type RFIDConfig struct {
	Name     string
	At       netapi.Coord
	RadiusKm float64 // default 0.05 (50 m)
	Interval time.Duration
	Users    []string
}

// NewRFIDReader builds the reader; call Start to begin polling.
func NewRFIDReader(cfg RFIDConfig, oracle PositionOracle, clock vclock.Clock) *RFIDReader {
	if cfg.RadiusKm == 0 {
		cfg.RadiusKm = 0.05
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	return &RFIDReader{
		name:     cfg.Name,
		at:       cfg.At,
		radiusKm: cfg.RadiusKm,
		interval: cfg.Interval,
		users:    cfg.Users,
		oracle:   oracle,
		clock:    clock,
		inside:   make(map[string]bool),
	}
}

// Name implements pipeline.Component.
func (r *RFIDReader) Name() string { return "rfid:" + r.name }

// Put implements pipeline.Component; pure source.
func (r *RFIDReader) Put(*event.Event) {}

// Start begins the polling loop.
func (r *RFIDReader) Start() {
	var tick func()
	tick = func() {
		if r.stopped {
			return
		}
		r.poll()
		r.clock.After(r.interval, tick)
	}
	r.clock.After(r.interval, tick)
}

// Stop halts the reader.
func (r *RFIDReader) Stop() { r.stopped = true }

func (r *RFIDReader) poll() {
	for _, u := range r.users {
		pos, ok := r.oracle(u)
		if !ok {
			continue
		}
		in := pos.DistanceKm(r.at) <= r.radiusKm
		was := r.inside[u]
		if in && !was {
			r.seq++
			r.Emit(event.New("rfid.read", r.Name(), r.clock.Now()).
				Set("user", event.S(u)).
				Set("reader", event.S(r.name)).
				Set("enter", event.B(true)).
				Stamp(r.seq))
		}
		if !in && was {
			r.seq++
			r.Emit(event.New("rfid.read", r.Name(), r.clock.Now()).
				Set("user", event.S(u)).
				Set("reader", event.S(r.name)).
				Set("enter", event.B(false)).
				Stamp(r.seq))
		}
		r.inside[u] = in
	}
}
