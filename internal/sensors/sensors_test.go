package sensors

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
)

type sink struct {
	evs []*event.Event
}

func (s *sink) Name() string        { return "sink" }
func (s *sink) Put(ev *event.Event) { s.evs = append(s.evs, ev) }

func TestGPSEmitsAndMoves(t *testing.T) {
	sched := vclock.NewScheduler()
	g := NewGPS(GPSConfig{
		User:     "bob",
		Start:    netapi.Coord{X: 0, Y: 0},
		Anchors:  []netapi.Coord{{X: 10, Y: 0}},
		SpeedKmH: 6,
		Interval: time.Minute,
		Seed:     1,
	}, sched)
	out := &sink{}
	g.ConnectTo(out)
	g.MoveTo(netapi.Coord{X: 10, Y: 0})
	g.Start()
	sched.RunUntil(30 * time.Minute)
	if len(out.evs) != 30 {
		t.Fatalf("events = %d, want 30", len(out.evs))
	}
	first := out.evs[0]
	if first.Type != "gps.location" || first.GetString("user") != "bob" || first.GetString("mode") != "foot" {
		t.Fatalf("event shape: %+v", first.Attrs)
	}
	// 6 km/h for 30 min = 3 km toward (10,0).
	last := out.evs[len(out.evs)-1]
	x := last.GetNum("x")
	if x < 2.8 || x > 3.2 {
		t.Fatalf("x after 30m = %v, want ≈3", x)
	}
}

func TestGPSPauseTeleport(t *testing.T) {
	sched := vclock.NewScheduler()
	g := NewGPS(GPSConfig{User: "u", Interval: time.Minute, Seed: 1}, sched)
	out := &sink{}
	g.ConnectTo(out)
	g.Start()
	g.Pause()
	sched.RunUntil(5 * time.Minute)
	for _, ev := range out.evs {
		if ev.GetNum("x") != 0 || ev.GetNum("y") != 0 {
			t.Fatalf("paused user moved")
		}
	}
	g.Teleport(netapi.Coord{X: 100, Y: 200})
	sched.RunFor(2 * time.Minute)
	last := out.evs[len(out.evs)-1]
	if last.GetNum("x") != 100 || last.GetNum("y") != 200 {
		t.Fatalf("teleport ignored: %+v", last.Attrs)
	}
}

func TestGPSDeterministic(t *testing.T) {
	run := func() []float64 {
		sched := vclock.NewScheduler()
		g := NewGPS(GPSConfig{
			User: "u", Anchors: []netapi.Coord{{X: 5}, {Y: 5}, {X: -3, Y: 2}},
			Interval: time.Minute, Seed: 42,
		}, sched)
		out := &sink{}
		g.ConnectTo(out)
		g.Start()
		sched.RunUntil(4 * time.Hour)
		var xs []float64
		for _, ev := range out.evs {
			xs = append(xs, ev.GetNum("x"))
		}
		return xs
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at %d", i)
		}
	}
}

func TestThermometerDiurnalCycle(t *testing.T) {
	sched := vclock.NewScheduler()
	th := NewThermometer(ThermometerConfig{Region: "fife", BaseC: 12, AmpC: 8, NoiseC: 0.01, Interval: time.Hour, Seed: 1}, sched)
	out := &sink{}
	th.ConnectTo(out)
	th.Start()
	sched.RunUntil(24 * time.Hour)
	if len(out.evs) != 24 {
		t.Fatalf("events = %d", len(out.evs))
	}
	// Afternoon warmer than pre-dawn.
	afternoon := th.TempAt(15 * time.Hour)
	night := th.TempAt(3 * time.Hour)
	if afternoon <= night {
		t.Fatalf("diurnal cycle inverted: 15h=%v 3h=%v", afternoon, night)
	}
	if afternoon < 19 || afternoon > 21 {
		t.Fatalf("peak ≈ base+amp expected, got %v", afternoon)
	}
	// Phase offset flips hemispheres.
	oz := NewThermometer(ThermometerConfig{Region: "oz", PhaseOffset: 12 * time.Hour, Seed: 2}, sched)
	if oz.TempAt(15*time.Hour) >= oz.TempAt(3*time.Hour) {
		t.Fatalf("phase offset had no effect")
	}
	for _, ev := range out.evs {
		if ev.Type != "weather.report" || ev.GetString("region") != "fife" {
			t.Fatalf("event shape: %+v", ev)
		}
	}
}

func TestRFIDEnterExit(t *testing.T) {
	sched := vclock.NewScheduler()
	pos := netapi.Coord{X: 10, Y: 10}
	away := netapi.Coord{X: 20, Y: 20}
	cur := away
	oracle := func(user string) (netapi.Coord, bool) {
		if user == "bob" {
			return cur, true
		}
		return netapi.Coord{}, false
	}
	r := NewRFIDReader(RFIDConfig{
		Name: "door", At: pos, RadiusKm: 0.1, Interval: time.Second,
		Users: []string{"bob", "ghost"},
	}, oracle, sched)
	out := &sink{}
	r.ConnectTo(out)
	r.Start()
	sched.RunFor(3 * time.Second)
	if len(out.evs) != 0 {
		t.Fatalf("reads while away: %d", len(out.evs))
	}
	cur = pos // bob arrives
	sched.RunFor(3 * time.Second)
	if len(out.evs) != 1 {
		t.Fatalf("enter events = %d, want 1 (no repeats)", len(out.evs))
	}
	if !out.evs[0].Attrs["enter"].B || out.evs[0].GetString("reader") != "door" {
		t.Fatalf("enter event shape: %+v", out.evs[0].Attrs)
	}
	cur = away // bob leaves
	sched.RunFor(2 * time.Second)
	if len(out.evs) != 2 || out.evs[1].Attrs["enter"].B {
		t.Fatalf("exit event missing: %d", len(out.evs))
	}
}

func TestSensorStop(t *testing.T) {
	sched := vclock.NewScheduler()
	g := NewGPS(GPSConfig{User: "u", Interval: time.Second, Seed: 1}, sched)
	out := &sink{}
	g.ConnectTo(out)
	g.Start()
	sched.RunFor(3 * time.Second)
	n := len(out.evs)
	g.Stop()
	sched.RunFor(10 * time.Second)
	if len(out.evs) != n {
		t.Fatalf("stopped sensor kept emitting")
	}
}
