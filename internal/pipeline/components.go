package pipeline

import (
	"fmt"
	"strconv"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/vclock"
)

// registerStandard loads the built-in component library.
func registerStandard(r *Registry) {
	r.Register("filter.threshold", newThresholdFilter)
	r.Register("filter.attr", newAttrFilter)
	r.Register("filter.type", newTypeFilter)
	r.Register("buffer", newBuffer)
	r.Register("throttle", newThrottle)
	r.Register("aggregate.avg", newAverager)
	r.Register("counter", newCounter)
	r.Register("remote", newRemoteConnector)
	r.Register("deliver", newDeliver)
	r.Register("publish", newPublish)
	r.Register("map.setattr", newSetAttr)
}

// --- threshold filter -------------------------------------------------------

// ThresholdFilter forwards location events only when the subject has
// moved more than a threshold distance since the last forwarded event —
// the paper's own example of a filtering component (§4.2).
type ThresholdFilter struct {
	Outlet
	name   string
	km     float64
	keyBy  string
	last   map[string]netapi.Coord
	Passed uint64
	Culled uint64
}

func newThresholdFilter(name string, params map[string]string, _ Deps) (Component, error) {
	km, err := floatParam(params, "km", 0.05)
	if err != nil {
		return nil, err
	}
	keyBy := params["key"]
	if keyBy == "" {
		keyBy = "user"
	}
	return &ThresholdFilter{name: name, km: km, keyBy: keyBy, last: make(map[string]netapi.Coord)}, nil
}

// Name implements Component.
func (f *ThresholdFilter) Name() string { return f.name }

// Put implements Component.
func (f *ThresholdFilter) Put(ev *event.Event) {
	key := ev.GetString(f.keyBy)
	pos := netapi.Coord{X: ev.GetNum("x"), Y: ev.GetNum("y")}
	if prev, seen := f.last[key]; seen && prev.DistanceKm(pos) < f.km {
		f.Culled++
		return
	}
	f.last[key] = pos
	f.Passed++
	f.Emit(ev)
}

// --- attribute / type filters --------------------------------------------------

// AttrFilter forwards events matching a content-based filter expression.
type AttrFilter struct {
	Outlet
	name   string
	filter pubsub.Filter
	Passed uint64
	Culled uint64
}

func newAttrFilter(name string, params map[string]string, _ Deps) (Component, error) {
	f := pubsub.Filter{}
	// Parameters of the form "attr op value kind", e.g. c1="tempC ge 20 float".
	for i := 1; ; i++ {
		expr, ok := params[fmt.Sprintf("c%d", i)]
		if !ok {
			break
		}
		c, err := parseConstraint(expr)
		if err != nil {
			return nil, err
		}
		f.Constraints = append(f.Constraints, c)
	}
	return &AttrFilter{name: name, filter: f}, nil
}

func parseConstraint(expr string) (pubsub.Constraint, error) {
	var attr, op, val, kind string
	n, err := fmt.Sscanf(expr, "%s %s %s %s", &attr, &op, &val, &kind)
	if err != nil && n < 2 {
		return pubsub.Constraint{}, fmt.Errorf("pipeline: bad constraint %q", expr)
	}
	ops := map[string]pubsub.Op{
		"eq": pubsub.OpEq, "ne": pubsub.OpNe, "lt": pubsub.OpLt, "le": pubsub.OpLe,
		"gt": pubsub.OpGt, "ge": pubsub.OpGe, "prefix": pubsub.OpPrefix,
		"suffix": pubsub.OpSuffix, "contains": pubsub.OpContains, "exists": pubsub.OpExists,
	}
	o, ok := ops[op]
	if !ok {
		return pubsub.Constraint{}, fmt.Errorf("pipeline: unknown operator %q", op)
	}
	c := pubsub.Constraint{Attr: attr, Op: o}
	if o == pubsub.OpExists {
		return c, nil
	}
	switch kind {
	case "int":
		i, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return c, fmt.Errorf("pipeline: bad int in %q: %w", expr, err)
		}
		c.Val = event.I(i)
	case "float":
		fl, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return c, fmt.Errorf("pipeline: bad float in %q: %w", expr, err)
		}
		c.Val = event.F(fl)
	case "bool":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return c, fmt.Errorf("pipeline: bad bool in %q: %w", expr, err)
		}
		c.Val = event.B(b)
	default:
		c.Val = event.S(val)
	}
	return c, nil
}

// Name implements Component.
func (f *AttrFilter) Name() string { return f.name }

// Put implements Component.
func (f *AttrFilter) Put(ev *event.Event) {
	if f.filter.Matches(ev) {
		f.Passed++
		f.Emit(ev)
		return
	}
	f.Culled++
}

// TypeFilter forwards only events of one type.
type TypeFilter struct {
	Outlet
	name string
	typ  string
}

func newTypeFilter(name string, params map[string]string, _ Deps) (Component, error) {
	typ, ok := params["type"]
	if !ok {
		return nil, fmt.Errorf("pipeline: filter.type requires param type")
	}
	return &TypeFilter{name: name, typ: typ}, nil
}

// Name implements Component.
func (f *TypeFilter) Name() string { return f.name }

// Put implements Component.
func (f *TypeFilter) Put(ev *event.Event) {
	if ev.Type == f.typ {
		f.Emit(ev)
	}
}

// --- buffer ---------------------------------------------------------------------

// Buffer accumulates events and releases them when full or when the flush
// timer fires (§4.2 lists buffering among the standard components).
type Buffer struct {
	Outlet
	name    string
	size    int
	every   time.Duration
	clock   vclock.Clock
	pending []*event.Event
	Flushes uint64
}

func newBuffer(name string, params map[string]string, deps Deps) (Component, error) {
	size, err := intParam(params, "size", 16)
	if err != nil {
		return nil, err
	}
	every, err := durParam(params, "flushMs", 500*time.Millisecond)
	if err != nil {
		return nil, err
	}
	b := &Buffer{name: name, size: size, every: every, clock: deps.Clock}
	if b.clock != nil && every > 0 {
		var tick func()
		tick = func() {
			b.Flush()
			b.clock.After(b.every, tick)
		}
		b.clock.After(b.every, tick)
	}
	return b, nil
}

// Name implements Component.
func (b *Buffer) Name() string { return b.name }

// Put implements Component.
func (b *Buffer) Put(ev *event.Event) {
	b.pending = append(b.pending, ev)
	if len(b.pending) >= b.size {
		b.Flush()
	}
}

// Flush releases all buffered events downstream.
func (b *Buffer) Flush() {
	if len(b.pending) == 0 {
		return
	}
	b.Flushes++
	out := b.pending
	b.pending = nil
	for _, ev := range out {
		b.Emit(ev)
	}
}

// --- throttle -------------------------------------------------------------------

// Throttle drops events beyond a rate limit per window.
type Throttle struct {
	Outlet
	name        string
	max         int
	window      time.Duration
	clock       vclock.Clock
	windowStart time.Duration
	count       int
	Dropped     uint64
}

func newThrottle(name string, params map[string]string, deps Deps) (Component, error) {
	max, err := intParam(params, "max", 100)
	if err != nil {
		return nil, err
	}
	window, err := durParam(params, "windowMs", time.Second)
	if err != nil {
		return nil, err
	}
	if deps.Clock == nil {
		return nil, fmt.Errorf("pipeline: throttle requires a clock")
	}
	return &Throttle{name: name, max: max, window: window, clock: deps.Clock}, nil
}

// Name implements Component.
func (t *Throttle) Name() string { return t.name }

// Put implements Component.
func (t *Throttle) Put(ev *event.Event) {
	now := t.clock.Now()
	if now-t.windowStart >= t.window {
		t.windowStart = now
		t.count = 0
	}
	if t.count >= t.max {
		t.Dropped++
		return
	}
	t.count++
	t.Emit(ev)
}

// --- aggregator -----------------------------------------------------------------

// Averager emits a derived event with the windowed mean of an attribute —
// synthesising a higher-level event from low-level readings.
type Averager struct {
	Outlet
	name   string
	attr   string
	window time.Duration
	clock  vclock.Clock
	sum    float64
	n      int
	outTyp string
	seq    uint64
}

func newAverager(name string, params map[string]string, deps Deps) (Component, error) {
	attr, ok := params["attr"]
	if !ok {
		return nil, fmt.Errorf("pipeline: aggregate.avg requires param attr")
	}
	window, err := durParam(params, "windowMs", time.Second)
	if err != nil {
		return nil, err
	}
	outTyp := params["out"]
	if outTyp == "" {
		outTyp = "aggregate.avg"
	}
	if deps.Clock == nil {
		return nil, fmt.Errorf("pipeline: aggregate.avg requires a clock")
	}
	a := &Averager{name: name, attr: attr, window: window, clock: deps.Clock, outTyp: outTyp}
	var tick func()
	tick = func() {
		a.flush()
		a.clock.After(a.window, tick)
	}
	a.clock.After(a.window, tick)
	return a, nil
}

// Name implements Component.
func (a *Averager) Name() string { return a.name }

// Put implements Component.
func (a *Averager) Put(ev *event.Event) {
	if v, ok := ev.Get(a.attr); ok {
		if f, num := v.Num(); num {
			a.sum += f
			a.n++
		}
	}
}

func (a *Averager) flush() {
	if a.n == 0 {
		return
	}
	a.seq++
	out := event.New(a.outTyp, a.name, a.clock.Now()).
		Set("mean", event.F(a.sum/float64(a.n))).
		Set("count", event.I(int64(a.n))).
		Stamp(a.seq)
	a.sum, a.n = 0, 0
	a.Emit(out)
}

// --- counter --------------------------------------------------------------------

// Counter counts and forwards events (a probe, §4.6).
type Counter struct {
	Outlet
	name  string
	Count uint64
}

func newCounter(name string, _ map[string]string, _ Deps) (Component, error) {
	return &Counter{name: name}, nil
}

// Name implements Component.
func (c *Counter) Name() string { return c.name }

// Put implements Component.
func (c *Counter) Put(ev *event.Event) {
	c.Count++
	c.Emit(ev)
}

// --- remote connector -----------------------------------------------------------

// RemoteConnector ships events to a pipeline on another node via the
// put(event) network interface.
type RemoteConnector struct {
	name     string
	ep       netapi.Endpoint
	target   ids.ID
	pipeline string
	Sent     uint64
}

func newRemoteConnector(name string, params map[string]string, deps Deps) (Component, error) {
	if deps.Endpoint == nil {
		return nil, fmt.Errorf("pipeline: remote connector requires a network endpoint")
	}
	targetStr, ok := params["target"]
	if !ok {
		return nil, fmt.Errorf("pipeline: remote connector requires param target")
	}
	target, err := ids.Parse(targetStr)
	if err != nil {
		return nil, fmt.Errorf("pipeline: bad target: %w", err)
	}
	pl, ok := params["pipeline"]
	if !ok {
		return nil, fmt.Errorf("pipeline: remote connector requires param pipeline")
	}
	return &RemoteConnector{name: name, ep: deps.Endpoint, target: target, pipeline: pl}, nil
}

// Name implements Component.
func (r *RemoteConnector) Name() string { return r.name }

// Put implements Component.
func (r *RemoteConnector) Put(ev *event.Event) {
	r.Sent++
	r.ep.Send(r.target, &PutMsg{Pipeline: r.pipeline, Event: ev})
}

// --- deliver --------------------------------------------------------------------

// Deliver hands events to the node-level sink (matching engine, pub/sub
// bridge, test collector).
type Deliver struct {
	name    string
	deliver func(*event.Event)
}

func newDeliver(name string, _ map[string]string, deps Deps) (Component, error) {
	if deps.Deliver == nil {
		return nil, fmt.Errorf("pipeline: deliver component requires a sink")
	}
	return &Deliver{name: name, deliver: deps.Deliver}, nil
}

// Name implements Component.
func (d *Deliver) Name() string { return d.name }

// Put implements Component.
func (d *Deliver) Put(ev *event.Event) { d.deliver(ev) }

// --- publish --------------------------------------------------------------------

// Publish pushes events onto the global event service via the host's
// pub/sub client (the bridge from pipelines to the Siena-like bus).
type Publish struct {
	name    string
	publish func(*event.Event)
	Count   uint64
}

func newPublish(name string, _ map[string]string, deps Deps) (Component, error) {
	if deps.Publish == nil {
		return nil, fmt.Errorf("pipeline: publish component requires a publisher")
	}
	return &Publish{name: name, publish: deps.Publish}, nil
}

// Name implements Component.
func (p *Publish) Name() string { return p.name }

// Put implements Component.
func (p *Publish) Put(ev *event.Event) {
	p.Count++
	p.publish(ev)
}

// --- map.setattr ----------------------------------------------------------------

// SetAttr stamps a constant attribute onto passing events (cheap
// enrichment, e.g. tagging the processing region).
type SetAttr struct {
	Outlet
	name string
	attr string
	val  event.Value
}

func newSetAttr(name string, params map[string]string, _ Deps) (Component, error) {
	attr, ok := params["attr"]
	if !ok {
		return nil, fmt.Errorf("pipeline: map.setattr requires param attr")
	}
	val, ok := params["value"]
	if !ok {
		return nil, fmt.Errorf("pipeline: map.setattr requires param value")
	}
	return &SetAttr{name: name, attr: attr, val: event.S(val)}, nil
}

// Name implements Component.
func (s *SetAttr) Name() string { return s.name }

// Put implements Component.
func (s *SetAttr) Put(ev *event.Event) {
	out := ev.Clone()
	out.Attrs[s.attr] = s.val
	s.Emit(out)
}

// --- param helpers ---------------------------------------------------------------

func intParam(params map[string]string, key string, def int) (int, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("pipeline: param %s=%q: %w", key, v, err)
	}
	return i, nil
}

func floatParam(params map[string]string, key string, def float64) (float64, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("pipeline: param %s=%q: %w", key, v, err)
	}
	return f, nil
}

func durParam(params map[string]string, key string, def time.Duration) (time.Duration, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	ms, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("pipeline: param %s=%q: %w", key, v, err)
	}
	return time.Duration(ms) * time.Millisecond, nil
}
