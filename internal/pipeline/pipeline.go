// Package pipeline implements the paper's distributed XML pipelines
// (§4.2, Figure 2): the contextual matching engine is partitioned into
// pipeline components with XML events flowing between them, intra-node and
// inter-node. Each pipeline exposes the paper's put(event) interface so
// remote components can push events into it; hardware sensors are wrapped
// as source components; other components filter, buffer, throttle,
// aggregate and forward events.
//
// Pipelines are assembled from declarative XML specifications by an
// assembly process (Figure 3), with component behaviour instantiated from
// a factory registry — the same late-binding mechanism code bundles use.
package pipeline

import (
	"encoding/xml"
	"fmt"
	"sort"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// Component consumes events; most components also produce them through an
// embedded Outlet.
type Component interface {
	// Name identifies the component instance within its pipeline.
	Name() string
	// Put pushes one event into the component (the paper's put(event)).
	Put(ev *event.Event)
}

// Emitter is implemented by components with downstream connections.
type Emitter interface {
	ConnectTo(next Component)
}

// Outlet provides fan-out to downstream components; embed it to implement
// Emitter.
type Outlet struct {
	outs []Component
}

// ConnectTo adds a downstream component.
func (o *Outlet) ConnectTo(next Component) { o.outs = append(o.outs, next) }

// Emit forwards an event to every downstream component.
func (o *Outlet) Emit(ev *event.Event) {
	for _, c := range o.outs {
		c.Put(ev)
	}
}

// Downstream returns the number of connections (for assembly validation).
func (o *Outlet) Downstream() int { return len(o.outs) }

// Deps carries the host facilities a component factory may need.
type Deps struct {
	Clock vclock.Clock
	// Endpoint is non-nil when the pipeline runs on a network node; the
	// remote connector uses it.
	Endpoint netapi.Endpoint
	// Deliver hands events to the node-level sink (e.g. the matching
	// engine or pub/sub bridge); the "deliver" component uses it.
	Deliver func(*event.Event)
	// Publish pushes events onto the global event service (pub/sub); the
	// "publish" component uses it.
	Publish func(*event.Event)
}

// Factory instantiates a component from its XML parameters.
type Factory func(name string, params map[string]string, deps Deps) (Component, error)

// Registry maps component type names to factories.
type Registry struct {
	factories map[string]Factory
}

// NewRegistry returns a registry preloaded with the standard components
// (filter.*, buffer, throttle, aggregate, counter, remote, deliver).
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]Factory)}
	registerStandard(r)
	return r
}

// Register adds a factory; re-registration replaces.
func (r *Registry) Register(typ string, f Factory) { r.factories[typ] = f }

// Names lists registered component types, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New instantiates a component.
func (r *Registry) New(typ, name string, params map[string]string, deps Deps) (Component, error) {
	f, ok := r.factories[typ]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown component type %q", typ)
	}
	return f(name, params, deps)
}

// --- declarative assembly ------------------------------------------------------

// Spec is the XML description of a pipeline.
type Spec struct {
	XMLName    xml.Name        `xml:"pipeline"`
	Name       string          `xml:"name,attr"`
	Components []ComponentSpec `xml:"component"`
	Links      []LinkSpec      `xml:"link"`
	Inputs     []InputSpec     `xml:"input"`
}

// ComponentSpec declares one component instance.
type ComponentSpec struct {
	Name   string  `xml:"name,attr"`
	Type   string  `xml:"type,attr"`
	Params []Param `xml:"param"`
}

// Param is a component configuration entry.
type Param struct {
	Key   string `xml:"k,attr"`
	Value string `xml:"v,attr"`
}

// LinkSpec wires From's outlet to To's input.
type LinkSpec struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

// InputSpec marks a component as a pipeline ingress.
type InputSpec struct {
	Component string `xml:"component,attr"`
}

// ParseSpec reads a pipeline description.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := xml.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("pipeline: parse spec: %w", err)
	}
	return &s, nil
}

// MarshalSpec writes a pipeline description.
func MarshalSpec(s *Spec) ([]byte, error) { return xml.Marshal(s) }

// Pipeline is an assembled component graph with put(event) ingress.
type Pipeline struct {
	name       string
	components map[string]Component
	order      []string
	inputs     []Component
	eventsIn   uint64
}

// Name returns the pipeline name.
func (p *Pipeline) Name() string { return p.name }

// Component looks up a component by name.
func (p *Pipeline) Component(name string) (Component, bool) {
	c, ok := p.components[name]
	return c, ok
}

// Components lists component names in spec order.
func (p *Pipeline) Components() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// Put injects an event at the pipeline's ingress components.
func (p *Pipeline) Put(ev *event.Event) {
	p.eventsIn++
	for _, c := range p.inputs {
		c.Put(ev)
	}
}

// EventsIn reports the number of events injected.
func (p *Pipeline) EventsIn() uint64 { return p.eventsIn }

// Assemble builds a pipeline from its spec — the paper's "pipeline
// assembly process" (Figure 3).
func Assemble(spec *Spec, reg *Registry, deps Deps) (*Pipeline, error) {
	p := &Pipeline{
		name:       spec.Name,
		components: make(map[string]Component, len(spec.Components)),
	}
	for _, cs := range spec.Components {
		if _, dup := p.components[cs.Name]; dup {
			return nil, fmt.Errorf("pipeline: duplicate component %q", cs.Name)
		}
		params := make(map[string]string, len(cs.Params))
		for _, kv := range cs.Params {
			params[kv.Key] = kv.Value
		}
		c, err := reg.New(cs.Type, cs.Name, params, deps)
		if err != nil {
			return nil, fmt.Errorf("pipeline: component %q: %w", cs.Name, err)
		}
		p.components[cs.Name] = c
		p.order = append(p.order, cs.Name)
	}
	for _, l := range spec.Links {
		from, ok := p.components[l.From]
		if !ok {
			return nil, fmt.Errorf("pipeline: link from unknown component %q", l.From)
		}
		to, ok := p.components[l.To]
		if !ok {
			return nil, fmt.Errorf("pipeline: link to unknown component %q", l.To)
		}
		em, ok := from.(Emitter)
		if !ok {
			return nil, fmt.Errorf("pipeline: component %q cannot emit", l.From)
		}
		em.ConnectTo(to)
	}
	for _, in := range spec.Inputs {
		c, ok := p.components[in.Component]
		if !ok {
			return nil, fmt.Errorf("pipeline: input names unknown component %q", in.Component)
		}
		p.inputs = append(p.inputs, c)
	}
	if len(p.inputs) == 0 && len(p.order) > 0 {
		// Default ingress: the first component.
		p.inputs = append(p.inputs, p.components[p.order[0]])
	}
	return p, nil
}

// --- network runtime -----------------------------------------------------------

// PutMsg pushes an event into a named pipeline on a remote node — the web
// service put(event) interface of §4.2.
type PutMsg struct {
	Pipeline string       `xml:"pipeline,attr"`
	Event    *event.Event `xml:"event"`
}

// Kind implements wire.Message.
func (PutMsg) Kind() string { return "pipeline.put" }

// RegisterMessages records pipeline message types in a wire registry.
// PutMsg wraps a store write ordered through the pipeline; the inner
// fragment already travels in its binary form, so the envelope stays
// on the XML slow path until profiles say otherwise.
//
//vetactive:xmlfallback envelope only; inner store fragment is already binary
func RegisterMessages(r *wire.Registry) {
	r.Register(&PutMsg{})
}

// Runtime hosts named pipelines on a node and serves remote put(event).
type Runtime struct {
	ep        netapi.Endpoint
	pipelines map[string]*Pipeline
	// RemotePuts counts events received over the network.
	RemotePuts uint64
}

// NewRuntime builds a runtime bound to ep.
func NewRuntime(ep netapi.Endpoint) *Runtime {
	rt := &Runtime{ep: ep, pipelines: make(map[string]*Pipeline)}
	ep.Handle("pipeline.put", rt.handlePut)
	return rt
}

// Add registers an assembled pipeline.
func (rt *Runtime) Add(p *Pipeline) { rt.pipelines[p.Name()] = p }

// Remove drops a pipeline.
func (rt *Runtime) Remove(name string) { delete(rt.pipelines, name) }

// Pipeline looks up a hosted pipeline.
func (rt *Runtime) Pipeline(name string) (*Pipeline, bool) {
	p, ok := rt.pipelines[name]
	return p, ok
}

func (rt *Runtime) handlePut(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
	pm := msg.(*PutMsg)
	p, ok := rt.pipelines[pm.Pipeline]
	if !ok || pm.Event == nil {
		return
	}
	rt.RemotePuts++
	p.Put(pm.Event)
}
