package pipeline

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// sink collects delivered events.
type sink struct {
	name string
	evs  []*event.Event
}

func (s *sink) Name() string        { return s.name }
func (s *sink) Put(ev *event.Event) { s.evs = append(s.evs, ev) }
func newSink(name string) *sink     { return &sink{name: name} }
func locEvent(user string, x, y float64, seq uint64) *event.Event {
	return event.New("gps.location", "gps-"+user, 0).
		Set("user", event.S(user)).
		Set("x", event.F(x)).
		Set("y", event.F(y)).
		Stamp(seq)
}

func TestThresholdFilterCullsSmallMoves(t *testing.T) {
	c, err := newThresholdFilter("f", map[string]string{"km": "1.0"}, Deps{})
	if err != nil {
		t.Fatal(err)
	}
	f := c.(*ThresholdFilter)
	out := newSink("out")
	f.ConnectTo(out)
	f.Put(locEvent("bob", 0, 0, 1))     // first: passes
	f.Put(locEvent("bob", 0.1, 0, 2))   // 100m: culled
	f.Put(locEvent("bob", 2.0, 0, 3))   // 2km: passes
	f.Put(locEvent("anna", 0.1, 0, 4))  // different user, first: passes
	f.Put(locEvent("anna", 0.15, 0, 5)) // 50m: culled
	if len(out.evs) != 3 {
		t.Fatalf("passed %d events, want 3", len(out.evs))
	}
	if f.Passed != 3 || f.Culled != 2 {
		t.Fatalf("counters: passed=%d culled=%d", f.Passed, f.Culled)
	}
}

func TestAttrFilter(t *testing.T) {
	c, err := newAttrFilter("f", map[string]string{
		"c1": "tempC ge 20 float",
		"c2": "region eq fife string",
	}, Deps{})
	if err != nil {
		t.Fatal(err)
	}
	f := c.(*AttrFilter)
	out := newSink("out")
	f.ConnectTo(out)
	hot := event.New("weather.report", "s", 0).Set("tempC", event.F(21)).Set("region", event.S("fife")).Stamp(1)
	cold := event.New("weather.report", "s", 0).Set("tempC", event.F(12)).Set("region", event.S("fife")).Stamp(2)
	elsewhere := event.New("weather.report", "s", 0).Set("tempC", event.F(30)).Set("region", event.S("oz")).Stamp(3)
	f.Put(hot)
	f.Put(cold)
	f.Put(elsewhere)
	if len(out.evs) != 1 || out.evs[0].ID != hot.ID {
		t.Fatalf("filtering wrong: %d events", len(out.evs))
	}
}

func TestAttrFilterBadSpec(t *testing.T) {
	if _, err := newAttrFilter("f", map[string]string{"c1": "tempC wat 20 float"}, Deps{}); err == nil {
		t.Fatalf("bad operator accepted")
	}
	if _, err := newAttrFilter("f", map[string]string{"c1": "tempC ge abc float"}, Deps{}); err == nil {
		t.Fatalf("bad number accepted")
	}
}

func TestBufferFlushBySizeAndTimer(t *testing.T) {
	sched := vclock.NewScheduler()
	c, err := newBuffer("b", map[string]string{"size": "3", "flushMs": "100"}, Deps{Clock: sched})
	if err != nil {
		t.Fatal(err)
	}
	b := c.(*Buffer)
	out := newSink("out")
	b.ConnectTo(out)
	b.Put(locEvent("u", 0, 0, 1))
	b.Put(locEvent("u", 1, 0, 2))
	if len(out.evs) != 0 {
		t.Fatalf("flushed early")
	}
	b.Put(locEvent("u", 2, 0, 3)) // size reached
	if len(out.evs) != 3 {
		t.Fatalf("size flush delivered %d", len(out.evs))
	}
	b.Put(locEvent("u", 3, 0, 4))
	sched.RunFor(time.Second) // timer flush
	if len(out.evs) != 4 {
		t.Fatalf("timer flush delivered %d", len(out.evs))
	}
}

func TestThrottle(t *testing.T) {
	sched := vclock.NewScheduler()
	c, err := newThrottle("t", map[string]string{"max": "2", "windowMs": "1000"}, Deps{Clock: sched})
	if err != nil {
		t.Fatal(err)
	}
	th := c.(*Throttle)
	out := newSink("out")
	th.ConnectTo(out)
	for i := 0; i < 5; i++ {
		th.Put(locEvent("u", float64(i), 0, uint64(i)))
	}
	if len(out.evs) != 2 || th.Dropped != 3 {
		t.Fatalf("window 1: passed=%d dropped=%d", len(out.evs), th.Dropped)
	}
	sched.RunUntil(2 * time.Second) // next window
	th.Put(locEvent("u", 9, 0, 9))
	if len(out.evs) != 3 {
		t.Fatalf("event after window not passed")
	}
}

func TestAveragerSynthesisesHigherLevelEvent(t *testing.T) {
	sched := vclock.NewScheduler()
	c, err := newAverager("avg", map[string]string{"attr": "tempC", "windowMs": "1000", "out": "weather.mean"}, Deps{Clock: sched})
	if err != nil {
		t.Fatal(err)
	}
	a := c.(*Averager)
	out := newSink("out")
	a.ConnectTo(out)
	for _, temp := range []float64{10, 20, 30} {
		a.Put(event.New("weather.report", "s", 0).Set("tempC", event.F(temp)).Stamp(uint64(temp)))
	}
	sched.RunFor(time.Second)
	if len(out.evs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(out.evs))
	}
	if got := out.evs[0].GetNum("mean"); got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
	if out.evs[0].Type != "weather.mean" {
		t.Fatalf("type = %s", out.evs[0].Type)
	}
}

const demoSpec = `
<pipeline name="demo">
  <component name="thresh" type="filter.threshold"><param k="km" v="0.5"/></component>
  <component name="count" type="counter"/>
  <component name="out" type="deliver"/>
  <link from="thresh" to="count"/>
  <link from="count" to="out"/>
  <input component="thresh"/>
</pipeline>`

func TestAssembleFromXML(t *testing.T) {
	spec, err := ParseSpec([]byte(demoSpec))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	var delivered []*event.Event
	deps := Deps{Deliver: func(ev *event.Event) { delivered = append(delivered, ev) }}
	p, err := Assemble(spec, NewRegistry(), deps)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	p.Put(locEvent("bob", 0, 0, 1))
	p.Put(locEvent("bob", 0.1, 0, 2)) // culled by threshold
	p.Put(locEvent("bob", 5, 0, 3))
	if len(delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(delivered))
	}
	c, _ := p.Component("count")
	if c.(*Counter).Count != 2 {
		t.Fatalf("counter = %d", c.(*Counter).Count)
	}
	if p.EventsIn() != 3 {
		t.Fatalf("EventsIn = %d", p.EventsIn())
	}
}

func TestAssembleErrors(t *testing.T) {
	reg := NewRegistry()
	cases := []string{
		`<pipeline name="x"><component name="a" type="no.such"/></pipeline>`,
		`<pipeline name="x"><component name="a" type="counter"/><component name="a" type="counter"/></pipeline>`,
		`<pipeline name="x"><component name="a" type="counter"/><link from="a" to="zz"/></pipeline>`,
		`<pipeline name="x"><component name="a" type="counter"/><link from="zz" to="a"/></pipeline>`,
		`<pipeline name="x"><component name="a" type="counter"/><input component="zz"/></pipeline>`,
	}
	for i, src := range cases {
		spec, err := ParseSpec([]byte(src))
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		if _, err := Assemble(spec, reg, Deps{}); err == nil {
			t.Errorf("case %d: assembly should fail", i)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec([]byte(demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Components) != 3 || len(again.Links) != 2 || again.Name != "demo" {
		t.Fatalf("round trip lost structure: %+v", again)
	}
}

// TestDistributedPipeline reproduces Figure 2: a pipeline spanning two
// nodes, with the upstream half shipping events to the downstream half
// through the put(event) web-service interface.
func TestDistributedPipeline(t *testing.T) {
	w := simnet.NewWorld(simnet.Config{Seed: 1})
	reg := wire.NewRegistry()
	RegisterMessages(reg)
	nodeA := w.NewNode(ids.FromString("node-a"), "eu", netapi.Coord{})
	nodeB := w.NewNode(ids.FromString("node-b"), "us", netapi.Coord{X: 4000})

	// Downstream node B: counting sink.
	rtB := NewRuntime(nodeB)
	var received []*event.Event
	specB := `
<pipeline name="sink">
  <component name="count" type="counter"/>
  <component name="out" type="deliver"/>
  <link from="count" to="out"/>
</pipeline>`
	sb, err := ParseSpec([]byte(specB))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Assemble(sb, NewRegistry(), Deps{
		Clock:   nodeB.Clock(),
		Deliver: func(ev *event.Event) { received = append(received, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rtB.Add(pb)

	// Upstream node A: threshold filter → remote connector to B.
	specA := `
<pipeline name="src">
  <component name="thresh" type="filter.threshold"><param k="km" v="0.5"/></component>
  <component name="ship" type="remote">
    <param k="target" v="` + nodeB.ID().String() + `"/>
    <param k="pipeline" v="sink"/>
  </component>
  <link from="thresh" to="ship"/>
</pipeline>`
	sa, err := ParseSpec([]byte(specA))
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Assemble(sa, NewRegistry(), Deps{Clock: nodeA.Clock(), Endpoint: nodeA})
	if err != nil {
		t.Fatal(err)
	}
	NewRuntime(nodeA).Add(pa)

	pa.Put(locEvent("bob", 0, 0, 1))
	pa.Put(locEvent("bob", 0.1, 0, 2)) // culled before the network
	pa.Put(locEvent("bob", 3, 0, 3))
	w.RunFor(5 * time.Second)

	if len(received) != 2 {
		t.Fatalf("remote sink received %d, want 2", len(received))
	}
	if rtB.RemotePuts != 2 {
		t.Fatalf("RemotePuts = %d", rtB.RemotePuts)
	}
	if received[0].GetString("user") != "bob" {
		t.Fatalf("event content lost in transit")
	}
}

func TestSetAttrDoesNotMutateOriginal(t *testing.T) {
	c, err := newSetAttr("s", map[string]string{"attr": "region", "value": "eu"}, Deps{})
	if err != nil {
		t.Fatal(err)
	}
	sa := c.(*SetAttr)
	out := newSink("out")
	sa.ConnectTo(out)
	orig := locEvent("bob", 0, 0, 1)
	sa.Put(orig)
	if _, ok := orig.Attrs["region"]; ok {
		t.Fatalf("original event mutated")
	}
	if out.evs[0].GetString("region") != "eu" {
		t.Fatalf("attribute not set on copy")
	}
}

func TestTypeFilter(t *testing.T) {
	c, err := newTypeFilter("f", map[string]string{"type": "weather.report"}, Deps{})
	if err != nil {
		t.Fatal(err)
	}
	f := c.(*TypeFilter)
	out := newSink("out")
	f.ConnectTo(out)
	f.Put(event.New("weather.report", "s", 0).Stamp(1))
	f.Put(event.New("gps.location", "s", 0).Stamp(2))
	if len(out.evs) != 1 || out.evs[0].Type != "weather.report" {
		t.Fatalf("type filter passed %d events", len(out.evs))
	}
	if _, err := newTypeFilter("f", nil, Deps{}); err == nil {
		t.Fatal("missing type param accepted")
	}
}

func TestPublishComponent(t *testing.T) {
	var published []*event.Event
	deps := Deps{Publish: func(ev *event.Event) { published = append(published, ev) }}
	c, err := newPublish("p", nil, deps)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(locEvent("u", 1, 2, 1))
	if len(published) != 1 {
		t.Fatalf("published %d", len(published))
	}
	if c.(*Publish).Count != 1 {
		t.Fatalf("count = %d", c.(*Publish).Count)
	}
	if _, err := newPublish("p", nil, Deps{}); err == nil {
		t.Fatal("publish without publisher accepted")
	}
}

func TestRuntimeAddRemove(t *testing.T) {
	w := simnet.NewWorld(simnet.Config{Seed: 3})
	n := w.NewNode(ids.FromString("rt"), "eu", netapi.Coord{})
	rt := NewRuntime(n)
	spec, err := ParseSpec([]byte(`<pipeline name="p"><component name="c" type="counter"/></pipeline>`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Assemble(spec, NewRegistry(), Deps{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Add(p)
	if _, ok := rt.Pipeline("p"); !ok {
		t.Fatal("pipeline not registered")
	}
	rt.Remove("p")
	if _, ok := rt.Pipeline("p"); ok {
		t.Fatal("pipeline not removed")
	}
}
