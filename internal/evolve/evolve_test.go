package evolve

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/wire"
)

var testSecret = []byte("evolve-test-secret")

// world bundles the full substrate for evolution tests.
type world struct {
	sim     *simnet.World
	nodes   []*simnet.Node
	brokers []*pubsub.Broker
	clients []*pubsub.Client
	servers []*bundle.ThinServer
	stores  []*store.Store
	advs    []*Advertiser
	pub     ed25519.PublicKey
	priv    ed25519.PrivateKey
}

// regions cycles node placement across three regions.
var regions = []string{"eu", "us", "ap"}

func buildWorld(t testing.TB, seed int64, n int, withStores bool) *world {
	t.Helper()
	w := &world{sim: simnet.NewWorld(simnet.Config{Seed: seed})}
	rng := rand.New(rand.NewSource(seed))
	seedBuf := make([]byte, ed25519.SeedSize)
	rng.Read(seedBuf)
	w.priv = ed25519.NewKeyFromSeed(seedBuf)
	w.pub = w.priv.Public().(ed25519.PublicKey)

	reg := bundle.NewRegistry()
	reg.Register("replicator", func(map[string]string, []byte) (bundle.Program, error) {
		return nopProgram{}, nil
	})
	reg.Register("probe", func(map[string]string, []byte) (bundle.Program, error) {
		return nopProgram{}, nil
	})

	wreg := wire.NewRegistry()
	plaxton.RegisterMessages(wreg)
	store.RegisterMessages(wreg)

	var overlays []*plaxton.Overlay
	for i := 0; i < n; i++ {
		region := regions[i%len(regions)]
		node := w.sim.NewNode(ids.FromString(fmt.Sprintf("node-%d", i)), region,
			netapi.Coord{X: float64(i%len(regions)) * 4000, Y: float64(i)})
		w.nodes = append(w.nodes, node)
		// Broker chain across all nodes.
		b := pubsub.NewBroker(node, pubsub.Options{})
		w.brokers = append(w.brokers, b)
		if i > 0 {
			pubsub.ConnectBrokers(w.brokers[i-1], b)
		}
		w.clients = append(w.clients, pubsub.NewClient(node, node.ID()))
		ts := bundle.NewThinServer(node, reg, bundle.Options{Secret: testSecret})
		w.servers = append(w.servers, ts)
		i := i
		adv := NewAdvertiser(node, w.clients[i], time.Second)
		adv.Programs = func() []string { return w.servers[i].Domains() }
		w.advs = append(w.advs, adv)
		if withStores {
			ov := plaxton.New(node, wreg, plaxton.Options{HeartbeatInterval: -1, LeafHalf: 4})
			overlays = append(overlays, ov)
			w.stores = append(w.stores, store.New(node, ov, store.Options{RepairInterval: -1, Replicas: 1}))
		}
	}
	if withStores {
		overlays[0].CreateNetwork()
		for i := 1; i < n; i++ {
			overlays[i].Join(overlays[0].ID(), nil)
			w.sim.RunFor(2 * time.Second)
		}
	}
	for _, a := range w.advs {
		a.Start()
	}
	w.sim.RunFor(3 * time.Second)
	return w
}

type nopProgram struct{}

func (nopProgram) Start(*bundle.Domain) error { return nil }
func (nopProgram) Stop()                      {}

// maker returns a BundleMaker signing with the world key and minting
// capabilities with the shared secret.
func (w *world) maker() BundleMaker {
	return func(program string, target ids.ID, instance int) (*bundle.Bundle, error) {
		b := &bundle.Bundle{
			Name:    fmt.Sprintf("%s-%d", program, instance),
			Program: program,
			Capabilities: []bundle.Capability{
				bundle.MintCapability(testSecret, bundle.RightDeploy, uint64(instance)),
			},
		}
		if err := b.Sign(w.pub, w.priv); err != nil {
			return nil, err
		}
		return b, nil
	}
}

func (w *world) installedCount(program string) int {
	count := 0
	for _, ts := range w.servers {
		for _, name := range ts.Domains() {
			var p string
			if _, err := fmt.Sscanf(name, "%s", &p); err == nil {
				// Domain names are "<program>-<n>".
				if len(name) >= len(program) && name[:len(program)] == program {
					count++
				}
			}
		}
	}
	return count
}

func TestAdvertisementsBuildState(t *testing.T) {
	w := buildWorld(t, 1, 6, false)
	eng := NewEngine(w.nodes[0], w.clients[0], EngineOptions{})
	eng.Start()
	w.sim.RunFor(5 * time.Second)
	if got := len(eng.State().Nodes()); got != 6 {
		t.Fatalf("engine knows %d nodes, want 6", got)
	}
	st, ok := eng.State().Node(w.nodes[3].ID())
	if !ok || st.Region != regions[3%3] || !st.Alive {
		t.Fatalf("node 3 state: %+v", st)
	}
	if eng.Stats().AdvertsSeen == 0 {
		t.Fatalf("no adverts seen")
	}
}

func TestMonitorReportsCrashedNode(t *testing.T) {
	w := buildWorld(t, 2, 5, false)
	mon := NewMonitor(w.nodes[0], w.clients[0], time.Second, 3)
	mon.Start()
	w.sim.RunFor(3 * time.Second)
	if mon.Tracked() != 4 {
		t.Fatalf("tracking %d nodes, want 4 (not self)", mon.Tracked())
	}
	// A subscriber watching for downs.
	var downs []string
	w.clients[1].Subscribe(pubsub.NewFilter(pubsub.TypeIs(TypeDown)), func(ev *event.Event) {
		downs = append(downs, ev.GetString("node"))
	})
	w.sim.RunFor(2 * time.Second)
	w.nodes[4].Kill()
	w.sim.RunFor(15 * time.Second)
	if mon.Reported == 0 {
		t.Fatalf("monitor reported nothing")
	}
	found := false
	for _, d := range downs {
		if d == w.nodes[4].ID().String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("down event for crashed node not published: %v", downs)
	}
	// Graceful leave must NOT produce a down event.
	before := mon.Reported
	w.advs[3].Leave()
	w.sim.RunFor(15 * time.Second)
	if mon.Reported != before {
		t.Fatalf("monitor reported a gracefully leaving node")
	}
}

func TestEvolutionDeploysToSatisfyConstraint(t *testing.T) {
	w := buildWorld(t, 3, 9, false)
	cs := constraint.NewSet(&constraint.MinInstances{Program: "replicator", Region: "eu", N: 3})
	eng := NewEngine(w.nodes[0], w.clients[0], EngineOptions{
		Constraints: cs,
		MakeBundle:  w.maker(),
	})
	eng.Start()
	w.sim.RunFor(20 * time.Second)

	// Exactly 3 instances, all in eu (nodes 0,3,6).
	installed := 0
	for i, ts := range w.servers {
		n := len(ts.Domains())
		if n > 0 && w.nodes[i].Info().Region != "eu" {
			t.Fatalf("instance deployed outside eu on node %d (%s)", i, w.nodes[i].Info().Region)
		}
		installed += n
	}
	if installed != 3 {
		t.Fatalf("installed = %d, want exactly 3 (no over-deploy)", installed)
	}
	st := eng.Stats()
	if st.DeploysOK != 3 || st.DeploysFailed != 0 {
		t.Fatalf("deploy stats: %+v", st)
	}
	if st.Repaired == 0 {
		t.Fatalf("violation never recorded as repaired")
	}
}

func TestEvolutionRepairsAfterCrash(t *testing.T) {
	w := buildWorld(t, 4, 9, false)
	cs := constraint.NewSet(&constraint.MinInstances{Program: "replicator", N: 3})
	eng := NewEngine(w.nodes[0], w.clients[0], EngineOptions{
		Constraints: cs,
		MakeBundle:  w.maker(),
	})
	mon := NewMonitor(w.nodes[0], w.clients[0], time.Second, 3)
	eng.Start()
	mon.Start()
	w.sim.RunFor(20 * time.Second)

	// Find a node hosting an instance and crash it.
	victim := -1
	for i, ts := range w.servers {
		if len(ts.Domains()) > 0 && i != 0 {
			victim = i
			break
		}
	}
	if victim == -1 {
		t.Fatalf("no instance deployed away from node 0")
	}
	w.nodes[victim].Kill()
	w.sim.RunFor(30 * time.Second)

	// Live instances must be back to ≥ 3.
	live := 0
	for i, ts := range w.servers {
		if w.nodes[i].Alive() {
			live += len(ts.Domains())
		}
	}
	if live < 3 {
		t.Fatalf("live instances after crash repair = %d, want ≥ 3", live)
	}
	if eng.RepairTimes.Count() < 2 {
		t.Fatalf("repair latency not recorded: %d", eng.RepairTimes.Count())
	}
}

func TestGracefulLeaveRepairsWithoutMonitor(t *testing.T) {
	// A leaving node announces itself; the engine reacts immediately —
	// no heartbeat-miss delay needed.
	w := buildWorld(t, 5, 6, false)
	cs := constraint.NewSet(&constraint.MinInstances{Program: "replicator", N: 2})
	eng := NewEngine(w.nodes[0], w.clients[0], EngineOptions{
		Constraints: cs,
		MakeBundle:  w.maker(),
	})
	eng.Start()
	w.sim.RunFor(15 * time.Second)

	victim := -1
	for i, ts := range w.servers {
		if len(ts.Domains()) > 0 {
			victim = i
			break
		}
	}
	if victim == -1 {
		t.Fatalf("nothing deployed")
	}
	w.advs[victim].Leave()
	// Note: the thin server on the victim still runs (graceful = planned
	// withdrawal), but the engine must already be re-deploying elsewhere.
	w.sim.RunFor(10 * time.Second)
	if eng.Stats().LeavesSeen == 0 {
		t.Fatalf("leave event not seen")
	}
	liveElsewhere := 0
	for i, ts := range w.servers {
		if i != victim {
			liveElsewhere += len(ts.Domains())
		}
	}
	if liveElsewhere < 2 {
		t.Fatalf("instances outside leaving node = %d, want ≥ 2", liveElsewhere)
	}
}

func TestBackupPolicyReplicatesRemotely(t *testing.T) {
	w := buildWorld(t, 6, 9, true)
	eng := NewEngine(w.nodes[0], w.clients[0], EngineOptions{})
	eng.Start()
	w.sim.RunFor(5 * time.Second)

	pol := NewBackupPolicy(w.clients[0], w.stores[0], eng.State())
	pol.Start()
	w.sim.RunFor(2 * time.Second)

	// Node 3 (eu) stores personal data and announces its creation.
	var guid ids.ID
	w.stores[3].Put([]byte("bob's diary"), func(g ids.ID, err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		guid = g
	})
	w.sim.RunFor(5 * time.Second)
	AnnounceCreated(w.clients[3], w.nodes[3].Clock(), guid, "eu", "bob", 1)
	w.sim.RunFor(10 * time.Second)

	if pol.Pushes != 1 {
		t.Fatalf("backup pushes = %d, want 1", pol.Pushes)
	}
	// Some node outside eu must now hold a replica.
	remote := false
	for i, s := range w.stores {
		if w.nodes[i].Info().Region != "eu" && s.Holds(guid) {
			remote = true
		}
	}
	if !remote {
		t.Fatalf("no remote-region replica created")
	}
}

func TestLatencyPolicyProgressiveMigration(t *testing.T) {
	w := buildWorld(t, 7, 9, true)
	eng := NewEngine(w.nodes[0], w.clients[0], EngineOptions{})
	eng.Start()
	w.sim.RunFor(5 * time.Second)

	// Seed 4 chunks of bob's data from an eu node.
	for i := 0; i < 4; i++ {
		w.stores[0].PutAs(UserDataKey("bob", i), []byte(fmt.Sprintf("chunk-%d", i)), func(error) {})
	}
	w.sim.RunFor(5 * time.Second)

	pol := NewLatencyPolicy(w.clients[0], w.stores[0], eng.State(), w.nodes[0].Clock())
	pol.DwellStep = time.Minute
	pol.Chunks = 4
	pol.Start()
	w.sim.RunFor(time.Second)

	// Bob dwells in "ap": publish location events with the region attr.
	loc := func(seq uint64) *event.Event {
		return event.New("gps.location", "gps-bob", w.sim.Now()).
			Set("user", event.S("bob")).
			Set("x", event.F(8000)).Set("y", event.F(2)).
			Set("region", event.S("ap")).
			Stamp(seq)
	}
	for i := 0; i < 10; i++ {
		w.clients[2].Publish(loc(uint64(i + 1)))
		w.sim.RunFor(45 * time.Second)
	}
	// 10 × 45s = 7.5 minutes of dwell → all 4 chunks migrated.
	if pol.Migrations != 4 {
		t.Fatalf("migrations = %d, want 4", pol.Migrations)
	}
	if region, pushed, ok := pol.Dwell("bob"); !ok || region != "ap" || pushed != 4 {
		t.Fatalf("dwell state: %v %v %v", region, pushed, ok)
	}
	// The ap node picked must hold some chunk replicas.
	apHolds := 0
	for i, s := range w.stores {
		if w.nodes[i].Info().Region != "ap" {
			continue
		}
		for c := 0; c < 4; c++ {
			if s.Holds(UserDataKey("bob", c)) {
				apHolds++
			}
		}
	}
	if apHolds < 2 {
		t.Fatalf("ap replicas = %d, want several", apHolds)
	}
	// Moving resets dwell.
	w.clients[2].Publish(event.New("gps.location", "gps-bob", w.sim.Now()).
		Set("user", event.S("bob")).Set("region", event.S("eu")).
		Set("x", event.F(0)).Set("y", event.F(0)).Stamp(99))
	w.sim.RunFor(2 * time.Second)
	if region, pushed, _ := pol.Dwell("bob"); region != "eu" || pushed != 0 {
		t.Fatalf("dwell not reset on move: %v %v", region, pushed)
	}
}
