// Package evolve implements the paper's evolution and monitoring engines
// (§4.4, §4.6): nodes advertise their resources and arrival/departure via
// publish events on the P2P event system; a monitoring engine detects
// silent failures and publishes departure events on the lost node's
// behalf; the evolution engine subscribes to these events, re-evaluates
// the placement constraint set, and repairs violations by deploying code
// bundles onto suitable nodes. Data placement monitors implement the
// latency-reduction and backup policies of §4.6 on top of the storage
// layer's push primitive.
package evolve

import (
	"sort"
	"strings"
	"time"

	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
)

// Event types used by the evolution machinery.
const (
	TypeAdvert  = "node.advert"
	TypeLeaving = "node.leaving"
	TypeDown    = "node.down"
	TypeCreated = "data.created"
)

// AdvertFilter matches resource advertisements.
func AdvertFilter() pubsub.Filter { return pubsub.NewFilter(pubsub.TypeIs(TypeAdvert)) }

// Advertiser periodically publishes this node's resource availability,
// and announces graceful withdrawal ("nodes may disappear from the
// network either gracefully, in which case they will publish events
// warning of their imminent withdrawal…", §4.4).
type Advertiser struct {
	client   *pubsub.Client
	info     netapi.NodeInfo
	interval time.Duration
	// Programs reports the installed component programs.
	Programs func() []string
	// Resources reports spare capacity.
	Resources func() (cpuFree float64, storageFreeMB int64)
	clock     interface{ Now() time.Duration }
	after     func(time.Duration, func())
	seq       uint64
	stopped   bool
	Published uint64
}

// NewAdvertiser builds an advertiser for the node behind ep.
func NewAdvertiser(ep netapi.Endpoint, client *pubsub.Client, interval time.Duration) *Advertiser {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	a := &Advertiser{
		client:   client,
		info:     ep.Info(),
		interval: interval,
		Programs: func() []string { return nil },
		Resources: func() (float64, int64) {
			return 1.0, 1024
		},
		clock: ep.Clock(),
		after: func(d time.Duration, fn func()) { ep.Clock().After(d, fn) },
	}
	return a
}

// Start begins periodic advertisement (one immediately).
func (a *Advertiser) Start() {
	a.publish()
	var tick func()
	tick = func() {
		if a.stopped {
			return
		}
		a.publish()
		a.after(a.interval, tick)
	}
	a.after(a.interval, tick)
}

// Stop halts advertisement without a leave event (crash simulation).
func (a *Advertiser) Stop() { a.stopped = true }

// Leave publishes a graceful withdrawal and stops advertising.
func (a *Advertiser) Leave() {
	a.stopped = true
	a.seq++
	ev := event.New(TypeLeaving, "advert/"+a.info.ID.Short(), a.clock.Now()).
		Set("node", event.S(a.info.ID.String())).
		Stamp(a.seq + 1_000_000)
	a.client.Publish(ev)
}

func (a *Advertiser) publish() {
	a.seq++
	a.Published++
	cpu, stor := a.Resources()
	ev := event.New(TypeAdvert, "advert/"+a.info.ID.Short(), a.clock.Now()).
		Set("node", event.S(a.info.ID.String())).
		Set("region", event.S(a.info.Region)).
		Set("x", event.F(a.info.Coord.X)).
		Set("y", event.F(a.info.Coord.Y)).
		Set("cpuFree", event.F(cpu)).
		Set("storageFreeMB", event.I(stor)).
		Set("programs", event.S(strings.Join(a.Programs(), ","))).
		Stamp(a.seq)
	a.client.Publish(ev)
}

// NodeStateFromAdvert parses an advertisement into a constraint view.
func NodeStateFromAdvert(ev *event.Event) (constraint.NodeState, bool) {
	id, err := ids.Parse(ev.GetString("node"))
	if err != nil {
		return constraint.NodeState{}, false
	}
	ns := constraint.NodeState{
		ID:            id,
		Region:        ev.GetString("region"),
		Coord:         netapi.Coord{X: ev.GetNum("x"), Y: ev.GetNum("y")},
		Alive:         true,
		CPUFree:       ev.GetNum("cpuFree"),
		StorageFreeMB: int64(ev.GetNum("storageFreeMB")),
	}
	if progs := ev.GetString("programs"); progs != "" {
		ns.Components = strings.Split(progs, ",")
		sort.Strings(ns.Components)
	}
	return ns, true
}

// Monitor is the monitoring engine of §4.4: it tracks advertisement
// heartbeats and publishes node.down events on behalf of nodes that
// vanish without warning.
type Monitor struct {
	client     *pubsub.Client
	clock      interface{ Now() time.Duration }
	after      func(time.Duration, func())
	selfID     ids.ID
	interval   time.Duration
	missFactor int
	lastSeen   map[string]time.Duration
	order      []string
	seq        uint64
	stopped    bool
	// Reported counts on-behalf departure events published.
	Reported uint64
}

// NewMonitor builds a monitoring engine on ep's node.
func NewMonitor(ep netapi.Endpoint, client *pubsub.Client, interval time.Duration, missFactor int) *Monitor {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if missFactor <= 0 {
		missFactor = 3
	}
	return &Monitor{
		client:     client,
		clock:      ep.Clock(),
		after:      func(d time.Duration, fn func()) { ep.Clock().After(d, fn) },
		selfID:     ep.ID(),
		interval:   interval,
		missFactor: missFactor,
		lastSeen:   make(map[string]time.Duration),
	}
}

// Start subscribes to advertisements and begins the liveness sweep.
func (m *Monitor) Start() {
	m.client.Subscribe(AdvertFilter(), func(ev *event.Event) {
		node := ev.GetString("node")
		if node == "" || node == m.selfID.String() {
			return
		}
		if _, known := m.lastSeen[node]; !known {
			m.order = append(m.order, node)
			sort.Strings(m.order)
		}
		m.lastSeen[node] = m.clock.Now()
	})
	m.client.Subscribe(pubsub.NewFilter(pubsub.TypeIs(TypeLeaving)), func(ev *event.Event) {
		m.drop(ev.GetString("node"))
	})
	var tick func()
	tick = func() {
		if m.stopped {
			return
		}
		m.sweep()
		m.after(m.interval, tick)
	}
	m.after(m.interval, tick)
}

// Stop halts the sweep.
func (m *Monitor) Stop() { m.stopped = true }

// Tracked returns the number of nodes currently monitored.
func (m *Monitor) Tracked() int { return len(m.lastSeen) }

func (m *Monitor) drop(node string) {
	if _, ok := m.lastSeen[node]; !ok {
		return
	}
	delete(m.lastSeen, node)
	for i, n := range m.order {
		if n == node {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

func (m *Monitor) sweep() {
	deadline := m.clock.Now() - time.Duration(m.missFactor)*m.interval
	var lost []string
	for _, node := range m.order {
		if m.lastSeen[node] < deadline {
			lost = append(lost, node)
		}
	}
	for _, node := range lost {
		m.drop(node)
		m.seq++
		m.Reported++
		ev := event.New(TypeDown, "monitor/"+m.selfID.Short(), m.clock.Now()).
			Set("node", event.S(node)).
			Set("reporter", event.S(m.selfID.String())).
			Stamp(m.seq)
		m.client.Publish(ev)
	}
}
