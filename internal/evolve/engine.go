package evolve

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/gauges"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
)

// BundleMaker constructs (and signs) the bundle that realises a program
// on a target node. Supplied by the host, which owns the signing keys and
// capability secrets.
type BundleMaker func(program string, target ids.ID, instance int) (*bundle.Bundle, error)

// EngineOptions configure the evolution engine.
type EngineOptions struct {
	// Constraints is the placement policy to enforce.
	Constraints *constraint.Set
	// MakeBundle realises program deployments.
	MakeBundle BundleMaker
	// EvalInterval is the re-evaluation period. Default 2s.
	EvalInterval time.Duration
	// DeployTimeout bounds one deployment attempt. Default 5s.
	DeployTimeout time.Duration
}

func (o *EngineOptions) applyDefaults() {
	if o.EvalInterval <= 0 {
		o.EvalInterval = 2 * time.Second
	}
	if o.DeployTimeout <= 0 {
		o.DeployTimeout = 5 * time.Second
	}
}

// EngineStats counts evolution activity.
type EngineStats struct {
	AdvertsSeen    uint64
	DownsSeen      uint64
	LeavesSeen     uint64
	Evaluations    uint64
	ViolationsSeen uint64
	DeploysStarted uint64
	DeploysOK      uint64
	DeploysFailed  uint64
	NoCandidates   uint64
	Repaired       uint64 // violations that cleared after our deploys
}

// Engine is the (deployable, decentralised) evolution engine: it watches
// the resource event streams, evaluates the constraint set and deploys
// bundles to repair violations.
type Engine struct {
	ep     netapi.Endpoint
	client *pubsub.Client
	opts   EngineOptions
	state  *constraint.State

	inflight    map[string]int           // violation key → deployments in flight
	firstSeen   map[string]time.Duration // violation key → first observation
	deploySeq   int
	stats       EngineStats
	RepairTimes *gauges.Histogram
	stopped     bool
}

// NewEngine builds an evolution engine on ep's node.
func NewEngine(ep netapi.Endpoint, client *pubsub.Client, opts EngineOptions) *Engine {
	opts.applyDefaults()
	return &Engine{
		ep:          ep,
		client:      client,
		opts:        opts,
		state:       constraint.NewState(),
		inflight:    make(map[string]int),
		firstSeen:   make(map[string]time.Duration),
		RepairTimes: &gauges.Histogram{},
	}
}

// State exposes the engine's deployment view (read-only use expected).
func (e *Engine) State() *constraint.State { return e.state }

// Stats returns a snapshot of counters. Must run on the engine's
// owning goroutine: counters are mutated only inside subscription
// callbacks, which the client delivers on that same loop.
//
//vetactive:ignore atomicstats actor-confined; writers are delivery callbacks on the same loop
func (e *Engine) Stats() EngineStats { return e.stats }

// Start subscribes to the resource event streams and begins evaluating.
func (e *Engine) Start() {
	e.client.Subscribe(AdvertFilter(), func(ev *event.Event) {
		e.stats.AdvertsSeen++
		if ns, ok := NodeStateFromAdvert(ev); ok {
			// Preserve locally recorded deployments not yet visible in
			// the advert (adverts lag behind our own installs).
			if prev, exists := e.state.Node(ns.ID); exists {
				ns.Components = mergeComponents(prev.Components, ns.Components)
			}
			e.state.Upsert(ns)
		}
	})
	e.client.Subscribe(pubsub.NewFilter(pubsub.TypeIs(TypeDown)), func(ev *event.Event) {
		e.stats.DownsSeen++
		if id, err := ids.Parse(ev.GetString("node")); err == nil {
			e.state.MarkDead(id)
			e.evaluate()
		}
	})
	e.client.Subscribe(pubsub.NewFilter(pubsub.TypeIs(TypeLeaving)), func(ev *event.Event) {
		e.stats.LeavesSeen++
		if id, err := ids.Parse(ev.GetString("node")); err == nil {
			e.state.MarkDead(id)
			e.evaluate()
		}
	})
	var tick func()
	tick = func() {
		if e.stopped {
			return
		}
		e.evaluate()
		e.ep.Clock().After(e.opts.EvalInterval, tick)
	}
	e.ep.Clock().After(e.opts.EvalInterval, tick)
}

// Stop halts evaluation.
func (e *Engine) Stop() { e.stopped = true }

// mergeComponents unions two component lists preserving multiplicity of
// the larger count per program.
func mergeComponents(local, advertised []string) []string {
	count := make(map[string]int)
	for _, c := range advertised {
		count[c]++
	}
	localCount := make(map[string]int)
	for _, c := range local {
		localCount[c]++
	}
	out := append([]string(nil), advertised...)
	for prog, lc := range localCount {
		if extra := lc - count[prog]; extra > 0 {
			for i := 0; i < extra; i++ {
				out = append(out, prog)
			}
		}
	}
	return out
}

// evaluate runs one constraint pass and launches repairs.
func (e *Engine) evaluate() {
	if e.opts.Constraints == nil {
		return
	}
	e.stats.Evaluations++
	now := e.ep.Clock().Now()
	violations := e.opts.Constraints.Evaluate(e.state)
	open := make(map[string]bool, len(violations))
	for _, v := range violations {
		key := violationKey(v)
		open[key] = true
		if _, seen := e.firstSeen[key]; !seen {
			e.firstSeen[key] = now
			e.stats.ViolationsSeen++
		}
		e.repair(v, key)
	}
	// Violations that disappeared: record repair latency.
	for key, since := range e.firstSeen {
		if !open[key] {
			e.RepairTimes.Observe(now - since)
			e.stats.Repaired++
			delete(e.firstSeen, key)
		}
	}
}

func violationKey(v constraint.Violation) string {
	return v.Constraint + "|" + v.Program + "|" + v.Region
}

// repair deploys bundles to cover the violation's deficit.
func (e *Engine) repair(v constraint.Violation, key string) {
	if e.opts.MakeBundle == nil {
		return
	}
	need := v.Deficit - e.inflight[key]
	for i := 0; i < need; i++ {
		target, ok := e.pickCandidate(v.Program, v.Region)
		if !ok {
			e.stats.NoCandidates++
			return
		}
		e.deploySeq++
		b, err := e.opts.MakeBundle(v.Program, target, e.deploySeq)
		if err != nil {
			e.stats.DeploysFailed++
			return
		}
		e.inflight[key]++
		e.stats.DeploysStarted++
		// Optimistically record the placement so the same candidate is
		// not chosen twice; rolled back if the deploy fails.
		e.state.AddComponent(target, v.Program)
		bundle.Deploy(e.ep, target, b, e.opts.DeployTimeout, func(err error) {
			e.inflight[key]--
			if err != nil {
				e.stats.DeploysFailed++
				e.state.RemoveComponent(target, v.Program)
				return
			}
			e.stats.DeploysOK++
		})
	}
}

// pickCandidate selects the best node for a new instance: alive, in the
// region (when given), preferring nodes not yet running the program, then
// most spare CPU, then smallest ID (deterministic).
func (e *Engine) pickCandidate(program, region string) (ids.ID, bool) {
	candidates := e.state.AliveInRegion(region)
	if len(candidates) == 0 {
		return ids.Zero, false
	}
	best := -1
	better := func(i, j int) bool { // is i better than j
		a, b := candidates[i], candidates[j]
		ha, hb := a.HasComponent(program), b.HasComponent(program)
		if ha != hb {
			return !ha
		}
		if a.CPUFree != b.CPUFree {
			return a.CPUFree > b.CPUFree
		}
		return ids.Less(a.ID, b.ID)
	}
	for i := range candidates {
		if best == -1 || better(i, best) {
			best = i
		}
	}
	return candidates[best].ID, true
}

// Describe renders the engine's constraint set.
func (e *Engine) Describe() string {
	if e.opts.Constraints == nil {
		return "evolution engine (no constraints)"
	}
	return fmt.Sprintf("evolution engine enforcing %d constraints", e.opts.Constraints.Len())
}
