package evolve

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/store"
)

// AnnounceCreated publishes the data.created event that feeds the backup
// policy — callers announce new personal data right after storing it.
func AnnounceCreated(client *pubsub.Client, clock interface{ Now() time.Duration },
	guid ids.ID, region, user string, seq uint64) {
	ev := event.New(TypeCreated, "store/"+region, clock.Now()).
		Set("guid", event.S(guid.String())).
		Set("region", event.S(region)).
		Set("user", event.S(user)).
		Stamp(seq)
	client.Publish(ev)
}

// BackupPolicy implements §4.6: "a backup policy might seek to replicate
// data on a geographically remote storage unit as soon as possible after
// it was created." It subscribes to data.created events and pushes a
// replica to a node in a different region.
type BackupPolicy struct {
	client *pubsub.Client
	st     *store.Store
	state  *constraint.State
	// Pushes counts backup replications requested.
	Pushes uint64
	// NoRemote counts events with no usable remote node.
	NoRemote uint64
}

// NewBackupPolicy builds the policy; state supplies candidate nodes
// (typically the evolution engine's state).
func NewBackupPolicy(client *pubsub.Client, st *store.Store, state *constraint.State) *BackupPolicy {
	return &BackupPolicy{client: client, st: st, state: state}
}

// Start subscribes to creation events.
func (p *BackupPolicy) Start() {
	p.client.Subscribe(pubsub.NewFilter(pubsub.TypeIs(TypeCreated)), func(ev *event.Event) {
		guid, err := ids.Parse(ev.GetString("guid"))
		if err != nil {
			return
		}
		origin := ev.GetString("region")
		target, ok := p.remoteNode(origin)
		if !ok {
			p.NoRemote++
			return
		}
		p.Pushes++
		p.st.RequestPush(guid, target)
	})
}

// remoteNode picks a deterministic live node outside the origin region.
func (p *BackupPolicy) remoteNode(origin string) (ids.ID, bool) {
	for _, n := range p.state.Nodes() {
		if n.Alive && n.Region != origin && n.Region != "" {
			return n.ID, true
		}
	}
	return ids.Zero, false
}

// UserDataKey derives the GUID of chunk i of a user's personal data set
// (profile, history, preferences — the data the latency policy migrates).
func UserDataKey(user string, chunk int) ids.ID {
	return ids.FromString(fmt.Sprintf("userdata/%s/%d", user, chunk))
}

// LatencyPolicy implements §4.6's latency-reduction policy: "seek to
// replicate progressively more of a user's personal data at storage units
// geographically close to the user's current location, the longer that
// the user remained at that location." It watches location events, tracks
// dwell time per user, and each DwellStep replicates the next chunk of
// the user's data to a node in the user's current region.
type LatencyPolicy struct {
	client *pubsub.Client
	st     *store.Store
	state  *constraint.State
	clock  interface{ Now() time.Duration }
	// RegionOf maps a position to a region name (host-supplied geography).
	RegionOf func(netapi.Coord) string
	// DwellStep is the dwell time per migrated chunk. Default 1m.
	DwellStep time.Duration
	// Chunks is the user's data set size in chunks. Default 4.
	Chunks int

	dwell map[string]*dwellState
	// Migrations counts chunk replications requested.
	Migrations uint64
}

type dwellState struct {
	region string
	since  time.Duration
	pushed int
}

// NewLatencyPolicy builds the policy.
func NewLatencyPolicy(client *pubsub.Client, st *store.Store, state *constraint.State,
	clock interface{ Now() time.Duration }) *LatencyPolicy {
	return &LatencyPolicy{
		client:    client,
		st:        st,
		state:     state,
		clock:     clock,
		RegionOf:  func(netapi.Coord) string { return "" },
		DwellStep: time.Minute,
		Chunks:    4,
		dwell:     make(map[string]*dwellState),
	}
}

// Start subscribes to location events.
func (p *LatencyPolicy) Start() {
	p.client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("gps.location")), func(ev *event.Event) {
		p.observe(ev)
	})
}

func (p *LatencyPolicy) observe(ev *event.Event) {
	user := ev.GetString("user")
	if user == "" {
		return
	}
	pos := netapi.Coord{X: ev.GetNum("x"), Y: ev.GetNum("y")}
	region := ev.GetString("region")
	if region == "" {
		region = p.RegionOf(pos)
	}
	if region == "" {
		return
	}
	now := p.clock.Now()
	d, ok := p.dwell[user]
	if !ok || d.region != region {
		p.dwell[user] = &dwellState{region: region, since: now}
		return
	}
	// Progressive migration: chunk k after (k+1) dwell steps.
	for d.pushed < p.Chunks && now-d.since >= time.Duration(d.pushed+1)*p.DwellStep {
		target, ok := p.nodeInRegion(region)
		if !ok {
			return
		}
		p.Migrations++
		p.st.RequestPush(UserDataKey(user, d.pushed), target)
		d.pushed++
	}
}

// Dwell reports a user's tracked dwell region and migrated chunk count.
func (p *LatencyPolicy) Dwell(user string) (region string, pushed int, ok bool) {
	d, found := p.dwell[user]
	if !found {
		return "", 0, false
	}
	return d.region, d.pushed, true
}

func (p *LatencyPolicy) nodeInRegion(region string) (ids.ID, bool) {
	nodes := p.state.AliveInRegion(region)
	if len(nodes) == 0 {
		return ids.Zero, false
	}
	return nodes[0].ID, true
}
