package exp

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/wire"
)

// T1PlaxtonRouting measures deterministic prefix routing as the network
// grows: hops must scale ~log16(N) with 100% delivery (§3, §4.5).
func T1PlaxtonRouting(quick bool) *Table {
	t := &Table{
		ID:     "E-T1",
		Title:  "Plaxton routing: hops and latency vs network size",
		Header: []string{"nodes", "probes", "delivered", "mean hops", "p99 hops", "mean latency ms"},
	}
	sizes := []int{16, 64, 256}
	probes := 300
	if quick {
		sizes = []int{16, 64}
		probes = 100
	}
	for _, n := range sizes {
		c := buildCluster(clusterCfg{seed: 1000 + int64(n), nodes: n,
			overlay: plaxton.Options{HeartbeatInterval: -1}})
		rng := rand.New(rand.NewSource(7))
		type probe struct {
			sent time.Duration
		}
		sentAt := make(map[ids.ID]probe, probes)
		var hops []time.Duration // reuse duration slice for percentile on hops
		var hopCounts []int
		var lats []time.Duration
		delivered := 0
		for _, ov := range c.overlays {
			ov.OnDeliver("test.probe", func(info plaxton.RouteInfo, _ wire.Message) {
				delivered++
				hopCounts = append(hopCounts, info.Hops)
				hops = append(hops, time.Duration(info.Hops))
				if p, ok := sentAt[info.Key]; ok {
					lats = append(lats, c.world.Now()-p.sent)
				}
			})
		}
		for i := 0; i < probes; i++ {
			key := ids.Random(rng)
			src := c.overlays[rng.Intn(n)]
			sentAt[key] = probe{sent: c.world.Now()}
			_ = src.Route(key, &probeMsg{})
			c.world.RunFor(50 * time.Millisecond)
		}
		c.world.RunFor(10 * time.Second)
		var hopSum int
		for _, h := range hopCounts {
			hopSum += h
		}
		meanHops := 0.0
		if len(hopCounts) > 0 {
			meanHops = float64(hopSum) / float64(len(hopCounts))
		}
		t.AddRow(
			fmt.Sprint(n), fmt.Sprint(probes),
			pct(uint64(delivered), uint64(probes)),
			f2(meanHops),
			fmt.Sprint(int(percentileDur(hops, 99))),
			ms(meanDur(lats)),
		)
	}
	t.Notes = append(t.Notes, "expect mean hops ≈ log16(N); delivery 100% in a static network")
	return t
}

// probeMsg is the routed no-op payload for T1.
type probeMsg struct{}

// Kind implements wire.Message.
func (probeMsg) Kind() string { return "test.probe" }

// T2ReplicaResilience measures object availability after killing a
// fraction of nodes, with and without the RAID-like self-healing of §4.6.
func T2ReplicaResilience(quick bool) *Table {
	t := &Table{
		ID:     "E-T2",
		Title:  "Replica resilience under node failure (k=3)",
		Header: []string{"killed %", "healing", "objects", "available", "repair pushes"},
	}
	// Full mode runs the storage plane at 100× the seed table's object
	// count and body size (4000 × ~2 KiB vs 40 × ~20 B): the digest
	// repair and chunked-transfer machinery must hold up at volume, not
	// just on toy workloads.
	nodes, objects, pad := 48, 4000, 2048
	if quick {
		nodes, objects, pad = 24, 20, 0
	}
	// Failures arrive in three waves with time between them: self-healing
	// restores the replication degree between waves (the RAID analogy of
	// §4.6); without healing, losses accumulate until whole replica sets
	// are gone.
	for _, frac := range []float64{0.25, 0.50} {
		for _, healing := range []bool{false, true} {
			repair := time.Duration(-1)
			if healing {
				repair = 2 * time.Second
			}
			c := buildCluster(clusterCfg{
				seed: 2000 + int64(frac*100), nodes: nodes, withStores: true,
				overlay:   plaxton.Options{HeartbeatInterval: time.Second, ProbeTimeout: 300 * time.Millisecond},
				storeOpts: store.Options{Replicas: 3, RepairInterval: repair, RequestTimeout: 2 * time.Second},
			})
			// Store objects from random nodes, paced so thousands of puts
			// don't all race the same settle window.
			guids := make([]ids.ID, objects)
			for i := 0; i < objects; i++ {
				content := []byte(fmt.Sprintf("object-%d-%v", i, healing))
				if pad > 0 {
					content = append(content, make([]byte, pad)...)
				}
				guids[i] = store.GUIDFor(content)
				c.stores[i%nodes].Put(content, func(ids.ID, error) {})
				if i%50 == 49 {
					c.world.RunFor(500 * time.Millisecond)
				}
			}
			c.world.RunFor(10 * time.Second)
			var basePushes uint64
			for _, s := range c.stores {
				basePushes += s.Stats().RepairPushes
			}
			// Kill in 3 waves (never node 0, the reader), healing window
			// between waves.
			rng := rand.New(rand.NewSource(99))
			kill := int(frac * float64(nodes))
			killed := map[int]bool{}
			for wave := 0; wave < 3; wave++ {
				target := kill * (wave + 1) / 3
				for len(killed) < target {
					v := 1 + rng.Intn(nodes-1)
					if !killed[v] {
						killed[v] = true
						c.node(v).Kill()
					}
				}
				c.world.RunFor(12 * time.Second)
			}
			// Availability probe from survivor 0, pipelined in small bursts
			// so the full-scale run's 4000 reads stay inside sim minutes.
			ok := 0
			for i, g := range guids {
				c.stores[0].Get(g, func(_ []byte, err error) {
					if err == nil {
						ok++
					}
				})
				if quick || i%10 == 9 {
					c.world.RunFor(200 * time.Millisecond)
				}
			}
			c.world.RunFor(15 * time.Second)
			var pushes uint64
			for i, s := range c.stores {
				if !killed[i] {
					pushes += s.Stats().RepairPushes
				}
			}
			if pushes > basePushes {
				pushes -= basePushes
			} else {
				pushes = 0
			}
			t.AddRow(
				fmt.Sprintf("%.0f%%", frac*100),
				fmt.Sprint(healing),
				fmt.Sprint(objects),
				pct(uint64(ok), uint64(objects)),
				fmt.Sprint(pushes),
			)
		}
	}
	t.Notes = append(t.Notes,
		"failures arrive in 3 waves with 12s healing windows between them",
		"healing=true runs replica maintenance every 2s; healing=false disables it")
	return t
}

// T3PromiscuousCaching measures read latency and origin load under a
// Zipf-skewed read workload, with the promiscuous cache on and off (§4.5).
func T3PromiscuousCaching(quick bool) *Table {
	t := &Table{
		ID:     "E-T3",
		Title:  "Promiscuous caching under Zipf reads",
		Header: []string{"cache", "reads", "mean latency ms", "p99 ms", "root answers", "path cache hits", "local hits"},
	}
	nodes, objects, reads := 40, 30, 400
	if quick {
		nodes, objects, reads = 24, 15, 150
	}
	for _, disable := range []bool{true, false} {
		c := buildCluster(clusterCfg{
			seed: 3000, nodes: nodes, withStores: true,
			overlay: plaxton.Options{HeartbeatInterval: -1},
			storeOpts: store.Options{
				Replicas: 1, RepairInterval: -1,
				DisableCache: disable, CacheBytes: 1 << 20,
			},
		})
		guids := make([]ids.ID, objects)
		for i := 0; i < objects; i++ {
			content := []byte(fmt.Sprintf("cached-object-%03d with some body text to give it weight", i))
			guids[i] = store.GUIDFor(content)
			c.stores[i%nodes].Put(content, func(ids.ID, error) {})
		}
		c.world.RunFor(10 * time.Second)

		rng := rand.New(rand.NewSource(5))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(objects-1))
		var lats []time.Duration
		okReads := 0
		for i := 0; i < reads; i++ {
			obj := guids[int(zipf.Uint64())]
			reader := c.stores[rng.Intn(nodes)]
			start := c.world.Now()
			reader.Get(obj, func(_ []byte, err error) {
				if err == nil {
					okReads++
					lats = append(lats, c.world.Now()-start)
				}
			})
			c.world.RunFor(150 * time.Millisecond)
		}
		c.world.RunFor(10 * time.Second)
		var roots, cacheHits, localHits uint64
		for _, s := range c.stores {
			st := s.Stats()
			roots += st.RootAnswers
			cacheHits += st.CacheHits
			localHits += st.LocalHits
		}
		mode := "on"
		if disable {
			mode = "off"
		}
		t.AddRow(mode, fmt.Sprint(okReads), ms(meanDur(lats)), ms(percentileDur(lats, 99)),
			fmt.Sprint(roots), fmt.Sprint(cacheHits), fmt.Sprint(localHits))
	}
	t.Notes = append(t.Notes, "Zipf s=1.2 over the object population; k=1 so every miss must reach the root")
	return t
}
