package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// t15Endpoint is the measurement endpoint behind E-T15: a thread-safe
// netapi.Endpoint + Multicaster + ConcurrentSender whose SendMany does
// the real per-destination work of a fan-out — one binary body encode
// per group (wire.SharedBody, exactly the transport's encode-once
// discipline) plus one envelope frame per destination — without socket
// I/O, so the table isolates the pipeline the fan-out workers
// parallelise. Per-delivery latency is measured against the publish
// timestamp the driver records per sequence number (carried in
// Event.Time).
type t15Endpoint struct {
	id    ids.ID
	rng   *rand.Rand
	codec *wire.BinaryCodec

	delivered atomic.Uint64
	bytes     atomic.Uint64 // consumes the frames so encode is not dead code

	// t0[seq] is the publish wall-clock (ns) for the event stamped with
	// Time=seq; nil disables latency recording. lat is preallocated to
	// the expected delivery count and filled through an atomic cursor so
	// concurrent workers never contend on a lock in the measured path.
	t0     []int64
	lat    []int64
	latIdx atomic.Uint64
}

func newT15Endpoint(name string) *t15Endpoint {
	reg := wire.NewRegistry()
	pubsub.RegisterMessages(reg)
	return &t15Endpoint{
		id:    ids.FromString(name),
		rng:   rand.New(rand.NewSource(15)),
		codec: wire.NewBinaryCodec(reg),
	}
}

func (e *t15Endpoint) ID() ids.ID                    { return e.id }
func (e *t15Endpoint) Info() netapi.NodeInfo         { return netapi.NodeInfo{ID: e.id} }
func (e *t15Endpoint) Clock() vclock.Clock           { return nil }
func (e *t15Endpoint) Rand() *rand.Rand              { return e.rng }
func (e *t15Endpoint) Handle(string, netapi.Handler) {}
func (e *t15Endpoint) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	cb(nil, netapi.ErrUnreachable)
}
func (e *t15Endpoint) ConcurrentSends() bool { return true }

func (e *t15Endpoint) Send(to ids.ID, msg wire.Message) {
	e.SendMany([]ids.ID{to}, msg)
}

func (e *t15Endpoint) SendMany(tos []ids.ID, msg wire.Message) {
	shared := &wire.SharedBody{}
	env := wire.Envelope{From: e.id, Msg: msg}
	n := 0
	for _, to := range tos {
		env.To = to
		frame, err := e.codec.EncodeShared(&env, shared)
		if err != nil {
			panic(fmt.Sprintf("t15 encode: %v", err))
		}
		n += len(frame)
	}
	e.bytes.Add(uint64(n))
	e.delivered.Add(uint64(len(tos)))
	if e.t0 == nil {
		return
	}
	var ev *event.Event
	switch m := msg.(type) {
	case *pubsub.DeliverMsg:
		ev = m.Event
	case *pubsub.PubMsg:
		ev = m.Event
	}
	if ev == nil {
		return
	}
	d := time.Now().UnixNano() - e.t0[int(ev.Time)]
	base := e.latIdx.Add(uint64(len(tos))) - uint64(len(tos))
	for i := range tos {
		e.lat[base+uint64(i)] = d
	}
}

// latencies returns the recorded per-delivery latencies.
func (e *t15Endpoint) latencies() []time.Duration {
	n := int(e.latIdx.Load())
	out := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		out[i] = time.Duration(e.lat[i])
	}
	return out
}

// T15ParallelFanout measures publish→deliver throughput and tail latency
// of the full broker publish pipeline — match, target classification,
// SendMany group assembly, shared-body binary encode, per-destination
// frame building — as the fan-out worker count grows. workers=1 is the
// serial reference path (the whole pipeline inline on the actor loop);
// the matching half always stays on the single publishing goroutine, so
// the speedup isolates what moving dissemination off the actor loop
// buys. Subscriptions beyond the hot filter are live background table
// mass: they load the predicate index the match probes on every publish.
func T15ParallelFanout(quick bool) *Table {
	t := &Table{
		ID:     "E-T15",
		Title:  "Parallel fan-out: publish→deliver throughput vs worker count",
		Header: []string{"subs", "fanout", "workers", "k pubs/s", "k dlv/s", "p99 ms", "speedup"},
	}
	subsSizes := []int{10_000, 100_000, 1_000_000}
	fanouts := []int{16, 64}
	workerCounts := []int{1, 2, 4, 8}
	pubs := 20_000
	if quick {
		subsSizes = []int{10_000}
		fanouts = []int{16}
		workerCounts = []int{1, 4}
		pubs = 4_000
	}
	for _, subs := range subsSizes {
		for _, fo := range fanouts {
			base := 0.0
			for _, workers := range workerCounts {
				kps, kdlv, p99 := parallelFanoutRun(subs, fo, workers, pubs)
				if workers == 1 {
					base = kdlv
				}
				t.AddRow(fmt.Sprint(subs), fmt.Sprint(fo), fmt.Sprint(workers),
					f1(kps), f1(kdlv), ms(p99), f2(kdlv/base))
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d publishes from one actor goroutine; every publish matches one hot filter with <fanout> subscriber directions", pubs),
		"endpoint does the transport's encode work (one shared-body binary encode per SendMany group, one envelope frame per destination) without socket I/O",
		"workers=1 is the serial reference path; speedup is k dlv/s relative to it at the same subs and fanout",
		"p99 is publish-call to frame-built latency per delivery; pipelining trades tail latency for throughput by design (jobs queue ahead of the workers)",
		"on a single-core runner the pipeline degenerates to context switching and speedups flatten to ~1x or below by construction")
	return t
}

// parallelFanoutRun builds a broker with subs background filters plus one
// hot filter held by fo subscribers, publishes pubs matching events from
// a single goroutine, and reports k publishes/s, k deliveries/s and the
// p99 publish→deliver latency.
func parallelFanoutRun(subs, fo, workers, pubs int) (kps, kdlv float64, p99 time.Duration) {
	ep := newT15Endpoint(fmt.Sprintf("t15-%d-%d-%d", subs, fo, workers))
	br := pubsub.NewBroker(ep, pubsub.Options{FanoutWorkers: workers})
	defer br.Close()

	// Background table mass: distinct single-constraint filters, built in
	// ascending key order so the sorted posting lists append (linear 1M
	// build). None of them matches the hot event type.
	for i := 0; i < subs; i++ {
		br.Subscribe(ids.FromString(fmt.Sprintf("t15-bg-%07d", i)),
			pubsub.NewFilter(pubsub.TypeIs(fmt.Sprintf("bg-%07d", i))))
	}
	hot := pubsub.NewFilter(pubsub.TypeIs("hot"))
	for i := 0; i < fo; i++ {
		br.Subscribe(ids.FromString(fmt.Sprintf("t15-sub-%d", i)), hot)
	}
	from := ids.FromString("t15-pub")

	// Pre-build every event (Time carries the sequence number the
	// endpoint uses to look up the publish timestamp) so generator cost
	// stays out of the measured loop. The body gives the shared-body
	// encode and the per-destination frame copy realistic weight.
	body := strings.Repeat("<ctx v=\"42\"/>", 40) // ~520 bytes
	events := make([]*pubsub.PubMsg, pubs)
	for i := range events {
		events[i] = &pubsub.PubMsg{Event: event.New("hot", "t15", time.Duration(i)).
			Set("user", event.S("user-1")).
			Set("x", event.F(3.5)).
			SetBody(body).
			Stamp(uint64(i))}
	}
	ep.t0 = make([]int64, pubs)
	ep.lat = make([]int64, pubs*fo)

	start := time.Now()
	for i := 0; i < pubs; i++ {
		ep.t0[i] = time.Now().UnixNano()
		br.Publish(from, events[i])
	}
	br.DrainFanout()
	elapsed := time.Since(start)

	delivered := ep.delivered.Load()
	kps = float64(pubs) / elapsed.Seconds() / 1000
	kdlv = float64(delivered) / elapsed.Seconds() / 1000
	p99 = percentileDur(ep.latencies(), 99)
	return
}
