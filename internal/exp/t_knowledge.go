package exp

import (
	"fmt"
	"strings"
	"time"

	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/store"
)

// T17Knowledge measures the knowledge plane under concurrent writers:
// W brokers update the same subject at the same virtual instant (each
// adds its own observation plus a contested timed "location" slot), then
// every node fetches the subject once and the system runs until every
// node's KB holds the merged fact set — or a deadline passes. The legacy
// last-writer-wins path loses the non-winning writers' facts on every
// node; causal sync with gossip anti-entropy converges to zero lost
// writes, at a measured wire cost (codec-accounted kb.* + store.* bytes
// from first publish to convergence).
func T17Knowledge(quick bool) *Table {
	t := &Table{
		ID:     "E-T17",
		Title:  "Knowledge plane convergence: concurrent writers × sync mode",
		Header: []string{"nodes", "writers", "mode", "gossip", "converged", "converge ms", "lost facts", "wire KB"},
	}
	type cfg struct {
		nodes, writers int
		legacy         bool
		gossip         time.Duration
	}
	rows := []cfg{
		{16, 2, true, 0},
		{16, 2, false, time.Second},
		{16, 2, false, 2 * time.Second},
		{16, 4, false, time.Second},
		{32, 4, false, time.Second},
	}
	if quick {
		rows = []cfg{
			{10, 2, true, 0},
			{10, 2, false, time.Second},
			{10, 3, false, time.Second},
		}
	}
	for i, r := range rows {
		mode := "causal"
		gossip := fmt.Sprintf("%.0fs", r.gossip.Seconds())
		if r.legacy {
			mode, gossip = "legacy", "-"
		}
		res, ok := t17Run(17000+int64(i), r.nodes, r.writers, r.legacy, r.gossip)
		if !ok {
			t.AddRow(fmt.Sprint(r.nodes), fmt.Sprint(r.writers), mode, gossip, "setup failed", "-", "-", "-")
			continue
		}
		conv := "never"
		if res.converged == r.nodes {
			conv = ms(res.convergeIn)
		}
		t.AddRow(fmt.Sprint(r.nodes), fmt.Sprint(r.writers), mode, gossip,
			fmt.Sprintf("%d/%d", res.converged, r.nodes), conv,
			fmt.Sprint(res.lost), f1(res.wireKB))
	}
	t.Notes = append(t.Notes,
		"W writers publish concurrent updates to one subject at the same virtual instant; every node then fetches it once",
		"converged = nodes whose KB holds the full merged set (every writer's observation + the newest-validity location) at the 60 s deadline",
		"lost facts = merged-set facts missing from the worst node at the deadline: legacy last-writer-wins drops every non-winning writer's update on ALL nodes",
		"wire KB = codec-accounted kb.* + store.* bytes from first publish until convergence (or deadline); causal pays for gossip digests + version pushes, legacy pays only the store fetches that lose the data")
	return t
}

type t17Result struct {
	converged  int
	convergeIn time.Duration
	lost       int
	wireKB     float64
}

// t17Run executes one concurrent-writer scenario and reports convergence.
func t17Run(seed int64, nodes, writers int, legacy bool, gossip time.Duration) (t17Result, bool) {
	c := buildCluster(clusterCfg{
		seed: seed, nodes: nodes, withStores: true,
		// Background repair off: the wire window should charge the
		// knowledge plane's own traffic, not replica maintenance.
		storeOpts: store.Options{RepairInterval: -1},
		codec:     "bin",
	})
	kbs := make([]*knowledge.KB, nodes)
	sys := make([]*knowledge.Syncer, nodes)
	for i := 0; i < nodes; i++ {
		kbs[i] = knowledge.NewKB()
		sys[i] = knowledge.NewSyncerOpts(c.stores[i], kbs[i], knowledge.Options{
			LegacySync:     legacy,
			GossipInterval: gossip,
		})
	}
	// Concurrent updates: writer w records its own observation plus a
	// competing timed location; the latest-starting interval must win.
	for w := 0; w < writers; w++ {
		kbs[w].AddSPO("bob", fmt.Sprintf("obs-%d", w), "seen")
		kbs[w].Add(knowledge.Fact{
			S: "bob", P: "location", O: fmt.Sprintf("loc-%d", w),
			From: time.Duration(10+w) * time.Hour, To: time.Duration(11+w) * time.Hour,
		})
	}
	wantLoc := fmt.Sprintf("loc-%d", writers-1)
	w0 := t17KnowledgeBytes(c)
	start := c.world.Now()
	for w := 0; w < writers; w++ {
		sys[w].PublishSubject("bob", func(error) {})
	}
	c.world.RunFor(2 * time.Second)
	for i := 0; i < nodes; i++ {
		sys[i].FetchSubject("bob", func(error) {})
	}

	nodeConverged := func(kb *knowledge.KB) bool {
		for w := 0; w < writers; w++ {
			if !kb.Ask("bob", fmt.Sprintf("obs-%d", w), "seen", -1) {
				return false
			}
		}
		o, _ := kb.One("bob", "location", -1)
		return o == wantLoc
	}
	allConverged := func() int {
		n := 0
		for _, kb := range kbs {
			if nodeConverged(kb) {
				n++
			}
		}
		return n
	}

	deadline := start + 60*time.Second
	var res t17Result
	for c.world.Now() < deadline {
		if res.converged = allConverged(); res.converged == nodes {
			break
		}
		c.world.RunFor(500 * time.Millisecond)
	}
	res.converged = allConverged()
	res.convergeIn = c.world.Now() - start
	res.wireKB = float64(t17KnowledgeBytes(c)-w0) / 1024

	// Lost writes: merged-set facts (writers' observations + the winning
	// location) missing from the worst node.
	total := writers + 1
	for _, kb := range kbs {
		have := 0
		for w := 0; w < writers; w++ {
			if kb.Ask("bob", fmt.Sprintf("obs-%d", w), "seen", -1) {
				have++
			}
		}
		if o, _ := kb.One("bob", "location", -1); o == wantLoc {
			have++
		}
		if lost := total - have; lost > res.lost {
			res.lost = lost
		}
	}
	return res, true
}

// t17KnowledgeBytes sums codec-accounted bytes over the knowledge plane:
// kb.* gossip frames plus the store.* traffic carrying publishes and
// fetches.
func t17KnowledgeBytes(c *overlayCluster) uint64 {
	var n uint64
	for kind, b := range c.world.Metrics().BytesByKind {
		if strings.HasPrefix(kind, "kb.") || strings.HasPrefix(kind, "store.") {
			n += b
		}
	}
	return n
}
