package exp

import (
	"encoding/xml"
	"fmt"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/typeproj"
	"github.com/gloss/active/internal/vclock"
)

// matchWorkload builds an engine with R single-pattern alert rules plus
// one correlation rule, and a generator of mixed low-level events.
func matchWorkload(ruleCount int, windowMs int64) (*match.Engine, *vclock.Scheduler, func(seq uint64) *event.Event) {
	sched := vclock.NewScheduler()
	kb := knowledge.NewKB()
	gis := knowledge.NewGIS()
	for u := 0; u < 20; u++ {
		user := fmt.Sprintf("user-%02d", u)
		kb.AddSPO(user, "likes", "coffee")
		kb.AddSPO(user, "knows", fmt.Sprintf("user-%02d", (u+1)%20))
	}
	_ = gis.AddPlace(knowledge.Place{Name: "cafe", X: 5, Y: 5, Sells: []string{"coffee"}})
	eng := match.NewEngine(sched, kb, gis, match.Options{})
	for r := 0; r < ruleCount; r++ {
		region := fmt.Sprintf("region-%d", r)
		rule := &match.Rule{
			Name:     fmt.Sprintf("hot-%d", r),
			WindowMs: windowMs,
			Patterns: []match.Pattern{{
				Alias: "w",
				Filter: pubsub.NewFilter(pubsub.TypeIs("weather.report"),
					pubsub.Eq("region", event.S(region))),
			}},
			Where: []match.Condition{{Type: "cmp", Left: "$w.tempC", Op: "gt", Right: "30"}},
			Emit: match.Emit{Type: "alert.heat",
				Attrs: []match.EmitAttr{{Name: "region", From: "$w.region"}}},
		}
		if err := eng.AddRule(rule); err != nil {
			panic(err)
		}
	}
	// One two-pattern correlation rule joining users near each other.
	corr := &match.Rule{
		Name:     "nearby-friends",
		WindowMs: windowMs,
		Patterns: []match.Pattern{
			{Alias: "a", Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location")),
				Bind: []match.Binding{{Attr: "user", Var: "U"}}},
			{Alias: "b", Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location")),
				Bind: []match.Binding{{Attr: "user", Var: "F"}}},
		},
		Where: []match.Condition{
			{Type: "cmp", Left: "$U", Op: "ne", Right: "$F"},
			{Type: "kb", S: "$U", P: "knows", O: "$F"},
			{Type: "withinKm", A: "$a", B: "$b", Km: 0.5},
		},
		Emit: match.Emit{Type: "suggestion.nearby",
			Attrs: []match.EmitAttr{{Name: "user", From: "$U"}, {Name: "friend", From: "$F"}}},
	}
	if err := eng.AddRule(corr); err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(17))
	gen := func(seq uint64) *event.Event {
		switch seq % 3 {
		case 0:
			return event.New("weather.report", "thermo", sched.Now()).
				Set("region", event.S(fmt.Sprintf("region-%d", rng.Intn(ruleCount+3)))).
				Set("tempC", event.F(rng.Float64()*40)).
				Stamp(seq)
		case 1:
			return event.New("gps.location", "gps", sched.Now()).
				Set("user", event.S(fmt.Sprintf("user-%02d", rng.Intn(20)))).
				Set("x", event.F(rng.Float64()*2)).
				Set("y", event.F(rng.Float64()*2)).
				Stamp(seq)
		default:
			return event.New("rfid.read", "rfid", sched.Now()).
				Set("user", event.S(fmt.Sprintf("user-%02d", rng.Intn(20)))).
				Stamp(seq)
		}
	}
	return eng, sched, gen
}

// T5MatchThroughput measures matching engine throughput (wall clock) and
// the distillation ratio across rule counts and window sizes (§1.2).
func T5MatchThroughput(quick bool) *Table {
	t := &Table{
		ID:     "E-T5",
		Title:  "Matching engine throughput and distillation",
		Header: []string{"rules", "window", "events", "wall events/s", "emitted", "distill ratio"},
	}
	events := 60000
	if quick {
		events = 15000
	}
	for _, rules := range []int{1, 5, 10} {
		for _, window := range []time.Duration{time.Minute, 10 * time.Minute} {
			eng, sched, gen := matchWorkload(rules, int64(window/time.Millisecond))
			start := time.Now()
			for i := 0; i < events; i++ {
				if i%10 == 0 {
					sched.RunFor(time.Second) // advance virtual time: windows roll
				}
				eng.Put(gen(uint64(i)))
			}
			wall := time.Since(start)
			st := eng.Stats()
			ratio := "∞"
			if st.Emitted > 0 {
				ratio = f1(float64(st.EventsIn) / float64(st.Emitted))
			}
			t.AddRow(
				fmt.Sprint(rules+1), fmt.Sprint(window),
				fmt.Sprint(events),
				fmt.Sprintf("%.0f", float64(events)/wall.Seconds()),
				fmt.Sprint(st.Emitted), ratio,
			)
		}
	}
	t.Notes = append(t.Notes, "wall-clock throughput; +1 rule is the two-pattern correlation join")
	return t
}

// gisRecord is the T8 projection target.
type gisRecord struct {
	Name  string   `proj:"@name"`
	Lat   float64  `proj:"lat"`
	Lon   float64  `proj:"lon"`
	Sells []string `proj:"sells"`
}

// xmlRecord is the equivalent encoding/xml target (strict layout).
type xmlRecord struct {
	XMLName xml.Name `xml:"place"`
	Name    string   `xml:"name,attr"`
	Lat     float64  `xml:"lat"`
	Lon     float64  `xml:"lon"`
	Sells   []string `xml:"sells"`
}

// t8Doc builds a loosely structured document with one known island.
func t8Doc(i int) []byte {
	return []byte(fmt.Sprintf(`<feed v="2">
  <meta><src>provider-%d</src><extra><deep a="1"/></extra></meta>
  <junk>%d</junk>
  <entry>
    <place name="place-%d"><lat>%d.5</lat><lon>-%d.25</lon><sells>ice cream</sells><sells>tea</sells>
      <unmodelled><noise/></unmodelled>
    </place>
  </entry>
</feed>`, i, i*7, i, i%90, i%45))
}

// T8TypeProjection compares type projection against a generic DOM walk
// and strict encoding/xml decoding on loosely structured documents (§3).
func T8TypeProjection(quick bool) *Table {
	t := &Table{
		ID:     "E-T8",
		Title:  "Type projection vs generic XML handling",
		Header: []string{"method", "docs", "µs/doc", "islands bound", "notes"},
	}
	docs := 3000
	if quick {
		docs = 800
	}
	inputs := make([][]byte, docs)
	for i := range inputs {
		inputs[i] = t8Doc(i)
	}

	// Method 1: compiled projector.
	proj, err := typeproj.NewProjector("place", gisRecord{})
	if err != nil {
		panic(err)
	}
	start := time.Now()
	bound := 0
	for _, doc := range inputs {
		var r gisRecord
		if err := proj.First(doc, &r); err == nil && r.Name != "" && len(r.Sells) == 2 {
			bound++
		}
	}
	projWall := time.Since(start)
	t.AddRow("type projection", fmt.Sprint(docs),
		f2(float64(projWall.Microseconds())/float64(docs)),
		fmt.Sprint(bound), "partial model; unknown elements ignored")

	// Method 2: generic DOM walk (parse tree + manual search and
	// conversion — what a program without projection must write).
	start = time.Now()
	bound = 0
	for _, doc := range inputs {
		tree, err := typeproj.ParseTree(doc)
		if err != nil {
			continue
		}
		islands := tree.Find("place")
		if len(islands) == 0 {
			continue
		}
		island := islands[0]
		var r gisRecord
		r.Name = island.Attrs["name"]
		for _, c := range island.Children {
			switch c.Name {
			case "lat":
				fmt.Sscanf(c.Text, "%f", &r.Lat)
			case "lon":
				fmt.Sscanf(c.Text, "%f", &r.Lon)
			case "sells":
				r.Sells = append(r.Sells, c.Text)
			}
		}
		if r.Name != "" && len(r.Sells) == 2 {
			bound++
		}
	}
	domWall := time.Since(start)
	t.AddRow("hand-written DOM walk", fmt.Sprint(docs),
		f2(float64(domWall.Microseconds())/float64(docs)),
		fmt.Sprint(bound), "per-type boilerplate")

	// Method 3: strict encoding/xml aimed at the document root — the
	// "type generation" strawman: it cannot find the nested island.
	start = time.Now()
	bound = 0
	for _, doc := range inputs {
		var r xmlRecord
		if err := xml.Unmarshal(doc, &r); err == nil && r.Name != "" && len(r.Sells) == 2 {
			bound++
		}
	}
	strictWall := time.Since(start)
	t.AddRow("strict xml.Unmarshal", fmt.Sprint(docs),
		f2(float64(strictWall.Microseconds())/float64(docs)),
		fmt.Sprint(bound), "island not at root: binds nothing")
	t.Notes = append(t.Notes, "documents contain unmodelled structure around one known 'place' island")
	return t
}
