package exp

import "testing"

// TestT17KnowledgeQuick smoke-runs the table in quick mode: the causal
// rows must fully converge with zero lost writes, the legacy row must
// demonstrate the lost-write flaw it documents.
func TestT17KnowledgeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("table run")
	}
	tab := T17Knowledge(true)
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mode, converged, lost := row[2], row[4], row[6]
		switch mode {
		case "legacy":
			if lost == "0" {
				t.Errorf("legacy row lost no writes: %v", row)
			}
		case "causal":
			if lost != "0" {
				t.Errorf("causal row lost writes: %v", row)
			}
			if converged[0] == '0' || row[5] == "never" {
				t.Errorf("causal row failed to converge: %v", row)
			}
		}
	}
}
