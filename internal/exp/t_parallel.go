package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/pubsub"
)

// t14Attrs is the number of distinct context attributes the T14 workload
// spreads its subscriptions over — the axis the sharded index partitions
// on.
const t14Attrs = 16

// T14ShardedMatch measures publish throughput as the broker's
// parallelism degree grows, at increasing subscription-table sizes.
// Every filter pins one of 16 context attributes to one value, so the
// postings spread across shards and every event probe fans across them.
//
// The primary rows (path=broker) drive the FULL publish pipeline through
// Broker.Publish: matching, target classification and fan-out — message
// assembly, shared-body binary encode, per-destination frames — with
// MatchShards and FanoutWorkers both set to the row's shard count, one
// actor goroutine publishing (the broker's real concurrency regime).
// The shards=1 row is the all-serial reference broker.
//
// The path=index rows are the original index-only measurement, kept as
// the continuity series: GOMAXPROCS workers matching concurrently
// against the bare index, shards=1 being the serial reference Index
// behind a mutex — the contention a multi-core broker would otherwise
// pay. Speedups are relative to the shards=1 row of the same path and
// subs; on a single-core runner they flatten to ~1x by construction.
func T14ShardedMatch(quick bool) *Table {
	t := &Table{
		ID:     "E-T14",
		Title:  "Sharded matching: publish throughput vs shard count",
		Header: []string{"path", "subs", "shards", "workers", "k pubs/s", "speedup", "matches/pub"},
	}
	subsSizes := []int{10_000, 100_000, 1_000_000}
	shardCounts := []int{1, 2, 4, 8}
	events := 40_000
	brokerEvents := 20_000
	if quick {
		subsSizes = []int{10_000}
		shardCounts = []int{1, 4}
		events = 8_000
		brokerEvents = 4_000
	}
	workers := runtime.GOMAXPROCS(0)
	for _, subs := range subsSizes {
		base := 0.0
		for _, shards := range shardCounts {
			kps, mpp := brokerPubRun(subs, shards, brokerEvents)
			if shards == 1 {
				base = kps
			}
			t.AddRow("broker", fmt.Sprint(subs), fmt.Sprint(shards), fmt.Sprint(shards),
				f1(kps), f2(kps/base), f1(mpp))
		}
	}
	for _, subs := range subsSizes {
		base := 0.0
		for _, shards := range shardCounts {
			kps, mpp := shardedMatchRun(subs, shards, workers, events)
			if shards == 1 {
				base = kps
			}
			t.AddRow("index", fmt.Sprint(subs), fmt.Sprint(shards), fmt.Sprint(workers),
				f1(kps), f2(kps/base), f1(mpp))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("broker rows: %d full publishes (match + encode + per-destination frames) from one actor goroutine; workers = FanoutWorkers = shards", brokerEvents),
		fmt.Sprintf("index rows (continuity): %d bare index matches split over %d workers; shards=1 is the serial Index behind a mutex", events, workers),
		fmt.Sprintf("filters pin one of %d context attributes to one value; matches/pub is the delivered selectivity", t14Attrs),
		"speedup is relative to the shards=1 row of the same path at the same subs")
	return t
}

// brokerPubRun builds a broker with subs t14-style filters — each owned
// by a distinct subscriber, so every publish fans out to ~16
// destinations — and drives events publishes through the full pipeline
// from a single goroutine, returning k publishes/s and the delivered
// fan-out per publish.
func brokerPubRun(subs, shards, events int) (kps, matchesPerPub float64) {
	ep := newT15Endpoint(fmt.Sprintf("t14-broker-%d-%d", subs, shards))
	br := pubsub.NewBroker(ep, pubsub.Options{MatchShards: shards, FanoutWorkers: shards})
	defer br.Close()
	groups := subs / t14Attrs
	for i := 0; i < subs; i++ {
		f := pubsub.NewFilter(pubsub.Eq(
			fmt.Sprintf("u%02d", i%t14Attrs),
			event.S(fmt.Sprintf("v%07d", i/t14Attrs))))
		br.Subscribe(ids.FromString(fmt.Sprintf("t14-sub-%d", i)), f)
	}
	from := ids.FromString("t14-pub")

	rng := rand.New(rand.NewSource(14))
	batch := make([]*pubsub.PubMsg, 256)
	for i := range batch {
		ev := event.New("t14.pub", "exp", 0)
		for k := 0; k < t14Attrs; k++ {
			ev.Set(fmt.Sprintf("u%02d", k),
				event.S(fmt.Sprintf("v%07d", rng.Intn(groups))))
		}
		batch[i] = &pubsub.PubMsg{Event: ev.Stamp(uint64(i))}
	}

	start := time.Now()
	for i := 0; i < events; i++ {
		br.Publish(from, batch[i%len(batch)])
	}
	br.DrainFanout()
	elapsed := time.Since(start)

	kps = float64(events) / elapsed.Seconds() / 1000
	matchesPerPub = float64(ep.delivered.Load()) / float64(events)
	return
}

// t14Matcher is the slice of the index API the workload drives; both the
// serial Index and the ShardedIndex satisfy it.
type t14Matcher interface {
	Add(key string, f pubsub.Filter)
	Match(ev *event.Event, visit func(key string))
}

// shardedMatchRun builds a subs-filter index over shards shards and
// hammers it with events publishes from workers goroutines, returning
// k publishes/s and observed matches per publish.
func shardedMatchRun(subs, shards, workers, events int) (kps, matchesPerPub float64) {
	var ix t14Matcher
	var mu sync.Mutex
	serial := shards == 1
	if serial {
		ix = pubsub.NewIndex()
	} else {
		ix = pubsub.NewShardedIndex(shards)
	}
	// One filter per (attribute, value) pair, built in ascending value
	// order per attribute so the sorted posting lists append instead of
	// shifting — this keeps the 1M-subscription build linear.
	groups := subs / t14Attrs
	for i := 0; i < subs; i++ {
		f := pubsub.NewFilter(pubsub.Eq(
			fmt.Sprintf("u%02d", i%t14Attrs),
			event.S(fmt.Sprintf("v%07d", i/t14Attrs))))
		ix.Add(f.Key(), f)
	}

	perWorker := events / workers
	var matched atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// A small rotating batch of pre-built events keeps generator
			// cost out of the measured loop.
			batch := make([]*event.Event, 64)
			for i := range batch {
				ev := event.New("t14.pub", "exp", 0)
				for k := 0; k < t14Attrs; k++ {
					ev.Set(fmt.Sprintf("u%02d", k),
						event.S(fmt.Sprintf("v%07d", rng.Intn(groups))))
				}
				batch[i] = ev.Stamp(uint64(i))
			}
			n := uint64(0)
			for i := 0; i < perWorker; i++ {
				ev := batch[i%len(batch)]
				if serial {
					mu.Lock()
				}
				ix.Match(ev, func(string) { n++ })
				if serial {
					mu.Unlock()
				}
			}
			matched.Add(n)
		}(int64(1000 + wkr))
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := perWorker * workers
	kps = float64(total) / elapsed.Seconds() / 1000
	matchesPerPub = float64(matched.Load()) / float64(total)
	return
}
