// Package exp implements the experiment harness: one runner per table and
// figure in EXPERIMENTS.md. Each runner builds a deterministic world,
// drives the workload, and returns a Table with the same rows the
// documentation reports. Root-level benchmarks (bench_test.go) and
// cmd/benchtab both call into this package.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result in paper-style row/column form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes records measurement context (seeds, world sizes).
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Metric returns a named scalar from the table for benchmark reporting:
// the value at (row, col). Panics on out-of-range — experiment runners
// and benches are maintained together.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms renders a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// f2 renders a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 renders a float with 1 decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// pct renders a ratio as a percentage.
func pct(num, den uint64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// meanDur averages a sample of durations.
func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// percentileDur returns the p-th percentile (0..100) of a sample.
func percentileDur(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// All runs every experiment and returns the tables in document order.
// Quick mode shrinks world sizes for fast runs.
func All(quick bool) []*Table {
	return []*Table{
		F1GlobalMatching(quick),
		F2Pipelines(quick),
		F3Deployment(quick),
		T1PlaxtonRouting(quick),
		T2ReplicaResilience(quick),
		T3PromiscuousCaching(quick),
		T4PubSubScaling(quick),
		T5MatchThroughput(quick),
		T6EvolutionRepair(quick),
		T7PlacementPolicies(quick),
		T8TypeProjection(quick),
		T9MobilityHandoff(quick),
		T10Discovery(quick),
		T11WireFormat(quick),
		T12FanoutHotPath(quick),
		T13Backpressure(quick),
		T14ShardedMatch(quick),
		T15ParallelFanout(quick),
		T16StoragePlane(quick),
		T17Knowledge(quick),
	}
}
