package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/store"
)

// T16StoragePlane measures what the streaming storage plane costs to
// heal: for replicated objects, the repair payload and incremental wire
// traffic after losing one replica holder, across object size, chunk
// size, wire codec and repair mode (digest vs legacy blind push); for an
// erasure-coded (m=4, r=2) object, the traffic to recover a single lost
// fragment via in-network reconstruction vs the whole-object re-copy
// ablation. Wire bytes count codec-encoded store.* frames only (overlay
// heartbeats and leaf maintenance excluded), baseline-corrected: the
// steady-state store rate (digest rounds, stat probes, blind pushes)
// measured over a pre-failure window is subtracted from the recovery
// window.
func T16StoragePlane(quick bool) *Table {
	t := &Table{
		ID:     "E-T16",
		Title:  "Storage plane repair traffic: size × chunk × codec × repair mode",
		Header: []string{"object KiB", "chunk KiB", "codec", "repair", "payload KB", "wire KB", "recover ms"},
	}
	type cfg struct {
		objKiB, chunkKiB int
		codec, repair    string
	}
	rows := []cfg{
		{64, 64, "bin", "digest"},
		{256, 64, "bin", "digest"},
		{256, 16, "bin", "digest"},
		{256, 64, "xml", "digest"},
		{256, 64, "bin", "legacy"},
	}
	nodes := 20
	if quick {
		rows = []cfg{
			{16, 16, "bin", "digest"},
			{64, 16, "bin", "digest"},
			{64, 4, "bin", "digest"},
			{64, 16, "xml", "digest"},
			{64, 16, "bin", "legacy"},
		}
		nodes = 14
	}
	for i, r := range rows {
		payloadKB, wireKB, recov, ok := t16Replication(16000+int64(i), nodes,
			r.objKiB<<10, r.chunkKiB<<10, r.codec, r.repair == "legacy")
		if !ok {
			t.AddRow(fmt.Sprint(r.objKiB), fmt.Sprint(r.chunkKiB), r.codec, r.repair,
				"setup failed", "-", "-")
			continue
		}
		t.AddRow(fmt.Sprint(r.objKiB), fmt.Sprint(r.chunkKiB), r.codec, r.repair,
			f1(payloadKB), f1(wireKB), ms(recov))
	}
	codedKiB := 256
	codedNodes := 24
	if quick {
		codedKiB = 32
		codedNodes = 16
	}
	for _, erasureRepair := range []bool{true, false} {
		mode := "erasure"
		if !erasureRepair {
			mode = "recopy"
		}
		wireKB, recov, ok := t16Coded(16100, codedNodes, codedKiB<<10, erasureRepair)
		if !ok {
			t.AddRow(fmt.Sprint(codedKiB), "-", "bin", mode, "-", "setup failed", "-")
			continue
		}
		t.AddRow(fmt.Sprint(codedKiB), "-", "bin", mode, "n/a", f1(wireKB), ms(recov))
	}
	t.Notes = append(t.Notes,
		"replication rows: kill one replica holder of 4 objects (k=3), heal to full degree",
		"payload KB = object bytes the repair layer pushed during healing; legacy re-pushes blindly every round",
		"wire KB = codec-accounted store.* bytes during healing minus the pre-failure baseline rate × healing time",
		"coded rows: kill the root of one fragment of an (m=4, r=2) object; erasure rebuilds from m survivors in-network and hands the fragment direct to its root, recopy is the GetCoded+PutCoded whole-object ablation")
	return t
}

// t16Replication builds a k=3 cluster, kills one replica holder and
// reports what healing back to full replication degree cost.
func t16Replication(seed int64, nodes, objBytes, chunkBytes int, codec string, legacy bool) (payloadKB, wireKB float64, recov time.Duration, ok bool) {
	const k = 3
	c := buildCluster(clusterCfg{
		seed: seed, nodes: nodes, withStores: true,
		overlay: plaxton.Options{HeartbeatInterval: time.Second, ProbeTimeout: 300 * time.Millisecond},
		storeOpts: store.Options{
			Replicas: k, RepairInterval: 2 * time.Second, RequestTimeout: 5 * time.Second,
			ChunkBytes: chunkBytes, LegacyReplication: legacy,
		},
		codec: codec,
	})
	rng := rand.New(rand.NewSource(seed))
	const objects = 4
	guids := make([]ids.ID, objects)
	for i := range guids {
		body := make([]byte, objBytes)
		rng.Read(body)
		guids[i] = store.GUIDFor(body)
		c.stores[i%nodes].Put(body, func(ids.ID, error) {})
		c.world.RunFor(2 * time.Second)
	}
	c.world.RunFor(15 * time.Second)
	if !t16AllReplicated(c, guids, k) {
		return 0, 0, 0, false
	}
	// Baseline: steady-state wire rate before any failure.
	const calib = 10 * time.Second
	b0 := t16StoreBytes(c)
	c.world.RunFor(calib)
	rate := float64(t16StoreBytes(c)-b0) / float64(calib)

	// Victim: a node holding an object with exactly k live copies, so
	// the kill genuinely drops replication degree and repair must act
	// (an object still carrying a not-yet-GC'd extra copy would heal
	// "for free").
	victim := -1
	for i := 1; i < nodes && victim < 0; i++ {
		for _, g := range guids {
			if c.stores[i].Holds(g) && t16LiveHolders(c, g) == k {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		return 0, 0, 0, false
	}
	pay0 := t16RepairBytes(c, victim)
	w0 := t16StoreBytes(c)
	killAt := c.world.Now()
	c.node(victim).Kill()
	deadline := killAt + 120*time.Second
	for c.world.Now() < deadline && !t16AllReplicated(c, guids, k) {
		c.world.RunFor(500 * time.Millisecond)
	}
	if !t16AllReplicated(c, guids, k) {
		return 0, 0, 0, false
	}
	recov = c.world.Now() - killAt
	payloadKB = float64(t16RepairBytes(c, victim)-pay0) / 1024
	wire := float64(t16StoreBytes(c)-w0) - rate*float64(recov)
	if wire < 0 {
		wire = 0
	}
	return payloadKB, wire / 1024, recov, true
}

// t16Coded builds a coded (m=4, r=2) object, kills a single fragment
// root and reports what restoring full fragment coverage cost — via
// in-network erasure reconstruction or the read-repair re-copy ablation.
func t16Coded(seed int64, nodes, objBytes int, erasureRepair bool) (wireKB float64, recov time.Duration, ok bool) {
	const total = 6 // m=4 data + r=2 parity fragments
	c := buildCluster(clusterCfg{
		seed: seed, nodes: nodes, withStores: true,
		overlay: plaxton.Options{HeartbeatInterval: time.Second, ProbeTimeout: 300 * time.Millisecond},
		storeOpts: store.Options{
			Replicas: 1, RepairInterval: 2 * time.Second, RequestTimeout: 2 * time.Second,
			ErasureData: 4, ErasureParity: 2,
			// Fragments ride whole routed frames and promiscuous caching
			// stays off: chunking and path caching are orthogonal to the
			// repair-traffic comparison this row makes.
			ChunkBytes:        1 << 20,
			DisableCache:      true,
			DisableFragRepair: !erasureRepair,
		},
		codec: "bin",
	})
	rng := rand.New(rand.NewSource(seed))
	body := make([]byte, objBytes)
	rng.Read(body)
	var guid ids.ID
	var putErr error
	c.stores[0].PutCoded(body, func(g ids.ID, err error) { guid, putErr = g, err })
	c.world.RunFor(15 * time.Second)
	if putErr != nil || !t16AllFragments(c, guid, total) {
		return 0, 0, false
	}
	const calib = 10 * time.Second
	b0 := t16StoreBytes(c)
	c.world.RunFor(calib)
	rate := float64(t16StoreBytes(c)-b0) / float64(calib)

	// Victim: a node rooting exactly one fragment, so the kill loses a
	// single fragment and nothing else.
	victim := -1
	for i := 1; i < nodes; i++ {
		held := 0
		for f := 0; f < total; f++ {
			if c.stores[i].Holds(store.FragmentGUID(guid, f)) {
				held++
			}
		}
		if held == 1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		return 0, 0, false
	}
	w0 := t16StoreBytes(c)
	killAt := c.world.Now()
	c.node(victim).Kill()
	if !erasureRepair {
		// Whole-object re-copy ablation: with in-network reconstruction
		// off, the only recovery is the origin re-reading the object and
		// re-putting every fragment. Start it after the same failure
		// detection delay the erasure path pays (heartbeat eviction plus
		// one repair round).
		c.world.RunFor(6 * time.Second)
		c.stores[0].GetCoded(guid, func(data []byte, err error) {
			if err == nil {
				c.stores[0].PutCoded(data, func(ids.ID, error) {})
			}
		})
	}
	deadline := killAt + 120*time.Second
	for c.world.Now() < deadline && !t16AllFragments(c, guid, total) {
		c.world.RunFor(500 * time.Millisecond)
	}
	if !t16AllFragments(c, guid, total) {
		return 0, 0, false
	}
	recov = c.world.Now() - killAt
	wire := float64(t16StoreBytes(c)-w0) - rate*float64(recov)
	if wire < 0 {
		wire = 0
	}
	return wire / 1024, recov, true
}

// t16StoreBytes sums codec-accounted bytes over storage-plane message
// kinds, leaving overlay maintenance traffic out of the measurement.
func t16StoreBytes(c *overlayCluster) uint64 {
	var n uint64
	for kind, b := range c.world.Metrics().BytesByKind {
		if strings.HasPrefix(kind, "store.") {
			n += b
		}
	}
	return n
}

// t16RepairBytes sums the payload bytes the repair layer pushed, over
// live nodes excluding the (future or actual) victim — so the pre-kill
// and post-heal snapshots cover the same population.
func t16RepairBytes(c *overlayCluster, victim int) uint64 {
	var n uint64
	for i, s := range c.stores {
		if i != victim && c.node(i).Alive() {
			n += s.Stats().RepairBytes
		}
	}
	return n
}

// t16LiveHolders counts live nodes holding guid.
func t16LiveHolders(c *overlayCluster, guid ids.ID) int {
	held := 0
	for i, s := range c.stores {
		if c.node(i).Alive() && s.Holds(guid) {
			held++
		}
	}
	return held
}

// t16AllReplicated reports whether every object has at least k live
// holders.
func t16AllReplicated(c *overlayCluster, guids []ids.ID, k int) bool {
	for _, g := range guids {
		held := 0
		for i, s := range c.stores {
			if c.node(i).Alive() && s.Holds(g) {
				held++
			}
		}
		if held < k {
			return false
		}
	}
	return true
}

// t16AllFragments reports whether every fragment of a coded object has a
// live holder.
func t16AllFragments(c *overlayCluster, guid ids.ID, total int) bool {
	for f := 0; f < total; f++ {
		held := false
		for i, s := range c.stores {
			if c.node(i).Alive() && s.Holds(store.FragmentGUID(guid, f)) {
				held = true
				break
			}
		}
		if !held {
			return false
		}
	}
	return true
}
