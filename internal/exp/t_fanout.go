package exp

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/transport"
	"github.com/gloss/active/internal/wire"
)

// T12FanoutHotPath measures the publish→deliver→write pipeline after the
// zero-copy refactor. Simulated rows compare borrow fan-out (one frozen
// event shared by every delivery) against the clone-per-delivery
// reference: clones and heap allocations per delivery, plus wall-clock
// throughput of the whole simulated world (scheduler timer wheel +
// delivery batching included). TCP rows compare batched frame writing
// (queued frames coalesced into one writev per flush) against the
// one-frame-per-write reference: connection writes per 10k messages and
// end-to-end throughput over loopback.
func T12FanoutHotPath(quick bool) *Table {
	t := &Table{
		ID:     "E-T12",
		Title:  "Fan-out hot path: zero-copy delivery and batched frame writing",
		Header: []string{"path", "fanout", "clones/dlv", "allocs/dlv", "writes/10k msgs", "k msgs/s"},
	}
	fanouts := []int{8, 64}
	pubs := 2000
	tcpMsgs := 10000
	if quick {
		fanouts = []int{8}
		pubs = 400
		tcpMsgs = 2000
	}

	for _, fo := range fanouts {
		for _, mode := range []struct {
			name  string
			clone bool
		}{{"sim/borrow", false}, {"sim/clone", true}} {
			clonesPerDlv, allocsPerDlv, kmsgs := simFanoutRun(fo, pubs, mode.clone)
			t.AddRow(mode.name, fmt.Sprint(fo), f2(clonesPerDlv), f1(allocsPerDlv), "-", f1(kmsgs))
		}
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"tcp/batch", false}, {"tcp/nobatch", true}} {
		writesPer10k, kmsgs := tcpBatchRun(tcpMsgs, mode.disable)
		t.AddRow(mode.name, "16", "-", "-", f1(writesPer10k), f1(kmsgs))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("sim: %d publishes to matching local subscribers, DisableJitter+DisableMetrics world", pubs),
		fmt.Sprintf("tcp: %d messages over loopback in bursts of 16; writes = flushes of the sender's per-peer queue", tcpMsgs),
		"clones/dlv is broker event copies per delivery: 0 on the borrow path by design")
	return t
}

// simFanoutRun publishes pubs events to fo matching subscribers on one
// simulated broker and reports clones per delivery, heap allocations per
// delivery and wall-clock throughput in k deliveries/s.
func simFanoutRun(fo, pubs int, clone bool) (clonesPerDlv, allocsPerDlv, kmsgs float64) {
	w := simnet.NewWorld(simnet.Config{Seed: 12, DisableJitter: true, DisableMetrics: true})
	bn := w.NewNode(ids.FromString("t12-broker"), "eu", netapi.Coord{})
	br := pubsub.NewBroker(bn, pubsub.Options{CloneFanout: clone})
	for i := 0; i < fo; i++ {
		cn := w.NewNode(ids.FromString(fmt.Sprintf("t12-sub-%d", i)), "eu", netapi.Coord{X: 1})
		cl := pubsub.NewClient(cn, br.ID())
		cl.Subscribe(pubsub.NewFilter(pubsub.TypeIs("hot")), func(*event.Event) {})
	}
	pn := w.NewNode(ids.FromString("t12-pub"), "eu", netapi.Coord{X: 2})
	pub := pubsub.NewClient(pn, br.ID())
	w.RunFor(time.Second)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < pubs; i++ {
		pub.Publish(event.New("hot", "t12", w.Now()).
			Set("user", event.S("user-1")).
			Set("x", event.F(3.5)).
			Stamp(uint64(i)))
		w.RunFor(5 * time.Millisecond)
	}
	w.RunFor(time.Second)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	st := br.Stats()
	dlv := float64(st.ClientDelivers)
	if dlv == 0 {
		return 0, 0, 0
	}
	clonesPerDlv = float64(st.EventClones) / dlv
	allocsPerDlv = float64(after.Mallocs-before.Mallocs) / dlv
	kmsgs = dlv / elapsed.Seconds() / 1000
	return
}

// tcpBatchRun pushes msgs echo messages through a loopback TCP pair in
// bursts and reports sender connection writes per 10k messages and
// throughput in k msgs/s.
func tcpBatchRun(msgs int, disableBatching bool) (writesPer10k, kmsgs float64) {
	reg := wire.NewRegistry()
	transport.RegisterMessages(reg)
	reg.Register(&t12Msg{}) //vetactive:xmlfallback experiment payload, not a production kind
	suffix := "batch"
	if disableBatching {
		suffix = "nobatch"
	}
	a, err := transport.Listen(ids.FromString("t12-a-"+suffix), reg,
		transport.Options{Seed: 1, DisableBatching: disableBatching})
	if err != nil {
		panic(err)
	}
	defer a.Close()
	b, err := transport.Listen(ids.FromString("t12-b-"+suffix), reg, transport.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	defer b.Close()
	a.AddPeer(b.ID(), b.Addr())
	var received atomic.Uint64
	b.Handle("t12.msg", func(netapi.Ctx, ids.ID, wire.Message) { received.Add(1) })

	msg := &t12Msg{Text: "the quick brown fox jumps over the lazy dog"}
	start := time.Now()
	const burst = 16
	for sent := 0; sent < msgs; sent += burst {
		for j := 0; j < burst && sent+j < msgs; j++ {
			a.Send(b.ID(), msg)
		}
		// Light pacing keeps the per-peer outbox below its high watermark:
		// this table measures write batching, not overload (see E-T13).
		for int(received.Load()) < sent-outboxSlack {
			time.Sleep(50 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for int(received.Load()) < msgs && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	st := a.Stats()
	if st.Sent == 0 {
		return 0, 0
	}
	writesPer10k = float64(st.FlushWrites) / float64(st.Sent) * 10000
	kmsgs = float64(received.Load()) / elapsed.Seconds() / 1000
	return
}

// outboxSlack keeps the in-flight window under the transport's per-peer
// queue bound.
const outboxSlack = 128

type t12Msg struct {
	Text string `xml:"text,attr"`
}

func (t12Msg) Kind() string { return "t12.msg" }
