package exp

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/store"
)

// T10Discovery measures the §5 discovery path: an unknown event type
// arrives, the discovery matchlet fetches the matching bundle from the
// storage architecture and installs it; afterwards the type matches like
// any other.
func T10Discovery(quick bool) *Table {
	t := &Table{
		ID:     "E-T10",
		Title:  "Discovery matchlets: unknown event types",
		Header: []string{"trial", "discovery ms", "pre-install matched", "post-install matched", "installs"},
	}
	trials := 5
	if quick {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		w, err := core.NewWorld(core.WorldConfig{
			Seed:  int64(8000 + trial),
			Nodes: 8,
			Node: core.NodeConfig{
				EnableDiscovery: true,
				AdvertInterval:  -1,
				Overlay:         plaxton.Options{HeartbeatInterval: -1},
				Store:           store.Options{RepairInterval: -1},
			},
		})
		if err != nil {
			panic(err)
		}
		evType := fmt.Sprintf("novel.reading.%d", trial)
		rule := &match.Rule{
			Name:     "novel-" + fmt.Sprint(trial),
			WindowMs: 60_000,
			Patterns: []match.Pattern{{
				Alias:  "n",
				Filter: pubsub.NewFilter(pubsub.TypeIs(evType)),
			}},
			Emit: match.Emit{Type: "alert.novel",
				Attrs: []match.EmitAttr{{Name: "v", From: "$n.v"}}},
		}
		data, err := match.MarshalRule(rule)
		if err != nil {
			panic(err)
		}
		b, err := w.Mint("matchlet/"+rule.Name, "matchlet", data)
		if err != nil {
			panic(err)
		}
		match.PublishMatchlet(w.Node(0).Store, evType, b, func(error) {})
		w.RunFor(5 * time.Second)

		// Node 5 watches the stream; its discovery hook must react.
		watcher := w.Node(5)
		watcher.SubscribeMatching(pubsub.NewFilter(pubsub.TypeIs(evType)))
		alerts := 0
		watcher.Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("alert.novel")),
			func(*event.Event) { alerts++ })
		w.RunFor(2 * time.Second)

		publish := func(seq uint64) {
			w.Node(2).Client.Publish(event.New(evType, "sensor", w.Sim.Now()).
				Set("v", event.I(int64(seq))).Stamp(seq))
		}
		start := w.Sim.Now()
		publish(1)
		// Poll until the matchlet is installed.
		var discovered time.Duration
		for i := 0; i < 200; i++ {
			w.RunFor(100 * time.Millisecond)
			if watcher.Discovery.Installed > 0 {
				discovered = w.Sim.Now() - start
				break
			}
		}
		pre := alerts
		for seq := uint64(2); seq <= 6; seq++ {
			publish(seq)
			w.RunFor(time.Second)
		}
		w.RunFor(5 * time.Second)
		t.AddRow(fmt.Sprint(trial), ms(discovered), fmt.Sprint(pre),
			fmt.Sprint(alerts-pre), fmt.Sprint(watcher.Discovery.Installed))
	}
	t.Notes = append(t.Notes,
		"discovery = store lookup of 'matchlet-for/<type>' + verified install; the trigger event itself may match when the lookup is served locally")
	return t
}
