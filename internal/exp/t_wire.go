package exp

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/transport"
	"github.com/gloss/active/internal/wire"
)

// T11WireFormat compares the two wire codecs — the paper's open XML
// format (§4.7) and the compact binary fast path — on the hot message
// shapes: event publishes of three sizes, a subscription filter, and a
// routed overlay message. Reported per message: encoded bytes and
// encode cost for each codec, plus the binary codec's advantage. The
// differential test in internal/wire guarantees both decode
// identically, so the advantage is free of behaviour change.
func T11WireFormat(quick bool) *Table {
	t := &Table{
		ID:    "E-T11",
		Title: "Wire formats: XML interop codec vs binary fast path",
		Header: []string{"message", "xml B", "bin B", "B ratio",
			"xml enc ns", "bin enc ns", "enc speedup"},
	}
	iters := 20000
	if quick {
		iters = 2000
	}

	reg := wire.NewRegistry()
	core.RegisterMessages(reg)
	transport.RegisterMessages(reg)
	bin := wire.NewBinaryCodec(reg)

	mkEvent := func(attrs int, body int, seq uint64) *event.Event {
		ev := event.New("gps.location", "sensor-eu-7", 90*time.Second)
		for i := 0; i < attrs; i++ {
			switch i % 3 {
			case 0:
				ev.Set(fmt.Sprintf("s%02d", i), event.S(fmt.Sprintf("value-%d", i)))
			case 1:
				ev.Set(fmt.Sprintf("n%02d", i), event.I(int64(i)*1001))
			default:
				ev.Set(fmt.Sprintf("f%02d", i), event.F(float64(i)*3.25))
			}
		}
		if body > 0 {
			pad := make([]byte, body)
			for i := range pad {
				pad[i] = 'a' + byte(i%26)
			}
			ev.SetBody("<payload>" + string(pad) + "</payload>")
		}
		return ev.Stamp(seq)
	}

	from, to := ids.FromString("node-a"), ids.FromString("node-b")
	filter := pubsub.NewFilter(
		pubsub.TypeIs("gps.location"),
		pubsub.Eq("user", event.S("user-42")),
		pubsub.Gt("x", event.F(3.5)),
		pubsub.Prefix("region", "eu-"),
	)
	innerFrame, err := bin.Encode(&wire.Envelope{
		From: from, To: to, Msg: &pubsub.PubMsg{Event: mkEvent(3, 0, 9)},
	})
	if err != nil {
		panic(err)
	}

	cases := []struct {
		name string
		msg  wire.Message
	}{
		{"pub event 3 attrs", &pubsub.PubMsg{Event: mkEvent(3, 0, 1)}},
		{"pub event 8 attrs", &pubsub.PubMsg{Event: mkEvent(8, 0, 2)}},
		{"pub event 24 attrs+body", &pubsub.PubMsg{Event: mkEvent(24, 512, 3)}},
		{"subscribe 4-constraint", &pubsub.SubMsg{Filter: filter}},
		{"route wrapped put", &plaxton.RouteMsg{
			Key:       ids.FromString("object-key").String(),
			Origin:    from.String(),
			Hops:      3,
			Path:      []string{from.String(), to.String()},
			InnerKind: "pubsub.pub",
			Inner:     innerFrame,
		}},
	}

	encodeCost := func(c wire.Codec, env *wire.Envelope) (bytes int, nsOp float64) {
		frame, err := c.Encode(env)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := c.Encode(env); err != nil {
				panic(err)
			}
		}
		return len(frame), float64(time.Since(start).Nanoseconds()) / float64(iters)
	}

	for _, cse := range cases {
		env := &wire.Envelope{From: from, To: to, Msg: cse.msg}
		xmlB, xmlNs := encodeCost(reg, env)
		binB, binNs := encodeCost(bin, env)
		t.AddRow(cse.name,
			fmt.Sprint(xmlB), fmt.Sprint(binB), f1(float64(xmlB)/float64(binB)),
			fmt.Sprintf("%.0f", xmlNs), fmt.Sprintf("%.0f", binNs), f1(xmlNs/binNs),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d encode iterations per cell; full node registry (%d kinds) interned", iters, len(reg.Kinds())),
		"XML stays the default and the differential-test reference; binary is opt-in per node (-codec binary)")
	return t
}
