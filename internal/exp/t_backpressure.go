package exp

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/transport"
	"github.com/gloss/active/internal/wire"
)

// T13Backpressure measures the overload story of the send path: drop
// rate and delivery latency as a function of the per-peer outbox byte
// budget under burst load, after the fixed 256-frame bound became a
// byte-budgeted queue with high/low watermarks.
//
// Simulated rows drive bursts over a 20ms link with the in-flight byte
// budget mirror (simnet.Config.OutboxHighWater): the budget caps the
// bytes a sender may have in flight per destination, so the drop rate
// falls as the budget grows while latency stays at the modelled link
// delay (the simulator has no queueing model). TCP rows push bursts at
// a deliberately slow receiver over loopback: small budgets drop most
// of each burst but keep the queue — and therefore the delivery tail —
// short; large budgets approach losslessness at the price of queueing
// delay (bufferbloat, visible in p99). The legacy row is the
// pre-watermark 256-frame reference bound (Options.LegacyOutbox),
// which lands wherever the frame size dictates — the untunability the
// byte budget replaces.
func T13Backpressure(quick bool) *Table {
	t := &Table{
		ID:     "E-T13",
		Title:  "Outbox backpressure: drop rate and tail latency vs byte budget",
		Header: []string{"path", "budget", "msgs", "drop %", "p50 ms", "p99 ms"},
	}
	simSteps, simPerStep := 100, 100
	tcpBurst, tcpRounds := 3000, 4
	if quick {
		simSteps, simPerStep = 40, 50
		tcpBurst, tcpRounds = 1200, 2
	}

	// One encoded t13 message, sized by the same XML codec the world
	// charges, anchors the simulated budgets in bytes.
	msgSize := simMsgSize()
	for _, budgetMsgs := range []int{250, 1000, 4000, 0} {
		attempts, dropped, p50, p99 := simBackpressureRun(budgetMsgs*msgSize, simSteps, simPerStep)
		label := "unbounded"
		if budgetMsgs > 0 {
			label = fmt.Sprintf("%dKiB", budgetMsgs*msgSize/1024)
		}
		t.AddRow("sim/burst", label, fmt.Sprint(attempts), pct(dropped, attempts), ms(p50), ms(p99))
	}
	for _, mode := range []struct {
		name string
		opts transport.Options
	}{
		{"frames-256 (legacy)", transport.Options{LegacyOutbox: true}},
		{"64KiB", transport.Options{OutboxHighWater: 64 << 10}},
		{"512KiB", transport.Options{OutboxHighWater: 512 << 10}},
		{"4MiB", transport.Options{OutboxHighWater: 4 << 20}},
	} {
		attempts, dropped, p50, p99 := tcpBackpressureRun(tcpBurst, tcpRounds, mode.name, mode.opts)
		t.AddRow("tcp/burst", mode.name, fmt.Sprint(attempts), pct(dropped, attempts), ms(p50), ms(p99))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("sim: bursts of %d msgs/ms for %dms over a 20ms link; budget caps in-flight bytes per destination (1 msg = %d B XML)", simPerStep, simSteps, msgSize),
		fmt.Sprintf("tcp: %d rounds of %d-msg bursts (~2 KiB frames) at a slow loopback receiver; queue drains fully between bursts", tcpRounds, tcpBurst),
		"drops are all DroppedOverflow: the watermark refusing sends above the byte budget (legacy row: above the frame cap)",
		"sim latency is flat by construction (no queueing model); tcp p99 grows with the budget — the drop/latency trade the budget tunes")
	return t
}

// t13Msg carries a send timestamp (virtual nanoseconds under simnet,
// wall-clock under TCP) and padding that sets the frame size.
type t13Msg struct {
	Stamp int64  `xml:"stamp,attr"`
	Pad   string `xml:"pad,attr,omitempty"`
}

func (t13Msg) Kind() string { return "t13.msg" }

// simMsgSize measures one encoded sim-row message.
func simMsgSize() int {
	reg := wire.NewRegistry()
	reg.Register(&t13Msg{}) //vetactive:xmlfallback experiment payload, not a production kind
	frame, err := reg.Encode(&wire.Envelope{
		From: ids.FromString("t13-size-a"),
		To:   ids.FromString("t13-size-b"),
		Msg:  &t13Msg{Stamp: 1}})
	if err != nil {
		panic(err)
	}
	return len(frame)
}

// simBackpressureRun bursts messages over a fixed-latency simulated
// link under an in-flight byte budget (0 = unbounded) and reports
// attempts, overflow drops and delivery-latency percentiles.
func simBackpressureRun(budgetBytes, steps, perStep int) (attempts, dropped uint64, p50, p99 time.Duration) {
	reg := wire.NewRegistry()
	reg.Register(&t13Msg{}) //vetactive:xmlfallback experiment payload, not a production kind
	w := simnet.NewWorld(simnet.Config{
		Seed: 13, DisableJitter: true, Codec: reg,
		OutboxHighWater: budgetBytes,
	})
	// 1900 km at 10µs/km + 1ms base = 20ms one way.
	a := w.NewNode(ids.FromString("t13-sim-a"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("t13-sim-b"), "us", netapi.Coord{X: 1900})
	var lats []time.Duration
	b.Handle("t13.msg", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
		lats = append(lats, w.Now()-time.Duration(msg.(*t13Msg).Stamp))
	})
	for s := 0; s < steps; s++ {
		for j := 0; j < perStep; j++ {
			a.Send(b.ID(), &t13Msg{Stamp: int64(w.Now())})
		}
		w.RunFor(time.Millisecond)
	}
	w.RunFor(time.Second)
	return uint64(steps * perStep), w.Metrics().DroppedOverflow,
		percentileDur(lats, 50), percentileDur(lats, 99)
}

// tcpBackpressureRun pushes rounds of bursts at a deliberately slow
// receiver over loopback TCP and reports attempts, overflow drops and
// delivery-latency percentiles. The queue drains fully between rounds,
// so drops measure how much of one burst the configured outbox absorbs.
func tcpBackpressureRun(burst, rounds int, suffix string, opts transport.Options) (attempts, dropped uint64, p50, p99 time.Duration) {
	reg := wire.NewRegistry()
	transport.RegisterMessages(reg)
	reg.Register(&t13Msg{}) //vetactive:xmlfallback experiment payload, not a production kind
	opts.Seed = 1
	a, err := transport.Listen(ids.FromString("t13-tcp-a-"+suffix), reg, opts)
	if err != nil {
		panic(err)
	}
	defer a.Close()
	b, err := transport.Listen(ids.FromString("t13-tcp-b-"+suffix), reg, transport.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	defer b.Close()
	a.AddPeer(b.ID(), b.Addr())

	var (
		mu       sync.Mutex
		lats     []time.Duration
		received atomic.Uint64
	)
	b.Handle("t13.msg", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
		time.Sleep(20 * time.Microsecond) // slow consumer: the overload source
		lat := time.Since(time.Unix(0, msg.(*t13Msg).Stamp))
		mu.Lock()
		lats = append(lats, lat)
		mu.Unlock()
		received.Add(1)
	})

	pad := strings.Repeat("x", 2048)
	for r := 0; r < rounds; r++ {
		for j := 0; j < burst; j++ {
			a.Send(b.ID(), &t13Msg{Stamp: time.Now().UnixNano(), Pad: pad})
		}
		// Drain completely before the next round so every round hits the
		// configured bound from empty.
		deadline := time.Now().Add(30 * time.Second)
		for received.Load() < a.Stats().Sent && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	st := a.Stats()
	mu.Lock()
	defer mu.Unlock()
	return uint64(rounds * burst), st.DroppedOverflow,
		percentileDur(lats, 50), percentileDur(lats, 99)
}
