package exp

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pipeline"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/wire"
)

// F1GlobalMatching reproduces Figure 1: the whole population's sensor
// streams flow through the global infrastructure; matchlets distil them
// into per-user meaningful events.
func F1GlobalMatching(quick bool) *Table {
	t := &Table{
		ID:     "E-F1",
		Title:  "Figure 1 — global matching: distillation and latency",
		Header: []string{"users", "low-level events", "suggestions", "distill ratio", "mean e2e ms"},
	}
	userCounts := []int{8, 16, 32}
	if quick {
		userCounts = []int{8, 16}
	}
	for _, users := range userCounts {
		w := buildCore(100+int64(users), 9, 5*time.Second)
		w.RunFor(core.ScenarioStart - w.Sim.Now())
		svc, err := w.DeployService(core.IceCreamService(2, "eu"), 0)
		if err != nil {
			panic(err)
		}
		w.RunFor(20 * time.Second)
		_ = svc

		// Device clients subscribe for their own suggestions; one device
		// per user spread over nodes.
		rng := rand.New(rand.NewSource(23))
		suggestions := 0
		var latencies []time.Duration
		for u := 0; u < users; u++ {
			user := userName(u)
			node := w.Node(rng.Intn(len(w.Nodes)))
			node.Client.Subscribe(pubsub.NewFilter(
				pubsub.TypeIs("suggestion.meet"),
				pubsub.Eq("user", event.S(user)),
			), func(ev *event.Event) {
				suggestions++
				if src := ev.GetNum("srcTime"); src > 0 {
					latencies = append(latencies, w.Sim.Now()-time.Duration(int64(src)))
				}
			})
		}
		// Knowledge: everybody likes ice cream and has spare time; the
		// social graph links users u and u+4 — which pairs up exactly the
		// users strolling near the shop (u % 4 == 0).
		for u := 0; u < users; u++ {
			user := userName(u)
			for _, n := range w.Nodes {
				n.KB.AddSPO(user, "likes", "ice cream")
				n.KB.AddSPO(user, "hot-threshold", "18")
				n.KB.AddSPO(user, "knows", userName((u+4)%users))
				n.KB.AddSPO(user, "has-spare-time", "true")
			}
		}
		w.RunFor(5 * time.Second)

		// Sensor storm: each user walks near the shop area; two
		// thermometers report; most location events are far away and
		// produce nothing.
		published := 0
		seq := uint64(0)
		publish := func(ev *event.Event) {
			published++
			w.Node(int(seq) % len(w.Nodes)).Client.Publish(ev)
		}
		const rounds = 20
		for round := 0; round < rounds; round++ {
			seq++
			publish(event.New("weather.report", "thermo-eu", w.Sim.Now()).
				Set("region", event.S("eu")).Set("tempC", event.F(19.5)).Stamp(seq))
			for u := 0; u < users; u++ {
				seq++
				user := userName(u)
				// A quarter of users stroll near Market Street; the rest
				// are scattered far away.
				x, y := 400.0+float64(u), 400.0
				if u%4 == 0 {
					x, y = 10.2+float64(u)*0.01, 4.0
				}
				publish(event.New("gps.location", "gps-"+user, w.Sim.Now()).
					Set("user", event.S(user)).
					Set("x", event.F(x)).Set("y", event.F(y)).
					Stamp(seq))
			}
			w.RunFor(30 * time.Second)
		}
		w.RunFor(30 * time.Second)

		ratio := "∞"
		if suggestions > 0 {
			ratio = f1(float64(published) / float64(suggestions))
		}
		t.AddRow(fmt.Sprint(users), fmt.Sprint(published), fmt.Sprint(suggestions),
			ratio, ms(meanDur(latencies)))
	}
	t.Notes = append(t.Notes, "suggestions only arise for acquainted users strolling near the shop in warm weather")
	return t
}

func userName(u int) string { return fmt.Sprintf("user-%02d", u) }

// F2Pipelines reproduces Figure 2: an XML pipeline distributed over two
// nodes, comparing intra-node and inter-node event flow.
func F2Pipelines(quick bool) *Table {
	t := &Table{
		ID:     "E-F2",
		Title:  "Figure 2 — distributed XML pipelines",
		Header: []string{"layout", "components", "events", "delivered", "mean latency ms"},
	}
	events := 400
	if quick {
		events = 150
	}
	for _, layout := range []string{"intra-node", "inter-node"} {
		for _, components := range []int{2, 6} {
			w := simnet.NewWorld(simnet.Config{Seed: 42})
			reg := wire.NewRegistry()
			pipeline.RegisterMessages(reg)
			nodeA := w.NewNode(ids.FromString("f2-a"), "eu", netapi.Coord{})
			nodeB := w.NewNode(ids.FromString("f2-b"), "us", netapi.Coord{X: 6000})

			delivered := 0
			var lats []time.Duration
			sinkDeps := pipeline.Deps{
				Clock: nodeB.Clock(),
				Deliver: func(ev *event.Event) {
					delivered++
					lats = append(lats, w.Now()-ev.Time)
				},
			}
			if layout == "intra-node" {
				sinkDeps.Clock = nodeA.Clock()
			}

			// Build the downstream half: counters then deliver.
			spec := &pipeline.Spec{Name: "down"}
			prev := ""
			for c := 0; c < components-1; c++ {
				name := fmt.Sprintf("c%d", c)
				spec.Components = append(spec.Components, pipeline.ComponentSpec{Name: name, Type: "counter"})
				if prev != "" {
					spec.Links = append(spec.Links, pipeline.LinkSpec{From: prev, To: name})
				}
				prev = name
			}
			spec.Components = append(spec.Components, pipeline.ComponentSpec{Name: "out", Type: "deliver"})
			if prev != "" {
				spec.Links = append(spec.Links, pipeline.LinkSpec{From: prev, To: "out"})
			}
			down, err := pipeline.Assemble(spec, pipeline.NewRegistry(), sinkDeps)
			if err != nil {
				panic(err)
			}

			var ingress func(*event.Event)
			if layout == "intra-node" {
				ingress = down.Put
			} else {
				rtB := pipeline.NewRuntime(nodeB)
				rtB.Add(down)
				upSpec := &pipeline.Spec{
					Name: "up",
					Components: []pipeline.ComponentSpec{{
						Name: "ship", Type: "remote",
						Params: []pipeline.Param{
							{Key: "target", Value: nodeB.ID().String()},
							{Key: "pipeline", Value: "down"},
						},
					}},
				}
				up, err := pipeline.Assemble(upSpec, pipeline.NewRegistry(),
					pipeline.Deps{Clock: nodeA.Clock(), Endpoint: nodeA})
				if err != nil {
					panic(err)
				}
				ingress = up.Put
			}

			for i := 0; i < events; i++ {
				ev := event.New("f2.tick", "gen", w.Now()).Set("n", event.I(int64(i))).Stamp(uint64(i))
				ingress(ev)
				w.RunFor(10 * time.Millisecond)
			}
			w.RunFor(5 * time.Second)
			t.AddRow(layout, fmt.Sprint(components), fmt.Sprint(events),
				fmt.Sprint(delivered), ms(meanDur(lats)))
		}
	}
	t.Notes = append(t.Notes, "inter-node latency is dominated by the 6000 km link (~61 ms)")
	return t
}

// F3Deployment reproduces Figure 3: thin servers assembling pipelines
// from code bundles pushed over the network.
func F3Deployment(quick bool) *Table {
	t := &Table{
		ID:     "E-F3",
		Title:  "Figure 3 — bundle deployment and pipeline assembly",
		Header: []string{"payload", "bundles", "deploy ok", "mean deploy RTT ms", "domains up"},
	}
	bundles := 12
	if quick {
		bundles = 6
	}
	for _, payloadKB := range []int{1, 16, 64} {
		w := buildCore(300+int64(payloadKB), 6, -1) // no advertising noise
		// Payload: a matchlet rule padded with a comment to size.
		rule := core.IceCreamRule()
		data, err := match.MarshalRule(rule)
		if err != nil {
			panic(err)
		}
		pad := make([]byte, payloadKB*1024-len(data)%1024)
		for i := range pad {
			pad[i] = 'x'
		}
		payload := append(data, []byte(fmt.Sprintf("<!-- %s -->", pad))...)

		// Matchlet payloads must parse; keep the rule untouched and pad
		// in a trailing comment (valid XML).
		deployed := 0
		var rtts []time.Duration
		for i := 0; i < bundles; i++ {
			target := w.Node(1 + i%(len(w.Nodes)-1))
			b, err := w.Mint(fmt.Sprintf("matchlet/f3-%d", i), "matchlet", payload)
			if err != nil {
				panic(err)
			}
			start := w.Sim.Now()
			bundle.Deploy(w.Node(0).Endpoint(), target.ID(), b, 10*time.Second, func(err error) {
				if err == nil {
					deployed++
					rtts = append(rtts, w.Sim.Now()-start)
				}
			})
			w.RunFor(500 * time.Millisecond)
		}
		w.RunFor(10 * time.Second)
		domains := 0
		for _, n := range w.Nodes {
			domains += len(n.Server.Domains())
		}
		t.AddRow(fmt.Sprintf("%d KiB", payloadKB), fmt.Sprint(bundles),
			fmt.Sprint(deployed), ms(meanDur(rtts)), fmt.Sprint(domains))
	}
	t.Notes = append(t.Notes, "RTT includes signature verification, capability checks and matchlet start")
	return t
}
