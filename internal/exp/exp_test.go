package exp

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// runQuick runs an experiment in quick mode and sanity-checks the table.
func runQuick(t *testing.T, name string, run func(bool) *Table) *Table {
	t.Helper()
	start := time.Now()
	table := run(true)
	t.Logf("%s finished in %.1fs\n%s", name, time.Since(start).Seconds(), table.Format())
	if len(table.Rows) == 0 {
		t.Fatalf("%s produced no rows", name)
	}
	for i, row := range table.Rows {
		if len(row) != len(table.Header) {
			t.Fatalf("%s row %d has %d cells, header has %d", name, i, len(row), len(table.Header))
		}
	}
	return table
}

// cellFloat parses a numeric cell (stripping %, ms suffixes).
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSpace(cell), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestTableFormat(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	out := tab.Format()
	if !strings.Contains(out, "X — demo") || !strings.Contains(out, "bee") {
		t.Fatalf("format: %s", out)
	}
}

func TestF1GlobalMatching(t *testing.T) {
	tab := runQuick(t, "F1", F1GlobalMatching)
	// Suggestions must exist and distillation must be strong.
	for _, row := range tab.Rows {
		if row[2] == "0" {
			t.Fatalf("no suggestions for %s users", row[0])
		}
		if cellFloat(t, row[3]) < 5 {
			t.Fatalf("distillation ratio too weak: %v", row)
		}
	}
}

func TestF2Pipelines(t *testing.T) {
	tab := runQuick(t, "F2", F2Pipelines)
	// All events delivered; inter-node slower than intra-node.
	intra := cellFloat(t, tab.Rows[0][4])
	inter := cellFloat(t, tab.Rows[2][4])
	if tab.Rows[0][3] != tab.Rows[0][2] {
		t.Fatalf("intra-node lost events: %v", tab.Rows[0])
	}
	if inter <= intra {
		t.Fatalf("inter-node (%v ms) should exceed intra-node (%v ms)", inter, intra)
	}
}

func TestF3Deployment(t *testing.T) {
	tab := runQuick(t, "F3", F3Deployment)
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Fatalf("deploys failed: %v", row)
		}
	}
}

func TestT1PlaxtonRouting(t *testing.T) {
	tab := runQuick(t, "T1", T1PlaxtonRouting)
	for _, row := range tab.Rows {
		if row[2] != "100.0%" {
			t.Fatalf("delivery below 100%%: %v", row)
		}
	}
	// Hops grow sub-linearly: 4x nodes must not mean 4x hops.
	h16 := cellFloat(t, tab.Rows[0][3])
	h64 := cellFloat(t, tab.Rows[1][3])
	if h64 > h16*3 {
		t.Fatalf("hops scaling looks linear: %v vs %v", h16, h64)
	}
}

func TestT2ReplicaResilience(t *testing.T) {
	tab := runQuick(t, "T2", T2ReplicaResilience)
	// At 50% staged failures, healing must beat no-healing.
	noHeal := cellFloat(t, tab.Rows[2][3])
	heal := cellFloat(t, tab.Rows[3][3])
	if heal < noHeal {
		t.Fatalf("healing made availability worse: %v vs %v", heal, noHeal)
	}
	if heal < 90 {
		t.Fatalf("healed availability too low: %v%%", heal)
	}
	if noHeal > 95 {
		t.Fatalf("no-healing availability suspiciously high (%v%%) — failure injection degenerate", noHeal)
	}
}

func TestT3PromiscuousCaching(t *testing.T) {
	tab := runQuick(t, "T3", T3PromiscuousCaching)
	offLat := cellFloat(t, tab.Rows[0][2])
	onLat := cellFloat(t, tab.Rows[1][2])
	if onLat >= offLat {
		t.Fatalf("cache did not cut latency: on=%v off=%v", onLat, offLat)
	}
	offRoot := cellFloat(t, tab.Rows[0][4])
	onRoot := cellFloat(t, tab.Rows[1][4])
	if onRoot >= offRoot {
		t.Fatalf("cache did not unload the origin: on=%v off=%v", onRoot, offRoot)
	}
}

func TestT4PubSubScaling(t *testing.T) {
	tab := runQuick(t, "T4", T4PubSubScaling)
	// Covering must shrink forwarded-subscription state, not change
	// deliveries.
	fwdOn := cellFloat(t, tab.Rows[0][4])
	fwdOff := cellFloat(t, tab.Rows[1][4])
	if fwdOn >= fwdOff {
		t.Fatalf("covering did not reduce forwarded subs: %v vs %v", fwdOn, fwdOff)
	}
	if tab.Rows[0][7] != tab.Rows[1][7] {
		t.Fatalf("covering changed deliveries: %v vs %v", tab.Rows[0][7], tab.Rows[1][7])
	}
	// The predicate index must actually be populated at every broker
	// that holds table entries.
	if cellFloat(t, tab.Rows[0][5]) <= 0 {
		t.Fatalf("predicate index empty despite %v table entries", tab.Rows[0][3])
	}
}

func TestT5MatchThroughput(t *testing.T) {
	tab := runQuick(t, "T5", T5MatchThroughput)
	for _, row := range tab.Rows {
		if cellFloat(t, row[3]) < 1000 {
			t.Fatalf("throughput below 1k events/s: %v", row)
		}
	}
}

func TestT6EvolutionRepair(t *testing.T) {
	tab := runQuick(t, "T6", T6EvolutionRepair)
	for _, row := range tab.Rows {
		if row[2] == "setup failed" || row[2] == "0.00" {
			t.Fatalf("repair did not happen: %v", row)
		}
	}
	// Graceful departure repairs no slower than crash at the same
	// heartbeat (the crash pays the heartbeat-miss detection delay).
	crash := cellFloat(t, tab.Rows[0][2])
	graceful := cellFloat(t, tab.Rows[1][2])
	if graceful > crash {
		t.Fatalf("graceful (%v ms) slower than crash (%v ms)", graceful, crash)
	}
}

func TestT7PlacementPolicies(t *testing.T) {
	tab := runQuick(t, "T7", T7PlacementPolicies)
	// The latency policy must create extra remote copies…
	noneCopies := cellFloat(t, tab.Rows[0][4])
	latCopies := cellFloat(t, tab.Rows[2][4])
	if latCopies <= noneCopies {
		t.Fatalf("latency policy created no extra remote copies: %v vs %v", latCopies, noneCopies)
	}
	// …and cut first-access latency once chunks have migrated (t+8min),
	// versus the no-policy baseline.
	noneLate := cellFloat(t, tab.Rows[0][3])
	latLate := cellFloat(t, tab.Rows[2][3])
	if latLate >= noneLate {
		t.Fatalf("latency policy did not cut first-access latency: %v vs %v", latLate, noneLate)
	}
}

func TestT8TypeProjection(t *testing.T) {
	tab := runQuick(t, "T8", T8TypeProjection)
	docs := cellFloat(t, tab.Rows[0][1])
	if cellFloat(t, tab.Rows[0][3]) != docs {
		t.Fatalf("projection missed islands: %v", tab.Rows[0])
	}
	if cellFloat(t, tab.Rows[2][3]) != 0 {
		t.Fatalf("strict unmarshal should bind nothing: %v", tab.Rows[2])
	}
}

func TestT9MobilityHandoff(t *testing.T) {
	tab := runQuick(t, "T9", T9MobilityHandoff)
	naiveLost := cellFloat(t, tab.Rows[0][3])
	proxyLost := cellFloat(t, tab.Rows[1][3])
	if naiveLost == 0 {
		t.Fatalf("naive move lost nothing — experiment degenerate: %v", tab.Rows[0])
	}
	if proxyLost != 0 {
		t.Fatalf("proxy lost events: %v", tab.Rows[1])
	}
	if cellFloat(t, tab.Rows[1][4]) != 0 {
		t.Fatalf("proxy duplicated events: %v", tab.Rows[1])
	}
}

func TestT10Discovery(t *testing.T) {
	tab := runQuick(t, "T10", T10Discovery)
	for _, row := range tab.Rows {
		if row[4] != "1" {
			t.Fatalf("discovery installs != 1: %v", row)
		}
		if cellFloat(t, row[3]) == 0 {
			t.Fatalf("no post-install matches: %v", row)
		}
	}
}

func TestT16StoragePlane(t *testing.T) {
	tab := runQuick(t, "T16", T16StoragePlane)
	for _, row := range tab.Rows {
		for _, cell := range row {
			if cell == "setup failed" {
				t.Fatalf("scenario did not reach steady state: %v", row)
			}
		}
	}
	// Digest repair pushes roughly what the failure lost; legacy blind
	// push re-copies every rooted object each round. Same 64 KiB / 16 KiB
	// / bin configuration, so the gap is the protocol, not the workload.
	digestPay := cellFloat(t, tab.Rows[1][4])
	legacyPay := cellFloat(t, tab.Rows[4][4])
	if digestPay*4 > legacyPay {
		t.Fatalf("digest repair payload (%v KB) not well below legacy (%v KB)", digestPay, legacyPay)
	}
	// The acceptance bar for coded repair: rebuilding one lost fragment
	// in-network must move ≥3x less storage-plane wire than the
	// whole-object re-copy ablation.
	erasure := cellFloat(t, tab.Rows[len(tab.Rows)-2][5])
	recopy := cellFloat(t, tab.Rows[len(tab.Rows)-1][5])
	if erasure*3 > recopy {
		t.Fatalf("erasure repair wire (%v KB) not 3x below re-copy (%v KB)", erasure, recopy)
	}
}
