package exp

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/wire"
)

// overlayCluster is a joined Plaxton overlay (optionally with stores) on
// a simulated WAN, the substrate for the routing/storage experiments.
type overlayCluster struct {
	world    *simnet.World
	reg      *wire.Registry
	overlays []*plaxton.Overlay
	stores   []*store.Store
	rng      *rand.Rand
}

type clusterCfg struct {
	seed       int64
	nodes      int
	withStores bool
	storeOpts  store.Options
	overlay    plaxton.Options
	// codec enables wire-byte accounting in the world's Metrics:
	// "bin" installs the binary codec, "xml" the open XML reference
	// format, "" leaves accounting off (the default — sizing costs an
	// encode pass per message).
	codec string
}

// buildCluster boots the overlay; joins run sequentially.
func buildCluster(cfg clusterCfg) *overlayCluster {
	w := simnet.NewWorld(simnet.Config{Seed: cfg.seed})
	reg := wire.NewRegistry()
	plaxton.RegisterMessages(reg)
	store.RegisterMessages(reg)
	knowledge.RegisterMessages(reg)
	reg.Register(&probeMsg{}) //vetactive:xmlfallback experiment probe, not a production kind
	switch cfg.codec {
	case "bin":
		w.SetCodec(wire.NewBinaryCodec(reg))
	case "xml":
		w.SetCodec(reg)
	}
	c := &overlayCluster{
		world: w,
		reg:   reg,
		rng:   rand.New(rand.NewSource(cfg.seed)),
	}
	if cfg.overlay.LeafHalf == 0 {
		cfg.overlay.LeafHalf = 8
	}
	for i := 0; i < cfg.nodes; i++ {
		id := ids.Random(c.rng)
		node := w.NewNode(id, fmt.Sprintf("r%d", i%3),
			netapi.Coord{X: c.rng.Float64() * 8000, Y: c.rng.Float64() * 4000})
		ov := plaxton.New(node, reg, cfg.overlay)
		c.overlays = append(c.overlays, ov)
		if cfg.withStores {
			c.stores = append(c.stores, store.New(node, ov, cfg.storeOpts))
		}
	}
	c.overlays[0].CreateNetwork()
	for i := 1; i < cfg.nodes; i++ {
		c.overlays[i].Join(c.overlays[c.rng.Intn(i)].ID(), nil)
		w.RunFor(1500 * time.Millisecond)
	}
	w.RunFor(3 * time.Second)
	return c
}

// node returns the simnet node backing overlay i.
func (c *overlayCluster) node(i int) *simnet.Node {
	return c.world.Node(c.overlays[i].ID())
}
