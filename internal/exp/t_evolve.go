package exp

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/evolve"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/store"
)

// buildCore boots a full active-architecture world.
func buildCore(seed int64, nodes int, advertInterval time.Duration) *core.World {
	w, err := core.NewWorld(core.WorldConfig{
		Seed:  seed,
		Nodes: nodes,
		Node: core.NodeConfig{
			AdvertInterval: advertInterval,
			Overlay:        plaxton.Options{HeartbeatInterval: 5 * time.Second},
			Store:          store.Options{RepairInterval: 5 * time.Second},
		},
	})
	if err != nil {
		panic(err)
	}
	return w
}

// T6EvolutionRepair measures how quickly the evolution engine restores a
// violated placement constraint after a crash vs a graceful leave, across
// advertisement heartbeat periods (§4.4).
func T6EvolutionRepair(quick bool) *Table {
	t := &Table{
		ID:     "E-T6",
		Title:  "Evolution engine repair latency (constraint: 3 replicators)",
		Header: []string{"heartbeat", "departure", "detect+repair ms", "deploys ok", "deploys failed"},
	}
	intervals := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
	if quick {
		intervals = []time.Duration{time.Second, 2 * time.Second}
	}
	for _, hb := range intervals {
		for _, graceful := range []bool{false, true} {
			w := buildCore(6000+int64(hb/time.Millisecond), 9, hb)
			cs := constraint.NewSet(&constraint.MinInstances{Program: "replicator", N: 3})
			host := w.Node(0)
			eng := evolve.NewEngine(host.Endpoint(), host.Client, evolve.EngineOptions{
				Constraints: cs,
				MakeBundle:  w.BundleMaker(nil),
			})
			mon := evolve.NewMonitor(host.Endpoint(), host.Client, hb, 3)
			eng.Start()
			mon.Start()
			w.RunFor(25 * time.Second)

			// Find a victim hosting an instance (not the engine's node).
			victim := -1
			for i := 1; i < len(w.Nodes); i++ {
				if len(w.Node(i).Server.Domains()) > 0 {
					victim = i
					break
				}
			}
			if victim == -1 {
				t.AddRow(hb.String(), departureName(graceful), "setup failed", "-", "-")
				continue
			}
			// External observation: from the departure instant until the
			// live instance count is back to 3 — including the failure
			// *detection* delay, which is where graceful wins.
			liveInstances := func() int {
				n := 0
				for i := range w.Nodes {
					if w.Sim.Node(w.Node(i).ID()).Alive() {
						n += len(w.Node(i).Server.Domains())
					}
				}
				return n
			}
			departedAt := w.Sim.Now()
			if graceful {
				// Announce withdrawal, then allow the event to propagate
				// before shutting down — the point of graceful departure.
				w.Node(victim).Advertiser.Leave()
				w.RunFor(time.Second)
			}
			w.Sim.Node(w.Node(victim).ID()).Kill()
			repaired := time.Duration(0)
			for i := 0; i < 240; i++ {
				w.RunFor(500 * time.Millisecond)
				if liveInstances() >= 3 {
					repaired = w.Sim.Now() - departedAt
					break
				}
			}
			st := eng.Stats()
			t.AddRow(hb.String(), departureName(graceful), ms(repaired),
				fmt.Sprint(st.DeploysOK), fmt.Sprint(st.DeploysFailed))
		}
	}
	t.Notes = append(t.Notes,
		"crash detection waits for 3 missed heartbeats; graceful leaves announce themselves immediately")
	return t
}

func departureName(graceful bool) string {
	if graceful {
		return "graceful"
	}
	return "crash"
}

// T7PlacementPolicies measures user-data read latency as the §4.6
// policies migrate replicas toward a travelling user.
func T7PlacementPolicies(quick bool) *Table {
	t := &Table{
		ID:     "E-T7",
		Title:  "Data placement policies: read latency after relocation",
		Header: []string{"policy", "t+1min ms", "t+4min ms", "t+8min ms", "remote copies"},
	}
	// Full mode carries Bob's profile at 100× the seed table's scale
	// (800 chunks × ~4 KiB instead of 8 × ~40 B): policy-driven
	// migration has to move megabytes of user data, not a token few
	// hundred bytes.
	chunks, pad := 800, 4096
	if quick {
		chunks, pad = 8, 0
	}
	dwellStep := time.Minute
	for _, policy := range []string{"none", "backup", "latency"} {
		w := buildCore(7000, 9, 2*time.Second)
		host := w.Node(0)
		eng := evolve.NewEngine(host.Endpoint(), host.Client, evolve.EngineOptions{})
		eng.Start()
		w.RunFor(8 * time.Second)

		// Bob's data lives in eu (stored by an eu node).
		euNodes := w.NodesInRegion("eu")
		apNodes := w.NodesInRegion("ap")
		euStore := w.Node(euNodes[0]).Store
		for i := 0; i < chunks; i++ {
			key := evolve.UserDataKey("bob", i)
			body := []byte(fmt.Sprintf("bob-chunk-%d: preferences and history", i))
			if pad > 0 {
				body = append(body, make([]byte, pad)...)
			}
			euStore.PutAs(key, body, func(error) {})
			if i%50 == 49 {
				w.RunFor(500 * time.Millisecond)
			}
		}
		w.RunFor(8 * time.Second)

		var backup *evolve.BackupPolicy
		var lat *evolve.LatencyPolicy
		switch policy {
		case "backup":
			backup = evolve.NewBackupPolicy(host.Client, host.Store, eng.State())
			backup.Start()
			// Announce the chunks as created in eu.
			for i := 0; i < chunks; i++ {
				evolve.AnnounceCreated(host.Client, host.Endpoint().Clock(),
					evolve.UserDataKey("bob", i), "eu", "bob", uint64(i+1))
			}
		case "latency":
			lat = evolve.NewLatencyPolicy(host.Client, host.Store, eng.State(), host.Endpoint().Clock())
			lat.DwellStep = dwellStep
			lat.Chunks = chunks
			lat.Start()
		}
		w.RunFor(3 * time.Second)

		// Bob relocates to ap and dwells; his access point is the node the
		// placement machinery associates with the region (the first live
		// ap node in deployment-state order — the same choice the latency
		// policy makes), and he reads *fresh* chunks at each sampling
		// point: first-access latency is what the placement policy
		// improves (promiscuous caching only helps repeat reads).
		target := eng.State().AliveInRegion("ap")
		if len(target) == 0 {
			panic("no ap nodes in engine state")
		}
		var apReader *core.ActiveNode
		for _, n := range w.Nodes {
			if n.ID() == target[0].ID {
				apReader = n
				break
			}
		}
		_ = apNodes
		apCoord := apReader.Info().Coord
		nextChunk := 0
		sample := func() time.Duration {
			var lats []time.Duration
			for i := 0; i < 2 && nextChunk < chunks; i++ {
				c := nextChunk
				nextChunk++
				start := w.Sim.Now()
				apReader.Store.Get(evolve.UserDataKey("bob", c), func(_ []byte, err error) {
					if err == nil {
						lats = append(lats, w.Sim.Now()-start)
					}
				})
				w.RunFor(3 * time.Second)
			}
			return meanDur(lats)
		}
		// Location events drive the latency policy's dwell tracking.
		tick := func(seq uint64) {
			ev := locationEvent("bob", apCoord.X, apCoord.Y, "ap", w.Sim.Now(), seq)
			apReader.Client.Publish(ev)
		}
		var at1, at4, at8 time.Duration
		for minute := 1; minute <= 8; minute++ {
			for s := 0; s < 4; s++ {
				tick(uint64(minute*10 + s))
				w.RunFor(15 * time.Second)
			}
			switch minute {
			case 1:
				at1 = sample()
			case 4:
				at4 = sample()
			case 8:
				at8 = sample()
			}
		}
		// Count replicas outside eu. Reading pulls copies into reader
		// caches; count only held (replica) copies.
		remote := 0
		for i, n := range w.Nodes {
			if n.Info().Region == "eu" {
				continue
			}
			_ = i
			for cidx := 0; cidx < chunks; cidx++ {
				if n.Store.Holds(evolve.UserDataKey("bob", cidx)) {
					remote++
				}
			}
		}
		t.AddRow(policy, ms(at1), ms(at4), ms(at8), fmt.Sprint(remote))
	}
	t.Notes = append(t.Notes,
		"latency policy migrates one chunk per dwell minute; promiscuous caching also warms the reader after first access")
	return t
}

// locationEvent builds a gps.location event with a region attribute.
func locationEvent(user string, x, y float64, region string, at time.Duration, seq uint64) *event.Event {
	return event.New("gps.location", "gps-"+user, at).
		Set("user", event.S(user)).
		Set("x", event.F(x)).
		Set("y", event.F(y)).
		Set("region", event.S(region)).
		Stamp(seq)
}
