package exp

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/simnet"
)

// busWorld is a broker chain with clients for the pub/sub experiments.
type busWorld struct {
	world   *simnet.World
	brokers []*pubsub.Broker
	clients []*pubsub.Client
}

func buildBus(seed int64, brokers, clientsPerBroker int, opts pubsub.Options) *busWorld {
	w := simnet.NewWorld(simnet.Config{Seed: seed})
	b := &busWorld{world: w}
	for i := 0; i < brokers; i++ {
		n := w.NewNode(ids.FromString(fmt.Sprintf("bus-broker-%d", i)), "r",
			netapi.Coord{X: float64(i) * 200})
		b.brokers = append(b.brokers, pubsub.NewBroker(n, opts))
		if i > 0 {
			pubsub.ConnectBrokers(b.brokers[i-1], b.brokers[i])
		}
	}
	for i := 0; i < brokers*clientsPerBroker; i++ {
		bi := i % brokers
		n := w.NewNode(ids.FromString(fmt.Sprintf("bus-client-%d", i)), "r",
			netapi.Coord{X: float64(bi) * 200})
		b.clients = append(b.clients, pubsub.NewClient(n, b.brokers[bi].ID()))
	}
	return b
}

// T4PubSubScaling measures broker routing state and per-publish cost as
// subscriptions grow, with covering-based pruning on and off (§4.1).
// The widest setting (1200 subscriptions over 24 brokers, 300 distinct
// users) drives the broker tables into the regime where the counting
// predicate index matters; "index postings" reports its size.
func T4PubSubScaling(quick bool) *Table {
	t := &Table{
		ID:     "E-T4",
		Title:  "Content-based pub/sub scaling; covering ablation",
		Header: []string{"brokers", "subs", "covering", "table entries", "fwd subs", "index postings", "broker fwds/pub", "deliveries/pub"},
	}
	brokerCounts := []int{8, 24}
	subCounts := []int{120, 360, 1200}
	if quick {
		brokerCounts = []int{8}
		subCounts = []int{120}
	}
	for _, nb := range brokerCounts {
		for _, ns := range subCounts {
			// Scale the user population with the subscription count so
			// large runs grow the number of *distinct* filters (and with
			// it the predicate index), not just subscriber fan-in.
			users := 30
			if ns >= 1200 {
				users = 300
			}
			for _, disableCovering := range []bool{false, true} {
				b := buildBus(4000+int64(nb), nb, 4, pubsub.Options{DisableCovering: disableCovering})
				rng := rand.New(rand.NewSource(11))
				delivered := 0
				// Subscription mix: 1/4 broad (type only), 3/4 narrow
				// (type + user) — narrow subs are covered by broad ones
				// at shared brokers.
				for i := 0; i < ns; i++ {
					cl := b.clients[rng.Intn(len(b.clients))]
					var f pubsub.Filter
					if i%4 == 0 {
						f = pubsub.NewFilter(pubsub.TypeIs("gps.location"))
					} else {
						user := fmt.Sprintf("user-%02d", rng.Intn(users))
						f = pubsub.NewFilter(pubsub.TypeIs("gps.location"),
							pubsub.Eq("user", event.S(user)))
					}
					cl.Subscribe(f, func(*event.Event) { delivered++ })
				}
				b.world.RunFor(30 * time.Second)

				// Reset stats, publish a batch, measure marginal cost.
				var beforeFwds, beforeDeliv uint64
				for _, br := range b.brokers {
					st := br.Stats()
					beforeFwds += st.NeighborFwds
					beforeDeliv += st.ClientDelivers
				}
				const pubs = 100
				for i := 0; i < pubs; i++ {
					cl := b.clients[rng.Intn(len(b.clients))]
					cl.Publish(event.New("gps.location", "gps", b.world.Now()).
						Set("user", event.S(fmt.Sprintf("user-%02d", rng.Intn(users)))).
						Set("x", event.F(1)).Set("y", event.F(2)).
						Stamp(uint64(1000 + i)))
					b.world.RunFor(200 * time.Millisecond)
				}
				b.world.RunFor(10 * time.Second)

				var entries, fwdSubs, postings int
				var fwds, deliv uint64
				for _, br := range b.brokers {
					st := br.Stats()
					entries += st.TableEntries
					fwdSubs += st.ForwardedSubs
					postings += st.IndexPostings
					fwds += st.NeighborFwds
					deliv += st.ClientDelivers
				}
				t.AddRow(
					fmt.Sprint(nb), fmt.Sprint(ns), fmt.Sprint(!disableCovering),
					fmt.Sprint(entries), fmt.Sprint(fwdSubs), fmt.Sprint(postings),
					f2(float64(fwds-beforeFwds)/pubs),
					f2(float64(deliv-beforeDeliv)/pubs),
				)
			}
		}
	}
	t.Notes = append(t.Notes, "covering=true prunes subscription propagation; deliveries are identical either way")
	return t
}

// T9MobilityHandoff compares the Mobikit-style buffering proxy against a
// naive unsubscribe/resubscribe move (§3).
func T9MobilityHandoff(quick bool) *Table {
	t := &Table{
		ID:     "E-T9",
		Title:  "Mobile subscriber handoff: proxy vs naive",
		Header: []string{"mode", "published", "received", "lost", "duplicates", "handoff ms"},
	}
	pubCount := 40
	if quick {
		pubCount = 20
	}
	for _, mode := range []string{"naive", "proxy"} {
		b := buildBus(9000, 6, 1, pubsub.Options{})
		mobile := b.clients[0]
		publisher := b.clients[5]
		received := 0
		f := pubsub.NewFilter(pubsub.TypeIs("stream.tick"))
		mobile.Subscribe(f, func(*event.Event) { received++ })
		b.world.RunFor(5 * time.Second)

		seq := uint64(0)
		publish := func() {
			seq++
			publisher.Publish(event.New("stream.tick", "pub", b.world.Now()).Stamp(seq))
			b.world.RunFor(250 * time.Millisecond)
		}
		// Phase 1: attached at broker 0.
		for i := 0; i < pubCount/4; i++ {
			publish()
		}
		// Phase 2: travelling.
		var handoff time.Duration
		if mode == "proxy" {
			mobile.Detach()
		} else {
			mobile.Unsubscribe(f)
		}
		b.world.RunFor(2 * time.Second)
		for i := 0; i < pubCount/2; i++ {
			publish()
		}
		// Phase 3: reattach at broker 4.
		start := b.world.Now()
		if mode == "proxy" {
			var completedAt time.Duration
			mobile.AttachTo(b.brokers[4].ID(), 10*time.Second, func(int, error) {
				completedAt = b.world.Now()
			})
			b.world.RunFor(5 * time.Second)
			handoff = completedAt - start
		} else {
			// Naive: plain re-subscription at the new broker; events
			// published while detached are gone.
			mobile.AttachTo(b.brokers[4].ID(), 10*time.Second, nil)
			mobile.Subscribe(f, func(*event.Event) { received++ })
			b.world.RunFor(5 * time.Second)
			handoff = 0 // nothing to hand off
		}
		for i := 0; i < pubCount/4; i++ {
			publish()
		}
		b.world.RunFor(5 * time.Second)

		lost := int(seq) - received
		t.AddRow(mode, fmt.Sprint(seq), fmt.Sprint(received), fmt.Sprint(lost),
			fmt.Sprint(mobile.Duplicates), ms(handoff))
	}
	t.Notes = append(t.Notes, "half the stream is published while the subscriber is detached")
	return t
}
