package core

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/pipeline"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/store"
)

// testWorld builds a small booted world.
func testWorld(t testing.TB, seed int64, nodes int, cfg NodeConfig) *World {
	t.Helper()
	w, err := NewWorld(WorldConfig{
		Seed:  seed,
		Nodes: nodes,
		Node:  cfg,
	})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestWorldBoots(t *testing.T) {
	w := testWorld(t, 1, 9, NodeConfig{})
	if len(w.Nodes) != 9 {
		t.Fatalf("nodes = %d", len(w.Nodes))
	}
	for i, n := range w.Nodes {
		if !n.Overlay.Joined() {
			t.Fatalf("node %d not joined", i)
		}
	}
	// Regions round-robin over the default three.
	if len(w.NodesInRegion("eu")) != 3 || len(w.NodesInRegion("us")) != 3 || len(w.NodesInRegion("ap")) != 3 {
		t.Fatalf("region distribution wrong")
	}
}

func TestStoreAndBusAcrossWorld(t *testing.T) {
	w := testWorld(t, 2, 8, NodeConfig{})
	// Store on one node, read from another.
	var putErr error
	done := false
	w.Node(0).Store.Put([]byte("world smoke test"), func(_ ids.ID, err error) {
		putErr = err
		done = true
	})
	w.RunFor(5 * time.Second)
	if !done {
		t.Fatal("put incomplete")
	}
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}
	// Pub/sub across the broker tree.
	got := 0
	w.Node(7).Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("smoke.test")), func(*event.Event) { got++ })
	w.RunFor(2 * time.Second)
	w.Node(3).Client.Publish(event.New("smoke.test", "t", w.Sim.Now()).Stamp(1))
	w.RunFor(2 * time.Second)
	if got != 1 {
		t.Fatalf("bus delivery = %d", got)
	}
}

// TestIceCreamEndToEnd is the Figure-1 integration test: sensors publish
// low-level events onto the bus; the evolution engine has placed matchlets
// per the service constraints; a matchlet correlates Bob, Anna, weather
// and the GIS; Bob's device receives the synthesised suggestion.
func TestIceCreamEndToEnd(t *testing.T) {
	w := testWorld(t, 3, 9, NodeConfig{
		// Slow background maintenance: the test fast-forwards ~10 hours
		// of virtual time to reach mid-morning.
		Overlay:        plaxton.Options{HeartbeatInterval: time.Minute},
		Store:          store.Options{RepairInterval: time.Minute},
		AdvertInterval: 10 * time.Second,
	})
	w.RunFor(ScenarioStart - w.Sim.Now()) // advance to 9:45

	svc, err := w.DeployService(IceCreamService(2, "eu"), 0)
	if err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	w.RunFor(20 * time.Second)

	// Matchlets must be placed (2 instances in eu).
	installed := 0
	for _, i := range w.NodesInRegion("eu") {
		installed += len(w.Node(i).Server.Domains())
	}
	if installed != 2 {
		t.Fatalf("matchlet instances in eu = %d, want 2", installed)
	}
	if svc.Engine.Stats().DeploysOK != 2 {
		t.Fatalf("deploys: %+v", svc.Engine.Stats())
	}

	// Bob's device (node at eu) subscribes to suggestions for bob.
	var suggestions []*event.Event
	device := w.Node(w.NodesInRegion("eu")[0])
	device.Client.Subscribe(pubsub.NewFilter(
		pubsub.TypeIs("suggestion.meet"),
		pubsub.Eq("user", event.S("bob")),
	), func(ev *event.Event) { suggestions = append(suggestions, ev) })
	w.RunFor(2 * time.Second)

	// Sensor events published from different nodes.
	now := w.Sim.Now()
	us := w.NodesInRegion("us")
	w.Node(us[0]).Client.Publish(event.New("weather.report", "thermo", now).
		Set("region", event.S("eu")).Set("tempC", event.F(20)).Stamp(1))
	w.Node(us[1]).Client.Publish(event.New("gps.location", "gps-anna", now).
		Set("user", event.S("anna")).Set("x", event.F(10.25)).Set("y", event.F(3.95)).Stamp(2))
	w.RunFor(2 * time.Second)
	w.Node(us[2]).Client.Publish(event.New("gps.location", "gps-bob", w.Sim.Now()).
		Set("user", event.S("bob")).Set("x", event.F(10.20)).Set("y", event.F(4.05)).Stamp(3))
	w.RunFor(10 * time.Second)

	if len(suggestions) == 0 {
		t.Fatal("no suggestion reached bob's device")
	}
	s := suggestions[0]
	if s.GetString("place") != "janettas" || s.GetString("friend") != "anna" {
		t.Fatalf("suggestion content: %+v", s.Attrs)
	}
	// Duplicate-suppressed: two matchlet instances correlate the same
	// events but the device sees each distinct suggestion once per
	// emitting matchlet at most; the suggestion set must be small.
	if len(suggestions) > 2 {
		t.Fatalf("suggestion storm: %d", len(suggestions))
	}
}

// TestDiscoveryEndToEnd reproduces §5's unknown-event path: no rule covers
// "pollen.level"; the directory holds a matchlet bundle for it; the node's
// discovery hook fetches and installs it; subsequent events match.
func TestDiscoveryEndToEnd(t *testing.T) {
	w := testWorld(t, 4, 8, NodeConfig{EnableDiscovery: true})

	// Publish a matchlet for pollen alerts into the store directory.
	rule := &match.Rule{
		Name:     "pollen-alert",
		WindowMs: 60_000,
		Patterns: []match.Pattern{{
			Alias:  "p",
			Filter: pubsub.NewFilter(pubsub.TypeIs("pollen.level")),
			Bind:   []match.Binding{{Attr: "region", Var: "R"}},
		}},
		Where: []match.Condition{{Type: "cmp", Left: "$p.level", Op: "gt", Right: "70"}},
		Emit: match.Emit{
			Type: "alert.pollen",
			Attrs: []match.EmitAttr{
				{Name: "region", From: "$R"},
				{Name: "level", From: "$p.level"},
			},
		},
	}
	data, err := match.MarshalRule(rule)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Mint("matchlet/pollen-alert", "matchlet", data)
	if err != nil {
		t.Fatal(err)
	}
	published := false
	match.PublishMatchlet(w.Node(0).Store, "pollen.level", b, func(err error) {
		if err != nil {
			t.Errorf("publish matchlet: %v", err)
		}
		published = true
	})
	w.RunFor(5 * time.Second)
	if !published {
		t.Fatal("directory publish incomplete")
	}

	// Node 5's matching infrastructure sees pollen events.
	n5 := w.Node(5)
	n5.SubscribeMatching(pubsub.NewFilter(pubsub.TypeIs("pollen.level")))
	var alerts []*event.Event
	n5.Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("alert.pollen")), func(ev *event.Event) {
		alerts = append(alerts, ev)
	})
	w.RunFor(2 * time.Second)

	pollen := func(level float64, seq uint64) *event.Event {
		return event.New("pollen.level", "sensor", w.Sim.Now()).
			Set("region", event.S("eu")).Set("level", event.F(level)).Stamp(seq)
	}
	// First event triggers discovery (itself unmatched — the matchlet is
	// not installed yet).
	w.Node(2).Client.Publish(pollen(90, 1))
	w.RunFor(10 * time.Second)
	if n5.Discovery.Installed != 1 {
		t.Fatalf("discovery installs = %d (failed=%d, err=%v)",
			n5.Discovery.Installed, n5.Discovery.Failed, n5.Discovery.LastError)
	}
	// Later events match.
	w.Node(2).Client.Publish(pollen(85, 2))
	w.Node(2).Client.Publish(pollen(10, 3)) // below threshold
	w.RunFor(10 * time.Second)
	// When the directory object happens to be replicated locally the
	// fetch is synchronous and the *triggering* event (level 90) is
	// matched too; either way the 85 event must alert and the 10 must not.
	if len(alerts) < 1 || len(alerts) > 2 {
		t.Fatalf("alerts = %d, want 1 or 2", len(alerts))
	}
	for _, a := range alerts {
		if a.GetNum("level") <= 70 {
			t.Fatalf("below-threshold alert: %+v", a.Attrs)
		}
	}
}

// TestPipelineBundleProgram deploys an XML pipeline via a code bundle and
// pushes events through its remote put(event) interface.
func TestPipelineBundleProgram(t *testing.T) {
	w := testWorld(t, 5, 6, NodeConfig{})
	spec := `
<pipeline name="enrich">
  <component name="tag" type="map.setattr"><param k="attr" v="region"/><param k="value" v="eu"/></component>
  <component name="out" type="publish"/>
  <link from="tag" to="out"/>
</pipeline>`
	b, err := w.Mint("pipeline/enrich", "pipeline", []byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Node(3).Server.Install(b); err != nil {
		t.Fatalf("install pipeline bundle: %v", err)
	}
	if _, ok := w.Node(3).Pipelines.Pipeline("enrich"); !ok {
		t.Fatal("pipeline not registered in runtime")
	}
	// Subscribe for the enriched event, then push a raw one into the
	// pipeline over the network.
	var got []*event.Event
	w.Node(1).Client.Subscribe(pubsub.NewFilter(
		pubsub.TypeIs("raw.reading"),
		pubsub.Eq("region", event.S("eu")),
	), func(ev *event.Event) { got = append(got, ev) })
	w.RunFor(2 * time.Second)

	raw := event.New("raw.reading", "dev", w.Sim.Now()).Set("v", event.I(7)).Stamp(1)
	w.Node(0).Endpoint().Send(w.Node(3).ID(), &pipeline.PutMsg{Pipeline: "enrich", Event: raw})
	w.RunFor(5 * time.Second)
	if len(got) != 1 {
		t.Fatalf("enriched events = %d, want 1", len(got))
	}
	if got[0].GetNum("v") != 7 {
		t.Fatalf("payload lost: %+v", got[0].Attrs)
	}
}

func TestGracefulLeaveTriggersRedeployment(t *testing.T) {
	w := testWorld(t, 6, 9, NodeConfig{})
	svc, err := w.DeployService(IceCreamService(2, ""), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.RunFor(20 * time.Second)

	victim := -1
	for i, n := range w.Nodes {
		if i != 0 && len(n.Server.Domains()) > 0 {
			victim = i
			break
		}
	}
	if victim == -1 {
		t.Fatal("no matchlet deployed off the engine node")
	}
	w.Node(victim).Advertiser.Leave()
	w.RunFor(2 * time.Second)
	w.Node(victim).Endpoint().(interface{ Kill() }).Kill()
	w.RunFor(30 * time.Second)

	live := 0
	for i, n := range w.Nodes {
		if i == victim {
			continue
		}
		live += len(n.Server.Domains())
	}
	if live < 2 {
		t.Fatalf("matchlets after graceful leave = %d, want ≥ 2", live)
	}
	if svc.Engine.Stats().LeavesSeen == 0 {
		t.Fatal("leave never observed")
	}
}
