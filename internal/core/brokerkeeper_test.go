package core

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/pubsub"
)

// TestBrokerTreeSelfHeals kills an interior broker of the event-service
// tree and verifies the orphaned subtree reattaches to an ancestor and
// event delivery resumes — the §1.2 topology-adaptation requirement.
func TestBrokerTreeSelfHeals(t *testing.T) {
	w := testWorld(t, 41, 9, NodeConfig{AdvertInterval: -1})
	keepers := w.StartBrokerKeepers(time.Second)
	w.RunFor(3 * time.Second)

	// Tree: 0—1, 0—2, 1—3, 1—4, 2—5, 2—6, 3—7, 3—8.
	// Subscriber deep in node 1's subtree; publisher outside it.
	received := 0
	w.Node(7).Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("heal.test")),
		func(*event.Event) { received++ })
	w.RunFor(3 * time.Second)
	publish := func(seq uint64) {
		w.Node(2).Client.Publish(event.New("heal.test", "pub", w.Sim.Now()).Stamp(seq))
		w.RunFor(2 * time.Second)
	}
	publish(1)
	if received != 1 {
		t.Fatalf("baseline delivery failed: %d", received)
	}

	// Kill node 1 — the broker between the subscriber's subtree (3,4,7,8)
	// and the rest of the world.
	w.Sim.Node(w.Node(1).ID()).Kill()
	w.RunFor(time.Second)
	publish(2) // lost or delivered depending on timing; not asserted
	before := received

	// Keepers detect and reattach node 3 (and 4) to node 0.
	w.RunFor(10 * time.Second)
	if got := keepers[3].Upstream(); got != w.Node(0).ID() {
		t.Fatalf("node 3 upstream = %s, want root %s", got.Short(), w.Node(0).ID().Short())
	}
	if keepers[3].Reattachments == 0 {
		t.Fatal("node 3 never reattached")
	}
	publish(3)
	publish(4)
	if received < before+2 {
		t.Fatalf("delivery did not resume after heal: %d then %d", before, received)
	}
	// The root pruned its dead child link.
	for _, n := range w.Node(0).Broker.Neighbors() {
		if n == w.Node(1).ID() {
			t.Fatal("root still lists the dead broker as a neighbour")
		}
	}
}

// TestBrokerKeeperClimbsPastDeadAncestor kills both the parent and the
// grandparent: the keeper must climb the chain to the root.
func TestBrokerKeeperClimbsPastDeadAncestor(t *testing.T) {
	w := testWorld(t, 42, 9, NodeConfig{AdvertInterval: -1})
	keepers := w.StartBrokerKeepers(time.Second)
	w.RunFor(3 * time.Second)

	// Node 7's chain is [3, 1, 0]. Kill 3 and 1 simultaneously.
	w.Sim.Node(w.Node(3).ID()).Kill()
	w.Sim.Node(w.Node(1).ID()).Kill()
	w.RunFor(15 * time.Second)
	if got := keepers[7].Upstream(); got != w.Node(0).ID() {
		t.Fatalf("node 7 upstream = %s, want root", got.Short())
	}
	if keepers[7].Reattachments < 2 {
		t.Fatalf("expected ≥2 climbs, got %d", keepers[7].Reattachments)
	}

	// End-to-end delivery from the healed position.
	received := 0
	w.Node(7).Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("deep.heal")),
		func(*event.Event) { received++ })
	w.RunFor(3 * time.Second)
	w.Node(6).Client.Publish(event.New("deep.heal", "pub", w.Sim.Now()).Stamp(1))
	w.RunFor(3 * time.Second)
	if received != 1 {
		t.Fatalf("delivery after double heal: %d", received)
	}
}

// TestRemoveNeighborReconciles exercises the pubsub primitive directly:
// severing a link drops the subscriptions that arrived over it.
func TestRemoveNeighborReconciles(t *testing.T) {
	w := testWorld(t, 43, 4, NodeConfig{AdvertInterval: -1})
	// Subscribe at node 3 (a leaf of the tree under node 1).
	w.Node(3).Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("x")), func(*event.Event) {})
	w.RunFor(3 * time.Second)
	root := w.Node(0).Broker
	if root.Stats().TableEntries == 0 {
		t.Fatal("subscription never reached the root")
	}
	root.RemoveNeighbor(w.Node(1).ID())
	if got := root.Stats().TableEntries; got != 0 {
		t.Fatalf("entries after severing the only subscribed link: %d", got)
	}
	if len(root.Neighbors()) != 1 {
		t.Fatalf("neighbours: %v", root.Neighbors())
	}
}
