package core

import (
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/wire"
)

// BrokerKeeper self-heals the event-service topology (§1.2: the
// infrastructure must adapt to "changes in the topology of the physical
// infrastructure"). Brokers form a tree; when a node's upstream broker
// dies, the whole subtree is cut off from the event service. The keeper
// probes the node's broker neighbours and, when the upstream link dies,
// reattaches to the nearest live ancestor — preserving acyclicity (a tree
// edit) — then resynchronises subscription state over the new link.
type BrokerKeeper struct {
	ep     netapi.Endpoint
	broker *pubsub.Broker
	// ancestors is the upstream fallback chain: parent first, then
	// grandparent, …, root. Empty for the root itself.
	ancestors []ids.ID
	upstream  ids.ID // current upstream (zero for the root)
	interval  time.Duration
	timeout   time.Duration
	inflight  map[ids.ID]bool
	stopped   bool

	// Reattachments counts upstream topology repairs performed.
	Reattachments uint64
	// Pruned counts dead downstream links removed.
	Pruned uint64
}

// NewBrokerKeeper builds a keeper; call Start to begin probing. ancestors
// must be ordered parent-first. A node with no ancestors (the root) still
// prunes dead downstream neighbours.
func NewBrokerKeeper(ep netapi.Endpoint, broker *pubsub.Broker, ancestors []ids.ID, interval time.Duration) *BrokerKeeper {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	k := &BrokerKeeper{
		ep:        ep,
		broker:    broker,
		ancestors: append([]ids.ID(nil), ancestors...),
		interval:  interval,
		timeout:   interval / 2,
		inflight:  make(map[ids.ID]bool),
	}
	if len(ancestors) > 0 {
		k.upstream = ancestors[0]
	}
	return k
}

// Start begins periodic upstream probing.
func (k *BrokerKeeper) Start() {
	var tick func()
	tick = func() {
		if k.stopped {
			return
		}
		k.probe()
		k.ep.Clock().After(k.interval, tick)
	}
	k.ep.Clock().After(k.interval, tick)
}

// Stop halts probing.
func (k *BrokerKeeper) Stop() { k.stopped = true }

// Upstream returns the current upstream broker (zero for the root).
func (k *BrokerKeeper) Upstream() ids.ID { return k.upstream }

// probe pings every broker neighbour: a dead upstream triggers a
// reattachment climb; a dead downstream link is simply pruned so events
// stop flowing into the void.
func (k *BrokerKeeper) probe() {
	for _, n := range k.broker.Neighbors() {
		n := n
		if k.inflight[n] {
			continue
		}
		k.inflight[n] = true
		k.ep.Request(n, &plaxton.PingMsg{}, k.timeout, func(_ wire.Message, err error) {
			delete(k.inflight, n)
			if err == nil {
				return
			}
			if n == k.upstream {
				k.reattach()
				return
			}
			k.Pruned++
			k.broker.RemoveNeighbor(n)
		})
	}
}

// reattach severs the dead upstream link and climbs the ancestor chain to
// the next candidate. The candidate is verified by the next probe round;
// if it is also dead, the climb continues.
func (k *BrokerKeeper) reattach() {
	dead := k.upstream
	k.broker.RemoveNeighbor(dead)
	next, ok := k.nextAncestor(dead)
	if !ok {
		k.upstream = ids.Zero // became a root: nothing live above us
		return
	}
	k.upstream = next
	k.Reattachments++
	// Both ends must treat the link as broker-to-broker: the peer message
	// makes the new parent register us and resync its own state.
	k.ep.Send(next, &pubsub.PeerMsg{})
	k.broker.AddNeighbor(next)
	k.broker.Resync()
}

// nextAncestor returns the ancestor after the given one in the chain.
func (k *BrokerKeeper) nextAncestor(after ids.ID) (ids.ID, bool) {
	for i, a := range k.ancestors {
		if a == after && i+1 < len(k.ancestors) {
			return k.ancestors[i+1], true
		}
	}
	return ids.Zero, false
}

// StartBrokerKeepers wires a keeper on every node of the world's broker
// tree (node i's ancestors are (i-1)/2, …, 0; the root only prunes dead
// downstream links) and starts them. Returns the keepers by node index.
func (w *World) StartBrokerKeepers(interval time.Duration) map[int]*BrokerKeeper {
	keepers := make(map[int]*BrokerKeeper, len(w.Nodes))
	for i := 0; i < len(w.Nodes); i++ {
		var chain []ids.ID
		if i > 0 {
			for p := (i - 1) / 2; ; p = (p - 1) / 2 {
				chain = append(chain, w.Nodes[p].ID())
				if p == 0 {
					break
				}
			}
		}
		k := NewBrokerKeeper(w.Nodes[i].Endpoint(), w.Nodes[i].Broker, chain, interval)
		k.Start()
		keepers[i] = k
	}
	return keepers
}
