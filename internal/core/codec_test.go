package core

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/wire"
)

// bootBytes measures the simulated traffic of one world boot (overlay
// joins, broker wiring, settle) under the given byte-accounting codec.
// The workload is identical across codecs by determinism, so only the
// accounting differs.
func bootBytes(t *testing.T, codec string) uint64 {
	t.Helper()
	w, err := NewWorld(WorldConfig{
		Seed:  5,
		Nodes: 4,
		Codec: codec,
		Node:  NodeConfig{AdvertInterval: -1},
	})
	if err != nil {
		t.Fatalf("NewWorld(codec=%q): %v", codec, err)
	}
	return w.Sim.Metrics().Bytes
}

func TestWorldCodecChoice(t *testing.T) {
	// Default: no codec configured, no byte accounting.
	w, err := NewWorld(WorldConfig{Seed: 5, Nodes: 4, Node: NodeConfig{AdvertInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	w.RunFor(2 * time.Second)
	if b := w.Sim.Metrics().Bytes; b != 0 {
		t.Fatalf("default world accounted %d bytes without a codec", b)
	}

	xmlBytes := bootBytes(t, wire.CodecXML)
	binBytes := bootBytes(t, wire.CodecBinary)
	if xmlBytes == 0 || binBytes == 0 {
		t.Fatalf("no bytes accounted: xml=%d bin=%d", xmlBytes, binBytes)
	}
	if binBytes*2 >= xmlBytes {
		t.Fatalf("binary world traffic (%dB) should be well under half of XML (%dB)",
			binBytes, xmlBytes)
	}

	if _, err := NewWorld(WorldConfig{Seed: 5, Nodes: 2, Codec: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown codec should be rejected")
	}
}

// TestNodeCodecDefaultsWorldCodec: setting only NodeConfig.Codec flows
// into the world's byte accounting via applyDefaults.
func TestNodeCodecDefaultsWorldCodec(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Seed:  5,
		Nodes: 4,
		Node:  NodeConfig{AdvertInterval: -1, Codec: wire.CodecBinary},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Sim.Metrics().Bytes == 0 {
		t.Fatal("NodeConfig.Codec did not enable byte accounting")
	}
}
