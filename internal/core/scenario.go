package core

import (
	"time"

	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/pubsub"
)

// This file packages the paper's §1.1 worked example — Bob, Anna, hot
// weather and Janetta's ice cream — as a reusable service descriptor, so
// integration tests, examples and the Figure-1 benchmark all exercise the
// exact correlation the paper walks through.

// ScenarioStart is 9:45 on the first simulated day: during Bob's holiday
// (which runs from 01:00 on day 0 through day 6), while Janetta's
// (9:00–17:00) is open. The paper places the scene at 16:45 on 25/6; the
// simulation keeps the same structure — mid-holiday, mid-opening-hours —
// anchored near the world epoch so worlds need not fast-forward weeks of
// maintenance traffic.
const ScenarioStart = 9*time.Hour + 45*time.Minute

// IceCreamFacts returns the §1.1 knowledge about Bob and Anna.
func IceCreamFacts() []knowledge.Fact {
	return []knowledge.Fact{
		{S: "bob", P: "likes", O: "ice cream"},
		{S: "bob", P: "nationality", O: "scottish"},
		// "Bob is Scottish and therefore regards 20º as hot."
		{S: "bob", P: "hot-threshold", O: "20"},
		{S: "bob", P: "knows", O: "anna"},
		// "Bob is on holiday from 20/6 to 27/6" → spare time to eat it.
		{S: "bob", P: "has-spare-time", O: "true",
			From: 1 * time.Hour, To: 6 * 24 * time.Hour},
	}
}

// IceCreamPlaces returns the GIS fixture: Janetta's in Market Street,
// open 9:00–17:00, selling ice cream; plus unrelated street furniture.
func IceCreamPlaces() []knowledge.Place {
	return []knowledge.Place{
		{
			Name: "janettas", Region: "eu", X: 10.30, Y: 4.00,
			Hours: knowledge.Span{Open: 9 * time.Hour, Close: 17 * time.Hour},
			Sells: []string{"ice cream", "coffee"},
			Tags:  []string{"cafe"},
		},
		{
			Name: "north-street", Region: "eu", X: 10.20, Y: 4.05,
			Tags: []string{"street"},
		},
		{
			Name: "market-street", Region: "eu", X: 10.30, Y: 4.00,
			Tags: []string{"street"},
		},
		{
			Name: "library", Region: "eu", X: 10.10, Y: 4.10,
			Hours: knowledge.Span{Open: 9 * time.Hour, Close: 22 * time.Hour},
			Tags:  []string{"building"},
		},
	}
}

// IceCreamRule returns the §1.1 correlation as a declarative matchlet
// rule: two acquainted users near each other, hot weather by the user's
// own standard, spare time, and an open, reachable shop selling ice cream.
func IceCreamRule() *match.Rule {
	return &match.Rule{
		Name:     "ice-cream-meetup",
		WindowMs: int64(30 * time.Minute / time.Millisecond),
		Patterns: []match.Pattern{
			{
				Alias:  "loc",
				Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location")),
				Bind:   []match.Binding{{Attr: "user", Var: "U"}},
			},
			{
				Alias:  "floc",
				Filter: pubsub.NewFilter(pubsub.TypeIs("gps.location")),
				Bind:   []match.Binding{{Attr: "user", Var: "F"}},
			},
			{
				Alias:  "w",
				Filter: pubsub.NewFilter(pubsub.TypeIs("weather.report")),
			},
		},
		Where: []match.Condition{
			{Type: "cmp", Left: "$U", Op: "ne", Right: "$F"},
			{Type: "kb", S: "$U", P: "likes", O: "ice cream"},
			{Type: "kb", S: "$U", P: "knows", O: "$F"},
			{Type: "kb", S: "$U", P: "has-spare-time", O: "true"},
			{Type: "cmp", Left: "$w.tempC", Op: "ge", Right: "kb:$U:hot-threshold:25"},
			{Type: "withinKm", A: "$loc", B: "$floc", Km: 2},
			{Type: "bindNearestSelling", Item: "ice cream", Near: "$loc", Km: 1.5, Var: "P"},
			{Type: "reachable", A: "$loc", Var: "$P", SpeedKmH: 5},
		},
		Emit: match.Emit{
			Type: "suggestion.meet",
			Attrs: []match.EmitAttr{
				{Name: "user", From: "$U"},
				{Name: "friend", From: "$F"},
				{Name: "place", From: "$P"},
				{Name: "x", From: "place:$P.x"},
				{Name: "y", From: "place:$P.y"},
				{Name: "reason", From: "ice cream"},
				// srcTime carries the triggering location event's
				// timestamp so end-to-end latency is measurable; it is
				// volatile so it does not defeat output suppression.
				{Name: "srcTime", From: "$loc.time", Volatile: true},
			},
		},
	}
}

// IceCreamService bundles the scenario into a deployable descriptor with
// the given matchlet placement constraint.
func IceCreamService(matchletInstances int, region string) *ServiceDescriptor {
	return &ServiceDescriptor{
		Name:  "ice-cream-meetup",
		Rules: []*match.Rule{IceCreamRule()},
		Subscriptions: []pubsub.Filter{
			pubsub.NewFilter(pubsub.TypeIs("gps.location")),
			pubsub.NewFilter(pubsub.TypeIs("weather.report")),
		},
		Facts:  IceCreamFacts(),
		Places: IceCreamPlaces(),
		Constraints: constraint.NewSet(&constraint.MinInstances{
			Program: "matchlet/ice-cream-meetup",
			Region:  region,
			N:       matchletInstances,
		}),
	}
}
