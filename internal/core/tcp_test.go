package core

import (
	"crypto/ed25519"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/transport"
	"github.com/gloss/active/internal/wire"
)

// TestActiveNodeOverTCP boots three full active nodes over real sockets:
// overlay join, broker chain, pub/sub delivery, store round trip and a
// matchlet deployed via a signed bundle — the whole stack, no simulator.
func TestActiveNodeOverTCP(t *testing.T) {
	reg := wire.NewRegistry()
	RegisterMessages(reg)
	transport.RegisterMessages(reg)

	secret := []byte("tcp-test-secret")
	cfg := NodeConfig{
		Secret:         secret,
		AdvertInterval: -1, // keep the wire quiet; no evolution engine here
	}
	names := []string{"tcp-core-a", "tcp-core-b", "tcp-core-c"}
	nodes := make([]*ActiveNode, len(names))
	eps := make([]*transport.Node, len(names))
	for i, name := range names {
		ep, err := transport.Listen(ids.FromString(name), reg, transport.Options{
			Region: "eu", Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatalf("listen %s: %v", name, err)
		}
		t.Cleanup(func() { _ = ep.Close() })
		eps[i] = ep
		nodes[i] = NewActiveNode(ep, reg, cfg)
	}
	// Full address books.
	for i := range eps {
		for j := range eps {
			if i != j {
				eps[i].AddPeer(eps[j].ID(), eps[j].Addr())
			}
		}
	}
	// Broker chain a—b—c.
	pubsub.ConnectBrokers(nodes[0].Broker, nodes[1].Broker)
	pubsub.ConnectBrokers(nodes[1].Broker, nodes[2].Broker)

	// Overlay join. All protocol calls go through the actor loop (Do).
	eps[0].Do(nodes[0].Overlay.CreateNetwork)
	for i := 1; i < len(nodes); i++ {
		i := i
		done := make(chan error, 1)
		eps[i].Do(func() {
			nodes[i].Overlay.Join(nodes[0].ID(), func(err error) { done <- err })
		})
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("join %d stuck", i)
		}
	}

	// Pub/sub across the chain.
	gotEvent := make(chan *event.Event, 4)
	eps[2].Do(func() {
		nodes[2].Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("tcp.test")),
			func(ev *event.Event) { gotEvent <- ev })
	})
	time.Sleep(300 * time.Millisecond) // subscription propagation over sockets
	eps[0].Do(func() {
		nodes[0].Client.Publish(event.New("tcp.test", "a", 0).Set("n", event.I(9)).Stamp(1))
	})
	select {
	case ev := <-gotEvent:
		if ev.GetNum("n") != 9 {
			t.Fatalf("event content: %+v", ev.Attrs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pub/sub delivery over TCP failed")
	}

	// Store round trip.
	putDone := make(chan error, 1)
	guidCh := make(chan ids.ID, 1)
	eps[1].Do(func() {
		nodes[1].Store.Put([]byte("tcp payload"), func(g ids.ID, err error) {
			guidCh <- g
			putDone <- err
		})
	})
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("put: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("put stuck")
	}
	guid := <-guidCh
	getDone := make(chan []byte, 1)
	eps[2].Do(func() {
		nodes[2].Store.Get(guid, func(d []byte, err error) {
			if err != nil {
				t.Errorf("get: %v", err)
			}
			getDone <- d
		})
	})
	select {
	case d := <-getDone:
		if string(d) != "tcp payload" {
			t.Fatalf("content: %q", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("get stuck")
	}

	// Matchlet deployment via signed bundle, then check registration.
	rule := IceCreamRule()
	payload, err := marshalRuleForTest(rule)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MintBundle(secret, testPub(t), testPriv(t), "matchlet/tcp", "matchlet", 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	installed := make(chan error, 1)
	logical := make(chan []string, 1)
	eps[2].Do(func() {
		_, err := nodes[2].Server.Install(b)
		installed <- err
		logical <- nodes[2].Server.LogicalPrograms()
	})
	if err := <-installed; err != nil {
		t.Fatalf("install: %v", err)
	}
	if got := <-logical; len(got) != 1 || got[0] != "matchlet/tcp" {
		t.Fatalf("logical programs: %v", got)
	}
}

// --- helpers -----------------------------------------------------------------

func marshalRuleForTest(r *match.Rule) ([]byte, error) { return match.MarshalRule(r) }

// deterministic test key pair.
func testKeyPair() (ed25519.PublicKey, ed25519.PrivateKey) {
	seed := make([]byte, ed25519.SeedSize)
	copy(seed, []byte("core-tcp-test-key-seed-32-bytes!"))
	priv := ed25519.NewKeyFromSeed(seed)
	return priv.Public().(ed25519.PublicKey), priv
}

func testPub(t *testing.T) ed25519.PublicKey {
	t.Helper()
	pub, _ := testKeyPair()
	return pub
}

func testPriv(t *testing.T) ed25519.PrivateKey {
	t.Helper()
	_, priv := testKeyPair()
	return priv
}
