package core

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
)

// TestStandardPrograms installs each built-in bundle program and checks
// its observable effect.
func TestStandardPrograms(t *testing.T) {
	w := testWorld(t, 21, 6, NodeConfig{})
	node := w.Node(2)

	// storelet + replicator markers bump capacity gauges.
	for _, prog := range []string{"storelet", "replicator"} {
		b, err := w.Mint(prog+"/cap", prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := node.Server.Install(b); err != nil {
			t.Fatalf("install %s: %v", prog, err)
		}
	}
	if node.Gauges.Counter("storelets").Value() != 1 {
		t.Fatal("storelet marker not counted")
	}
	if node.Gauges.Counter("replicators").Value() != 1 {
		t.Fatal("replicator marker not counted")
	}

	// probe publishes meta.gauges events onto the bus.
	var metas []*event.Event
	w.Node(1).Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs("meta.gauges")),
		func(ev *event.Event) { metas = append(metas, ev) })
	w.RunFor(2 * time.Second)
	pb, err := w.Mint("probe/x", "probe", nil)
	if err != nil {
		t.Fatal(err)
	}
	pb.Params = append(pb.Params, bundle.Param{Key: "intervalMs", Value: "2000"})
	// Re-sign after mutation.
	if err := pb.Sign(w.Pub, w.Priv); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Server.Install(pb); err != nil {
		t.Fatalf("install probe: %v", err)
	}
	w.RunFor(10 * time.Second)
	if len(metas) == 0 {
		t.Fatal("probe published nothing")
	}
	if v, ok := metas[len(metas)-1].Get("counter.storelets"); !ok || v.I != 1 {
		t.Fatalf("probe snapshot missing storelet gauge: %+v", metas[0].Attrs)
	}

	// Logical program names strip instance suffixes.
	logical := node.Server.LogicalPrograms()
	want := map[string]bool{"storelet/cap": true, "replicator/cap": true, "probe/x": true}
	for _, l := range logical {
		if !want[l] {
			t.Fatalf("unexpected logical program %q in %v", l, logical)
		}
	}

	// Uninstall stops the probe (drain in-flight deliveries first).
	if err := node.Server.Uninstall("probe/x#3"); err != nil {
		t.Fatalf("uninstall: %v", err)
	}
	w.RunFor(3 * time.Second)
	n := len(metas)
	w.RunFor(10 * time.Second)
	if len(metas) != n {
		t.Fatal("probe kept publishing after uninstall")
	}
}

func TestRegionOf(t *testing.T) {
	w := testWorld(t, 22, 3, NodeConfig{})
	if got := w.RegionOf(netapi.Coord{X: 10, Y: 10}); got != "eu" {
		t.Fatalf("RegionOf(eu-ish) = %q", got)
	}
	if got := w.RegionOf(netapi.Coord{X: 7100, Y: 900}); got != "us" {
		t.Fatalf("RegionOf(us-ish) = %q", got)
	}
	if got := w.RegionOf(netapi.Coord{X: 15500, Y: -2100}); got != "ap" {
		t.Fatalf("RegionOf(ap-ish) = %q", got)
	}
}

// TestDeployServiceWithDirectory exercises the PublishDirectory path: the
// rule's bundle lands in the store under its trigger event type.
func TestDeployServiceWithDirectory(t *testing.T) {
	w := testWorld(t, 23, 8, NodeConfig{EnableDiscovery: true})
	desc := IceCreamService(1, "")
	desc.PublishDirectory = true
	if _, err := w.DeployService(desc, 0); err != nil {
		t.Fatal(err)
	}
	w.RunFor(15 * time.Second)
	// The directory object must be fetchable.
	var data []byte
	w.Node(5).Store.Get(match.MatchletKey("gps.location"), func(d []byte, err error) {
		if err != nil {
			t.Errorf("directory fetch: %v", err)
		}
		data = d
	})
	w.RunFor(10 * time.Second)
	if len(data) == 0 {
		t.Fatal("matchlet directory entry missing")
	}
}
