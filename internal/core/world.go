package core

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"time"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/evolve"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/wire"
)

// RegionSpec places a group of nodes geographically.
type RegionSpec struct {
	Name     string
	Center   netapi.Coord
	RadiusKm float64
}

// DefaultRegions models three continents ~8000 km apart.
var DefaultRegions = []RegionSpec{
	{Name: "eu", Center: netapi.Coord{X: 0, Y: 0}, RadiusKm: 300},
	{Name: "us", Center: netapi.Coord{X: 7000, Y: 1000}, RadiusKm: 300},
	{Name: "ap", Center: netapi.Coord{X: 15000, Y: -2000}, RadiusKm: 300},
}

// WorldConfig parameterises a simulated deployment.
type WorldConfig struct {
	Seed  int64
	Nodes int
	// Regions receive nodes round-robin. Default DefaultRegions.
	Regions []RegionSpec
	// Net tunes the simulated network.
	Net simnet.Config
	// Node tunes every node's stack.
	Node NodeConfig
	// JoinSettle is the virtual time allowed per overlay join. Default 2s.
	JoinSettle time.Duration
	// Codec selects the wire codec used for the simulator's byte
	// accounting: "" leaves Net.Codec as configured (default: no byte
	// accounting, matching historical tables), wire.CodecXML installs the
	// XML reference codec over the world's registry, wire.CodecBinary the
	// compact fast path. Defaults to Node.Codec when that is set.
	Codec string
}

func (c *WorldConfig) applyDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if len(c.Regions) == 0 {
		c.Regions = DefaultRegions
	}
	if c.JoinSettle == 0 {
		c.JoinSettle = 2 * time.Second
	}
	c.Net.Seed = c.Seed
	// One nodecfg.Common block configures the whole world: anything set
	// on the node config flows into the network config where the latter
	// left it zero, so e.g. Node.Shards both shards every broker's match
	// path and partitions the simulator's execution.
	c.Net.Common = c.Net.Common.Merge(c.Node.Common)
	if c.Node.Secret == nil {
		c.Node.Secret = []byte("gloss-active-secret")
	}
	if c.Node.Codec == "" {
		c.Node.Codec = c.Node.Common.Codec
	}
	if c.Codec == "" {
		c.Codec = c.Node.Codec
	}
}

// World is a fully wired simulated deployment of the active architecture.
type World struct {
	Cfg     WorldConfig
	Sim     *simnet.World
	Reg     *wire.Registry
	Nodes   []*ActiveNode
	Secret  []byte
	Pub     ed25519.PublicKey
	Priv    ed25519.PrivateKey
	mintSeq int
}

// NewWorld builds and boots a world: nodes placed across regions, broker
// tree wired, overlay joined, advertisers running.
func NewWorld(cfg WorldConfig) (*World, error) {
	cfg.applyDefaults()
	w := &World{
		Cfg:    cfg,
		Sim:    simnet.NewWorld(cfg.Net),
		Reg:    wire.NewRegistry(),
		Secret: cfg.Node.Secret,
	}
	RegisterMessages(w.Reg)
	// The registry is complete now; install the chosen byte-accounting
	// codec (the binary codec interns the registry's kind table, so it
	// must be built after every RegisterMessages call).
	switch cfg.Codec {
	case "":
		// Keep whatever cfg.Net.Codec the caller wired (usually nil).
	case wire.CodecXML:
		w.Sim.SetCodec(w.Reg)
	case wire.CodecBinary:
		w.Sim.SetCodec(wire.NewBinaryCodec(w.Reg))
	default:
		return nil, fmt.Errorf("core: unknown codec %q (want %q or %q)", cfg.Codec, wire.CodecXML, wire.CodecBinary)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seed := make([]byte, ed25519.SeedSize)
	rng.Read(seed)
	w.Priv = ed25519.NewKeyFromSeed(seed)
	w.Pub = w.Priv.Public().(ed25519.PublicKey)

	for i := 0; i < cfg.Nodes; i++ {
		region := cfg.Regions[i%len(cfg.Regions)]
		coord := netapi.Coord{
			X: region.Center.X + (rng.Float64()*2-1)*region.RadiusKm,
			Y: region.Center.Y + (rng.Float64()*2-1)*region.RadiusKm,
		}
		ep := w.Sim.NewNode(ids.Random(rng), region.Name, coord)
		w.Nodes = append(w.Nodes, NewActiveNode(ep, w.Reg, cfg.Node))
	}
	// Broker tree: node i's broker peers with its parent (i-1)/2.
	for i := 1; i < cfg.Nodes; i++ {
		pubsub.ConnectBrokers(w.Nodes[(i-1)/2].Broker, w.Nodes[i].Broker)
	}
	// Overlay: sequential joins via random earlier nodes.
	w.Nodes[0].Overlay.CreateNetwork()
	for i := 1; i < cfg.Nodes; i++ {
		var joinErr error
		done := false
		w.Nodes[i].Overlay.Join(w.Nodes[rng.Intn(i)].ID(), func(err error) {
			joinErr = err
			done = true
		})
		w.Sim.RunFor(cfg.JoinSettle)
		if !done || joinErr != nil {
			return nil, fmt.Errorf("core: node %d failed to join: %v", i, joinErr)
		}
	}
	// Advertisers.
	if cfg.Node.AdvertInterval >= 0 {
		for _, n := range w.Nodes {
			n.Advertiser.Start()
		}
	}
	w.Sim.RunFor(3 * time.Second)
	return w, nil
}

// RunFor advances virtual time.
func (w *World) RunFor(d time.Duration) { w.Sim.RunFor(d) }

// Node returns the i-th node.
func (w *World) Node(i int) *ActiveNode { return w.Nodes[i] }

// NodesInRegion lists node indexes in a region.
func (w *World) NodesInRegion(region string) []int {
	var out []int
	for i, n := range w.Nodes {
		if n.Info().Region == region {
			out = append(out, i)
		}
	}
	return out
}

// RegionOf maps a coordinate to the nearest configured region.
func (w *World) RegionOf(c netapi.Coord) string {
	best := ""
	bestD := 0.0
	for i, r := range w.Cfg.Regions {
		d := r.Center.DistanceKm(c)
		if i == 0 || d < bestD {
			best, bestD = r.Name, d
		}
	}
	return best
}

// Mint builds a signed bundle for a logical program with the world's keys.
func (w *World) Mint(logical, factory string, payload []byte) (*bundle.Bundle, error) {
	w.mintSeq++
	return MintBundle(w.Secret, w.Pub, w.Priv, logical, factory, w.mintSeq, payload)
}

// BundleMaker adapts Mint for the evolution engine. Logical program names
// of the form "matchlet/<rule>" resolve to the matchlet factory with the
// rule payload from rules; anything else resolves to the same-named
// factory with no payload.
func (w *World) BundleMaker(rules map[string]*match.Rule) evolve.BundleMaker {
	return func(program string, _ ids.ID, instance int) (*bundle.Bundle, error) {
		factory := program
		var payload []byte
		if len(program) > len("matchlet/") && program[:len("matchlet/")] == "matchlet/" {
			ruleName := program[len("matchlet/"):]
			rule, ok := rules[ruleName]
			if !ok {
				return nil, fmt.Errorf("core: no rule %q for %q", ruleName, program)
			}
			data, err := match.MarshalRule(rule)
			if err != nil {
				return nil, err
			}
			factory = "matchlet"
			payload = data
		}
		w.mintSeq++
		return MintBundle(w.Secret, w.Pub, w.Priv, program, factory, w.mintSeq, payload)
	}
}

// ServiceDescriptor is the programming abstraction of §4.8–4.9: "what
// information should be delivered to the user, in what form, and in which
// context" — rules and knowledge — plus declarative placement constraints
// that feed the deployment evolution engine.
type ServiceDescriptor struct {
	Name string
	// Rules are the service's matchlets.
	Rules []*match.Rule
	// Subscriptions are the event streams the matching infrastructure
	// needs delivered wherever matchlets run.
	Subscriptions []pubsub.Filter
	// Facts seed the knowledge base.
	Facts []knowledge.Fact
	// Places seed the GIS layer.
	Places []knowledge.Place
	// Constraints place the matchlets (and any other components).
	Constraints *constraint.Set
	// PublishDirectory also stores each rule's bundle in the P2P store
	// under its first pattern event type, enabling runtime discovery.
	PublishDirectory bool
}

// Service is a deployed service: its evolution engine and metadata.
type Service struct {
	Desc   *ServiceDescriptor
	Engine *evolve.Engine
}

// DeployService realises a descriptor: knowledge is seeded everywhere,
// subscriptions wired, and an evolution engine started on the given node
// to place matchlets per the constraints.
func (w *World) DeployService(desc *ServiceDescriptor, engineNode int) (*Service, error) {
	for _, n := range w.Nodes {
		for _, f := range desc.Facts {
			n.KB.Add(f)
		}
		for _, p := range desc.Places {
			if err := n.GIS.AddPlace(p); err != nil {
				return nil, fmt.Errorf("core: seed GIS: %w", err)
			}
		}
		for _, f := range desc.Subscriptions {
			n.SubscribeMatching(f)
		}
	}
	rules := make(map[string]*match.Rule, len(desc.Rules))
	for _, r := range desc.Rules {
		rules[r.Name] = r
	}
	host := w.Nodes[engineNode]
	eng := evolve.NewEngine(host.Endpoint(), host.Client, evolve.EngineOptions{
		Constraints: desc.Constraints,
		MakeBundle:  w.BundleMaker(rules),
	})
	eng.Start()

	if desc.PublishDirectory {
		for _, r := range desc.Rules {
			if len(r.Patterns) == 0 {
				continue
			}
			evType := eventTypeOf(r.Patterns[0].Filter)
			if evType == "" {
				continue
			}
			data, err := match.MarshalRule(r)
			if err != nil {
				return nil, err
			}
			b, err := w.Mint("matchlet/"+r.Name, "matchlet", data)
			if err != nil {
				return nil, err
			}
			match.PublishMatchlet(host.Store, evType, b, func(error) {})
		}
		w.RunFor(5 * time.Second)
	}
	return &Service{Desc: desc, Engine: eng}, nil
}

// eventTypeOf extracts the type-equality constraint from a filter.
func eventTypeOf(f pubsub.Filter) string {
	for _, c := range f.Constraints {
		if c.Attr == "type" && c.Op == pubsub.OpEq {
			return c.Val.S
		}
	}
	return ""
}
