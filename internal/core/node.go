// Package core assembles the active architecture: every node runs the full
// stack the paper's conclusion describes (§5) — "several P2P systems
// overlaid on each other": the Siena-like event system, the Plaxton-based
// storage architecture with promiscuous caching, Cingal-style thin servers
// accepting code bundles (matchlets, storelets, probes, pipelines), the
// contextual matching engine, and the evolution machinery that deploys and
// repairs it all under declarative placement constraints.
package core

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"github.com/gloss/active/internal/bundle"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/evolve"
	"github.com/gloss/active/internal/gauges"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/nodecfg"
	"github.com/gloss/active/internal/pipeline"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/wire"
)

// NodeConfig parameterises one active node.
type NodeConfig struct {
	// Common is the shared node-configuration block (internal/nodecfg).
	// The stack consumes Common.Shards as the broker's match-shard count
	// (threaded to pubsub.Options.MatchShards when that is unset),
	// Common.FanoutWorkers as the broker's publish fan-out pool size
	// (pubsub.Options.FanoutWorkers, falling back to Shards when unset)
	// and Common.Codec as the codec default behind the
	// deprecated-but-kept Codec field below.
	nodecfg.Common
	// Secret is the capability-minting secret shared by the deployment's
	// thin servers.
	Secret []byte
	// TrustedKeys restricts accepted bundle signers (empty = any
	// well-signed bundle).
	TrustedKeys []wire.Bytes
	// Overlay, Store and Broker options tune the substrates.
	Overlay plaxton.Options
	Store   store.Options
	Broker  pubsub.Options
	// Knowledge tunes the causal knowledge syncer. Common.KBWriter,
	// Common.KBGossipInterval and Common.KBSiblingCap fill the
	// corresponding options when they are unset here.
	Knowledge knowledge.Options
	// AdvertInterval is the resource-advertisement period. Default 2s;
	// negative disables advertising.
	AdvertInterval time.Duration
	// Codec is the node's preferred wire codec: wire.CodecXML (default,
	// the paper's open format) or wire.CodecBinary (compact fast path).
	// In simulation it defaults WorldConfig.Codec, selecting the
	// byte-accounting codec. Over TCP the endpoint is built before the
	// node, so callers must ALSO set transport.Options.Codec (which
	// validates the value and drives hello negotiation) — cmd/activenode
	// wires its -codec flag into both.
	Codec string
	// EnableDiscovery routes unknown event types to the discovery
	// matchlet (store lookup + dynamic install).
	EnableDiscovery bool
}

// ActiveNode is one participant: mobile device, server or network
// component — "each node stores information, computes over it, and
// communicates with other nodes" (§4).
type ActiveNode struct {
	ep         netapi.Endpoint
	Overlay    *plaxton.Overlay
	Store      *store.Store
	Broker     *pubsub.Broker
	Client     *pubsub.Client
	Server     *bundle.ThinServer
	Pipelines  *pipeline.Runtime
	Engine     *match.Engine
	Discovery  *match.Discovery
	KB         *knowledge.KB
	GIS        *knowledge.GIS
	Sync       *knowledge.Syncer
	Advertiser *evolve.Advertiser
	Gauges     *gauges.Registry
	Programs   *bundle.Registry
}

// RegisterMessages records every message type the stack uses.
func RegisterMessages(reg *wire.Registry) {
	plaxton.RegisterMessages(reg)
	store.RegisterMessages(reg)
	knowledge.RegisterMessages(reg)
	pubsub.RegisterMessages(reg)
	bundle.RegisterMessages(reg)
	pipeline.RegisterMessages(reg)
}

// NewActiveNode wires the full stack onto one endpoint.
func NewActiveNode(ep netapi.Endpoint, reg *wire.Registry, cfg NodeConfig) *ActiveNode {
	if cfg.Broker.MatchShards == 0 {
		cfg.Broker.MatchShards = cfg.Shards
	}
	if cfg.Broker.FanoutWorkers == 0 {
		if cfg.FanoutWorkers != 0 {
			cfg.Broker.FanoutWorkers = cfg.FanoutWorkers
		} else {
			cfg.Broker.FanoutWorkers = cfg.Shards
		}
	}
	n := &ActiveNode{
		ep:     ep,
		KB:     knowledge.NewKB(),
		GIS:    knowledge.NewGIS(),
		Gauges: gauges.NewRegistry(),
	}
	n.Overlay = plaxton.New(ep, reg, cfg.Overlay)
	n.Store = store.New(ep, n.Overlay, cfg.Store)
	if cfg.Knowledge.Writer == "" {
		cfg.Knowledge.Writer = cfg.KBWriter
	}
	if cfg.Knowledge.GossipInterval == 0 {
		cfg.Knowledge.GossipInterval = cfg.KBGossipInterval
	}
	if cfg.Knowledge.SiblingCap == 0 {
		cfg.Knowledge.SiblingCap = cfg.KBSiblingCap
	}
	n.Sync = knowledge.NewSyncerOpts(n.Store, n.KB, cfg.Knowledge)
	n.Broker = pubsub.NewBroker(ep, cfg.Broker)
	n.Client = pubsub.NewClient(ep, ep.ID())
	n.Programs = bundle.NewRegistry()
	n.Server = bundle.NewThinServer(ep, n.Programs, bundle.Options{
		Secret:      cfg.Secret,
		TrustedKeys: cfg.TrustedKeys,
	})
	n.Engine = match.NewEngine(ep.Clock(), n.KB, n.GIS, match.Options{
		Source: "engine/" + ep.ID().Short(),
	})
	n.Pipelines = pipeline.NewRuntime(ep)

	// Matchlet results go onto the event bus (§5).
	n.Server.SetEmitter(func(ev *event.Event) { n.Client.Publish(ev) })
	n.Engine.OnEmit(func(ev *event.Event) { n.Client.Publish(ev) })

	if cfg.EnableDiscovery {
		n.Discovery = match.NewDiscovery(n.Store, n.Server, n.Engine)
	}

	n.Advertiser = evolve.NewAdvertiser(ep, n.Client, cfg.AdvertInterval)
	n.Advertiser.Programs = n.Server.LogicalPrograms

	n.registerStandardPrograms()
	return n
}

// Endpoint exposes the node's network endpoint.
func (n *ActiveNode) Endpoint() netapi.Endpoint { return n.ep }

// ID returns the node identifier.
func (n *ActiveNode) ID() ids.ID { return n.ep.ID() }

// Info returns the node's region and coordinates.
func (n *ActiveNode) Info() netapi.NodeInfo { return n.ep.Info() }

// PipelineDeps returns the dependency set pipeline components get on this
// node: clock, endpoint, engine delivery and bus publication.
func (n *ActiveNode) PipelineDeps() pipeline.Deps {
	return pipeline.Deps{
		Clock:    n.ep.Clock(),
		Endpoint: n.ep,
		Deliver:  n.DeliverEvent,
		Publish:  func(ev *event.Event) { n.Client.Publish(ev) },
	}
}

// DeliverEvent hands an event to the node's matching infrastructure: the
// node-level engine and every installed matchlet domain.
func (n *ActiveNode) DeliverEvent(ev *event.Event) {
	n.Engine.Put(ev)
	n.Server.Deliver(ev)
}

// SubscribeMatching routes a bus subscription into the matching
// infrastructure.
func (n *ActiveNode) SubscribeMatching(f pubsub.Filter) {
	n.Client.Subscribe(f, n.DeliverEvent)
}

// registerStandardPrograms loads the bundle programs every node can host.
func (n *ActiveNode) registerStandardPrograms() {
	// matchlet: payload is a declarative rule; runs on a private engine
	// sharing this node's KB/GIS.
	n.Programs.Register("matchlet", match.NewMatchletFactory(n.KB, n.GIS))
	// pipeline: payload is an XML pipeline spec assembled into the local
	// runtime (Figure 3's assembly process).
	n.Programs.Register("pipeline", func(_ map[string]string, data []byte) (bundle.Program, error) {
		spec, err := pipeline.ParseSpec(data)
		if err != nil {
			return nil, err
		}
		return &pipelineProgram{node: n, spec: spec}, nil
	})
	// storelet: marks this node as contributing storage capacity; the
	// store substrate is always present, the marker makes capacity
	// placement constrainable (§5: "provide storage capacity for the
	// storage architecture (storelets)").
	n.Programs.Register("storelet", func(map[string]string, []byte) (bundle.Program, error) {
		return &markerProgram{reg: n.Gauges, name: "storelets"}, nil
	})
	// replicator: the paper's §4.4 example — "at least 5 pipeline
	// components providing a data replication service … within a given
	// geographical region".
	n.Programs.Register("replicator", func(map[string]string, []byte) (bundle.Program, error) {
		return &markerProgram{reg: n.Gauges, name: "replicators"}, nil
	})
	// probe: periodically publishes this node's gauges as meta-events.
	n.Programs.Register("probe", func(params map[string]string, _ []byte) (bundle.Program, error) {
		interval := 10 * time.Second
		if ms, ok := params["intervalMs"]; ok {
			if v, err := time.ParseDuration(ms + "ms"); err == nil {
				interval = v
			}
		}
		return &probeProgram{node: n, interval: interval}, nil
	})
}

// pipelineProgram installs an XML-specified pipeline for its lifetime.
type pipelineProgram struct {
	node *ActiveNode
	spec *pipeline.Spec
	p    *pipeline.Pipeline
}

func (pp *pipelineProgram) Start(d *bundle.Domain) error {
	p, err := pipeline.Assemble(pp.spec, pipeline.NewRegistry(), pp.node.PipelineDeps())
	if err != nil {
		return err
	}
	pp.p = p
	pp.node.Pipelines.Add(p)
	// Events delivered to the domain flow into the pipeline.
	d.OnEvent(p.Put)
	return nil
}

func (pp *pipelineProgram) Stop() {
	if pp.p != nil {
		pp.node.Pipelines.Remove(pp.p.Name())
	}
}

// markerProgram counts capacity-contribution markers in a gauge.
type markerProgram struct {
	reg  *gauges.Registry
	name string
}

func (m *markerProgram) Start(*bundle.Domain) error {
	m.reg.Counter(m.name).Inc()
	return nil
}

func (m *markerProgram) Stop() {}

// probeProgram publishes the node's gauge registry periodically.
type probeProgram struct {
	node     *ActiveNode
	interval time.Duration
	probe    *gauges.Probe
}

func (pp *probeProgram) Start(d *bundle.Domain) error {
	pp.probe = gauges.NewProbe(pp.node.Gauges, d.Clock(), pp.interval,
		"probe/"+pp.node.ID().Short(), func(ev *event.Event) { _ = d.Emit(ev) })
	pp.probe.Start()
	return nil
}

func (pp *probeProgram) Stop() {
	if pp.probe != nil {
		pp.probe.Stop()
	}
}

// MintBundle builds a signed bundle carrying the standard capability set
// for a logical program (name "<logical>#<instance>").
func MintBundle(secret []byte, pub ed25519.PublicKey, priv ed25519.PrivateKey,
	logical, factory string, instance int, payload []byte) (*bundle.Bundle, error) {
	b := &bundle.Bundle{
		Name:    fmt.Sprintf("%s#%d", logical, instance),
		Program: factory,
		Data:    payload,
		Capabilities: []bundle.Capability{
			bundle.MintCapability(secret, bundle.RightDeploy, uint64(instance)*3+1),
			bundle.MintCapability(secret, bundle.RightStore, uint64(instance)*3+2),
			bundle.MintCapability(secret, bundle.RightEmit, uint64(instance)*3+3),
		},
	}
	if err := b.Sign(pub, priv); err != nil {
		return nil, err
	}
	return b, nil
}
