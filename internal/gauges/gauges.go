// Package gauges implements the probes and gauges of §4.6: "data
// placement monitors will observe meta-data arising from distributed
// probes and gauges". Counters, gauges and histograms collect local
// observations; a Probe component periodically publishes them as
// meta-events so monitors elsewhere can subscribe to them over the event
// service.
package gauges

import (
	"fmt"
	"sort"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/vclock"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time measurement.
type Gauge struct {
	v   float64
	set bool
}

// Set records a measurement.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// Value returns the last measurement and whether one exists.
func (g *Gauge) Value() (float64, bool) { return g.v, g.set }

// Histogram aggregates duration observations with fixed power-of-two
// bucket boundaries (microsecond granularity).
type Histogram struct {
	count uint64
	sum   time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average observation (zero when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Registry is a named collection of instruments.
type Registry struct {
	counters map[string]*Counter
	gaugesM  map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gaugesM:  make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gaugesM[name]
	if !ok {
		g = &Gauge{}
		r.gaugesM[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot renders all instruments into event attributes, names sorted.
func (r *Registry) Snapshot() event.Attributes {
	attrs := make(event.Attributes)
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		attrs["counter."+n] = event.I(int64(r.counters[n].Value()))
	}
	names = names[:0]
	for n := range r.gaugesM {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v, ok := r.gaugesM[n].Value(); ok {
			attrs["gauge."+n] = event.F(v)
		}
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		if h.Count() == 0 {
			continue
		}
		attrs["hist."+n+".count"] = event.I(int64(h.Count()))
		attrs["hist."+n+".meanMs"] = event.F(float64(h.Mean()) / float64(time.Millisecond))
		attrs["hist."+n+".maxMs"] = event.F(float64(h.Max()) / float64(time.Millisecond))
	}
	return attrs
}

// Probe periodically publishes a registry snapshot as "meta.gauges"
// events through the supplied emit function.
type Probe struct {
	reg      *Registry
	clock    vclock.Clock
	interval time.Duration
	emit     func(*event.Event)
	source   string
	seq      uint64
	stopped  bool
}

// NewProbe builds a probe; call Start to begin publishing.
func NewProbe(reg *Registry, clock vclock.Clock, interval time.Duration, source string, emit func(*event.Event)) *Probe {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Probe{reg: reg, clock: clock, interval: interval, emit: emit, source: source}
}

// Start begins the publishing loop.
func (p *Probe) Start() {
	var tick func()
	tick = func() {
		if p.stopped {
			return
		}
		p.publish()
		p.clock.After(p.interval, tick)
	}
	p.clock.After(p.interval, tick)
}

// Stop halts publication.
func (p *Probe) Stop() { p.stopped = true }

func (p *Probe) publish() {
	p.seq++
	ev := event.New("meta.gauges", p.source, p.clock.Now())
	for k, v := range p.reg.Snapshot() {
		ev.Set(k, v)
	}
	ev.Set("probe", event.S(p.source))
	ev.Stamp(p.seq)
	p.emit(ev)
}

// FormatTable renders a snapshot as an aligned text table (for cmd tools).
func FormatTable(attrs event.Attributes) string {
	names := attrs.Names()
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%-40s %s\n", n, attrs[n].String())
	}
	return out
}
