package gauges

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/vclock"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Inc()
	r.Counter("reads").Add(4)
	if got := r.Counter("reads").Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	r.Gauge("load").Set(0.75)
	if v, ok := r.Gauge("load").Value(); !ok || v != 0.75 {
		t.Fatalf("gauge = %v %v", v, ok)
	}
	if _, ok := r.Gauge("unset").Value(); ok {
		t.Fatalf("unset gauge reports a value")
	}
}

func TestHistogram(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 {
		t.Fatalf("empty mean nonzero")
	}
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if h.Count() != 3 || h.Mean() != 20*time.Millisecond {
		t.Fatalf("count=%d mean=%v", h.Count(), h.Mean())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(1)
	r.Histogram("lat").Observe(5 * time.Millisecond)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != len(s2) || len(s1) != 6 {
		t.Fatalf("snapshot sizes: %d vs %d", len(s1), len(s2))
	}
	if s1["counter.a"].I != 1 || s1["gauge.z"].F != 1 {
		t.Fatalf("snapshot content: %+v", s1)
	}
	if s1["hist.lat.count"].I != 1 {
		t.Fatalf("histogram snapshot: %+v", s1)
	}
}

func TestProbePublishes(t *testing.T) {
	sched := vclock.NewScheduler()
	r := NewRegistry()
	r.Counter("x").Inc()
	var got []*event.Event
	p := NewProbe(r, sched, 5*time.Second, "node-1", func(ev *event.Event) { got = append(got, ev) })
	p.Start()
	sched.RunUntil(16 * time.Second)
	if len(got) != 3 {
		t.Fatalf("probe events = %d, want 3", len(got))
	}
	ev := got[0]
	if ev.Type != "meta.gauges" || ev.GetString("probe") != "node-1" {
		t.Fatalf("event shape: %+v", ev)
	}
	if v, ok := ev.Get("counter.x"); !ok || v.I != 1 {
		t.Fatalf("counter not in event: %+v", ev.Attrs)
	}
	p.Stop()
	sched.RunFor(time.Minute)
	if len(got) != 3 {
		t.Fatalf("probe kept publishing after stop")
	}
}

func TestFormatTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(7)
	out := FormatTable(r.Snapshot())
	if out == "" || out[0] == ' ' {
		t.Fatalf("table: %q", out)
	}
}
