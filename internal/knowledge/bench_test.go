package knowledge

import (
	"fmt"
	"testing"
	"time"

	"github.com/gloss/active/internal/causal"
)

func benchKB(subjects, factsPer int) *KB {
	kb := NewKB()
	for s := 0; s < subjects; s++ {
		subj := fmt.Sprintf("user-%04d", s)
		for p := 0; p < factsPer; p++ {
			kb.Add(Fact{S: subj, P: fmt.Sprintf("pred-%d", p), O: "value"})
		}
	}
	return kb
}

// BenchmarkKBQueryWildcard measures the wildcard-subject query path with
// the cached sorted subject slice (the satellite fix) against the
// uncached behaviour it replaced (cache invalidated every iteration).
func BenchmarkKBQueryWildcard(b *testing.B) {
	for _, subjects := range []int{100, 1000} {
		kb := benchKB(subjects, 4)
		b.Run(fmt.Sprintf("cached/subjects=%d", subjects), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kb.Query("", "pred-0", "", -1)
			}
		})
		b.Run(fmt.Sprintf("uncached/subjects=%d", subjects), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kb.subjects = nil // simulate the pre-cache rebuild-per-call path
				kb.Query("", "pred-0", "", -1)
			}
		})
	}
}

// BenchmarkKnowledgeSync measures one publish+fetch serialisation cycle:
// the legacy XML body against the causal binary envelope including
// sibling absorption and the default merge.
func BenchmarkKnowledgeSync(b *testing.B) {
	kb := benchKB(1, 16)
	facts := kb.SubjectFacts("user-0000")
	b.Run("legacy-xml", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := MarshalFacts(facts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := UnmarshalFacts(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("causal-bin", func(b *testing.B) {
		b.ReportAllocs()
		var src causal.Versioned[[]Fact]
		src.Put("writer-a", facts)
		data := EncodeVersionedFacts(&src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			remote, err := DecodeVersionedFacts(data)
			if err != nil {
				b.Fatal(err)
			}
			var local causal.Versioned[[]Fact]
			local.Absorb(remote)
			MergeFactSets(local.Values())
		}
	})
	b.Run("causal-bin-siblings", func(b *testing.B) {
		b.ReportAllocs()
		var a, c causal.Versioned[[]Fact]
		a.Put("writer-a", facts[:8])
		c.Put("writer-b", facts[8:])
		a.Absorb(&c)
		data := EncodeVersionedFacts(&a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			remote, err := DecodeVersionedFacts(data)
			if err != nil {
				b.Fatal(err)
			}
			var local causal.Versioned[[]Fact]
			local.Absorb(remote)
			MergeFactSets(local.Values())
		}
	})
}

var sinkFacts []Fact

// BenchmarkMergeFactSets isolates the default sibling resolution.
func BenchmarkMergeFactSets(b *testing.B) {
	mk := func(n int, o string) []Fact {
		fs := make([]Fact, n)
		for i := range fs {
			fs[i] = Fact{S: "bob", P: fmt.Sprintf("pred-%d", i), O: o}
		}
		fs[0] = Fact{S: "bob", P: "location", O: o, From: time.Duration(n) * time.Hour, To: time.Duration(n+1) * time.Hour}
		return fs
	}
	sets := [][]Fact{mk(16, "a"), mk(16, "b"), mk(16, "c")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkFacts = MergeFactSets(sets)
	}
}
