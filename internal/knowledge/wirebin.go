package knowledge

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/causal"
	"github.com/gloss/active/internal/wire"
)

// Versioned binary envelopes for knowledge objects stored in the P2P
// storage plane. A stored fact set or GIS document is no longer a bare
// XML body but a sibling set — one or more (version vector, value) pairs
// — so replicas can tell causally stale copies from concurrent ones.
//
// Both formats open with a two-byte magic and a format version. The
// decoders also accept the pre-causal XML bodies ('<' first byte) and
// lift them into a single sibling with an empty vector: the empty
// history is dominated by any causal write, so legacy data loses to
// the first versioned update — exactly the upgrade semantics we want.

const (
	factsMagic0 = 'K'
	factsMagic1 = 'F'
	gisMagic1   = 'G'
	wireVersion = 1
)

// appendFact serialises one fact.
func appendFact(b []byte, f Fact) []byte {
	b = wire.AppendString(b, f.S)
	b = wire.AppendString(b, f.P)
	b = wire.AppendString(b, f.O)
	b = wire.AppendVarint(b, int64(f.From))
	return wire.AppendVarint(b, int64(f.To))
}

func parseFact(r *wire.BinReader) Fact {
	var f Fact
	f.S = r.String()
	f.P = r.String()
	f.O = r.String()
	f.From = durationField(r)
	f.To = durationField(r)
	return f
}

func durationField(r *wire.BinReader) time.Duration { return time.Duration(r.Varint()) }

// appendFacts serialises a fact list with a count prefix.
func appendFacts(b []byte, facts []Fact) []byte {
	b = wire.AppendUvarint(b, uint64(len(facts)))
	for _, f := range facts {
		b = appendFact(b, f)
	}
	return b
}

func parseFacts(r *wire.BinReader) []Fact {
	n := r.Count()
	var out []Fact
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, parseFact(r))
	}
	return out
}

// EncodeVersionedFacts serialises a versioned fact set deterministically
// (sibling order is already canonical inside Versioned).
func EncodeVersionedFacts(v *causal.Versioned[[]Fact]) []byte {
	b := []byte{factsMagic0, factsMagic1, wireVersion}
	b = wire.AppendUvarint(b, uint64(len(v.Sibs)))
	for _, s := range v.Sibs {
		b = s.Vec.AppendWire(b)
		b = appendFacts(b, s.Value)
	}
	return b
}

// DecodeVersionedFacts parses a stored fact-set body, accepting both the
// versioned binary envelope and the legacy XML document.
func DecodeVersionedFacts(data []byte) (*causal.Versioned[[]Fact], error) {
	if len(data) > 0 && data[0] == '<' {
		facts, err := UnmarshalFacts(data)
		if err != nil {
			return nil, err
		}
		return &causal.Versioned[[]Fact]{Sibs: []causal.Sibling[[]Fact]{{Value: facts}}}, nil
	}
	if len(data) < 3 || data[0] != factsMagic0 || data[1] != factsMagic1 {
		return nil, fmt.Errorf("knowledge: bad versioned facts magic")
	}
	if data[2] != wireVersion {
		return nil, fmt.Errorf("knowledge: versioned facts format %d unsupported", data[2])
	}
	r := wire.NewBinReader(data[3:])
	n := r.Count()
	v := &causal.Versioned[[]Fact]{}
	for i := 0; i < n && r.Err() == nil; i++ {
		vec := causal.ParseVec(r)
		facts := parseFacts(r)
		if r.Err() == nil {
			v.Sibs = append(v.Sibs, causal.Sibling[[]Fact]{Vec: vec, Value: facts})
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("knowledge: parse versioned facts: %w", err)
	}
	return v, nil
}

// appendPlace serialises one GIS place.
func appendPlace(b []byte, p Place) []byte {
	b = wire.AppendString(b, p.Name)
	b = wire.AppendString(b, p.Region)
	b = wire.AppendFloat64(b, p.X)
	b = wire.AppendFloat64(b, p.Y)
	b = wire.AppendVarint(b, int64(p.Hours.Open))
	b = wire.AppendVarint(b, int64(p.Hours.Close))
	b = appendStrings(b, p.Sells)
	return appendStrings(b, p.Tags)
}

func parsePlace(r *wire.BinReader) Place {
	var p Place
	p.Name = r.String()
	p.Region = r.String()
	p.X = r.Float64()
	p.Y = r.Float64()
	p.Hours.Open = durationField(r)
	p.Hours.Close = durationField(r)
	p.Sells = parseStrings(r)
	p.Tags = parseStrings(r)
	return p
}

func appendStrings(b []byte, ss []string) []byte {
	b = wire.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = wire.AppendString(b, s)
	}
	return b
}

func parseStrings(r *wire.BinReader) []string {
	n := r.Count()
	var out []string
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, r.String())
	}
	return out
}

// EncodeVersionedGIS serialises a versioned place list.
func EncodeVersionedGIS(v *causal.Versioned[[]Place]) []byte {
	b := []byte{factsMagic0, gisMagic1, wireVersion}
	b = wire.AppendUvarint(b, uint64(len(v.Sibs)))
	for _, s := range v.Sibs {
		b = s.Vec.AppendWire(b)
		b = wire.AppendUvarint(b, uint64(len(s.Value)))
		for _, p := range s.Value {
			b = appendPlace(b, p)
		}
	}
	return b
}

// DecodeVersionedGIS parses a stored GIS body, accepting both the
// versioned binary envelope and the legacy XML document.
func DecodeVersionedGIS(data []byte) (*causal.Versioned[[]Place], error) {
	if len(data) > 0 && data[0] == '<' {
		g, err := UnmarshalGIS(data)
		if err != nil {
			return nil, err
		}
		places := g.Places()
		if len(places) == 0 {
			places = nil // match the binary decoder's empty form
		}
		return &causal.Versioned[[]Place]{Sibs: []causal.Sibling[[]Place]{{Value: places}}}, nil
	}
	if len(data) < 3 || data[0] != factsMagic0 || data[1] != gisMagic1 {
		return nil, fmt.Errorf("knowledge: bad versioned gis magic")
	}
	if data[2] != wireVersion {
		return nil, fmt.Errorf("knowledge: versioned gis format %d unsupported", data[2])
	}
	r := wire.NewBinReader(data[3:])
	n := r.Count()
	v := &causal.Versioned[[]Place]{}
	for i := 0; i < n && r.Err() == nil; i++ {
		vec := causal.ParseVec(r)
		m := r.Count()
		var places []Place
		for j := 0; j < m && r.Err() == nil; j++ {
			places = append(places, parsePlace(r))
		}
		if r.Err() == nil {
			v.Sibs = append(v.Sibs, causal.Sibling[[]Place]{Vec: vec, Value: places})
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("knowledge: parse versioned gis: %w", err)
	}
	return v, nil
}
