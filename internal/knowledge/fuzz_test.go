package knowledge

import (
	"reflect"
	"testing"
	"time"

	"github.com/gloss/active/internal/causal"
)

func seedFacts() []Fact {
	return []Fact{
		{S: "bob", P: "likes", O: "ice cream"},
		{S: "bob", P: "on-holiday", O: "true", From: 20 * 24 * time.Hour, To: 27 * 24 * time.Hour},
	}
}

func FuzzUnmarshalFacts(f *testing.F) {
	data, _ := MarshalFacts(seedFacts())
	f.Add(data)
	f.Add([]byte("<facts><fact s=\"a\" p=\"b\" o=\"c\"/></facts>"))
	f.Add([]byte("<facts>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		facts, err := UnmarshalFacts(data)
		if err != nil {
			return
		}
		// Accepted documents must round-trip stably.
		enc, err := MarshalFacts(facts)
		if err != nil {
			t.Fatalf("re-marshal accepted facts: %v", err)
		}
		again, err := UnmarshalFacts(enc)
		if err != nil {
			t.Fatalf("re-parse own output: %v", err)
		}
		if len(again) != len(facts) {
			t.Fatalf("unstable round trip: %d vs %d facts", len(again), len(facts))
		}
	})
}

func FuzzUnmarshalGIS(f *testing.F) {
	g := NewGIS()
	_ = g.AddPlace(Place{Name: "janettas", Region: "st-andrews", X: 0.8, Y: 0.3,
		Hours: Span{Open: 9 * time.Hour, Close: 17 * time.Hour},
		Sells: []string{"ice cream"}, Tags: []string{"cafe"}})
	data, _ := g.MarshalGIS()
	f.Add(data)
	f.Add([]byte("<gis><place name=\"x\" region=\"r\" x=\"1\" y=\"2\"/></gis>"))
	f.Add([]byte("<gis><place name=\"x\"/><place name=\"x\"/></gis>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalGIS(data)
		if err != nil {
			return
		}
		enc, err := g.MarshalGIS()
		if err != nil {
			t.Fatalf("re-marshal accepted gis: %v", err)
		}
		again, err := UnmarshalGIS(enc)
		if err != nil {
			t.Fatalf("re-parse own output: %v", err)
		}
		if again.Len() != g.Len() {
			t.Fatalf("unstable round trip: %d vs %d places", again.Len(), g.Len())
		}
	})
}

func FuzzDecodeVersionedFacts(f *testing.F) {
	var v causal.Versioned[[]Fact]
	v.Put("writer-a", seedFacts())
	var w causal.Versioned[[]Fact]
	w.Put("writer-b", []Fact{{S: "bob", P: "nationality", O: "scottish"}})
	v.Absorb(&w)
	enc := EncodeVersionedFacts(&v)
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	xmlBody, _ := MarshalFacts(seedFacts())
	f.Add(xmlBody)
	f.Add([]byte{'K', 'F', 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeVersionedFacts(data)
		if err != nil {
			return
		}
		// Accepted envelopes must re-encode/re-decode to the same state.
		enc := EncodeVersionedFacts(v)
		again, err := DecodeVersionedFacts(enc)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if !reflect.DeepEqual(v, again) {
			t.Fatalf("unstable round trip:\n%+v\n%+v", v, again)
		}
	})
}

func FuzzDecodeVersionedGIS(f *testing.F) {
	var v causal.Versioned[[]Place]
	v.Put("writer-a", []Place{{Name: "janettas", Region: "st-andrews", X: 0.8, Y: 0.3,
		Sells: []string{"ice cream"}}})
	enc := EncodeVersionedGIS(&v)
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte("<gis></gis>"))
	f.Add([]byte{'K', 'G', 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeVersionedGIS(data)
		if err != nil {
			return
		}
		enc := EncodeVersionedGIS(v)
		again, err := DecodeVersionedGIS(enc)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if !reflect.DeepEqual(v, again) {
			t.Fatalf("unstable round trip:\n%+v\n%+v", v, again)
		}
	})
}
