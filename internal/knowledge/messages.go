package knowledge

import (
	"github.com/gloss/active/internal/wire"
)

// Gossip anti-entropy messages. Brokers periodically exchange per-object
// digests (name + version vector); a receiver pushes back only objects
// whose local version is causally newer than — or concurrent with — the
// digest entry, so settled objects cost one small digest line per round
// and never move their bodies.

// DigestEntry summarises one knowledge object: its name (subject or GIS
// region), which namespace it lives in, and the serialised summary
// vector of the local sibling set (causal.Vec.AppendWire form).
type DigestEntry struct {
	Name string     `xml:"name,attr"`
	GIS  bool       `xml:"gis,attr,omitempty"`
	Vec  wire.Bytes `xml:"vec"`
}

// GossipMsg carries a node's full knowledge digest. Reply marks the
// second leg of a round (the partner's answering digest) so exchanges
// terminate after one round trip.
type GossipMsg struct {
	Reply   bool          `xml:"reply,attr,omitempty"`
	Entries []DigestEntry `xml:"entry"`
}

// Kind implements wire.Message.
func (GossipMsg) Kind() string { return "kb.digest" }

// GossipPushMsg pushes one versioned knowledge object (the full binary
// envelope, siblings and all) to a gossip partner whose digest showed it
// stale or concurrent.
type GossipPushMsg struct {
	Name string     `xml:"name,attr"`
	GIS  bool       `xml:"gis,attr,omitempty"`
	Data wire.Bytes `xml:"data"`
}

// Kind implements wire.Message.
func (GossipPushMsg) Kind() string { return "kb.push" }

// RegisterMessages registers the knowledge gossip kinds.
func RegisterMessages(r *wire.Registry) {
	r.Register(&GossipMsg{})
	r.Register(&GossipPushMsg{})
}

var (
	_ wire.BinaryMessage = (*GossipMsg)(nil)
	_ wire.BinaryMessage = (*GossipPushMsg)(nil)
)

// readBytesCopy detaches a length-prefixed byte field from the frame
// buffer the BinReader aliases — digests and pushed envelopes are kept
// past the handler callback.
func readBytesCopy(r *wire.BinReader) wire.Bytes {
	raw := r.Bytes()
	if raw == nil {
		return nil
	}
	return append(wire.Bytes(nil), raw...)
}

// AppendWire implements wire.BinaryMessage.
func (m *GossipMsg) AppendWire(b []byte) []byte {
	b = wire.AppendBool(b, m.Reply)
	b = wire.AppendUvarint(b, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b = wire.AppendString(b, e.Name)
		b = wire.AppendBool(b, e.GIS)
		b = wire.AppendBytes(b, e.Vec)
	}
	return b
}

// ParseWire implements wire.BinaryMessage.
func (m *GossipMsg) ParseWire(r *wire.BinReader) error {
	m.Reply = r.Bool()
	n := r.Count()
	m.Entries = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		var e DigestEntry
		e.Name = r.String()
		e.GIS = r.Bool()
		e.Vec = readBytesCopy(r)
		if r.Err() == nil {
			m.Entries = append(m.Entries, e)
		}
	}
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *GossipPushMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Name)
	b = wire.AppendBool(b, m.GIS)
	return wire.AppendBytes(b, m.Data)
}

// ParseWire implements wire.BinaryMessage.
func (m *GossipPushMsg) ParseWire(r *wire.BinReader) error {
	m.Name = r.String()
	m.GIS = r.Bool()
	m.Data = readBytesCopy(r)
	return r.Err()
}
