package knowledge

import (
	"math/rand"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/plaxton"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/wire"
)

// buildStores creates a small joined overlay with a store on each node.
func buildStores(t *testing.T, n int) (*simnet.World, []*store.Store) {
	t.Helper()
	w := simnet.NewWorld(simnet.Config{Seed: 5})
	reg := wire.NewRegistry()
	plaxton.RegisterMessages(reg)
	store.RegisterMessages(reg)
	RegisterMessages(reg)
	rng := rand.New(rand.NewSource(5))
	var overlays []*plaxton.Overlay
	var stores []*store.Store
	for i := 0; i < n; i++ {
		node := w.NewNode(ids.Random(rng), "r", netapi.Coord{X: rng.Float64() * 1000})
		ov := plaxton.New(node, reg, plaxton.Options{HeartbeatInterval: -1, LeafHalf: 4})
		stores = append(stores, store.New(node, ov, store.Options{RepairInterval: -1}))
		overlays = append(overlays, ov)
	}
	overlays[0].CreateNetwork()
	for i := 1; i < n; i++ {
		overlays[i].Join(overlays[0].ID(), nil)
		w.RunFor(2 * time.Second)
	}
	w.RunFor(3 * time.Second)
	return w, stores
}

func TestSyncerSubjectRoundTrip(t *testing.T) {
	w, stores := buildStores(t, 10)

	// Node 0 knows about bob and publishes.
	kb0 := NewKB()
	kb0.AddSPO("bob", "likes", "ice cream")
	kb0.AddSPO("bob", "nationality", "scottish")
	kb0.Add(Fact{S: "bob", P: "on-holiday", O: "true", From: 20 * 24 * time.Hour, To: 27 * 24 * time.Hour})
	sy0 := NewSyncer(stores[0], kb0)
	var pubErr error
	sy0.PublishSubject("bob", func(err error) { pubErr = err })
	w.RunFor(5 * time.Second)
	if pubErr != nil {
		t.Fatalf("publish: %v", pubErr)
	}

	// A matcher node elsewhere fetches bob's profile on demand.
	kb7 := NewKB()
	sy7 := NewSyncer(stores[7], kb7)
	var fetchErr error
	sy7.FetchSubject("bob", func(err error) { fetchErr = err })
	w.RunFor(5 * time.Second)
	if fetchErr != nil {
		t.Fatalf("fetch: %v", fetchErr)
	}
	if !kb7.Ask("bob", "likes", "ice cream", -1) {
		t.Fatalf("fact not synced")
	}
	if !kb7.Ask("bob", "on-holiday", "true", 25*24*time.Hour) {
		t.Fatalf("validity lost in sync")
	}
	if st7, st0 := sy7.Stats(), sy0.Stats(); st7.Fetches != 1 || st0.Publishes != 1 {
		t.Fatalf("counters: fetches=%d publishes=%d", st7.Fetches, st0.Publishes)
	}
}

func TestSyncerGISRoundTrip(t *testing.T) {
	w, stores := buildStores(t, 8)
	g := NewGIS()
	if err := g.AddPlace(janettas()); err != nil {
		t.Fatal(err)
	}
	sy := NewSyncer(stores[1], NewKB())
	var pubErr error
	sy.PublishGIS("st-andrews", g, func(err error) { pubErr = err })
	w.RunFor(5 * time.Second)
	if pubErr != nil {
		t.Fatalf("publish gis: %v", pubErr)
	}
	var got *GIS
	var fetchErr error
	NewSyncer(stores[5], NewKB()).FetchGIS("st-andrews", func(gg *GIS, err error) { got, fetchErr = gg, err })
	w.RunFor(5 * time.Second)
	if fetchErr != nil {
		t.Fatalf("fetch gis: %v", fetchErr)
	}
	if p, ok := got.Place("janettas"); !ok || !p.SellsItem("ice cream") {
		t.Fatalf("gis content lost")
	}
}

func TestSyncerFetchMissingSubject(t *testing.T) {
	w, stores := buildStores(t, 6)
	var gotErr error
	NewSyncer(stores[2], NewKB()).FetchSubject("nobody", func(err error) { gotErr = err })
	w.RunFor(10 * time.Second)
	if gotErr == nil {
		t.Fatalf("fetch of missing subject should fail")
	}
}
