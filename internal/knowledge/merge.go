package knowledge

import "sort"

// MergeFunc resolves concurrent sibling versions of one subject's fact
// set into a single set. It must be deterministic and order-free over
// its inputs — every replica runs it independently and all must arrive
// at the same resolution. Applications with richer conflict semantics
// (e.g. per-sensor precedence) plug their own via Options.Merge.
type MergeFunc func(sets [][]Fact) []Fact

// MergeFactSets is the default sibling resolution: the union of all
// sibling sets, with per-(S,P) newest-validity resolution for interval
// facts. Always-valid facts (zero From and To) union — concurrent
// writers adding different predicates or objects all survive. Interval
// facts about the same (S,P) compete: the one whose validity starts
// latest wins (a newer "Bob is at the office from 14:00" supersedes the
// morning's "at home from 09:00"), ties broken by To then O so the
// outcome never depends on input order.
func MergeFactSets(sets [][]Fact) []Fact {
	type slot struct{ s, p string }
	always := make(map[Fact]bool)
	timed := make(map[slot]Fact)
	newer := func(a, b Fact) bool {
		if a.From != b.From {
			return a.From > b.From
		}
		if a.To != b.To {
			return a.To > b.To
		}
		return a.O > b.O
	}
	for _, set := range sets {
		for _, f := range set {
			if f.From == 0 && f.To == 0 {
				always[f] = true
				continue
			}
			k := slot{f.S, f.P}
			if cur, ok := timed[k]; !ok || newer(f, cur) {
				timed[k] = f
			}
		}
	}
	out := make([]Fact, 0, len(always)+len(timed))
	for f := range always {
		out = append(out, f)
	}
	for _, f := range timed {
		out = append(out, f)
	}
	sortFacts(out)
	return out
}

// sortFacts orders facts canonically by (S, P, O, From, To).
func sortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		if a.O != b.O {
			return a.O < b.O
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}

// mergePlaces resolves concurrent GIS siblings: union by place name.
// When two siblings carry different versions of the same place, the one
// with the lexicographically greater binary encoding wins — arbitrary
// but deterministic on every replica. Output is name-sorted.
func mergePlaces(sets [][]Place) []Place {
	byName := make(map[string]Place)
	for _, set := range sets {
		for _, p := range set {
			cur, ok := byName[p.Name]
			if !ok {
				byName[p.Name] = p
				continue
			}
			if string(appendPlace(nil, p)) > string(appendPlace(nil, cur)) {
				byName[p.Name] = p
			}
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Place, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out
}
