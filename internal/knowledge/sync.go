package knowledge

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gloss/active/internal/causal"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/store"
	"github.com/gloss/active/internal/wire"
)

// SubjectKey derives the storage GUID for a subject's fact set.
func SubjectKey(subject string) ids.ID {
	return ids.FromString("kb/subject/" + subject)
}

// GISKey is the storage GUID of the shared GIS document.
func GISKey(region string) ids.ID {
	return ids.FromString("kb/gis/" + region)
}

// Options tunes a Syncer.
type Options struct {
	// Writer is this node's identity in version vectors. Defaults to the
	// store endpoint's ID; it must be unique per writer node.
	Writer string
	// LegacySync selects the pre-causal reference path: bare XML bodies,
	// blind overwrite on publish, blind replace on fetch. Kept for the
	// same-seed differential tests and as the paper-faithful baseline.
	LegacySync bool
	// Merge resolves concurrent sibling fact sets. Defaults to
	// MergeFactSets (union + per-(S,P) newest-validity).
	Merge MergeFunc
	// GossipInterval enables periodic anti-entropy with that period.
	// Zero disables gossip (objects still converge via fetch read-repair).
	GossipInterval time.Duration
	// GossipFanout is how many partners each round contacts (default 2).
	GossipFanout int
	// SiblingCap bounds concurrent histories per object: beyond it the
	// sibling set is force-merged into one resolved version (default 8).
	SiblingCap int
	// Peers supplies gossip partner candidates. Defaults to the store
	// overlay's leaf set.
	Peers func() []ids.ID
}

// SyncStats is a snapshot of syncer counters (see Syncer.Stats).
type SyncStats struct {
	Fetches       uint64 // remote subject/GIS loads issued
	Publishes     uint64 // subject/GIS uploads issued
	GossipRounds  uint64 // anti-entropy rounds initiated
	GossipPushes  uint64 // versioned objects pushed to partners
	Absorbed      uint64 // remote versions that changed local state
	SiblingMerges uint64 // reads that resolved >1 concurrent sibling
	ReadRepairs   uint64 // fetches that wrote newer state back
	Compactions   uint64 // sibling sets force-merged at SiblingCap
}

// Syncer moves knowledge between a local KB and the P2P storage
// architecture, implementing §1.2's requirement that "both the events and
// the knowledge base must be delivered to the locations at which the
// matching computation occurs" — the store's promiscuous caching pulls
// hot subjects close to their matchers.
//
// In causal mode (the default) every stored fact set and GIS document is
// a version-vectored sibling set: concurrent writers are detected rather
// than silently overwritten, fetches read-repair stale replicas, and
// optional gossip rounds push digests + missing versions between brokers
// until every node converges on the merged state.
type Syncer struct {
	store *store.Store
	kb    *KB
	opts  Options

	mu       sync.Mutex
	subjects map[string]*causal.Versioned[[]Fact]
	gisDocs  map[string]*causal.Versioned[[]Place]

	stopped atomic.Bool

	fetches       atomic.Uint64
	publishes     atomic.Uint64
	gossipRounds  atomic.Uint64
	gossipPushes  atomic.Uint64
	absorbed      atomic.Uint64
	siblingMerges atomic.Uint64
	readRepairs   atomic.Uint64
	compactions   atomic.Uint64
}

// NewSyncer binds a syncer to a store and a local KB with default
// (causal, gossip-off) options.
func NewSyncer(st *store.Store, kb *KB) *Syncer {
	return NewSyncerOpts(st, kb, Options{})
}

// NewSyncerOpts binds a syncer with explicit options. At most one Syncer
// may be bound per endpoint (it owns the kb.* message kinds).
func NewSyncerOpts(st *store.Store, kb *KB, opts Options) *Syncer {
	if opts.Writer == "" {
		opts.Writer = st.Endpoint().ID().String()
	}
	if opts.Merge == nil {
		opts.Merge = MergeFactSets
	}
	if opts.GossipFanout <= 0 {
		opts.GossipFanout = 2
	}
	if opts.SiblingCap <= 0 {
		opts.SiblingCap = 8
	}
	if opts.Peers == nil {
		opts.Peers = st.Overlay().Leaves
	}
	sy := &Syncer{
		store:    st,
		kb:       kb,
		opts:     opts,
		subjects: make(map[string]*causal.Versioned[[]Fact]),
		gisDocs:  make(map[string]*causal.Versioned[[]Place]),
	}
	if !opts.LegacySync {
		ep := st.Endpoint()
		ep.Handle("kb.digest", sy.handleDigest)
		ep.Handle("kb.push", sy.handlePush)
		if opts.GossipInterval > 0 {
			ep.Clock().After(opts.GossipInterval, sy.gossipTick)
		}
	}
	return sy
}

// Stats returns a snapshot of the syncer counters. Safe to call
// concurrently with syncing.
func (sy *Syncer) Stats() SyncStats {
	return SyncStats{
		Fetches:       sy.fetches.Load(),
		Publishes:     sy.publishes.Load(),
		GossipRounds:  sy.gossipRounds.Load(),
		GossipPushes:  sy.gossipPushes.Load(),
		Absorbed:      sy.absorbed.Load(),
		SiblingMerges: sy.siblingMerges.Load(),
		ReadRepairs:   sy.readRepairs.Load(),
		Compactions:   sy.compactions.Load(),
	}
}

// subjectObj returns (creating if needed) the versioned state of a
// subject. Callers hold sy.mu.
func (sy *Syncer) subjectObj(subject string) *causal.Versioned[[]Fact] {
	v, ok := sy.subjects[subject]
	if !ok {
		v = &causal.Versioned[[]Fact]{}
		sy.subjects[subject] = v
	}
	return v
}

func (sy *Syncer) gisObj(region string) *causal.Versioned[[]Place] {
	v, ok := sy.gisDocs[region]
	if !ok {
		v = &causal.Versioned[[]Place]{}
		sy.gisDocs[region] = v
	}
	return v
}

// PublishSubject uploads the local facts about subject to the store.
// Causal mode wraps them in a new version descending from everything
// this node has seen; legacy mode overwrites blindly.
func (sy *Syncer) PublishSubject(subject string, cb func(error)) {
	if sy.opts.LegacySync {
		facts := sy.kb.SubjectFacts(subject)
		data, err := MarshalFacts(facts)
		if err != nil {
			cb(err)
			return
		}
		sy.publishes.Add(1)
		sy.store.PutAs(SubjectKey(subject), data, cb)
		return
	}
	sy.mu.Lock()
	v := sy.subjectObj(subject)
	v.Put(sy.opts.Writer, sy.kb.SubjectFacts(subject))
	data := EncodeVersionedFacts(v)
	sy.mu.Unlock()
	sy.publishes.Add(1)
	sy.store.PutAs(SubjectKey(subject), data, cb)
}

// FetchSubject downloads facts about subject and merges them into the
// local KB. Legacy mode replaces the local set; causal mode absorbs the
// stored sibling set, resolves concurrent versions through Options.Merge
// and — when the local replica knows more than the store copy —
// read-repairs the store.
func (sy *Syncer) FetchSubject(subject string, cb func(error)) {
	sy.fetches.Add(1)
	sy.store.Get(SubjectKey(subject), func(data []byte, err error) {
		if err != nil {
			cb(fmt.Errorf("knowledge: fetch %q: %w", subject, err))
			return
		}
		if sy.opts.LegacySync {
			facts, err := UnmarshalFacts(data)
			if err != nil {
				cb(err)
				return
			}
			sy.kb.MergeSubject(subject, facts)
			cb(nil)
			return
		}
		remote, err := DecodeVersionedFacts(data)
		if err != nil {
			cb(err)
			return
		}
		sy.absorbSubject(subject, remote, data)
		cb(nil)
	})
}

// absorbSubject folds a remote sibling set into the local object, puts
// the resolved facts into the KB, and read-repairs the store when the
// stored bytes lag the local replica. storedData is the store's current
// body (nil when the caller got the envelope from gossip, not the store).
func (sy *Syncer) absorbSubject(subject string, remote *causal.Versioned[[]Fact], storedData []byte) {
	sy.mu.Lock()
	v := sy.subjectObj(subject)
	if v.Absorb(remote) {
		sy.absorbed.Add(1)
	}
	if v.Compact(sy.opts.SiblingCap, func(vals [][]Fact) []Fact { return sy.opts.Merge(vals) }) {
		sy.compactions.Add(1)
	}
	if len(v.Sibs) > 1 {
		sy.siblingMerges.Add(1)
	}
	resolved := sy.opts.Merge(v.Values())
	var repair []byte
	if storedData != nil {
		if enc := EncodeVersionedFacts(v); !bytes.Equal(enc, storedData) {
			repair = enc
		}
	}
	sy.mu.Unlock()
	sy.kb.MergeSubject(subject, resolved)
	if repair != nil {
		sy.readRepairs.Add(1)
		sy.store.PutAs(SubjectKey(subject), repair, func(error) {})
	}
}

// PublishGIS uploads a GIS layer under the given region key.
func (sy *Syncer) PublishGIS(region string, g *GIS, cb func(error)) {
	if sy.opts.LegacySync {
		data, err := g.MarshalGIS()
		if err != nil {
			cb(err)
			return
		}
		sy.publishes.Add(1)
		sy.store.PutAs(GISKey(region), data, cb)
		return
	}
	sy.mu.Lock()
	v := sy.gisObj(region)
	v.Put(sy.opts.Writer, g.Places())
	data := EncodeVersionedGIS(v)
	sy.mu.Unlock()
	sy.publishes.Add(1)
	sy.store.PutAs(GISKey(region), data, cb)
}

// FetchGIS downloads a region's GIS layer.
func (sy *Syncer) FetchGIS(region string, cb func(*GIS, error)) {
	sy.fetches.Add(1)
	sy.store.Get(GISKey(region), func(data []byte, err error) {
		if err != nil {
			cb(nil, fmt.Errorf("knowledge: fetch gis %q: %w", region, err))
			return
		}
		if sy.opts.LegacySync {
			g, err := UnmarshalGIS(data)
			cb(g, err)
			return
		}
		remote, err := DecodeVersionedGIS(data)
		if err != nil {
			cb(nil, err)
			return
		}
		places, repairErr := sy.absorbGIS(region, remote, data)
		g := NewGIS()
		for _, p := range places {
			if err := g.AddPlace(p); err != nil {
				cb(nil, err)
				return
			}
		}
		cb(g, repairErr)
	})
}

func (sy *Syncer) absorbGIS(region string, remote *causal.Versioned[[]Place], storedData []byte) ([]Place, error) {
	sy.mu.Lock()
	v := sy.gisObj(region)
	if v.Absorb(remote) {
		sy.absorbed.Add(1)
	}
	if v.Compact(sy.opts.SiblingCap, func(vals [][]Place) []Place { return mergePlaces(vals) }) {
		sy.compactions.Add(1)
	}
	if len(v.Sibs) > 1 {
		sy.siblingMerges.Add(1)
	}
	resolved := mergePlaces(v.Values())
	var repair []byte
	if storedData != nil {
		if enc := EncodeVersionedGIS(v); !bytes.Equal(enc, storedData) {
			repair = enc
		}
	}
	sy.mu.Unlock()
	if repair != nil {
		sy.readRepairs.Add(1)
		sy.store.PutAs(GISKey(region), repair, func(error) {})
	}
	return resolved, nil
}

// --- gossip anti-entropy ------------------------------------------------------

// gossipTick runs one anti-entropy round and reschedules itself until
// Stop is called.
func (sy *Syncer) gossipTick() {
	if sy.stopped.Load() {
		return
	}
	sy.GossipNow()
	sy.store.Endpoint().Clock().After(sy.opts.GossipInterval, sy.gossipTick)
}

// Stop halts periodic gossip: the current timer fires at most once more
// and does nothing. Explicit GossipNow calls still work, so a stopped
// syncer can be driven manually. Idempotent.
func (sy *Syncer) Stop() { sy.stopped.Store(true) }

// GossipNow initiates one anti-entropy round: the local digest is sent
// to up to GossipFanout random peers; each answers with its own digest
// and both sides push only versions the other provably lacks.
func (sy *Syncer) GossipNow() {
	if sy.opts.LegacySync {
		return
	}
	ep := sy.store.Endpoint()
	peers := sy.opts.Peers()
	if len(peers) == 0 {
		return
	}
	sy.gossipRounds.Add(1)
	msg := &GossipMsg{Entries: sy.digest()}
	order := ep.Rand().Perm(len(peers))
	n := sy.opts.GossipFanout
	if n > len(peers) {
		n = len(peers)
	}
	for _, i := range order[:n] {
		ep.Send(peers[i], msg)
	}
}

// digest snapshots every tracked object's name and summary vector.
func (sy *Syncer) digest() []DigestEntry {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	entries := make([]DigestEntry, 0, len(sy.subjects)+len(sy.gisDocs))
	for name, v := range sy.subjects {
		entries = append(entries, DigestEntry{Name: name, Vec: v.Vec().AppendWire(nil)})
	}
	for name, v := range sy.gisDocs {
		entries = append(entries, DigestEntry{Name: name, GIS: true, Vec: v.Vec().AppendWire(nil)})
	}
	return entries
}

// handleDigest answers a partner's digest: push every local object the
// partner's vector shows it is missing (ours descends) or conflicted on
// (concurrent), including objects absent from its digest entirely; then
// reply with our own digest (once — replies are not re-answered).
func (sy *Syncer) handleDigest(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	dg, ok := msg.(*GossipMsg)
	if !ok {
		return
	}
	seen := make(map[string]causal.Vec, len(dg.Entries))
	for _, e := range dg.Entries {
		key := digestKey(e.Name, e.GIS)
		seen[key] = causal.ParseVec(wire.NewBinReader(e.Vec))
	}
	ep := sy.store.Endpoint()
	type push struct {
		name string
		gis  bool
		data []byte
	}
	var pushes []push
	sy.mu.Lock()
	for name, v := range sy.subjects {
		remote, known := seen[digestKey(name, false)]
		if !known || needsPush(v.Vec(), remote) {
			pushes = append(pushes, push{name, false, EncodeVersionedFacts(v)})
		}
	}
	for name, v := range sy.gisDocs {
		remote, known := seen[digestKey(name, true)]
		if !known || needsPush(v.Vec(), remote) {
			pushes = append(pushes, push{name, true, EncodeVersionedGIS(v)})
		}
	}
	sy.mu.Unlock()
	for _, p := range pushes {
		sy.gossipPushes.Add(1)
		ep.Send(from, &GossipPushMsg{Name: p.name, GIS: p.gis, Data: p.data})
	}
	if !dg.Reply {
		ep.Send(from, &GossipMsg{Reply: true, Entries: sy.digest()})
	}
}

// needsPush reports whether a local summary vector holds history the
// remote one lacks.
func needsPush(local, remote causal.Vec) bool {
	switch causal.Compare(local, remote) {
	case causal.Descends, causal.Concurrent:
		return true
	}
	return false
}

func digestKey(name string, gis bool) string {
	if gis {
		return "g/" + name
	}
	return "s/" + name
}

// handlePush absorbs a versioned object pushed by a gossip partner.
func (sy *Syncer) handlePush(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
	p, ok := msg.(*GossipPushMsg)
	if !ok {
		return
	}
	if p.GIS {
		remote, err := DecodeVersionedGIS(p.Data)
		if err != nil {
			return
		}
		sy.absorbGIS(p.Name, remote, nil)
		return
	}
	remote, err := DecodeVersionedFacts(p.Data)
	if err != nil {
		return
	}
	sy.absorbSubject(p.Name, remote, nil)
}
