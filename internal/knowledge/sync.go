package knowledge

import (
	"fmt"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/store"
)

// SubjectKey derives the storage GUID for a subject's fact set.
func SubjectKey(subject string) ids.ID {
	return ids.FromString("kb/subject/" + subject)
}

// GISKey is the storage GUID of the shared GIS document.
func GISKey(region string) ids.ID {
	return ids.FromString("kb/gis/" + region)
}

// Syncer moves knowledge between a local KB and the P2P storage
// architecture, implementing §1.2's requirement that "both the events and
// the knowledge base must be delivered to the locations at which the
// matching computation occurs" — the store's promiscuous caching pulls
// hot subjects close to their matchers.
type Syncer struct {
	store *store.Store
	kb    *KB
	// Fetches counts remote subject loads.
	Fetches uint64
	// Publishes counts subject uploads.
	Publishes uint64
}

// NewSyncer binds a syncer to a store and a local KB.
func NewSyncer(st *store.Store, kb *KB) *Syncer {
	return &Syncer{store: st, kb: kb}
}

// PublishSubject uploads the local facts about subject to the store.
func (sy *Syncer) PublishSubject(subject string, cb func(error)) {
	facts := sy.kb.SubjectFacts(subject)
	data, err := MarshalFacts(facts)
	if err != nil {
		cb(err)
		return
	}
	sy.Publishes++
	sy.store.PutAs(SubjectKey(subject), data, cb)
}

// FetchSubject downloads facts about subject and merges them into the
// local KB, replacing prior local facts about that subject.
func (sy *Syncer) FetchSubject(subject string, cb func(error)) {
	sy.Fetches++
	sy.store.Get(SubjectKey(subject), func(data []byte, err error) {
		if err != nil {
			cb(fmt.Errorf("knowledge: fetch %q: %w", subject, err))
			return
		}
		facts, err := UnmarshalFacts(data)
		if err != nil {
			cb(err)
			return
		}
		sy.kb.MergeSubject(subject, facts)
		cb(nil)
	})
}

// PublishGIS uploads a GIS layer under the given region key.
func (sy *Syncer) PublishGIS(region string, g *GIS, cb func(error)) {
	data, err := g.MarshalGIS()
	if err != nil {
		cb(err)
		return
	}
	sy.Publishes++
	sy.store.PutAs(GISKey(region), data, cb)
}

// FetchGIS downloads a region's GIS layer.
func (sy *Syncer) FetchGIS(region string, cb func(*GIS, error)) {
	sy.Fetches++
	sy.store.Get(GISKey(region), func(data []byte, err error) {
		if err != nil {
			cb(nil, fmt.Errorf("knowledge: fetch gis %q: %w", region, err))
			return
		}
		g, err := UnmarshalGIS(data)
		cb(g, err)
	})
}
