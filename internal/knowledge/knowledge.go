// Package knowledge implements the paper's global knowledge base (§1.1):
// the relatively static facts the matching service correlates events
// against — user preferences, social links, calendars ("Bob is on holiday
// from 20/6 to 27/6"), and GIS data ("Janetta's in Market Street sells ice
// cream, and is open between 9.00 and 17.00").
//
// Facts are subject–predicate–object triples with optional validity
// intervals. The GIS layer holds places with coordinates, opening hours
// and stock, indexed on a spatial grid. Both serialise to XML so they can
// live in the P2P storage architecture and be cached near the matching
// computation (see Syncer).
package knowledge

import (
	"encoding/xml"
	"fmt"
	"sort"
	"time"

	"github.com/gloss/active/internal/netapi"
)

// Fact is one S-P-O triple, optionally valid only in [From, To).
type Fact struct {
	S string `xml:"s,attr"`
	P string `xml:"p,attr"`
	O string `xml:"o,attr"`
	// From/To bound the validity in world time; both zero = always valid.
	From time.Duration `xml:"from,attr,omitempty"`
	To   time.Duration `xml:"to,attr,omitempty"`
}

// ValidAt reports whether the fact holds at time t (t < 0 ignores validity).
func (f Fact) ValidAt(t time.Duration) bool {
	if t < 0 || (f.From == 0 && f.To == 0) {
		return true
	}
	return t >= f.From && t < f.To
}

// KB is an in-memory fact base with subject and predicate indexes.
// The zero value is not usable; construct with NewKB.
type KB struct {
	bySubject map[string][]*Fact
	count     int
	// subjects caches the sorted subject list for wildcard-subject
	// queries; nil means stale (rebuilt lazily on the next such query).
	subjects []string
}

// NewKB returns an empty knowledge base.
func NewKB() *KB {
	return &KB{bySubject: make(map[string][]*Fact)}
}

// Add inserts a fact (duplicates are kept; they are harmless for Ask).
func (kb *KB) Add(f Fact) {
	c := f
	if _, known := kb.bySubject[f.S]; !known {
		kb.subjects = nil
	}
	kb.bySubject[f.S] = append(kb.bySubject[f.S], &c)
	kb.count++
}

// AddSPO inserts an always-valid fact.
func (kb *KB) AddSPO(s, p, o string) { kb.Add(Fact{S: s, P: p, O: o}) }

// Len returns the number of stored facts.
func (kb *KB) Len() int { return kb.count }

// Query returns facts matching the pattern at time t; empty strings are
// wildcards, t < 0 ignores validity.
func (kb *KB) Query(s, p, o string, t time.Duration) []Fact {
	var pool []*Fact
	if s != "" {
		pool = kb.bySubject[s]
	} else {
		// Wildcard subject: scan in deterministic subject order via the
		// cached sorted slice (invalidated whenever the subject set
		// changes) instead of rebuilding and re-sorting it every call.
		for _, subj := range kb.sortedSubjects() {
			pool = append(pool, kb.bySubject[subj]...)
		}
	}
	var out []Fact
	for _, f := range pool {
		if p != "" && f.P != p {
			continue
		}
		if o != "" && f.O != o {
			continue
		}
		if !f.ValidAt(t) {
			continue
		}
		out = append(out, *f)
	}
	return out
}

// Ask reports whether any fact matches the pattern at time t.
func (kb *KB) Ask(s, p, o string, t time.Duration) bool {
	return len(kb.Query(s, p, o, t)) > 0
}

// One returns the object of the first fact matching (s, p, *) at t.
func (kb *KB) One(s, p string, t time.Duration) (string, bool) {
	fs := kb.Query(s, p, "", t)
	if len(fs) == 0 {
		return "", false
	}
	return fs[0].O, true
}

// Remove deletes all facts matching the exact triple (any validity).
func (kb *KB) Remove(s, p, o string) int {
	pool := kb.bySubject[s]
	kept := pool[:0]
	removed := 0
	for _, f := range pool {
		if f.P == p && f.O == o {
			removed++
			continue
		}
		kept = append(kept, f)
	}
	if len(kept) == 0 {
		delete(kb.bySubject, s)
		kb.subjects = nil
	} else {
		kb.bySubject[s] = kept
	}
	kb.count -= removed
	return removed
}

// sortedSubjects returns the cached sorted subject list, rebuilding it
// only after the subject set has changed.
func (kb *KB) sortedSubjects() []string {
	if kb.subjects == nil && len(kb.bySubject) > 0 {
		kb.subjects = make([]string, 0, len(kb.bySubject))
		for subj := range kb.bySubject {
			kb.subjects = append(kb.subjects, subj)
		}
		sort.Strings(kb.subjects)
	}
	return kb.subjects
}

// Subjects returns all subjects in sorted order. The returned slice is
// shared with the cache — callers must not mutate it.
func (kb *KB) Subjects() []string { return kb.sortedSubjects() }

// SubjectFacts returns all facts about one subject.
func (kb *KB) SubjectFacts(s string) []Fact {
	out := make([]Fact, 0, len(kb.bySubject[s]))
	for _, f := range kb.bySubject[s] {
		out = append(out, *f)
	}
	return out
}

// MergeSubject replaces all facts about a subject with the given set
// (used when syncing from the distributed store).
func (kb *KB) MergeSubject(s string, facts []Fact) {
	kb.count -= len(kb.bySubject[s])
	delete(kb.bySubject, s)
	kb.subjects = nil
	for _, f := range facts {
		if f.S == s {
			kb.Add(f)
		}
	}
}

// factsDoc is the XML document form of a fact set.
type factsDoc struct {
	XMLName xml.Name `xml:"facts"`
	Facts   []Fact   `xml:"fact"`
}

// MarshalFacts serialises facts to XML.
func MarshalFacts(facts []Fact) ([]byte, error) {
	return xml.Marshal(factsDoc{Facts: facts})
}

// UnmarshalFacts parses an XML fact document.
func UnmarshalFacts(data []byte) ([]Fact, error) {
	var d factsDoc
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("knowledge: parse facts: %w", err)
	}
	return d.Facts, nil
}

// --- GIS -----------------------------------------------------------------------

// Span is a daily opening interval [Open, Close) in time-of-day offsets.
type Span struct {
	Open  time.Duration `xml:"open,attr"`
	Close time.Duration `xml:"close,attr"`
}

// Place is a GIS feature.
type Place struct {
	Name   string   `xml:"name,attr"`
	Region string   `xml:"region,attr"`
	X      float64  `xml:"x,attr"`
	Y      float64  `xml:"y,attr"`
	Hours  Span     `xml:"hours"`
	Sells  []string `xml:"sells"`
	Tags   []string `xml:"tag"`
}

// At returns the place coordinate.
func (p *Place) At() netapi.Coord { return netapi.Coord{X: p.X, Y: p.Y} }

// OpenAt reports whether the place is open at world time t (modulo day).
// A zero Hours span means always open.
func (p *Place) OpenAt(t time.Duration) bool {
	if p.Hours.Open == 0 && p.Hours.Close == 0 {
		return true
	}
	tod := t % (24 * time.Hour)
	if p.Hours.Open <= p.Hours.Close {
		return tod >= p.Hours.Open && tod < p.Hours.Close
	}
	// Overnight span (e.g. 22:00–02:00).
	return tod >= p.Hours.Open || tod < p.Hours.Close
}

// OpenFor returns how much longer the place stays open at time t
// (zero when closed; a day when always open).
func (p *Place) OpenFor(t time.Duration) time.Duration {
	if p.Hours.Open == 0 && p.Hours.Close == 0 {
		return 24 * time.Hour
	}
	if !p.OpenAt(t) {
		return 0
	}
	tod := t % (24 * time.Hour)
	if p.Hours.Open <= p.Hours.Close {
		return p.Hours.Close - tod
	}
	if tod >= p.Hours.Open {
		return 24*time.Hour - tod + p.Hours.Close
	}
	return p.Hours.Close - tod
}

// SellsItem reports whether the place stocks an item.
func (p *Place) SellsItem(item string) bool {
	for _, s := range p.Sells {
		if s == item {
			return true
		}
	}
	return false
}

const gridCellKm = 1.0

type cellKey struct{ cx, cy int }

// GIS is a spatially indexed set of places.
type GIS struct {
	places map[string]*Place
	order  []string
	grid   map[cellKey][]*Place
}

// NewGIS returns an empty GIS layer.
func NewGIS() *GIS {
	return &GIS{
		places: make(map[string]*Place),
		grid:   make(map[cellKey][]*Place),
	}
}

func cellOf(c netapi.Coord) cellKey {
	return cellKey{cx: int(c.X / gridCellKm), cy: int(c.Y / gridCellKm)}
}

// AddPlace indexes a place; names must be unique.
func (g *GIS) AddPlace(p Place) error {
	if _, dup := g.places[p.Name]; dup {
		return fmt.Errorf("knowledge: duplicate place %q", p.Name)
	}
	cp := p
	g.places[p.Name] = &cp
	g.order = append(g.order, p.Name)
	k := cellOf(cp.At())
	g.grid[k] = append(g.grid[k], &cp)
	return nil
}

// Place looks a place up by name.
func (g *GIS) Place(name string) (*Place, bool) {
	p, ok := g.places[name]
	return p, ok
}

// Len returns the number of places.
func (g *GIS) Len() int { return len(g.places) }

// Within returns all places within km of c, nearest first (ties by name).
func (g *GIS) Within(c netapi.Coord, km float64) []*Place {
	r := int(km/gridCellKm) + 1
	center := cellOf(c)
	var out []*Place
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, p := range g.grid[cellKey{center.cx + dx, center.cy + dy}] {
				if p.At().DistanceKm(c) <= km {
					out = append(out, p)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].At().DistanceKm(c), out[j].At().DistanceKm(c)
		if di != dj {
			return di < dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// NearestSelling returns the closest place within maxKm of c that stocks
// item, or nil.
func (g *GIS) NearestSelling(c netapi.Coord, item string, maxKm float64) *Place {
	for _, p := range g.Within(c, maxKm) {
		if p.SellsItem(item) {
			return p
		}
	}
	return nil
}

// NearestTagged returns the closest place within maxKm carrying tag.
func (g *GIS) NearestTagged(c netapi.Coord, tag string, maxKm float64) *Place {
	for _, p := range g.Within(c, maxKm) {
		for _, t := range p.Tags {
			if t == tag {
				return p
			}
		}
	}
	return nil
}

// Places returns the indexed places in insertion order, copied out so
// callers can serialise or merge them without aliasing the index.
func (g *GIS) Places() []Place {
	out := make([]Place, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, *g.places[name])
	}
	return out
}

// gisDoc is the XML document form of the GIS layer.
type gisDoc struct {
	XMLName xml.Name `xml:"gis"`
	Places  []Place  `xml:"place"`
}

// MarshalGIS serialises places in insertion order.
func (g *GIS) MarshalGIS() ([]byte, error) {
	doc := gisDoc{}
	for _, name := range g.order {
		doc.Places = append(doc.Places, *g.places[name])
	}
	return xml.Marshal(doc)
}

// UnmarshalGIS parses a GIS document into a fresh index.
func UnmarshalGIS(data []byte) (*GIS, error) {
	var doc gisDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("knowledge: parse gis: %w", err)
	}
	g := NewGIS()
	for _, p := range doc.Places {
		if err := g.AddPlace(p); err != nil {
			return nil, err
		}
	}
	return g, nil
}
