package knowledge

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/netapi"
)

func hours(h int) time.Duration { return time.Duration(h) * time.Hour }

func TestKBQueryPatterns(t *testing.T) {
	kb := NewKB()
	kb.AddSPO("bob", "likes", "ice cream")
	kb.AddSPO("bob", "nationality", "scottish")
	kb.AddSPO("bob", "knows", "anna")
	kb.AddSPO("anna", "likes", "coffee")

	if !kb.Ask("bob", "likes", "ice cream", -1) {
		t.Errorf("exact match failed")
	}
	if kb.Ask("bob", "likes", "coffee", -1) {
		t.Errorf("false positive")
	}
	if got := len(kb.Query("bob", "", "", -1)); got != 3 {
		t.Errorf("subject wildcard: %d facts, want 3", got)
	}
	if got := len(kb.Query("", "likes", "", -1)); got != 2 {
		t.Errorf("predicate query across subjects: %d, want 2", got)
	}
	if o, ok := kb.One("bob", "nationality", -1); !ok || o != "scottish" {
		t.Errorf("One = %q/%v", o, ok)
	}
	if _, ok := kb.One("bob", "dislikes", -1); ok {
		t.Errorf("One on absent predicate should fail")
	}
}

func TestKBValidityIntervals(t *testing.T) {
	kb := NewKB()
	// Bob is on holiday from day 20 to day 27 (§1.1).
	kb.Add(Fact{S: "bob", P: "on-holiday", O: "true",
		From: 20 * 24 * time.Hour, To: 27 * 24 * time.Hour})
	if kb.Ask("bob", "on-holiday", "true", 19*24*time.Hour) {
		t.Errorf("holiday active too early")
	}
	if !kb.Ask("bob", "on-holiday", "true", 25*24*time.Hour) {
		t.Errorf("holiday inactive mid-interval")
	}
	if kb.Ask("bob", "on-holiday", "true", 27*24*time.Hour) {
		t.Errorf("holiday active at exclusive end")
	}
	// t = -1 ignores validity.
	if !kb.Ask("bob", "on-holiday", "true", -1) {
		t.Errorf("validity not ignored for t<0")
	}
}

func TestKBRemoveAndMerge(t *testing.T) {
	kb := NewKB()
	kb.AddSPO("bob", "likes", "ice cream")
	kb.AddSPO("bob", "likes", "chips")
	if n := kb.Remove("bob", "likes", "chips"); n != 1 {
		t.Fatalf("removed %d", n)
	}
	if kb.Ask("bob", "likes", "chips", -1) {
		t.Fatalf("fact survived removal")
	}
	kb.MergeSubject("bob", []Fact{{S: "bob", P: "likes", O: "haggis"}})
	if kb.Ask("bob", "likes", "ice cream", -1) {
		t.Fatalf("merge did not replace old facts")
	}
	if !kb.Ask("bob", "likes", "haggis", -1) {
		t.Fatalf("merged fact missing")
	}
	if kb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", kb.Len())
	}
}

func TestFactsXMLRoundTrip(t *testing.T) {
	in := []Fact{
		{S: "bob", P: "likes", O: "ice cream"},
		{S: "bob", P: "on-holiday", O: "true", From: hours(480), To: hours(648)},
	}
	data, err := MarshalFacts(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func janettas() Place {
	return Place{
		Name: "janettas", Region: "st-andrews", X: 10.2, Y: 4.1,
		Hours: Span{Open: hours(9), Close: hours(17)},
		Sells: []string{"ice cream", "coffee"},
		Tags:  []string{"cafe"},
	}
}

func TestPlaceOpeningHours(t *testing.T) {
	p := janettas()
	if p.OpenAt(hours(8)) {
		t.Errorf("open before 9")
	}
	if !p.OpenAt(hours(12)) {
		t.Errorf("closed at noon")
	}
	if p.OpenAt(hours(17)) {
		t.Errorf("open at close")
	}
	// Second day, 16:45 — the paper's scenario time.
	at := 24*time.Hour + 16*time.Hour + 45*time.Minute
	if !p.OpenAt(at) {
		t.Errorf("closed at 16:45 on day 2")
	}
	if got := p.OpenFor(at); got != 15*time.Minute {
		t.Errorf("OpenFor = %v, want 15m", got)
	}
	// Overnight span.
	bar := Place{Name: "bar", Hours: Span{Open: hours(22), Close: hours(2)}}
	if !bar.OpenAt(hours(23)) || !bar.OpenAt(hours(1)) || bar.OpenAt(hours(12)) {
		t.Errorf("overnight hours wrong")
	}
	if got := bar.OpenFor(hours(23)); got != 3*time.Hour {
		t.Errorf("overnight OpenFor = %v", got)
	}
	// Always-open.
	kiosk := Place{Name: "kiosk"}
	if !kiosk.OpenAt(hours(3)) || kiosk.OpenFor(hours(3)) != 24*time.Hour {
		t.Errorf("always-open wrong")
	}
}

func TestGISSpatialQueries(t *testing.T) {
	g := NewGIS()
	if err := g.AddPlace(janettas()); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPlace(Place{Name: "far-shop", X: 50, Y: 50, Sells: []string{"ice cream"}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPlace(Place{Name: "near-pub", X: 10.4, Y: 4.1, Tags: []string{"pub"}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPlace(janettas()); err == nil {
		t.Fatal("duplicate place accepted")
	}

	near := netapi.Coord{X: 10.0, Y: 4.0}
	within := g.Within(near, 1.0)
	if len(within) != 2 {
		t.Fatalf("Within returned %d places, want 2", len(within))
	}
	if within[0].Name != "janettas" {
		t.Fatalf("nearest-first ordering broken: %s", within[0].Name)
	}
	if p := g.NearestSelling(near, "ice cream", 2.0); p == nil || p.Name != "janettas" {
		t.Fatalf("NearestSelling = %v", p)
	}
	if p := g.NearestSelling(near, "ice cream", 0.05); p != nil {
		t.Fatalf("radius not respected")
	}
	if p := g.NearestTagged(near, "pub", 2.0); p == nil || p.Name != "near-pub" {
		t.Fatalf("NearestTagged = %v", p)
	}
	if p := g.NearestSelling(netapi.Coord{X: 50, Y: 50}, "ice cream", 1); p == nil || p.Name != "far-shop" {
		t.Fatalf("distant cell lookup failed")
	}
}

func TestGISXMLRoundTrip(t *testing.T) {
	g := NewGIS()
	if err := g.AddPlace(janettas()); err != nil {
		t.Fatal(err)
	}
	data, err := g.MarshalGIS()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := UnmarshalGIS(data)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g2.Place("janettas")
	if !ok {
		t.Fatalf("place lost")
	}
	if !p.SellsItem("ice cream") || p.Hours.Open != hours(9) || p.Region != "st-andrews" {
		t.Fatalf("place fields lost: %+v", p)
	}
}
