package knowledge

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/gloss/active/internal/leakcheck"
)

// bobWriter0/bobWriter1 are the two concurrent broker updates used by
// the multi-writer tests: disjoint always-valid facts plus one contested
// timed "location" slot with a deterministic newest-validity winner.
func bobWriter0(kb *KB) {
	kb.AddSPO("bob", "likes", "ice cream")
	kb.Add(Fact{S: "bob", P: "location", O: "home", From: 9 * time.Hour, To: 12 * time.Hour})
}

func bobWriter1(kb *KB) {
	kb.AddSPO("bob", "nationality", "scottish")
	kb.Add(Fact{S: "bob", P: "location", O: "office", From: 14 * time.Hour, To: 18 * time.Hour})
}

// unionFacts is what zero-lost-write convergence must produce: both
// writers' always-valid facts plus the newest-validity location.
func wantUnion(t *testing.T, kb *KB, label string) {
	t.Helper()
	if !kb.Ask("bob", "likes", "ice cream", -1) {
		t.Fatalf("%s: lost writer 0's fact", label)
	}
	if !kb.Ask("bob", "nationality", "scottish", -1) {
		t.Fatalf("%s: lost writer 1's fact", label)
	}
	if o, _ := kb.One("bob", "location", -1); o != "office" {
		t.Fatalf("%s: location = %q, want newest-validity winner \"office\"", label, o)
	}
}

// TestLegacySyncByteIdentical pins the reference path: with
// Options.LegacySync the stored body is exactly the XML document the
// seed implementation wrote — byte for byte.
func TestLegacySyncByteIdentical(t *testing.T) {
	w, stores := buildStores(t, 6)
	kb := NewKB()
	bobWriter0(kb)
	sy := NewSyncerOpts(stores[0], kb, Options{LegacySync: true})
	var pubErr error
	sy.PublishSubject("bob", func(err error) { pubErr = err })
	w.RunFor(5 * time.Second)
	if pubErr != nil {
		t.Fatalf("publish: %v", pubErr)
	}
	want, err := MarshalFacts(kb.SubjectFacts("bob"))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	stores[4].Get(SubjectKey("bob"), func(data []byte, err error) {
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		got = data
	})
	w.RunFor(5 * time.Second)
	if !bytes.Equal(got, want) {
		t.Fatalf("legacy stored body not byte-identical to XML reference:\ngot  %q\nwant %q", got, want)
	}
}

// TestLegacySyncLosesConcurrentWrites demonstrates the flaw the causal
// path fixes: two brokers updating the same subject overwrite each
// other, and a reader sees exactly one writer's facts.
func TestLegacySyncLosesConcurrentWrites(t *testing.T) {
	w, stores := buildStores(t, 8)
	kb0, kb1 := NewKB(), NewKB()
	bobWriter0(kb0)
	bobWriter1(kb1)
	sy0 := NewSyncerOpts(stores[0], kb0, Options{LegacySync: true})
	sy1 := NewSyncerOpts(stores[1], kb1, Options{LegacySync: true})
	sy0.PublishSubject("bob", func(error) {})
	sy1.PublishSubject("bob", func(error) {})
	w.RunFor(10 * time.Second)

	kbR := NewKB()
	syR := NewSyncerOpts(stores[5], kbR, Options{LegacySync: true})
	syR.FetchSubject("bob", func(error) {})
	w.RunFor(10 * time.Second)

	has0 := kbR.Ask("bob", "likes", "ice cream", -1)
	has1 := kbR.Ask("bob", "nationality", "scottish", -1)
	if has0 == has1 {
		t.Fatalf("legacy last-writer-wins should keep exactly one writer's facts, got writer0=%v writer1=%v", has0, has1)
	}
}

// TestCausalConvergesNoLostWrites is the tentpole acceptance test: two
// brokers update the same subject concurrently; with causal sync and
// gossip anti-entropy EVERY node converges to the merged fact set.
func TestCausalConvergesNoLostWrites(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	w, stores := buildStores(t, 8)
	kbs := make([]*KB, len(stores))
	sys := make([]*Syncer, len(stores))
	for i := range stores {
		kbs[i] = NewKB()
		sys[i] = NewSyncerOpts(stores[i], kbs[i], Options{GossipInterval: time.Second})
	}
	bobWriter0(kbs[0])
	bobWriter1(kbs[1])
	// Published at the same virtual instant: genuinely concurrent.
	sys[0].PublishSubject("bob", func(error) {})
	sys[1].PublishSubject("bob", func(error) {})
	w.RunFor(30 * time.Second)

	for i, kb := range kbs {
		if kb.Len() == 0 {
			t.Fatalf("node %d never received the subject via gossip", i)
		}
		wantUnion(t, kb, "node")
	}
	var pushes, merges uint64
	for _, sy := range sys {
		st := sy.Stats()
		pushes += st.GossipPushes
		merges += st.SiblingMerges
	}
	if pushes == 0 {
		t.Fatalf("gossip never pushed a version")
	}
	if merges == 0 {
		t.Fatalf("concurrent publish never produced a sibling merge")
	}
}

// TestCausalFetchReadRepair checks store-level convergence without
// gossip: after concurrent publishes the second writer's fetch detects
// the sibling split and repairs the stored copy to the merged envelope,
// so later readers see the union from the store alone.
func TestCausalFetchReadRepair(t *testing.T) {
	w, stores := buildStores(t, 8)
	kb0, kb1 := NewKB(), NewKB()
	bobWriter0(kb0)
	bobWriter1(kb1)
	sy0 := NewSyncer(stores[0], kb0)
	sy1 := NewSyncer(stores[1], kb1)
	sy0.PublishSubject("bob", func(error) {})
	sy1.PublishSubject("bob", func(error) {})
	w.RunFor(10 * time.Second)

	// Both writers fetch: whichever one's write lost the store race
	// absorbs the winner's version, detects concurrency, and repairs.
	sy0.FetchSubject("bob", func(error) {})
	sy1.FetchSubject("bob", func(error) {})
	w.RunFor(10 * time.Second)
	if r := sy0.Stats().ReadRepairs + sy1.Stats().ReadRepairs; r == 0 {
		t.Fatalf("no read repair fired after concurrent publishes")
	}

	kbR := NewKB()
	NewSyncer(stores[6], kbR).FetchSubject("bob", func(error) {})
	w.RunFor(10 * time.Second)
	wantUnion(t, kbR, "reader after repair")
}

// TestSyncerDifferentialSingleWriter: with one writer there are no
// concurrent histories, so legacy and causal sync must deliver the same
// fact set to a reader (same seed, same topology).
func TestSyncerDifferentialSingleWriter(t *testing.T) {
	run := func(legacy bool) []Fact {
		w, stores := buildStores(t, 8)
		kb := NewKB()
		bobWriter0(kb)
		kb.AddSPO("bob", "works-at", "university")
		sy := NewSyncerOpts(stores[2], kb, Options{LegacySync: legacy})
		sy.PublishSubject("bob", func(error) {})
		w.RunFor(5 * time.Second)
		kbR := NewKB()
		NewSyncerOpts(stores[6], kbR, Options{LegacySync: legacy}).FetchSubject("bob", func(error) {})
		w.RunFor(5 * time.Second)
		got := kbR.SubjectFacts("bob")
		sortFacts(got)
		return got
	}
	legacy, causal := run(true), run(false)
	if !reflect.DeepEqual(legacy, causal) {
		t.Fatalf("single-writer divergence:\nlegacy %v\ncausal %v", legacy, causal)
	}
}

// TestCausalGISConvergence: concurrent GIS publishes for one region
// union by place name on every reader.
func TestCausalGISConvergence(t *testing.T) {
	w, stores := buildStores(t, 8)
	g0, g1 := NewGIS(), NewGIS()
	if err := g0.AddPlace(janettas()); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddPlace(Place{Name: "luvians", Region: "st-andrews", X: 1.2, Y: 0.4, Sells: []string{"wine"}}); err != nil {
		t.Fatal(err)
	}
	sy0 := NewSyncer(stores[0], NewKB())
	sy1 := NewSyncer(stores[1], NewKB())
	sy0.PublishGIS("st-andrews", g0, func(error) {})
	sy1.PublishGIS("st-andrews", g1, func(error) {})
	w.RunFor(10 * time.Second)
	// Writers fetch (read-repair), then a third node reads.
	sy0.FetchGIS("st-andrews", func(*GIS, error) {})
	sy1.FetchGIS("st-andrews", func(*GIS, error) {})
	w.RunFor(10 * time.Second)
	var got *GIS
	NewSyncer(stores[5], NewKB()).FetchGIS("st-andrews", func(g *GIS, err error) {
		if err != nil {
			t.Errorf("fetch gis: %v", err)
			return
		}
		got = g
	})
	w.RunFor(10 * time.Second)
	if got == nil {
		t.Fatalf("no gis fetched")
	}
	if _, ok := got.Place("janettas"); !ok {
		t.Fatalf("lost writer 0's place")
	}
	if _, ok := got.Place("luvians"); !ok {
		t.Fatalf("lost writer 1's place")
	}
}

// TestSiblingCapCompaction: more concurrent writers than SiblingCap
// forces a deterministic merge instead of unbounded sibling growth.
func TestSiblingCapCompaction(t *testing.T) {
	w, stores := buildStores(t, 8)
	kbs := make([]*KB, 4)
	sys := make([]*Syncer, 4)
	for i := 0; i < 4; i++ {
		kbs[i] = NewKB()
		kbs[i].AddSPO("bob", "seen-by", stores[i].Endpoint().ID().Short())
		sys[i] = NewSyncerOpts(stores[i], kbs[i], Options{GossipInterval: time.Second, SiblingCap: 2})
	}
	for i := 0; i < 4; i++ {
		sys[i].PublishSubject("bob", func(error) {})
	}
	w.RunFor(20 * time.Second)
	var compactions uint64
	for _, sy := range sys {
		compactions += sy.Stats().Compactions
	}
	if compactions == 0 {
		t.Fatalf("4 concurrent writers over cap 2 never compacted")
	}
	// Compaction must not lose writes: every writer's fact survives.
	for i, kb := range kbs {
		if got := len(kb.Query("bob", "seen-by", "", -1)); got != 4 {
			t.Fatalf("node %d: %d/4 seen-by facts after compaction", i, got)
		}
	}
}

// TestLegacyDataUpgrade: a causal fetch of a legacy XML body lifts it
// into the empty-vector history, which any causal write then dominates.
func TestLegacyDataUpgrade(t *testing.T) {
	w, stores := buildStores(t, 6)
	kbL := NewKB()
	bobWriter0(kbL)
	NewSyncerOpts(stores[0], kbL, Options{LegacySync: true}).PublishSubject("bob", func(error) {})
	w.RunFor(5 * time.Second)

	kbC := NewKB()
	syC := NewSyncer(stores[3], kbC)
	var fetchErr error
	syC.FetchSubject("bob", func(err error) { fetchErr = err })
	w.RunFor(5 * time.Second)
	if fetchErr != nil {
		t.Fatalf("causal fetch of legacy body: %v", fetchErr)
	}
	if !kbC.Ask("bob", "likes", "ice cream", -1) {
		t.Fatalf("legacy facts lost in upgrade")
	}
	// The fetch read-repairs the store to the versioned envelope.
	if syC.Stats().ReadRepairs == 0 {
		t.Fatalf("legacy body should be upgraded by read repair")
	}
}

// TestSyncerStatsRace: Stats() snapshots are safe against concurrent
// counter updates from the node's message loop (run with -race).
func TestSyncerStatsRace(t *testing.T) {
	w, stores := buildStores(t, 6)
	kbs := make([]*KB, len(stores))
	sys := make([]*Syncer, len(stores))
	for i := range stores {
		kbs[i] = NewKB()
		sys[i] = NewSyncerOpts(stores[i], kbs[i], Options{GossipInterval: 500 * time.Millisecond})
	}
	kbs[0].AddSPO("bob", "likes", "ice cream")
	sys[0].PublishSubject("bob", func(error) {})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink SyncStats
			for {
				select {
				case <-stop:
					_ = sink
					return
				default:
					for _, sy := range sys {
						sink = sy.Stats()
					}
				}
			}
		}()
	}
	w.RunFor(10 * time.Second)
	close(stop)
	wg.Wait()
}

// TestKBSubjectCacheInvalidation pins the wildcard-query cache satellite:
// the cached subject list must reflect every mutation path.
func TestKBSubjectCacheInvalidation(t *testing.T) {
	kb := NewKB()
	kb.AddSPO("bob", "likes", "ice cream")
	kb.AddSPO("alice", "likes", "tea")
	if got := kb.Query("", "likes", "", -1); len(got) != 2 {
		t.Fatalf("wildcard query: %d facts", len(got))
	}
	kb.AddSPO("carol", "likes", "coffee")
	if got := kb.Query("", "likes", "", -1); len(got) != 3 {
		t.Fatalf("cache stale after Add: %d facts", len(got))
	}
	kb.Remove("alice", "likes", "tea")
	if got := kb.Query("", "likes", "", -1); len(got) != 2 {
		t.Fatalf("cache stale after Remove: %d facts", len(got))
	}
	kb.MergeSubject("dave", []Fact{{S: "dave", P: "likes", O: "juice"}})
	got := kb.Query("", "likes", "", -1)
	if len(got) != 3 {
		t.Fatalf("cache stale after MergeSubject: %d facts", len(got))
	}
	// Deterministic subject order is preserved.
	if got[0].S != "bob" || got[1].S != "carol" || got[2].S != "dave" {
		t.Fatalf("subject order broken: %v", got)
	}
	if subj := kb.Subjects(); len(subj) != 3 || subj[0] != "bob" {
		t.Fatalf("Subjects() = %v", subj)
	}
}

// TestSyncerStopHaltsGossip: Stop ends the rescheduling chain — rounds
// stop advancing no matter how long the world runs — while explicit
// GossipNow still works for manually driven syncers.
func TestSyncerStopHaltsGossip(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	w, stores := buildStores(t, 4)
	kb := NewKB()
	bobWriter0(kb)
	sy := NewSyncerOpts(stores[0], kb, Options{GossipInterval: time.Second})
	sy.PublishSubject("bob", func(error) {})
	w.RunFor(10 * time.Second)
	if sy.Stats().GossipRounds == 0 {
		t.Fatal("gossip never ran before Stop")
	}
	sy.Stop()
	w.RunFor(2 * time.Second) // the already-armed timer fires as a no-op
	base := sy.Stats().GossipRounds
	w.RunFor(30 * time.Second)
	if got := sy.Stats().GossipRounds; got != base {
		t.Fatalf("gossip kept running after Stop: rounds %d -> %d", base, got)
	}
	sy.Stop() // idempotent
	sy.GossipNow()
	w.RunFor(2 * time.Second)
	if got := sy.Stats().GossipRounds; got != base+1 {
		t.Fatalf("manual GossipNow after Stop: rounds %d, want %d", got, base+1)
	}
}
