// Package analysistest runs an analyzer over fixture packages laid out
// GOPATH-style under a testdata directory and checks its diagnostics
// against `// want` expectations — a dependency-free miniature of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture package lives at testdata/src/<path>/ and may import other
// fixture packages by that <path> (resolved under testdata/src) or
// anything from the standard library (resolved from GOROOT source).
// Expectations are comments of the form
//
//	ch <- k // want `map-iteration`
//	x.Set("a", 1) // want "frozen" "second pattern"
//
// where each quoted or backquoted string is a regular expression that
// must match a diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// fail the test. //vetactive:ignore suppression is active, exactly as
// under the real driver, so fixtures can pin annotation behaviour.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/gloss/active/internal/analysis"
)

// Run applies the analyzer to each fixture package and reports
// expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset:  fset,
		root:  filepath.Join(testdata, "src"),
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*loadResult),
	}
	for _, pkg := range pkgs {
		runPkg(t, ld, a, pkg)
	}
}

// fixtureLoader resolves imports for fixture packages: testdata/src
// first, then the standard library from source.
type fixtureLoader struct {
	fset  *token.FileSet
	root  string
	std   types.Importer
	cache map[string]*loadResult
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(ld.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		if r, ok := ld.cache[path]; ok {
			return r.pkg, r.err
		}
		files, err := ld.parseDir(dir)
		var pkg *types.Package
		if err == nil {
			conf := &types.Config{Importer: ld}
			pkg, err = conf.Check(path, ld.fset, files, nil)
		}
		ld.cache[path] = &loadResult{pkg: pkg, err: err}
		return pkg, err
	}
	return ld.std.Import(path)
}

func (ld *fixtureLoader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

type loadResult struct {
	pkg *types.Package
	err error
}

// expectation is one want-pattern anchored to a file:line.
type expectation struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func runPkg(t *testing.T, ld *fixtureLoader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(ld.root, pkgPath)
	files, err := ld.parseDir(dir)
	if err != nil {
		t.Errorf("%s: %v", pkgPath, err)
		return
	}
	includesTests := false
	for _, f := range files {
		name := ld.fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			includesTests = true
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := &types.Config{Importer: ld}
	pkg, err := conf.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		t.Errorf("typecheck %s: %v", pkgPath, err)
		return
	}

	// Collect the expectations from want comments.
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := ld.fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{pos: pos, re: re})
				}
			}
		}
	}

	// Run the analyzer under the same suppression filter as the driver.
	ignores := analysis.NewIgnoreIndex(ld.fset, files)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:      a,
		Fset:          ld.fset,
		Files:         files,
		Pkg:           pkg,
		TypesInfo:     info,
		IncludesTests: includesTests,
		Report: func(d analysis.Diagnostic) {
			if !ignores.Ignored(d.Pos, a.Name) {
				diags = append(diags, d)
			}
		},
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("analyzer %s on %s: %v", a.Name, pkgPath, err)
		return
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	// Match diagnostics against expectations by file and line.
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.pos.Filename == pos.Filename && w.pos.Line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
		}
	}
}
