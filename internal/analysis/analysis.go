// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, sized for this repo's
// needs. The module deliberately has no external dependencies, so the
// vetactive suite (cmd/vetactive) carries its own Analyzer/Pass types,
// driver (internal/analysis/driver) and fixture runner
// (internal/analysis/analysistest) built purely on the standard
// library's go/ast, go/parser, go/token and go/types.
//
// Differences from x/tools are intentional and simplifying: analyzers
// are package-local (no fact export/import between packages), there is
// no requires-graph between analyzers, and suppression is a source
// annotation rather than a driver flag:
//
//	//vetactive:ignore <analyzer> <reason>
//
// placed on the diagnostic's line or the line immediately above it
// silences one analyzer at that site. The reason is mandatory — a bare
// ignore is itself reported. Further annotations consumed by individual
// analyzers: //vetactive:deterministic (detsim scope),
// //vetactive:actoronly and //vetactive:actorloop (actoronly roles),
// //vetactive:xmlfallback (wirecomplete codec exemption).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Prefix starts every vetactive source annotation.
const Prefix = "//vetactive:"

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore
	// annotations. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package unit and reports
	// diagnostics through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass holds one analyzed package unit: its syntax, its type
// information, and the report sink. A unit is a package possibly
// augmented with its in-package _test.go files (exactly the units `go
// vet` hands a vettool).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// IncludesTests reports whether the unit contains _test.go files.
	// Checks that inspect test coverage (e.g. wirecomplete's Fuzz
	// cross-check) only fire on test-augmented units so the plain and
	// augmented compilations of one package don't double-report.
	IncludesTests bool
	// Report delivers one diagnostic. The driver wraps it with the
	// //vetactive:ignore suppression filter.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Directive is one //vetactive: annotation found in source.
type Directive struct {
	Pos  token.Pos
	Text string // everything after the prefix, e.g. "ignore detsim sorted below"
}

// Directives extracts every vetactive annotation from a file, in
// source order. Both standalone comments and trailing same-line
// comments are seen (the parser must have kept comments).
func Directives(file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, Prefix) {
				out = append(out, Directive{Pos: c.Pos(), Text: strings.TrimSpace(c.Text[len(Prefix):])})
			}
		}
	}
	return out
}

// PkgAnnotated reports whether any file of the unit carries the given
// bare annotation (e.g. "deterministic").
func PkgAnnotated(files []*ast.File, name string) bool {
	for _, f := range files {
		for _, d := range Directives(f) {
			if d.Text == name || strings.HasPrefix(d.Text, name+" ") {
				return true
			}
		}
	}
	return false
}

// FuncAnnotated reports whether fn's doc comment carries the given
// annotation (e.g. "actoronly"). Directive comments are attached to the
// doc group by the parser even though go/doc hides them from rendered
// documentation.
func FuncAnnotated(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if !strings.HasPrefix(c.Text, Prefix) {
			continue
		}
		text := strings.TrimSpace(c.Text[len(Prefix):])
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}

// An IgnoreIndex resolves //vetactive:ignore annotations to the lines
// they suppress. Drivers consult it before emitting a diagnostic.
type IgnoreIndex struct {
	fset *token.FileSet
	// byLine maps file:line to the analyzers ignored on that line.
	byLine map[string][]ignoreEntry
	// malformed collects ignore annotations missing analyzer or reason.
	malformed []Diagnostic
}

type ignoreEntry struct {
	analyzer string
	used     bool
}

// NewIgnoreIndex scans the unit's files for ignore annotations.
func NewIgnoreIndex(fset *token.FileSet, files []*ast.File) *IgnoreIndex {
	idx := &IgnoreIndex{fset: fset, byLine: make(map[string][]ignoreEntry)}
	for _, f := range files {
		for _, d := range Directives(f) {
			rest, ok := strings.CutPrefix(d.Text, "ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				idx.malformed = append(idx.malformed, Diagnostic{
					Pos:     d.Pos,
					Message: "malformed //vetactive:ignore: want \"//vetactive:ignore <analyzer> <reason>\"",
				})
				continue
			}
			pos := fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			idx.byLine[key] = append(idx.byLine[key], ignoreEntry{analyzer: fields[0]})
		}
	}
	return idx
}

// Ignored reports whether a diagnostic from the named analyzer at pos
// is suppressed by an ignore annotation on the same line or the line
// immediately above.
func (idx *IgnoreIndex) Ignored(pos token.Pos, analyzer string) bool {
	p := idx.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		key := fmt.Sprintf("%s:%d", p.Filename, line)
		entries := idx.byLine[key]
		for i := range entries {
			if entries[i].analyzer == analyzer {
				entries[i].used = true
				return true
			}
		}
	}
	return false
}

// Malformed returns diagnostics for ignore annotations that are missing
// the analyzer name or the reason.
func (idx *IgnoreIndex) Malformed() []Diagnostic { return idx.malformed }

// ReceiverType resolves the named type of a method's receiver, looking
// through pointers. Returns nil for functions and unresolvable
// receivers.
func ReceiverType(info *types.Info, fn *ast.FuncDecl) *types.Named {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// NamedOf unwraps pointers and aliases to the underlying named type,
// or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}
