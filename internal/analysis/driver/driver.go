// Package driver runs vetactive analyzers in the two modes a Go vet
// tool needs: as a standalone command over package patterns (resolved
// with `go list`, type-checked from source), and as a `go vet
// -vettool` backend speaking cmd/go's unitchecker protocol (see
// unitchecker.go). Both modes share the Pass construction and the
// //vetactive:ignore suppression filter.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"github.com/gloss/active/internal/analysis"
)

// Main is the entry point for cmd/vetactive. It dispatches on the
// argument shape: -V=full and -flags implement the vet tool handshake,
// a single *.cfg argument selects unitchecker mode, anything else is a
// list of package patterns for standalone mode (default ./...).
func Main(analyzers []*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion(progname)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go asks which flags the tool supports; vetactive has none,
		// so go vet passes only the unit config.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		fmt.Fprintf(os.Stderr, "usage: %s [packages]   # standalone, e.g. %s ./...\n", progname, progname)
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(pwd)/bin/%s ./...\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		os.Exit(2)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers)
		return
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := RunStandalone(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// printVersion implements the -V=full handshake: cmd/go keys its action
// cache on this line, so it embeds a hash of the executable.
func printVersion(progname string) {
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, contentHash(data))
}

// runAnalyzers applies every analyzer to one loaded unit and returns
// formatted, position-sorted diagnostics surviving suppression.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	includesTests bool, analyzers []*analysis.Analyzer) ([]string, error) {

	ignores := analysis.NewIgnoreIndex(fset, files)
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:      a,
			Fset:          fset,
			Files:         files,
			Pkg:           pkg,
			TypesInfo:     info,
			IncludesTests: includesTests,
			Report: func(d analysis.Diagnostic) {
				if ignores.Ignored(d.Pos, a.Name) {
					return
				}
				d.Message = a.Name + ": " + d.Message
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = append(diags, ignores.Malformed()...)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message)
	}
	return out, nil
}

// listedPkg is the slice of `go list -json` output the loader needs.
type listedPkg struct {
	Dir         string
	ImportPath  string
	Name        string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
}

// loader type-checks module packages from source. Imports of module
// packages resolve to a cached GoFiles-only compilation (so test-only
// imports cannot introduce cycles); everything else falls through to
// the standard library's source importer, which reads GOROOT.
type loader struct {
	fset   *token.FileSet
	listed map[string]*listedPkg
	std    types.Importer
	cache  map[string]*loadResult
}

type loadResult struct {
	pkg *types.Package
	err error
}

func newLoader(fset *token.FileSet, listed map[string]*listedPkg) *loader {
	return &loader{
		fset:   fset,
		listed: listed,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*loadResult),
	}
}

// Import implements types.Importer for the dependency graph.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if info, ok := ld.listed[path]; ok {
		return ld.loadModule(info)
	}
	return ld.std.Import(path)
}

// loadModule type-checks (once) the non-test compilation of a module
// package, for use as an import.
func (ld *loader) loadModule(info *listedPkg) (*types.Package, error) {
	if r, ok := ld.cache[info.ImportPath]; ok {
		if r == nil {
			return nil, fmt.Errorf("import cycle through %s", info.ImportPath)
		}
		return r.pkg, r.err
	}
	ld.cache[info.ImportPath] = nil // in-progress marker
	files, err := ld.parse(info.Dir, info.GoFiles)
	if err == nil && len(info.CgoFiles) > 0 {
		err = fmt.Errorf("%s: cgo packages are not supported by the standalone driver", info.ImportPath)
	}
	var pkg *types.Package
	if err == nil {
		conf := &types.Config{Importer: ld}
		pkg, err = conf.Check(info.ImportPath, ld.fset, files, nil)
	}
	ld.cache[info.ImportPath] = &loadResult{pkg: pkg, err: err}
	return pkg, err
}

func (ld *loader) parse(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// RunStandalone loads the module packages matched by patterns,
// type-checks each with its in-package test files, runs the analyzers,
// and returns formatted diagnostics.
func RunStandalone(patterns []string, analyzers []*analysis.Analyzer) ([]string, error) {
	universe, err := goList([]string{"./..."})
	if err != nil {
		return nil, err
	}
	listed := make(map[string]*listedPkg, len(universe))
	for _, p := range universe {
		listed[p.ImportPath] = p
	}
	targets := universe
	if !(len(patterns) == 1 && patterns[0] == "./...") {
		if targets, err = goList(patterns); err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	ld := newLoader(fset, listed)

	var all []string
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by the standalone driver", p.ImportPath)
		}
		files, err := ld.parse(p.Dir, append(append([]string{}, p.GoFiles...), p.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		info := newTypesInfo()
		conf := &types.Config{Importer: ld}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		diags, err := runAnalyzers(fset, files, pkg, info, len(p.TestGoFiles) > 0, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func goList(patterns []string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list -json: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
