// The unitchecker half of the driver: cmd/go's `go vet -vettool=...`
// invokes the tool once per compilation unit with a JSON config file
// describing the unit's sources and the export data of its
// (already-built) dependencies. This mirrors the protocol of
// golang.org/x/tools/go/analysis/unitchecker, reimplemented on the
// standard library because the module carries no dependencies.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/gloss/active/internal/analysis"
)

// unitConfig describes a vet compilation unit. The field set (and the
// JSON shape) is fixed by cmd/go.
type unitConfig struct {
	ID                        string // e.g. "internal/pubsub [internal/pubsub.test]"
	Compiler                  string // "gc"
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func contentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return string(sum[:])
}

// runUnit executes one vet unit and exits: 0 clean, 1 operational
// error, 2 diagnostics reported.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	// vetactive analyzers are package-local: they export no facts, so
	// the unit's "vetx" output is always an empty placeholder, written
	// unconditionally because dependent units name it as an input.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		// This unit is only needed for facts; with none, there is
		// nothing to do.
		os.Exit(0)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	includesTests := false
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			includesTests = true
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The export data file may be missing if the package was only
		// needed at link time; cmd/go guarantees it for real imports.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		// The import map translates source-level import paths to
		// canonical package paths (vendoring, test variants).
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags, err := runAnalyzers(fset, files, pkg, info, includesTests, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func readUnitConfig(cfgFile string) (*unitConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		// Mirrors unitchecker: units with no Go files (e.g. pure-cgo or
		// empty packages) carry nothing to analyze.
		return nil, fmt.Errorf("package %s has no Go files", cfg.ImportPath)
	}
	return cfg, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vetactive: "+format+"\n", args...)
	os.Exit(1)
}
