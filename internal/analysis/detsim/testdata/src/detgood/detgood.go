//vetactive:deterministic
package detgood

import (
	"math/rand"
	"sort"
	"time"
)

type world struct {
	rng   *rand.Rand
	peers map[string]int
	wire  []string
	now   time.Duration
}

func newWorld(seed int64) *world {
	return &world{rng: rand.New(rand.NewSource(seed)), peers: map[string]int{}}
}

// step draws only from the seeded generator and virtual time.
func (w *world) step() {
	w.now += time.Duration(w.rng.Int63n(1000))
}

// flush iterates a sorted mirror, so emission order is stable.
func (w *world) flush() {
	keys := make([]string, 0, len(w.peers))
	for p := range w.peers {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, p := range keys {
		w.wire = append(w.wire, p)
	}
}

// count aggregates commutatively inside a map range: no emission, no
// ordered accumulation, nothing to flag.
func (w *world) count() int {
	total := 0
	for _, n := range w.peers {
		total += n
	}
	return total
}

// tolerated is a deliberate, annotated exception.
func (w *world) tolerated() {
	for p := range w.peers {
		//vetactive:ignore detsim order irrelevant: the sink dedups into a set
		w.wire = append(w.wire, p)
	}
}
