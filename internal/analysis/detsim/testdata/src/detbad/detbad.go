//vetactive:deterministic
package detbad

import (
	"hash/maphash"
	"math/rand"
	"time"
)

type world struct {
	peers map[string]int
	out   chan string
	wire  []string
}

func (w *world) step() time.Duration {
	start := time.Now()    // want `time\.Now`
	if rand.Intn(2) == 0 { // want `math/rand\.Intn`
		_ = maphash.MakeSeed() // want `MakeSeed`
	}
	return time.Since(start) // want `time\.Since`
}

func (w *world) flush() {
	for p := range w.peers {
		w.out <- p // want `channel send inside a map range`
	}
	for p := range w.peers {
		w.wire = append(w.wire, p) // want `append to wire .* map range`
	}
}

func (w *world) emit(send func(string)) {
	for p, n := range w.peers {
		_ = n
		w.Send(p) // want `Send call inside a map range`
	}
	_ = send
}

func (w *world) Send(string) {}
