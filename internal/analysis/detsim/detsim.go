// Package detsim checks determinism-critical packages for the bug
// classes that break bit-identical simulation: wall-clock reads,
// process-seeded randomness, and map-iteration-ordered emission. The
// simulator's contract — same seed, same Metrics, byte-identical event
// streams — is the foundation of the differential tests (serial vs
// sharded matching, serial vs partitioned worlds, XML vs binary
// codecs); one time.Now or unsorted map range in the wrong place turns
// every one of them flaky.
//
// Scope: internal/simnet, internal/vclock, and any package carrying a
// //vetactive:deterministic annotation. _test.go files are exempt (the
// differential tests themselves measure wall time).
//
// Checks:
//   - calls to time.Now, time.Since, time.Until, time.After,
//     time.Tick, time.NewTimer, time.NewTicker, time.AfterFunc —
//     deterministic code must use the virtual clock (vclock.Clock);
//   - calls to the process-seeded global math/rand state (rand.Intn,
//     rand.Float64, ...) — only explicitly seeded generators
//     (rand.New(rand.NewSource(seed))) are allowed;
//   - hash/maphash.MakeSeed — per-process seeds reorder anything keyed
//     by the resulting hash;
//   - ranging over a map where the body sends on a channel, calls an
//     emission method (Send, SendMany, Inject, InjectMany, Reply,
//     After, Publish), or appends to a slice declared outside the loop
//     — iteration order is randomized per run, so such loops must
//     iterate a sorted or insertion-ordered mirror instead.
package detsim

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/gloss/active/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detsim",
	Doc:  "forbid wall-clock, global randomness and map-ordered emission in deterministic packages",
	Run:  run,
}

// forbiddenTime are the wall-clock entry points of package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// allowedRand are the constructors of explicitly seeded generators;
// every other package-level math/rand call draws from process-global
// state.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// emitNames are methods whose call inside a map range means the
// iteration order reaches the wire or the schedule.
var emitNames = map[string]bool{
	"Send": true, "SendMany": true, "Inject": true, "InjectMany": true,
	"Reply": true, "After": true, "Publish": true,
}

func run(pass *analysis.Pass) error {
	if !applies(pass) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func applies(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	if strings.HasSuffix(path, "internal/simnet") || strings.HasSuffix(path, "internal/vclock") {
		return true
	}
	return analysis.PkgAnnotated(pass.Files, "deterministic")
}

// checkCall flags forbidden package-level calls (time.*, global
// math/rand, maphash.MakeSeed).
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch pkgName.Imported().Path() {
	case "time":
		if forbiddenTime[name] {
			pass.Reportf(call.Pos(), "call to time.%s in deterministic package (use the endpoint's virtual clock)", name)
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[name] {
			pass.Reportf(call.Pos(), "global math/rand.%s is process-seeded; draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", name)
		}
	case "hash/maphash":
		if name == "MakeSeed" {
			pass.Reportf(call.Pos(), "maphash.MakeSeed is seeded per process; anything ordered by the hash differs between runs")
		}
	}
}

// checkMapRange flags map iterations whose body emits or accumulates
// in iteration order.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a map range: delivery order follows randomized map iteration (iterate a sorted mirror)")
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && emitNames[sel.Sel.Name] {
				pass.Reportf(n.Pos(), "%s call inside a map range: emission order follows randomized map iteration (iterate a sorted mirror)", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			checkAppend(pass, file, rng, n)
		}
		return true
	})
}

// checkAppend flags `x = append(x, ...)` inside a map range when x
// outlives the loop: the appended order is the (random) iteration
// order. The sorted-mirror idiom — collect keys, sort, then emit — is
// recognized and allowed: an append target later passed to a
// sort/slices call in the same file is exempt.
func checkAppend(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	for i, rhs := range assign.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
			continue
		}
		if i >= len(assign.Lhs) {
			continue
		}
		var obj types.Object
		var name string
		switch lhs := assign.Lhs[i].(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[lhs]
			if obj == nil {
				obj = pass.TypesInfo.Defs[lhs]
			}
			name = lhs.Name
			if obj != nil && !declaredOutside(obj.Pos(), rng) {
				continue // loop-local accumulator
			}
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[lhs.Sel]
			name = lhs.Sel.Name
		}
		if obj == nil {
			continue
		}
		if sortedLater(pass, file, obj, rng.End()) {
			continue
		}
		pass.Reportf(assign.Pos(), "append to %s inside a map range accumulates in randomized iteration order (sort before emitting)", name)
	}
}

func declaredOutside(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos < rng.Pos() || pos > rng.End()
}

// sortedLater reports whether obj is passed (anywhere in an argument
// expression) to a sort or slices call after pos — the second half of
// the collect-sort-emit idiom.
func sortedLater(pass *analysis.Pass, file *ast.File, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
