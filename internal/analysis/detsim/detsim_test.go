package detsim

import (
	"testing"

	"github.com/gloss/active/internal/analysis/analysistest"
)

func TestDetsim(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "detbad", "detgood")
}
