// Package wire stubs the registry surface wirecomplete matches on:
// a named Registry with a Register method.
package wire

type Message interface {
	Kind() string
}

type Registry struct {
	kinds map[string]Message
}

func NewRegistry() *Registry {
	return &Registry{kinds: make(map[string]Message)}
}

func (r *Registry) Register(m Message) {
	r.kinds[m.Kind()] = m
}
