package wirequiet

import "testing"

func TestFrame(t *testing.T) {
	var f Frame
	if err := f.ParseWire(f.AppendWire(nil)); err != nil {
		t.Fatal(err)
	}
}
