package wirequiet

// Frame's decoder is fuzzed by a sibling differential harness, which
// the annotation records in place of an in-package Fuzz target.
type Frame struct{ body []byte }

//vetactive:ignore wirecomplete decoder fuzzed by the shared differential harness
func (f *Frame) ParseWire(b []byte) error { f.body = b; return nil }

func (f *Frame) AppendWire(b []byte) []byte { return append(b, f.body...) }
