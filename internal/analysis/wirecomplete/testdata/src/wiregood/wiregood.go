package wiregood

import "wire"

// Good carries the full binary pair and a constant Control marker.
type Good struct{ body []byte }

func (g *Good) Kind() string { return "good" }

func (g *Good) AppendWire(b []byte) []byte { return append(b, g.body...) }

func (g *Good) ParseWire(b []byte) error { g.body = b; return nil }

func (g *Good) Control() bool { return true }

// Legacy predates the binary codec; its registration declares the
// fallback inline.
type Legacy struct{}

func (l *Legacy) Kind() string { return "legacy" }

// Probe is a debug-only kind registered by an annotated function.
type Probe struct{}

func (p *Probe) Kind() string { return "probe" }

func register(r *wire.Registry) {
	r.Register(&Good{})
	r.Register(&Legacy{}) //vetactive:xmlfallback legacy kind kept XML-only for cross-version replay
}

// registerDebug registers diagnostics-only kinds.
//
//vetactive:xmlfallback debug kinds ride the XML slow path by design
func registerDebug(r *wire.Registry) {
	r.Register(&Probe{})
}
