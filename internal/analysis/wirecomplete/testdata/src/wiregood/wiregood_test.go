package wiregood

import "testing"

func FuzzGoodParse(f *testing.F) {
	f.Add([]byte("seed"))
	f.Fuzz(func(t *testing.T, b []byte) {
		var g Good
		if err := g.ParseWire(b); err != nil {
			t.Skip()
		}
	})
}
