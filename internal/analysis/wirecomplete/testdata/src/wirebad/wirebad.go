package wirebad

import "wire"

// Full has the complete binary pair, but the package's tests (see
// wirebad_test.go) carry no Fuzz target for the decoder.
type Full struct{ body []byte }

func (f *Full) Kind() string { return "full" }

func (f *Full) AppendWire(b []byte) []byte { return append(b, f.body...) }

func (f *Full) ParseWire(b []byte) error { f.body = b; return nil } // want `defines binary decoders \(ParseWire\) but its tests have no Fuzz\* target`

// Half encodes frames no peer can decode.
type Half struct{}

func (h *Half) Kind() string { return "half" }

func (h *Half) AppendWire(b []byte) []byte { return b }

// Plain has no binary codec and no declared XML fallback.
type Plain struct{}

func (p *Plain) Kind() string { return "plain" }

// Flaky marks itself control traffic only sometimes, so the two
// codecs can disagree about its outbox budget exemption.
type Flaky struct {
	urgent bool
	body   []byte
}

func (c *Flaky) Kind() string { return "flaky" }

func (c *Flaky) AppendWire(b []byte) []byte { return append(b, c.body...) }

func (c *Flaky) ParseWire(b []byte) error { c.body = b; return nil }

func (c *Flaky) Control() bool { return c.urgent } // want `Flaky\.Control must return the constant true`

func register(r *wire.Registry) {
	r.Register(&Full{})
	r.Register(&Half{})  // want `registered kind Half implements AppendWire but not ParseWire`
	r.Register(&Plain{}) // want `registered kind Plain has no binary AppendWire/ParseWire pair`
	r.Register(&Flaky{})
}
