package wirebad

import (
	"testing"

	"wire"
)

// A plain round-trip test is not fuzz coverage.
func TestRoundTrip(t *testing.T) {
	register(wire.NewRegistry())
	var f Full
	if err := f.ParseWire(f.AppendWire(nil)); err != nil {
		t.Fatal(err)
	}
}
