package wirecomplete

import (
	"testing"

	"github.com/gloss/active/internal/analysis/analysistest"
)

func TestWirecomplete(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "wirebad", "wiregood", "wirequiet")
}
