// Package wirecomplete cross-checks the wire registry against the
// binary codec and the fuzz house style:
//
//   - every kind passed to a Registry.Register call must implement the
//     binary fast path — both AppendWire and ParseWire — or carry an
//     explicit //vetactive:xmlfallback annotation (on the registration
//     line, or on the enclosing registration function's doc) declaring
//     it intentionally XML-only; exactly one of the pair is always an
//     error;
//   - a ControlMessage marker (a Control() bool method) must return
//     the constant true: the outbox budget exemption is consulted at
//     encode time by both codecs, so a value-dependent Control would
//     let the same message be exempt under one codec and dropped under
//     the other;
//   - a package that defines binary decoders (ParseWire methods) must
//     also carry a Fuzz* target in its tests — the coverage style the
//     storage and knowledge planes established — or annotate the first
//     decoder with //vetactive:ignore wirecomplete <where the coverage
//     lives>. This check runs only on test-augmented units, so the
//     plain and test compilations of a package don't double-report.
//
// Matching is name-based (a named type Registry with a Register
// method), keeping the analyzer free of cross-package facts and
// letting fixtures stub the registry surface.
package wirecomplete

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/gloss/active/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirecomplete",
	Doc:  "registered wire kinds need a binary AppendWire/ParseWire pair (or a declared XML fallback), constant Control markers, and fuzzed decoders",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	var firstParseWire *ast.FuncDecl
	haveFuzz := false
	checkedControl := make(map[types.Object]bool)

	for _, file := range pass.Files {
		inTest := pass.InTestFile(file.Pos())
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Fuzz") && fuzzShaped(pass, fd) {
				haveFuzz = true
			}
			if inTest {
				continue
			}
			if fd.Name.Name == "ParseWire" && fd.Recv != nil && firstParseWire == nil {
				firstParseWire = fd
			}
			fallback := analysis.FuncAnnotated(fd, "xmlfallback")
			if fd.Body != nil {
				checkRegistrations(pass, file, fd, fallback, checkedControl)
			}
		}
	}

	if firstParseWire != nil && pass.IncludesTests && !haveFuzz {
		pass.Reportf(firstParseWire.Pos(),
			"package %s defines binary decoders (ParseWire) but its tests have no Fuzz* target; add one or annotate this decoder //vetactive:ignore wirecomplete <where the fuzz coverage lives>",
			pass.Pkg.Name())
	}
	return nil
}

// fuzzShaped reports whether fd looks like a fuzz target:
// func FuzzX(f *testing.F).
func fuzzShaped(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil || fd.Type.Params == nil || len(fd.Type.Params.List) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Type.Params.List[0].Type]
	if !ok {
		return false
	}
	named := analysis.NamedOf(tv.Type)
	return named != nil && named.Obj().Name() == "F"
}

// checkRegistrations inspects one function for Registry.Register calls
// and validates each registered kind.
func checkRegistrations(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl,
	fnFallback bool, checkedControl map[types.Object]bool) {

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Register" {
			return true
		}
		recv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return true
		}
		recvNamed := analysis.NamedOf(recv.Type)
		if recvNamed == nil || recvNamed.Obj().Name() != "Registry" {
			return true
		}
		argType, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok {
			return true
		}
		named := analysis.NamedOf(argType.Type)
		if named == nil {
			return true
		}
		checkKind(pass, file, call, named, fnFallback)
		checkControl(pass, named, checkedControl)
		return true
	})
}

// checkKind validates the binary pair / XML-fallback state of one
// registered kind.
func checkKind(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, named *types.Named, fnFallback bool) {
	ms := types.NewMethodSet(types.NewPointer(named))
	hasAppend := ms.Lookup(nil, "AppendWire") != nil
	hasParse := ms.Lookup(nil, "ParseWire") != nil
	name := named.Obj().Name()
	switch {
	case hasAppend && hasParse:
		return
	case hasAppend != hasParse:
		half, missing := "AppendWire", "ParseWire"
		if hasParse {
			half, missing = "ParseWire", "AppendWire"
		}
		pass.Reportf(call.Pos(), "registered kind %s implements %s but not %s: a half binary codec encodes frames no peer can decode", name, half, missing)
	default:
		if fnFallback || lineAnnotated(pass, file, call, "xmlfallback") {
			return
		}
		pass.Reportf(call.Pos(), "registered kind %s has no binary AppendWire/ParseWire pair; implement it or annotate the registration //vetactive:xmlfallback <reason>", name)
	}
}

// checkControl verifies a registered ControlMessage's marker returns
// the constant true, when its declaration is in this package.
func checkControl(pass *analysis.Pass, named *types.Named, checked map[types.Object]bool) {
	ms := types.NewMethodSet(types.NewPointer(named))
	selControl := ms.Lookup(nil, "Control")
	if selControl == nil {
		return
	}
	fn, ok := selControl.Obj().(*types.Func)
	if !ok || checked[fn] {
		return
	}
	checked[fn] = true
	decl := declOf(pass, fn)
	if decl == nil || decl.Body == nil {
		return
	}
	if len(decl.Body.List) == 1 {
		if ret, ok := decl.Body.List[0].(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if tv, ok := pass.TypesInfo.Types[ret.Results[0]]; ok && tv.Value != nil && tv.Value.String() == "true" {
				return
			}
		}
	}
	pass.Reportf(decl.Pos(), "%s.Control must return the constant true: both codecs consult it for the outbox budget exemption, so instances must agree", named.Obj().Name())
}

// declOf finds the FuncDecl of a method in the analyzed unit.
func declOf(pass *analysis.Pass, fn *types.Func) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// lineAnnotated reports whether the call's line or the line above
// carries the given bare annotation.
func lineAnnotated(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, name string) bool {
	pos := pass.Fset.Position(call.Pos())
	for _, d := range analysis.Directives(file) {
		if d.Text != name && !strings.HasPrefix(d.Text, name+" ") {
			continue
		}
		dp := pass.Fset.Position(d.Pos)
		if dp.Filename == pos.Filename && (dp.Line == pos.Line || dp.Line == pos.Line-1) {
			return true
		}
	}
	return false
}
