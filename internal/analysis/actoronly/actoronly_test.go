package actoronly

import (
	"testing"

	"github.com/gloss/active/internal/analysis/analysistest"
)

func TestActoronly(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "actorbad", "actorgood")
}
