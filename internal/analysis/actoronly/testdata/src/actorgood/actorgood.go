package actorgood

type endpoint struct{}

func (endpoint) Handle(kind string, h func()) {}
func (endpoint) After(d int, fn func())       {}
func (endpoint) Do(fn func())                 {}
func (endpoint) OnDrain(fn func())            {}

type broker struct {
	ep      endpoint
	entries map[string]int
}

// addEntry mutates the subscription table.
//
//vetactive:actoronly
func (b *broker) addEntry(key string) { b.entries[key]++ }

// handleSub is an endpoint handler: it runs on the actor loop.
//
//vetactive:actorloop
func (b *broker) handleSub() {
	b.addEntry("k")
}

// subscribe is itself actor-only, so the chain is allowed.
//
//vetactive:actoronly
func (b *broker) subscribe(key string) {
	b.addEntry(key)
}

// wire registers actor-rooted callbacks: Handle, timers, the actor
// hop and drain callbacks all execute on the actor loop.
func (b *broker) wire() {
	b.ep.Handle("sub", func() { b.addEntry("k") })
	b.ep.After(10, func() { b.subscribe("k") })
	b.ep.Do(func() { b.addEntry("k") })
	b.ep.OnDrain(func() { b.addEntry("k") })
}

// deliver passes a callback to an actor-only function, which invokes
// it inline on the actor.
//
//vetactive:actoronly
func (b *broker) deliver(fn func()) { fn() }

//vetactive:actorloop
func (b *broker) tick() {
	b.deliver(func() { b.addEntry("k") })
}

// harness is a deliberate, annotated exception.
func (b *broker) harness() {
	//vetactive:ignore actoronly single-goroutine bench harness is the actor
	b.addEntry("k")
}
