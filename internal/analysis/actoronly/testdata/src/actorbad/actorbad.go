package actorbad

type endpoint struct{}

func (endpoint) Handle(kind string, h func())  {}
func (endpoint) After(d int, fn func())        {}
func (endpoint) submit(job func())             {}
func (endpoint) OnLeavesChanged(notify func()) {}

type broker struct {
	ep      endpoint
	entries map[string]int
}

// addEntry mutates the subscription table.
//
//vetactive:actoronly
func (b *broker) addEntry(key string) { b.entries[key]++ }

// worker is a fan-out worker: not actor context.
func (b *broker) worker() {
	b.addEntry("k") // want `call to actor-only broker\.addEntry from worker`
}

// spawn launches the mutator on its own goroutine.
func (b *broker) spawn() {
	go b.addEntry("k") // want `go statement launches actor-only broker\.addEntry`
}

// pooled hands actor state mutation to a worker pool.
//
//vetactive:actorloop
func (b *broker) pooled() {
	b.ep.submit(func() {
		b.addEntry("k") // want `call to actor-only broker\.addEntry`
	})
	go func() {
		b.addEntry("k") // want `call to actor-only broker\.addEntry .* \(goroutine\)`
	}()
}

// notified registers a callback that is not an actor-loop registrar.
func (b *broker) notified() {
	b.ep.OnLeavesChanged(func() {
		b.addEntry("k") // want `call to actor-only broker\.addEntry`
	})
}
